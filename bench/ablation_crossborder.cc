// Ablation: EB's cross-border/local segment split (§4.1). The paper claims
// receiving only cross-border segments of intermediate regions cuts tuning
// time by ~20%. Also reports how the network divides into cross-border and
// local nodes.

#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "core/border_precompute.h"
#include "core/eb.h"
#include "partition/kd_tree.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader("Ablation: EB cross-border/local segment split", opts);
  graph::Graph g = bench::LoadNetwork("Germany", opts);
  auto w = workload::GenerateWorkload(g, opts.queries, opts.seed).value();

  auto kd = partition::KdTreePartitioner::Build(g, 32).value();
  auto pre = core::ComputeBorderPrecompute(g, kd.Partition(g)).value();
  size_t cross = 0;
  for (uint8_t c : pre.cross_border) cross += c;
  std::printf("cross-border nodes: %zu / %zu (%.1f%%)\n", cross,
              g.num_nodes(), 100.0 * cross / g.num_nodes());

  auto eb = core::EbSystem::BuildFromPrecompute(g, pre).value();

  core::ClientOptions with_opt;
  core::ClientOptions no_opt;
  no_opt.cross_border_opt = false;

  auto with_m = bench::RunQueries(*eb, g, w, opts.Loss(), opts.seed, with_opt,
                                  opts.threads, opts.repeat);
  auto without_m = bench::RunQueries(*eb, g, w, opts.Loss(), opts.seed, no_opt,
                                     opts.threads, opts.repeat);
  auto with_s = device::MetricsSummary::Of(with_m);
  auto without_s = device::MetricsSummary::Of(without_m);

  std::printf("%-24s %12s %10s\n", "configuration", "tuning[pkt]",
              "mem[MB]");
  std::printf("%-24s %12.0f %10s\n", "EB with split",
              with_s.avg_tuning_packets,
              bench::Mb(with_s.avg_peak_memory_bytes).c_str());
  std::printf("%-24s %12.0f %10s\n", "EB without split",
              without_s.avg_tuning_packets,
              bench::Mb(without_s.avg_peak_memory_bytes).c_str());
  std::printf("tuning saved: %.1f%%\n",
              100.0 * (1.0 - with_s.avg_tuning_packets /
                                 without_s.avg_tuning_packets));
  std::printf("\n# paper: the optimization reduces tuning time ~20%%.\n");
  return 0;
}
