// Micro benchmarks (google-benchmark) for the hot substrate operations:
// Dijkstra throughput, kd-tree construction, border-pair pre-computation,
// network generation, broadcast-cycle assembly, and the parallel
// simulation engine's end-to-end client throughput.

#include <benchmark/benchmark.h>

#include "algo/dijkstra.h"
#include "algo/search_workspace.h"
#include "core/border_precompute.h"
#include "core/dijkstra_on_air.h"
#include "core/nr.h"
#include "core/query_scratch.h"
#include "core/systems.h"
#include "graph/catalog.h"
#include "graph/generator.h"
#include "partition/kd_tree.h"
#include "sim/event_engine.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace {

using namespace airindex;  // NOLINT: benchmark binary

const graph::Graph& BenchGraph() {
  static const graph::Graph& g =
      *new graph::Graph(graph::MakeNetwork(graph::DefaultNetwork(), 0.1)
                            .value());
  return g;
}

void BM_DijkstraFull(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  graph::NodeId source = 0;
  for (auto _ : state) {
    auto tree = algo::DijkstraAll(g, source);
    benchmark::DoNotOptimize(tree.dist.data());
    source = (source + 97) % g.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_nodes()));
}
BENCHMARK(BM_DijkstraFull);

void BM_DijkstraPointToPoint(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  graph::NodeId s = 1, t = static_cast<graph::NodeId>(g.num_nodes() - 1);
  for (auto _ : state) {
    auto p = algo::DijkstraPath(g, s, t);
    benchmark::DoNotOptimize(p.dist);
    s = (s + 131) % g.num_nodes();
    t = (t + 173) % g.num_nodes();
    if (s == t) t = (t + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_DijkstraPointToPoint);

// The allocation-free kernel: same searches as BM_DijkstraFull /
// BM_DijkstraPointToPoint, but run inside one reused SearchWorkspace
// (generation-stamped O(1) reset + 4-ary heap) instead of allocating and
// zero-filling dist/parent per call. The pairwise delta is the search-
// kernel half of this PR's win; results are bit-identical (see
// tests/algo/search_workspace_test.cc).
void BM_DijkstraWorkspaceFull(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  algo::SearchWorkspace ws;
  graph::NodeId source = 0;
  for (auto _ : state) {
    algo::DijkstraAll(g, source, ws);
    benchmark::DoNotOptimize(ws.settled());
    source = (source + 97) % g.num_nodes();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_nodes()));
}
BENCHMARK(BM_DijkstraWorkspaceFull);

void BM_DijkstraWorkspacePointToPoint(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  algo::SearchWorkspace ws;
  graph::NodeId s = 1, t = static_cast<graph::NodeId>(g.num_nodes() - 1);
  for (auto _ : state) {
    algo::DijkstraSearch(g, s, t, algo::AllEdges{}, ws);
    benchmark::DoNotOptimize(ws.DistTo(t));
    s = (s + 131) % g.num_nodes();
    t = (t + 173) % g.num_nodes();
    if (s == t) t = (t + 1) % g.num_nodes();
  }
}
BENCHMARK(BM_DijkstraWorkspacePointToPoint);

void BM_KdTreeBuild(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  const auto regions = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    auto kd = partition::KdTreePartitioner::Build(g, regions).value();
    benchmark::DoNotOptimize(kd.splits_bfs().data());
  }
}
BENCHMARK(BM_KdTreeBuild)->Arg(16)->Arg(32)->Arg(64);

void BM_BorderPrecompute(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  auto kd = partition::KdTreePartitioner::Build(
                g, static_cast<uint32_t>(state.range(0)))
                .value();
  for (auto _ : state) {
    auto pre = core::ComputeBorderPrecompute(g, kd.Partition(g)).value();
    benchmark::DoNotOptimize(pre.min_rr.data());
  }
}
BENCHMARK(BM_BorderPrecompute)->Arg(16)->Arg(32)->Unit(
    benchmark::kMillisecond);

void BM_NetworkGeneration(benchmark::State& state) {
  graph::GeneratorOptions opts;
  opts.num_nodes = static_cast<uint32_t>(state.range(0));
  opts.num_edges = opts.num_nodes + opts.num_nodes / 10;
  opts.seed = 5;
  for (auto _ : state) {
    auto g = graph::GenerateRoadNetwork(opts).value();
    benchmark::DoNotOptimize(g.num_arcs());
  }
}
BENCHMARK(BM_NetworkGeneration)->Arg(1000)->Arg(10000)->Unit(
    benchmark::kMillisecond);

void BM_CycleBuildDj(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  for (auto _ : state) {
    auto sys = core::DijkstraOnAir::Build(g).value();
    benchmark::DoNotOptimize(sys->cycle().total_packets());
  }
}
BENCHMARK(BM_CycleBuildDj)->Unit(benchmark::kMillisecond);

void BM_NrClientQuery(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  static const auto& nr =
      *new std::unique_ptr<core::NrSystem>(
          core::NrSystem::Build(g, 32).value());
  static const auto& w =
      *new workload::Workload(workload::GenerateWorkload(g, 64, 9).value());
  broadcast::BroadcastChannel channel(&nr->cycle(), 0.0);
  size_t qi = 0;
  for (auto _ : state) {
    auto m = nr->RunQuery(channel, core::MakeAirQuery(g, w.queries[qi]));
    benchmark::DoNotOptimize(m.distance);
    qi = (qi + 1) % w.queries.size();
  }
}
BENCHMARK(BM_NrClientQuery)->Unit(benchmark::kMillisecond);

// End-to-end RunQuery with and without a reused QueryScratch, per method.
// The fresh/scratch pairs isolate the whole-client half of the win
// (pooled PartialGraph, reused segment/decode buffers, workspace search);
// metrics are byte-identical either way (tests/sim golden test).
void RunQueryBench(benchmark::State& state, const char* method,
                   bool use_scratch) {
  const graph::Graph& g = BenchGraph();
  const core::AirSystem& sys =
      *core::SystemRegistry::Global().Get(g, method).value();
  static const auto& w =
      *new workload::Workload(workload::GenerateWorkload(g, 64, 9).value());
  broadcast::BroadcastChannel channel(&sys.cycle(), 0.0);
  core::QueryScratch scratch;
  size_t qi = 0;
  for (auto _ : state) {
    auto m = sys.RunQuery(channel, core::MakeAirQuery(g, w.queries[qi]), {},
                          use_scratch ? &scratch : nullptr);
    benchmark::DoNotOptimize(m.distance);
    qi = (qi + 1) % w.queries.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RunQueryDjFresh(benchmark::State& state) {
  RunQueryBench(state, "DJ", false);
}
void BM_RunQueryDjScratch(benchmark::State& state) {
  RunQueryBench(state, "DJ", true);
}
void BM_RunQueryNrFresh(benchmark::State& state) {
  RunQueryBench(state, "NR", false);
}
void BM_RunQueryNrScratch(benchmark::State& state) {
  RunQueryBench(state, "NR", true);
}
void BM_RunQueryEbFresh(benchmark::State& state) {
  RunQueryBench(state, "EB", false);
}
void BM_RunQueryEbScratch(benchmark::State& state) {
  RunQueryBench(state, "EB", true);
}
BENCHMARK(BM_RunQueryDjFresh)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RunQueryDjScratch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RunQueryNrFresh)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RunQueryNrScratch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RunQueryEbFresh)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RunQueryEbScratch)->Unit(benchmark::kMillisecond);

// Shared fixture for the engine benchmarks. The leaked Global() registry
// keeps the NR system alive for the process lifetime.
const core::AirSystem& SimBenchSystem() {
  static const core::AirSystem& nr =
      *core::SystemRegistry::Global().Get(BenchGraph(), "NR").value();
  return nr;
}

const workload::Workload& SimBenchWorkload() {
  static const auto& w = *new workload::Workload(
      workload::GenerateWorkload(BenchGraph(), 128, 9).value());
  return w;
}

// End-to-end engine throughput: a whole workload of NR clients fanned
// across N worker threads. items/s is simulated queries per second; the
// Arg sweep exposes the engine's thread scaling in CI perf tracking.
// The lossy variant adds 1% packet loss: repair traffic lengthens each
// client's session, which is the heavy-traffic case the engine exists
// for.
void SimulatorThroughput(benchmark::State& state, double loss_rate) {
  const workload::Workload& w = SimBenchWorkload();
  sim::SimOptions so;
  so.threads = static_cast<unsigned>(state.range(0));
  so.loss = broadcast::LossModel::Independent(loss_rate);
  so.deterministic = true;
  sim::Simulator simulator(BenchGraph(), so);
  for (auto _ : state) {
    auto r = simulator.RunSystem(SimBenchSystem(), w);
    benchmark::DoNotOptimize(r.aggregate.tuning_packets.mean);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.queries.size()));
}

void BM_SimulatorThroughputNr(benchmark::State& state) {
  SimulatorThroughput(state, 0.0);
}
BENCHMARK(BM_SimulatorThroughputNr)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorThroughputNrLossy(benchmark::State& state) {
  SimulatorThroughput(state, 0.01);
}
BENCHMARK(BM_SimulatorThroughputNrLossy)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Fleet latency on the shared station timeline: the same NR fleet, but
// arriving over time (Poisson, 200 clients/s) on one event-engine station
// instead of each query privately replaying its own cycle. items/s is
// simulated queries per second; the thread sweep tracks the event
// engine's scaling next to the batch engine's.
const workload::Workload& EventBenchWorkload() {
  static const auto& w = *new workload::Workload([] {
    workload::WorkloadSpec spec;
    spec.count = 128;
    spec.seed = 9;
    spec.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
    spec.arrival.rate_per_second = 200.0;
    return workload::GenerateWorkload(BenchGraph(), spec).value();
  }());
  return w;
}

void EventEngineFleet(benchmark::State& state, double loss_rate,
                      uint32_t subchannels) {
  const workload::Workload& w = EventBenchWorkload();
  sim::EventOptions eo;
  eo.threads = static_cast<unsigned>(state.range(0));
  eo.loss = broadcast::LossModel::Independent(loss_rate);
  eo.subchannels = subchannels;
  eo.deterministic = true;
  sim::EventEngine engine(BenchGraph(), eo);
  for (auto _ : state) {
    auto r = engine.RunSystem(SimBenchSystem(), w);
    benchmark::DoNotOptimize(r.aggregate.wait_ms.mean);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.queries.size()));
}

void BM_EventEngineFleetNr(benchmark::State& state) {
  EventEngineFleet(state, 0.0, 1);
}
BENCHMARK(BM_EventEngineFleetNr)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_EventEngineFleetNrLossySharded(benchmark::State& state) {
  EventEngineFleet(state, 0.01, 4);
}
BENCHMARK(BM_EventEngineFleetNrLossySharded)
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Registry hit-path contention: every simulation worker resolves its
// systems through SystemRegistry::Get, so a hot Get must not serialize
// readers. The threaded sweep pins the shared-lock fast path (a hit while
// the cache is under capacity takes no exclusive lock); before the fix,
// every hit took the write lock to stamp recency and the threads=4 row
// collapsed to the single-lock rate.
void BM_RegistryGetHit(benchmark::State& state) {
  const graph::Graph& g = BenchGraph();
  // Warm the entry once so the measured loop is pure hits.
  benchmark::DoNotOptimize(
      core::SystemRegistry::Global().Get(g, "DJ").value().get());
  for (auto _ : state) {
    auto sys = core::SystemRegistry::Global().Get(g, "DJ").value();
    benchmark::DoNotOptimize(sys.get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryGetHit)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

}  // namespace
