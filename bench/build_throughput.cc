// Build-pipeline throughput sweep: how fast can the server side go from
// nothing to a broadcast-ready cycle at continental scale?
//
// For each generated network size the sweep measures
//   * the synthetic generator itself (nodes/s),
//   * the border pre-computation, serial vs work-stealing (nodes/s and the
//     parallel speedup — the CI artifact that pins the >=1.5x-at-4-threads
//     claim, since dev containers may be single-core),
//   * each requested method's full build (nodes/s, cycle bytes/node),
//   * the network-data footprint under both cycle encodings (the compact
//     varint/delta encoding's bytes/node next to the legacy fixed-width
//     one).
//
// Results print as a table and, with --json=FILE, land in an
// airindex.bench.build/v1 document for tools/perf_compare.py.
//
//   build_throughput [--sizes=10000,100000] [--methods=DJ,NR]
//       [--regions=32] [--gen-threads=0] [--precompute-threads=4]
//       [--repeat=1] [--json=FILE]

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "broadcast/serialization.h"
#include "core/border_precompute.h"
#include "core/systems.h"
#include "graph/generator.h"
#include "graph/graph.h"
#include "partition/kd_tree.h"

using namespace airindex;  // NOLINT: experiment binary

namespace {

struct Options {
  std::vector<uint32_t> sizes = {10000, 100000};
  std::vector<std::string> methods = {"DJ", "NR"};
  uint32_t regions = 32;
  unsigned gen_threads = 0;
  unsigned precompute_threads = 4;
  unsigned repeat = 1;
  /// Sizes above this skip the serial precompute baseline (and therefore
  /// the speedup column): at 1e6 nodes the serial pass alone runs for the
  /// better part of an hour, which only the work-stealing path needs to
  /// prove it can cover.
  uint32_t serial_max = 200000;
  std::string json_path;
};

/// One measured row of the sweep; fields that do not apply stay negative
/// and are omitted from the JSON.
struct Entry {
  std::string name;
  uint64_t nodes = 0;
  uint64_t arcs = 0;
  double seconds = -1.0;
  double nodes_per_second = -1.0;
  double bytes_per_node = -1.0;
  double speedup = -1.0;
};

[[noreturn]] void UsageExit(const char* why) {
  std::fprintf(stderr,
               "%s\n"
               "usage: build_throughput [--sizes=N,N,...] "
               "[--methods=DJ,NR,...]\n"
               "  [--regions=N] [--gen-threads=N] [--precompute-threads=N]\n"
               "  [--repeat=N] [--serial-max=N] [--json=FILE]\n",
               why);
  std::exit(2);
}

/// Strict unsigned parse of a --flag=value argument (same contract as the
/// CLI: the whole value must consume, no sign characters).
uint64_t ParseUint(const char* arg, size_t prefix) {
  const char* value = arg + prefix;
  if (*value == '\0' || *value == '-' || *value == '+') UsageExit(arg);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) UsageExit(arg);
  return v;
}

std::vector<std::string> SplitCsv(const char* csv) {
  std::vector<std::string> out;
  std::string current;
  for (const char* p = csv; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += *p;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

Options Parse(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--sizes=", 8) == 0) {
      opts.sizes.clear();
      for (const std::string& s : SplitCsv(arg + 8)) {
        const uint64_t v = ParseUint(s.c_str(), 0);
        if (v < 2 || v > 0xFFFFFFFFull) UsageExit(arg);
        opts.sizes.push_back(static_cast<uint32_t>(v));
      }
      if (opts.sizes.empty()) UsageExit(arg);
    } else if (std::strncmp(arg, "--methods=", 10) == 0) {
      opts.methods = SplitCsv(arg + 10);
      if (opts.methods.empty()) UsageExit(arg);
    } else if (std::strncmp(arg, "--regions=", 10) == 0) {
      opts.regions = static_cast<uint32_t>(ParseUint(arg, 10));
    } else if (std::strncmp(arg, "--gen-threads=", 14) == 0) {
      opts.gen_threads = static_cast<unsigned>(ParseUint(arg, 14));
    } else if (std::strncmp(arg, "--precompute-threads=", 21) == 0) {
      opts.precompute_threads = static_cast<unsigned>(ParseUint(arg, 21));
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      const uint64_t v = ParseUint(arg, 9);
      opts.repeat = v > 1 ? static_cast<unsigned>(v) : 1;
    } else if (std::strncmp(arg, "--serial-max=", 13) == 0) {
      opts.serial_max = static_cast<uint32_t>(ParseUint(arg, 13));
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      opts.json_path = arg + 7;
    } else {
      UsageExit(arg);
    }
  }
  return opts;
}

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set size in bytes (VmHWM), 0 where /proc is unavailable.
/// The value is a process-lifetime high-water mark, so per-entry readings
/// are cumulative — the interesting number is the final one (the sweep's
/// peak), the per-entry ones bound which stage pushed it there.
uint64_t PeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

/// Minimum wall time of `repeat` runs of `fn` (min-of-N: noise only ever
/// slows a run down).
template <typename Fn>
double MinSeconds(unsigned repeat, Fn&& fn) {
  double best = -1.0;
  for (unsigned r = 0; r < repeat; ++r) {
    const double t0 = Now();
    fn();
    const double dt = Now() - t0;
    if (best < 0.0 || dt < best) best = dt;
  }
  return best;
}

void AppendJson(std::string* out, const Entry& e, uint64_t peak_rss) {
  char buf[256];
  *out += "    {\"name\": \"" + e.name + "\"";
  std::snprintf(buf, sizeof(buf), ", \"nodes\": %llu, \"arcs\": %llu",
                static_cast<unsigned long long>(e.nodes),
                static_cast<unsigned long long>(e.arcs));
  *out += buf;
  if (e.seconds >= 0.0) {
    std::snprintf(buf, sizeof(buf), ", \"seconds\": %.6f", e.seconds);
    *out += buf;
  }
  if (e.nodes_per_second >= 0.0) {
    std::snprintf(buf, sizeof(buf), ", \"nodes_per_second\": %.1f",
                  e.nodes_per_second);
    *out += buf;
  }
  if (e.bytes_per_node >= 0.0) {
    std::snprintf(buf, sizeof(buf), ", \"bytes_per_node\": %.3f",
                  e.bytes_per_node);
    *out += buf;
  }
  if (e.speedup >= 0.0) {
    std::snprintf(buf, sizeof(buf), ", \"speedup\": %.3f", e.speedup);
    *out += buf;
  }
  std::snprintf(buf, sizeof(buf), ", \"peak_rss_bytes\": %llu}",
                static_cast<unsigned long long>(peak_rss));
  *out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Parse(argc, argv);
  std::vector<Entry> entries;
  std::vector<uint64_t> rss_at_entry;
  auto push = [&](Entry e) {
    rss_at_entry.push_back(PeakRssBytes());
    entries.push_back(std::move(e));
  };

  std::printf("# build-pipeline throughput (precompute-threads=%u, "
              "repeat=%u)\n",
              opts.precompute_threads, opts.repeat);
  std::printf("%-28s %10s %10s %12s %12s\n", "stage", "nodes", "sec",
              "nodes/s", "bytes/node");

  for (uint32_t n : opts.sizes) {
    graph::GenSpec spec;
    spec.num_nodes = n;
    spec.seed = 1;
    spec.threads = opts.gen_threads;

    graph::Graph g;
    {
      Entry e;
      e.name = "gen/" + std::to_string(n);
      e.seconds = MinSeconds(opts.repeat, [&] {
        auto built = graph::GenerateRoadNetwork(spec);
        if (!built.ok()) {
          std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
          std::exit(1);
        }
        g = std::move(built).value();
      });
      e.nodes = g.num_nodes();
      e.arcs = g.num_arcs();
      e.nodes_per_second = e.nodes / e.seconds;
      std::printf("%-28s %10llu %10.3f %12.0f %12s\n", e.name.c_str(),
                  static_cast<unsigned long long>(e.nodes), e.seconds,
                  e.nodes_per_second, "-");
      push(std::move(e));
    }

    // Network-data footprint under both encodings (server-side sizing
    // only; no cycle build needed).
    {
      const double legacy =
          static_cast<double>(broadcast::NetworkDataBytes(
              g, broadcast::CycleEncoding::kLegacy)) /
          static_cast<double>(g.num_nodes());
      const double compact =
          static_cast<double>(broadcast::NetworkDataBytes(
              g, broadcast::CycleEncoding::kCompact)) /
          static_cast<double>(g.num_nodes());
      Entry e;
      e.name = "network_bytes_legacy/" + std::to_string(n);
      e.nodes = g.num_nodes();
      e.arcs = g.num_arcs();
      e.bytes_per_node = legacy;
      std::printf("%-28s %10llu %10s %12s %12.1f\n", e.name.c_str(),
                  static_cast<unsigned long long>(e.nodes), "-", "-", legacy);
      push(std::move(e));
      Entry c;
      c.name = "network_bytes_compact/" + std::to_string(n);
      c.nodes = g.num_nodes();
      c.arcs = g.num_arcs();
      c.bytes_per_node = compact;
      std::printf("%-28s %10llu %10s %12s %12.1f  (%.1f%% of legacy)\n",
                  c.name.c_str(),
                  static_cast<unsigned long long>(c.nodes), "-", "-", compact,
                  100.0 * compact / legacy);
      push(std::move(c));
    }

    // Border pre-computation: serial baseline vs the work-stealing pool.
    // The outputs are byte-identical (pinned by test); only the wall time
    // may differ.
    {
      auto kd = partition::KdTreePartitioner::Build(g, opts.regions).value();
      const partition::Partitioning part = kd.Partition(g);
      double serial_seconds = -1.0;
      if (n <= opts.serial_max) {
        Entry serial;
        serial.name = "precompute_serial/" + std::to_string(n);
        serial.nodes = g.num_nodes();
        serial.arcs = g.num_arcs();
        serial.seconds = MinSeconds(opts.repeat, [&] {
          auto pre =
              core::ComputeBorderPrecompute(g, part, /*num_threads=*/1);
          if (!pre.ok()) std::exit(1);
        });
        serial.nodes_per_second = serial.nodes / serial.seconds;
        serial_seconds = serial.seconds;
        std::printf("%-28s %10llu %10.3f %12.0f %12s\n",
                    serial.name.c_str(),
                    static_cast<unsigned long long>(serial.nodes),
                    serial.seconds, serial.nodes_per_second, "-");
        push(std::move(serial));
      }

      Entry par;
      par.name = "precompute_parallel/" + std::to_string(n);
      par.nodes = g.num_nodes();
      par.arcs = g.num_arcs();
      par.seconds = MinSeconds(opts.repeat, [&] {
        auto pre =
            core::ComputeBorderPrecompute(g, part, opts.precompute_threads);
        if (!pre.ok()) std::exit(1);
      });
      par.nodes_per_second = par.nodes / par.seconds;
      if (serial_seconds >= 0.0) {
        par.speedup = serial_seconds / par.seconds;
        std::printf("%-28s %10llu %10.3f %12.0f %12s  (%.2fx serial)\n",
                    par.name.c_str(),
                    static_cast<unsigned long long>(par.nodes), par.seconds,
                    par.nodes_per_second, "-", par.speedup);
      } else {
        std::printf("%-28s %10llu %10.3f %12.0f %12s\n", par.name.c_str(),
                    static_cast<unsigned long long>(par.nodes), par.seconds,
                    par.nodes_per_second, "-");
      }
      push(std::move(par));
    }

    // Full system builds (legacy encoding — the reproduction path).
    core::SystemParams params;
    params.nr_regions = opts.regions;
    params.eb_regions = opts.regions;
    params.arcflag_regions = opts.regions;
    params.hiti_regions = opts.regions;
    params.build.precompute_threads = opts.precompute_threads;
    for (const std::string& method : opts.methods) {
      Entry e;
      e.name = method + "/" + std::to_string(n);
      e.nodes = g.num_nodes();
      e.arcs = g.num_arcs();
      std::unique_ptr<core::AirSystem> sys;
      e.seconds = MinSeconds(opts.repeat, [&] {
        auto built = core::BuildSystem(g, method, params);
        if (!built.ok()) {
          std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
          std::exit(1);
        }
        sys = std::move(built).value();
      });
      e.nodes_per_second = e.nodes / e.seconds;
      e.bytes_per_node =
          static_cast<double>(sys->cycle().TotalPayloadBytes()) /
          static_cast<double>(g.num_nodes());
      std::printf("%-28s %10llu %10.3f %12.0f %12.1f\n", e.name.c_str(),
                  static_cast<unsigned long long>(e.nodes), e.seconds,
                  e.nodes_per_second, e.bytes_per_node);
      push(std::move(e));
    }
  }

  std::printf("# peak RSS: %.1f MB\n", PeakRssBytes() / (1024.0 * 1024.0));

  if (!opts.json_path.empty()) {
    std::string json = "{\n  \"schema\": \"airindex.bench.build/v1\",\n";
    json += "  \"precompute_threads\": " +
            std::to_string(opts.precompute_threads) + ",\n";
    json += "  \"repeat\": " + std::to_string(opts.repeat) + ",\n";
    json += "  \"entries\": [\n";
    for (size_t i = 0; i < entries.size(); ++i) {
      AppendJson(&json, entries[i], rss_at_entry[i]);
      json += i + 1 < entries.size() ? ",\n" : "\n";
    }
    json += "  ]\n}\n";
    std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", opts.json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", opts.json_path.c_str());
  }
  return 0;
}
