// Reproduces Figure 11 (a-d, Appendix C.1): fine-tuning the number of
// regions (ArcFlag/EB/NR) and landmarks (LD) on Germany. Dijkstra is the
// flat reference line.
//
// Expected shape (paper): EB/NR tuning is U-shaped in the region count
// (too few regions = loose pruning, too many = index overhead) with the
// optimum around 32; latency strictly grows with regions; Landmark's
// vectors blow the cycle up as landmarks increase.

#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "core/systems.h"

using namespace airindex;  // NOLINT: experiment binary

namespace {

struct Row {
  std::string config;
  std::string method;
  device::MetricsSummary summary;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader("Figure 11: fine-tuning regions/landmarks (Germany)",
                     opts);
  graph::Graph g = bench::LoadNetwork("Germany", opts);
  auto w = workload::GenerateWorkload(g, opts.queries, opts.seed).value();

  const uint32_t regions[4] = {16, 32, 64, 128};
  const uint32_t landmarks[4] = {2, 4, 8, 16};

  auto& registry = core::SystemRegistry::Global();
  std::vector<Row> rows;
  // Dijkstra reference (independent of the sweep).
  {
    auto dj = registry.Get(g, "DJ").value();
    auto m = bench::RunQueries(*dj, g, w, opts.Loss(), opts.seed, {},
                               opts.threads, opts.repeat);
    rows.push_back({"-", "DJ", device::MetricsSummary::Of(m)});
  }
  for (int i = 0; i < 4; ++i) {
    char cfg[32];
    std::snprintf(cfg, sizeof(cfg), "%u/%u", regions[i], landmarks[i]);
    core::SystemParams params;
    params.nr_regions = regions[i];
    params.eb_regions = regions[i];
    params.arcflag_regions = regions[i];
    params.landmarks = landmarks[i];
    for (const char* method : {"NR", "EB", "AF", "LD"}) {
      auto sys = registry.Get(g, method, params).value();
      auto m = bench::RunQueries(*sys, g, w, opts.Loss(), opts.seed, {},
                                 opts.threads, opts.repeat);
      rows.push_back({cfg, method, device::MetricsSummary::Of(m)});
    }
  }

  std::printf("%-10s %-6s %12s %10s %12s %10s\n", "regions/lm", "method",
              "tuning[pkt]", "mem[MB]", "latency[pkt]", "cpu[ms]");
  for (const auto& r : rows) {
    std::printf("%-10s %-6s %12.0f %10s %12.0f %10.2f\n", r.config.c_str(),
                r.method.c_str(), r.summary.avg_tuning_packets,
                bench::Mb(r.summary.avg_peak_memory_bytes).c_str(),
                r.summary.avg_latency_packets, r.summary.avg_cpu_ms);
  }
  std::printf(
      "\n# paper shape: EB/NR best around 32 regions; EB/NR latency grows\n"
      "# with regions; LD degrades as landmarks increase.\n");
  return 0;
}
