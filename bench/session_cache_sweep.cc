// Session-cache sweep: persistent clients vs one-shot clients, across
// queries-per-session and per-client cache budget, on every system.
//
// Each grid point runs the shared-channel event engine over the same
// zipf-destination workload, varying only how long a client lives
// (sessions of s queries) and how much it may cache (c bytes of decoded
// segments plus the pinned index slot). Expected shape: the s=1/c=0
// column is the historical one-shot fleet (byte-identical to pre-session
// builds); warm rows cut the mean tuning of the selective-tuning systems
// (EB, NR) hardest — a warm client skips the index tune-in entirely and
// only listens for regions it has not cached — while the full-cycle
// systems (DJ, LD, AF, SPQ, HiTi) win on engine throughput via the
// shared decode memo. Emits one airindex.sim.batch/v1 document to stdout
// (system names suffixed "@sS@cCK" so tools/perf_compare.py tracks each
// grid point as its own series) and the warm-vs-cold table to stderr.

#include <cstdio>
#include <string>
#include <vector>

#include "common/options.h"
#include "core/systems.h"
#include "graph/catalog.h"
#include "sim/event_engine.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/workload.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  std::fprintf(
      stderr,
      "# session cache sweep on Germany: scale=%.2f queries=%zu seed=%llu\n",
      opts.scale, opts.queries, static_cast<unsigned long long>(opts.seed));
  graph::Graph g =
      graph::MakeNetwork(graph::FindNetwork("Germany").value(), opts.scale)
          .value();
  std::fprintf(stderr, "# %zu nodes, %zu arcs\n", g.num_nodes(),
               g.num_arcs());

  core::SystemParams params;
  params.include_spq = !opts.no_heavy;
  params.include_hiti = !opts.no_heavy;
  auto systems = core::SystemRegistry::Global().GetAll(g, params).value();

  const uint32_t session_grid[3] = {1, 4, 8};
  const size_t cache_grid[3] = {0, 256u << 10, 4u << 20};

  workload::WorkloadSpec wspec;
  wspec.count = opts.queries;
  wspec.seed = opts.seed;
  wspec.dest = workload::WorkloadSpec::Dest::kZipf;
  wspec.zipf_s = 1.1;
  wspec.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
  wspec.arrival.rate_per_second = 20.0;
  auto w = workload::GenerateWorkload(g, wspec).value();

  sim::BatchResult batch;
  batch.engine = "event";
  batch.num_queries = opts.queries;
  batch.loss_seed = opts.seed;

  for (const auto& sys : systems) {
    // Cold baseline of this system, for the stderr improvement columns.
    double cold_tuning = 0.0;
    double cold_qps = 0.0;
    std::fprintf(stderr, "\n%s\n%9s %10s %12s %12s %12s %12s\n",
                 std::string(sys->name()).c_str(), "sessions", "cache",
                 "tuning", "qps", "tuning[%]", "qps[x]");
    for (uint32_t s : session_grid) {
      for (size_t c : cache_grid) {
        sim::EventOptions eo;
        eo.threads = opts.threads;
        eo.repeat = opts.repeat;
        eo.loss = opts.Loss();
        eo.station_seed = opts.seed;
        eo.deterministic = true;
        eo.session.queries = s;
        eo.cache_bytes = c;
        sim::EventEngine engine(g, eo);
        batch.threads = engine.effective_threads();

        sim::SystemResult r = engine.RunSystem(*sys, w);
        const double tuning = r.aggregate.tuning_packets.mean;
        const double qps = r.queries_per_second;
        if (s == 1 && c == 0) {
          cold_tuning = tuning;
          cold_qps = qps;
        }
        std::fprintf(
            stderr, "%9u %9zuK %12.1f %12.0f %+12.1f %12.2f\n", s,
            c >> 10, tuning, qps,
            cold_tuning > 0.0 ? 100.0 * (tuning - cold_tuning) / cold_tuning
                              : 0.0,
            cold_qps > 0.0 ? qps / cold_qps : 0.0);

        char name[64];
        std::snprintf(name, sizeof(name), "%s@s%u@c%zuK", r.system.c_str(),
                      s, c >> 10);
        r.system = name;
        r.aggregate.system = name;
        r.per_query.clear();  // the batch doc carries aggregates only
        batch.wall_seconds += r.wall_seconds;
        batch.systems.push_back(std::move(r));
      }
    }
  }

  std::fputs(sim::ToJson(batch).c_str(), stdout);
  std::fprintf(stderr,
               "\n# warm sessions skip the index tune-in on EB/NR and "
               "share decodes on the\n# full-cycle systems; the s=1/c=0K "
               "row is the historical one-shot fleet.\n");
  return 0;
}
