// Reproduces Figure 13 (a-b, Appendix C.4): peak client memory and final
// shortest-path-computation CPU time for EB and NR, with and without the
// §6.1 client-side super-edge pre-computation.
//
// Thin wrapper over the scenario engine: the catalog's
// "membound-precompute" scenario already encodes the comparison as two
// client groups (with/without pre-computation) over identical workloads.
//
// Expected shape (paper): ~35% lower peak memory with pre-computation, at
// extra CPU cost during region reception.

#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "sim/scenario.h"
#include "sim/scenario_catalog.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader(
      "Figure 13: client-side pre-computation (memory-bound mode)", opts);

  sim::Scenario scenario = sim::FindScenario("membound-precompute").value();
  scenario.systems = {"EB", "NR"};  // the figure's two methods
  scenario.scale = opts.scale;
  scenario.total_queries = opts.queries * scenario.groups.size();
  scenario.seed = opts.seed;
  for (auto& group : scenario.groups) {
    group.loss = opts.Loss();
    // Identical workload AND channel replay in both groups: the ablation
    // isolates pre-computation, not sampling noise.
    group.workload.seed = opts.seed;
    group.loss_seed = opts.seed;
  }

  sim::ScenarioRunner::RunOptions ro;
  ro.threads = opts.threads;
  auto result = sim::ScenarioRunner(ro).Run(scenario);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-22s %12s %10s\n", "configuration", "mem[MB]", "cpu[ms]");
  // Group 0 is "with-precomp", group 1 "without-precomp"; print per system
  // in the paper's NR-then-EB order.
  for (const char* method : {"NR", "EB"}) {
    for (const sim::GroupResult& gr : result->groups) {
      for (const sim::SystemResult& r : gr.systems) {
        if (r.system != method) continue;
        const bool membound = gr.spec.client.memory_bound;
        std::printf("%-22s %12s %10.2f\n",
                    (r.system + std::string(membound ? " (w/ precomp)"
                                                     : " (w/o precomp)"))
                        .c_str(),
                    bench::Mb(r.aggregate.peak_memory_bytes.mean).c_str(),
                    r.aggregate.cpu_ms.mean);
      }
    }
  }
  std::printf(
      "\n# paper shape: w/ precomp lowers peak memory ~35%% for both EB\n"
      "# and NR; CPU cost rises (pre-computation during reception).\n");
  return 0;
}
