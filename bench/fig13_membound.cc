// Reproduces Figure 13 (a-b, Appendix C.4): peak client memory and final
// shortest-path-computation CPU time for EB and NR, with and without the
// §6.1 client-side super-edge pre-computation.
//
// Expected shape (paper): ~35% lower peak memory with pre-computation, at
// extra CPU cost during region reception.

#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "core/systems.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader(
      "Figure 13: client-side pre-computation (memory-bound mode)", opts);
  graph::Graph g = bench::LoadNetwork("Germany", opts);
  auto w = workload::GenerateWorkload(g, opts.queries, opts.seed).value();

  auto& registry = core::SystemRegistry::Global();
  auto eb = registry.Get(g, "EB").value();
  auto nr = registry.Get(g, "NR").value();

  std::printf("%-22s %12s %10s\n", "configuration", "mem[MB]", "cpu[ms]");
  for (const core::AirSystem* sys : {nr.get(), eb.get()}) {
    for (bool membound : {true, false}) {
      core::ClientOptions copts;
      copts.memory_bound = membound;
      auto metrics = bench::RunQueries(*sys, g, w, opts.loss, opts.seed,
                                       copts, opts.threads);
      auto s = device::MetricsSummary::Of(metrics);
      std::printf("%-22s %12s %10.2f\n",
                  (std::string(sys->name()) +
                   (membound ? " (w/ precomp)" : " (w/o precomp)"))
                      .c_str(),
                  bench::Mb(s.avg_peak_memory_bytes).c_str(), s.avg_cpu_ms);
    }
  }
  std::printf(
      "\n# paper shape: w/ precomp lowers peak memory ~35%% for both EB\n"
      "# and NR; CPU cost rises (pre-computation during reception).\n");
  return 0;
}
