#include "common/harness.h"

#include <cstdio>
#include <cstdlib>

namespace airindex::bench {

std::vector<device::QueryMetrics> RunQueries(
    const core::AirSystem& sys, const graph::Graph& g,
    const workload::Workload& w, broadcast::LossModel loss,
    uint64_t loss_seed, const core::ClientOptions& options,
    unsigned threads, unsigned repeat) {
  sim::SimOptions so;
  so.threads = threads;
  so.loss = loss;
  so.loss_seed = loss_seed;
  so.client = options;
  so.repeat = repeat;
  sim::Simulator simulator(g, so);
  sim::SystemResult result = simulator.RunSystem(sys, w);
  if (repeat > 1) {
    // The experiment tables print only the deterministic metrics, so the
    // min-of-N engine timing is reported here — one line per measured
    // batch — instead of being silently discarded.
    std::printf("# %s: %.3f s min-of-%u (%.0f q/s)\n",
                result.system.c_str(), result.wall_seconds, repeat,
                result.queries_per_second);
  }
  return std::move(result.per_query);
}

std::vector<device::QueryMetrics> Select(
    const std::vector<device::QueryMetrics>& all,
    const std::vector<size_t>& indexes) {
  std::vector<device::QueryMetrics> out;
  out.reserve(indexes.size());
  for (size_t i : indexes) out.push_back(all[i]);
  return out;
}

graph::Graph LoadNetwork(const std::string& name, const BenchOptions& opts) {
  auto spec = graph::FindNetwork(name);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown network %s\n", name.c_str());
    std::exit(2);
  }
  auto g = graph::MakeNetwork(*spec, opts.scale);
  if (!g.ok()) {
    std::fprintf(stderr, "network build failed: %s\n",
                 g.status().ToString().c_str());
    std::exit(2);
  }
  std::printf("# network %s at scale %.2f: %zu nodes, %zu arcs\n",
              name.c_str(), opts.scale, g->num_nodes(), g->num_arcs());
  return std::move(g).value();
}

void PrintHeader(const std::string& title, const BenchOptions& opts) {
  std::printf("==================================================\n");
  std::printf("%s\n", title.c_str());
  if (opts.burst > 1) {
    std::printf("scale=%.2f queries=%zu seed=%llu loss=%.4f burst=%u\n",
                opts.scale, opts.queries,
                static_cast<unsigned long long>(opts.seed), opts.loss,
                opts.burst);
  } else {
    std::printf("scale=%.2f queries=%zu seed=%llu loss=%.4f\n", opts.scale,
                opts.queries, static_cast<unsigned long long>(opts.seed),
                opts.loss);
  }
  std::printf("==================================================\n");
}

std::string Mb(double bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", bytes / (1024.0 * 1024.0));
  return buf;
}

}  // namespace airindex::bench
