#include "common/options.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace airindex::bench {

size_t BenchOptions::ScaledHeapBytes() const {
  const double heap = 8.0 * 1024 * 1024 * scale;
  return static_cast<size_t>(heap);
}

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opts.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      opts.queries = static_cast<size_t>(std::atoll(arg + 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strncmp(arg, "--loss=", 7) == 0) {
      opts.loss = std::atof(arg + 7);
    } else if (std::strncmp(arg, "--burst=", 8) == 0) {
      const int burst = std::atoi(arg + 8);  // negatives must not wrap
      opts.burst = burst > 1 ? static_cast<uint32_t>(burst) : 1;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opts.threads = static_cast<unsigned>(std::atoi(arg + 10));
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      const int repeat = std::atoi(arg + 9);
      opts.repeat = repeat > 1 ? static_cast<unsigned>(repeat) : 1;
    } else if (std::strcmp(arg, "--full") == 0) {
      opts.full = true;
    } else if (std::strcmp(arg, "--no-heavy") == 0) {
      opts.no_heavy = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale=F] [--queries=N] [--seed=N] "
                   "[--loss=F] [--burst=N] [--threads=N] [--repeat=N] "
                   "[--full] [--no-heavy]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (opts.full) {
    opts.scale = 1.0;
    if (opts.queries == 100) opts.queries = 400;  // the paper's count
  }
  return opts;
}

}  // namespace airindex::bench
