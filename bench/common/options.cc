#include "common/options.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace airindex::bench {

namespace {

[[noreturn]] void UsageExit(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--scale=F] [--queries=N] [--seed=N] "
               "[--loss=F] [--burst=N] [--corrupt=F] [--fec-rate=F] "
               "[--threads=N] [--repeat=N] [--full] [--no-heavy]\n",
               prog);
  std::exit(2);
}

/// Strict double parse of a --flag=value argument; the whole value must be
/// a number (atof read "abc" as 0.0 and benchmarked the wrong config
/// without a word). Aborts with the offending flag and usage on failure.
double ParseDoubleFlag(const char* prog, const char* arg, size_t prefix) {
  const char* value = arg + prefix;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "invalid value for %.*s: \"%s\"\n",
                 static_cast<int>(prefix - 1), arg, value);
    UsageExit(prog);
  }
  return v;
}

/// Strict unsigned parse. Rejects a leading sign: strtoull wraps "-1" to
/// 2^64-1 instead of failing.
uint64_t ParseUintFlag(const char* prog, const char* arg, size_t prefix) {
  const char* value = arg + prefix;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (*value == '-' || *value == '+' || end == value || *end != '\0' ||
      errno == ERANGE) {
    std::fprintf(stderr, "invalid value for %.*s: \"%s\"\n",
                 static_cast<int>(prefix - 1), arg, value);
    UsageExit(prog);
  }
  return v;
}

}  // namespace

size_t BenchOptions::ScaledHeapBytes() const {
  const double heap = 8.0 * 1024 * 1024 * scale;
  return static_cast<size_t>(heap);
}

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      opts.scale = ParseDoubleFlag(argv[0], arg, 8);
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      opts.queries = static_cast<size_t>(ParseUintFlag(argv[0], arg, 10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.seed = ParseUintFlag(argv[0], arg, 7);
    } else if (std::strncmp(arg, "--loss=", 7) == 0) {
      opts.loss = ParseDoubleFlag(argv[0], arg, 7);
    } else if (std::strncmp(arg, "--burst=", 8) == 0) {
      const uint64_t burst = ParseUintFlag(argv[0], arg, 8);
      opts.burst = burst > 1 ? static_cast<uint32_t>(burst) : 1;
    } else if (std::strncmp(arg, "--corrupt=", 10) == 0) {
      opts.corrupt = ParseDoubleFlag(argv[0], arg, 10);
      if (!(opts.corrupt >= 0.0) || opts.corrupt >= 1.0) {
        std::fprintf(stderr, "--corrupt must be in [0, 1)\n");
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--fec-rate=", 11) == 0) {
      opts.fec_rate = ParseDoubleFlag(argv[0], arg, 11);
      if (!(opts.fec_rate >= 0.0) || opts.fec_rate > 1.0) {
        std::fprintf(stderr, "--fec-rate must be in [0, 1]\n");
        std::exit(2);
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      opts.threads = static_cast<unsigned>(ParseUintFlag(argv[0], arg, 10));
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      const uint64_t repeat = ParseUintFlag(argv[0], arg, 9);
      opts.repeat = repeat > 1 ? static_cast<unsigned>(repeat) : 1;
    } else if (std::strcmp(arg, "--full") == 0) {
      opts.full = true;
    } else if (std::strcmp(arg, "--no-heavy") == 0) {
      opts.no_heavy = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::fprintf(stdout,
                   "usage: %s [--scale=F] [--queries=N] [--seed=N] "
                   "[--loss=F] [--burst=N] [--corrupt=F] [--fec-rate=F] "
                   "[--threads=N] [--repeat=N] [--full] [--no-heavy]\n",
                   argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag \"%s\"\n", arg);
      UsageExit(argv[0]);
    }
  }
  if (opts.full) {
    opts.scale = 1.0;
    if (opts.queries == 100) opts.queries = 400;  // the paper's count
  }
  return opts;
}

}  // namespace airindex::bench
