#ifndef AIRINDEX_BENCH_COMMON_OPTIONS_H_
#define AIRINDEX_BENCH_COMMON_OPTIONS_H_

#include <cstdint>
#include <string>

#include "broadcast/channel.h"

namespace airindex::bench {

/// Command-line options shared by every experiment binary.
///
/// The default `scale` shrinks the paper's networks (same topology style and
/// edge/node ratio) so the whole suite runs in minutes; pass --full (or
/// --scale=1) to reproduce at paper scale. The device heap is scaled with
/// the network so Table-2-style applicability keeps its shape (see
/// EXPERIMENTS.md).
struct BenchOptions {
  double scale = 0.2;
  size_t queries = 100;
  uint64_t seed = 20100913;  // VLDB'10 opening day
  double loss = 0.0;
  /// Loss burst length: 1 = independent losses, >1 groups losses into
  /// fade bursts of that many packets at the same long-run rate.
  uint32_t burst = 1;
  bool full = false;
  /// Skip SPQ/HiTi (whose pre-computation is all-pairs-flavoured) even in
  /// benches that normally include them.
  bool no_heavy = false;
  /// Simulation engine worker threads (0 = hardware concurrency). The
  /// engine is bit-deterministic across thread counts, so parallel runs
  /// report the same packet/memory numbers as serial ones; only the
  /// wall-clock cpu_ms measurement is subject to scheduling noise.
  unsigned threads = 1;
  /// Run each measured batch N times and report the minimum wall time
  /// (min-of-N): scheduler/cache noise only ever slows a run down, so the
  /// minimum is the stable number CI perf comparisons want. Metrics other
  /// than wall time and the wall-clock-measured cpu_ms (which comes from
  /// the last repetition) are identical across repetitions.
  unsigned repeat = 1;

  /// Device heap budget scaled with the network.
  size_t ScaledHeapBytes() const;

  /// The configured channel loss model (--loss + --burst).
  broadcast::LossModel Loss() const {
    return broadcast::LossModel::Of(loss, burst);
  }
};

/// Parses --scale=, --queries=, --seed=, --loss=, --burst=, --threads=,
/// --repeat=, --full, --no-heavy. Unknown flags abort with a usage
/// message.
BenchOptions ParseBenchOptions(int argc, char** argv);

}  // namespace airindex::bench

#endif  // AIRINDEX_BENCH_COMMON_OPTIONS_H_
