#ifndef AIRINDEX_BENCH_COMMON_OPTIONS_H_
#define AIRINDEX_BENCH_COMMON_OPTIONS_H_

#include <cstdint>
#include <string>

#include "broadcast/channel.h"

namespace airindex::bench {

/// Command-line options shared by every experiment binary.
///
/// The default `scale` shrinks the paper's networks (same topology style and
/// edge/node ratio) so the whole suite runs in minutes; pass --full (or
/// --scale=1) to reproduce at paper scale. The device heap is scaled with
/// the network so Table-2-style applicability keeps its shape (see
/// EXPERIMENTS.md).
struct BenchOptions {
  double scale = 0.2;
  size_t queries = 100;
  uint64_t seed = 20100913;  // VLDB'10 opening day
  double loss = 0.0;
  /// Loss burst length: 1 = independent losses, >1 groups losses into
  /// fade bursts of that many packets at the same long-run rate.
  uint32_t burst = 1;
  /// Per-bit corruption rate of packets that survive erasure (CRC-detected
  /// on the client; 0 = pristine payloads).
  double corrupt = 0.0;
  /// Station FEC code rate: round(fec_rate * 16) parity packets per
  /// 16-packet group (0 = no parity).
  double fec_rate = 0.0;
  bool full = false;
  /// Skip SPQ/HiTi (whose pre-computation is all-pairs-flavoured) even in
  /// benches that normally include them.
  bool no_heavy = false;
  /// Simulation engine worker threads (0 = hardware concurrency). The
  /// engine is bit-deterministic across thread counts, so parallel runs
  /// report the same packet/memory numbers as serial ones; only the
  /// wall-clock cpu_ms measurement is subject to scheduling noise.
  unsigned threads = 1;
  /// Run each measured batch N times and report the minimum wall time
  /// (min-of-N): scheduler/cache noise only ever slows a run down, so the
  /// minimum is the stable number CI perf comparisons want. Metrics other
  /// than wall time and the wall-clock-measured cpu_ms (which comes from
  /// the last repetition) are identical across repetitions.
  unsigned repeat = 1;

  /// Device heap budget scaled with the network.
  size_t ScaledHeapBytes() const;

  /// The configured channel loss model (--loss + --burst + --corrupt).
  broadcast::LossModel Loss() const {
    return broadcast::LossModel::Of(loss, burst, corrupt);
  }

  /// The configured station FEC scheme (--fec-rate).
  broadcast::FecScheme Fec() const {
    return broadcast::FecScheme::OfRate(fec_rate);
  }
};

/// Parses --scale=, --queries=, --seed=, --loss=, --burst=, --corrupt=,
/// --fec-rate=, --threads=, --repeat=, --full, --no-heavy. Numeric values
/// are validated strictly; a malformed or unknown flag aborts with a usage
/// message (exit 2).
BenchOptions ParseBenchOptions(int argc, char** argv);

}  // namespace airindex::bench

#endif  // AIRINDEX_BENCH_COMMON_OPTIONS_H_
