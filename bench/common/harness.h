#ifndef AIRINDEX_BENCH_COMMON_HARNESS_H_
#define AIRINDEX_BENCH_COMMON_HARNESS_H_

#include <string>
#include <vector>

#include "common/options.h"
#include "core/air_system.h"
#include "device/metrics.h"
#include "graph/catalog.h"
#include "graph/graph.h"
#include "workload/workload.h"

namespace airindex::bench {

/// Runs every workload query through `sys` on a channel with the given loss
/// rate and returns the per-query metrics.
std::vector<device::QueryMetrics> RunQueries(
    const core::AirSystem& sys, const graph::Graph& g,
    const workload::Workload& w, double loss_rate, uint64_t loss_seed,
    const core::ClientOptions& options);

/// Per-query metrics restricted to a subset of query indexes (Fig. 10's
/// SP-length buckets).
std::vector<device::QueryMetrics> Select(
    const std::vector<device::QueryMetrics>& all,
    const std::vector<size_t>& indexes);

/// Generates the scaled replica of a catalog network, printing what was
/// built.
graph::Graph LoadNetwork(const std::string& name, const BenchOptions& opts);

/// Prints a section header for an experiment.
void PrintHeader(const std::string& title, const BenchOptions& opts);

/// Formats bytes as MB with two decimals.
std::string Mb(double bytes);

}  // namespace airindex::bench

#endif  // AIRINDEX_BENCH_COMMON_HARNESS_H_
