#ifndef AIRINDEX_BENCH_COMMON_HARNESS_H_
#define AIRINDEX_BENCH_COMMON_HARNESS_H_

#include <string>
#include <vector>

#include "common/options.h"
#include "core/air_system.h"
#include "device/metrics.h"
#include "graph/catalog.h"
#include "graph/graph.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace airindex::bench {

/// Thin adapter over sim::Simulator: runs every workload query through
/// `sys` — one simulated client per query, `threads` workers — and returns
/// the per-query metrics. Each query listens on its own loss stream derived
/// from (loss_seed, query index), so results are identical for every
/// thread count. The loss model carries both rate and burst length
/// (BenchOptions::Loss()). `repeat` > 1 re-runs the batch N times and
/// prints the min-of-N engine wall time / throughput as a `#` comment
/// line (the returned metrics are identical across repetitions, except
/// the wall-clock-measured cpu_ms, which comes from the last one).
std::vector<device::QueryMetrics> RunQueries(
    const core::AirSystem& sys, const graph::Graph& g,
    const workload::Workload& w, broadcast::LossModel loss,
    uint64_t loss_seed, const core::ClientOptions& options,
    unsigned threads = 1, unsigned repeat = 1);

/// Per-query metrics restricted to a subset of query indexes (Fig. 10's
/// SP-length buckets).
std::vector<device::QueryMetrics> Select(
    const std::vector<device::QueryMetrics>& all,
    const std::vector<size_t>& indexes);

/// Generates the scaled replica of a catalog network, printing what was
/// built.
graph::Graph LoadNetwork(const std::string& name, const BenchOptions& opts);

/// Prints a section header for an experiment.
void PrintHeader(const std::string& title, const BenchOptions& opts);

/// Formats bytes as MB with two decimals.
std::string Mb(double bytes);

}  // namespace airindex::bench

#endif  // AIRINDEX_BENCH_COMMON_HARNESS_H_
