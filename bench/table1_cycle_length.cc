// Reproduces Table 1: broadcast cycle length (packets; seconds at 2 Mbps
// and 384 Kbps) of every method on the default (Germany) network.
//
// Expected shape (paper): DJ < NR < EB << LD < AF << SPQ < HiTi.

#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "core/systems.h"
#include "device/device_profile.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader("Table 1: broadcast cycle length (Germany)", opts);
  graph::Graph g = bench::LoadNetwork("Germany", opts);

  core::SystemParams params;
  params.arcflag_regions = 16;
  params.eb_regions = 32;
  params.nr_regions = 32;
  params.landmarks = 4;
  params.hiti_regions = 32;
  params.include_spq = !opts.no_heavy;
  params.include_hiti = !opts.no_heavy;

  auto systems = core::SystemRegistry::Global().GetAll(g, params);
  if (!systems.ok()) {
    std::fprintf(stderr, "%s\n", systems.status().ToString().c_str());
    return 1;
  }

  std::printf("%-8s %10s %14s %15s\n", "Method", "Packets", "Sec (2Mbps)",
              "Sec (384Kbps)");
  for (const auto& sys : *systems) {
    const uint32_t packets = sys->cycle().total_packets();
    std::printf("%-8s %10u %14.3f %15.3f\n",
                std::string(sys->name()).c_str(), packets,
                device::CycleSeconds(packets, device::kBitrateStatic3G),
                device::CycleSeconds(packets, device::kBitrateMoving3G));
  }
  std::printf(
      "\n# paper (full scale): DJ 14019, NR 14260, EB 15299, LD 21236,\n"
      "#                      AF 29233, SPQ 52337, HiTi 58138 packets\n");
  return 0;
}
