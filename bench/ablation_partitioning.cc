// Ablation: kd-tree vs regular-grid partitioning (§4.1's design argument).
// Compares the partition-quality statistics that drive EB/NR performance:
// region population balance, border-node count, pre-computation cost, and
// the average number of regions EB's elliptic pruning keeps per query.

#include <algorithm>
#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "core/border_precompute.h"
#include "partition/grid.h"
#include "partition/kd_tree.h"

using namespace airindex;  // NOLINT: experiment binary

namespace {

struct PartitionStats {
  size_t min_pop = 0, max_pop = 0;
  size_t borders = 0;
  double precompute_s = 0;
  double avg_needed_regions = 0;
};

PartitionStats Analyze(const graph::Graph& g,
                       partition::Partitioning part,
                       const workload::Workload& w) {
  PartitionStats stats;
  stats.min_pop = SIZE_MAX;
  for (const auto& nodes : part.region_nodes) {
    stats.min_pop = std::min(stats.min_pop, nodes.size());
    stats.max_pop = std::max(stats.max_pop, nodes.size());
  }
  auto pre = core::ComputeBorderPrecompute(g, std::move(part)).value();
  stats.borders = pre.borders.border_nodes.size();
  stats.precompute_s = pre.seconds;

  // EB pruning simulation: how many regions survive
  // mindist(Rs,R) + mindist(R,Rt) <= UB?
  double total = 0;
  for (const auto& q : w.queries) {
    const graph::RegionId rs = pre.part.node_region[q.source];
    const graph::RegionId rt = pre.part.node_region[q.target];
    const graph::Dist ub = pre.MaxDist(rs, rt);
    size_t needed = 0;
    for (graph::RegionId r = 0; r < pre.num_regions; ++r) {
      if (r == rs || r == rt) {
        ++needed;
        continue;
      }
      const graph::Dist a = pre.MinDist(rs, r);
      const graph::Dist b = pre.MinDist(r, rt);
      if (a != graph::kInfDist && b != graph::kInfDist &&
          ub != graph::kInfDist && a + b <= ub) {
        ++needed;
      }
    }
    total += static_cast<double>(needed);
  }
  stats.avg_needed_regions = total / static_cast<double>(w.queries.size());
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader("Ablation: kd-tree vs regular-grid partitioning", opts);
  graph::Graph g = bench::LoadNetwork("Germany", opts);
  auto w = workload::GenerateWorkload(g, opts.queries, opts.seed).value();

  auto kd = partition::KdTreePartitioner::Build(g, 32).value();
  auto grid = partition::GridPartitioner::Build(g, 8, 4).value();  // 32 cells

  PartitionStats kd_stats = Analyze(g, kd.Partition(g), w);
  PartitionStats grid_stats = Analyze(g, grid.Partition(g), w);

  std::printf("%-14s %10s %10s %10s %12s %14s\n", "partitioner", "min pop",
              "max pop", "borders", "precomp[s]", "needed regions");
  std::printf("%-14s %10zu %10zu %10zu %12.3f %14.2f\n", "kd-tree",
              kd_stats.min_pop, kd_stats.max_pop, kd_stats.borders,
              kd_stats.precompute_s, kd_stats.avg_needed_regions);
  std::printf("%-14s %10zu %10zu %10zu %12.3f %14.2f\n", "grid",
              grid_stats.min_pop, grid_stats.max_pop, grid_stats.borders,
              grid_stats.precompute_s, grid_stats.avg_needed_regions);
  std::printf(
      "\n# expected: kd-tree balances populations (max/min close to 1)\n"
      "# while the grid is skewed, which is the paper's reason to use\n"
      "# kd-tree partitioning.\n");
  return 0;
}
