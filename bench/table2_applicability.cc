// Reproduces Table 2: which methods fit the client device's heap on each
// evaluation network. A method is applicable iff its peak client memory
// stays within the (scale-adjusted) 8 MB J2ME heap across the workload.
//
// Expected shape (paper): NR works everywhere; EB up to India; DJ up to
// Argentina; AF/LD only on the two smallest networks.

#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "core/systems.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader("Table 2: method applicability per network", opts);
  std::printf("# heap budget scaled with network: %s MB\n",
              bench::Mb(static_cast<double>(opts.ScaledHeapBytes())).c_str());

  std::printf("%-14s %8s %8s  %-4s %-4s %-4s %-4s %-4s\n", "Network",
              "Nodes", "Edges", "AF", "LD", "DJ", "EB", "NR");

  for (const auto& spec : graph::PaperNetworks()) {
    graph::Graph g = bench::LoadNetwork(spec.name, opts);
    core::SystemParams params;
    params.arcflag_regions = 16;
    params.eb_regions = 32;
    params.nr_regions = 32;
    params.landmarks = 4;
    auto systems = core::SystemRegistry::Global().GetAll(g, params);
    if (!systems.ok()) {
      std::fprintf(stderr, "%s\n", systems.status().ToString().c_str());
      return 1;
    }
    auto w = workload::GenerateWorkload(g, opts.queries, opts.seed).value();

    core::ClientOptions copts;
    copts.heap_bytes = opts.ScaledHeapBytes();

    // Collect applicability in the paper's column order.
    std::string cell[5];
    const char* order[5] = {"AF", "LD", "DJ", "EB", "NR"};
    for (const auto& sys : *systems) {
      auto metrics = bench::RunQueries(*sys, g, w, opts.Loss(), opts.seed,
                                       copts, opts.threads, opts.repeat);
      auto summary = device::MetricsSummary::Of(metrics);
      for (int c = 0; c < 5; ++c) {
        if (sys->name() == order[c]) {
          cell[c] = summary.any_memory_exceeded ? "-" : "Y";
          // Report the driving number too.
          cell[c] += "(" + bench::Mb(summary.max_peak_memory_bytes) + ")";
        }
      }
    }
    std::printf("%-14s %8zu %8zu  %-10s %-10s %-10s %-10s %-10s\n",
                spec.name.c_str(), g.num_nodes(), g.num_arcs() / 2,
                cell[0].c_str(), cell[1].c_str(), cell[2].c_str(),
                cell[3].c_str(), cell[4].c_str());
    // The graph dies with this loop iteration; drop its cached systems.
    core::SystemRegistry::Global().Clear();
  }
  std::printf(
      "\n# paper: AF/LD only Milan+Germany; DJ up to Argentina; EB up to\n"
      "# India; NR all five. Y(x.xx) = fits, peak MB in parentheses.\n");
  return 0;
}
