// Reproduces Figure 12 (a-d, Appendix C.3): tuning time, memory, access
// latency and CPU time across the five evaluation networks.
//
// Expected shape (paper): every metric grows with network size; NR is the
// only method that stays comfortable on the largest networks; methods that
// exceed the device heap are flagged.

#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "core/systems.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader("Figure 12: performance across networks", opts);

  std::printf("%-14s %-6s %12s %10s %12s %10s %6s\n", "network", "method",
              "tuning[pkt]", "mem[MB]", "latency[pkt]", "cpu[ms]", "fits");
  for (const auto& spec : graph::PaperNetworks()) {
    graph::Graph g = bench::LoadNetwork(spec.name, opts);
    core::SystemParams params;
    params.arcflag_regions = 16;
    params.eb_regions = 32;
    params.nr_regions = 32;
    params.landmarks = 4;
    auto systems = core::SystemRegistry::Global().GetAll(g, params).value();
    auto w = workload::GenerateWorkload(g, opts.queries, opts.seed).value();

    core::ClientOptions copts;
    copts.heap_bytes = opts.ScaledHeapBytes();
    for (const auto& sys : systems) {
      auto metrics = bench::RunQueries(*sys, g, w, opts.loss, opts.seed,
                                       copts, opts.threads);
      auto s = device::MetricsSummary::Of(metrics);
      std::printf("%-14s %-6s %12.0f %10s %12.0f %10.2f %6s\n",
                  spec.name.c_str(), std::string(sys->name()).c_str(),
                  s.avg_tuning_packets,
                  bench::Mb(s.avg_peak_memory_bytes).c_str(),
                  s.avg_latency_packets, s.avg_cpu_ms,
                  s.any_memory_exceeded ? "NO" : "yes");
    }
    // The graph dies with this loop iteration; drop its cached systems.
    core::SystemRegistry::Global().Clear();
  }
  std::printf(
      "\n# paper shape: all metrics grow with network size; NR lowest\n"
      "# everywhere and the only method fitting San Francisco.\n");
  return 0;
}
