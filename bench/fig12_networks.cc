// Reproduces Figure 12 (a-d, Appendix C.3): tuning time, memory, access
// latency and CPU time across the five evaluation networks.
//
// Thin wrapper over the scenario engine: each network runs the catalog's
// "paper-baseline" scenario (one uniform J2ME group, the §7 population)
// with the figure's system knobs and the bench's scale/queries/loss.
//
// Expected shape (paper): every metric grows with network size; NR is the
// only method that stays comfortable on the largest networks; methods that
// exceed the device heap are flagged.

#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "graph/catalog.h"
#include "sim/scenario.h"
#include "sim/scenario_catalog.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader("Figure 12: performance across networks", opts);

  sim::Scenario base = sim::FindScenario("paper-baseline").value();
  base.scale = opts.scale;
  base.total_queries = opts.queries;
  base.seed = opts.seed;
  base.systems = {"DJ", "NR", "EB", "LD", "AF"};
  base.params.arcflag_regions = 16;
  base.params.eb_regions = 32;
  base.params.nr_regions = 32;
  base.params.landmarks = 4;
  for (auto& group : base.groups) {
    group.loss = opts.Loss();
    group.client.heap_bytes = opts.ScaledHeapBytes();
    // Pin the workload stream to the bench seed (instead of the scenario's
    // derived per-group stream) so --seed reproduces prior fig12 runs.
    group.workload.seed = opts.seed;
  }

  sim::ScenarioRunner::RunOptions ro;
  ro.threads = opts.threads;
  sim::ScenarioRunner runner(ro);

  std::printf("%-14s %-6s %12s %10s %12s %10s %6s\n", "network", "method",
              "tuning[pkt]", "mem[MB]", "latency[pkt]", "cpu[ms]", "fits");
  for (const auto& spec : graph::PaperNetworks()) {
    base.network = spec.name;
    auto result = runner.Run(base);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   result.status().ToString().c_str());
      return 1;
    }
    for (const sim::SystemResult& r : result->fleet) {
      const sim::Aggregate& a = r.aggregate;
      std::printf("%-14s %-6s %12.0f %10s %12.0f %10.2f %6s\n",
                  spec.name.c_str(), a.system.c_str(),
                  a.tuning_packets.mean,
                  bench::Mb(a.peak_memory_bytes.mean).c_str(),
                  a.latency_packets.mean, a.cpu_ms.mean,
                  a.memory_exceeded > 0 ? "NO" : "yes");
    }
  }
  std::printf(
      "\n# paper shape: all metrics grow with network size; NR lowest\n"
      "# everywhere and the only method fitting San Francisco.\n");
  return 0;
}
