// Reproduces Figure 14 (a-b, Appendix C.5): tuning time and access latency
// versus packet-loss rate (0.1% to 10%).
//
// Expected shape (paper): all methods degrade with loss; NR remains the
// clear winner at every rate; the lower a method's tuning time, the less it
// degrades.

#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "core/systems.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader("Figure 14: effect of packet loss (Germany)", opts);
  graph::Graph g = bench::LoadNetwork("Germany", opts);

  core::SystemParams params;
  params.arcflag_regions = 16;
  params.eb_regions = 32;
  params.nr_regions = 32;
  params.landmarks = 4;
  auto systems = core::SystemRegistry::Global().GetAll(g, params).value();
  auto w = workload::GenerateWorkload(g, opts.queries, opts.seed).value();

  const double rates[5] = {0.001, 0.005, 0.01, 0.05, 0.10};

  for (const char* panel : {"(a) tuning time [packets]",
                            "(b) access latency [packets]"}) {
    const bool tuning = panel[1] == 'a';
    std::printf("\n%s\n%-10s", panel, "loss");
    for (const auto& sys : systems) {
      std::printf(" %10s", std::string(sys->name()).c_str());
    }
    std::printf("\n");
    for (double rate : rates) {
      std::printf("%-10.1f%%", rate * 100);
      const auto loss = broadcast::LossModel::Of(rate, opts.burst);
      for (const auto& sys : systems) {
        core::ClientOptions copts;
        copts.max_repair_cycles = 64;
        auto metrics = bench::RunQueries(*sys, g, w, loss, opts.seed + 31,
                                         copts, opts.threads, opts.repeat);
        auto s = device::MetricsSummary::Of(metrics);
        std::printf(" %10.0f",
                    tuning ? s.avg_tuning_packets : s.avg_latency_packets);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\n# paper shape: NR wins at every loss rate; degradation is\n"
      "# proportional to a method's tuning time.\n");
  return 0;
}
