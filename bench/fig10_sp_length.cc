// Reproduces Figure 10 (a-d): tuning time, memory, access latency and CPU
// time versus shortest-path length (4 buckets) on the Germany network.
//
// Expected shape (paper): NR best and EB runner-up in tuning/memory; EB
// degrades toward DJ for long paths; full-cycle methods flat and high; NR
// latency below even DJ's.

#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "core/systems.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader("Figure 10: effect of shortest-path length (Germany)",
                     opts);
  graph::Graph g = bench::LoadNetwork("Germany", opts);

  core::SystemParams params;
  params.arcflag_regions = 16;
  params.eb_regions = 32;
  params.nr_regions = 32;
  params.landmarks = 4;
  auto systems = core::SystemRegistry::Global().GetAll(g, params).value();
  auto w = workload::GenerateWorkload(g, opts.queries, opts.seed).value();
  auto buckets = workload::BucketizeByLength(w, 4);
  const graph::Dist max_dist = workload::MaxTrueDist(w);

  // All per-query metrics per method, computed once.
  std::vector<std::vector<device::QueryMetrics>> per_method;
  for (const auto& sys : systems) {
    per_method.push_back(bench::RunQueries(*sys, g, w, opts.Loss(), opts.seed,
                                           {}, opts.threads, opts.repeat));
  }

  const char* panels[4] = {"(a) tuning time [packets]", "(b) memory [MB]",
                           "(c) access latency [packets]",
                           "(d) CPU time [ms]"};
  for (int panel = 0; panel < 4; ++panel) {
    std::printf("\n%s\n", panels[panel]);
    std::printf("%-22s", "SP range");
    for (const auto& sys : systems) {
      std::printf(" %10s", std::string(sys->name()).c_str());
    }
    std::printf("\n");
    for (int b = 0; b < 4; ++b) {
      char label[64];
      std::snprintf(label, sizeof(label), "%.0f-%.0f (%zuq)",
                    static_cast<double>(max_dist) * b / 4,
                    static_cast<double>(max_dist) * (b + 1) / 4,
                    buckets[b].size());
      std::printf("%-22s", label);
      for (size_t mi = 0; mi < systems.size(); ++mi) {
        auto sel = bench::Select(per_method[mi], buckets[b]);
        auto s = device::MetricsSummary::Of(sel);
        switch (panel) {
          case 0:
            std::printf(" %10.0f", s.avg_tuning_packets);
            break;
          case 1:
            std::printf(" %10s", bench::Mb(s.avg_peak_memory_bytes).c_str());
            break;
          case 2:
            std::printf(" %10.0f", s.avg_latency_packets);
            break;
          case 3:
            std::printf(" %10.2f", s.avg_cpu_ms);
            break;
        }
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\n# paper shape: NR << EB << DJ < LD < AF in tuning/memory; EB\n"
      "# grows with path length; NR latency < DJ latency.\n");
  return 0;
}
