// Broadcast-disk scheduling sweep: flat vs static square-root-rule disks
// vs the online re-planner, across destination skew, on every system.
//
// Each grid point runs the shared-channel event engine (the online mode
// re-plans from observed arrivals, which only exists on a shared
// timeline) over a Poisson-arrival workload whose destinations follow a
// zipf law of exponent z. Expected shape: at z=0 every planner collapses
// to the flat cycle (the skew gate and the wait-profile audit both refuse
// plans that cannot pay for their cycle stretch), and the p95 wait_ms win
// of the disk schedules grows monotonically with z on the systems whose
// index layout leaves room to win (EB's sparse global index; NR's dense
// (1,m) layout is already wait-optimal and stays flat by audit). Emits
// one airindex.sim.batch/v1 document to stdout (system names suffixed
// "@MODE@zZ" so tools/perf_compare.py tracks each grid point as its own
// series) and the improvement table to stderr.

#include <cstdio>
#include <string>
#include <vector>

#include "common/options.h"
#include "core/systems.h"
#include "graph/catalog.h"
#include "sim/event_engine.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/workload.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  std::fprintf(
      stderr,
      "# disk schedule sweep on Milan: scale=%.2f queries=%zu seed=%llu\n",
      opts.scale, opts.queries, static_cast<unsigned long long>(opts.seed));
  graph::Graph g =
      graph::MakeNetwork(graph::FindNetwork("Milan").value(), opts.scale)
          .value();
  std::fprintf(stderr, "# %zu nodes, %zu arcs\n", g.num_nodes(),
               g.num_arcs());

  core::SystemParams params;
  params.include_spq = !opts.no_heavy;
  params.include_hiti = !opts.no_heavy;
  auto systems = core::SystemRegistry::Global().GetAll(g, params).value();

  const double skews[4] = {0.0, 0.6, 0.9, 1.2};
  const char* modes[3] = {"flat", "static", "online"};

  sim::BatchResult batch;
  batch.engine = "event";
  batch.num_queries = opts.queries;
  batch.loss_seed = opts.seed;

  for (double z : skews) {
    workload::WorkloadSpec wspec;
    wspec.count = opts.queries;
    wspec.seed = opts.seed;
    if (z > 0.0) {
      wspec.dest = workload::WorkloadSpec::Dest::kZipf;
      wspec.zipf_s = z;
    }
    wspec.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
    wspec.arrival.rate_per_second = 20.0;
    auto w = workload::GenerateWorkload(g, wspec).value();
    const std::vector<double> demand =
        workload::DestinationWeights(g.num_nodes(), wspec);

    std::fprintf(stderr, "\nz=%.1f\n%-6s %12s %12s %12s %12s %12s\n", z,
                 "method", "flat p95", "static p95", "online p95",
                 "static[%]", "online[%]");
    for (const auto& sys : systems) {
      double p95[3] = {0.0, 0.0, 0.0};
      for (int mi = 0; mi < 3; ++mi) {
        sim::EventOptions eo;
        eo.threads = opts.threads;
        eo.repeat = opts.repeat;
        eo.loss = opts.Loss();
        eo.station_seed = opts.seed;
        eo.deterministic = true;
        if (mi == 1) {
          eo.schedule.mode = sim::SchedulePolicy::Mode::kStatic;
          eo.schedule_demand = demand;
        } else if (mi == 2) {
          eo.schedule.mode = sim::SchedulePolicy::Mode::kOnline;
        }
        sim::EventEngine engine(g, eo);
        batch.threads = engine.effective_threads();

        sim::SystemResult r = engine.RunSystem(*sys, w);
        p95[mi] = r.aggregate.wait_ms.p95;
        char name[64];
        std::snprintf(name, sizeof(name), "%s@%s@z%.1f", r.system.c_str(),
                      modes[mi], z);
        r.system = name;
        r.aggregate.system = name;
        r.per_query.clear();  // the batch doc carries aggregates only
        batch.wall_seconds += r.wall_seconds;
        batch.systems.push_back(std::move(r));
      }
      auto imp = [&](double v) {
        return p95[0] > 0.0 ? 100.0 * (v - p95[0]) / p95[0] : 0.0;
      };
      std::fprintf(stderr, "%-6s %12.1f %12.1f %12.1f %+12.1f %+12.1f\n",
                   std::string(sys->name()).c_str(), p95[0], p95[1], p95[2],
                   imp(p95[1]), imp(p95[2]));
    }
  }

  std::fputs(sim::ToJson(batch).c_str(), stdout);
  std::fprintf(stderr,
               "\n# win grows with z: the square-root rule repeats hot "
               "groups and index copies,\n# cutting the doze-to-index "
               "tail; near-uniform demand stays flat by the skew gate.\n");
  return 0;
}
