// Reproduces Table 3 (Appendix C.2): server pre-computation time in seconds
// per network for EB/NR (shared border-pair computation), ArcFlag and
// Landmark.
//
// Expected shape (paper): Landmark is near-instant; EB/NR and ArcFlag grow
// with network size but stay practical (one-off cost).

#include <cstdio>

#include "common/harness.h"
#include "common/options.h"
#include "core/border_precompute.h"
#include "core/systems.h"
#include "partition/kd_tree.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  bench::PrintHeader("Table 3: pre-computation time (seconds)", opts);

  std::printf("%-14s %12s %12s %12s\n", "Network", "EB/NR", "ArcFlag",
              "Landmark");
  for (const auto& spec : graph::PaperNetworks()) {
    graph::Graph g = bench::LoadNetwork(spec.name, opts);

    auto kd = partition::KdTreePartitioner::Build(g, 32).value();
    auto pre = core::ComputeBorderPrecompute(g, kd.Partition(g)).value();

    auto& registry = core::SystemRegistry::Global();
    auto af = registry.Get(g, "AF").value();
    auto ld = registry.Get(g, "LD").value();

    std::printf("%-14s %12.3f %12.3f %12.3f\n", spec.name.c_str(),
                pre.seconds, af->precompute_seconds(),
                ld->precompute_seconds());
    registry.Clear();  // the graph dies with this loop iteration
  }
  std::printf(
      "\n# paper (full scale, 3 GHz single core): Germany 61.8/58.1/1.0;\n"
      "# San Francisco 6332/2165/5.3 seconds. Ours is multi-threaded, so\n"
      "# absolute values are lower; growth with network size is the shape\n"
      "# to compare.\n");
  return 0;
}
