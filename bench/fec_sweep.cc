// Code-rate x loss-rate sweep of the FEC-coded broadcast cycle: every
// system runs the same workload at parity 0 (plain next-cycle repair),
// 1, 2, and 4 parity packets per 16-packet group, across three loss
// rates.
//
// Expected shape: parity stretches the cycle (latency floor rises by
// p/16), but once the loss rate exceeds the code overhead, reconstruction
// beats waiting a full cycle for a repair pass — the wait_ms p95 frontier
// crosses. Emits one airindex.sim.batch/v1 document to stdout (system
// names suffixed "@pP@lRATE" so tools/perf_compare.py tracks each grid
// point as its own series) and the frontier table to stderr.

#include <cstdio>
#include <string>
#include <vector>

#include "common/options.h"
#include "core/systems.h"
#include "graph/catalog.h"
#include "sim/report.h"
#include "sim/simulator.h"
#include "workload/workload.h"

using namespace airindex;  // NOLINT: experiment binary

int main(int argc, char** argv) {
  bench::BenchOptions opts = bench::ParseBenchOptions(argc, argv);
  // stdout carries exactly one batch/v1 JSON document (CI feeds it to
  // perf_compare.py), so the usual harness banner goes to stderr.
  std::fprintf(stderr,
               "# FEC sweep on Germany: scale=%.2f queries=%zu seed=%llu\n",
               opts.scale, opts.queries,
               static_cast<unsigned long long>(opts.seed));
  graph::Graph g =
      graph::MakeNetwork(graph::FindNetwork("Germany").value(), opts.scale)
          .value();
  std::fprintf(stderr, "# %zu nodes, %zu arcs\n", g.num_nodes(),
               g.num_arcs());

  core::SystemParams params;
  params.arcflag_regions = 16;
  params.eb_regions = 32;
  params.nr_regions = 32;
  params.landmarks = 4;
  params.include_spq = !opts.no_heavy;
  params.include_hiti = !opts.no_heavy;
  auto systems = core::SystemRegistry::Global().GetAll(g, params).value();
  auto w = workload::GenerateWorkload(g, opts.queries, opts.seed).value();

  const uint32_t parities[4] = {0, 1, 2, 4};
  const double rates[3] = {0.005, 0.02, 0.05};

  sim::BatchResult batch;
  batch.num_queries = w.queries.size();
  batch.loss_seed = opts.seed + 31;

  for (double rate : rates) {
    std::fprintf(stderr,
                 "\nloss %.2f%%%s\n%-6s %6s %12s %12s %12s %12s\n",
                 rate * 100.0, opts.corrupt > 0.0 ? " (+corruption)" : "",
                 "method", "parity", "tuning[pkt]", "wait p95[ms]",
                 "listen[ms]", "recovered");
    for (const auto& sys : systems) {
      for (uint32_t p : parities) {
        sim::SimOptions so;
        so.threads = opts.threads;
        so.repeat = opts.repeat;
        so.loss = broadcast::LossModel::Of(rate, opts.burst, opts.corrupt);
        so.fec = broadcast::FecScheme{16, p};
        so.loss_seed = opts.seed + 31;
        so.client.max_repair_cycles = 64;
        sim::Simulator simulator(g, so);
        batch.threads = simulator.effective_threads();

        sim::SystemResult r = simulator.RunSystem(*sys, w);
        char name[64];
        std::snprintf(name, sizeof(name), "%s@p%u@l%.4f",
                      r.system.c_str(), p, rate);
        std::fprintf(stderr, "%-6s %6u %12.0f %12.1f %12.1f %12.2f\n",
                     r.system.c_str(), p, r.aggregate.tuning_packets.mean,
                     r.aggregate.wait_ms.p95, r.aggregate.listen_ms.mean,
                     r.aggregate.fec_recovered.mean);
        r.system = name;
        r.aggregate.system = name;
        r.per_query.clear();  // the batch doc carries aggregates only
        batch.wall_seconds += r.wall_seconds;
        batch.systems.push_back(std::move(r));
      }
    }
  }

  std::fputs(sim::ToJson(batch).c_str(), stdout);
  std::fprintf(stderr,
               "\n# frontier: parity raises the latency floor by p/16 of "
               "a cycle;\n# above that loss rate, in-group reconstruction "
               "beats next-cycle repair.\n");
  return 0;
}
