#include "algo/hiti.h"

#include <gtest/gtest.h>

#include "algo/dijkstra.h"
#include "testing/test_graphs.h"

namespace airindex::algo {
namespace {

using testing_support::RandomPairs;
using testing_support::SmallNetwork;

struct Built {
  graph::Graph g;
  HiTiIndex idx;
};

Built Make(uint32_t nodes, uint32_t edges, uint64_t seed, uint32_t regions) {
  graph::Graph g = SmallNetwork(nodes, edges, seed);
  auto kd = partition::KdTreePartitioner::Build(g, regions).value();
  auto idx = HiTiIndex::Build(g, kd).value();
  return {std::move(g), std::move(idx)};
}

class HiTiCorrectnessTest : public ::testing::TestWithParam<
                                std::tuple<uint64_t, uint32_t>> {};

TEST_P(HiTiCorrectnessTest, DistanceMatchesDijkstra) {
  auto [seed, regions] = GetParam();
  Built built = Make(300, 480, seed, regions);
  for (auto [s, t] : RandomPairs(built.g, 20, seed + 3)) {
    const graph::Dist truth = DijkstraPath(built.g, s, t).dist;
    EXPECT_EQ(built.idx.QueryDistance(built.g, s, t), truth)
        << s << "->" << t << " regions=" << regions;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRegions, HiTiCorrectnessTest,
    ::testing::Combine(::testing::Values(41, 42, 43),
                       ::testing::Values(4u, 8u, 16u)));

TEST(HiTiTest, SameRegionQueriesAreExact) {
  Built built = Make(400, 640, 51, 8);
  const auto& part = built.idx.partitioning();
  // Pick pairs inside one region.
  for (graph::RegionId r = 0; r < 8; ++r) {
    const auto& nodes = part.region_nodes[r];
    if (nodes.size() < 2) continue;
    const graph::NodeId s = nodes.front(), t = nodes.back();
    EXPECT_EQ(built.idx.QueryDistance(built.g, s, t),
              DijkstraPath(built.g, s, t).dist);
  }
}

TEST(HiTiTest, SuperEdgesAreAtLeastGlobalDistances) {
  Built built = Make(300, 480, 52, 8);
  // Within-sub-graph shortest paths can never beat full-graph ones.
  for (uint32_t h = 1; h < 16; ++h) {
    const auto& sub = built.idx.Info(h);
    const size_t nb = sub.border.size();
    for (size_t i = 0; i < nb && i < 4; ++i) {
      SearchTree tree = DijkstraAll(built.g, sub.border[i]);
      for (size_t j = 0; j < nb; ++j) {
        if (sub.dmat[i * nb + j] == graph::kInfDist) continue;
        EXPECT_GE(sub.dmat[i * nb + j], tree.dist[sub.border[j]]);
      }
    }
  }
}

TEST(HiTiTest, RootSubgraphHasNoBorder) {
  Built built = Make(200, 320, 53, 8);
  // The root covers the whole network; nothing crosses its boundary.
  EXPECT_TRUE(built.idx.Info(1).border.empty());
}

TEST(HiTiTest, IndexBytesExceedNetworkScale) {
  Built built = Make(500, 800, 54, 16);
  // HiTi's defining problem in the paper: voluminous pre-computed tables.
  EXPECT_GT(built.idx.IndexBytes(), 10000u);
  EXPECT_GT(built.idx.MemoryBytes(), 0u);
}

TEST(HiTiTest, FromTablesReproducesQueries) {
  Built built = Make(250, 400, 55, 8);
  std::vector<HiTiIndex::SubgraphInfo> subs(16);
  for (uint32_t h = 1; h < 16; ++h) subs[h] = built.idx.Info(h);
  HiTiIndex copy = HiTiIndex::FromTables(
      8, built.idx.partitioning(), std::move(subs));
  for (auto [s, t] : RandomPairs(built.g, 10, 56)) {
    EXPECT_EQ(copy.QueryDistance(built.g, s, t),
              built.idx.QueryDistance(built.g, s, t));
  }
}

}  // namespace
}  // namespace airindex::algo
