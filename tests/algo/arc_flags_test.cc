#include "algo/arc_flags.h"

#include <gtest/gtest.h>

#include "algo/dijkstra.h"
#include "partition/kd_tree.h"
#include "testing/test_graphs.h"

namespace airindex::algo {
namespace {

using testing_support::RandomPairs;
using testing_support::SmallNetwork;

struct BuiltIndex {
  graph::Graph g;
  ArcFlagIndex idx;
};

BuiltIndex Make(uint32_t nodes, uint32_t edges, uint64_t seed,
                uint32_t regions) {
  graph::Graph g = SmallNetwork(nodes, edges, seed);
  auto kd = partition::KdTreePartitioner::Build(g, regions).value();
  auto part = kd.Partition(g);
  auto idx = ArcFlagIndex::Build(g, part.node_region, regions).value();
  return {std::move(g), std::move(idx)};
}

TEST(ArcFlagTest, RejectsBadInput) {
  graph::Graph g = SmallNetwork(100, 160, 1);
  EXPECT_FALSE(ArcFlagIndex::Build(g, {}, 4).ok());
  std::vector<graph::RegionId> labels(g.num_nodes(), 9);
  EXPECT_FALSE(ArcFlagIndex::Build(g, labels, 4).ok());  // id out of range
}

TEST(ArcFlagTest, BytesPerArcIsTwoPerRegion) {
  auto built = Make(100, 160, 2, 4);
  EXPECT_EQ(built.idx.BytesPerArc(), 8u);
  auto built16 = Make(100, 160, 2, 16);
  EXPECT_EQ(built16.idx.BytesPerArc(), 32u);
}

TEST(ArcFlagTest, IntraRegionArcsAlwaysFlagged) {
  auto built = Make(200, 320, 3, 8);
  const auto& labels = built.idx.node_region();
  size_t arc_index = 0;
  for (graph::NodeId v = 0; v < built.g.num_nodes(); ++v) {
    for (const auto& arc : built.g.OutArcs(v)) {
      EXPECT_TRUE(built.idx.ArcAllowed(arc_index, labels[arc.to]));
      ++arc_index;
    }
  }
}

class ArcFlagCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ArcFlagCorrectnessTest, QueryMatchesDijkstra) {
  auto built = Make(300, 480, GetParam(), 8);
  for (auto [s, t] : RandomPairs(built.g, 25, GetParam() + 5)) {
    Path flagged = built.idx.Query(built.g, s, t);
    Path truth = DijkstraPath(built.g, s, t);
    EXPECT_EQ(flagged.dist, truth.dist) << s << "->" << t;
    EXPECT_EQ(PathLength(built.g, flagged.nodes), flagged.dist);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArcFlagCorrectnessTest,
                         ::testing::Values(10, 11, 12, 13));

TEST(ArcFlagTest, PrunesSearchSpaceForCrossRegionQueries) {
  auto built = Make(800, 1280, 21, 16);
  size_t flagged_total = 0, plain_total = 0;
  for (auto [s, t] : RandomPairs(built.g, 30, 22)) {
    size_t settled = 0;
    built.idx.Query(built.g, s, t, &settled);
    flagged_total += settled;
    plain_total += DijkstraSearch(built.g, s, t, AllEdges{}).settled;
  }
  EXPECT_LT(flagged_total, plain_total);
}

TEST(ArcFlagTest, SetAllFlagsMakesArcAlwaysAllowed) {
  auto built = Make(100, 160, 4, 8);
  ArcFlagIndex empty = ArcFlagIndex::MakeEmpty(built.g.num_arcs(), 8,
                                               built.idx.node_region());
  EXPECT_FALSE(empty.ArcAllowed(0, 3));
  empty.SetAllFlags(0);
  for (graph::RegionId r = 0; r < 8; ++r) {
    EXPECT_TRUE(empty.ArcAllowed(0, r));
  }
}

TEST(ArcFlagTest, AllOnesIndexStillExact) {
  // The §6.2 loss fallback: flags all set degrade to plain Dijkstra.
  auto built = Make(200, 320, 5, 8);
  ArcFlagIndex allones = ArcFlagIndex::MakeEmpty(built.g.num_arcs(), 8,
                                                 built.idx.node_region());
  for (size_t a = 0; a < built.g.num_arcs(); ++a) allones.SetAllFlags(a);
  for (auto [s, t] : RandomPairs(built.g, 10, 6)) {
    EXPECT_EQ(allones.Query(built.g, s, t).dist,
              DijkstraPath(built.g, s, t).dist);
  }
}

TEST(ArcFlagTest, WordSerializationRoundTrip) {
  auto built = Make(150, 240, 7, 16);
  // Rebuild an index from the exported words and compare behaviour.
  ArcFlagIndex copy = ArcFlagIndex::MakeEmpty(built.g.num_arcs(), 16,
                                              built.idx.node_region());
  for (size_t a = 0; a < built.g.num_arcs(); ++a) {
    for (graph::RegionId r = 0; r < 16; ++r) {
      if (built.idx.ArcAllowed(a, r)) copy.SetArcFlag(a, r);
    }
  }
  for (auto [s, t] : RandomPairs(built.g, 10, 8)) {
    EXPECT_EQ(copy.Query(built.g, s, t).dist,
              built.idx.Query(built.g, s, t).dist);
  }
}

}  // namespace
}  // namespace airindex::algo
