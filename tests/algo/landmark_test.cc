#include "algo/landmark.h"

#include <gtest/gtest.h>

#include "algo/dijkstra.h"
#include "testing/test_graphs.h"

namespace airindex::algo {
namespace {

using testing_support::RandomPairs;
using testing_support::SmallNetwork;

TEST(LandmarkTest, BuildSelectsDistinctLandmarks) {
  graph::Graph g = SmallNetwork();
  auto idx = LandmarkIndex::Build(g, 4);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->num_landmarks(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = i + 1; j < 4; ++j) {
      EXPECT_NE(idx->landmarks()[i], idx->landmarks()[j]);
    }
  }
}

TEST(LandmarkTest, RejectsBadCounts) {
  graph::Graph g = SmallNetwork(50, 80, 5);
  EXPECT_FALSE(LandmarkIndex::Build(g, 0).ok());
  EXPECT_FALSE(LandmarkIndex::Build(g, 51).ok());
}

TEST(LandmarkTest, DistanceVectorsMatchDijkstra) {
  graph::Graph g = SmallNetwork(200, 320, 9);
  auto idx = LandmarkIndex::Build(g, 3);
  ASSERT_TRUE(idx.ok());
  graph::Graph rev = g.Reversed();
  for (uint32_t l = 0; l < 3; ++l) {
    const graph::NodeId lm = idx->landmarks()[l];
    SearchTree fwd = DijkstraAll(g, lm);
    SearchTree bwd = DijkstraAll(rev, lm);
    for (graph::NodeId v = 0; v < g.num_nodes(); v += 17) {
      EXPECT_EQ(idx->FromLandmark(l, v), fwd.dist[v]);
      EXPECT_EQ(idx->ToLandmark(l, v), bwd.dist[v]);
    }
  }
}

/// The key ALT property: the bound never overestimates.
class LandmarkBoundTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LandmarkBoundTest, LowerBoundIsAdmissible) {
  graph::Graph g = SmallNetwork(250, 400, GetParam());
  auto idx = LandmarkIndex::Build(g, 4, GetParam());
  ASSERT_TRUE(idx.ok());
  for (auto [s, t] : RandomPairs(g, 15, GetParam() + 7)) {
    const graph::Dist truth = DijkstraPath(g, s, t).dist;
    EXPECT_LE(idx->LowerBound(s, t), truth) << s << "->" << t;
  }
}

TEST_P(LandmarkBoundTest, QueryIsExact) {
  graph::Graph g = SmallNetwork(250, 400, GetParam() + 100);
  auto idx = LandmarkIndex::Build(g, 4, GetParam());
  ASSERT_TRUE(idx.ok());
  for (auto [s, t] : RandomPairs(g, 15, GetParam() + 13)) {
    Path p = idx->Query(g, s, t);
    EXPECT_EQ(p.dist, DijkstraPath(g, s, t).dist);
    EXPECT_EQ(PathLength(g, p.nodes), p.dist);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LandmarkBoundTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(LandmarkTest, QueryUsuallySettlesFewerThanDijkstra) {
  graph::Graph g = SmallNetwork(800, 1280, 31);
  auto idx = LandmarkIndex::Build(g, 8);
  ASSERT_TRUE(idx.ok());
  size_t alt_total = 0, dj_total = 0;
  for (auto [s, t] : RandomPairs(g, 30, 32)) {
    size_t settled = 0;
    idx->Query(g, s, t, &settled);
    alt_total += settled;
    SearchTree tree = DijkstraSearch(g, s, t, AllEdges{});
    dj_total += tree.settled;
  }
  EXPECT_LT(alt_total, dj_total);
}

TEST(LandmarkTest, BytesPerNodeFormula) {
  graph::Graph g = SmallNetwork(100, 160, 3);
  auto idx = LandmarkIndex::Build(g, 4);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->BytesPerNode(), 4u * 2 * 4);
}

}  // namespace
}  // namespace airindex::algo
