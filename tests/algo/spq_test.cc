#include "algo/spq.h"

#include <gtest/gtest.h>

#include "algo/dijkstra.h"
#include "testing/test_graphs.h"

namespace airindex::algo {
namespace {

using testing_support::RandomPairs;
using testing_support::SmallNetwork;

TEST(SpqTest, RejectsTinyGraph) {
  graph::GraphBuilder b;
  b.AddNode({0, 0});
  auto g = std::move(b).Build().value();
  EXPECT_FALSE(SpqIndex::Build(g).ok());
}

class SpqCorrectnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpqCorrectnessTest, QueryMatchesDijkstra) {
  graph::Graph g = SmallNetwork(150, 240, GetParam());
  auto idx = SpqIndex::Build(g);
  ASSERT_TRUE(idx.ok());
  for (auto [s, t] : RandomPairs(g, 25, GetParam() + 1)) {
    graph::Path p = idx->Query(g, s, t);
    ASSERT_TRUE(p.found()) << s << "->" << t;
    EXPECT_EQ(p.dist, DijkstraPath(g, s, t).dist);
    EXPECT_EQ(PathLength(g, p.nodes), p.dist);
    EXPECT_EQ(p.nodes.front(), s);
    EXPECT_EQ(p.nodes.back(), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpqCorrectnessTest,
                         ::testing::Values(61, 62, 63));

TEST(SpqTest, ColorIsValidArcOrdinal) {
  graph::Graph g = SmallNetwork(120, 200, 64);
  auto idx = SpqIndex::Build(g);
  ASSERT_TRUE(idx.ok());
  for (graph::NodeId v = 0; v < g.num_nodes(); v += 13) {
    for (graph::NodeId t = 0; t < g.num_nodes(); t += 29) {
      if (v == t) continue;
      const int32_t color = idx->ColorOf(v, g.Coord(t));
      ASSERT_GE(color, 0);
      ASSERT_LT(static_cast<size_t>(color), g.OutDegree(v));
    }
  }
}

TEST(SpqTest, FirstHopLiesOnShortestPath) {
  graph::Graph g = SmallNetwork(120, 200, 65);
  auto idx = SpqIndex::Build(g);
  ASSERT_TRUE(idx.ok());
  for (auto [s, t] : RandomPairs(g, 15, 66)) {
    const int32_t color = idx->ColorOf(s, g.Coord(t));
    ASSERT_GE(color, 0);
    const auto& arc = g.OutArcs(s)[color];
    const graph::Dist d_full = DijkstraPath(g, s, t).dist;
    const graph::Dist d_rest = DijkstraPath(g, arc.to, t).dist;
    EXPECT_EQ(d_full, d_rest + arc.weight);
  }
}

TEST(SpqTest, SizeOnlyBuildMatchesFullBuild) {
  graph::Graph g = SmallNetwork(100, 160, 67);
  auto idx = SpqIndex::Build(g);
  auto size_only = SpqIndex::BuildSizeOnly(g);
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(size_only.ok());
  EXPECT_EQ(idx->IndexBytes(), *size_only);
}

TEST(SpqTest, FromPartsReproducesQueries) {
  graph::Graph g = SmallNetwork(100, 160, 68);
  auto idx = SpqIndex::Build(g);
  ASSERT_TRUE(idx.ok());
  std::vector<SpqIndex::Tree> trees;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    trees.push_back(idx->TreeOf(v));
  }
  SpqIndex copy = SpqIndex::FromParts(idx->root_min_x(), idx->root_min_y(),
                                      idx->root_size(), std::move(trees));
  for (auto [s, t] : RandomPairs(g, 10, 69)) {
    EXPECT_EQ(copy.Query(g, s, t).dist, idx->Query(g, s, t).dist);
  }
}

TEST(SpqTest, IndexIsLargerThanAdjacency) {
  graph::Graph g = SmallNetwork(300, 480, 70);
  auto idx = SpqIndex::Build(g);
  ASSERT_TRUE(idx.ok());
  // The paper's point: per-node quadtrees dwarf the network data.
  EXPECT_GT(idx->IndexBytes(), g.num_arcs() * 8);
}

}  // namespace
}  // namespace airindex::algo
