#include "algo/astar.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algo/dijkstra.h"
#include "testing/test_graphs.h"

namespace airindex::algo {
namespace {

using testing_support::RandomPairs;
using testing_support::SmallNetwork;

TEST(AStarTest, ZeroBoundEqualsDijkstra) {
  graph::Graph g = SmallNetwork();
  for (auto [s, t] : RandomPairs(g, 20, 77)) {
    Path astar = AStarPath(g, s, t, [](graph::NodeId) { return 0; });
    Path dijkstra = DijkstraPath(g, s, t);
    EXPECT_EQ(astar.dist, dijkstra.dist);
  }
}

TEST(AStarTest, ExactBoundSettlesOnlyPathNodes) {
  graph::Graph g = SmallNetwork();
  const graph::NodeId s = 3, t = 200;
  // Perfect heuristic: true remaining distance.
  graph::Graph rev = g.Reversed();
  SearchTree to_t = DijkstraAll(rev, t);
  size_t settled_exact = 0;
  Path p = AStarPath(
      g, s, t, [&](graph::NodeId v) { return to_t.dist[v]; },
      &settled_exact);
  size_t settled_zero = 0;
  AStarPath(
      g, s, t, [](graph::NodeId) { return 0; }, &settled_zero);
  ASSERT_TRUE(p.found());
  EXPECT_LT(settled_exact, settled_zero);
}

TEST(AStarTest, AdmissibleEuclideanBoundRemainsExact) {
  graph::Graph g = SmallNetwork();
  // Weights are rounded Euclidean lengths, so floor(euclid) - 1 is
  // admissible.
  auto euclid_lb = [&](graph::NodeId v, graph::NodeId t) {
    const auto& a = g.Coord(v);
    const auto& b = g.Coord(t);
    const double d = std::hypot(a.x - b.x, a.y - b.y);
    return static_cast<graph::Dist>(d > 2 ? d - 2 : 0);
  };
  for (auto [s, t] : RandomPairs(g, 20, 78)) {
    Path astar =
        AStarPath(g, s, t, [&](graph::NodeId v) { return euclid_lb(v, t); });
    Path dijkstra = DijkstraPath(g, s, t);
    EXPECT_EQ(astar.dist, dijkstra.dist) << s << "->" << t;
  }
}

TEST(AStarTest, PathEdgesExist) {
  graph::Graph g = SmallNetwork();
  for (auto [s, t] : RandomPairs(g, 10, 79)) {
    Path p = AStarPath(g, s, t, [](graph::NodeId) { return 0; });
    ASSERT_TRUE(p.found());
    EXPECT_EQ(PathLength(g, p.nodes), p.dist);
  }
}

}  // namespace
}  // namespace airindex::algo
