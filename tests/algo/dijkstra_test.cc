#include "algo/dijkstra.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace airindex::algo {
namespace {

using testing_support::RandomPairs;
using testing_support::SmallNetwork;

graph::Graph Line() {
  graph::GraphBuilder b;
  for (int i = 0; i < 5; ++i) b.AddNode({static_cast<double>(i), 0});
  for (int i = 0; i < 4; ++i) b.AddBidirectional(i, i + 1, i + 1);
  return std::move(b).Build().value();
}

TEST(DijkstraTest, LineGraphDistances) {
  graph::Graph g = Line();
  SearchTree tree = DijkstraAll(g, 0);
  EXPECT_EQ(tree.dist[0], 0u);
  EXPECT_EQ(tree.dist[1], 1u);
  EXPECT_EQ(tree.dist[2], 3u);
  EXPECT_EQ(tree.dist[3], 6u);
  EXPECT_EQ(tree.dist[4], 10u);
}

TEST(DijkstraTest, ParentChainReconstructsPath) {
  graph::Graph g = Line();
  Path p = DijkstraPath(g, 0, 4);
  ASSERT_TRUE(p.found());
  EXPECT_EQ(p.dist, 10u);
  EXPECT_EQ(p.nodes, (std::vector<graph::NodeId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(PathLength(g, p.nodes), 10u);
}

TEST(DijkstraTest, EarlyStopSettlesFewerNodes) {
  graph::Graph g = SmallNetwork();
  SearchTree full = DijkstraAll(g, 0);
  SearchTree targeted = DijkstraSearch(g, 0, 1, AllEdges{});
  EXPECT_LE(targeted.settled, full.settled);
}

TEST(DijkstraTest, UnreachableWithoutEdges) {
  graph::GraphBuilder b;
  b.AddNode({0, 0});
  b.AddNode({1, 1});
  b.AddNode({2, 2});
  b.AddBidirectional(0, 1, 1);
  graph::Graph g = std::move(b).Build().value();
  Path p = DijkstraPath(g, 0, 2);
  EXPECT_FALSE(p.found());
  EXPECT_EQ(p.dist, graph::kInfDist);
}

TEST(DijkstraTest, EdgeFilterBlocksPath) {
  graph::Graph g = Line();
  // Block every arc into node 2: path 0 -> 4 must fail.
  SearchTree tree = DijkstraSearch(
      g, 0, 4,
      [](graph::NodeId, const graph::Graph::Arc& arc) {
        return arc.to != 2;
      });
  EXPECT_EQ(tree.dist[4], graph::kInfDist);
}

TEST(DijkstraTest, MultiTargetStopsWhenAllSettled) {
  graph::Graph g = SmallNetwork();
  std::vector<graph::NodeId> targets = {1, 2, 3};
  SearchTree tree = DijkstraToTargets(g, 0, targets);
  SearchTree full = DijkstraAll(g, 0);
  for (graph::NodeId t : targets) {
    EXPECT_EQ(tree.dist[t], full.dist[t]);
  }
  EXPECT_LE(tree.settled, full.settled);
}

TEST(DijkstraTest, PathLengthDetectsMissingHop) {
  graph::Graph g = Line();
  EXPECT_EQ(PathLength(g, {0, 2}), graph::kInfDist);  // no direct edge
  EXPECT_EQ(PathLength(g, {}), graph::kInfDist);
}

TEST(DijkstraTest, SelfQueryIsZero) {
  graph::Graph g = Line();
  Path p = DijkstraPath(g, 2, 2);
  EXPECT_TRUE(p.found());
  EXPECT_EQ(p.dist, 0u);
  EXPECT_EQ(p.nodes, (std::vector<graph::NodeId>{2}));
}

/// Property sweep: distances obey the triangle property along edges
/// (dist[v] + w(v,u) >= dist[u]) and every parent edge is tight.
class DijkstraPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraPropertyTest, TreeIsConsistent) {
  graph::Graph g = SmallNetwork(300, 480, GetParam());
  SearchTree tree = DijkstraAll(g, 0);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NE(tree.dist[v], graph::kInfDist);
    for (const auto& arc : g.OutArcs(v)) {
      EXPECT_LE(tree.dist[arc.to], tree.dist[v] + arc.weight);
    }
    if (v != 0) {
      const graph::NodeId p = tree.parent[v];
      ASSERT_NE(p, graph::kInvalidNode);
      // Parent edge is tight.
      graph::Dist w = graph::kInfDist;
      for (const auto& arc : g.OutArcs(p)) {
        if (arc.to == v) w = std::min<graph::Dist>(w, arc.weight);
      }
      EXPECT_EQ(tree.dist[v], tree.dist[p] + w);
    }
  }
}

TEST_P(DijkstraPropertyTest, TargetedMatchesFull) {
  graph::Graph g = SmallNetwork(250, 400, GetParam() + 1000);
  SearchTree full = DijkstraAll(g, 5);
  for (auto [s, t] : RandomPairs(g, 10, GetParam())) {
    (void)s;
    Path p = DijkstraPath(g, 5, t);
    EXPECT_EQ(p.dist, full.dist[t]);
    EXPECT_EQ(PathLength(g, p.nodes), p.dist);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace airindex::algo
