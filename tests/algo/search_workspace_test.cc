#include "algo/search_workspace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/astar.h"
#include "algo/d_ary_heap.h"
#include "algo/dijkstra.h"
#include "common/rng.h"
#include "testing/test_graphs.h"

namespace airindex::algo {
namespace {

using testing_support::RandomPairs;
using testing_support::SmallNetwork;

TEST(DAryHeapTest, PopsSortedUnderTotalOrder) {
  Rng rng(7);
  DAryHeap<std::pair<graph::Dist, graph::NodeId>> heap;
  std::vector<std::pair<graph::Dist, graph::NodeId>> items;
  for (graph::NodeId i = 0; i < 2000; ++i) {
    items.emplace_back(rng.NextBounded(50), i);  // many tied distances
  }
  for (const auto& it : items) heap.push(it);
  std::sort(items.begin(), items.end());
  for (const auto& expected : items) {
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap.top(), expected);
    heap.pop();
  }
  EXPECT_TRUE(heap.empty());
}

TEST(DAryHeapTest, InterleavedPushPopMatchesReference) {
  Rng rng(11);
  DAryHeap<uint64_t> heap;
  std::vector<uint64_t> reference;
  for (int round = 0; round < 3000; ++round) {
    if (reference.empty() || rng.NextBounded(3) != 0) {
      const uint64_t v = rng.Next();
      heap.push(v);
      reference.push_back(v);
    } else {
      const auto min_it = std::min_element(reference.begin(),
                                           reference.end());
      ASSERT_EQ(heap.top(), *min_it);
      heap.pop();
      reference.erase(min_it);
    }
  }
}

// The workspace overloads must produce exactly the legacy SearchTree
// results: same dist, same parent, same settled count.
TEST(SearchWorkspaceTest, DijkstraMatchesLegacyBitExactly) {
  graph::Graph g = SmallNetwork(500, 800, 42);
  SearchWorkspace ws;
  for (auto [s, t] : RandomPairs(g, 25, 91)) {
    SearchTree legacy = DijkstraSearch(g, s, t, AllEdges{});
    DijkstraSearch(g, s, t, AllEdges{}, ws);
    EXPECT_EQ(legacy.settled, ws.settled());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(legacy.dist[v], ws.DistTo(v)) << "node " << v;
      ASSERT_EQ(legacy.parent[v], ws.ParentOf(v)) << "node " << v;
    }
  }
}

TEST(SearchWorkspaceTest, ToTargetsMatchesLegacy) {
  graph::Graph g = SmallNetwork(400, 640, 7);
  std::vector<graph::NodeId> targets = {3, 17, 17, 255, 399};  // incl. dup
  SearchWorkspace ws;
  for (graph::NodeId s : {0u, 5u, 123u}) {
    SearchTree legacy = DijkstraToTargets(g, s, targets);
    DijkstraToTargets(g, s, targets, ws);
    EXPECT_EQ(legacy.settled, ws.settled());
    for (graph::NodeId t : targets) {
      EXPECT_EQ(legacy.dist[t], ws.DistTo(t));
    }
  }
}

// Reuse across many searches — including searches over graphs of different
// sizes — must never leak state between runs.
TEST(SearchWorkspaceTest, ReuseAcrossGraphSizesIsClean) {
  graph::Graph big = SmallNetwork(600, 960, 1);
  graph::Graph small = SmallNetwork(120, 200, 2);
  SearchWorkspace ws;
  for (int round = 0; round < 4; ++round) {
    const graph::Graph& g = (round % 2 == 0) ? big : small;
    for (auto [s, t] : RandomPairs(g, 8, 100 + round)) {
      DijkstraSearch(g, s, t, AllEdges{}, ws);
      SearchTree legacy = DijkstraSearch(g, s, t, AllEdges{});
      EXPECT_EQ(legacy.settled, ws.settled());
      EXPECT_EQ(legacy.dist[t], ws.DistTo(t));
      // Nodes beyond the small graph must read as unreached even though
      // the arrays still hold the big graph's stale entries.
      if (g.num_nodes() < big.num_nodes()) {
        EXPECT_EQ(ws.DistTo(static_cast<graph::NodeId>(
                      big.num_nodes() - 1)),
                  graph::kInfDist);
      }
    }
  }
}

TEST(SearchWorkspaceTest, ExtractPathMatchesLegacyExtract) {
  graph::Graph g = SmallNetwork(300, 480, 3);
  SearchWorkspace ws;
  for (auto [s, t] : RandomPairs(g, 10, 55)) {
    SearchTree legacy = DijkstraSearch(g, s, t, AllEdges{});
    Path from_tree = ExtractPath(legacy, s, t);
    DijkstraSearch(g, s, t, AllEdges{}, ws);
    Path from_ws = ExtractPath(ws, s, t);
    EXPECT_EQ(from_tree.dist, from_ws.dist);
    EXPECT_EQ(from_tree.nodes, from_ws.nodes);
  }
}

TEST(SearchWorkspaceTest, AStarInWorkspaceStaysExact) {
  graph::Graph g = SmallNetwork(300, 480, 9);
  SearchWorkspace ws;
  for (auto [s, t] : RandomPairs(g, 15, 66)) {
    Path dj = DijkstraPath(g, s, t);
    size_t settled = 0;
    Path astar = AStarPath(
        g, s, t, [](graph::NodeId) { return 0; }, ws, &settled);
    EXPECT_EQ(dj.dist, astar.dist);
    EXPECT_EQ(settled, ws.settled());
    EXPECT_EQ(PathLength(g, astar.nodes), astar.dist);
  }
}

}  // namespace
}  // namespace airindex::algo
