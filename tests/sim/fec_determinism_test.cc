// Golden determinism test for the FEC-coded, corrupting channel: all seven
// systems at 2% loss with bit corruption, FEC on and off, must report
// byte-identical QueryMetrics across thread counts and scratch reuse
// patterns — the coded channel keeps every determinism contract the clean
// channel has. Plus the analytic pin of what FEC buys: a single lost
// packet inside a parity group is reconstructed in the same cycle pass,
// costing zero extra cycles.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broadcast/channel.h"
#include "broadcast/cycle.h"
#include "broadcast/fec.h"
#include "core/query_scratch.h"
#include "core/systems.h"
#include "device/metrics.h"
#include "sim/simulator.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::sim {
namespace {

using testing_support::SmallNetwork;

constexpr uint64_t kLossSeed = 0x60551;
constexpr broadcast::FecScheme kFec{16, 2};

broadcast::LossModel DirtyChannel() {
  return broadcast::LossModel::Of(0.02, 1, /*corrupt_bit=*/5e-5);
}

struct Fixture {
  graph::Graph g;
  std::vector<std::unique_ptr<core::AirSystem>> systems;
  workload::Workload w;
};

const Fixture& SharedFixture() {
  static const Fixture& f = *[] {
    auto* fx = new Fixture();
    fx->g = SmallNetwork(300, 480, 77);
    core::SystemParams params;
    params.arcflag_regions = 8;
    params.eb_regions = 8;
    params.nr_regions = 8;
    params.landmarks = 3;
    params.hiti_regions = 8;
    params.include_spq = true;
    params.include_hiti = true;
    fx->systems = core::BuildSystems(fx->g, params).value();
    fx->w = workload::GenerateWorkload(fx->g, 12, 78).value();
    return fx;
  }();
  return f;
}

device::QueryMetrics RunOne(const Fixture& f, const core::AirSystem& sys,
                            size_t i, broadcast::FecScheme fec,
                            core::QueryScratch* scratch) {
  broadcast::BroadcastChannel channel(&sys.cycle(), DirtyChannel(),
                                      QueryLossSeed(kLossSeed, i), fec);
  device::QueryMetrics m = sys.RunQuery(
      channel, core::MakeAirQuery(f.g, f.w.queries[i]), {}, scratch);
  m.cpu_ms = 0.0;  // the one wall-clock field
  return m;
}

TEST(FecDeterminismTest, ScratchReuseIsCleanOnTheCodedChannel) {
  const Fixture& f = SharedFixture();
  ASSERT_EQ(f.systems.size(), 7u);
  for (broadcast::FecScheme fec : {broadcast::FecScheme::None(), kFec}) {
    for (const auto& sys : f.systems) {
      core::QueryScratch reused;
      for (size_t i = 0; i < f.w.queries.size(); ++i) {
        core::QueryScratch fresh;
        const auto with_fresh = RunOne(f, *sys, i, fec, &fresh);
        const auto with_none = RunOne(f, *sys, i, fec, nullptr);
        const auto with_reused = RunOne(f, *sys, i, fec, &reused);
        EXPECT_EQ(with_fresh, with_none) << sys->name() << " query " << i;
        EXPECT_EQ(with_fresh, with_reused) << sys->name() << " query " << i;
      }
    }
  }
}

TEST(FecDeterminismTest, EngineThreads1And4BitIdenticalFecOnAndOff) {
  const Fixture& f = SharedFixture();
  std::vector<const core::AirSystem*> ptrs;
  for (const auto& sys : f.systems) ptrs.push_back(sys.get());

  for (broadcast::FecScheme fec : {broadcast::FecScheme::None(), kFec}) {
    SimOptions so;
    so.loss = DirtyChannel();
    so.loss_seed = kLossSeed;
    so.fec = fec;
    so.deterministic = true;

    so.threads = 1;
    BatchResult serial = Simulator(f.g, so).Run(ptrs, f.w);
    so.threads = 4;
    BatchResult parallel = Simulator(f.g, so).Run(ptrs, f.w);

    ASSERT_EQ(serial.systems.size(), parallel.systems.size());
    uint64_t corrupted = 0;
    uint64_t recovered = 0;
    for (size_t sidx = 0; sidx < serial.systems.size(); ++sidx) {
      const auto& a = serial.systems[sidx];
      const auto& b = parallel.systems[sidx];
      ASSERT_EQ(a.per_query.size(), b.per_query.size());
      for (size_t i = 0; i < a.per_query.size(); ++i) {
        EXPECT_EQ(a.per_query[i], b.per_query[i])
            << a.system << " query " << i << " parity "
            << fec.parity_per_group;
        corrupted += a.per_query[i].corrupted_packets;
        recovered += a.per_query[i].fec_recovered;
      }
    }
    // The dirty channel must actually exercise the new machinery.
    EXPECT_GT(corrupted, 0u) << "parity " << fec.parity_per_group;
    if (fec.enabled()) {
      EXPECT_GT(recovered, 0u);
    }
  }
}

TEST(FecDeterminismTest, FecOffAndCleanBitsMatchTheLegacyChannel) {
  // LossModel::Of(rate, 1, 0.0) with FecScheme::None() must be the
  // historical channel bit for bit — this is the no-flags byte-identity
  // contract at the metrics level.
  const Fixture& f = SharedFixture();
  for (const auto& sys : f.systems) {
    for (size_t i = 0; i < f.w.queries.size(); ++i) {
      broadcast::BroadcastChannel legacy(
          &sys->cycle(), broadcast::LossModel::Independent(0.02),
          QueryLossSeed(kLossSeed, i));
      broadcast::BroadcastChannel gated(
          &sys->cycle(), broadcast::LossModel::Of(0.02, 1, 0.0),
          QueryLossSeed(kLossSeed, i), broadcast::FecScheme::None());
      auto qa = core::MakeAirQuery(f.g, f.w.queries[i]);
      auto qb = core::MakeAirQuery(f.g, f.w.queries[i]);
      device::QueryMetrics a = sys->RunQuery(legacy, qa);
      device::QueryMetrics b = sys->RunQuery(gated, qb);
      a.cpu_ms = b.cpu_ms = 0.0;
      EXPECT_EQ(a, b) << sys->name() << " query " << i;
    }
  }
}

broadcast::BroadcastCycle OneSegmentCycle(size_t packets) {
  broadcast::CycleBuilder builder;
  broadcast::Segment seg;
  seg.type = broadcast::SegmentType::kNetworkData;
  seg.id = 0;
  seg.payload.assign(packets * broadcast::kPayloadSize, 0xAB);
  builder.Add(std::move(seg));
  return std::move(builder).Finalize(/*require_index=*/false).value();
}

TEST(FecDeterminismTest, SingleLossInParityGroupCostsZeroExtraCycles) {
  // Find a loss realization with exactly one lost data packet in the
  // segment and that packet's parity intact; the coded client must finish
  // the segment within one cycle pass (no repair rebroadcast), while the
  // uncoded client cannot.
  const auto cycle = OneSegmentCycle(30);
  const uint64_t len = cycle.total_packets();
  ASSERT_EQ(len, 30u);
  const auto loss = broadcast::LossModel::Independent(0.02);

  bool pinned = false;
  for (uint64_t seed = 1; seed < 400 && !pinned; ++seed) {
    broadcast::BroadcastChannel coded(&cycle, loss, seed, kFec);
    uint64_t lost = 0;
    uint64_t lost_pos = 0;
    for (uint64_t pos = 0; pos < len; ++pos) {
      if (coded.SlotLost(coded.PhysicalSlot(pos))) {
        ++lost;
        lost_pos = pos;
      }
    }
    if (lost != 1) continue;
    bool parity_ok = true;
    for (uint32_t j = 0; j < kFec.parity_per_group; ++j) {
      const uint64_t ps =
          coded.PhysicalOfFecSlot(coded.fec().ParitySlot(lost_pos, j));
      if (coded.SlotLost(ps)) parity_ok = false;
    }
    if (!parity_ok) continue;
    pinned = true;

    broadcast::ClientSession session(&coded, 0);
    broadcast::ReceivedSegment seg =
        broadcast::ReceiveSegmentAt(session, 0);
    EXPECT_TRUE(seg.complete) << "seed " << seed;
    EXPECT_EQ(session.fec_recovered(), 1u);
    // Zero extra cycles: the client never advanced past the first pass.
    EXPECT_LE(session.position(), len);
    EXPECT_LE(session.latency_packets(), len);

    // Control: the uncoded client is left with a hole after one pass.
    broadcast::BroadcastChannel plain(&cycle, loss, seed);
    broadcast::ClientSession control(&plain, 0);
    broadcast::ReceivedSegment hole =
        broadcast::ReceiveSegmentAt(control, 0);
    EXPECT_FALSE(hole.complete) << "seed " << seed;
  }
  ASSERT_TRUE(pinned) << "no seed with a lone recoverable loss found";
}

}  // namespace
}  // namespace airindex::sim
