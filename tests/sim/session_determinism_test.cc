// Determinism and cold-path-equality suite for persistent-client sessions:
// sessions of one query with the cache disarmed must take the historical
// engine path bit-for-bit, and warm runs (sessions > 1, cache armed) must
// stay bit-identical across thread counts and repeated runs while actually
// cutting the selective-tuning systems' listening.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/systems.h"
#include "device/metrics.h"
#include "sim/event_engine.h"
#include "sim/simulator.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::sim {
namespace {

using testing_support::SmallNetwork;

struct Fixture {
  graph::Graph g;
  std::vector<std::unique_ptr<core::AirSystem>> systems;
  workload::Workload w;
};

const Fixture& SharedFixture() {
  static const Fixture& f = *[] {
    auto* fx = new Fixture();
    fx->g = SmallNetwork(300, 480, 77);
    core::SystemParams params;
    params.arcflag_regions = 8;
    params.eb_regions = 8;
    params.nr_regions = 8;
    params.landmarks = 3;
    params.hiti_regions = 8;
    params.include_spq = true;
    params.include_hiti = true;
    fx->systems = core::BuildSystems(fx->g, params).value();
    workload::WorkloadSpec spec;
    spec.count = 12;
    spec.seed = 78;
    spec.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
    spec.arrival.rate_per_second = 30.0;
    fx->w = workload::GenerateWorkload(fx->g, spec).value();
    return fx;
  }();
  return f;
}

std::vector<const core::AirSystem*> AllSystems(const Fixture& f) {
  std::vector<const core::AirSystem*> ptrs;
  for (const auto& sys : f.systems) ptrs.push_back(sys.get());
  return ptrs;
}

EventOptions BaseOptions(broadcast::LossModel loss) {
  EventOptions eo;
  eo.loss = loss;
  eo.station_seed = 0x60551;
  eo.client.max_repair_cycles = 64;
  eo.client.repair_header = true;
  eo.deterministic = true;
  return eo;
}

void ExpectBatchesBitIdentical(const BatchResult& a, const BatchResult& b,
                               const char* what) {
  ASSERT_EQ(a.systems.size(), b.systems.size()) << what;
  for (size_t sidx = 0; sidx < a.systems.size(); ++sidx) {
    const auto& sa = a.systems[sidx];
    const auto& sb = b.systems[sidx];
    ASSERT_EQ(sa.per_query.size(), sb.per_query.size())
        << what << " " << sa.system;
    for (size_t i = 0; i < sa.per_query.size(); ++i) {
      EXPECT_EQ(sa.per_query[i], sb.per_query[i])
          << what << " " << sa.system << " query " << i;
    }
    EXPECT_EQ(sa.aggregate, sb.aggregate) << what << " " << sa.system;
  }
}

// Sessions of one query with a zero cache budget are the contract's "cold"
// configuration: the engine must take the historical one-shot path, so a
// run with the session fields spelled out explicitly is bit-identical to a
// run with defaulted options — at zero loss, independent loss, and bursty
// loss alike.
TEST(SessionDeterminismTest, ColdConfigurationMatchesHistoricalPath) {
  const Fixture& f = SharedFixture();
  auto ptrs = AllSystems(f);
  ASSERT_EQ(ptrs.size(), 7u);

  const broadcast::LossModel losses[3] = {
      broadcast::LossModel::None(),
      broadcast::LossModel::Independent(0.02),
      broadcast::LossModel::Bursty(0.02, 4),
  };
  for (const auto& loss : losses) {
    EventOptions historical = BaseOptions(loss);
    BatchResult before = EventEngine(f.g, historical).Run(ptrs, f.w);

    EventOptions cold = BaseOptions(loss);
    cold.session.queries = 1;
    cold.session.think_ms = 0.0;
    cold.cache_bytes = 0;
    BatchResult after = EventEngine(f.g, cold).Run(ptrs, f.w);

    ExpectBatchesBitIdentical(before, after, "cold equality");
    // Cold runs must not report session artifacts.
    EXPECT_EQ(after.session_queries, 1u);
    EXPECT_EQ(after.cache_bytes, 0u);
    for (const auto& s : after.systems) {
      EXPECT_EQ(s.aggregate.warm_queries, 0u) << s.system;
      for (const auto& m : s.per_query) {
        EXPECT_FALSE(m.warm);
        EXPECT_EQ(m.cache_hits, 0u);
      }
    }
  }
}

// Warm sessions keep the engine's cross-thread determinism contract: the
// same fleet at threads 1 and threads 4 is bit-identical, per query and
// in aggregate, for every system.
TEST(SessionDeterminismTest, WarmThreads1And4BitIdentical) {
  const Fixture& f = SharedFixture();
  auto ptrs = AllSystems(f);

  EventOptions eo = BaseOptions(broadcast::LossModel::Independent(0.02));
  eo.session.queries = 4;
  eo.session.think_ms = 100.0;
  eo.cache_bytes = 256u << 10;

  eo.threads = 1;
  BatchResult serial = EventEngine(f.g, eo).Run(ptrs, f.w);
  eo.threads = 4;
  BatchResult parallel = EventEngine(f.g, eo).Run(ptrs, f.w);

  EXPECT_EQ(serial.session_queries, 4u);
  EXPECT_EQ(serial.cache_bytes, 256u << 10);
  ExpectBatchesBitIdentical(serial, parallel, "warm threads 1 vs 4");
}

TEST(SessionDeterminismTest, RepeatedWarmRunsBitIdentical) {
  const Fixture& f = SharedFixture();
  std::vector<const core::AirSystem*> ptrs = {f.systems[1].get(),
                                              f.systems[2].get()};  // NR, EB
  EventOptions eo = BaseOptions(broadcast::LossModel::Independent(0.02));
  eo.session.queries = 4;
  eo.cache_bytes = 256u << 10;
  eo.threads = 2;
  BatchResult first = EventEngine(f.g, eo).Run(ptrs, f.w);
  BatchResult second = EventEngine(f.g, eo).Run(ptrs, f.w);
  ExpectBatchesBitIdentical(first, second, "repeat");
}

// The point of the cache: a warm EB/NR client skips the index tune-in, so
// sessions of 4 queries must strictly cut total tuning versus the one-shot
// fleet on the same workload, and the warm queries must say so in their
// metrics (warm flag, cache hits, warm_queries aggregate).
TEST(SessionDeterminismTest, WarmSessionsCutSelectiveTuning) {
  const Fixture& f = SharedFixture();
  for (size_t sidx : {1u, 2u}) {  // NR, EB
    const core::AirSystem& sys = *f.systems[sidx];

    EventOptions cold = BaseOptions(broadcast::LossModel::None());
    SystemResult cold_r = EventEngine(f.g, cold).RunSystem(sys, f.w);

    EventOptions warm = BaseOptions(broadcast::LossModel::None());
    warm.session.queries = 4;
    warm.cache_bytes = 256u << 10;
    SystemResult warm_r = EventEngine(f.g, warm).RunSystem(sys, f.w);

    uint64_t cold_tuning = 0;
    uint64_t warm_tuning = 0;
    for (const auto& m : cold_r.per_query) cold_tuning += m.tuning_packets;
    for (const auto& m : warm_r.per_query) warm_tuning += m.tuning_packets;
    EXPECT_LT(warm_tuning, cold_tuning) << sys.name();

    // 12 queries in sessions of 4 => 3 sessions; every non-first query of
    // a session is warm, and each warm query served something from cache.
    EXPECT_EQ(warm_r.aggregate.warm_queries, 9u) << sys.name();
    EXPECT_GT(warm_r.aggregate.cache_hits.max, 0.0) << sys.name();
    for (size_t i = 0; i < warm_r.per_query.size(); ++i) {
      const device::QueryMetrics& m = warm_r.per_query[i];
      EXPECT_EQ(m.warm, m.cache_hits > 0) << sys.name() << " query " << i;
      // Warm or cold, the session engine never drops a query.
      EXPECT_TRUE(m.ok) << sys.name() << " query " << i;
    }
  }
}

// Warm answers are still the right answers: path lengths from a warm
// session match the cold run query-for-query (the cache changes what the
// client listens to, never what it computes).
TEST(SessionDeterminismTest, WarmSessionsPreserveAnswers) {
  const Fixture& f = SharedFixture();
  auto ptrs = AllSystems(f);

  EventOptions cold = BaseOptions(broadcast::LossModel::Independent(0.02));
  BatchResult cold_b = EventEngine(f.g, cold).Run(ptrs, f.w);

  EventOptions warm = BaseOptions(broadcast::LossModel::Independent(0.02));
  warm.session.queries = 4;
  warm.cache_bytes = 256u << 10;
  BatchResult warm_b = EventEngine(f.g, warm).Run(ptrs, f.w);

  ASSERT_EQ(cold_b.systems.size(), warm_b.systems.size());
  for (size_t sidx = 0; sidx < cold_b.systems.size(); ++sidx) {
    const auto& c = cold_b.systems[sidx];
    const auto& w = warm_b.systems[sidx];
    ASSERT_EQ(c.per_query.size(), w.per_query.size());
    for (size_t i = 0; i < c.per_query.size(); ++i) {
      EXPECT_EQ(c.per_query[i].ok, w.per_query[i].ok)
          << c.system << " query " << i;
      EXPECT_EQ(c.per_query[i].distance, w.per_query[i].distance)
          << c.system << " query " << i;
    }
  }
}

}  // namespace
}  // namespace airindex::sim
