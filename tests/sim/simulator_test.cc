#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/systems.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::sim {
namespace {

using testing_support::SmallNetwork;

/// The engine's headline guarantee: fanning clients across threads changes
/// nothing about the simulation. Every per-query metric and every
/// aggregate must be identical between a serial and a parallel run, for
/// all seven systems, with packet loss on.
class SimulatorDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = SmallNetwork(400, 640, 77);
    core::SystemParams params;
    params.arcflag_regions = 8;
    params.eb_regions = 8;
    params.nr_regions = 8;
    params.landmarks = 3;
    params.hiti_regions = 8;
    params.include_spq = true;
    params.include_hiti = true;
    systems_ = core::BuildSystems(g_, params).value();
    workload_ = workload::GenerateWorkload(g_, 16, 99).value();
  }

  SimOptions Options(unsigned threads) const {
    SimOptions so;
    so.threads = threads;
    so.loss = broadcast::LossModel::Independent(0.02);
    so.loss_seed = 4242;
    so.client.max_repair_cycles = 64;
    so.deterministic = true;  // cpu_ms is wall-clock; zero it for equality
    return so;
  }

  graph::Graph g_;
  std::vector<std::unique_ptr<core::AirSystem>> systems_;
  workload::Workload workload_;
};

TEST_F(SimulatorDeterminismTest, ParallelRunsBitIdenticalToSerial) {
  Simulator serial(g_, Options(1));
  Simulator parallel(g_, Options(4));
  for (const auto& sys : systems_) {
    SystemResult a = serial.RunSystem(*sys, workload_);
    SystemResult b = parallel.RunSystem(*sys, workload_);
    ASSERT_EQ(a.per_query.size(), b.per_query.size());
    for (size_t i = 0; i < a.per_query.size(); ++i) {
      EXPECT_EQ(a.per_query[i], b.per_query[i])
          << sys->name() << " query " << i;
    }
    EXPECT_EQ(a.aggregate, b.aggregate) << sys->name();
  }
}

TEST_F(SimulatorDeterminismTest, RerunsAreIdentical) {
  Simulator simulator(g_, Options(4));
  const auto& sys = *systems_.front();
  SystemResult a = simulator.RunSystem(sys, workload_);
  SystemResult b = simulator.RunSystem(sys, workload_);
  EXPECT_EQ(a.aggregate, b.aggregate);
}

TEST_F(SimulatorDeterminismTest, LossSeedSelectsDistinctStreams) {
  // Different batch seeds must produce different loss patterns (else every
  // "run" of the experiment would sample the same channel).
  SimOptions a = Options(2);
  SimOptions b = Options(2);
  b.loss_seed = a.loss_seed + 1;
  const auto& dj = *systems_.front();
  SystemResult ra = Simulator(g_, a).RunSystem(dj, workload_);
  SystemResult rb = Simulator(g_, b).RunSystem(dj, workload_);
  EXPECT_NE(ra.aggregate.tuning_packets.mean,
            rb.aggregate.tuning_packets.mean);
}

TEST(QueryLossSeedTest, DerivedStreamsAreStableAndDistinct) {
  EXPECT_EQ(QueryLossSeed(123, 0), QueryLossSeed(123, 0));
  EXPECT_NE(QueryLossSeed(123, 0), QueryLossSeed(123, 1));
  EXPECT_NE(QueryLossSeed(123, 0), QueryLossSeed(124, 0));
}

TEST(SimulatorBatchTest, RunCoversEverySystemInOrder) {
  graph::Graph g = SmallNetwork(300, 480, 5);
  auto systems = core::BuildSystems(g, {}).value();
  auto w = workload::GenerateWorkload(g, 8, 11).value();

  std::vector<const core::AirSystem*> ptrs;
  for (const auto& s : systems) ptrs.push_back(s.get());

  SimOptions so;
  so.threads = 0;  // hardware concurrency
  so.deterministic = true;
  BatchResult batch = Simulator(g, so).Run(ptrs, w);

  ASSERT_EQ(batch.systems.size(), systems.size());
  EXPECT_EQ(batch.num_queries, w.queries.size());
  for (size_t i = 0; i < systems.size(); ++i) {
    EXPECT_EQ(batch.systems[i].system, systems[i]->name());
    EXPECT_EQ(batch.systems[i].aggregate.failures, 0u)
        << batch.systems[i].system;
    EXPECT_GT(batch.systems[i].queries_per_second, 0.0);
  }
}

}  // namespace
}  // namespace airindex::sim
