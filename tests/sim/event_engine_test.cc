// Cross-layer determinism suite for the discrete-event shared-channel
// engine: same seed => byte-identical per-query metrics (including the new
// wait_ms / listen_ms split) across thread counts, plus pinned analytic
// cases where the expected wait is computed from the cycle layout itself.

#include "sim/event_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broadcast/station.h"
#include "core/systems.h"
#include "device/metrics.h"
#include "sim/simulator.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::sim {
namespace {

using testing_support::SmallNetwork;

struct Fixture {
  graph::Graph g;
  std::vector<std::unique_ptr<core::AirSystem>> systems;
  workload::Workload w;
};

const Fixture& SharedFixture() {
  static const Fixture& f = *[] {
    auto* fx = new Fixture();
    fx->g = SmallNetwork(300, 480, 77);
    core::SystemParams params;
    params.arcflag_regions = 8;
    params.eb_regions = 8;
    params.nr_regions = 8;
    params.landmarks = 3;
    params.hiti_regions = 8;
    params.include_spq = true;
    params.include_hiti = true;
    fx->systems = core::BuildSystems(fx->g, params).value();
    workload::WorkloadSpec spec;
    spec.count = 12;
    spec.seed = 78;
    spec.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
    spec.arrival.rate_per_second = 30.0;
    fx->w = workload::GenerateWorkload(fx->g, spec).value();
    return fx;
  }();
  return f;
}

EventOptions LossyOptions() {
  EventOptions eo;
  eo.loss = broadcast::LossModel::Independent(0.02);
  eo.station_seed = 0x60551;
  eo.client.max_repair_cycles = 64;
  eo.client.repair_header = true;  // AF must survive the lossy fixture
  eo.deterministic = true;
  return eo;
}

TEST(EventEngineTest, Threads1And4BitIdenticalAcrossAllSystems) {
  const Fixture& f = SharedFixture();
  ASSERT_EQ(f.systems.size(), 7u);
  std::vector<const core::AirSystem*> ptrs;
  for (const auto& sys : f.systems) ptrs.push_back(sys.get());

  EventOptions eo = LossyOptions();
  eo.subchannels = 2;

  eo.threads = 1;
  BatchResult serial = EventEngine(f.g, eo).Run(ptrs, f.w);
  eo.threads = 4;
  BatchResult parallel = EventEngine(f.g, eo).Run(ptrs, f.w);

  EXPECT_EQ(serial.engine, "event");
  EXPECT_EQ(serial.subchannels, 2u);
  ASSERT_EQ(serial.systems.size(), parallel.systems.size());
  for (size_t sidx = 0; sidx < serial.systems.size(); ++sidx) {
    const auto& a = serial.systems[sidx];
    const auto& b = parallel.systems[sidx];
    ASSERT_EQ(a.per_query.size(), b.per_query.size());
    for (size_t i = 0; i < a.per_query.size(); ++i) {
      // QueryMetrics::operator== covers wait_packets / wait_ms /
      // listen_ms, so this pins the whole latency split bit-for-bit.
      EXPECT_EQ(a.per_query[i], b.per_query[i])
          << a.system << " query " << i;
    }
    EXPECT_EQ(a.aggregate, b.aggregate) << a.system;
  }
}

TEST(EventEngineTest, RepeatedRunsAreBitIdentical) {
  const Fixture& f = SharedFixture();
  std::vector<const core::AirSystem*> ptrs = {f.systems[0].get(),
                                              f.systems[1].get()};
  EventOptions eo = LossyOptions();
  eo.threads = 2;
  BatchResult first = EventEngine(f.g, eo).Run(ptrs, f.w);
  BatchResult second = EventEngine(f.g, eo).Run(ptrs, f.w);
  for (size_t sidx = 0; sidx < first.systems.size(); ++sidx) {
    EXPECT_EQ(first.systems[sidx].per_query,
              second.systems[sidx].per_query);
  }
}

// Analytic pin, full-cycle client: a single DJ client on a lossless
// station listens to every packet from the instant it tunes in — wait is
// exactly zero and listen is exactly one cycle, in packets and on the
// station clock in ms.
TEST(EventEngineTest, AnalyticDijkstraFullCycleWait) {
  const Fixture& f = SharedFixture();
  const core::AirSystem& dj = *f.systems[0];
  ASSERT_EQ(dj.name(), "DJ");

  workload::Workload one;
  one.queries.push_back(f.w.queries[0]);
  one.queries[0].arrival_ms = 1234.5;  // mid-packet, mid-cycle

  EventOptions eo;
  eo.deterministic = true;
  EventEngine engine(f.g, eo);
  SystemResult r = engine.RunSystem(dj, one);

  const broadcast::Station station = engine.MakeStation(dj);
  const double pkt_ms = station.PacketMs();
  const uint64_t total = dj.cycle().total_packets();
  ASSERT_EQ(r.per_query.size(), 1u);
  const device::QueryMetrics& m = r.per_query[0];
  EXPECT_TRUE(m.ok);
  EXPECT_EQ(m.wait_packets, 0u);
  EXPECT_EQ(m.latency_packets, total);
  // The only wait a full-cycle client pays is the sub-packet remainder
  // between its arrival instant and the packet boundary it joins.
  const uint64_t join = station.PositionAt(1234.5, 0);
  const double boundary_ms = station.TimeAtMs(join, 0) - 1234.5;
  ASSERT_GT(boundary_ms, 0.0);  // 1234.5 is deliberately mid-packet
  EXPECT_DOUBLE_EQ(m.wait_ms, boundary_ms);
  EXPECT_DOUBLE_EQ(m.listen_ms, static_cast<double>(total) * pkt_ms);
}

// Analytic pin, selective-tuning client: a single NR client with a known
// tune-in position probes one packet, reads the next-index pointer, and
// dozes to that index copy — the expected wait is computable straight
// from the cycle layout.
TEST(EventEngineTest, AnalyticNrIndexWait) {
  const Fixture& f = SharedFixture();
  const core::AirSystem& nr = *f.systems[1];
  ASSERT_EQ(nr.name(), "NR");
  const broadcast::BroadcastCycle& cycle = nr.cycle();
  const uint32_t total = cycle.total_packets();

  EventOptions eo;
  eo.deterministic = true;
  EventEngine engine(f.g, eo);
  const broadcast::Station station = engine.MakeStation(nr);
  const double pkt_ms = station.PacketMs();

  // Pick an arrival that lands strictly inside a non-index segment so the
  // client must probe + doze (packet 1 exists and is never an index start:
  // the cycle begins with local index 0, whose segment spans >= 1 packet,
  // followed by region data).
  const uint64_t tune_pos = 1;
  workload::Workload one;
  one.queries.push_back(f.w.queries[0]);
  one.queries[0].arrival_ms = station.TimeAtMs(tune_pos, 0);

  SystemResult r = engine.RunSystem(nr, one);
  ASSERT_EQ(r.per_query.size(), 1u);
  const device::QueryMetrics& m = r.per_query[0];
  EXPECT_TRUE(m.ok);

  // Expected: the probe at tune_pos reads next_index_offset; the client
  // sleeps to that cycle position (reached from tune_pos + 1) and content
  // starts there.
  const broadcast::PacketView probe =
      cycle.PacketAt(static_cast<uint32_t>(tune_pos % total));
  ASSERT_NE(probe.next_index_offset, 0u) << "packet 1 must not start an "
                                            "index for this pin";
  const uint32_t idx_start = static_cast<uint32_t>(
      (probe.cycle_pos + probe.next_index_offset) % total);
  const uint32_t cur = static_cast<uint32_t>((tune_pos + 1) % total);
  const uint32_t ahead =
      idx_start >= cur ? idx_start - cur : idx_start + total - cur;
  const uint64_t expected_wait = (tune_pos + 1 + ahead) - tune_pos;
  EXPECT_EQ(m.wait_packets, expected_wait);
  EXPECT_DOUBLE_EQ(m.wait_ms,
                   static_cast<double>(expected_wait) * pkt_ms);
  EXPECT_DOUBLE_EQ(m.wait_ms + m.listen_ms,
                   static_cast<double>(m.latency_packets) * pkt_ms);
}

// The phase fallback: a workload without an arrival process still runs on
// the event engine, with each client's arrival derived from its
// cycle-relative tune phase.
TEST(EventEngineTest, PhaseFallbackArrivals) {
  const Fixture& f = SharedFixture();
  const core::AirSystem& dj = *f.systems[0];

  workload::Workload one;
  one.queries.push_back(f.w.queries[0]);
  one.queries[0].arrival_ms = -1.0;
  one.queries[0].tune_phase = 0.5;

  EventOptions eo;
  eo.deterministic = true;
  EventEngine engine(f.g, eo);
  SystemResult r = engine.RunSystem(dj, one);
  EXPECT_TRUE(r.per_query[0].ok);
  // A full-cycle client's latency is one cycle wherever it tunes in; the
  // fallback must not shift it.
  EXPECT_EQ(r.per_query[0].latency_packets, dj.cycle().total_packets());
}

// Overlapping clients on one station observe the *same* channel: two
// queries posed at the same instant with the same demand see identical
// wait/listen, unlike the batch engine where each query draws a private
// loss stream.
TEST(EventEngineTest, CoArrivingClientsShareTheChannelRealization) {
  const Fixture& f = SharedFixture();
  const core::AirSystem& dj = *f.systems[0];

  workload::Workload two;
  two.queries.push_back(f.w.queries[0]);
  two.queries.push_back(f.w.queries[0]);  // same query, same arrival
  two.queries[0].arrival_ms = 500.0;
  two.queries[1].arrival_ms = 500.0;

  EventOptions eo = LossyOptions();
  EventEngine engine(f.g, eo);
  SystemResult r = engine.RunSystem(dj, two);
  ASSERT_EQ(r.per_query.size(), 2u);
  // Identical clients at the same instant on one shared channel are
  // indistinguishable — every metric matches, losses included.
  EXPECT_EQ(r.per_query[0], r.per_query[1]);

  // Sanity check of the premise: the batch engine's per-query streams
  // make the same two queries diverge (different loss replays).
  SimOptions so;
  so.loss = eo.loss;
  so.loss_seed = eo.station_seed;
  so.client = eo.client;
  so.deterministic = true;
  SystemResult batch = Simulator(f.g, so).RunSystem(dj, two);
  EXPECT_NE(batch.per_query[0].tuning_packets,
            batch.per_query[1].tuning_packets);
}

}  // namespace
}  // namespace airindex::sim
