#include "sim/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace airindex::sim {
namespace {

device::EnergyModel TestEnergy() {
  return device::EnergyModel(device::DeviceProfile::J2mePhone(),
                             device::kBitrateStatic3G);
}

TEST(StatOfTest, EmptyInputYieldsZeros) {
  Stat s = StatOf({});
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(StatOfTest, SingleValueIsEveryStatistic) {
  std::vector<double> v = {42.0};
  Stat s = StatOf(v);
  EXPECT_EQ(s.mean, 42.0);
  EXPECT_EQ(s.p50, 42.0);
  EXPECT_EQ(s.p95, 42.0);
  EXPECT_EQ(s.p99, 42.0);
  EXPECT_EQ(s.max, 42.0);
}

TEST(StatOfTest, NearestRankPercentilesOnOneToHundred) {
  // 1..100: nearest-rank p(q) = sorted[ceil(q*100)-1].
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) v.push_back(i);  // unsorted on purpose
  Stat s = StatOf(v);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.p50, 50.0);
  EXPECT_EQ(s.p95, 95.0);
  EXPECT_EQ(s.p99, 99.0);
  EXPECT_EQ(s.max, 100.0);
}

TEST(StatOfTest, NearestRankRoundsUpOnSmallInputs) {
  // n=3: p50 -> ceil(1.5)=2nd value, p95 -> ceil(2.85)=3rd value.
  std::vector<double> v = {10.0, 20.0, 30.0};
  Stat s = StatOf(v);
  EXPECT_EQ(s.p50, 20.0);
  EXPECT_EQ(s.p95, 30.0);
  EXPECT_EQ(s.p99, 30.0);
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
}

TEST(PercentileTest, EdgeQuantilesAreClampedNotUndefined) {
  // Regression: q <= 0 used to compute ceil(q*n)-1 = -1 and index the
  // sorted array out of bounds (UB that happened to read the element
  // before the buffer). The contract is now pinned: q <= 0 and NaN clamp
  // to the minimum, q >= 1 to the maximum.
  std::vector<double> v = {30.0, 10.0, 20.0, 40.0};
  EXPECT_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_EQ(Percentile(v, -0.5), 10.0);
  EXPECT_EQ(Percentile(v, std::nan("")), 10.0);
  EXPECT_EQ(Percentile(v, 1.0), 40.0);
  EXPECT_EQ(Percentile(v, 1.5), 40.0);
  // Interior values stay nearest-rank.
  EXPECT_EQ(Percentile(v, 0.25), 10.0);
  EXPECT_EQ(Percentile(v, 0.26), 20.0);
}

TEST(PercentileTest, DegenerateInputs) {
  std::vector<double> one = {7.0};
  for (double q : {-1.0, 0.0, 0.5, 1.0, 2.0}) {
    EXPECT_EQ(Percentile(one, q), 7.0) << "q=" << q;
  }
  EXPECT_EQ(Percentile({}, 0.0), 0.0);
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
}

TEST(AggregateTest, CountsFailuresAndMemoryExceeded) {
  std::vector<device::QueryMetrics> metrics(4);
  for (auto& m : metrics) m.ok = true;
  metrics[1].ok = false;
  metrics[2].ok = false;
  metrics[3].memory_exceeded = true;
  Aggregate a = Aggregate::Of("NR", metrics, TestEnergy());
  EXPECT_EQ(a.system, "NR");
  EXPECT_EQ(a.queries, 4u);
  EXPECT_EQ(a.failures, 2u);
  EXPECT_EQ(a.memory_exceeded, 1u);
}

TEST(AggregateTest, AggregatesEveryCostFactor) {
  std::vector<device::QueryMetrics> metrics(2);
  metrics[0].tuning_packets = 100;
  metrics[0].latency_packets = 200;
  metrics[0].peak_memory_bytes = 1000;
  metrics[0].cpu_ms = 2.0;
  metrics[0].ok = true;
  metrics[1].tuning_packets = 300;
  metrics[1].latency_packets = 400;
  metrics[1].peak_memory_bytes = 3000;
  metrics[1].cpu_ms = 4.0;
  metrics[1].ok = true;

  Aggregate a = Aggregate::Of("EB", metrics, TestEnergy());
  EXPECT_DOUBLE_EQ(a.tuning_packets.mean, 200.0);
  EXPECT_EQ(a.tuning_packets.max, 300.0);
  EXPECT_DOUBLE_EQ(a.latency_packets.mean, 300.0);
  EXPECT_DOUBLE_EQ(a.peak_memory_bytes.mean, 2000.0);
  EXPECT_DOUBLE_EQ(a.cpu_ms.mean, 3.0);
  // Energy is monotone in tuning time: the heavier query costs more.
  const auto energy = TestEnergy();
  EXPECT_DOUBLE_EQ(a.energy_joules.max, energy.QueryJoules(metrics[1]));
  EXPECT_GT(a.energy_joules.max, 0.0);
}

}  // namespace
}  // namespace airindex::sim
