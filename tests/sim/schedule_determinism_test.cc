// Determinism and identity suite for broadcast-disk scheduling.
//
//   * Flat identity: a static-mode run whose planner collapses to the
//     flat spec (uniform demand) produces aggregates bit-identical to a
//     flat-mode run, on every system, on clean and lossy channels — the
//     schedule layer adds no observable state to the historical path.
//   * Static-plan determinism: the batch engine under an adopted non-flat
//     spec is bit-identical across thread counts.
//   * Online determinism: the event engine's re-planner observes arrivals
//     in arrival order, so threads 1 vs 4 replay the same adopted-spec
//     sequence and every per-query metric matches bit for bit.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/systems.h"
#include "sim/event_engine.h"
#include "sim/schedule_plan.h"
#include "sim/simulator.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::sim {
namespace {

using testing_support::SmallNetwork;

struct Fixture {
  graph::Graph g;
  std::vector<std::unique_ptr<core::AirSystem>> systems;
  workload::Workload w;
  /// Heavily skewed per-node demand (zipf over a permutation), matching
  /// the destination distribution of `w`.
  std::vector<double> demand;
};

const Fixture& SharedFixture() {
  static const Fixture& f = *[] {
    auto* fx = new Fixture();
    fx->g = SmallNetwork(300, 480, 77);
    core::SystemParams params;
    params.arcflag_regions = 8;
    params.eb_regions = 8;
    params.nr_regions = 8;
    params.landmarks = 3;
    params.hiti_regions = 8;
    params.include_spq = true;
    params.include_hiti = true;
    fx->systems = core::BuildSystems(fx->g, params).value();
    workload::WorkloadSpec spec;
    spec.count = 16;
    spec.seed = 78;
    spec.dest = workload::WorkloadSpec::Dest::kZipf;
    spec.zipf_s = 1.2;
    spec.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
    spec.arrival.rate_per_second = 30.0;
    fx->w = workload::GenerateWorkload(fx->g, spec).value();
    fx->demand = workload::DestinationWeights(fx->g.num_nodes(), spec);
    return fx;
  }();
  return f;
}

std::vector<const core::AirSystem*> Pointers(const Fixture& f) {
  std::vector<const core::AirSystem*> ptrs;
  for (const auto& sys : f.systems) ptrs.push_back(sys.get());
  return ptrs;
}

TEST(ScheduleDeterminismTest, UniformStaticCollapsesToFlatBitIdentically) {
  const Fixture& f = SharedFixture();
  ASSERT_EQ(f.systems.size(), 7u);
  const auto ptrs = Pointers(f);

  for (double loss : {0.0, 0.02}) {
    SimOptions flat;
    flat.loss = broadcast::LossModel::Independent(loss);
    flat.deterministic = true;
    SimOptions uniform_static = flat;
    uniform_static.schedule.mode = SchedulePolicy::Mode::kStatic;
    // schedule_demand left empty: uniform demand, which the planner's
    // skew gate collapses to the flat spec.

    BatchResult a = Simulator(f.g, flat).Run(ptrs, f.w);
    BatchResult b = Simulator(f.g, uniform_static).Run(ptrs, f.w);
    EXPECT_EQ(a.schedule_mode, "flat");
    EXPECT_EQ(b.schedule_mode, "static");
    ASSERT_EQ(a.systems.size(), b.systems.size());
    for (size_t i = 0; i < a.systems.size(); ++i) {
      EXPECT_EQ(a.systems[i].per_query, b.systems[i].per_query)
          << a.systems[i].system << " loss " << loss;
      EXPECT_EQ(a.systems[i].aggregate, b.systems[i].aggregate)
          << a.systems[i].system << " loss " << loss;
    }
  }
}

TEST(ScheduleDeterminismTest, StaticBatchBitIdenticalAcrossThreads) {
  const Fixture& f = SharedFixture();
  const auto ptrs = Pointers(f);

  SimOptions so;
  so.loss = broadcast::LossModel::Independent(0.02);
  so.deterministic = true;
  so.schedule.mode = SchedulePolicy::Mode::kStatic;
  so.schedule_demand = f.demand;

  so.threads = 1;
  BatchResult serial = Simulator(f.g, so).Run(ptrs, f.w);
  so.threads = 4;
  BatchResult parallel = Simulator(f.g, so).Run(ptrs, f.w);

  ASSERT_EQ(serial.systems.size(), parallel.systems.size());
  for (size_t i = 0; i < serial.systems.size(); ++i) {
    EXPECT_EQ(serial.systems[i].per_query, parallel.systems[i].per_query)
        << serial.systems[i].system;
    EXPECT_EQ(serial.systems[i].aggregate, parallel.systems[i].aggregate)
        << serial.systems[i].system;
  }
}

TEST(ScheduleDeterminismTest, OnlineEventEngineBitIdenticalAcrossThreads) {
  const Fixture& f = SharedFixture();
  const auto ptrs = Pointers(f);

  EventOptions eo;
  eo.deterministic = true;
  eo.client.max_repair_cycles = 64;
  eo.client.repair_header = true;
  eo.schedule.mode = SchedulePolicy::Mode::kOnline;
  eo.schedule.replan_cycles = 2;
  eo.schedule.decay = 0.5;

  eo.threads = 1;
  BatchResult serial = EventEngine(f.g, eo).Run(ptrs, f.w);
  eo.threads = 4;
  BatchResult parallel = EventEngine(f.g, eo).Run(ptrs, f.w);

  EXPECT_EQ(serial.schedule_mode, "online");
  ASSERT_EQ(serial.systems.size(), parallel.systems.size());
  for (size_t i = 0; i < serial.systems.size(); ++i) {
    ASSERT_EQ(serial.systems[i].per_query.size(),
              parallel.systems[i].per_query.size());
    for (size_t q = 0; q < serial.systems[i].per_query.size(); ++q) {
      EXPECT_EQ(serial.systems[i].per_query[q],
                parallel.systems[i].per_query[q])
          << serial.systems[i].system << " query " << q;
    }
    EXPECT_EQ(serial.systems[i].aggregate, parallel.systems[i].aggregate)
        << serial.systems[i].system;
  }
}

TEST(ScheduleDeterminismTest, AdoptedStaticSpecNeverRegressesWaitProfile) {
  // The plan audit's contract: whatever PlanStaticSpec returns, its
  // compiled timeline's exact wait profile is never worse than flat's.
  const Fixture& f = SharedFixture();
  SchedulePolicy policy;
  policy.mode = SchedulePolicy::Mode::kStatic;
  for (const auto& sys : f.systems) {
    const broadcast::ScheduleSpec spec = PlanStaticSpec(
        sys->cycle(), f.demand, policy, broadcast::CycleEncoding::kLegacy);
    if (spec.flat()) continue;
    auto compiled = broadcast::BroadcastSchedule::Compile(&sys->cycle(), spec);
    ASSERT_TRUE(compiled.ok()) << sys->name();
    const broadcast::WaitProfile flat =
        broadcast::FlatWaitProfile(sys->cycle());
    const broadcast::WaitProfile sched =
        broadcast::ScheduleWaitProfile(*compiled);
    EXPECT_LE(sched.mean, flat.mean) << sys->name();
    EXPECT_LE(sched.p95, flat.p95) << sys->name();
  }
}

}  // namespace
}  // namespace airindex::sim
