#include "sim/report.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace airindex::sim {
namespace {

Stat MakeStat(double base) {
  Stat s;
  s.mean = base + 0.123456789012345;  // exercise shortest-round-trip output
  s.p50 = base;
  s.p95 = base * 1.9;
  s.p99 = base * 2.2;
  s.max = base * 2.5e3;
  return s;
}

BatchResult MakeBatch() {
  BatchResult batch;
  batch.engine = "event";
  batch.subchannels = 4;
  batch.num_queries = 128;
  batch.threads = 4;
  batch.loss_rate = 0.015;
  batch.loss_burst_len = 6;  // bursty channels must round-trip, not flatten
  // Above 2^53: a parser that routed integers through double would
  // silently round this seed.
  batch.loss_seed = (1ULL << 53) + 1;
  batch.wall_seconds = 1.75e-3;

  SystemResult r;
  r.system = "NR";
  r.wall_seconds = 0.125;
  r.queries_per_second = 1024.5;
  r.aggregate.system = "NR";
  r.aggregate.queries = 128;
  r.aggregate.failures = 3;
  r.aggregate.memory_exceeded = 1;
  r.aggregate.tuning_packets = MakeStat(431.0);
  r.aggregate.latency_packets = MakeStat(900.0);
  r.aggregate.wait_ms = MakeStat(37.0);
  r.aggregate.listen_ms = MakeStat(410.0);
  r.aggregate.peak_memory_bytes = MakeStat(1.5e6);
  r.aggregate.cpu_ms = MakeStat(0.25);
  r.aggregate.energy_joules = MakeStat(1e-9);
  batch.systems.push_back(r);

  SystemResult dj = r;
  dj.system = "DJ";
  dj.aggregate.system = "DJ";
  dj.aggregate.failures = 0;
  dj.aggregate.tuning_packets = MakeStat(14019.0);
  batch.systems.push_back(dj);
  return batch;
}

TEST(ReportTest, JsonRoundTripIsExact) {
  const BatchResult batch = MakeBatch();
  const std::string json = ToJson(batch);

  auto parsed = FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->engine, batch.engine);
  EXPECT_EQ(parsed->subchannels, batch.subchannels);
  EXPECT_EQ(parsed->num_queries, batch.num_queries);
  EXPECT_EQ(parsed->threads, batch.threads);
  EXPECT_EQ(parsed->loss_rate, batch.loss_rate);
  EXPECT_EQ(parsed->loss_burst_len, batch.loss_burst_len);
  EXPECT_EQ(parsed->loss_seed, batch.loss_seed);
  EXPECT_EQ(parsed->wall_seconds, batch.wall_seconds);
  ASSERT_EQ(parsed->systems.size(), batch.systems.size());
  for (size_t i = 0; i < batch.systems.size(); ++i) {
    const SystemResult& in = batch.systems[i];
    const SystemResult& out = parsed->systems[i];
    EXPECT_EQ(out.system, in.system);
    EXPECT_EQ(out.wall_seconds, in.wall_seconds);
    EXPECT_EQ(out.queries_per_second, in.queries_per_second);
    // The aggregates must survive bit-exactly (operator== compares every
    // stat of every cost factor).
    EXPECT_EQ(out.aggregate, in.aggregate);
  }
}

TEST(ReportTest, SecondRoundTripIsIdentityOnTheText) {
  const std::string json = ToJson(MakeBatch());
  auto parsed = FromJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ToJson(*parsed), json);
}

TEST(ReportTest, AcceptsLegacyReportsWithoutP99) {
  // p99 is additive within airindex.sim.batch/v1: documents from writers
  // that stopped at p95 must keep parsing, with zero tails.
  BatchResult batch = MakeBatch();
  std::string json = ToJson(batch);
  size_t pos;
  size_t stripped = 0;
  while ((pos = json.find("\"p99\":")) != std::string::npos) {
    const size_t line_start = json.rfind('\n', pos) + 1;
    const size_t line_end = json.find('\n', pos) + 1;
    json.erase(line_start, line_end - line_start);
    ++stripped;
  }
  ASSERT_GT(stripped, 0u);

  auto parsed = FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Aggregate& a = parsed->systems[0].aggregate;
  EXPECT_EQ(a.tuning_packets.p99, 0.0);
  EXPECT_EQ(a.tuning_packets.p95, batch.systems[0].aggregate.tuning_packets.p95);
  EXPECT_EQ(a.wait_ms.max, batch.systems[0].aggregate.wait_ms.max);
}

TEST(ReportTest, ScheduleFieldIsGatedAndRoundTrips) {
  // Flat runs keep the historical key set; scheduled runs carry an
  // additive "schedule" field that reads back, and legacy readers that
  // ignore unknown keys are unaffected.
  BatchResult batch = MakeBatch();
  ASSERT_EQ(batch.schedule_mode, "flat");
  EXPECT_EQ(ToJson(batch).find("\"schedule\""), std::string::npos);
  auto flat_parsed = FromJson(ToJson(batch));
  ASSERT_TRUE(flat_parsed.ok());
  EXPECT_EQ(flat_parsed->schedule_mode, "flat");

  batch.schedule_mode = "online";
  std::string json = ToJson(batch);
  EXPECT_NE(json.find("\"schedule\": \"online\""), std::string::npos);
  auto parsed = FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->schedule_mode, "online");
}

TEST(ReportTest, AcceptsLegacyReportsWithoutBurstField) {
  // loss_burst_len is additive within airindex.sim.batch/v1: documents
  // from older writers (no such field) must keep parsing, defaulting to
  // independent losses.
  BatchResult batch = MakeBatch();
  batch.loss_burst_len = 1;
  std::string json = ToJson(batch);
  const std::string field = "  \"loss_burst_len\": 1,\n";
  const size_t pos = json.find(field);
  ASSERT_NE(pos, std::string::npos);
  json.erase(pos, field.size());

  auto parsed = FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->loss_burst_len, 1u);
  EXPECT_EQ(parsed->loss_rate, batch.loss_rate);
}

TEST(ReportTest, AcceptsLegacyReportsWithoutEventFields) {
  // engine / subchannels / wait_ms / listen_ms are additive within
  // airindex.sim.batch/v1: a document written before the event engine
  // existed must keep parsing, reading back as a plain batch run with a
  // zero wait/listen split.
  BatchResult batch = MakeBatch();
  batch.engine = "batch";
  batch.subchannels = 1;
  for (auto& r : batch.systems) {
    r.aggregate.wait_ms = Stat{};
    r.aggregate.listen_ms = Stat{};
  }
  std::string json = ToJson(batch);
  for (std::string_view field : {"engine", "subchannels"}) {
    const std::string needle = "\"" + std::string(field) + "\":";
    const size_t pos = json.find(needle);
    ASSERT_NE(pos, std::string::npos) << field;
    const size_t line_start = json.rfind('\n', pos) + 1;
    const size_t line_end = json.find('\n', pos) + 1;
    json.erase(line_start, line_end - line_start);
  }
  for (std::string_view field : {"wait_ms", "listen_ms"}) {
    // Remove every per-system stat object for the field (spans 6 lines:
    // key + 4 stats + closing brace).
    const std::string needle = "\"" + std::string(field) + "\": {";
    size_t pos;
    while ((pos = json.find(needle)) != std::string::npos) {
      const size_t start = json.rfind('\n', pos) + 1;
      const size_t close = json.find('}', pos);
      const size_t end = json.find('\n', close) + 1;
      json.erase(start, end - start);
    }
  }

  auto parsed = FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->engine, "batch");
  EXPECT_EQ(parsed->subchannels, 1u);
  ASSERT_EQ(parsed->systems.size(), batch.systems.size());
  for (size_t i = 0; i < batch.systems.size(); ++i) {
    EXPECT_EQ(parsed->systems[i].aggregate.wait_ms, Stat{});
    EXPECT_EQ(parsed->systems[i].aggregate.listen_ms, Stat{});
    EXPECT_EQ(parsed->systems[i].aggregate, batch.systems[i].aggregate);
  }
}

TEST(ReportTest, NonFiniteStatsSerializeAsNullAndReadBackAsNaN) {
  // Regression: to_chars wrote "nan"/"inf" for non-finite doubles, which
  // is not JSON — FromJson (and every other reader) choked on its own
  // writer's output. Non-finite now emits null; the reader maps null back
  // to NaN so the document stays machine-readable end to end.
  BatchResult batch = MakeBatch();
  batch.systems[0].aggregate.cpu_ms.mean =
      std::numeric_limits<double>::quiet_NaN();
  batch.systems[0].aggregate.cpu_ms.max =
      std::numeric_limits<double>::infinity();
  batch.systems[0].aggregate.cpu_ms.p50 =
      -std::numeric_limits<double>::infinity();

  const std::string json = ToJson(batch);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  EXPECT_NE(json.find("null"), std::string::npos);

  auto parsed = FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Stat& cpu = parsed->systems[0].aggregate.cpu_ms;
  EXPECT_TRUE(std::isnan(cpu.mean));
  EXPECT_TRUE(std::isnan(cpu.max));
  EXPECT_TRUE(std::isnan(cpu.p50));
  EXPECT_EQ(cpu.p95, batch.systems[0].aggregate.cpu_ms.p95);
  // The undamaged system round-trips exactly.
  EXPECT_EQ(parsed->systems[1].aggregate, batch.systems[1].aggregate);
}

TEST(ReportTest, FecAndCorruptionFieldsAreGatedAndRoundTrip) {
  // Inactive channel: none of the new fields appear, so a pre-FEC reader
  // (and a byte-compare against a pre-FEC document) sees nothing new.
  const std::string clean = ToJson(MakeBatch());
  for (std::string_view field :
       {"corrupt_bit", "fec_data", "fec_parity", "corrupted_packets",
        "fec_recovered"}) {
    EXPECT_EQ(clean.find(field), std::string::npos) << field;
  }

  BatchResult batch = MakeBatch();
  batch.corrupt_bit = 2e-5;
  batch.fec = broadcast::FecScheme{16, 2};
  batch.systems[0].aggregate.corrupted_packets = MakeStat(3.0);
  batch.systems[0].aggregate.fec_recovered = MakeStat(11.0);
  const std::string json = ToJson(batch);

  auto parsed = FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->corrupt_bit, 2e-5);
  EXPECT_EQ(parsed->fec.data_per_group, 16u);
  EXPECT_EQ(parsed->fec.parity_per_group, 2u);
  EXPECT_EQ(parsed->systems[0].aggregate, batch.systems[0].aggregate);
  EXPECT_EQ(ToJson(*parsed), json);
}

TEST(ReportTest, JsonCarriesSchemaTag) {
  const std::string json = ToJson(MakeBatch());
  EXPECT_NE(json.find(kReportSchema), std::string::npos);
}

TEST(ReportTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(FromJson("not json at all").ok());
  EXPECT_FALSE(FromJson("{}").ok());
  EXPECT_FALSE(FromJson("{\"schema\": \"something/else\"}").ok());
  EXPECT_FALSE(FromJson("{\"schema\": \"airindex.sim.batch/v1\"}").ok());
  // Trailing garbage after a valid value.
  EXPECT_FALSE(FromJson(ToJson(MakeBatch()) + "x").ok());
}

TEST(ReportTest, TextReportListsEverySystem) {
  const BatchResult batch = MakeBatch();
  const std::string text = ToText(batch);
  EXPECT_NE(text.find("NR"), std::string::npos);
  EXPECT_NE(text.find("DJ"), std::string::npos);
  EXPECT_NE(text.find("tuning[pkt]"), std::string::npos);
  EXPECT_NE(text.find("qps"), std::string::npos);
}

}  // namespace
}  // namespace airindex::sim
