// Golden determinism test for the allocation-free query path: QueryMetrics
// must be byte-identical whether a query runs with a fresh QueryScratch,
// no scratch at all, or a scratch reused across every preceding query —
// and whether the engine fans the workload over 1 or 4 threads. This pins
// the PR's core contract: scratch changes where client working memory
// comes from, never what the client computes.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "broadcast/channel.h"
#include "core/query_scratch.h"
#include "core/systems.h"
#include "device/metrics.h"
#include "sim/simulator.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::sim {
namespace {

using testing_support::SmallNetwork;

constexpr double kLossRate = 0.02;
constexpr uint64_t kLossSeed = 0x60551;

struct Fixture {
  graph::Graph g;
  std::vector<std::unique_ptr<core::AirSystem>> systems;
  workload::Workload w;
};

const Fixture& SharedFixture() {
  static const Fixture& f = *[] {
    auto* fx = new Fixture();
    fx->g = SmallNetwork(300, 480, 77);
    core::SystemParams params;
    params.arcflag_regions = 8;
    params.eb_regions = 8;
    params.nr_regions = 8;
    params.landmarks = 3;
    params.hiti_regions = 8;
    params.include_spq = true;
    params.include_hiti = true;
    fx->systems = core::BuildSystems(fx->g, params).value();
    fx->w = workload::GenerateWorkload(fx->g, 12, 78).value();
    return fx;
  }();
  return f;
}

device::QueryMetrics RunOne(const Fixture& f, const core::AirSystem& sys,
                            size_t i, core::QueryScratch* scratch) {
  broadcast::BroadcastChannel channel(
      &sys.cycle(), broadcast::LossModel::Independent(kLossRate),
      QueryLossSeed(kLossSeed, i));
  device::QueryMetrics m = sys.RunQuery(
      channel, core::MakeAirQuery(f.g, f.w.queries[i]), {}, scratch);
  m.cpu_ms = 0.0;  // the one wall-clock field
  return m;
}

TEST(ScratchDeterminismTest, ReusedScratchMatchesFreshAndNone) {
  const Fixture& f = SharedFixture();
  ASSERT_EQ(f.systems.size(), 7u);
  for (const auto& sys : f.systems) {
    core::QueryScratch reused;
    for (size_t i = 0; i < f.w.queries.size(); ++i) {
      core::QueryScratch fresh;
      const device::QueryMetrics with_fresh = RunOne(f, *sys, i, &fresh);
      const device::QueryMetrics with_none = RunOne(f, *sys, i, nullptr);
      const device::QueryMetrics with_reused = RunOne(f, *sys, i, &reused);
      EXPECT_EQ(with_fresh, with_none) << sys->name() << " query " << i;
      EXPECT_EQ(with_fresh, with_reused) << sys->name() << " query " << i;
    }
  }
}

// A scratch polluted by a *different* system's queries must not change
// results either (the CLI runs several systems through one simulator).
TEST(ScratchDeterminismTest, CrossSystemScratchReuseIsClean) {
  const Fixture& f = SharedFixture();
  core::QueryScratch reused;
  std::vector<device::QueryMetrics> first_pass;
  for (const auto& sys : f.systems) {
    for (size_t i = 0; i < 4; ++i) {
      first_pass.push_back(RunOne(f, *sys, i, &reused));
    }
  }
  // Second sweep over the same queries with the now well-worn scratch.
  size_t k = 0;
  for (const auto& sys : f.systems) {
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(first_pass[k++], RunOne(f, *sys, i, &reused))
          << sys->name() << " query " << i;
    }
  }
}

TEST(ScratchDeterminismTest, EngineThreads1And4BitIdentical) {
  const Fixture& f = SharedFixture();
  std::vector<const core::AirSystem*> ptrs;
  for (const auto& sys : f.systems) ptrs.push_back(sys.get());

  SimOptions so;
  so.loss = broadcast::LossModel::Independent(kLossRate);
  so.loss_seed = kLossSeed;
  so.deterministic = true;

  so.threads = 1;
  BatchResult serial = Simulator(f.g, so).Run(ptrs, f.w);
  so.threads = 4;
  BatchResult parallel = Simulator(f.g, so).Run(ptrs, f.w);

  ASSERT_EQ(serial.systems.size(), parallel.systems.size());
  for (size_t sidx = 0; sidx < serial.systems.size(); ++sidx) {
    const auto& a = serial.systems[sidx];
    const auto& b = parallel.systems[sidx];
    ASSERT_EQ(a.per_query.size(), b.per_query.size());
    for (size_t i = 0; i < a.per_query.size(); ++i) {
      EXPECT_EQ(a.per_query[i], b.per_query[i])
          << a.system << " query " << i;
    }
  }
}

}  // namespace
}  // namespace airindex::sim
