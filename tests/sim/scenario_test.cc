#include "sim/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "device/energy.h"
#include "device/profile_catalog.h"
#include "sim/scenario_catalog.h"

namespace airindex::sim {
namespace {

/// A two-group heterogeneous scenario small enough for unit tests: tiny
/// catalog network, two systems, different device/bitrate/loss per group.
Scenario SmallScenario() {
  Scenario s;
  s.name = "test-fleet";
  s.network = "Milan";
  s.scale = 0.02;
  s.seed = 7;
  s.total_queries = 12;
  s.systems = {"DJ", "NR"};
  s.params.nr_regions = 8;

  ClientGroupSpec phones;
  phones.name = "phones";
  phones.weight = 2.0;
  s.groups.push_back(phones);

  ClientGroupSpec sensors;
  sensors.name = "sensors";
  sensors.weight = 1.0;
  sensors.profile = "iot-sensor";
  sensors.bits_per_second = device::kBitrateMoving3G;
  sensors.loss = broadcast::LossModel::Bursty(0.02, 4);
  sensors.client.max_repair_cycles = 64;
  s.groups.push_back(sensors);
  return s;
}

TEST(ResolveGroupCountsTest, WeightsSplitTheBudget) {
  Scenario s = SmallScenario();
  auto counts = ResolveGroupCounts(s);
  ASSERT_TRUE(counts.ok()) << counts.status().ToString();
  EXPECT_EQ((*counts)[0], 8u);
  EXPECT_EQ((*counts)[1], 4u);
}

TEST(ResolveGroupCountsTest, ExplicitCountsWinOverWeights) {
  Scenario s = SmallScenario();
  s.groups[0].queries = 5;
  auto counts = ResolveGroupCounts(s);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ((*counts)[0], 5u);
  EXPECT_EQ((*counts)[1], 7u);  // the rest of the 12-query budget
}

TEST(ResolveGroupCountsTest, RejectsZeroAllocations) {
  Scenario s = SmallScenario();
  s.total_queries = 1;
  s.groups[0].queries = 1;
  EXPECT_FALSE(ResolveGroupCounts(s).ok());
}

TEST(ResolveGroupCountsTest, RejectsNonPositiveAndNonFiniteWeights) {
  // Regression: a NaN weight compares false against <= 0, so the old
  // guard waved it into the largest-remainder division where it poisoned
  // every group's share (counts of 0 everywhere, then an infinite
  // remainder loop on some libcs). All-zero weights divided 0/0 the same
  // way. Both must be rejected with the offending group named.
  Scenario nan_weight = SmallScenario();
  nan_weight.groups[1].weight = std::nan("");
  auto r = ResolveGroupCounts(nan_weight);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("sensors"), std::string::npos);

  Scenario zero_weights = SmallScenario();
  for (auto& g : zero_weights.groups) g.weight = 0.0;
  EXPECT_FALSE(ResolveGroupCounts(zero_weights).ok());

  Scenario inf_weight = SmallScenario();
  inf_weight.groups[0].weight = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ResolveGroupCounts(inf_weight).ok());
}

class ScenarioRunnerTest : public ::testing::Test {
 protected:
  static ScenarioResult RunDeterministic(const Scenario& s,
                                         unsigned threads) {
    ScenarioRunner::RunOptions ro;
    ro.threads = threads;
    ro.deterministic = true;
    auto result = ScenarioRunner(ro).Run(s);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }
};

TEST_F(ScenarioRunnerTest, FleetAggregateEqualsMergeOfGroups) {
  const ScenarioResult r = RunDeterministic(SmallScenario(), 1);
  ASSERT_EQ(r.groups.size(), 2u);
  ASSERT_EQ(r.fleet.size(), 2u);
  EXPECT_EQ(r.num_queries, 12u);

  for (size_t si = 0; si < r.fleet.size(); ++si) {
    // Independent re-merge: concatenate every group's per-query metrics
    // and price each group's energy under its own device/bitrate.
    std::vector<device::QueryMetrics> metrics;
    std::vector<double> joules;
    for (const GroupResult& gr : r.groups) {
      const device::EnergyModel energy(
          device::FindProfile(gr.spec.profile).value(),
          gr.spec.bits_per_second);
      for (const auto& m : gr.systems[si].per_query) {
        metrics.push_back(m);
        joules.push_back(energy.QueryJoules(m));
      }
    }
    const Aggregate expected =
        Aggregate::Of(r.fleet[si].system, metrics, joules);
    EXPECT_EQ(r.fleet[si].aggregate, expected) << r.fleet[si].system;
    EXPECT_EQ(r.fleet[si].aggregate.queries, r.num_queries);
  }
}

TEST_F(ScenarioRunnerTest, EventScenarioGroupsShareOneStation) {
  // The shared-station contract at the scenario level: every group of an
  // event scenario derives the *same* station seed, so twin groups with
  // identical loss model, bitrate, workload, and arrivals observe the
  // exact same channel realization — byte-identical per-query metrics.
  // (The batch engine deliberately keeps per-group streams instead.)
  Scenario s;
  s.name = "twin-stations";
  s.network = "Milan";
  s.scale = 0.02;
  s.seed = 7;
  s.engine = "event";
  s.total_queries = 8;
  s.systems = {"DJ"};

  ClientGroupSpec twin;
  twin.name = "a";
  twin.weight = 1.0;
  twin.loss = broadcast::LossModel::Independent(0.02);
  twin.client.max_repair_cycles = 64;
  twin.workload.seed = 4242;  // pin: identical queries in both groups
  twin.workload.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
  twin.workload.arrival.rate_per_second = 10.0;
  twin.workload.arrival.seed = 77;  // pin: identical arrival instants
  s.groups.push_back(twin);
  twin.name = "b";
  s.groups.push_back(twin);

  const ScenarioResult r = RunDeterministic(s, 1);
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(r.engine, "event");
  EXPECT_EQ(r.groups[0].loss_seed, r.groups[1].loss_seed);
  ASSERT_EQ(r.groups[0].systems.size(), 1u);
  EXPECT_EQ(r.groups[0].systems[0].per_query,
            r.groups[1].systems[0].per_query);
}

TEST_F(ScenarioRunnerTest, GroupsDifferingOnlyInLossAreThreadInvariant) {
  // The acceptance shape: two groups identical except for the loss model
  // must produce bit-identical aggregates at 1 and 4 threads.
  Scenario s = SmallScenario();
  s.groups[1] = s.groups[0];
  s.groups[1].name = "bursty";
  s.groups[1].loss = broadcast::LossModel::Bursty(0.02, 8);
  s.groups[1].client.max_repair_cycles = 64;
  s.groups[0].loss = broadcast::LossModel::Independent(0.02);
  s.groups[0].client.max_repair_cycles = 64;

  const ScenarioResult serial = RunDeterministic(s, 1);
  const ScenarioResult parallel = RunDeterministic(s, 4);
  ASSERT_EQ(serial.groups.size(), parallel.groups.size());
  for (size_t gi = 0; gi < serial.groups.size(); ++gi) {
    ASSERT_EQ(serial.groups[gi].systems.size(),
              parallel.groups[gi].systems.size());
    for (size_t si = 0; si < serial.groups[gi].systems.size(); ++si) {
      EXPECT_EQ(serial.groups[gi].systems[si].per_query,
                parallel.groups[gi].systems[si].per_query);
      EXPECT_EQ(serial.groups[gi].systems[si].aggregate,
                parallel.groups[gi].systems[si].aggregate);
    }
  }
  for (size_t si = 0; si < serial.fleet.size(); ++si) {
    EXPECT_EQ(serial.fleet[si].aggregate, parallel.fleet[si].aggregate);
  }
  // The two loss models genuinely differ in effect.
  EXPECT_NE(serial.groups[0].systems[0].aggregate.latency_packets,
            serial.groups[1].systems[0].aggregate.latency_packets);
}

TEST_F(ScenarioRunnerTest, ReportJsonRoundTrips) {
  const ScenarioResult r = RunDeterministic(SmallScenario(), 1);
  const std::string json = ScenarioReportToJson(r);
  EXPECT_NE(json.find(kScenarioSchema), std::string::npos);

  auto parsed = ScenarioReportFromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->scenario, r.scenario);
  EXPECT_EQ(parsed->network, r.network);
  EXPECT_EQ(parsed->num_queries, r.num_queries);
  ASSERT_EQ(parsed->groups.size(), r.groups.size());
  for (size_t gi = 0; gi < r.groups.size(); ++gi) {
    EXPECT_EQ(parsed->groups[gi].spec.name, r.groups[gi].spec.name);
    EXPECT_EQ(parsed->groups[gi].spec.loss.burst_len,
              r.groups[gi].spec.loss.burst_len);
    for (size_t si = 0; si < r.groups[gi].systems.size(); ++si) {
      EXPECT_EQ(parsed->groups[gi].systems[si].aggregate,
                r.groups[gi].systems[si].aggregate);
    }
  }
  ASSERT_EQ(parsed->fleet.size(), r.fleet.size());
  for (size_t si = 0; si < r.fleet.size(); ++si) {
    EXPECT_EQ(parsed->fleet[si].aggregate, r.fleet[si].aggregate);
  }
  // Serialization is a fixed point.
  EXPECT_EQ(ScenarioReportToJson(*parsed), json);
}

TEST(ScenarioSpecJsonTest, ParsesAFullSpec) {
  const char* json = R"({
    "schema": "airindex.sim.scenario/v1",
    "name": "commute",
    "description": "two-group commute",
    "network": "Milan",
    "scale": 0.05,
    "seed": 42,
    "total_queries": 30,
    "systems": ["NR", "EB"],
    "params": {"nr_regions": 8, "eb_regions": 8},
    "groups": [
      {
        "name": "commuters",
        "weight": 2,
        "profile": "smartphone",
        "bits_per_second": 384000,
        "loss": {"rate": 0.01, "burst_len": 4},
        "client": {"memory_bound": true, "max_repair_cycles": 32},
        "workload": {
          "destinations": "zipf", "zipf_s": 1.3,
          "sources": "clustered", "partition_regions": 8,
          "source_regions": [0, 1],
          "phases": "rush-hour", "phase_peak": 0.4, "phase_width": 0.1
        }
      },
      {"name": "rest", "queries": 10}
    ]
  })";
  auto s = ScenarioFromJson(json);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->name, "commute");
  EXPECT_EQ(s->network, "Milan");
  EXPECT_EQ(s->seed, 42u);
  EXPECT_EQ(s->total_queries, 30u);
  EXPECT_EQ(s->systems, (std::vector<std::string>{"NR", "EB"}));
  EXPECT_EQ(s->params.nr_regions, 8u);
  ASSERT_EQ(s->groups.size(), 2u);

  const ClientGroupSpec& g = s->groups[0];
  EXPECT_EQ(g.profile, "smartphone");
  EXPECT_EQ(g.bits_per_second, 384000.0);
  EXPECT_EQ(g.loss.rate, 0.01);
  EXPECT_EQ(g.loss.burst_len, 4u);
  EXPECT_TRUE(g.client.memory_bound);
  EXPECT_EQ(g.client.max_repair_cycles, 32);
  EXPECT_EQ(g.workload.dest, workload::WorkloadSpec::Dest::kZipf);
  EXPECT_EQ(g.workload.zipf_s, 1.3);
  EXPECT_EQ(g.workload.source, workload::WorkloadSpec::Source::kClustered);
  EXPECT_EQ(g.workload.source_regions, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(g.workload.phase, workload::WorkloadSpec::Phase::kRushHour);
  EXPECT_EQ(s->groups[1].queries, 10u);
}

TEST(ScenarioSpecJsonTest, SpecSerializationRoundTrips) {
  for (const Scenario& s : ScenarioCatalog()) {
    const std::string json = ScenarioToJson(s);
    auto parsed = ScenarioFromJson(json);
    ASSERT_TRUE(parsed.ok()) << s.name << ": "
                             << parsed.status().ToString();
    EXPECT_EQ(parsed->name, s.name);
    EXPECT_EQ(parsed->network, s.network);
    EXPECT_EQ(parsed->total_queries, s.total_queries);
    ASSERT_EQ(parsed->groups.size(), s.groups.size()) << s.name;
    for (size_t gi = 0; gi < s.groups.size(); ++gi) {
      EXPECT_EQ(parsed->groups[gi].workload, s.groups[gi].workload)
          << s.name << " group " << gi;
      EXPECT_EQ(parsed->groups[gi].profile, s.groups[gi].profile);
      EXPECT_EQ(parsed->groups[gi].loss.burst_len,
                s.groups[gi].loss.burst_len);
      EXPECT_EQ(parsed->groups[gi].loss.corrupt_bit,
                s.groups[gi].loss.corrupt_bit);
      EXPECT_EQ(parsed->groups[gi].fec.data_per_group,
                s.groups[gi].fec.data_per_group);
      EXPECT_EQ(parsed->groups[gi].fec.parity_per_group,
                s.groups[gi].fec.parity_per_group);
    }
  }
}

TEST(ScenarioSpecJsonTest, RejectsBadWeightsAtParseTime) {
  // The spec parser names the offending group instead of letting the
  // runner trip over a poisoned allocation later. "weight": null is how a
  // NaN reaches the parser (the JSON reader maps null to NaN).
  auto nan_weight = ScenarioFromJson(R"({
    "schema": "airindex.sim.scenario/v1", "name": "x",
    "groups": [{"name": "broken", "weight": null}]
  })");
  ASSERT_FALSE(nan_weight.ok());
  EXPECT_NE(nan_weight.status().ToString().find("broken"),
            std::string::npos);
  EXPECT_NE(nan_weight.status().ToString().find("non-finite"),
            std::string::npos);

  auto zero_weight = ScenarioFromJson(R"({
    "schema": "airindex.sim.scenario/v1", "name": "x",
    "groups": [{"name": "idle", "weight": 0}]
  })");
  ASSERT_FALSE(zero_weight.ok());
  EXPECT_NE(zero_weight.status().ToString().find("idle"),
            std::string::npos);

  // An explicit query count makes the weight irrelevant.
  EXPECT_TRUE(ScenarioFromJson(R"({
    "schema": "airindex.sim.scenario/v1", "name": "x",
    "groups": [{"name": "pinned", "queries": 4, "weight": 0}]
  })")
                  .ok());
}

TEST(ScenarioSpecJsonTest, ParsesFecAndCorruption) {
  auto s = ScenarioFromJson(R"({
    "schema": "airindex.sim.scenario/v1", "name": "coded",
    "groups": [{
      "name": "tunnel", "queries": 4,
      "loss": {"rate": 0.02, "burst_len": 8, "corrupt_bit": 2e-5},
      "fec": {"data_per_group": 16, "parity_per_group": 2}
    }]
  })");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const ClientGroupSpec& g = s->groups[0];
  EXPECT_EQ(g.loss.corrupt_bit, 2e-5);
  EXPECT_EQ(g.fec.data_per_group, 16u);
  EXPECT_EQ(g.fec.parity_per_group, 2u);
  EXPECT_TRUE(g.fec.enabled());

  // And they survive the writer.
  auto back = ScenarioFromJson(ScenarioToJson(*s));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->groups[0].loss.corrupt_bit, 2e-5);
  EXPECT_EQ(back->groups[0].fec.parity_per_group, 2u);

  // Out-of-contract values are rejected, not clamped.
  EXPECT_FALSE(ScenarioFromJson(R"({
    "schema": "airindex.sim.scenario/v1", "name": "x",
    "groups": [{"name": "g", "queries": 1,
                "fec": {"data_per_group": 16, "parity_per_group": 17}}]
  })")
                   .ok());
  EXPECT_FALSE(ScenarioFromJson(R"({
    "schema": "airindex.sim.scenario/v1", "name": "x",
    "groups": [{"name": "g", "queries": 1,
                "loss": {"rate": 0.0, "corrupt_bit": 1.0}}]
  })")
                   .ok());
}

TEST(ScenarioSpecJsonTest, DecodesStandardStringEscapes) {
  // Hand-written spec files may use any standard JSON escape, not just
  // the \" and \\ this library's writers emit.
  const char* json = R"({
    "schema": "airindex.sim.scenario/v1",
    "name": "esc",
    "description": "line1\nline2 \u00e9 tab\there",
    "groups": [{"name": "g"}]
  })";
  auto s = ScenarioFromJson(json);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ(s->description, "line1\nline2 \xC3\xA9 tab\there");
  EXPECT_FALSE(ScenarioFromJson(R"({"schema": "airindex.sim.scenario/v1",
    "name": "bad\q", "groups": [{"name": "g"}]})")
                   .ok());
}

TEST(ScenarioSpecJsonTest, RejectsGarbage) {
  EXPECT_FALSE(ScenarioFromJson("nope").ok());
  EXPECT_FALSE(ScenarioFromJson("{}").ok());
  EXPECT_FALSE(
      ScenarioFromJson(R"({"schema": "other/v1", "name": "x"})").ok());
  // Schema right but no groups.
  EXPECT_FALSE(ScenarioFromJson(
                   R"({"schema": "airindex.sim.scenario/v1", "name": "x"})")
                   .ok());
  // A report is not a spec: ScenarioReportFromJson requires "fleet".
  EXPECT_FALSE(ScenarioReportFromJson(
                   R"({"schema": "airindex.sim.scenario/v1", "name": "x"})")
                   .ok());
}

TEST(ScenarioCatalogTest, EveryBuiltinCompilesAndRunsTiny) {
  for (const Scenario& entry : ScenarioCatalog()) {
    Scenario s = entry;
    // Smoke scale: shrink the network and the fleet, keep the group
    // structure and every system under test.
    s.scale = 0.02;
    for (auto& g : s.groups) {
      g.queries = 0;
      g.weight = 1.0;
    }
    s.total_queries = 2 * s.groups.size();

    ScenarioRunner::RunOptions ro;
    ro.threads = 1;
    ro.deterministic = true;
    auto result = ScenarioRunner(ro).Run(s);
    ASSERT_TRUE(result.ok()) << s.name << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->num_queries, s.total_queries) << s.name;
    EXPECT_EQ(result->fleet.size(), s.EffectiveSystems().size()) << s.name;
    for (const auto& fleet : result->fleet) {
      EXPECT_LT(fleet.aggregate.failures, fleet.aggregate.queries)
          << s.name << " " << fleet.system;
    }
  }
}

TEST(ScenarioCatalogTest, FindScenarioReportsKnownNames) {
  EXPECT_TRUE(FindScenario("paper-baseline").ok());
  auto miss = FindScenario("no-such-scenario");
  ASSERT_FALSE(miss.ok());
  EXPECT_NE(miss.status().ToString().find("paper-baseline"),
            std::string::npos);
}

}  // namespace
}  // namespace airindex::sim
