#include <gtest/gtest.h>

#include "broadcast/channel.h"
#include "core/systems.h"
#include "device/energy.h"
#include "graph/catalog.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex {
namespace {

/// Full pipeline on a miniature catalog network: generate the replica,
/// build every system, run a workload through a lossy channel, and check
/// correctness plus the paper's qualitative orderings end to end.
TEST(EndToEndTest, MiniatureGermanyPipeline) {
  auto g = graph::MakeNetwork(graph::DefaultNetwork(), 0.02).value();
  ASSERT_GT(g.num_nodes(), 500u);
  ASSERT_TRUE(g.IsStronglyConnected());

  core::SystemParams params;
  params.arcflag_regions = 8;
  params.eb_regions = 16;
  params.nr_regions = 16;
  params.landmarks = 4;
  auto systems = core::BuildSystems(g, params).value();
  auto w = workload::GenerateWorkload(g, 15, 42).value();

  device::EnergyModel energy(device::DeviceProfile::J2mePhone(),
                             device::kBitrateStatic3G);

  double dj_joules = 0, nr_joules = 0;
  for (const auto& sys : systems) {
    broadcast::BroadcastChannel channel(&sys->cycle(), 0.01, 7);
    core::ClientOptions opts;
    opts.max_repair_cycles = 32;
    double joules = 0;
    for (const auto& q : w.queries) {
      device::QueryMetrics m =
          sys->RunQuery(channel, core::MakeAirQuery(g, q), opts);
      ASSERT_TRUE(m.ok) << sys->name();
      ASSERT_EQ(m.distance, q.true_dist) << sys->name();
      joules += energy.QueryJoules(m);
    }
    if (sys->name() == "DJ") dj_joules = joules;
    if (sys->name() == "NR") nr_joules = joules;
  }
  // The energy argument of §1/§3.1: selective tuning saves power.
  EXPECT_LT(nr_joules, dj_joules);
}

TEST(EndToEndTest, PrecomputeTimesAreReported) {
  auto g = graph::MakeNetwork(graph::PaperNetworks()[0], 0.02).value();
  core::SystemParams params;
  params.eb_regions = 8;
  params.nr_regions = 8;
  params.arcflag_regions = 8;
  params.landmarks = 2;
  auto systems = core::BuildSystems(g, params).value();
  for (const auto& sys : systems) {
    if (sys->name() == "DJ") {
      EXPECT_EQ(sys->precompute_seconds(), 0.0);
    } else {
      EXPECT_GT(sys->precompute_seconds(), 0.0) << sys->name();
    }
  }
}

TEST(EndToEndTest, DeterministicReplay) {
  auto g = testing_support::SmallNetwork(300, 480, 4242);
  auto systems = core::BuildSystems(g, core::SystemParams{
                                           .arcflag_regions = 8,
                                           .eb_regions = 8,
                                           .nr_regions = 8,
                                           .landmarks = 2,
                                       })
                     .value();
  auto w = workload::GenerateWorkload(g, 5, 4243).value();
  for (const auto& sys : systems) {
    broadcast::BroadcastChannel channel(&sys->cycle(), 0.05, 11);
    for (const auto& q : w.queries) {
      auto a = sys->RunQuery(channel, core::MakeAirQuery(g, q));
      auto b = sys->RunQuery(channel, core::MakeAirQuery(g, q));
      EXPECT_EQ(a.tuning_packets, b.tuning_packets) << sys->name();
      EXPECT_EQ(a.latency_packets, b.latency_packets) << sys->name();
      EXPECT_EQ(a.distance, b.distance) << sys->name();
      EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes) << sys->name();
    }
  }
}

}  // namespace
}  // namespace airindex
