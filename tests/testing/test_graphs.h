#ifndef AIRINDEX_TESTS_TESTING_TEST_GRAPHS_H_
#define AIRINDEX_TESTS_TESTING_TEST_GRAPHS_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/generator.h"
#include "graph/graph.h"

namespace airindex::testing_support {

/// A small strongly-connected synthetic road network for tests.
inline graph::Graph SmallNetwork(uint32_t nodes = 400, uint32_t edges = 640,
                                 uint64_t seed = 1234) {
  graph::GeneratorOptions opts;
  opts.num_nodes = nodes;
  opts.num_edges = edges;
  opts.seed = seed;
  opts.extent = 10000.0;
  return graph::GenerateRoadNetwork(opts).value();
}

/// Random distinct (source, target) pairs.
inline std::vector<std::pair<graph::NodeId, graph::NodeId>> RandomPairs(
    const graph::Graph& g, size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    auto s = static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
    auto t = static_cast<graph::NodeId>(rng.NextBounded(g.num_nodes()));
    if (s != t) pairs.emplace_back(s, t);
  }
  return pairs;
}

}  // namespace airindex::testing_support

#endif  // AIRINDEX_TESTS_TESTING_TEST_GRAPHS_H_
