#include "graph/catalog.h"

#include <gtest/gtest.h>

namespace airindex::graph {
namespace {

TEST(CatalogTest, FivePaperNetworksInTableOrder) {
  const auto& nets = PaperNetworks();
  ASSERT_EQ(nets.size(), 5u);
  EXPECT_EQ(nets[0].name, "Milan");
  EXPECT_EQ(nets[1].name, "Germany");
  EXPECT_EQ(nets[2].name, "Argentina");
  EXPECT_EQ(nets[3].name, "India");
  EXPECT_EQ(nets[4].name, "SanFrancisco");
}

TEST(CatalogTest, PaperSizes) {
  const auto& nets = PaperNetworks();
  EXPECT_EQ(nets[0].num_nodes, 14021u);
  EXPECT_EQ(nets[0].num_edges, 26849u);
  EXPECT_EQ(nets[1].num_nodes, 28867u);
  EXPECT_EQ(nets[1].num_edges, 30429u);
  EXPECT_EQ(nets[4].num_nodes, 174956u);
  EXPECT_EQ(nets[4].num_edges, 223001u);
}

TEST(CatalogTest, DefaultIsGermany) {
  EXPECT_EQ(DefaultNetwork().name, "Germany");
}

TEST(CatalogTest, FindByName) {
  auto found = FindNetwork("India");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->num_nodes, 149566u);
  EXPECT_FALSE(FindNetwork("Atlantis").ok());
}

TEST(CatalogTest, ScaledReplicaPreservesRatio) {
  auto g = MakeNetwork(PaperNetworks()[0], 0.1);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // ~1402 nodes, ~2685 edges.
  EXPECT_NEAR(static_cast<double>(g->num_nodes()), 1402, 2);
  EXPECT_NEAR(static_cast<double>(g->num_arcs()) / 2, 2685, 2);
  EXPECT_TRUE(g->IsStronglyConnected());
}

TEST(CatalogTest, RejectsBadScale) {
  EXPECT_FALSE(MakeNetwork(PaperNetworks()[0], 0.0).ok());
  EXPECT_FALSE(MakeNetwork(PaperNetworks()[0], 1.5).ok());
}

TEST(CatalogTest, SameSpecSameGraph) {
  auto a = MakeNetwork(PaperNetworks()[1], 0.05);
  auto b = MakeNetwork(PaperNetworks()[1], 0.05);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_nodes(), b->num_nodes());
  EXPECT_DOUBLE_EQ(a->Coord(0).x, b->Coord(0).x);
}

}  // namespace
}  // namespace airindex::graph
