#include "graph/graph.h"

#include <gtest/gtest.h>

namespace airindex::graph {
namespace {

Graph Diamond() {
  // 0 -> 1 -> 3, 0 -> 2 -> 3 (bidirectional).
  GraphBuilder b;
  for (int i = 0; i < 4; ++i) {
    b.AddNode({static_cast<double>(i), 0.0});
  }
  b.AddBidirectional(0, 1, 1);
  b.AddBidirectional(1, 3, 2);
  b.AddBidirectional(0, 2, 2);
  b.AddBidirectional(2, 3, 2);
  return std::move(b).Build().value();
}

TEST(GraphTest, BuildCountsNodesAndArcs) {
  Graph g = Diamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_arcs(), 8u);
}

TEST(GraphTest, AdjacencySortedByTarget) {
  Graph g = Diamond();
  auto arcs = g.OutArcs(0);
  ASSERT_EQ(arcs.size(), 2u);
  EXPECT_EQ(arcs[0].to, 1u);
  EXPECT_EQ(arcs[1].to, 2u);
}

TEST(GraphTest, OutDegree) {
  Graph g = Diamond();
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.OutDegree(3), 2u);
}

TEST(GraphTest, RejectsSelfLoop) {
  std::vector<Point> coords = {{0, 0}, {1, 1}};
  auto res = Graph::Build(coords, {{0, 0, 1}});
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  std::vector<Point> coords = {{0, 0}, {1, 1}};
  auto res = Graph::Build(coords, {{0, 5, 1}});
  EXPECT_FALSE(res.ok());
}

TEST(GraphTest, ReversedSwapsDirection) {
  GraphBuilder b;
  b.AddNode({0, 0});
  b.AddNode({1, 0});
  b.AddArc(0, 1, 7);
  Graph g = std::move(b).Build().value();
  Graph rev = g.Reversed();
  EXPECT_EQ(rev.OutDegree(0), 0u);
  ASSERT_EQ(rev.OutDegree(1), 1u);
  EXPECT_EQ(rev.OutArcs(1)[0].to, 0u);
  EXPECT_EQ(rev.OutArcs(1)[0].weight, 7u);
}

TEST(GraphTest, StronglyConnectedDiamond) {
  EXPECT_TRUE(Diamond().IsStronglyConnected());
}

TEST(GraphTest, OneWayPairIsNotStronglyConnected) {
  GraphBuilder b;
  b.AddNode({0, 0});
  b.AddNode({1, 0});
  b.AddArc(0, 1, 1);
  Graph g = std::move(b).Build().value();
  EXPECT_FALSE(g.IsStronglyConnected());
}

TEST(GraphTest, MemoryBytesGrowsWithSize) {
  Graph small = Diamond();
  GraphBuilder b;
  for (int i = 0; i < 100; ++i) b.AddNode({static_cast<double>(i), 0});
  for (int i = 0; i + 1 < 100; ++i) {
    b.AddBidirectional(i, i + 1, 1);
  }
  Graph big = std::move(b).Build().value();
  EXPECT_GT(big.MemoryBytes(), small.MemoryBytes());
}

TEST(GraphTest, CoordsPreserved) {
  GraphBuilder b;
  NodeId a = b.AddNode({3.5, -2.25});
  b.AddNode({0, 0});
  b.AddBidirectional(0, 1, 1);
  Graph g = std::move(b).Build().value();
  EXPECT_DOUBLE_EQ(g.Coord(a).x, 3.5);
  EXPECT_DOUBLE_EQ(g.Coord(a).y, -2.25);
}

}  // namespace
}  // namespace airindex::graph
