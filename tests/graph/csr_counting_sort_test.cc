#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::graph {
namespace {

/// Reference CSR layout: stable sort by `to`, then stable sort by `from` —
/// the ordering contract of Graph::Build's two-pass counting sort (per-node
/// spans ascending by `to`, parallel arcs in input order).
std::vector<EdgeTriplet> ReferenceOrder(std::vector<EdgeTriplet> edges) {
  std::stable_sort(edges.begin(), edges.end(),
                   [](const EdgeTriplet& a, const EdgeTriplet& b) {
                     return a.to < b.to;
                   });
  std::stable_sort(edges.begin(), edges.end(),
                   [](const EdgeTriplet& a, const EdgeTriplet& b) {
                     return a.from < b.from;
                   });
  return edges;
}

void ExpectMatchesReference(const Graph& g,
                            const std::vector<EdgeTriplet>& edges) {
  const std::vector<EdgeTriplet> ref = ReferenceOrder(edges);
  ASSERT_EQ(g.num_arcs(), ref.size());
  size_t k = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.OutArcs(v)) {
      ASSERT_LT(k, ref.size());
      EXPECT_EQ(v, ref[k].from) << "arc " << k;
      EXPECT_EQ(arc.to, ref[k].to) << "arc " << k;
      EXPECT_EQ(arc.weight, ref[k].weight) << "arc " << k;
      ++k;
    }
  }
  EXPECT_EQ(k, ref.size());
}

TEST(CsrCountingSortTest, RandomMultigraphsMatchReference) {
  Rng rng(0xC0DE);
  for (int round = 0; round < 20; ++round) {
    const uint32_t n = 2 + static_cast<uint32_t>(rng.NextBounded(60));
    const uint32_t m = static_cast<uint32_t>(rng.NextBounded(400));
    std::vector<Point> coords(n);
    for (uint32_t v = 0; v < n; ++v) {
      coords[v] = {static_cast<double>(rng.NextBounded(1000)),
                   static_cast<double>(rng.NextBounded(1000))};
    }
    std::vector<EdgeTriplet> edges;
    edges.reserve(m);
    for (uint32_t e = 0; e < m; ++e) {
      const NodeId from = static_cast<NodeId>(rng.NextBounded(n));
      NodeId to = static_cast<NodeId>(rng.NextBounded(n));
      if (to == from) to = (to + 1) % n;  // no self-loops
      // Duplicate (from, to) pairs with distinct weights are deliberate:
      // the stable order of parallel arcs is part of the contract.
      edges.push_back(
          {from, to, 1 + static_cast<graph::Weight>(rng.NextBounded(10))});
    }
    auto g = Graph::Build(coords, edges);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    ExpectMatchesReference(*g, edges);
  }
}

TEST(CsrCountingSortTest, EmptyAndSingleEdge) {
  auto empty = Graph::Build({{0, 0}, {1, 1}}, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->num_arcs(), 0u);
  EXPECT_EQ(empty->OutDegree(0), 0u);

  auto one = Graph::Build({{0, 0}, {1, 1}}, {{1, 0, 7}});
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->OutDegree(1), 1u);
  EXPECT_EQ(one->OutArcs(1)[0].to, 0u);
  EXPECT_EQ(one->OutArcs(1)[0].weight, 7u);
}

TEST(CsrCountingSortTest, StillRejectsBadEdges) {
  EXPECT_FALSE(Graph::Build({{0, 0}, {1, 1}}, {{0, 2, 1}}).ok());  // range
  EXPECT_FALSE(Graph::Build({{0, 0}, {1, 1}}, {{1, 1, 1}}).ok());  // loop
}

}  // namespace
}  // namespace airindex::graph
