#include "graph/generator.h"

#include <gtest/gtest.h>

#include <set>

namespace airindex::graph {
namespace {

TEST(GeneratorTest, ExactCounts) {
  GeneratorOptions opts;
  opts.num_nodes = 500;
  opts.num_edges = 800;
  opts.seed = 42;
  auto g = GenerateRoadNetwork(opts);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), 500u);
  EXPECT_EQ(g->num_arcs(), 1600u);  // two directed arcs per edge
}

TEST(GeneratorTest, StronglyConnected) {
  GeneratorOptions opts;
  opts.num_nodes = 300;
  opts.num_edges = 320;  // near-tree, the hardest case for connectivity
  opts.seed = 7;
  auto g = GenerateRoadNetwork(opts);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->IsStronglyConnected());
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions opts;
  opts.num_nodes = 200;
  opts.num_edges = 300;
  opts.seed = 99;
  auto a = GenerateRoadNetwork(opts);
  auto b = GenerateRoadNetwork(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->num_arcs(), b->num_arcs());
  for (NodeId v = 0; v < a->num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(a->Coord(v).x, b->Coord(v).x);
    auto arcs_a = a->OutArcs(v);
    auto arcs_b = b->OutArcs(v);
    ASSERT_EQ(arcs_a.size(), arcs_b.size());
    for (size_t i = 0; i < arcs_a.size(); ++i) {
      EXPECT_EQ(arcs_a[i].to, arcs_b[i].to);
      EXPECT_EQ(arcs_a[i].weight, arcs_b[i].weight);
    }
  }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentGraphs) {
  GeneratorOptions a_opts;
  a_opts.num_nodes = 100;
  a_opts.num_edges = 150;
  a_opts.seed = 1;
  GeneratorOptions b_opts = a_opts;
  b_opts.seed = 2;
  auto a = GenerateRoadNetwork(a_opts);
  auto b = GenerateRoadNetwork(b_opts);
  ASSERT_TRUE(a.ok() && b.ok());
  bool any_diff = false;
  for (NodeId v = 0; v < 100 && !any_diff; ++v) {
    any_diff = a->Coord(v).x != b->Coord(v).x;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, WeightsArePositive) {
  GeneratorOptions opts;
  opts.num_nodes = 200;
  opts.num_edges = 400;
  opts.seed = 5;
  auto g = GenerateRoadNetwork(opts);
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    for (const auto& arc : g->OutArcs(v)) {
      EXPECT_GE(arc.weight, 1u);
    }
  }
}

TEST(GeneratorTest, SymmetricArcs) {
  GeneratorOptions opts;
  opts.num_nodes = 150;
  opts.num_edges = 250;
  opts.seed = 6;
  auto g = GenerateRoadNetwork(opts);
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    for (const auto& arc : g->OutArcs(v)) {
      bool found_reverse = false;
      for (const auto& back : g->OutArcs(arc.to)) {
        if (back.to == v && back.weight == arc.weight) {
          found_reverse = true;
          break;
        }
      }
      EXPECT_TRUE(found_reverse) << v << "->" << arc.to;
    }
  }
}

TEST(GeneratorTest, NoDuplicateUndirectedEdges) {
  GeneratorOptions opts;
  opts.num_nodes = 100;
  opts.num_edges = 180;
  opts.seed = 8;
  auto g = GenerateRoadNetwork(opts);
  ASSERT_TRUE(g.ok());
  std::set<std::pair<NodeId, NodeId>> seen;
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    for (const auto& arc : g->OutArcs(v)) {
      EXPECT_TRUE(seen.emplace(v, arc.to).second)
          << "duplicate arc " << v << "->" << arc.to;
    }
  }
}

TEST(GeneratorTest, RejectsTooFewEdges) {
  GeneratorOptions opts;
  opts.num_nodes = 100;
  opts.num_edges = 50;
  EXPECT_FALSE(GenerateRoadNetwork(opts).ok());
}

TEST(GeneratorTest, RejectsTinyGraphs) {
  GeneratorOptions opts;
  opts.num_nodes = 1;
  opts.num_edges = 0;
  EXPECT_FALSE(GenerateRoadNetwork(opts).ok());
}

TEST(GeneratorTest, DenseNetworkSucceeds) {
  // Milan-style density (m/n ~ 1.9).
  GeneratorOptions opts;
  opts.num_nodes = 1000;
  opts.num_edges = 1915;
  opts.seed = 3;
  auto g = GenerateRoadNetwork(opts);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(g->IsStronglyConnected());
}

}  // namespace
}  // namespace airindex::graph
