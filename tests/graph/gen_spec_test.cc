#include <gtest/gtest.h>

#include "graph/generator.h"
#include "graph/graph.h"

namespace airindex::graph {
namespace {

/// Full structural equality: coordinates bit-exact, CSR spans identical.
void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.Coord(v).x, b.Coord(v).x);
    EXPECT_EQ(a.Coord(v).y, b.Coord(v).y);
    auto sa = a.OutArcs(v);
    auto sb = b.OutArcs(v);
    ASSERT_EQ(sa.size(), sb.size()) << "node " << v;
    for (size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].to, sb[i].to) << "node " << v;
      EXPECT_EQ(sa[i].weight, sb[i].weight) << "node " << v;
    }
  }
}

TEST(GenSpecTest, DeterministicAcrossThreadCounts) {
  GenSpec spec;
  spec.num_nodes = 5000;
  spec.seed = 11;
  spec.threads = 1;
  auto serial = GenerateRoadNetwork(spec);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (unsigned threads : {2u, 3u, 8u}) {
    spec.threads = threads;
    auto parallel = GenerateRoadNetwork(spec);
    ASSERT_TRUE(parallel.ok());
    ExpectSameGraph(*serial, *parallel);
  }
}

TEST(GenSpecTest, DeterministicForSeedDistinctAcrossSeeds) {
  GenSpec spec;
  spec.num_nodes = 1000;
  spec.seed = 3;
  auto a = GenerateRoadNetwork(spec);
  auto b = GenerateRoadNetwork(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameGraph(*a, *b);

  spec.seed = 4;
  auto c = GenerateRoadNetwork(spec);
  ASSERT_TRUE(c.ok());
  // Same topology (grid + highways), different jitter: at least one
  // coordinate must move.
  bool any_diff = false;
  for (NodeId v = 0; v < a->num_nodes() && !any_diff; ++v) {
    any_diff = a->Coord(v).x != c->Coord(v).x;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GenSpecTest, StronglyConnectedIncludingPartialLastRow) {
  // 10 nodes on a 4-wide grid leaves a 2-node last row; 300 nodes leaves
  // a partial 18-wide row. Both must stay strongly connected.
  for (uint32_t n : {2u, 3u, 10u, 300u, 1000u}) {
    GenSpec spec;
    spec.num_nodes = n;
    spec.seed = 5;
    auto g = GenerateRoadNetwork(spec);
    ASSERT_TRUE(g.ok()) << "n=" << n << ": " << g.status().ToString();
    EXPECT_EQ(g->num_nodes(), n);
    EXPECT_TRUE(g->IsStronglyConnected()) << "n=" << n;
  }
}

TEST(GenSpecTest, HighwayLevelsAddShortcuts) {
  GenSpec spec;
  spec.num_nodes = 4096;
  spec.seed = 1;
  spec.highway_levels = 0;
  auto base = GenerateRoadNetwork(spec);
  ASSERT_TRUE(base.ok());
  spec.highway_levels = 2;
  auto with_highways = GenerateRoadNetwork(spec);
  ASSERT_TRUE(with_highways.ok());
  EXPECT_GT(with_highways->num_arcs(), base->num_arcs());
  EXPECT_TRUE(with_highways->IsStronglyConnected());
}

TEST(GenSpecTest, WeightsArePositive) {
  GenSpec spec;
  spec.num_nodes = 2000;
  spec.seed = 9;
  spec.weight_jitter = 0.9;  // worst case for the >= 1 floor
  auto g = GenerateRoadNetwork(spec);
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < g->num_nodes(); ++v) {
    for (const auto& arc : g->OutArcs(v)) {
      EXPECT_GE(arc.weight, 1u);
    }
  }
}

TEST(GenSpecTest, RejectsInvalidSpec) {
  GenSpec spec;
  spec.num_nodes = 1;
  EXPECT_FALSE(GenerateRoadNetwork(spec).ok());

  spec = GenSpec{};
  spec.num_nodes = 100;
  spec.weight_jitter = 1.0;
  EXPECT_FALSE(GenerateRoadNetwork(spec).ok());

  spec = GenSpec{};
  spec.num_nodes = 100;
  spec.extent = 0.0;
  EXPECT_FALSE(GenerateRoadNetwork(spec).ok());

  spec = GenSpec{};
  spec.num_nodes = 100;
  spec.highway_levels = 13;
  EXPECT_FALSE(GenerateRoadNetwork(spec).ok());
}

}  // namespace
}  // namespace airindex::graph
