#include "graph/dimacs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/generator.h"

namespace airindex::graph {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(DimacsTest, RoundTrip) {
  GeneratorOptions opts;
  opts.num_nodes = 120;
  opts.num_edges = 200;
  opts.seed = 21;
  Graph g = GenerateRoadNetwork(opts).value();

  const std::string gr = TempPath("rt.gr"), co = TempPath("rt.co");
  ASSERT_TRUE(SaveDimacs(g, gr, co).ok());
  auto loaded = LoadDimacs(gr, co);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_nodes(), g.num_nodes());
  ASSERT_EQ(loaded->num_arcs(), g.num_arcs());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto a = g.OutArcs(v);
    auto b = loaded->OutArcs(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to);
      EXPECT_EQ(a[i].weight, b[i].weight);
    }
  }
}

TEST(DimacsTest, MissingFileFails) {
  auto res = LoadDimacs(TempPath("nope.gr"), TempPath("nope.co"));
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kIOError);
}

TEST(DimacsTest, ParsesHandWrittenFiles) {
  const std::string gr = TempPath("hand.gr"), co = TempPath("hand.co");
  {
    std::ofstream f(gr);
    f << "c comment line\n";
    f << "p sp 3 4\n";
    f << "a 1 2 10\n";
    f << "a 2 1 10\n";
    f << "a 2 3 5\n";
    f << "a 3 2 5\n";
  }
  {
    std::ofstream f(co);
    f << "p aux sp co 3\n";
    f << "v 1 0.0 0.0\n";
    f << "v 2 1.0 0.0\n";
    f << "v 3 2.0 0.0\n";
  }
  auto g = LoadDimacs(gr, co);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->num_nodes(), 3u);
  EXPECT_EQ(g->num_arcs(), 4u);
  EXPECT_EQ(g->OutArcs(0)[0].weight, 10u);
}

TEST(DimacsTest, RejectsArcCountMismatch) {
  const std::string gr = TempPath("bad.gr"), co = TempPath("bad.co");
  {
    std::ofstream f(gr);
    f << "p sp 2 2\n";
    f << "a 1 2 1\n";  // header claims 2 arcs, only 1 present
  }
  {
    std::ofstream f(co);
    f << "v 1 0 0\nv 2 1 1\n";
  }
  EXPECT_FALSE(LoadDimacs(gr, co).ok());
}

TEST(DimacsTest, RejectsMissingCoordinates) {
  const std::string gr = TempPath("mc.gr"), co = TempPath("mc.co");
  {
    std::ofstream f(gr);
    f << "p sp 2 2\na 1 2 1\na 2 1 1\n";
  }
  {
    std::ofstream f(co);
    f << "v 1 0 0\n";  // node 2 missing
  }
  EXPECT_FALSE(LoadDimacs(gr, co).ok());
}

TEST(DimacsTest, RejectsOutOfRangeNodeId) {
  const std::string gr = TempPath("oor.gr"), co = TempPath("oor.co");
  {
    std::ofstream f(gr);
    f << "p sp 2 1\na 1 9 1\n";
  }
  {
    std::ofstream f(co);
    f << "v 1 0 0\nv 2 1 1\n";
  }
  EXPECT_FALSE(LoadDimacs(gr, co).ok());
}

}  // namespace
}  // namespace airindex::graph
