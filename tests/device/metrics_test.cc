#include "device/metrics.h"

#include <gtest/gtest.h>

#include <vector>

namespace airindex::device {
namespace {

TEST(MetricsSummaryTest, AveragesOverQueries) {
  std::vector<QueryMetrics> ms(2);
  ms[0].tuning_packets = 100;
  ms[0].latency_packets = 200;
  ms[0].peak_memory_bytes = 1000;
  ms[0].cpu_ms = 2.0;
  ms[0].ok = true;
  ms[1].tuning_packets = 300;
  ms[1].latency_packets = 400;
  ms[1].peak_memory_bytes = 3000;
  ms[1].cpu_ms = 4.0;
  ms[1].ok = true;
  MetricsSummary s = MetricsSummary::Of(ms);
  EXPECT_DOUBLE_EQ(s.avg_tuning_packets, 200.0);
  EXPECT_DOUBLE_EQ(s.avg_latency_packets, 300.0);
  EXPECT_DOUBLE_EQ(s.avg_peak_memory_bytes, 2000.0);
  EXPECT_DOUBLE_EQ(s.avg_cpu_ms, 3.0);
  EXPECT_DOUBLE_EQ(s.max_peak_memory_bytes, 3000.0);
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.failures, 0u);
}

TEST(MetricsSummaryTest, CountsFailures) {
  std::vector<QueryMetrics> ms(3);
  ms[0].ok = true;
  ms[1].ok = false;
  ms[2].ok = false;
  MetricsSummary s = MetricsSummary::Of(ms);
  EXPECT_EQ(s.failures, 2u);
}

TEST(MetricsSummaryTest, PropagatesMemoryExceeded) {
  std::vector<QueryMetrics> ms(2);
  ms[0].ok = true;
  ms[1].ok = true;
  ms[1].memory_exceeded = true;
  EXPECT_TRUE(MetricsSummary::Of(ms).any_memory_exceeded);
}

TEST(MetricsSummaryTest, EmptyInput) {
  MetricsSummary s = MetricsSummary::Of({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.avg_tuning_packets, 0.0);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.ElapsedMs(), 0.0);
}

}  // namespace
}  // namespace airindex::device
