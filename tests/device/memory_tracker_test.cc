#include "device/memory_tracker.h"

#include <gtest/gtest.h>

#include "device/device_profile.h"

namespace airindex::device {
namespace {

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker mem;
  mem.Charge(100);
  mem.Charge(50);
  EXPECT_EQ(mem.current(), 150u);
  EXPECT_EQ(mem.peak(), 150u);
  mem.Release(120);
  EXPECT_EQ(mem.current(), 30u);
  EXPECT_EQ(mem.peak(), 150u);
  mem.Charge(10);
  EXPECT_EQ(mem.peak(), 150u);  // peak unchanged below previous high water
}

TEST(MemoryTrackerTest, ReleaseClampsAtZero) {
  MemoryTracker mem;
  mem.Charge(10);
  mem.Release(100);
  EXPECT_EQ(mem.current(), 0u);
}

TEST(MemoryTrackerTest, BudgetExceededIsSticky) {
  MemoryTracker mem(1000);
  mem.Charge(999);
  EXPECT_FALSE(mem.exceeded());
  mem.Charge(2);
  EXPECT_TRUE(mem.exceeded());
  mem.Release(1001);
  EXPECT_TRUE(mem.exceeded());  // sticky: the device already ran out
}

TEST(MemoryTrackerTest, DefaultBudgetIsUnlimited) {
  MemoryTracker mem;
  mem.Charge(SIZE_MAX / 2);
  EXPECT_FALSE(mem.exceeded());
}

TEST(MemoryTrackerTest, J2meHeapBudget) {
  MemoryTracker mem(DeviceProfile::J2mePhone().heap_bytes);
  mem.Charge(8u * 1024 * 1024);
  EXPECT_FALSE(mem.exceeded());
  mem.Charge(1);
  EXPECT_TRUE(mem.exceeded());
}

}  // namespace
}  // namespace airindex::device
