#include "device/energy.h"

#include <gtest/gtest.h>

namespace airindex::device {
namespace {

TEST(EnergyTest, PacketSecondsAtPaperBitrates) {
  // 128 bytes = 1024 bits.
  EXPECT_DOUBLE_EQ(PacketSeconds(kBitrateStatic3G), 1024.0 / 2e6);
  EXPECT_DOUBLE_EQ(PacketSeconds(kBitrateMoving3G), 1024.0 / 384000.0);
}

TEST(EnergyTest, CycleSecondsMatchTable1Arithmetic) {
  // Sanity-check against the paper's own Table 1: 14019 packets at 2 Mbps
  // are reported as ~6.8 s and at 384 Kbps as ~40 s (the paper's figures
  // include minor rounding).
  EXPECT_NEAR(CycleSeconds(14019, kBitrateStatic3G), 7.2, 0.5);
  EXPECT_NEAR(CycleSeconds(14019, kBitrateMoving3G), 37.4, 3.5);
}

TEST(EnergyTest, ReceivingDominatesSleeping) {
  EnergyModel model(DeviceProfile::J2mePhone(), kBitrateStatic3G);
  QueryMetrics active;
  active.tuning_packets = 1000;
  active.latency_packets = 1000;
  QueryMetrics sleepy;
  sleepy.tuning_packets = 10;
  sleepy.latency_packets = 1000;
  EXPECT_GT(model.QueryJoules(active), model.QueryJoules(sleepy) * 10);
}

TEST(EnergyTest, CpuContributionIsMinor) {
  // §3.1: CPU effect is outweighed by communication.
  EnergyModel model(DeviceProfile::J2mePhone(), kBitrateStatic3G);
  QueryMetrics m;
  m.tuning_packets = 1000;
  m.latency_packets = 1000;
  const double without_cpu = model.QueryJoules(m);
  m.cpu_ms = 100;  // generous client CPU time
  const double with_cpu = model.QueryJoules(m);
  EXPECT_LT(with_cpu - without_cpu, 0.05 * without_cpu);
}

TEST(EnergyTest, ZeroQueryCostsNothing) {
  EnergyModel model(DeviceProfile::J2mePhone(), kBitrateStatic3G);
  QueryMetrics m;
  EXPECT_DOUBLE_EQ(model.QueryJoules(m), 0.0);
}

}  // namespace
}  // namespace airindex::device
