#include "common/status.h"

#include <gtest/gtest.h>

namespace airindex {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad thing");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DataLoss("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::DataLoss("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDataLoss), "DataLoss");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status Fails() { return Status::IOError("nope"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  AIRINDEX_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace airindex
