#include "common/byte_io.h"

#include <gtest/gtest.h>

namespace airindex {
namespace {

TEST(ByteIoTest, U16RoundTrip) {
  std::vector<uint8_t> buf;
  PutU16(&buf, 0xBEEF);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(GetU16(buf.data()), 0xBEEF);
}

TEST(ByteIoTest, U32RoundTrip) {
  std::vector<uint8_t> buf;
  PutU32(&buf, 0xDEADBEEFu);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(GetU32(buf.data()), 0xDEADBEEFu);
}

TEST(ByteIoTest, U64RoundTrip) {
  std::vector<uint8_t> buf;
  PutU64(&buf, 0x0123456789ABCDEFull);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(GetU64(buf.data()), 0x0123456789ABCDEFull);
}

TEST(ByteIoTest, LittleEndianLayout) {
  std::vector<uint8_t> buf;
  PutU32(&buf, 0x04030201u);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[1], 2);
  EXPECT_EQ(buf[2], 3);
  EXPECT_EQ(buf[3], 4);
}

TEST(ByteIoTest, ReaderSequencesThroughMixedFields) {
  std::vector<uint8_t> buf;
  PutU16(&buf, 7);
  PutU32(&buf, 1000000);
  PutU64(&buf, 1ull << 40);
  ByteReader reader(buf);
  EXPECT_EQ(reader.remaining(), 14u);
  EXPECT_EQ(reader.ReadU16(), 7);
  EXPECT_EQ(reader.ReadU32(), 1000000u);
  EXPECT_EQ(reader.ReadU64(), 1ull << 40);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ByteIoTest, ReaderSkip) {
  std::vector<uint8_t> buf;
  PutU32(&buf, 1);
  PutU32(&buf, 2);
  ByteReader reader(buf);
  reader.Skip(4);
  EXPECT_EQ(reader.ReadU32(), 2u);
}

}  // namespace
}  // namespace airindex
