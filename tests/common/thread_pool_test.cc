#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace airindex {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, EmptyRangeIsNoOp) {
  std::atomic<int> calls{0};
  ParallelFor(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(
      5, [&](size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  // With one thread the order is sequential.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, SumMatchesSequential) {
  const size_t n = 1000;
  std::atomic<long long> sum{0};
  ParallelFor(n, [&](size_t i) { sum.fetch_add(static_cast<long long>(i)); });
  EXPECT_EQ(sum.load(), static_cast<long long>(n * (n - 1) / 2));
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(3, [&](size_t i) { hits[i].fetch_add(1); }, 16);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace airindex
