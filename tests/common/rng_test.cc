#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace airindex {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.NextBernoulli(0.25)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(RngTest, ProducesManyDistinctValues) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Next());
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace airindex
