#include "common/result.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace airindex {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  AIRINDEX_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  auto fail_outer = Quarter(7);
  EXPECT_FALSE(fail_outer.ok());

  auto fail_inner = Quarter(6);  // 6/2 = 3, odd
  EXPECT_FALSE(fail_inner.ok());
}

}  // namespace
}  // namespace airindex
