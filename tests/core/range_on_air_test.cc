#include "core/range_on_air.h"

#include <gtest/gtest.h>

#include <set>

#include "algo/dijkstra.h"
#include "broadcast/channel.h"
#include "testing/test_graphs.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

/// Ground truth: radius-bounded Dijkstra on the full graph.
std::set<std::pair<graph::NodeId, graph::Dist>> TrueRange(
    const graph::Graph& g, graph::NodeId s, graph::Dist radius) {
  algo::SearchTree tree = algo::DijkstraAll(g, s);
  std::set<std::pair<graph::NodeId, graph::Dist>> out;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (tree.dist[v] <= radius) out.emplace(v, tree.dist[v]);
  }
  return out;
}

class RangeOnAirTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeOnAirTest, MatchesGroundTruthAcrossRadii) {
  graph::Graph g = SmallNetwork(400, 640, GetParam());
  auto eb = EbSystem::Build(g, 8).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.0);

  algo::SearchTree probe = algo::DijkstraAll(g, 0);
  graph::Dist max_d = 0;
  for (graph::Dist d : probe.dist) max_d = std::max(max_d, d);

  for (double frac : {0.05, 0.2, 0.5}) {
    RangeQuery q;
    q.source = static_cast<graph::NodeId>(GetParam() % g.num_nodes());
    q.source_coord = g.Coord(q.source);
    q.radius = static_cast<graph::Dist>(static_cast<double>(max_d) * frac);
    q.tune_phase = 0.3;
    RangeResult res = RunRangeQuery(*eb, channel, q);
    ASSERT_TRUE(res.metrics.ok);
    std::set<std::pair<graph::NodeId, graph::Dist>> got(res.nodes.begin(),
                                                        res.nodes.end());
    EXPECT_EQ(got, TrueRange(g, q.source, q.radius)) << "frac " << frac;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeOnAirTest,
                         ::testing::Values(301, 302, 303));

TEST(RangeOnAirTest, ZeroRadiusReturnsOnlySource) {
  graph::Graph g = SmallNetwork(200, 320, 310);
  auto eb = EbSystem::Build(g, 8).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.0);
  RangeQuery q;
  q.source = 5;
  q.source_coord = g.Coord(5);
  q.radius = 0;
  RangeResult res = RunRangeQuery(*eb, channel, q);
  ASSERT_EQ(res.nodes.size(), 1u);
  EXPECT_EQ(res.nodes[0].first, 5u);
  EXPECT_EQ(res.nodes[0].second, 0u);
}

TEST(RangeOnAirTest, SmallRadiusReceivesFewRegions) {
  graph::Graph g = SmallNetwork(600, 960, 311);
  auto eb = EbSystem::Build(g, 16).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.0);
  RangeQuery q;
  q.source = 10;
  q.source_coord = g.Coord(10);
  q.radius = 1;  // essentially just the source
  RangeResult res = RunRangeQuery(*eb, channel, q);
  EXPECT_LT(res.metrics.regions_received, 16u);
}

TEST(RangeOnAirTest, ExactUnderPacketLoss) {
  graph::Graph g = SmallNetwork(300, 480, 312);
  auto eb = EbSystem::Build(g, 8).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.05, 313);
  ClientOptions opts;
  opts.max_repair_cycles = 32;
  RangeQuery q;
  q.source = 42;
  q.source_coord = g.Coord(42);
  algo::SearchTree probe = algo::DijkstraAll(g, 42);
  graph::Dist max_d = 0;
  for (graph::Dist d : probe.dist) max_d = std::max(max_d, d);
  q.radius = max_d / 4;
  RangeResult res = RunRangeQuery(*eb, channel, q, opts);
  ASSERT_TRUE(res.metrics.ok);
  std::set<std::pair<graph::NodeId, graph::Dist>> got(res.nodes.begin(),
                                                      res.nodes.end());
  EXPECT_EQ(got, TrueRange(g, q.source, q.radius));
}

TEST(RangeOnAirTest, ResultsSortedByDistance) {
  graph::Graph g = SmallNetwork(300, 480, 314);
  auto eb = EbSystem::Build(g, 8).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.0);
  RangeQuery q;
  q.source = 1;
  q.source_coord = g.Coord(1);
  q.radius = 50000;
  RangeResult res = RunRangeQuery(*eb, channel, q);
  for (size_t i = 1; i < res.nodes.size(); ++i) {
    EXPECT_LE(res.nodes[i - 1].second, res.nodes[i].second);
  }
}

}  // namespace
}  // namespace airindex::core
