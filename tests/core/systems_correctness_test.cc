#include <gtest/gtest.h>

#include <memory>

#include "algo/dijkstra.h"
#include "broadcast/channel.h"
#include "core/eb.h"
#include "core/nr.h"
#include "core/systems.h"
#include "partition/kd_tree.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

/// The headline invariant of the whole system: every broadcast method —
/// the two contributions and all five baselines — computes the exact
/// shortest-path distance through the simulated channel.
class SystemsCorrectnessTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    g_ = SmallNetwork(400, 640, GetParam());
    SystemParams params;
    params.arcflag_regions = 8;
    params.eb_regions = 8;
    params.nr_regions = 8;
    params.landmarks = 3;
    params.hiti_regions = 8;
    params.include_spq = true;
    params.include_hiti = true;
    systems_ = BuildSystems(g_, params).value();
    workload_ = workload::GenerateWorkload(g_, 12, GetParam() + 55).value();
  }

  graph::Graph g_;
  std::vector<std::unique_ptr<AirSystem>> systems_;
  workload::Workload workload_;
};

TEST_P(SystemsCorrectnessTest, AllMethodsExactOnLosslessChannel) {
  for (const auto& sys : systems_) {
    broadcast::BroadcastChannel channel(&sys->cycle(), 0.0);
    for (const auto& q : workload_.queries) {
      device::QueryMetrics m = sys->RunQuery(channel, MakeAirQuery(g_, q));
      EXPECT_TRUE(m.ok) << sys->name() << " " << q.source << "->" << q.target;
      EXPECT_EQ(m.distance, q.true_dist)
          << sys->name() << " " << q.source << "->" << q.target;
    }
  }
}

/// The compact cycle encoding must be invisible to correctness: every
/// method built with CycleEncoding::kCompact returns the exact distance
/// for every query, decoded through the real client paths.
TEST_P(SystemsCorrectnessTest, AllMethodsExactWithCompactEncoding) {
  SystemParams params;
  params.arcflag_regions = 8;
  params.eb_regions = 8;
  params.nr_regions = 8;
  params.landmarks = 3;
  params.hiti_regions = 8;
  params.include_spq = true;
  params.include_hiti = true;
  params.build.encoding = broadcast::CycleEncoding::kCompact;
  auto compact_systems = BuildSystems(g_, params).value();
  for (const auto& sys : compact_systems) {
    broadcast::BroadcastChannel channel(&sys->cycle(), 0.0);
    for (const auto& q : workload_.queries) {
      device::QueryMetrics m = sys->RunQuery(channel, MakeAirQuery(g_, q));
      EXPECT_TRUE(m.ok) << sys->name() << " " << q.source << "->" << q.target;
      EXPECT_EQ(m.distance, q.true_dist)
          << sys->name() << " " << q.source << "->" << q.target;
    }
  }
}

TEST_P(SystemsCorrectnessTest, EbAndNrExactWithMemoryBoundProcessing) {
  ClientOptions opts;
  opts.memory_bound = true;
  for (const auto& sys : systems_) {
    if (sys->name() != "EB" && sys->name() != "NR") continue;
    broadcast::BroadcastChannel channel(&sys->cycle(), 0.0);
    for (const auto& q : workload_.queries) {
      device::QueryMetrics m =
          sys->RunQuery(channel, MakeAirQuery(g_, q), opts);
      EXPECT_TRUE(m.ok) << sys->name();
      EXPECT_EQ(m.distance, q.true_dist)
          << sys->name() << " (memory-bound) " << q.source << "->"
          << q.target;
    }
  }
}

TEST_P(SystemsCorrectnessTest, EbExactWithoutCrossBorderOptimization) {
  ClientOptions opts;
  opts.cross_border_opt = false;
  for (const auto& sys : systems_) {
    if (sys->name() != "EB") continue;
    broadcast::BroadcastChannel channel(&sys->cycle(), 0.0);
    for (const auto& q : workload_.queries) {
      device::QueryMetrics m =
          sys->RunQuery(channel, MakeAirQuery(g_, q), opts);
      EXPECT_EQ(m.distance, q.true_dist);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SystemsCorrectnessTest,
                         ::testing::Values(101, 102, 103));

/// Same-region queries: the paper's methods must stay exact when source and
/// destination fall into one region (our diagonal extension; DESIGN.md).
TEST(SystemsEdgeCaseTest, SameRegionQueriesAreExact) {
  graph::Graph g = SmallNetwork(400, 640, 777);
  auto eb = EbSystem::Build(g, 8).value();
  auto nr = NrSystem::Build(g, 8).value();
  auto kd = partition::KdTreePartitioner::Build(g, 8).value();
  auto part = kd.Partition(g);

  int tested = 0;
  for (graph::RegionId r = 0; r < 8; ++r) {
    const auto& nodes = part.region_nodes[r];
    if (nodes.size() < 2) continue;
    workload::Query q;
    q.source = nodes.front();
    q.target = nodes.back();
    q.true_dist = algo::DijkstraPath(g, q.source, q.target).dist;
    q.tune_phase = 0.37;
    for (AirSystem* sys : {static_cast<AirSystem*>(eb.get()),
                           static_cast<AirSystem*>(nr.get())}) {
      broadcast::BroadcastChannel channel(&sys->cycle(), 0.0);
      device::QueryMetrics m = sys->RunQuery(channel, MakeAirQuery(g, q));
      EXPECT_TRUE(m.ok) << sys->name() << " region " << r;
      EXPECT_EQ(m.distance, q.true_dist) << sys->name() << " region " << r;
    }
    ++tested;
  }
  EXPECT_GT(tested, 0);
}

TEST(SystemsEdgeCaseTest, AdjacentNodesQuery) {
  graph::Graph g = SmallNetwork(300, 480, 778);
  auto eb = EbSystem::Build(g, 8).value();
  auto nr = NrSystem::Build(g, 8).value();
  workload::Query q;
  q.source = 0;
  q.target = g.OutArcs(0)[0].to;
  q.true_dist = algo::DijkstraPath(g, q.source, q.target).dist;
  q.tune_phase = 0.9;
  for (AirSystem* sys : {static_cast<AirSystem*>(eb.get()),
                         static_cast<AirSystem*>(nr.get())}) {
    broadcast::BroadcastChannel channel(&sys->cycle(), 0.0);
    device::QueryMetrics m = sys->RunQuery(channel, MakeAirQuery(g, q));
    EXPECT_EQ(m.distance, q.true_dist) << sys->name();
  }
}

}  // namespace
}  // namespace airindex::core
