#include "core/region_data.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

TEST(RegionDataTest, RoundTripWithBorderList) {
  graph::Graph g = SmallNetwork(100, 160, 1);
  std::vector<graph::NodeId> border = {3, 7, 15};
  std::vector<graph::NodeId> nodes = {3, 5, 7, 9, 15};
  auto payload = EncodeRegionData(g, border, nodes);
  auto decoded = DecodeRegionData(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->border, border);
  ASSERT_EQ(decoded->records.size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(decoded->records[i].id, nodes[i]);
    EXPECT_EQ(decoded->records[i].arcs.size(), g.OutDegree(nodes[i]));
  }
}

TEST(RegionDataTest, EmptyBorderListIsLocalSegment) {
  graph::Graph g = SmallNetwork(50, 80, 2);
  auto payload = EncodeRegionData(g, {}, {1, 2});
  auto decoded = DecodeRegionData(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->border.empty());
  EXPECT_EQ(decoded->records.size(), 2u);
}

TEST(RegionDataTest, EmptyRegion) {
  graph::Graph g = SmallNetwork(50, 80, 3);
  auto payload = EncodeRegionData(g, {}, {});
  auto decoded = DecodeRegionData(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->border.empty());
  EXPECT_TRUE(decoded->records.empty());
}

TEST(RegionDataTest, TruncationFails) {
  graph::Graph g = SmallNetwork(50, 80, 4);
  auto payload = EncodeRegionData(g, {1}, {1, 2, 3});
  payload.resize(payload.size() - 3);
  EXPECT_FALSE(DecodeRegionData(payload).ok());
  payload.resize(1);
  EXPECT_FALSE(DecodeRegionData(payload).ok());
}

}  // namespace
}  // namespace airindex::core
