#include <gtest/gtest.h>

#include "algo/dijkstra.h"
#include "broadcast/channel.h"
#include "core/border_precompute.h"
#include "core/eb.h"
#include "core/nr.h"
#include "partition/kd_tree.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

/// EB's pruning rule applied client-side must match a direct evaluation of
/// the §4.2 inequality over the server's pre-computation.
TEST(EbClientTest, ReceivedRegionCountMatchesPruningRule) {
  graph::Graph g = SmallNetwork(500, 800, 701);
  auto kd = partition::KdTreePartitioner::Build(g, 8).value();
  auto pre = ComputeBorderPrecompute(g, kd.Partition(g)).value();
  auto eb = EbSystem::BuildFromPrecompute(g, pre).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.0);

  auto w = workload::GenerateWorkload(g, 12, 702).value();
  for (const auto& q : w.queries) {
    const graph::RegionId rs = pre.part.node_region[q.source];
    const graph::RegionId rt = pre.part.node_region[q.target];
    const graph::Dist ub = pre.MaxDist(rs, rt);
    uint32_t expected = 0;
    for (graph::RegionId r = 0; r < 8; ++r) {
      if (r == rs || r == rt) {
        ++expected;
        continue;
      }
      const graph::Dist a = pre.MinDist(rs, r);
      const graph::Dist b = pre.MinDist(r, rt);
      if (a != graph::kInfDist && b != graph::kInfDist && a + b <= ub) {
        ++expected;
      }
    }
    device::QueryMetrics m = eb->RunQuery(channel, MakeAirQuery(g, q));
    EXPECT_EQ(m.regions_received, expected)
        << q.source << "->" << q.target;
  }
}

/// The degenerate case §5 motivates NR with: source and destination in the
/// farthest-apart regions can force EB to receive (almost) everything,
/// while NR's needed set stays a subset.
TEST(EbNrClientTest, NrNeverReceivesMoreRegionsThanEb) {
  graph::Graph g = SmallNetwork(600, 960, 703);
  auto kd = partition::KdTreePartitioner::Build(g, 16).value();
  auto pre = ComputeBorderPrecompute(g, kd.Partition(g)).value();
  auto eb = EbSystem::BuildFromPrecompute(g, pre).value();
  auto nr = NrSystem::BuildFromPrecompute(g, pre).value();
  broadcast::BroadcastChannel eb_ch(&eb->cycle(), 0.0);
  broadcast::BroadcastChannel nr_ch(&nr->cycle(), 0.0);

  auto w = workload::GenerateWorkload(g, 25, 704).value();
  for (const auto& q : w.queries) {
    auto m_eb = eb->RunQuery(eb_ch, MakeAirQuery(g, q));
    auto m_nr = nr->RunQuery(nr_ch, MakeAirQuery(g, q));
    EXPECT_LE(m_nr.regions_received, m_eb.regions_received)
        << q.source << "->" << q.target;
  }
}

/// NR's needed set (the regions its chain actually receives, lossless)
/// equals the pre-computation's NeededRegions for the query's region pair.
TEST(NrClientTest, ChainVisitsExactlyTheNeededSet) {
  graph::Graph g = SmallNetwork(500, 800, 705);
  auto kd = partition::KdTreePartitioner::Build(g, 8).value();
  auto pre = ComputeBorderPrecompute(g, kd.Partition(g)).value();
  auto nr = NrSystem::BuildFromPrecompute(g, pre).value();
  broadcast::BroadcastChannel channel(&nr->cycle(), 0.0);

  auto w = workload::GenerateWorkload(g, 15, 706).value();
  for (const auto& q : w.queries) {
    const graph::RegionId rs = pre.part.node_region[q.source];
    const graph::RegionId rt = pre.part.node_region[q.target];
    const size_t needed = pre.NeededRegions(rs, rt).size();
    device::QueryMetrics m = nr->RunQuery(channel, MakeAirQuery(g, q));
    EXPECT_EQ(m.regions_received, needed) << q.source << "->" << q.target;
  }
}

/// Tuning in at every phase of the cycle (including exactly at index
/// starts) must work and stay exact — regression test for the
/// tuned-in-at-index-start full-cycle sleep bug.
TEST(EbNrClientTest, EveryTuneInPhaseIsExact) {
  graph::Graph g = SmallNetwork(300, 480, 707);
  auto eb = EbSystem::Build(g, 8).value();
  auto nr = NrSystem::Build(g, 8).value();
  workload::Query q;
  q.source = 17;
  q.target = 250;
  q.true_dist = algo::DijkstraPath(g, 17, 250).dist;

  for (AirSystem* sys : {static_cast<AirSystem*>(eb.get()),
                         static_cast<AirSystem*>(nr.get())}) {
    broadcast::BroadcastChannel channel(&sys->cycle(), 0.0);
    const uint32_t total = sys->cycle().total_packets();
    for (uint32_t pos = 0; pos < total; pos += 7) {
      q.tune_phase = static_cast<double>(pos) / total;
      device::QueryMetrics m = sys->RunQuery(channel, MakeAirQuery(g, q));
      ASSERT_EQ(m.distance, q.true_dist)
          << sys->name() << " phase " << q.tune_phase;
      // Latency must never exceed ~2 cycles at zero loss.
      ASSERT_LE(m.latency_packets, 2ull * total + 4)
          << sys->name() << " phase " << q.tune_phase;
    }
  }
}

/// Same pre-computation => both systems report the same Table 3 time.
TEST(EbNrClientTest, SharedPrecomputeReportsSameSeconds) {
  graph::Graph g = SmallNetwork(200, 320, 708);
  auto kd = partition::KdTreePartitioner::Build(g, 4).value();
  auto pre = ComputeBorderPrecompute(g, kd.Partition(g)).value();
  auto eb = EbSystem::BuildFromPrecompute(g, pre).value();
  auto nr = NrSystem::BuildFromPrecompute(g, pre).value();
  EXPECT_DOUBLE_EQ(eb->precompute_seconds(), nr->precompute_seconds());
}

}  // namespace
}  // namespace airindex::core
