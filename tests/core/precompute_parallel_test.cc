#include <gtest/gtest.h>

#include <memory>

#include "core/border_precompute.h"
#include "core/systems.h"
#include "graph/generator.h"
#include "graph/graph.h"
#include "partition/kd_tree.h"

namespace airindex::core {
namespace {

graph::Graph MakeGraph(uint32_t nodes, uint64_t seed) {
  graph::GenSpec spec;
  spec.num_nodes = nodes;
  spec.seed = seed;
  return graph::GenerateRoadNetwork(spec).value();
}

TEST(PrecomputeParallelTest, ByteIdenticalToSerial) {
  const graph::Graph g = MakeGraph(2000, 21);
  auto kd = partition::KdTreePartitioner::Build(g, 8).value();
  const partition::Partitioning part = kd.Partition(g);

  auto serial = ComputeBorderPrecompute(g, part, /*num_threads=*/1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (unsigned threads : {2u, 3u, 8u}) {
    auto par = ComputeBorderPrecompute(g, part, threads);
    ASSERT_TRUE(par.ok());
    EXPECT_EQ(serial->num_regions, par->num_regions);
    // Every derived array must match bit-for-bit: the work-stealing merge
    // is commutative, so scheduling cannot leak into the result.
    EXPECT_EQ(serial->min_rr, par->min_rr) << threads << " threads";
    EXPECT_EQ(serial->max_rr, par->max_rr) << threads << " threads";
    EXPECT_EQ(serial->traversed, par->traversed) << threads << " threads";
    EXPECT_EQ(serial->cross_border, par->cross_border)
        << threads << " threads";
  }
}

TEST(PrecomputeParallelTest, NeededRegionsVariantsAgree) {
  const graph::Graph g = MakeGraph(1500, 4);
  auto kd = partition::KdTreePartitioner::Build(g, 8).value();
  auto pre = ComputeBorderPrecompute(g, kd.Partition(g)).value();

  std::vector<graph::RegionId> into;
  std::vector<uint64_t> mask(pre.words_per_pair());
  for (graph::RegionId i = 0; i < pre.num_regions; ++i) {
    for (graph::RegionId j = 0; j < pre.num_regions; ++j) {
      const std::vector<graph::RegionId> value = pre.NeededRegions(i, j);
      pre.NeededRegionsInto(i, j, &into);
      EXPECT_EQ(value, into);
      pre.NeededRegionsMask(i, j, mask.data());
      std::vector<graph::RegionId> from_mask;
      for (graph::RegionId k = 0; k < pre.num_regions; ++k) {
        if ((mask[k / 64] >> (k % 64)) & 1) from_mask.push_back(k);
      }
      EXPECT_EQ(value, from_mask);
    }
  }
}

/// The broadcast cycle of every method must be byte-identical regardless of
/// how many threads built the pre-computation (the cycle is the published
/// artifact — reproduction numbers depend on it).
TEST(PrecomputeParallelTest, AllSystemsCyclesUnaffectedByThreads) {
  const graph::Graph g = MakeGraph(500, 33);
  SystemParams base;
  base.nr_regions = 8;
  base.eb_regions = 8;
  base.arcflag_regions = 8;
  base.hiti_regions = 8;
  base.landmarks = 2;

  SystemParams threaded = base;
  threaded.build.precompute_threads = 4;

  for (const char* method : {"DJ", "NR", "EB", "LD", "AF", "SPQ", "HiTi"}) {
    auto a = BuildSystem(g, method, base);
    ASSERT_TRUE(a.ok()) << method << ": " << a.status().ToString();
    auto b = BuildSystem(g, method, threaded);
    ASSERT_TRUE(b.ok()) << method;
    const broadcast::BroadcastCycle& ca = (*a)->cycle();
    const broadcast::BroadcastCycle& cb = (*b)->cycle();
    ASSERT_EQ(ca.num_segments(), cb.num_segments()) << method;
    EXPECT_EQ(ca.total_packets(), cb.total_packets()) << method;
    for (size_t i = 0; i < ca.num_segments(); ++i) {
      const broadcast::Segment& sa = ca.segment(i);
      const broadcast::Segment& sb = cb.segment(i);
      EXPECT_EQ(sa.type, sb.type) << method << " segment " << i;
      EXPECT_EQ(sa.id, sb.id) << method << " segment " << i;
      EXPECT_EQ(sa.payload, sb.payload) << method << " segment " << i;
    }
  }
}

}  // namespace
}  // namespace airindex::core
