#include <gtest/gtest.h>

#include "broadcast/channel.h"
#include "core/eb.h"
#include "core/nr.h"
#include "core/systems.h"
#include "device/metrics.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

struct Fixture {
  graph::Graph g;
  std::vector<std::unique_ptr<AirSystem>> systems;
  workload::Workload w;
};

Fixture MakeFixture(uint32_t nodes = 800, uint32_t edges = 1280,
                    uint64_t seed = 900, size_t queries = 20) {
  Fixture f;
  f.g = SmallNetwork(nodes, edges, seed);
  SystemParams params;
  params.arcflag_regions = 16;  // the paper's tuned value
  params.eb_regions = 16;
  params.nr_regions = 16;
  params.landmarks = 4;
  f.systems = BuildSystems(f.g, params).value();
  f.w = workload::GenerateWorkload(f.g, queries, seed + 1).value();
  return f;
}

device::MetricsSummary RunAll(const Fixture& f, const AirSystem& sys,
                              ClientOptions opts = {}) {
  broadcast::BroadcastChannel channel(&sys.cycle(), 0.0);
  std::vector<device::QueryMetrics> ms;
  for (const auto& q : f.w.queries) {
    ms.push_back(sys.RunQuery(channel, MakeAirQuery(f.g, q), opts));
  }
  return device::MetricsSummary::Of(ms);
}

const AirSystem& Find(const Fixture& f, std::string_view name) {
  for (const auto& s : f.systems) {
    if (s->name() == name) return *s;
  }
  ADD_FAILURE() << "no system " << name;
  return *f.systems[0];
}

TEST(SystemsMetricsTest, SelectiveTuningBeatsFullCycleListening) {
  Fixture f = MakeFixture();
  const auto dj = RunAll(f, Find(f, "DJ"));
  const auto eb = RunAll(f, Find(f, "EB"));
  const auto nr = RunAll(f, Find(f, "NR"));
  // The paper's headline (Fig. 10a): NR and EB tune to far fewer packets
  // than any full-cycle method.
  EXPECT_LT(eb.avg_tuning_packets, dj.avg_tuning_packets);
  EXPECT_LT(nr.avg_tuning_packets, dj.avg_tuning_packets);
}

TEST(SystemsMetricsTest, NrTunesLessThanEb) {
  Fixture f = MakeFixture(800, 1280, 901);
  const auto eb = RunAll(f, Find(f, "EB"));
  const auto nr = RunAll(f, Find(f, "NR"));
  // §5: NR listens to a subset of the regions EB needs.
  EXPECT_LT(nr.avg_tuning_packets, eb.avg_tuning_packets);
}

TEST(SystemsMetricsTest, MemoryOrderingMatchesPaper) {
  Fixture f = MakeFixture(800, 1280, 902);
  const auto dj = RunAll(f, Find(f, "DJ"));
  const auto eb = RunAll(f, Find(f, "EB"));
  const auto nr = RunAll(f, Find(f, "NR"));
  const auto ld = RunAll(f, Find(f, "LD"));
  const auto af = RunAll(f, Find(f, "AF"));
  // Fig. 10b: NR and EB hold a fraction of the network; DJ holds all of
  // it; LD and AF hold the network plus pre-computed payloads.
  EXPECT_LT(nr.avg_peak_memory_bytes, dj.avg_peak_memory_bytes);
  EXPECT_LT(eb.avg_peak_memory_bytes, dj.avg_peak_memory_bytes);
  EXPECT_GT(ld.avg_peak_memory_bytes, dj.avg_peak_memory_bytes);
  EXPECT_GT(af.avg_peak_memory_bytes, dj.avg_peak_memory_bytes);
}

TEST(SystemsMetricsTest, CycleLengthOrderingMatchesTable1) {
  Fixture f = MakeFixture(600, 960, 903, 4);
  const uint32_t dj = Find(f, "DJ").cycle().total_packets();
  const uint32_t nr = Find(f, "NR").cycle().total_packets();
  const uint32_t eb = Find(f, "EB").cycle().total_packets();
  const uint32_t ld = Find(f, "LD").cycle().total_packets();
  const uint32_t af = Find(f, "AF").cycle().total_packets();
  // Table 1: DJ < NR, EB << LD < AF.
  EXPECT_LT(dj, nr);
  EXPECT_LT(dj, eb);
  EXPECT_LT(nr, ld);
  EXPECT_LT(eb, ld);
  EXPECT_LT(ld, af);
}

TEST(SystemsMetricsTest, FullCycleMethodsLatencyAboutOneCycle) {
  Fixture f = MakeFixture(500, 800, 904, 8);
  for (std::string_view name : {"DJ", "LD", "AF"}) {
    const AirSystem& sys = Find(f, name);
    const auto summary = RunAll(f, sys);
    // Lossless: exactly one cycle of listening.
    EXPECT_NEAR(summary.avg_latency_packets, sys.cycle().total_packets(),
                1.0)
        << name;
  }
}

TEST(SystemsMetricsTest, EbNrLatencyBounded) {
  Fixture f = MakeFixture(500, 800, 905, 10);
  for (std::string_view name : {"EB", "NR"}) {
    const AirSystem& sys = Find(f, name);
    broadcast::BroadcastChannel channel(&sys.cycle(), 0.0);
    for (const auto& q : f.w.queries) {
      device::QueryMetrics m = sys.RunQuery(channel, MakeAirQuery(f.g, q));
      // §4.2/§5.2 state latency "does not exceed one broadcast cycle".
      // That is approximate: the exact worst case adds the wait for the
      // first index and the trailing index read, so a needed region just
      // behind the tune-in point costs up to ~2 cycles. Assert the hard
      // 2-cycle bound here; the "about one cycle on average, below DJ" half
      // of the claim is NrLatencyCompetitiveWithDijkstra.
      EXPECT_LE(m.latency_packets,
                2 * static_cast<uint64_t>(sys.cycle().total_packets()) + 4)
          << name;
    }
  }
}

TEST(SystemsMetricsTest, NrLatencyBelowItsOwnCycle) {
  Fixture f = MakeFixture(800, 1280, 910);
  const AirSystem& nr = Find(f, "NR");
  const auto summary = RunAll(f, nr);
  // The mechanism behind Fig. 10c's "NR beats even DJ in latency": NR's
  // listening usually does not span its whole cycle, so its average
  // latency sits below the cycle length (full-cycle methods sit exactly at
  // theirs). The absolute NR < DJ crossover additionally needs NR's index
  // overhead to be a small fraction of the cycle, which holds at paper
  // scale (+1.7%) but not on a miniature 800-node fixture; the fig10 bench
  // demonstrates it at larger scales.
  EXPECT_LT(summary.avg_latency_packets, nr.cycle().total_packets() * 1.02);
}

TEST(SystemsMetricsTest, MemoryBoundProcessingReducesPeakMemory) {
  Fixture f = MakeFixture(800, 1280, 906);
  for (std::string_view name : {"EB", "NR"}) {
    const AirSystem& sys = Find(f, name);
    ClientOptions plain;
    ClientOptions bound;
    bound.memory_bound = true;
    const auto with = RunAll(f, sys, bound);
    const auto without = RunAll(f, sys, plain);
    // Fig. 13a: §6.1 processing lowers the peak (~35% in the paper).
    EXPECT_LT(with.avg_peak_memory_bytes, without.avg_peak_memory_bytes)
        << name;
  }
}

TEST(SystemsMetricsTest, CrossBorderOptimizationReducesTuning) {
  Fixture f = MakeFixture(800, 1280, 907);
  const AirSystem& eb = Find(f, "EB");
  ClientOptions with_opt;   // default: cross_border_opt = true
  ClientOptions no_opt;
  no_opt.cross_border_opt = false;
  const auto with = RunAll(f, eb, with_opt);
  const auto without = RunAll(f, eb, no_opt);
  // §4.1: the cross-border/local split trims tuning time (~20% in the
  // paper).
  EXPECT_LT(with.avg_tuning_packets, without.avg_tuning_packets);
}

TEST(SystemsMetricsTest, EbInterleavingUsesMultipleCopies) {
  graph::Graph g = SmallNetwork(800, 1280, 908);
  auto eb = EbSystem::Build(g, 16).value();
  EXPECT_GT(eb->interleaving_m(), 1u);
  EXPECT_EQ(eb->index().copy_starts.size(), eb->interleaving_m());
}

TEST(SystemsMetricsTest, TuneInPositionClampsInclusivePhase) {
  Fixture f = MakeFixture(400, 640, 910, 1);
  const AirSystem& sys = *f.systems.front();
  const auto total = sys.cycle().total_packets();
  // phase == 1.0 used to index one past the cycle end; it must clamp to
  // the last packet, and every query built from it must still succeed.
  EXPECT_EQ(TuneInPosition(sys.cycle(), 1.0), total - 1);
  EXPECT_EQ(TuneInPosition(sys.cycle(), 0.0), 0u);
  EXPECT_LT(TuneInPosition(sys.cycle(), 0.999999999), total);

  broadcast::BroadcastChannel channel(&sys.cycle(), 0.0);
  workload::Query q = f.w.queries.front();
  q.tune_phase = 1.0;
  device::QueryMetrics m = sys.RunQuery(channel, MakeAirQuery(f.g, q));
  EXPECT_TRUE(m.ok);
  EXPECT_EQ(m.distance, q.true_dist);
}

TEST(SystemsMetricsTest, RegionsReceivedReported) {
  Fixture f = MakeFixture(500, 800, 909, 6);
  for (std::string_view name : {"EB", "NR"}) {
    const AirSystem& sys = Find(f, name);
    broadcast::BroadcastChannel channel(&sys.cycle(), 0.0);
    for (const auto& q : f.w.queries) {
      device::QueryMetrics m = sys.RunQuery(channel, MakeAirQuery(f.g, q));
      EXPECT_GE(m.regions_received, 1u) << name;
      EXPECT_LE(m.regions_received, 16u) << name;
    }
  }
}

}  // namespace
}  // namespace airindex::core
