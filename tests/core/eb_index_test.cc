#include "core/eb_index.h"

#include <gtest/gtest.h>

#include <set>

namespace airindex::core {
namespace {

EbIndex MakeIndex(uint32_t regions) {
  EbIndex idx;
  idx.num_regions = regions;
  idx.num_nodes = 1000;
  idx.splits.resize(regions - 1);
  for (uint32_t i = 0; i + 1 < regions; ++i) {
    idx.splits[i] = 100.0 * i + 0.5;
  }
  idx.min_rr.resize(static_cast<size_t>(regions) * regions);
  idx.max_rr.resize(static_cast<size_t>(regions) * regions);
  for (uint32_t i = 0; i < regions; ++i) {
    for (uint32_t j = 0; j < regions; ++j) {
      idx.min_rr[i * regions + j] = i * 100 + j;
      idx.max_rr[i * regions + j] = i * 100 + j + 50;
    }
  }
  idx.dir.resize(regions);
  for (uint32_t r = 0; r < regions; ++r) {
    idx.dir[r] = {r * 10, 3, r * 10 + 3, 7};
  }
  idx.copy_starts = {0, 500};
  return idx;
}

TEST(EbIndexTest, EncodeDecodeRoundTrip) {
  EbIndex idx = MakeIndex(8);
  auto payload = idx.Encode();
  EXPECT_EQ(payload.size(), EbIndex::EncodedBytes(8, 2));
  auto decoded = EbIndex::Decode(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_regions, 8u);
  EXPECT_EQ(decoded->num_nodes, 1000u);
  EXPECT_EQ(decoded->splits, idx.splits);
  EXPECT_EQ(decoded->min_rr, idx.min_rr);
  EXPECT_EQ(decoded->max_rr, idx.max_rr);
  EXPECT_EQ(decoded->copy_starts, idx.copy_starts);
  for (uint32_t r = 0; r < 8; ++r) {
    EXPECT_EQ(decoded->dir[r].cross_start, idx.dir[r].cross_start);
    EXPECT_EQ(decoded->dir[r].local_packets, idx.dir[r].local_packets);
  }
}

TEST(EbIndexTest, InfDistanceSurvivesRoundTrip) {
  EbIndex idx = MakeIndex(4);
  idx.min_rr[5] = graph::kInfDist;
  idx.max_rr[5] = graph::kInfDist;
  auto decoded = EbIndex::Decode(idx.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->min_rr[5], graph::kInfDist);
  EXPECT_EQ(decoded->max_rr[5], graph::kInfDist);
}

TEST(EbIndexTest, CellOffsetsAreUniqueAndInMatrixArea) {
  const uint32_t R = 8;
  std::set<size_t> offsets;
  const size_t header = 6 + (R - 1) * 8;
  const size_t matrix_end = header + static_cast<size_t>(R) * R * 8;
  for (uint32_t i = 0; i < R; ++i) {
    for (uint32_t j = 0; j < R; ++j) {
      const size_t off = EbIndex::CellByteOffset(R, i, j);
      EXPECT_GE(off, header);
      EXPECT_LT(off + 8, matrix_end + 1);
      EXPECT_TRUE(offsets.insert(off).second) << i << "," << j;
    }
  }
  EXPECT_EQ(offsets.size(), static_cast<size_t>(R) * R);
}

TEST(EbIndexTest, SquarePackingKeepsBlockContiguous) {
  // Cells of one kBlockW x kBlockW block occupy a contiguous byte span —
  // the §6.2 packing that minimizes row/column exposure per packet.
  const uint32_t R = 9;  // exactly 3x3 blocks of width 3
  for (uint32_t bi = 0; bi < 3; ++bi) {
    for (uint32_t bj = 0; bj < 3; ++bj) {
      size_t lo = SIZE_MAX, hi = 0;
      for (uint32_t i = bi * 3; i < bi * 3 + 3; ++i) {
        for (uint32_t j = bj * 3; j < bj * 3 + 3; ++j) {
          const size_t off = EbIndex::CellByteOffset(R, i, j);
          lo = std::min(lo, off);
          hi = std::max(hi, off + 8);
        }
      }
      EXPECT_EQ(hi - lo, 9u * 8) << bi << "," << bj;
    }
  }
}

TEST(EbIndexTest, NeededRangesCoverRowColumnAndDirectory) {
  const uint32_t R = 8;
  auto ranges = EbIndex::NeededByteRanges(R, 2, 5);
  // Row 2 and column 5 cells must each be inside some range.
  auto covered = [&](size_t off) {
    for (auto [b, e] : ranges) {
      if (off >= b && off + 8 <= e) return true;
    }
    return false;
  };
  for (uint32_t j = 0; j < R; ++j) {
    EXPECT_TRUE(covered(EbIndex::CellByteOffset(R, 2, j))) << j;
  }
  for (uint32_t i = 0; i < R; ++i) {
    EXPECT_TRUE(covered(EbIndex::CellByteOffset(R, i, 5))) << i;
  }
}

TEST(EbIndexTest, DecodeRejectsTruncation) {
  EbIndex idx = MakeIndex(4);
  auto payload = idx.Encode();
  payload.resize(EbIndex::EncodedBytes(4, 0) - 10);
  EXPECT_FALSE(EbIndex::Decode(payload).ok());
  EXPECT_FALSE(EbIndex::Decode({0x01}).ok());
}

TEST(EbIndexTest, SaturatesHugeDistances) {
  EbIndex idx = MakeIndex(4);
  idx.max_rr[0] = (1ull << 40);  // bigger than u32
  auto decoded = EbIndex::Decode(idx.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->max_rr[0], EbIndex::kInfU32 - 1);
}

}  // namespace
}  // namespace airindex::core
