#include <gtest/gtest.h>

#include "broadcast/channel.h"
#include "core/systems.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

/// §6.2 invariant: packet loss may cost tuning time and latency, but never
/// correctness — every method still returns the exact distance.
class SystemsLossTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(SystemsLossTest, AllMethodsExactUnderLoss) {
  auto [loss, seed] = GetParam();
  graph::Graph g = SmallNetwork(350, 560, seed);
  SystemParams params;
  params.arcflag_regions = 8;
  params.eb_regions = 8;
  params.nr_regions = 8;
  params.landmarks = 3;
  auto systems = BuildSystems(g, params).value();
  auto w = workload::GenerateWorkload(g, 8, seed + 9).value();

  ClientOptions opts;
  opts.max_repair_cycles = 32;
  for (const auto& sys : systems) {
    broadcast::BroadcastChannel channel(&sys->cycle(), loss, seed + 17);
    for (const auto& q : w.queries) {
      device::QueryMetrics m =
          sys->RunQuery(channel, MakeAirQuery(g, q), opts);
      EXPECT_TRUE(m.ok) << sys->name() << " loss=" << loss;
      EXPECT_EQ(m.distance, q.true_dist)
          << sys->name() << " loss=" << loss << " " << q.source << "->"
          << q.target;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossRates, SystemsLossTest,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.05, 0.10),
                       ::testing::Values(501u, 502u)));

TEST(SystemsLossTest, LossIncreasesTuningTime) {
  graph::Graph g = SmallNetwork(350, 560, 601);
  SystemParams params;
  params.eb_regions = 8;
  params.nr_regions = 8;
  auto systems = BuildSystems(g, params).value();
  auto w = workload::GenerateWorkload(g, 10, 602).value();

  for (const auto& sys : systems) {
    uint64_t clean = 0, lossy = 0;
    broadcast::BroadcastChannel clean_ch(&sys->cycle(), 0.0);
    broadcast::BroadcastChannel lossy_ch(&sys->cycle(), 0.10, 603);
    ClientOptions opts;
    opts.max_repair_cycles = 32;
    for (const auto& q : w.queries) {
      clean += sys->RunQuery(clean_ch, MakeAirQuery(g, q), opts)
                   .tuning_packets;
      lossy += sys->RunQuery(lossy_ch, MakeAirQuery(g, q), opts)
                   .tuning_packets;
    }
    EXPECT_GE(lossy, clean) << sys->name();
  }
}

TEST(SystemsLossTest, AllMethodsExactUnderBurstLoss) {
  // Wireless losses are bursty in practice; whole region segments can
  // vanish in one fade. Correctness must survive that too.
  graph::Graph g = SmallNetwork(300, 480, 621);
  SystemParams params;
  params.arcflag_regions = 8;
  params.eb_regions = 8;
  params.nr_regions = 8;
  params.landmarks = 3;
  auto systems = BuildSystems(g, params).value();
  auto w = workload::GenerateWorkload(g, 6, 622).value();
  ClientOptions opts;
  opts.max_repair_cycles = 64;
  for (const auto& sys : systems) {
    broadcast::BroadcastChannel channel(
        &sys->cycle(), broadcast::LossModel::Bursty(0.05, 12), 623);
    for (const auto& q : w.queries) {
      device::QueryMetrics m =
          sys->RunQuery(channel, MakeAirQuery(g, q), opts);
      EXPECT_TRUE(m.ok) << sys->name();
      EXPECT_EQ(m.distance, q.true_dist) << sys->name();
    }
  }
}

TEST(SystemsLossTest, MemoryBoundClientsSurviveLoss) {
  graph::Graph g = SmallNetwork(300, 480, 611);
  SystemParams params;
  params.eb_regions = 8;
  params.nr_regions = 8;
  auto systems = BuildSystems(g, params).value();
  auto w = workload::GenerateWorkload(g, 6, 612).value();
  ClientOptions opts;
  opts.memory_bound = true;
  opts.max_repair_cycles = 32;
  for (const auto& sys : systems) {
    if (sys->name() != "EB" && sys->name() != "NR") continue;
    broadcast::BroadcastChannel channel(&sys->cycle(), 0.05, 613);
    for (const auto& q : w.queries) {
      device::QueryMetrics m =
          sys->RunQuery(channel, MakeAirQuery(g, q), opts);
      EXPECT_EQ(m.distance, q.true_dist) << sys->name();
    }
  }
}

}  // namespace
}  // namespace airindex::core
