#include <gtest/gtest.h>

#include "broadcast/channel.h"
#include "core/systems.h"
#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

/// §6.2 invariant: packet loss may cost tuning time and latency, but never
/// correctness — every method still returns the exact distance.
class SystemsLossTest
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(SystemsLossTest, AllMethodsExactUnderLoss) {
  auto [loss, seed] = GetParam();
  graph::Graph g = SmallNetwork(350, 560, seed);
  SystemParams params;
  params.arcflag_regions = 8;
  params.eb_regions = 8;
  params.nr_regions = 8;
  params.landmarks = 3;
  auto systems = BuildSystems(g, params).value();
  auto w = workload::GenerateWorkload(g, 8, seed + 9).value();

  ClientOptions opts;
  opts.max_repair_cycles = 32;
  for (const auto& sys : systems) {
    broadcast::BroadcastChannel channel(&sys->cycle(), loss, seed + 17);
    for (const auto& q : w.queries) {
      device::QueryMetrics m =
          sys->RunQuery(channel, MakeAirQuery(g, q), opts);
      EXPECT_TRUE(m.ok) << sys->name() << " loss=" << loss;
      EXPECT_EQ(m.distance, q.true_dist)
          << sys->name() << " loss=" << loss << " " << q.source << "->"
          << q.target;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossRates, SystemsLossTest,
    ::testing::Combine(::testing::Values(0.001, 0.01, 0.05, 0.10),
                       ::testing::Values(501u, 502u)));

TEST(SystemsLossTest, LossIncreasesTuningTime) {
  graph::Graph g = SmallNetwork(350, 560, 601);
  SystemParams params;
  params.eb_regions = 8;
  params.nr_regions = 8;
  auto systems = BuildSystems(g, params).value();
  auto w = workload::GenerateWorkload(g, 10, 602).value();

  for (const auto& sys : systems) {
    uint64_t clean = 0, lossy = 0;
    broadcast::BroadcastChannel clean_ch(&sys->cycle(), 0.0);
    broadcast::BroadcastChannel lossy_ch(&sys->cycle(), 0.10, 603);
    ClientOptions opts;
    opts.max_repair_cycles = 32;
    for (const auto& q : w.queries) {
      clean += sys->RunQuery(clean_ch, MakeAirQuery(g, q), opts)
                   .tuning_packets;
      lossy += sys->RunQuery(lossy_ch, MakeAirQuery(g, q), opts)
                   .tuning_packets;
    }
    EXPECT_GE(lossy, clean) << sys->name();
  }
}

TEST(SystemsLossTest, AllMethodsExactUnderBurstLoss) {
  // Wireless losses are bursty in practice; whole region segments can
  // vanish in one fade. Correctness must survive that too.
  graph::Graph g = SmallNetwork(300, 480, 621);
  SystemParams params;
  params.arcflag_regions = 8;
  params.eb_regions = 8;
  params.nr_regions = 8;
  params.landmarks = 3;
  auto systems = BuildSystems(g, params).value();
  auto w = workload::GenerateWorkload(g, 6, 622).value();
  ClientOptions opts;
  opts.max_repair_cycles = 64;
  for (const auto& sys : systems) {
    broadcast::BroadcastChannel channel(
        &sys->cycle(), broadcast::LossModel::Bursty(0.05, 12), 623);
    for (const auto& q : w.queries) {
      device::QueryMetrics m =
          sys->RunQuery(channel, MakeAirQuery(g, q), opts);
      EXPECT_TRUE(m.ok) << sys->name();
      EXPECT_EQ(m.distance, q.true_dist) << sys->name();
    }
  }
}

// The AF header gap (ROADMAP): ArcFlag's kd-split header is not in its
// repair set, so a lost header packet fails the query outright. The
// opt-in ClientOptions::repair_header closes the gap; leaving it off must
// reproduce the historical numbers byte-for-byte.
TEST(SystemsLossTest, ArcFlagHeaderRepairClosesTheGap) {
  graph::Graph g = SmallNetwork(350, 560, 641);
  SystemParams params;
  params.arcflag_regions = 16;  // 130-byte header: 2 packets at risk
  auto af = BuildSystem(g, "AF", params).value();
  auto w = workload::GenerateWorkload(g, 24, 642).value();

  ClientOptions off;
  off.max_repair_cycles = 32;
  ClientOptions on = off;
  on.repair_header = true;

  size_t failures_off = 0, failures_on = 0;
  for (size_t i = 0; i < w.queries.size(); ++i) {
    // Per-query loss streams, like the engine's (the header fade must hit
    // some queries and miss others).
    broadcast::BroadcastChannel channel(
        &af->cycle(), broadcast::LossModel::Independent(0.02), 643 + i);
    const AirQuery q = MakeAirQuery(g, w.queries[i]);
    const device::QueryMetrics m_off = af->RunQuery(channel, q, off);
    const device::QueryMetrics m_on = af->RunQuery(channel, q, on);

    if (!m_off.ok) ++failures_off;
    if (!m_on.ok) ++failures_on;
    if (m_on.ok) EXPECT_EQ(m_on.distance, w.queries[i].true_dist);

    // Off must be byte-identical to a default-options run (the option
    // changes nothing unless switched on)...
    ClientOptions defaults;
    defaults.max_repair_cycles = 32;
    device::QueryMetrics m_default = af->RunQuery(channel, q, defaults);
    m_default.cpu_ms = m_off.cpu_ms;  // the one wall-clock field
    device::QueryMetrics m_off_stable = m_off;
    m_off_stable.cpu_ms = m_default.cpu_ms;
    EXPECT_EQ(m_off_stable, m_default) << "query " << i;
  }
  // ...the gap is real with the repair off, and closed with it on.
  EXPECT_GT(failures_off, 0u);
  EXPECT_EQ(failures_on, 0u);
}

TEST(SystemsLossTest, MemoryBoundClientsSurviveLoss) {
  graph::Graph g = SmallNetwork(300, 480, 611);
  SystemParams params;
  params.eb_regions = 8;
  params.nr_regions = 8;
  auto systems = BuildSystems(g, params).value();
  auto w = workload::GenerateWorkload(g, 6, 612).value();
  ClientOptions opts;
  opts.memory_bound = true;
  opts.max_repair_cycles = 32;
  for (const auto& sys : systems) {
    if (sys->name() != "EB" && sys->name() != "NR") continue;
    broadcast::BroadcastChannel channel(&sys->cycle(), 0.05, 613);
    for (const auto& q : w.queries) {
      device::QueryMetrics m =
          sys->RunQuery(channel, MakeAirQuery(g, q), opts);
      EXPECT_EQ(m.distance, q.true_dist) << sys->name();
    }
  }
}

}  // namespace
}  // namespace airindex::core
