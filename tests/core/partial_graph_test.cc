#include "core/partial_graph.h"

#include <gtest/gtest.h>

#include "algo/dijkstra.h"
#include "broadcast/serialization.h"
#include "testing/test_graphs.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

broadcast::NodeRecord RecordOf(const graph::Graph& g, graph::NodeId v) {
  broadcast::NodeRecord rec;
  rec.id = v;
  rec.coord = g.Coord(v);
  rec.arcs.assign(g.OutArcs(v).begin(), g.OutArcs(v).end());
  return rec;
}

TEST(PartialGraphTest, EmptyKnowsNothing) {
  PartialGraph pg;
  EXPECT_EQ(pg.known_count(), 0u);
  EXPECT_FALSE(pg.Has(0));
  EXPECT_TRUE(pg.OutArcs(5).empty());
}

TEST(PartialGraphTest, AddRecordMakesNodeKnown) {
  graph::Graph g = SmallNetwork(100, 160, 1);
  PartialGraph pg;
  pg.AddRecord(RecordOf(g, 10));
  EXPECT_TRUE(pg.Has(10));
  EXPECT_FALSE(pg.Has(9));
  EXPECT_EQ(pg.OutArcs(10).size(), g.OutDegree(10));
}

TEST(PartialGraphTest, DuplicateReceiptIsIdempotent) {
  graph::Graph g = SmallNetwork(100, 160, 2);
  PartialGraph pg;
  pg.AddRecord(RecordOf(g, 3));
  const size_t mem = pg.MemoryBytes();
  pg.AddRecord(RecordOf(g, 3));
  EXPECT_EQ(pg.MemoryBytes(), mem);
  EXPECT_EQ(pg.known_count(), 1u);
}

TEST(PartialGraphTest, FullGraphDijkstraMatchesOriginal) {
  graph::Graph g = SmallNetwork(200, 320, 3);
  PartialGraph pg;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    pg.AddRecord(RecordOf(g, v));
  }
  for (auto [s, t] : testing_support::RandomPairs(g, 10, 4)) {
    algo::SearchTree tree =
        algo::DijkstraSearch(pg, s, t, KnownEdgeFilter{&pg});
    EXPECT_EQ(tree.dist[t], algo::DijkstraPath(g, s, t).dist);
  }
}

TEST(PartialGraphTest, KnownEdgeFilterSkipsUnreceivedHeads) {
  graph::Graph g = SmallNetwork(100, 160, 5);
  PartialGraph pg;
  pg.AddRecord(RecordOf(g, 0));
  // Only node 0 known: Dijkstra must not escape through its arcs.
  algo::SearchTree tree =
      algo::DijkstraSearch(pg, 0, graph::kInvalidNode, KnownEdgeFilter{&pg});
  EXPECT_EQ(tree.settled, 1u);
}

TEST(PartialGraphTest, MemoryGrowsWithContent) {
  graph::Graph g = SmallNetwork(100, 160, 6);
  PartialGraph pg;
  size_t prev = pg.MemoryBytes();
  for (graph::NodeId v = 0; v < 10; ++v) {
    pg.AddRecord(RecordOf(g, v));
    EXPECT_GT(pg.MemoryBytes(), prev);
    prev = pg.MemoryBytes();
  }
}

}  // namespace
}  // namespace airindex::core
