#include "core/partial_graph.h"

#include <gtest/gtest.h>

#include "algo/dijkstra.h"
#include "broadcast/serialization.h"
#include "testing/test_graphs.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

broadcast::NodeRecord RecordOf(const graph::Graph& g, graph::NodeId v) {
  broadcast::NodeRecord rec;
  rec.id = v;
  rec.coord = g.Coord(v);
  rec.arcs.assign(g.OutArcs(v).begin(), g.OutArcs(v).end());
  return rec;
}

TEST(PartialGraphTest, EmptyKnowsNothing) {
  PartialGraph pg;
  EXPECT_EQ(pg.known_count(), 0u);
  EXPECT_FALSE(pg.Has(0));
  EXPECT_TRUE(pg.OutArcs(5).empty());
}

TEST(PartialGraphTest, AddRecordMakesNodeKnown) {
  graph::Graph g = SmallNetwork(100, 160, 1);
  PartialGraph pg;
  pg.AddRecord(RecordOf(g, 10));
  EXPECT_TRUE(pg.Has(10));
  EXPECT_FALSE(pg.Has(9));
  EXPECT_EQ(pg.OutArcs(10).size(), g.OutDegree(10));
}

TEST(PartialGraphTest, DuplicateReceiptIsIdempotent) {
  graph::Graph g = SmallNetwork(100, 160, 2);
  PartialGraph pg;
  pg.AddRecord(RecordOf(g, 3));
  const size_t mem = pg.MemoryBytes();
  pg.AddRecord(RecordOf(g, 3));
  EXPECT_EQ(pg.MemoryBytes(), mem);
  EXPECT_EQ(pg.known_count(), 1u);
}

TEST(PartialGraphTest, FullGraphDijkstraMatchesOriginal) {
  graph::Graph g = SmallNetwork(200, 320, 3);
  PartialGraph pg;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    pg.AddRecord(RecordOf(g, v));
  }
  for (auto [s, t] : testing_support::RandomPairs(g, 10, 4)) {
    algo::SearchTree tree =
        algo::DijkstraSearch(pg, s, t, KnownEdgeFilter{&pg});
    EXPECT_EQ(tree.dist[t], algo::DijkstraPath(g, s, t).dist);
  }
}

TEST(PartialGraphTest, KnownEdgeFilterSkipsUnreceivedHeads) {
  graph::Graph g = SmallNetwork(100, 160, 5);
  PartialGraph pg;
  pg.AddRecord(RecordOf(g, 0));
  // Only node 0 known: Dijkstra must not escape through its arcs.
  algo::SearchTree tree =
      algo::DijkstraSearch(pg, 0, graph::kInvalidNode, KnownEdgeFilter{&pg});
  EXPECT_EQ(tree.settled, 1u);
}

TEST(PartialGraphTest, MemoryGrowsWithContent) {
  graph::Graph g = SmallNetwork(100, 160, 6);
  PartialGraph pg;
  size_t prev = pg.MemoryBytes();
  for (graph::NodeId v = 0; v < 10; ++v) {
    pg.AddRecord(RecordOf(g, v));
    EXPECT_GT(pg.MemoryBytes(), prev);
    prev = pg.MemoryBytes();
  }
}

// A zero-out-degree record must be safely addressable even while the arc
// pool has no chunks at all.
TEST(PartialGraphTest, ZeroArcRecordBeforeAnyPoolChunk) {
  PartialGraph pg;
  broadcast::NodeRecord rec;
  rec.id = 7;
  rec.coord = {1.0, 2.0};
  pg.AddRecord(rec);
  EXPECT_TRUE(pg.Has(7));
  EXPECT_TRUE(pg.OutArcs(7).empty());
  EXPECT_EQ(pg.MemoryBytes(), PartialGraph::kModeledNodeBytes);
}

// The modeled client charge is a paper-level constant, independent of the
// pooled storage the process actually uses: 24 bytes per node record,
// 8 per adjacency entry, exactly as before the chunked-pool refactor.
TEST(PartialGraphTest, ModeledMemoryChargeUnchangedByPooledStorage) {
  static_assert(PartialGraph::kModeledNodeBytes == 24);
  static_assert(PartialGraph::kModeledArcBytes == 8);
  graph::Graph g = SmallNetwork(100, 160, 7);
  PartialGraph pg;
  pg.AddRecord(RecordOf(g, 4));
  pg.AddRecord(RecordOf(g, 5));
  EXPECT_EQ(pg.MemoryBytes(),
            2 * 24 + (g.OutDegree(4) + g.OutDegree(5)) * 8);
}

TEST(PartialGraphTest, ResetForgetsEverythingInO1) {
  graph::Graph g = SmallNetwork(100, 160, 8);
  PartialGraph pg;
  for (graph::NodeId v = 0; v < 20; ++v) pg.AddRecord(RecordOf(g, v));
  pg.Reset();
  EXPECT_EQ(pg.known_count(), 0u);
  EXPECT_EQ(pg.arc_count(), 0u);
  EXPECT_EQ(pg.MemoryBytes(), 0u);
  for (graph::NodeId v = 0; v < 20; ++v) {
    EXPECT_FALSE(pg.Has(v)) << v;
    EXPECT_TRUE(pg.OutArcs(v).empty()) << v;
  }
}

// A reused PartialGraph must behave exactly like a fresh one: same
// adjacency, same coords, same search results — across many resets and
// differently-shaped ingests (the QueryScratch reuse pattern).
TEST(PartialGraphTest, ReuseAcrossResetsMatchesFresh) {
  graph::Graph g = SmallNetwork(200, 320, 9);
  PartialGraph reused;
  for (int round = 0; round < 5; ++round) {
    reused.Reset();
    PartialGraph fresh;
    // Ingest a round-dependent subset in a round-dependent order.
    for (graph::NodeId v = round; v < g.num_nodes();
         v += 1 + static_cast<graph::NodeId>(round)) {
      reused.AddRecord(RecordOf(g, v));
      fresh.AddRecord(RecordOf(g, v));
    }
    EXPECT_EQ(reused.known_count(), fresh.known_count());
    EXPECT_EQ(reused.arc_count(), fresh.arc_count());
    EXPECT_EQ(reused.MemoryBytes(), fresh.MemoryBytes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      ASSERT_EQ(reused.Has(v), fresh.Has(v)) << v;
      auto a = reused.OutArcs(v);
      auto b = fresh.OutArcs(v);
      ASSERT_EQ(a.size(), b.size()) << v;
      for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].to, b[i].to);
        ASSERT_EQ(a[i].weight, b[i].weight);
      }
    }
  }
}

// OutArcs spans must stay valid while later records grow the pool (the
// search iterates spans long after ingest, and chunks must never move).
TEST(PartialGraphTest, SpansStableAcrossPoolGrowth) {
  graph::Graph g = SmallNetwork(400, 640, 10);
  PartialGraph pg;
  pg.AddRecord(RecordOf(g, 0));
  auto early = pg.OutArcs(0);
  const graph::Graph::Arc* data = early.data();
  for (graph::NodeId v = 1; v < g.num_nodes(); ++v) {
    pg.AddRecord(RecordOf(g, v));
  }
  auto late = pg.OutArcs(0);
  EXPECT_EQ(late.data(), data);
  ASSERT_EQ(late.size(), g.OutDegree(0));
  for (size_t i = 0; i < late.size(); ++i) {
    EXPECT_EQ(late[i].to, g.OutArcs(0)[i].to);
  }
}

}  // namespace
}  // namespace airindex::core
