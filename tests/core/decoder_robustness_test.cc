// Robustness sweeps: every wire-format decoder must survive arbitrary
// truncation and byte corruption without crashing — a broadcast client
// parses whatever the ether delivers. Decoders either succeed or return an
// error Status; they never read out of bounds (exercised under ASan when
// enabled) and never abort.

#include <gtest/gtest.h>

#include "broadcast/serialization.h"
#include "common/rng.h"
#include "core/eb_index.h"
#include "core/nr_index.h"
#include "core/region_data.h"
#include "testing/test_graphs.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

std::vector<uint8_t> Corrupt(std::vector<uint8_t> buf, Rng& rng,
                             int flips) {
  for (int i = 0; i < flips && !buf.empty(); ++i) {
    buf[rng.NextBounded(buf.size())] ^=
        static_cast<uint8_t>(1 + rng.NextBounded(255));
  }
  return buf;
}

class DecoderRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderRobustnessTest, NodeRecordsSurviveTruncation) {
  graph::Graph g = SmallNetwork(100, 160, GetParam());
  std::vector<graph::NodeId> nodes;
  for (graph::NodeId v = 0; v < 20; ++v) nodes.push_back(v);
  const std::vector<uint8_t> buf = broadcast::EncodeNodeRecords(g, nodes);
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> cut(buf.begin(),
                             buf.begin() + rng.NextBounded(buf.size() + 1));
    auto res = broadcast::DecodeNodeRecords(cut);  // must not crash
    if (res.ok()) {
      for (const auto& rec : *res) {
        EXPECT_LT(rec.arcs.size(), 70000u);
      }
    }
  }
}

TEST_P(DecoderRobustnessTest, RegionDataSurvivesCorruption) {
  graph::Graph g = SmallNetwork(100, 160, GetParam() + 10);
  auto payload = EncodeRegionData(g, {1, 2, 3}, {1, 2, 3, 4, 5, 6});
  Rng rng(GetParam() + 11);
  for (int trial = 0; trial < 100; ++trial) {
    auto bad = Corrupt(payload, rng, 1 + static_cast<int>(
                                            rng.NextBounded(8)));
    bad.resize(rng.NextBounded(bad.size() + 1));
    auto res = DecodeRegionData(bad);  // must not crash
    (void)res;
  }
}

TEST_P(DecoderRobustnessTest, EbIndexSurvivesCorruption) {
  EbIndex idx;
  idx.num_regions = 8;
  idx.num_nodes = 100;
  idx.splits.assign(7, 1.5);
  idx.min_rr.assign(64, 10);
  idx.max_rr.assign(64, 20);
  idx.dir.assign(8, {});
  idx.copy_starts = {0, 40};
  const auto payload = idx.Encode();
  Rng rng(GetParam() + 21);
  for (int trial = 0; trial < 100; ++trial) {
    auto bad = Corrupt(payload, rng, 1 + static_cast<int>(
                                             rng.NextBounded(6)));
    bad.resize(rng.NextBounded(bad.size() + 1));
    auto res = EbIndex::Decode(bad);  // must not crash
    if (res.ok()) {
      EXPECT_GE(res->num_regions, 2u);
      EXPECT_EQ(res->dir.size(), res->num_regions);
    }
  }
}

TEST_P(DecoderRobustnessTest, NrIndexSurvivesCorruption) {
  NrIndex idx;
  idx.num_regions = 8;
  idx.num_nodes = 100;
  idx.region_id = 3;
  idx.splits.assign(7, 2.5);
  idx.next_region.assign(64, 1);
  idx.geometry.assign(8, {});
  const auto payload = idx.Encode();
  Rng rng(GetParam() + 31);
  for (int trial = 0; trial < 100; ++trial) {
    auto bad = Corrupt(payload, rng, 1 + static_cast<int>(
                                             rng.NextBounded(6)));
    bad.resize(rng.NextBounded(bad.size() + 1));
    auto res = NrIndex::Decode(bad);  // must not crash
    if (res.ok()) {
      EXPECT_GE(res->num_regions, 2u);
      EXPECT_LE(res->num_regions, 256u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderRobustnessTest,
                         ::testing::Values(9001, 9002, 9003));

}  // namespace
}  // namespace airindex::core
