#include "core/super_edge.h"

#include <gtest/gtest.h>

#include "algo/dijkstra.h"
#include "partition/kd_tree.h"
#include "testing/test_graphs.h"

namespace airindex::core {
namespace {

using testing_support::RandomPairs;
using testing_support::SmallNetwork;

broadcast::NodeRecord RecordOf(const graph::Graph& g, graph::NodeId v) {
  broadcast::NodeRecord rec;
  rec.id = v;
  rec.coord = g.Coord(v);
  rec.arcs.assign(g.OutArcs(v).begin(), g.OutArcs(v).end());
  return rec;
}

/// Feeds *all* regions of a partitioned graph through the processor; the
/// overlay must then reproduce exact distances.
class SuperEdgeExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SuperEdgeExactnessTest, AllRegionsGiveExactDistance) {
  graph::Graph g = SmallNetwork(300, 480, GetParam());
  auto kd = partition::KdTreePartitioner::Build(g, 8).value();
  auto part = kd.Partition(g);
  auto borders = partition::ComputeBorders(g, part);

  for (auto [s, t] : RandomPairs(g, 8, GetParam() + 3)) {
    SuperEdgeProcessor proc(s, t);
    for (graph::RegionId r = 0; r < 8; ++r) {
      RegionData data;
      data.border = borders.region_border[r];
      for (graph::NodeId v : part.region_nodes[r]) {
        data.records.push_back(RecordOf(g, v));
      }
      proc.AddRegion(data);
    }
    EXPECT_EQ(proc.Solve(), algo::DijkstraPath(g, s, t).dist)
        << s << "->" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuperEdgeExactnessTest,
                         ::testing::Values(11, 12, 13));

TEST(SuperEdgeTest, SameRegionEndpoints) {
  graph::Graph g = SmallNetwork(300, 480, 21);
  auto kd = partition::KdTreePartitioner::Build(g, 4).value();
  auto part = kd.Partition(g);
  auto borders = partition::ComputeBorders(g, part);
  // Find two nodes in the same region.
  const auto& nodes = part.region_nodes[0];
  ASSERT_GE(nodes.size(), 2u);
  const graph::NodeId s = nodes.front(), t = nodes.back();

  SuperEdgeProcessor proc(s, t);
  for (graph::RegionId r = 0; r < 4; ++r) {
    RegionData data;
    data.border = borders.region_border[r];
    for (graph::NodeId v : part.region_nodes[r]) {
      data.records.push_back(RecordOf(g, v));
    }
    proc.AddRegion(data);
  }
  EXPECT_EQ(proc.Solve(), algo::DijkstraPath(g, s, t).dist);
}

TEST(SuperEdgeTest, OverlayIsSmallerThanRawRegions) {
  graph::Graph g = SmallNetwork(500, 800, 22);
  auto kd = partition::KdTreePartitioner::Build(g, 8).value();
  auto part = kd.Partition(g);
  auto borders = partition::ComputeBorders(g, part);
  SuperEdgeProcessor proc(0, static_cast<graph::NodeId>(g.num_nodes() - 1));
  size_t raw_bytes = 0;
  for (graph::RegionId r = 0; r < 8; ++r) {
    RegionData data;
    data.border = borders.region_border[r];
    for (graph::NodeId v : part.region_nodes[r]) {
      data.records.push_back(RecordOf(g, v));
      raw_bytes += 24 + g.OutDegree(v) * 8;
    }
    proc.AddRegion(data);
  }
  // The point of §6.1: the retained overlay beats retaining raw regions.
  EXPECT_LT(proc.MemoryBytes(), raw_bytes);
}

TEST(SuperEdgeTest, UnreachableWithoutIngestedRegions) {
  SuperEdgeProcessor proc(1, 2);
  EXPECT_EQ(proc.Solve(), graph::kInfDist);
}

TEST(SuperEdgeTest, SourceEqualsTargetIsZero) {
  SuperEdgeProcessor proc(5, 5);
  EXPECT_EQ(proc.Solve(), 0u);
}

TEST(SuperEdgeTest, MissingMiddleRegionCanOnlyOverestimate) {
  graph::Graph g = SmallNetwork(300, 480, 23);
  auto kd = partition::KdTreePartitioner::Build(g, 8).value();
  auto part = kd.Partition(g);
  auto borders = partition::ComputeBorders(g, part);
  for (auto [s, t] : RandomPairs(g, 6, 24)) {
    SuperEdgeProcessor proc(s, t);
    for (graph::RegionId r = 0; r < 8; ++r) {
      if (r == 3) continue;  // drop one region
      RegionData data;
      data.border = borders.region_border[r];
      for (graph::NodeId v : part.region_nodes[r]) {
        data.records.push_back(RecordOf(g, v));
      }
      proc.AddRegion(data);
    }
    const graph::Dist overlay = proc.Solve();
    const graph::Dist truth = algo::DijkstraPath(g, s, t).dist;
    EXPECT_GE(overlay, truth);  // a subgraph can never undercut the graph
  }
}

}  // namespace
}  // namespace airindex::core
