#include "core/knn_on_air.h"

#include <gtest/gtest.h>

#include "algo/dijkstra.h"
#include "broadcast/channel.h"
#include "common/rng.h"
#include "testing/test_graphs.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

std::vector<graph::NodeId> PickPois(const graph::Graph& g, double fraction,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::NodeId> pois;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (rng.NextBernoulli(fraction)) pois.push_back(v);
  }
  return pois;
}

std::vector<std::pair<graph::NodeId, graph::Dist>> TrueKnn(
    const graph::Graph& g, graph::NodeId s,
    const std::vector<graph::NodeId>& pois, uint32_t k) {
  algo::SearchTree tree = algo::DijkstraAll(g, s);
  std::vector<std::pair<graph::Dist, graph::NodeId>> found;
  for (graph::NodeId p : pois) {
    if (tree.dist[p] != graph::kInfDist) found.emplace_back(tree.dist[p], p);
  }
  std::sort(found.begin(), found.end());
  if (found.size() > k) found.resize(k);
  std::vector<std::pair<graph::NodeId, graph::Dist>> out;
  for (auto [d, v] : found) out.emplace_back(v, d);
  return out;
}

class KnnOnAirTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(KnnOnAirTest, DistancesMatchGroundTruth) {
  auto [seed, k] = GetParam();
  graph::Graph g = SmallNetwork(400, 640, seed);
  auto eb = EbSystem::Build(g, 8).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.0);
  auto pois = PickPois(g, 0.03, seed + 1);
  ASSERT_GE(pois.size(), k);

  for (graph::NodeId s : {graph::NodeId{3}, graph::NodeId{200},
                          graph::NodeId{399}}) {
    KnnQuery q;
    q.source = s;
    q.source_coord = g.Coord(s);
    q.k = k;
    q.tune_phase = 0.44;
    KnnResult res = RunKnnQuery(*eb, channel, q, pois);
    ASSERT_TRUE(res.metrics.ok);
    auto truth = TrueKnn(g, s, pois, k);
    ASSERT_EQ(res.neighbors.size(), truth.size()) << "s=" << s;
    // Distances must match exactly; node identity may differ on ties.
    for (size_t i = 0; i < truth.size(); ++i) {
      EXPECT_EQ(res.neighbors[i].second, truth[i].second)
          << "s=" << s << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndK, KnnOnAirTest,
    ::testing::Combine(::testing::Values(401u, 402u),
                       ::testing::Values(1u, 3u, 8u)));

TEST(KnnOnAirTest, KZeroIsEmpty) {
  graph::Graph g = SmallNetwork(200, 320, 410);
  auto eb = EbSystem::Build(g, 8).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.0);
  KnnQuery q;
  q.source = 1;
  q.source_coord = g.Coord(1);
  q.k = 0;
  KnnResult res = RunKnnQuery(*eb, channel, q, {5, 6, 7});
  EXPECT_TRUE(res.metrics.ok);
  EXPECT_TRUE(res.neighbors.empty());
  EXPECT_EQ(res.metrics.tuning_packets, 0u);
}

TEST(KnnOnAirTest, FewerPoisThanK) {
  graph::Graph g = SmallNetwork(200, 320, 411);
  auto eb = EbSystem::Build(g, 8).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.0);
  KnnQuery q;
  q.source = 10;
  q.source_coord = g.Coord(10);
  q.k = 5;
  KnnResult res = RunKnnQuery(*eb, channel, q, {42, 77});
  ASSERT_TRUE(res.metrics.ok);
  EXPECT_EQ(res.neighbors.size(), 2u);
}

TEST(KnnOnAirTest, NearbyPoiNeedsFewRegions) {
  graph::Graph g = SmallNetwork(600, 960, 412);
  auto eb = EbSystem::Build(g, 16).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.0);
  // POI adjacent to the source: the expansion should stop early.
  const graph::NodeId s = 100;
  const graph::NodeId poi = g.OutArcs(s)[0].to;
  KnnQuery q;
  q.source = s;
  q.source_coord = g.Coord(s);
  q.k = 1;
  KnnResult res = RunKnnQuery(*eb, channel, q, {poi});
  ASSERT_EQ(res.neighbors.size(), 1u);
  EXPECT_LT(res.metrics.regions_received, 16u);
}

TEST(KnnOnAirTest, ExactUnderPacketLoss) {
  graph::Graph g = SmallNetwork(300, 480, 413);
  auto eb = EbSystem::Build(g, 8).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.05, 414);
  auto pois = PickPois(g, 0.05, 415);
  ClientOptions opts;
  opts.max_repair_cycles = 32;
  KnnQuery q;
  q.source = 50;
  q.source_coord = g.Coord(50);
  q.k = 4;
  KnnResult res = RunKnnQuery(*eb, channel, q, pois, opts);
  auto truth = TrueKnn(g, 50, pois, 4);
  ASSERT_EQ(res.neighbors.size(), truth.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    EXPECT_EQ(res.neighbors[i].second, truth[i].second);
  }
}

TEST(KnnOnAirTest, SourceIsPoi) {
  graph::Graph g = SmallNetwork(200, 320, 416);
  auto eb = EbSystem::Build(g, 8).value();
  broadcast::BroadcastChannel channel(&eb->cycle(), 0.0);
  KnnQuery q;
  q.source = 7;
  q.source_coord = g.Coord(7);
  q.k = 1;
  KnnResult res = RunKnnQuery(*eb, channel, q, {7});
  ASSERT_EQ(res.neighbors.size(), 1u);
  EXPECT_EQ(res.neighbors[0].first, 7u);
  EXPECT_EQ(res.neighbors[0].second, 0u);
}

}  // namespace
}  // namespace airindex::core
