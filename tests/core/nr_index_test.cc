#include "core/nr_index.h"

#include <gtest/gtest.h>

namespace airindex::core {
namespace {

NrIndex MakeIndex(uint32_t regions, uint32_t m) {
  NrIndex idx;
  idx.num_regions = regions;
  idx.num_nodes = 512;
  idx.region_id = m;
  idx.splits.resize(regions - 1, 3.25);
  idx.next_region.resize(static_cast<size_t>(regions) * regions);
  for (size_t i = 0; i < idx.next_region.size(); ++i) {
    idx.next_region[i] = static_cast<uint8_t>(i % regions);
  }
  idx.geometry.resize(regions);
  for (uint32_t r = 0; r < regions; ++r) {
    idx.geometry[r] = {17 * r + 1, static_cast<uint16_t>(r + 2),
                       static_cast<uint16_t>(r % 3)};
  }
  return idx;
}

TEST(NrIndexTest, EncodeDecodeRoundTrip) {
  NrIndex idx = MakeIndex(16, 5);
  auto payload = idx.Encode();
  EXPECT_EQ(payload.size(), NrIndex::EncodedBytes(16));
  auto decoded = NrIndex::Decode(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_regions, 16u);
  EXPECT_EQ(decoded->num_nodes, 512u);
  EXPECT_EQ(decoded->region_id, 5u);
  EXPECT_EQ(decoded->splits, idx.splits);
  EXPECT_EQ(decoded->next_region, idx.next_region);
  ASSERT_EQ(decoded->geometry.size(), idx.geometry.size());
  for (size_t r = 0; r < idx.geometry.size(); ++r) {
    EXPECT_EQ(decoded->geometry[r].cross_start, idx.geometry[r].cross_start);
    EXPECT_EQ(decoded->geometry[r].cross_packets,
              idx.geometry[r].cross_packets);
    EXPECT_EQ(decoded->geometry[r].local_packets,
              idx.geometry[r].local_packets);
  }
}

TEST(NrIndexTest, NextAccessor) {
  NrIndex idx = MakeIndex(8, 0);
  idx.next_region[3 * 8 + 4] = 7;
  EXPECT_EQ(idx.Next(3, 4), 7);
}

TEST(NrIndexTest, CellRangeIsOneByte) {
  auto [b, e] = NrIndex::CellRange(32, 3, 9);
  EXPECT_EQ(e - b, 1u);
  // Distinct cells map to distinct offsets.
  EXPECT_NE(NrIndex::CellRange(32, 3, 9).first,
            NrIndex::CellRange(32, 3, 10).first);
}

TEST(NrIndexTest, RangesAreDisjointRegions) {
  const uint32_t R = 16;
  auto splits = NrIndex::SplitsRange(R);
  auto cell = NrIndex::CellRange(R, 0, 0);
  auto pos = NrIndex::PositionRange(R, 0);
  EXPECT_LE(splits.second, cell.first);
  EXPECT_LT(cell.first, pos.first);
  EXPECT_LE(pos.second, NrIndex::EncodedBytes(R));
}

TEST(NrIndexTest, DecodeRejectsTruncation) {
  NrIndex idx = MakeIndex(8, 2);
  auto payload = idx.Encode();
  payload.resize(payload.size() - 5);
  EXPECT_FALSE(NrIndex::Decode(payload).ok());
  EXPECT_FALSE(NrIndex::Decode({1, 2, 3}).ok());
}

TEST(NrIndexTest, SupportsMaximumRegions) {
  NrIndex idx = MakeIndex(256, 255);
  auto decoded = NrIndex::Decode(idx.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_regions, 256u);
}

}  // namespace
}  // namespace airindex::core
