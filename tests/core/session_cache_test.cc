#include "core/session_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "broadcast/channel.h"
#include "broadcast/cycle.h"
#include "broadcast/packet.h"

namespace airindex::core {
namespace {

// A five-segment cycle: one index segment followed by four data segments
// of two packets each, enough structure to exercise segment identities.
broadcast::BroadcastCycle MakeCycle() {
  broadcast::CycleBuilder builder;
  broadcast::Segment index;
  index.type = broadcast::SegmentType::kGlobalIndex;
  index.is_index = true;
  index.payload.assign(broadcast::kPayloadSize, 0x11);
  builder.Add(index);
  for (uint32_t i = 0; i < 4; ++i) {
    broadcast::Segment data;
    data.type = broadcast::SegmentType::kNetworkData;
    data.id = i;
    data.payload.assign(2 * broadcast::kPayloadSize,
                        static_cast<uint8_t>(0x20 + i));
    builder.Add(data);
  }
  return std::move(builder).Finalize().value();
}

broadcast::BroadcastChannel MakeChannel(const broadcast::BroadcastCycle& cycle,
                                        uint64_t cycle_version) {
  return broadcast::BroadcastChannel(
      &cycle, broadcast::LossModel::Independent(0.0), /*seed=*/7,
      /*slot_stride=*/1, /*slot_offset=*/0, /*fec=*/{}, /*schedule=*/nullptr,
      cycle_version);
}

broadcast::ReceivedSegment MakeSeg(uint32_t segment_index, size_t bytes,
                                   uint8_t fill, bool complete = true) {
  broadcast::ReceivedSegment seg;
  seg.segment_index = segment_index;
  seg.type = broadcast::SegmentType::kNetworkData;
  seg.segment_id = segment_index;
  seg.payload.assign(bytes, fill);
  seg.packet_ok.assign((bytes + broadcast::kPayloadSize - 1) /
                           broadcast::kPayloadSize,
                       complete);
  seg.complete = complete;
  return seg;
}

constexpr size_t kSegBytes = 2 * broadcast::kPayloadSize;

TEST(SessionCacheTest, DisabledByDefaultAndWithZeroBudget) {
  broadcast::BroadcastCycle cycle = MakeCycle();
  broadcast::BroadcastChannel chan = MakeChannel(cycle, 0);

  SessionCache cache;
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.Ready(chan));

  cache.BeginSession(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_FALSE(cache.Ready(chan));
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(SessionCacheTest, StoreThenLoadRoundTrips) {
  broadcast::BroadcastCycle cycle = MakeCycle();
  broadcast::BroadcastChannel chan = MakeChannel(cycle, 0);

  SessionCache cache;
  cache.BeginSession(64u << 10);
  ASSERT_TRUE(cache.Ready(chan));

  const uint32_t start = cycle.SegmentStart(1);
  cache.Store(start, MakeSeg(1, kSegBytes, 0xAB));
  EXPECT_TRUE(cache.Has(start));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.used_bytes(), kSegBytes);

  broadcast::ReceivedSegment out;
  ASSERT_TRUE(cache.Load(start, &out));
  EXPECT_TRUE(out.complete);
  ASSERT_EQ(out.payload.size(), kSegBytes);
  EXPECT_EQ(out.payload.front(), 0xAB);
  EXPECT_FALSE(cache.Load(cycle.SegmentStart(2), &out));
}

TEST(SessionCacheTest, OneSegmentBudgetEvictsThePreviousSegment) {
  broadcast::BroadcastCycle cycle = MakeCycle();
  broadcast::BroadcastChannel chan = MakeChannel(cycle, 0);

  SessionCache cache;
  // Budget holds exactly one data segment: every Store must evict the
  // previous tenant, and the cache still answers for the survivor.
  cache.BeginSession(kSegBytes);
  ASSERT_TRUE(cache.Ready(chan));

  const uint32_t a = cycle.SegmentStart(1);
  const uint32_t b = cycle.SegmentStart(2);
  cache.Store(a, MakeSeg(1, kSegBytes, 0xA1));
  EXPECT_TRUE(cache.Has(a));
  cache.Store(b, MakeSeg(2, kSegBytes, 0xB2));
  EXPECT_FALSE(cache.Has(a));
  EXPECT_TRUE(cache.Has(b));
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.used_bytes(), kSegBytes);

  broadcast::ReceivedSegment out;
  ASSERT_TRUE(cache.Load(b, &out));
  EXPECT_EQ(out.payload.front(), 0xB2);
}

TEST(SessionCacheTest, FindRefreshesRecencySoTheHitSurvivesEviction) {
  broadcast::BroadcastCycle cycle = MakeCycle();
  broadcast::BroadcastChannel chan = MakeChannel(cycle, 0);

  SessionCache cache;
  cache.BeginSession(2 * kSegBytes);
  ASSERT_TRUE(cache.Ready(chan));

  const uint32_t a = cycle.SegmentStart(1);
  const uint32_t b = cycle.SegmentStart(2);
  const uint32_t c = cycle.SegmentStart(3);
  cache.Store(a, MakeSeg(1, kSegBytes, 0xA1));
  cache.Store(b, MakeSeg(2, kSegBytes, 0xB2));
  // Touch `a` so `b` is now the least recently used, then overflow.
  ASSERT_NE(cache.Find(a), nullptr);
  cache.Store(c, MakeSeg(3, kSegBytes, 0xC3));
  EXPECT_TRUE(cache.Has(a));
  EXPECT_FALSE(cache.Has(b));
  EXPECT_TRUE(cache.Has(c));
}

TEST(SessionCacheTest, IncompleteAndOverBudgetSegmentsAreNotCached) {
  broadcast::BroadcastCycle cycle = MakeCycle();
  broadcast::BroadcastChannel chan = MakeChannel(cycle, 0);

  SessionCache cache;
  cache.BeginSession(kSegBytes);
  ASSERT_TRUE(cache.Ready(chan));

  const uint32_t a = cycle.SegmentStart(1);
  cache.Store(a, MakeSeg(1, kSegBytes, 0xA1, /*complete=*/false));
  EXPECT_FALSE(cache.Has(a));
  EXPECT_EQ(cache.used_bytes(), 0u);

  // Larger than the whole budget: ignored, and nothing already cached is
  // evicted to make room for it.
  cache.Store(a, MakeSeg(1, kSegBytes, 0xA1));
  cache.Store(cycle.SegmentStart(2), MakeSeg(2, 2 * kSegBytes, 0xB2));
  EXPECT_TRUE(cache.Has(a));
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(SessionCacheTest, StaleCycleVersionIsNeverServed) {
  broadcast::BroadcastCycle cycle = MakeCycle();
  broadcast::BroadcastChannel v0 = MakeChannel(cycle, 0);
  broadcast::BroadcastChannel v1 = MakeChannel(cycle, 1);

  SessionCache cache;
  cache.BeginSession(64u << 10);
  ASSERT_TRUE(cache.Ready(v0));

  const uint32_t start = cycle.SegmentStart(1);
  cache.Store(start, MakeSeg(1, kSegBytes, 0xA1));
  cache.StoreIndex(cycle.SegmentStart(0),
                   MakeSeg(0, broadcast::kPayloadSize, 0x11));
  ASSERT_TRUE(cache.Has(start));
  ASSERT_TRUE(cache.has_index());

  // Same cycle object, bumped version: the station republished the world,
  // so everything decoded under version 0 must vanish before first use.
  ASSERT_TRUE(cache.Ready(v1));
  EXPECT_FALSE(cache.Has(start));
  EXPECT_FALSE(cache.has_index());
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);

  // Entries stored under version 1 survive a re-consult against version 1.
  cache.Store(start, MakeSeg(1, kSegBytes, 0xB2));
  ASSERT_TRUE(cache.Ready(v1));
  EXPECT_TRUE(cache.Has(start));
}

TEST(SessionCacheTest, RebindingToADifferentCycleClearsContent) {
  broadcast::BroadcastCycle first = MakeCycle();
  broadcast::BroadcastCycle second = MakeCycle();
  broadcast::BroadcastChannel on_first = MakeChannel(first, 0);
  broadcast::BroadcastChannel on_second = MakeChannel(second, 0);

  SessionCache cache;
  cache.BeginSession(64u << 10);
  ASSERT_TRUE(cache.Ready(on_first));
  cache.Store(first.SegmentStart(1), MakeSeg(1, kSegBytes, 0xA1));
  ASSERT_TRUE(cache.Has(first.SegmentStart(1)));

  ASSERT_TRUE(cache.Ready(on_second));
  EXPECT_FALSE(cache.Has(second.SegmentStart(1)));
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(SessionCacheTest, IndexSlotKeepsIncompleteSegmentsForRepair) {
  broadcast::BroadcastCycle cycle = MakeCycle();
  broadcast::BroadcastChannel chan = MakeChannel(cycle, 0);

  SessionCache cache;
  cache.BeginSession(64u << 10);
  ASSERT_TRUE(cache.Ready(chan));
  EXPECT_FALSE(cache.has_index());

  // An index heard with holes is still worth keeping: the mask rides
  // along so the next query can repair on air instead of restarting.
  broadcast::ReceivedSegment holey =
      MakeSeg(0, 2 * broadcast::kPayloadSize, 0x11, /*complete=*/false);
  holey.packet_ok[0] = true;
  const uint32_t start = cycle.SegmentStart(0);
  cache.StoreIndex(start, holey);
  ASSERT_TRUE(cache.has_index());
  EXPECT_EQ(cache.index_start(), start);

  broadcast::ReceivedSegment out;
  ASSERT_TRUE(cache.LoadIndex(&out));
  EXPECT_FALSE(out.complete);
  ASSERT_EQ(out.packet_ok.size(), 2u);
  EXPECT_TRUE(out.packet_ok[0]);
  EXPECT_FALSE(out.packet_ok[1]);

  // A repaired copy written back through UpdateIndex replaces the slot.
  out.packet_ok[1] = true;
  out.complete = true;
  cache.UpdateIndex(out);
  broadcast::ReceivedSegment repaired;
  ASSERT_TRUE(cache.LoadIndex(&repaired));
  EXPECT_TRUE(repaired.complete);

  cache.BeginSession(64u << 10);
  EXPECT_FALSE(cache.has_index());
}

TEST(SessionCacheTest, UpdateIndexWithoutAStoredIndexIsANoOp) {
  SessionCache cache;
  cache.BeginSession(64u << 10);
  cache.UpdateIndex(MakeSeg(0, broadcast::kPayloadSize, 0x11));
  EXPECT_FALSE(cache.has_index());
}

TEST(SessionCacheTest, PerQueryHitCounterResetsAtQueryStart) {
  SessionCache cache;
  cache.BeginSession(64u << 10);
  cache.BeginQueryStats();
  cache.CountHit();
  cache.CountHit(3);
  EXPECT_EQ(cache.query_hits(), 4u);
  cache.BeginQueryStats();
  EXPECT_EQ(cache.query_hits(), 0u);
}

}  // namespace
}  // namespace airindex::core
