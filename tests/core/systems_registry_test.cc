#include <gtest/gtest.h>

#include "core/systems.h"
#include "testing/test_graphs.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

TEST(SystemRegistryTest, SecondGetReturnsTheCachedInstance) {
  SystemRegistry registry;
  graph::Graph g = SmallNetwork(300, 480, 21);
  SystemParams params;
  params.nr_regions = 8;

  auto first = registry.Get(g, "NR", params);
  ASSERT_TRUE(first.ok());
  auto second = registry.Get(g, "NR", params);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
  EXPECT_EQ(registry.size(), 1u);
}

TEST(SystemRegistryTest, DifferentKnobsAreDifferentEntries) {
  SystemRegistry registry;
  graph::Graph g = SmallNetwork(300, 480, 21);
  SystemParams small;
  small.nr_regions = 4;
  SystemParams large;
  large.nr_regions = 8;

  auto a = registry.Get(g, "NR", small);
  auto b = registry.Get(g, "NR", large);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->get(), b->get());
  EXPECT_EQ(registry.size(), 2u);
}

TEST(SystemRegistryTest, IrrelevantKnobsShareOneEntry) {
  // An NR build does not depend on the ArcFlag region count; the cache key
  // must only include the method's own parameter.
  SystemRegistry registry;
  graph::Graph g = SmallNetwork(300, 480, 21);
  SystemParams a;
  a.nr_regions = 8;
  a.arcflag_regions = 4;
  SystemParams b;
  b.nr_regions = 8;
  b.arcflag_regions = 64;

  auto first = registry.Get(g, "NR", a);
  auto second = registry.Get(g, "NR", b);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());
}

TEST(SystemRegistryTest, GetAllFollowsTableOneOrder) {
  SystemRegistry registry;
  graph::Graph g = SmallNetwork(300, 480, 21);
  SystemParams params;
  params.nr_regions = 8;
  params.eb_regions = 8;
  params.arcflag_regions = 8;
  params.landmarks = 3;

  auto systems = registry.GetAll(g, params);
  ASSERT_TRUE(systems.ok());
  ASSERT_EQ(systems->size(), 5u);
  const char* order[5] = {"DJ", "NR", "EB", "LD", "AF"};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*systems)[i]->name(), order[i]);
  }
  // A second GetAll is served entirely from cache.
  auto again = registry.GetAll(g, params);
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*systems)[i].get(), (*again)[i].get());
  }
}

TEST(SystemRegistryTest, SharedInstancesSurviveClear) {
  SystemRegistry registry;
  graph::Graph g = SmallNetwork(300, 480, 21);
  auto sys = registry.Get(g, "DJ").value();
  registry.Clear();
  EXPECT_EQ(registry.size(), 0u);
  // The caller's shared_ptr keeps the system alive past the cache drop.
  EXPECT_EQ(sys->name(), "DJ");
  EXPECT_GT(sys->cycle().total_packets(), 0u);
}

TEST(SystemRegistryTest, LruCapEvictsTheLeastRecentlyUsedEntry) {
  SystemRegistry registry;
  EXPECT_EQ(registry.capacity(), SystemRegistry::kDefaultCapacity);
  registry.set_capacity(2);
  graph::Graph g = SmallNetwork(300, 480, 21);

  auto dj = registry.Get(g, "DJ").value();
  auto nr = registry.Get(g, "NR").value();
  EXPECT_EQ(registry.size(), 2u);

  // Touch DJ so NR becomes the least recently used, then overflow.
  EXPECT_EQ(registry.Get(g, "DJ").value().get(), dj.get());
  auto eb = registry.Get(g, "EB").value();
  EXPECT_EQ(registry.size(), 2u);

  // DJ and EB survived; NR was evicted and rebuilds as a fresh instance
  // that answers like the original (the caller's shared_ptr kept the old
  // one alive through the eviction).
  EXPECT_EQ(registry.Get(g, "DJ").value().get(), dj.get());
  auto nr2 = registry.Get(g, "NR").value();
  EXPECT_NE(nr2.get(), nr.get());
  EXPECT_EQ(nr2->name(), nr->name());
  EXPECT_EQ(nr2->cycle().total_packets(), nr->cycle().total_packets());
}

TEST(SystemRegistryTest, ShrinkingCapacityEvictsImmediately) {
  SystemRegistry registry;
  graph::Graph g = SmallNetwork(300, 480, 21);
  registry.Get(g, "DJ").value();
  registry.Get(g, "NR").value();
  auto eb = registry.Get(g, "EB").value();
  EXPECT_EQ(registry.size(), 3u);

  registry.set_capacity(1);
  EXPECT_EQ(registry.size(), 1u);
  // The survivor is the most recently used entry.
  EXPECT_EQ(registry.Get(g, "EB").value().get(), eb.get());
  EXPECT_EQ(registry.size(), 1u);
}

TEST(SystemRegistryTest, UnknownMethodIsAnError) {
  SystemRegistry registry;
  graph::Graph g = SmallNetwork(300, 480, 21);
  EXPECT_FALSE(registry.Get(g, "XX").ok());
}

TEST(SystemNamesTest, HeavyMethodsAreOptIn) {
  SystemParams params;
  EXPECT_EQ(SystemNames(params).size(), 5u);
  params.include_spq = true;
  params.include_hiti = true;
  auto names = SystemNames(params);
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[5], "SPQ");
  EXPECT_EQ(names[6], "HiTi");
}

}  // namespace
}  // namespace airindex::core
