#include "core/border_precompute.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/dijkstra.h"
#include "partition/kd_tree.h"
#include "testing/test_graphs.h"

namespace airindex::core {
namespace {

using testing_support::SmallNetwork;

struct Built {
  graph::Graph g;
  BorderPrecompute pre;
};

Built Make(uint32_t nodes, uint32_t edges, uint64_t seed, uint32_t regions) {
  graph::Graph g = SmallNetwork(nodes, edges, seed);
  auto kd = partition::KdTreePartitioner::Build(g, regions).value();
  auto pre = ComputeBorderPrecompute(g, kd.Partition(g)).value();
  return {std::move(g), std::move(pre)};
}

TEST(BorderPrecomputeTest, MinMaxConsistency) {
  Built b = Make(300, 480, 1, 8);
  for (graph::RegionId i = 0; i < 8; ++i) {
    for (graph::RegionId j = 0; j < 8; ++j) {
      if (b.pre.MinDist(i, j) == graph::kInfDist) continue;
      EXPECT_LE(b.pre.MinDist(i, j), b.pre.MaxDist(i, j)) << i << "," << j;
    }
  }
}

TEST(BorderPrecomputeTest, MatrixMatchesDirectDijkstra) {
  Built b = Make(200, 320, 2, 4);
  // Recompute one row by hand.
  const graph::RegionId ri = 1;
  for (graph::RegionId rj = 0; rj < 4; ++rj) {
    graph::Dist mn = graph::kInfDist, mx = 0;
    for (graph::NodeId from : b.pre.borders.region_border[ri]) {
      algo::SearchTree tree = algo::DijkstraAll(b.g, from);
      for (graph::NodeId to : b.pre.borders.region_border[rj]) {
        mn = std::min(mn, tree.dist[to]);
        mx = std::max(mx, tree.dist[to]);
      }
    }
    EXPECT_EQ(b.pre.MinDist(ri, rj), mn) << rj;
    EXPECT_EQ(b.pre.MaxDist(ri, rj), mx) << rj;
  }
}

TEST(BorderPrecomputeTest, DiagonalMinIsZero) {
  Built b = Make(300, 480, 3, 8);
  for (graph::RegionId r = 0; r < 8; ++r) {
    if (b.pre.borders.region_border[r].empty()) continue;
    // A border node reaches itself at distance 0.
    EXPECT_EQ(b.pre.MinDist(r, r), 0u);
  }
}

TEST(BorderPrecomputeTest, TraversedIncludesEndpointsNeighbours) {
  Built b = Make(300, 480, 4, 8);
  // Needed set always contains both endpoint regions.
  for (graph::RegionId i = 0; i < 8; ++i) {
    for (graph::RegionId j = 0; j < 8; ++j) {
      auto needed = b.pre.NeededRegions(i, j);
      EXPECT_TRUE(std::find(needed.begin(), needed.end(), i) != needed.end());
      EXPECT_TRUE(std::find(needed.begin(), needed.end(), j) != needed.end());
    }
  }
}

TEST(BorderPrecomputeTest, CrossBorderCoversBorderNodes) {
  Built b = Make(300, 480, 5, 8);
  // Every border node trivially lies on a border-pair shortest path (as an
  // endpoint), so it must be classified cross-border.
  for (graph::NodeId v : b.pre.borders.border_nodes) {
    EXPECT_TRUE(b.pre.cross_border[v]) << v;
  }
}

TEST(BorderPrecomputeTest, SomeNodesAreLocal) {
  Built b = Make(500, 800, 6, 4);
  size_t local = 0;
  for (graph::NodeId v = 0; v < b.g.num_nodes(); ++v) {
    if (!b.pre.cross_border[v]) ++local;
  }
  // The §4.1 optimization only helps if a meaningful share of nodes is
  // local.
  EXPECT_GT(local, b.g.num_nodes() / 20);
}

TEST(BorderPrecomputeTest, NeededRegionsContainTrueShortestPathRegions) {
  // The NR correctness invariant: for border nodes bs in Ri and bt in Rj,
  // the regions of every node on a shortest bs->bt path are in the needed
  // set of (Ri, Rj).
  Built b = Make(400, 640, 7, 8);
  const auto& part = b.pre.part;
  int checked = 0;
  for (graph::RegionId i = 0; i < 8 && checked < 12; ++i) {
    if (b.pre.borders.region_border[i].empty()) continue;
    const graph::NodeId bs = b.pre.borders.region_border[i].front();
    for (graph::RegionId j = 0; j < 8 && checked < 12; ++j) {
      if (b.pre.borders.region_border[j].empty()) continue;
      const graph::NodeId bt = b.pre.borders.region_border[j].back();
      if (bs == bt) continue;
      graph::Path p = algo::DijkstraPath(b.g, bs, bt);
      ASSERT_TRUE(p.found());
      auto needed = b.pre.NeededRegions(i, j);
      // Recorded ties may differ; the invariant that must hold is that the
      // needed-set subgraph contains *some* path of optimal length. Verify
      // with a filtered Dijkstra.
      std::vector<bool> region_ok(8, false);
      for (graph::RegionId r : needed) region_ok[r] = true;
      algo::SearchTree tree = algo::DijkstraSearch(
          b.g, bs, bt, [&](graph::NodeId, const graph::Graph::Arc& arc) {
            return region_ok[part.node_region[arc.to]];
          });
      EXPECT_EQ(tree.dist[bt], p.dist) << i << "->" << j;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(BorderPrecomputeTest, RecordsPrecomputeTime) {
  Built b = Make(200, 320, 8, 4);
  EXPECT_GT(b.pre.seconds, 0.0);
}

TEST(BorderPrecomputeTest, RejectsMismatchedPartitioning) {
  graph::Graph g = SmallNetwork(100, 160, 9);
  partition::Partitioning bad;
  bad.num_regions = 2;
  bad.node_region = {0, 1};  // wrong size
  EXPECT_FALSE(ComputeBorderPrecompute(g, bad).ok());
}

}  // namespace
}  // namespace airindex::core
