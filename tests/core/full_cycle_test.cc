#include "core/full_cycle.h"

#include <gtest/gtest.h>

#include <map>

namespace airindex::core {
namespace {

using broadcast::BroadcastChannel;
using broadcast::BroadcastCycle;
using broadcast::ClientSession;
using broadcast::CycleBuilder;
using broadcast::ReceivedSegment;
using broadcast::Segment;
using broadcast::SegmentType;

BroadcastCycle MakeCycle() {
  CycleBuilder b;
  for (uint32_t i = 0; i < 4; ++i) {
    Segment s;
    s.type = i < 2 ? SegmentType::kNetworkData : SegmentType::kAuxData;
    s.id = i;
    s.payload.assign(700 + i * 100, static_cast<uint8_t>(i + 1));
    b.Add(std::move(s));
  }
  return std::move(b).Finalize(false).value();
}

TEST(FullCycleTest, DeliversEverySegmentOnce) {
  BroadcastCycle cycle = MakeCycle();
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 3);  // tune in mid-cycle
  device::MemoryTracker mem;
  std::map<uint32_t, ReceivedSegment> got;
  Status st = ReceiveFullCycle(
      session, mem, [](const broadcast::ReceivedSegment&) { return true; },
      [&](ReceivedSegment& seg) {
        EXPECT_TRUE(got.emplace(seg.segment_index, std::move(seg)).second);
      },
      4);
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(got.size(), 4u);
  for (auto& [si, seg] : got) {
    EXPECT_TRUE(seg.complete);
    for (uint8_t byte : seg.payload) {
      EXPECT_EQ(byte, static_cast<uint8_t>(seg.segment_id + 1));
    }
  }
  EXPECT_EQ(session.tuned_packets(), cycle.total_packets());
}

TEST(FullCycleTest, RepairsLostDataSegments) {
  BroadcastCycle cycle = MakeCycle();
  BroadcastChannel channel(&cycle, 0.2, 77);
  ClientSession session(&channel, 0);
  device::MemoryTracker mem;
  std::map<uint32_t, ReceivedSegment> got;
  Status st = ReceiveFullCycle(
      session, mem, [](const broadcast::ReceivedSegment& s) { return s.type == SegmentType::kNetworkData; },
      [&](ReceivedSegment& seg) {
        got.emplace(seg.segment_index, std::move(seg));
      },
      16);
  ASSERT_TRUE(st.ok());
  for (auto& [si, seg] : got) {
    if (seg.type == SegmentType::kNetworkData) {
      EXPECT_TRUE(seg.complete) << si;
    }
  }
  // Loss forces extra listening beyond one cycle.
  EXPECT_GT(session.tuned_packets(), cycle.total_packets());
}

TEST(FullCycleTest, NonRepairableSegmentsDeliveredIncomplete) {
  BroadcastCycle cycle = MakeCycle();
  BroadcastChannel channel(&cycle, 0.35, 13);
  ClientSession session(&channel, 0);
  device::MemoryTracker mem;
  bool any_incomplete_aux = false;
  Status st = ReceiveFullCycle(
      session, mem, [](const broadcast::ReceivedSegment& s) { return s.type == SegmentType::kNetworkData; },
      [&](ReceivedSegment& seg) {
        if (seg.type == SegmentType::kAuxData && !seg.complete) {
          any_incomplete_aux = true;
        }
      },
      16);
  ASSERT_TRUE(st.ok());
  // 35% loss over ~12 aux packets: holes are near-certain.
  EXPECT_TRUE(any_incomplete_aux);
}

TEST(FullCycleTest, ChargesRawBytesToMemory) {
  BroadcastCycle cycle = MakeCycle();
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 0);
  device::MemoryTracker mem;
  ReceiveFullCycle(
      session, mem, [](const broadcast::ReceivedSegment&) { return true; },
      [](ReceivedSegment&) {}, 2);
  EXPECT_GE(mem.peak(), cycle.TotalPayloadBytes());
}

}  // namespace
}  // namespace airindex::core
