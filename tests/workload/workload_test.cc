#include "workload/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "algo/dijkstra.h"
#include "partition/kd_tree.h"
#include "testing/test_graphs.h"

namespace airindex::workload {
namespace {

using testing_support::SmallNetwork;

TEST(WorkloadTest, GeneratesRequestedCount) {
  graph::Graph g = SmallNetwork();
  auto w = GenerateWorkload(g, 50, 1);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->queries.size(), 50u);
}

TEST(WorkloadTest, SourcesAndTargetsDistinct) {
  graph::Graph g = SmallNetwork();
  auto w = GenerateWorkload(g, 100, 2);
  ASSERT_TRUE(w.ok());
  for (const auto& q : w->queries) {
    EXPECT_NE(q.source, q.target);
    EXPECT_LT(q.source, g.num_nodes());
    EXPECT_LT(q.target, g.num_nodes());
  }
}

TEST(WorkloadTest, GroundTruthMatchesDijkstra) {
  graph::Graph g = SmallNetwork(200, 320, 3);
  auto w = GenerateWorkload(g, 20, 3);
  ASSERT_TRUE(w.ok());
  for (const auto& q : w->queries) {
    EXPECT_EQ(q.true_dist, algo::DijkstraPath(g, q.source, q.target).dist);
  }
}

TEST(WorkloadTest, TunePhaseInUnitInterval) {
  graph::Graph g = SmallNetwork();
  auto w = GenerateWorkload(g, 100, 4);
  ASSERT_TRUE(w.ok());
  for (const auto& q : w->queries) {
    EXPECT_GE(q.tune_phase, 0.0);
    EXPECT_LT(q.tune_phase, 1.0);
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  graph::Graph g = SmallNetwork();
  auto a = GenerateWorkload(g, 30, 5);
  auto b = GenerateWorkload(g, 30, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(a->queries[i].source, b->queries[i].source);
    EXPECT_EQ(a->queries[i].target, b->queries[i].target);
    EXPECT_DOUBLE_EQ(a->queries[i].tune_phase, b->queries[i].tune_phase);
  }
}

TEST(WorkloadTest, BucketsPartitionTheWorkload) {
  graph::Graph g = SmallNetwork(500, 800, 6);
  auto w = GenerateWorkload(g, 200, 6);
  ASSERT_TRUE(w.ok());
  auto buckets = BucketizeByLength(*w, 4);
  ASSERT_EQ(buckets.size(), 4u);
  size_t total = 0;
  for (const auto& b : buckets) total += b.size();
  EXPECT_EQ(total, 200u);
}

TEST(WorkloadTest, BucketsAreOrderedByLength) {
  graph::Graph g = SmallNetwork(500, 800, 7);
  auto w = GenerateWorkload(g, 200, 7);
  ASSERT_TRUE(w.ok());
  auto buckets = BucketizeByLength(*w, 4);
  const graph::Dist max_dist = MaxTrueDist(*w);
  for (int b = 0; b < 4; ++b) {
    const double lo = static_cast<double>(max_dist + 1) * b / 4;
    const double hi = static_cast<double>(max_dist + 1) * (b + 1) / 4;
    for (size_t qi : buckets[b]) {
      const auto d = static_cast<double>(w->queries[qi].true_dist);
      EXPECT_GE(d, lo - 1.0);
      EXPECT_LE(d, hi + 1.0);
    }
  }
}

TEST(WorkloadTest, TinyGraphRejected) {
  graph::GraphBuilder b;
  b.AddNode({0, 0});
  graph::Graph g = std::move(b).Build().value();
  EXPECT_FALSE(GenerateWorkload(g, 5, 1).ok());
}

// ---------------------------------------------------------------------------
// WorkloadSpec distributions
// ---------------------------------------------------------------------------

/// Fraction of queries whose destination is among the most popular tenth
/// of distinct destinations.
double TopDecileDestinationShare(const Workload& w, size_t num_nodes) {
  std::vector<size_t> hits(num_nodes, 0);
  for (const auto& q : w.queries) ++hits[q.target];
  std::sort(hits.begin(), hits.end(), std::greater<>());
  const size_t decile = std::max<size_t>(1, num_nodes / 10);
  size_t top = 0;
  for (size_t i = 0; i < decile; ++i) top += hits[i];
  return static_cast<double>(top) / static_cast<double>(w.queries.size());
}

TEST(WorkloadSpecTest, DefaultSpecMatchesLegacyOverloadExactly) {
  graph::Graph g = SmallNetwork();
  WorkloadSpec spec;
  spec.count = 40;
  spec.seed = 11;
  auto a = GenerateWorkload(g, spec);
  auto b = GenerateWorkload(g, 40, 11);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(a->queries[i].source, b->queries[i].source);
    EXPECT_EQ(a->queries[i].target, b->queries[i].target);
    EXPECT_EQ(a->queries[i].tune_phase, b->queries[i].tune_phase);
    EXPECT_EQ(a->queries[i].true_dist, b->queries[i].true_dist);
  }
}

TEST(WorkloadSpecTest, GenerationIsDeterministicPerSeedAndSkewed) {
  graph::Graph g = SmallNetwork(300, 480, 9);
  WorkloadSpec spec;
  spec.count = 400;
  spec.seed = 21;
  spec.dest = WorkloadSpec::Dest::kZipf;
  spec.zipf_s = 1.5;

  auto a = GenerateWorkload(g, spec);
  auto b = GenerateWorkload(g, spec);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < spec.count; ++i) {
    EXPECT_EQ(a->queries[i].source, b->queries[i].source);
    EXPECT_EQ(a->queries[i].target, b->queries[i].target);
    EXPECT_EQ(a->queries[i].tune_phase, b->queries[i].tune_phase);
  }

  // Different seeds sample different streams.
  WorkloadSpec other = spec;
  other.seed = 22;
  auto c = GenerateWorkload(g, other);
  ASSERT_TRUE(c.ok());
  bool any_diff = false;
  for (size_t i = 0; i < spec.count; ++i) {
    any_diff |= a->queries[i].target != c->queries[i].target;
  }
  EXPECT_TRUE(any_diff);
}

TEST(WorkloadSpecTest, ZipfActuallySkewsDestinations) {
  graph::Graph g = SmallNetwork(300, 480, 9);
  WorkloadSpec uniform;
  uniform.count = 400;
  uniform.seed = 33;
  WorkloadSpec zipf = uniform;
  zipf.dest = WorkloadSpec::Dest::kZipf;
  zipf.zipf_s = 1.5;

  auto uw = GenerateWorkload(g, uniform);
  auto zw = GenerateWorkload(g, zipf);
  ASSERT_TRUE(uw.ok() && zw.ok());
  const double uniform_share = TopDecileDestinationShare(*uw, g.num_nodes());
  const double zipf_share = TopDecileDestinationShare(*zw, g.num_nodes());
  // Uniform puts ~10-25% of queries on the busiest decile (small-sample
  // noise); a 1.5-exponent Zipf concentrates well over half there.
  EXPECT_GT(zipf_share, 0.5);
  EXPECT_GT(zipf_share, uniform_share + 0.2);
}

TEST(WorkloadSpecTest, ClusteredSourcesLandInRequestedCells) {
  graph::Graph g = SmallNetwork(300, 480, 10);
  WorkloadSpec spec;
  spec.count = 120;
  spec.seed = 44;
  spec.source = WorkloadSpec::Source::kClustered;
  spec.partition_regions = 8;
  spec.source_regions = {2, 5};

  auto w = GenerateWorkload(g, spec);
  ASSERT_TRUE(w.ok()) << w.status().ToString();
  auto tree = partition::KdTreePartitioner::Build(g, 8).value();
  for (const auto& q : w->queries) {
    const graph::RegionId region = tree.RegionOf(g.Coord(q.source));
    EXPECT_TRUE(region == 2 || region == 5) << "region " << region;
  }
}

TEST(WorkloadSpecTest, ClusteredSourcesRequireValidRegions) {
  graph::Graph g = SmallNetwork();
  WorkloadSpec spec;
  spec.count = 10;
  spec.source = WorkloadSpec::Source::kClustered;
  EXPECT_FALSE(GenerateWorkload(g, spec).ok());  // no regions named
  spec.source_regions = {99};
  EXPECT_FALSE(GenerateWorkload(g, spec).ok());  // out of range
}

TEST(WorkloadSpecTest, RushHourConcentratesTunePhases) {
  graph::Graph g = SmallNetwork();
  WorkloadSpec spec;
  spec.count = 200;
  spec.seed = 55;
  spec.phase = WorkloadSpec::Phase::kRushHour;
  spec.phase_peak = 0.35;
  spec.phase_width = 0.08;

  auto w = GenerateWorkload(g, spec);
  ASSERT_TRUE(w.ok());
  for (const auto& q : w->queries) {
    ASSERT_GE(q.tune_phase, 0.0);
    ASSERT_LT(q.tune_phase, 1.0);
    // Triangular burst: every phase within peak +/- width.
    EXPECT_GE(q.tune_phase, spec.phase_peak - spec.phase_width - 1e-12);
    EXPECT_LE(q.tune_phase, spec.phase_peak + spec.phase_width + 1e-12);
  }
}

TEST(WorkloadSpecTest, BucketizeStaysCorrectOnSkewedWorkloads) {
  graph::Graph g = SmallNetwork(400, 640, 12);
  WorkloadSpec spec;
  spec.count = 250;
  spec.seed = 66;
  spec.dest = WorkloadSpec::Dest::kZipf;
  spec.zipf_s = 1.3;
  auto w = GenerateWorkload(g, spec);
  ASSERT_TRUE(w.ok());

  auto buckets = BucketizeByLength(*w, 4);
  ASSERT_EQ(buckets.size(), 4u);
  const graph::Dist max_dist = MaxTrueDist(*w);
  std::vector<bool> seen(w->queries.size(), false);
  for (int b = 0; b < 4; ++b) {
    for (size_t qi : buckets[b]) {
      ASSERT_LT(qi, w->queries.size());
      EXPECT_FALSE(seen[qi]);  // each query in exactly one bucket
      seen[qi] = true;
      const auto expected = std::min<int>(
          static_cast<int>(static_cast<unsigned long long>(
                               w->queries[qi].true_dist) *
                           4 / (max_dist + 1)),
          3);
      EXPECT_EQ(expected, b);
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](bool s) { return s; }));
}

}  // namespace
}  // namespace airindex::workload
