#include "workload/workload.h"

#include <gtest/gtest.h>

#include "algo/dijkstra.h"
#include "testing/test_graphs.h"

namespace airindex::workload {
namespace {

using testing_support::SmallNetwork;

TEST(WorkloadTest, GeneratesRequestedCount) {
  graph::Graph g = SmallNetwork();
  auto w = GenerateWorkload(g, 50, 1);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->queries.size(), 50u);
}

TEST(WorkloadTest, SourcesAndTargetsDistinct) {
  graph::Graph g = SmallNetwork();
  auto w = GenerateWorkload(g, 100, 2);
  ASSERT_TRUE(w.ok());
  for (const auto& q : w->queries) {
    EXPECT_NE(q.source, q.target);
    EXPECT_LT(q.source, g.num_nodes());
    EXPECT_LT(q.target, g.num_nodes());
  }
}

TEST(WorkloadTest, GroundTruthMatchesDijkstra) {
  graph::Graph g = SmallNetwork(200, 320, 3);
  auto w = GenerateWorkload(g, 20, 3);
  ASSERT_TRUE(w.ok());
  for (const auto& q : w->queries) {
    EXPECT_EQ(q.true_dist, algo::DijkstraPath(g, q.source, q.target).dist);
  }
}

TEST(WorkloadTest, TunePhaseInUnitInterval) {
  graph::Graph g = SmallNetwork();
  auto w = GenerateWorkload(g, 100, 4);
  ASSERT_TRUE(w.ok());
  for (const auto& q : w->queries) {
    EXPECT_GE(q.tune_phase, 0.0);
    EXPECT_LT(q.tune_phase, 1.0);
  }
}

TEST(WorkloadTest, DeterministicForSeed) {
  graph::Graph g = SmallNetwork();
  auto a = GenerateWorkload(g, 30, 5);
  auto b = GenerateWorkload(g, 30, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(a->queries[i].source, b->queries[i].source);
    EXPECT_EQ(a->queries[i].target, b->queries[i].target);
    EXPECT_DOUBLE_EQ(a->queries[i].tune_phase, b->queries[i].tune_phase);
  }
}

TEST(WorkloadTest, BucketsPartitionTheWorkload) {
  graph::Graph g = SmallNetwork(500, 800, 6);
  auto w = GenerateWorkload(g, 200, 6);
  ASSERT_TRUE(w.ok());
  auto buckets = BucketizeByLength(*w, 4);
  ASSERT_EQ(buckets.size(), 4u);
  size_t total = 0;
  for (const auto& b : buckets) total += b.size();
  EXPECT_EQ(total, 200u);
}

TEST(WorkloadTest, BucketsAreOrderedByLength) {
  graph::Graph g = SmallNetwork(500, 800, 7);
  auto w = GenerateWorkload(g, 200, 7);
  ASSERT_TRUE(w.ok());
  auto buckets = BucketizeByLength(*w, 4);
  const graph::Dist max_dist = MaxTrueDist(*w);
  for (int b = 0; b < 4; ++b) {
    const double lo = static_cast<double>(max_dist + 1) * b / 4;
    const double hi = static_cast<double>(max_dist + 1) * (b + 1) / 4;
    for (size_t qi : buckets[b]) {
      const auto d = static_cast<double>(w->queries[qi].true_dist);
      EXPECT_GE(d, lo - 1.0);
      EXPECT_LE(d, hi + 1.0);
    }
  }
}

TEST(WorkloadTest, TinyGraphRejected) {
  graph::GraphBuilder b;
  b.AddNode({0, 0});
  graph::Graph g = std::move(b).Build().value();
  EXPECT_FALSE(GenerateWorkload(g, 5, 1).ok());
}

}  // namespace
}  // namespace airindex::workload
