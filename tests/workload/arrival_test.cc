#include "workload/arrival.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "testing/test_graphs.h"
#include "workload/workload.h"

namespace airindex::workload {
namespace {

using testing_support::SmallNetwork;

ArrivalSpec Poisson(double rate, uint64_t seed = 0) {
  ArrivalSpec a;
  a.kind = ArrivalSpec::Kind::kPoisson;
  a.rate_per_second = rate;
  a.seed = seed;
  return a;
}

TEST(ArrivalTest, UniformIsEvenlySpaced) {
  ArrivalSpec a;
  a.kind = ArrivalSpec::Kind::kUniform;
  a.rate_per_second = 8.0;  // one client every 125 ms
  auto arrivals = GenerateArrivals(a, 5, 42).value();
  ASSERT_EQ(arrivals.size(), 5u);
  for (size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_DOUBLE_EQ(arrivals[i], static_cast<double>(i) * 125.0);
  }
}

TEST(ArrivalTest, DeterministicAndSeedSensitive) {
  for (auto kind :
       {ArrivalSpec::Kind::kPoisson, ArrivalSpec::Kind::kRushHour}) {
    ArrivalSpec a;
    a.kind = kind;
    a.rate_per_second = 20.0;
    a.seed = 7;
    auto first = GenerateArrivals(a, 64, 0).value();
    auto second = GenerateArrivals(a, 64, 0).value();
    EXPECT_EQ(first, second);
    a.seed = 8;
    auto other = GenerateArrivals(a, 64, 0).value();
    EXPECT_NE(first, other);
  }
}

TEST(ArrivalTest, TimestampsAreNonDecreasingAndNonNegative) {
  for (auto kind :
       {ArrivalSpec::Kind::kUniform, ArrivalSpec::Kind::kPoisson,
        ArrivalSpec::Kind::kRushHour}) {
    ArrivalSpec a;
    a.kind = kind;
    a.rate_per_second = 50.0;
    auto arrivals = GenerateArrivals(a, 256, 11).value();
    ASSERT_EQ(arrivals.size(), 256u);
    EXPECT_GE(arrivals.front(), 0.0);
    EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  }
}

TEST(ArrivalTest, PoissonMeanInterArrivalMatchesRate) {
  const double rate = 40.0;
  auto arrivals = GenerateArrivals(Poisson(rate, 5), 2000, 0).value();
  const double mean_gap_ms = arrivals.back() / 1999.0;
  // Mean inter-arrival of a rate-40 process is 25 ms; a 2000-sample
  // estimate lands well within 10%.
  EXPECT_NEAR(mean_gap_ms, 25.0, 2.5);
}

TEST(ArrivalTest, RushHourConcentratesArrivalsInTheBurst) {
  ArrivalSpec a;
  a.kind = ArrivalSpec::Kind::kRushHour;
  a.rate_per_second = 10.0;
  a.peak_seconds = 20.0;
  a.width_seconds = 5.0;
  a.peak_multiplier = 8.0;
  a.seed = 13;
  auto arrivals = GenerateArrivals(a, 512, 0).value();
  // Compare the burst window against an equal-width off-peak window that
  // the stream provably spans (arrivals run from ~0 to well past 30 s).
  size_t in_burst = 0, off_peak = 0;
  for (double ms : arrivals) {
    const double s = ms / 1000.0;
    if (s >= 15.0 && s < 25.0) ++in_burst;
    if (s >= 0.0 && s < 10.0) ++off_peak;
  }
  EXPECT_GT(in_burst, 2 * off_peak);
}

TEST(ArrivalTest, RejectsInvalidSpecs) {
  ArrivalSpec a;
  EXPECT_FALSE(GenerateArrivals(a, 4, 1).ok());  // kNone
  a.kind = ArrivalSpec::Kind::kPoisson;
  a.rate_per_second = 0.0;
  EXPECT_FALSE(GenerateArrivals(a, 4, 1).ok());
  a.kind = ArrivalSpec::Kind::kRushHour;
  a.rate_per_second = 10.0;
  a.width_seconds = 0.0;
  EXPECT_FALSE(GenerateArrivals(a, 4, 1).ok());
  a.width_seconds = 5.0;
  a.peak_multiplier = 0.5;
  EXPECT_FALSE(GenerateArrivals(a, 4, 1).ok());
}

TEST(ArrivalTest, WorkloadArrivalsFillTimestampsWithoutPerturbingQueries) {
  graph::Graph g = SmallNetwork(200, 320, 31);
  WorkloadSpec plain;
  plain.count = 24;
  plain.seed = 99;
  Workload without = GenerateWorkload(g, plain).value();

  WorkloadSpec with = plain;
  with.arrival = Poisson(30.0);
  Workload withArrivals = GenerateWorkload(g, with).value();

  ASSERT_EQ(without.queries.size(), withArrivals.queries.size());
  for (size_t i = 0; i < without.queries.size(); ++i) {
    // The query population is bit-identical — arrivals come from their own
    // salted stream, so enabling them never changes what clients ask.
    EXPECT_EQ(without.queries[i].source, withArrivals.queries[i].source);
    EXPECT_EQ(without.queries[i].target, withArrivals.queries[i].target);
    EXPECT_EQ(without.queries[i].tune_phase,
              withArrivals.queries[i].tune_phase);
    // No arrival process -> the sentinel; with one -> real timestamps.
    EXPECT_LT(without.queries[i].arrival_ms, 0.0);
    EXPECT_GE(withArrivals.queries[i].arrival_ms, 0.0);
  }
}

}  // namespace
}  // namespace airindex::workload
