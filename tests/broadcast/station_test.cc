#include "broadcast/station.h"

#include <gtest/gtest.h>

#include <vector>

#include "broadcast/channel.h"
#include "broadcast/cycle.h"

namespace airindex::broadcast {
namespace {

BroadcastCycle MakeCycle(std::vector<size_t> segment_bytes,
                         size_t index_segment = SIZE_MAX) {
  CycleBuilder builder;
  for (size_t i = 0; i < segment_bytes.size(); ++i) {
    Segment seg;
    seg.type = i == index_segment ? SegmentType::kGlobalIndex
                                  : SegmentType::kNetworkData;
    seg.id = static_cast<uint32_t>(i);
    seg.is_index = i == index_segment;
    seg.payload.assign(segment_bytes[i], static_cast<uint8_t>(i));
    builder.Add(std::move(seg));
  }
  return std::move(builder)
      .Finalize(/*require_index=*/index_segment != SIZE_MAX)
      .value();
}

TEST(BroadcastChannelStrideTest, DefaultStrideMatchesHistoricalDecisions) {
  // The sub-channel constructor with stride 1 / offset 0 must make the
  // exact decision of the historical two-argument form for every position
  // and loss model — the batch engine's replays depend on it.
  BroadcastCycle cycle = MakeCycle({400, 200, 700});
  const uint64_t seed = 0xFEEDFACEu;
  for (LossModel loss : {LossModel::Independent(0.02),
                         LossModel::Bursty(0.05, 8), LossModel::None()}) {
    BroadcastChannel legacy(&cycle, loss, seed);
    BroadcastChannel strided(&cycle, loss, seed, /*slot_stride=*/1,
                             /*slot_offset=*/0);
    for (uint64_t pos = 0; pos < 4096; ++pos) {
      ASSERT_EQ(legacy.IsLost(pos), strided.IsLost(pos)) << pos;
    }
  }
}

TEST(BroadcastChannelStrideTest, SubchannelsShareThePhysicalRealization) {
  // Sub-channel c's logical position p occupies physical slot p*K + c, and
  // all sub-channels share one seed: the fade a full-rate observer sees at
  // a slot is exactly what the sub-channel client sees at the mapped
  // logical position.
  BroadcastCycle cycle = MakeCycle({400, 200, 700});
  const uint64_t seed = 77;
  const LossModel loss = LossModel::Bursty(0.10, 6);
  const uint32_t K = 4;
  BroadcastChannel physical(&cycle, loss, seed);
  for (uint32_t c = 0; c < K; ++c) {
    BroadcastChannel sub(&cycle, loss, seed, K, c);
    for (uint64_t p = 0; p < 1024; ++p) {
      ASSERT_EQ(sub.PhysicalSlot(p), p * K + c);
      ASSERT_EQ(sub.IsLost(p), physical.IsLost(p * K + c)) << c << " " << p;
    }
  }
}

TEST(BroadcastChannelStrideTest, InterleavingSpreadsBursts) {
  // Classic interleaving on a burst-error channel: a physical fade of B
  // consecutive slots spans only ~B/K consecutive packets of each
  // K-way-interleaved logical stream, so the longest hole any sub-channel
  // client sees is a fraction of the longest physical fade.
  BroadcastCycle cycle = MakeCycle({4000});
  const LossModel loss = LossModel::Bursty(0.08, 12);
  const uint32_t K = 4;
  const uint64_t kLogicalSpan = 20000;

  BroadcastChannel physical(&cycle, loss, 99);
  uint64_t run = 0, physical_max = 0;
  for (uint64_t s = 0; s < kLogicalSpan * K; ++s) {
    run = physical.IsLost(s) ? run + 1 : 0;
    physical_max = std::max(physical_max, run);
  }
  ASSERT_GE(physical_max, 12u);  // at least one full fade block observed

  for (uint32_t c = 0; c < K; ++c) {
    BroadcastChannel sub(&cycle, loss, 99, K, c);
    uint64_t sub_run = 0, sub_max = 0;
    for (uint64_t p = 0; p < kLogicalSpan; ++p) {
      sub_run = sub.IsLost(p) ? sub_run + 1 : 0;
      sub_max = std::max(sub_max, sub_run);
    }
    EXPECT_GT(sub_max, 0u) << c;  // losses do reach every sub-channel
    EXPECT_LT(sub_max, physical_max) << c;
  }
}

TEST(StationTest, ClockMapsTimesToPositionsAndBack) {
  BroadcastCycle cycle = MakeCycle({400, 200, 700});
  StationOptions so;
  so.bits_per_second = 1'024'000.0;  // one 128-byte packet per ms
  so.subchannels = 1;
  Station station(&cycle, so);
  EXPECT_DOUBLE_EQ(station.SlotMs(), 1.0);
  EXPECT_DOUBLE_EQ(station.PacketMs(), 1.0);
  EXPECT_DOUBLE_EQ(station.CycleMs(),
                   static_cast<double>(cycle.total_packets()));

  // An arrival mid-packet waits for the next boundary; an arrival exactly
  // on a boundary joins that packet.
  EXPECT_EQ(station.PositionAt(0.0, 0), 0u);
  EXPECT_EQ(station.PositionAt(0.5, 0), 1u);
  EXPECT_EQ(station.PositionAt(7.0, 0), 7u);
  EXPECT_EQ(station.PositionAt(7.25, 0), 8u);
  for (uint64_t p : {0ull, 1ull, 17ull, 1000ull}) {
    EXPECT_EQ(station.PositionAt(station.TimeAtMs(p, 0), 0), p);
  }
}

TEST(StationTest, ShardedClockStretchesLogicalPackets) {
  BroadcastCycle cycle = MakeCycle({400, 200, 700});
  StationOptions so;
  so.bits_per_second = 1'024'000.0;
  so.subchannels = 4;
  Station station(&cycle, so);
  EXPECT_DOUBLE_EQ(station.SlotMs(), 1.0);
  EXPECT_DOUBLE_EQ(station.PacketMs(), 4.0);

  // Sub-channel 2's position p starts at physical slot 4p + 2.
  EXPECT_DOUBLE_EQ(station.TimeAtMs(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(station.TimeAtMs(3, 2), 14.0);
  // Arriving at t=2.0 catches position 0 of sub-channel 2 exactly;
  // arriving any later waits for position 1.
  EXPECT_EQ(station.PositionAt(2.0, 2), 0u);
  EXPECT_EQ(station.PositionAt(2.1, 2), 1u);
  // Clients are assigned to sub-channels round-robin by ordinal.
  EXPECT_EQ(station.SubchannelOf(0), 0u);
  EXPECT_EQ(station.SubchannelOf(5), 1u);
  EXPECT_EQ(station.SubchannelOf(7), 3u);
}

TEST(ClientSessionWaitTest, SegmentDemandMarksContentStart) {
  // Tune in at position 0 of a cycle whose demanded segment starts at
  // packet 5: the doze to the segment is wait, the retrieval is not.
  BroadcastCycle cycle = MakeCycle({500, 300, 700});  // 5 + 3 + 6 packets
  ASSERT_EQ(cycle.SegmentStart(1), 5u);
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 0);
  ReceivedSegment seg = ReceiveSegmentAt(session, 5);
  ASSERT_TRUE(seg.complete);
  EXPECT_EQ(session.wait_packets(), 5u);
  EXPECT_EQ(session.latency_packets(), 5u + 3u);
  EXPECT_EQ(session.tuned_packets(), 3u);
}

TEST(ClientSessionWaitTest, CompleteFromProbeHasZeroWait) {
  // A client that tunes in right at its demanded segment's first packet
  // and consumes it from there waited for nothing.
  BroadcastCycle cycle = MakeCycle({500, 300, 700});
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 5);
  auto probe = session.ReceiveNext();
  ASSERT_TRUE(probe.has_value());
  ReceivedSegment seg = CompleteSegmentFrom(session, *probe);
  ASSERT_TRUE(seg.complete);
  EXPECT_EQ(session.wait_packets(), 0u);
  EXPECT_EQ(session.latency_packets(), 3u);
}

TEST(ClientSessionWaitTest, FirstMarkWins) {
  BroadcastCycle cycle = MakeCycle({500, 300, 700});
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 0);
  ReceiveSegmentAt(session, 5);   // marks content at 5
  ReceiveSegmentAt(session, 8);   // later demand must not move the mark
  EXPECT_EQ(session.wait_packets(), 5u);
}

TEST(ClientSessionWaitTest, UnmarkedSessionWaitedItsWholeLatency) {
  BroadcastCycle cycle = MakeCycle({500, 300, 700});
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 0);
  EXPECT_EQ(session.wait_packets(), 0u);  // nothing listened, nothing waited
  session.ReceiveNext();                  // raw probe, never any content
  session.ReceiveNext();
  EXPECT_EQ(session.wait_packets(), session.latency_packets());
}

}  // namespace
}  // namespace airindex::broadcast
