#include "broadcast/interleave.h"

#include <gtest/gtest.h>

namespace airindex::broadcast {
namespace {

TEST(InterleaveTest, PaperFormula) {
  // m* = sqrt(data/index).
  EXPECT_EQ(OptimalInterleaving(10000, 100), 10u);
  EXPECT_EQ(OptimalInterleaving(400, 100), 2u);
  EXPECT_EQ(OptimalInterleaving(100, 100), 1u);
}

TEST(InterleaveTest, RoundsToNearest) {
  EXPECT_EQ(OptimalInterleaving(500, 100), 2u);  // sqrt(5) ~ 2.24
  EXPECT_EQ(OptimalInterleaving(700, 100), 3u);  // sqrt(7) ~ 2.65
}

TEST(InterleaveTest, DegenerateInputs) {
  EXPECT_EQ(OptimalInterleaving(0, 10), 1u);
  EXPECT_EQ(OptimalInterleaving(10, 0), 1u);
}

TEST(InterleaveTest, NeverBelowOne) {
  EXPECT_EQ(OptimalInterleaving(1, 1000000), 1u);
}

TEST(InterleaveTest, CappedByDataPackets) {
  EXPECT_LE(OptimalInterleaving(4, 1), 4u);
}

}  // namespace
}  // namespace airindex::broadcast
