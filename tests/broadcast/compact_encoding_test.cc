#include <gtest/gtest.h>

#include <vector>

#include "broadcast/serialization.h"
#include "graph/generator.h"
#include "graph/graph.h"

namespace airindex::broadcast {
namespace {

graph::Graph TestGraph(uint32_t nodes = 800, uint64_t seed = 13) {
  graph::GenSpec spec;
  spec.num_nodes = nodes;
  spec.seed = seed;
  return graph::GenerateRoadNetwork(spec).value();
}

std::vector<graph::NodeId> AllNodes(const graph::Graph& g) {
  std::vector<graph::NodeId> nodes(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) nodes[v] = v;
  return nodes;
}

void ExpectSameRecords(const std::vector<NodeRecord>& a,
                       const std::vector<NodeRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    // Coordinates must survive bit-exactly — the client kd-tree mapping
    // depends on it.
    EXPECT_EQ(a[i].coord.x, b[i].coord.x);
    EXPECT_EQ(a[i].coord.y, b[i].coord.y);
    ASSERT_EQ(a[i].arcs.size(), b[i].arcs.size());
    for (size_t k = 0; k < a[i].arcs.size(); ++k) {
      EXPECT_EQ(a[i].arcs[k].to, b[i].arcs[k].to);
      EXPECT_EQ(a[i].arcs[k].weight, b[i].arcs[k].weight);
    }
  }
}

TEST(CompactEncodingTest, RoundTripMatchesLegacyDecode) {
  const graph::Graph g = TestGraph();
  const auto nodes = AllNodes(g);
  const std::vector<uint8_t> legacy =
      EncodeNodeRecords(g, nodes, CycleEncoding::kLegacy);
  const std::vector<uint8_t> compact =
      EncodeNodeRecords(g, nodes, CycleEncoding::kCompact);

  ASSERT_TRUE(ValidateNodeRecords(legacy, CycleEncoding::kLegacy).ok());
  ASSERT_TRUE(ValidateNodeRecords(compact, CycleEncoding::kCompact).ok());

  auto from_legacy = DecodeNodeRecords(legacy, CycleEncoding::kLegacy);
  auto from_compact = DecodeNodeRecords(compact, CycleEncoding::kCompact);
  ASSERT_TRUE(from_legacy.ok());
  ASSERT_TRUE(from_compact.ok()) << from_compact.status().ToString();
  ExpectSameRecords(*from_legacy, *from_compact);
}

TEST(CompactEncodingTest, LegacyDefaultUnchanged) {
  // Callers that never mention an encoding keep the historical byte layout:
  // default-argument calls and explicit kLegacy calls must agree, so every
  // pre-existing reader stays compatible.
  const graph::Graph g = TestGraph(200, 5);
  const auto nodes = AllNodes(g);
  EXPECT_EQ(EncodeNodeRecords(g, nodes),
            EncodeNodeRecords(g, nodes, CycleEncoding::kLegacy));
  EXPECT_EQ(NetworkDataBytes(g),
            NetworkDataBytes(g, CycleEncoding::kLegacy));
  auto decoded = DecodeNodeRecords(EncodeNodeRecords(g, nodes));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), g.num_nodes());
}

TEST(CompactEncodingTest, CompactAtLeast25PercentSmaller) {
  for (uint64_t seed : {1ull, 9ull}) {
    const graph::Graph g = TestGraph(5000, seed);
    const double legacy =
        static_cast<double>(NetworkDataBytes(g, CycleEncoding::kLegacy));
    const double compact =
        static_cast<double>(NetworkDataBytes(g, CycleEncoding::kCompact));
    EXPECT_LE(compact, 0.75 * legacy)
        << "seed " << seed << ": compact " << compact << " legacy "
        << legacy;
  }
}

TEST(CompactEncodingTest, VersionByteIsChecked) {
  const graph::Graph g = TestGraph(50, 2);
  std::vector<uint8_t> compact =
      EncodeNodeRecords(g, AllNodes(g), CycleEncoding::kCompact);
  ASSERT_FALSE(compact.empty());
  ASSERT_EQ(compact[0], kCompactBlobVersion);

  compact[0] ^= 0xFF;
  EXPECT_FALSE(ValidateNodeRecords(compact, CycleEncoding::kCompact).ok());
  NodeRecordCursor cursor(compact, CycleEncoding::kCompact);
  NodeRecord rec;
  EXPECT_FALSE(cursor.Next(&rec));
  EXPECT_FALSE(cursor.status().ok());
}

TEST(CompactEncodingTest, TruncationIsRejected) {
  const graph::Graph g = TestGraph(50, 3);
  const std::vector<uint8_t> compact =
      EncodeNodeRecords(g, AllNodes(g), CycleEncoding::kCompact);
  // Every prefix that cuts into a record must fail validation
  // (all-or-nothing ingest). A bare version byte is the one valid prefix:
  // an empty record sequence.
  for (size_t cut : {compact.size() - 1, compact.size() / 2, size_t{2}}) {
    std::vector<uint8_t> truncated(compact.begin(), compact.begin() + cut);
    EXPECT_FALSE(
        ValidateNodeRecords(truncated, CycleEncoding::kCompact).ok())
        << "cut at " << cut;
  }
  const std::vector<uint8_t> empty_blob = {kCompactBlobVersion};
  EXPECT_TRUE(ValidateNodeRecords(empty_blob, CycleEncoding::kCompact).ok());
}

TEST(CompactEncodingTest, CursorStreamsWithoutAllocatingPerRecord) {
  const graph::Graph g = TestGraph(300, 8);
  const std::vector<uint8_t> compact =
      EncodeNodeRecords(g, AllNodes(g), CycleEncoding::kCompact);
  NodeRecordCursor cursor(compact, CycleEncoding::kCompact);
  NodeRecord rec;
  size_t count = 0;
  while (cursor.Next(&rec)) {
    EXPECT_EQ(rec.id, count);
    EXPECT_EQ(rec.arcs.size(), g.OutDegree(rec.id));
    ++count;
  }
  EXPECT_TRUE(cursor.status().ok()) << cursor.status().ToString();
  EXPECT_EQ(count, g.num_nodes());
}

}  // namespace
}  // namespace airindex::broadcast
