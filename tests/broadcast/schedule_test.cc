// Property suite for the compiled broadcast-disk timeline: every valid
// spec must place every group exactly spin-many times per macro cycle,
// with each repetition airing the group's packets contiguously in cycle
// order — the two invariants segment reassembly and the occurrence-aware
// sleep algebra rely on. Plus the identity of the flat spec, spec
// validation, next-occurrence lookups, and the wait-profile audit
// primitives.

#include "broadcast/schedule.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "broadcast/cycle.h"

namespace airindex::broadcast {
namespace {

/// `index_every > 0` makes every index_every-th segment an index segment
/// (starting at 0); 0 builds a data-only cycle.
BroadcastCycle MakeCycle(size_t segments, size_t bytes_each,
                         size_t index_every) {
  CycleBuilder b;
  for (size_t i = 0; i < segments; ++i) {
    Segment s;
    const bool is_index = index_every > 0 && i % index_every == 0;
    s.type = is_index ? SegmentType::kGlobalIndex : SegmentType::kNetworkData;
    s.is_index = is_index;
    s.id = static_cast<uint32_t>(i);
    s.payload.assign(bytes_each, static_cast<uint8_t>(i + 1));
    b.Add(std::move(s));
  }
  return std::move(b).Finalize(/*require_index=*/index_every > 0).value();
}

/// Deterministic spec family: group g rides disk (g * stride) % disks.
ScheduleSpec MakeSpec(uint32_t groups, std::vector<uint32_t> rates,
                      uint32_t stride) {
  ScheduleSpec spec;
  spec.spin = std::move(rates);
  spec.disk_of_group.resize(groups);
  for (uint32_t g = 0; g < groups; ++g) {
    spec.disk_of_group[g] =
        (g * stride) % static_cast<uint32_t>(spec.spin.size());
  }
  return spec;
}

TEST(ScheduleTest, FlatSpecCompilesToIdentityTimeline) {
  BroadcastCycle cycle = MakeCycle(6, 300, 3);
  auto s = BroadcastSchedule::Compile(&cycle, ScheduleSpec::Flat());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->macro_packets(), cycle.total_packets());
  EXPECT_DOUBLE_EQ(s->Stretch(), 1.0);
  for (uint64_t i = 0; i < s->macro_packets(); ++i) {
    ASSERT_EQ(s->CyclePosAt(i), i);
  }
}

TEST(ScheduleTest, EveryGroupAppearsExactlySpinTimesPerMacroCycle) {
  const std::vector<std::vector<uint32_t>> ladders = {
      {1}, {2, 1}, {4, 2, 1}, {3, 1}, {6, 3, 2}, {5, 2, 1}};
  for (size_t segments : {3u, 7u, 12u}) {
    for (size_t index_every : {0u, 1u, 3u, 4u}) {
      BroadcastCycle cycle = MakeCycle(segments, 260, index_every);
      const std::vector<uint32_t> groups = CycleGroups(cycle);
      const uint32_t n = NumGroups(groups);
      for (const auto& rates : ladders) {
        for (uint32_t stride : {1u, 2u, 5u}) {
          ScheduleSpec spec = MakeSpec(n, rates, stride);
          auto s = BroadcastSchedule::Compile(&cycle, spec);
          ASSERT_TRUE(s.ok());

          // Count occurrences of every flat packet position in one macro
          // cycle; a group's packets must each appear exactly spin times.
          std::vector<uint32_t> seen(cycle.total_packets(), 0);
          for (uint64_t slot = 0; slot < s->macro_packets(); ++slot) {
            ++seen[s->CyclePosAt(slot)];
          }
          for (uint32_t p = 0; p < cycle.total_packets(); ++p) {
            const uint32_t g = groups[cycle.SegmentAt(p)];
            ASSERT_EQ(seen[p], spec.spin[spec.disk_of_group[g]])
                << "segments " << segments << " pos " << p;
          }
        }
      }
    }
  }
}

TEST(ScheduleTest, RepetitionsAirWholeGroupsContiguously) {
  BroadcastCycle cycle = MakeCycle(9, 300, 3);
  const std::vector<uint32_t> groups = CycleGroups(cycle);
  ScheduleSpec spec = MakeSpec(NumGroups(groups), {4, 2, 1}, 1);
  auto s = BroadcastSchedule::Compile(&cycle, spec);
  ASSERT_TRUE(s.ok());

  // Group starts (first packet of the group's range) partition the
  // timeline: from each start, the group's full packet range must follow
  // in cycle order before any other group's packet airs.
  uint64_t slot = 0;
  while (slot < s->macro_packets()) {
    const uint32_t first = s->CyclePosAt(slot);
    const uint32_t si = cycle.SegmentAt(first);
    ASSERT_EQ(first, cycle.SegmentStart(si))
        << "slot " << slot << " does not begin a group";
    const uint32_t len = cycle.segment(si).PacketCount();
    for (uint32_t k = 0; k < len; ++k) {
      ASSERT_EQ(s->CyclePosAt(slot + k), first + k);
    }
    slot += len;
  }
}

TEST(ScheduleTest, RejectsMalformedSpecs) {
  BroadcastCycle cycle = MakeCycle(4, 300, 2);
  const uint32_t n = NumGroups(CycleGroups(cycle));

  ScheduleSpec wrong_size = MakeSpec(n, {2, 1}, 1);
  wrong_size.disk_of_group.pop_back();
  EXPECT_FALSE(BroadcastSchedule::Compile(&cycle, wrong_size).ok());

  ScheduleSpec zero_spin = MakeSpec(n, {2, 0}, 1);
  EXPECT_FALSE(BroadcastSchedule::Compile(&cycle, zero_spin).ok());

  ScheduleSpec bad_disk = MakeSpec(n, {2, 1}, 1);
  bad_disk.disk_of_group[0] = 7;
  EXPECT_FALSE(BroadcastSchedule::Compile(&cycle, bad_disk).ok());

  // Coprime spins whose LCM exceeds kMaxMacroMinorCycles.
  ScheduleSpec huge = MakeSpec(n, {4096, 3}, 1);
  EXPECT_FALSE(BroadcastSchedule::Compile(&cycle, huge).ok());
}

TEST(ScheduleTest, NextSlotOfFindsTheNextRepetitionNotTheNextCycle) {
  BroadcastCycle cycle = MakeCycle(8, 300, 4);
  const std::vector<uint32_t> groups = CycleGroups(cycle);
  ScheduleSpec spec = MakeSpec(NumGroups(groups), {4, 2, 1}, 1);
  auto s = BroadcastSchedule::Compile(&cycle, spec);
  ASSERT_TRUE(s.ok());

  // Exhaustive over one macro cycle: the returned slot carries the asked
  // position, is not before `abs`, and no earlier slot in between carries
  // it — i.e. a spun-up group is caught at its next repetition.
  for (uint64_t abs = 0; abs < s->macro_packets(); abs += 7) {
    for (uint32_t cpos = 0; cpos < cycle.total_packets(); cpos += 11) {
      const uint64_t found = s->NextSlotOf(abs, cpos);
      ASSERT_GE(found, abs);
      ASSERT_EQ(s->CyclePosAt(found), cpos);
      for (uint64_t between = abs; between < found; ++between) {
        ASSERT_NE(s->CyclePosAt(between), cpos)
            << "abs " << abs << " cpos " << cpos;
      }
    }
  }
}

TEST(ScheduleTest, NextIndexCyclePosReturnsAnIndexSegmentStart) {
  BroadcastCycle cycle = MakeCycle(8, 300, 4);
  ScheduleSpec spec = MakeSpec(NumGroups(CycleGroups(cycle)), {2, 1}, 1);
  auto s = BroadcastSchedule::Compile(&cycle, spec);
  ASSERT_TRUE(s.ok());
  for (uint64_t abs = 0; abs < 2 * s->macro_packets(); abs += 5) {
    const uint32_t cpos = s->NextIndexCyclePos(abs);
    const uint32_t si = cycle.SegmentAt(cpos);
    EXPECT_TRUE(cycle.segment(si).is_index);
    EXPECT_EQ(cpos, cycle.SegmentStart(si));
  }
}

TEST(ScheduleTest, WaitProfileOfSingleIndexCycleIsExact) {
  // 4 segments x 2 packets, one index at segment 0. With a single index
  // start the whole cycle is one wrap-around gap of length T: arrivals
  // doze 1..T slots to the next index start, so the exact mean is
  // (T + 1) / 2 and the 5% worst arrivals doze the full gap.
  BroadcastCycle one_index = MakeCycle(4, 2 * kPayloadSize, 4);
  const WaitProfile flat = FlatWaitProfile(one_index);
  const uint64_t total = one_index.total_packets();
  ASSERT_EQ(total, 8u);
  EXPECT_DOUBLE_EQ(flat.mean, static_cast<double>(total + 1) / 2.0);
  EXPECT_GT(flat.p95, flat.mean);

  auto s = BroadcastSchedule::Compile(&one_index, ScheduleSpec::Flat());
  ASSERT_TRUE(s.ok());
  const WaitProfile sched = ScheduleWaitProfile(*s);
  EXPECT_DOUBLE_EQ(sched.mean, flat.mean);
  EXPECT_DOUBLE_EQ(sched.p95, flat.p95);
}

TEST(ScheduleTest, SpinningTheIndexCutsTheWaitProfile) {
  // Sparse index (1 of 8 segments): doubling the index group's spin must
  // cut both wait statistics — this is the profile the plan audit adopts
  // specs by.
  BroadcastCycle cycle = MakeCycle(8, 600, 8);
  const std::vector<uint32_t> groups = CycleGroups(cycle);
  ScheduleSpec spec;
  spec.spin = {2, 1};
  spec.disk_of_group.assign(NumGroups(groups), 1);
  spec.disk_of_group[0] = 0;  // the index segment
  auto s = BroadcastSchedule::Compile(&cycle, spec);
  ASSERT_TRUE(s.ok());
  const WaitProfile flat = FlatWaitProfile(cycle);
  const WaitProfile sched = ScheduleWaitProfile(*s);
  EXPECT_TRUE(sched.BetterThan(flat))
      << "sched mean " << sched.mean << " p95 " << sched.p95 << " vs flat "
      << flat.mean << " / " << flat.p95;
}

TEST(ScheduleTest, SquareRootSpecCollapsesUniformDemandToFlat) {
  BroadcastCycle cycle = MakeCycle(6, 300, 3);
  const std::vector<uint32_t> groups = CycleGroups(cycle);
  const std::vector<uint32_t> packets = GroupPacketCounts(cycle, groups);
  const std::vector<double> uniform(packets.size(), 1.0);
  EXPECT_TRUE(SquareRootSpec(uniform, packets, 3).flat());

  // A strongly skewed profile must not collapse.
  std::vector<double> skewed(packets.size(), 0.01);
  skewed[1] = 10.0;
  const ScheduleSpec spec = SquareRootSpec(skewed, packets, 3);
  ASSERT_FALSE(spec.flat());
  EXPECT_GT(spec.spin[spec.disk_of_group[1]],
            spec.spin[spec.disk_of_group[3]]);
}

}  // namespace
}  // namespace airindex::broadcast
