#include "broadcast/channel.h"

#include <gtest/gtest.h>

#include <limits>

namespace airindex::broadcast {
namespace {

BroadcastCycle MakeCycle(size_t segments, size_t bytes_each) {
  CycleBuilder b;
  for (size_t i = 0; i < segments; ++i) {
    Segment s;
    s.type = i == 0 ? SegmentType::kGlobalIndex : SegmentType::kNetworkData;
    s.is_index = i == 0;
    s.id = static_cast<uint32_t>(i);
    s.payload.assign(bytes_each, static_cast<uint8_t>(i + 1));
    b.Add(std::move(s));
  }
  return std::move(b).Finalize().value();
}

TEST(ChannelTest, LosslessChannelDeliversEverything) {
  BroadcastCycle cycle = MakeCycle(3, 400);
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 0);
  for (uint32_t i = 0; i < cycle.total_packets(); ++i) {
    EXPECT_TRUE(session.ReceiveNext().has_value());
  }
  EXPECT_EQ(session.tuned_packets(), cycle.total_packets());
}

// The historical IsLost converted the 53-bit SplitMix64 draw to a double
// and compared against the rate per packet; the channel now precomputes an
// integer threshold at construction. This replicates the old formula
// verbatim and asserts every loss decision is bit-identical across rates
// (including degenerate and subnormal-adjacent ones) and burst lengths.
TEST(ChannelTest, IntegerThresholdMatchesLegacyDoubleFormula) {
  BroadcastCycle cycle = MakeCycle(2, 300);
  const double rates[] = {0.0,  1e-18, 1e-9, 0.001, 0.02, 0.1,
                          1.0 / 3.0,   0.5,  0.9,   0.999, 1.0, 1.5};
  const uint32_t bursts[] = {1, 4, 16};
  const uint64_t seeds[] = {0x10552, 99, 0xDEADBEEF};
  for (double rate : rates) {
    for (uint32_t burst : bursts) {
      for (uint64_t seed : seeds) {
        BroadcastChannel channel(&cycle, LossModel::Of(rate, burst), seed);
        auto legacy_is_lost = [&](uint64_t abs_pos) {
          if (rate <= 0.0) return false;
          const uint64_t unit = burst > 1 ? abs_pos / burst : abs_pos;
          uint64_t z = seed ^ (unit + 0x9E3779B97f4A7C15ULL);
          z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
          z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
          z ^= z >> 31;
          return static_cast<double>(z >> 11) * 0x1.0p-53 < rate;
        };
        for (uint64_t pos = 0; pos < 5000; ++pos) {
          ASSERT_EQ(channel.IsLost(pos), legacy_is_lost(pos))
              << "rate " << rate << " burst " << burst << " seed " << seed
              << " pos " << pos;
        }
      }
    }
  }
}

TEST(ChannelTest, LossThresholdEdgeCases) {
  // rate <= 0 (and NaN) never lose; rate >= 1 loses every draw.
  EXPECT_EQ(BroadcastChannel::LossThreshold(0.0), 0u);
  EXPECT_EQ(BroadcastChannel::LossThreshold(-0.5), 0u);
  EXPECT_EQ(BroadcastChannel::LossThreshold(
                std::numeric_limits<double>::quiet_NaN()),
            0u);
  EXPECT_EQ(BroadcastChannel::LossThreshold(1.0), 1ULL << 53);
  EXPECT_EQ(BroadcastChannel::LossThreshold(2.0), 1ULL << 53);
  // The smallest positive rate still loses the draw x == 0.
  EXPECT_EQ(BroadcastChannel::LossThreshold(1e-300), 1u);
  // An exactly representable rate maps to an exact (non-rounded-up) bound.
  EXPECT_EQ(BroadcastChannel::LossThreshold(0.5), 1ULL << 52);
}

TEST(ChannelTest, LossIsDeterministicPerPosition) {
  BroadcastCycle cycle = MakeCycle(2, 300);
  BroadcastChannel a(&cycle, 0.3, 99);
  BroadcastChannel b(&cycle, 0.3, 99);
  for (uint64_t pos = 0; pos < 1000; ++pos) {
    EXPECT_EQ(a.IsLost(pos), b.IsLost(pos));
  }
}

TEST(ChannelTest, LossRateRoughlyHolds) {
  BroadcastCycle cycle = MakeCycle(2, 300);
  BroadcastChannel channel(&cycle, 0.1, 7);
  int lost = 0;
  const int trials = 50000;
  for (uint64_t pos = 0; pos < trials; ++pos) {
    if (channel.IsLost(pos)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / trials, 0.1, 0.01);
}

TEST(ChannelTest, BurstLossKeepsLongRunRate) {
  BroadcastCycle cycle = MakeCycle(2, 300);
  BroadcastChannel channel(&cycle, LossModel::Bursty(0.1, 8), 21);
  int lost = 0;
  const int trials = 80000;
  for (uint64_t pos = 0; pos < trials; ++pos) {
    if (channel.IsLost(pos)) ++lost;
  }
  EXPECT_NEAR(static_cast<double>(lost) / trials, 0.1, 0.015);
}

TEST(ChannelTest, BurstLossArrivesInRuns) {
  BroadcastCycle cycle = MakeCycle(2, 300);
  BroadcastChannel channel(&cycle, LossModel::Bursty(0.1, 8), 22);
  // Within an aligned 8-packet block, loss is all-or-nothing.
  for (uint64_t block = 0; block < 2000; ++block) {
    const bool first = channel.IsLost(block * 8);
    for (uint64_t i = 1; i < 8; ++i) {
      EXPECT_EQ(channel.IsLost(block * 8 + i), first) << block;
    }
  }
}

TEST(ChannelTest, SleepIsFree) {
  BroadcastCycle cycle = MakeCycle(3, 400);
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 5);
  session.SleepPackets(100);
  EXPECT_EQ(session.tuned_packets(), 0u);
  EXPECT_EQ(session.position(), 105u);
}

TEST(ChannelTest, SleepUntilCyclePosWrapsForward) {
  BroadcastCycle cycle = MakeCycle(3, 400);  // 12 packets
  ASSERT_EQ(cycle.total_packets(), 12u);
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 10);
  session.SleepUntilCyclePos(2);  // 10 -> 14 (pos 2 of next cycle)
  EXPECT_EQ(session.position(), 14u);
  EXPECT_EQ(session.cycle_pos(), 2u);
  session.SleepUntilCyclePos(2);  // already there: no movement
  EXPECT_EQ(session.position(), 14u);
}

TEST(ChannelTest, LatencyCountsFromTuneIn) {
  BroadcastCycle cycle = MakeCycle(3, 400);
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 7);
  session.ReceiveNext();           // packet 7
  session.SleepPackets(3);
  session.ReceiveNext();           // packet 11
  EXPECT_EQ(session.tuned_packets(), 2u);
  EXPECT_EQ(session.latency_packets(), 11u - 7u + 1u);
}

TEST(ReceiveSegmentTest, AssemblesWholePayload) {
  BroadcastCycle cycle = MakeCycle(3, 400);
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 0);
  const uint32_t start = cycle.SegmentStart(1);
  ReceivedSegment seg = ReceiveSegmentAt(session, start);
  EXPECT_TRUE(seg.complete);
  EXPECT_EQ(seg.segment_id, 1u);
  ASSERT_EQ(seg.payload.size(), 400u);
  for (uint8_t byte : seg.payload) EXPECT_EQ(byte, 2);
}

TEST(ReceiveSegmentTest, LossLeavesHolesAndMask) {
  BroadcastCycle cycle = MakeCycle(2, 2000);
  BroadcastChannel channel(&cycle, 0.4, 3);
  ClientSession session(&channel, 0);
  ReceivedSegment seg = ReceiveSegmentAt(session, cycle.SegmentStart(1));
  // With 40% loss over ~17 packets a hole is near-certain.
  ASSERT_FALSE(seg.complete);
  bool any_missing = false;
  for (size_t p = 0; p < seg.packet_ok.size(); ++p) {
    if (!seg.packet_ok[p]) {
      any_missing = true;
      EXPECT_FALSE(seg.RangeOk(p * kPayloadSize, p * kPayloadSize + 1));
    }
  }
  EXPECT_TRUE(any_missing);
}

TEST(ReceiveSegmentTest, RepairCompletesOverNextCycles) {
  BroadcastCycle cycle = MakeCycle(2, 2000);
  BroadcastChannel channel(&cycle, 0.3, 5);
  ClientSession session(&channel, 0);
  const uint32_t start = cycle.SegmentStart(1);
  ReceivedSegment seg = ReceiveSegmentAt(session, start);
  EXPECT_TRUE(RepairSegment(session, start, &seg, 32));
  EXPECT_TRUE(seg.complete);
  for (uint8_t byte : seg.payload) EXPECT_EQ(byte, 2);
}

TEST(ReceivedSegmentTest, RangeOkBoundaries) {
  ReceivedSegment seg;
  seg.payload.assign(3 * kPayloadSize, 0);
  seg.packet_ok = {true, false, true};
  EXPECT_TRUE(seg.RangeOk(0, kPayloadSize));
  EXPECT_FALSE(seg.RangeOk(0, kPayloadSize + 1));
  EXPECT_FALSE(seg.RangeOk(kPayloadSize, 2 * kPayloadSize));
  EXPECT_TRUE(seg.RangeOk(2 * kPayloadSize, 3 * kPayloadSize));
  EXPECT_TRUE(seg.RangeOk(5, 5));  // empty range
}

}  // namespace
}  // namespace airindex::broadcast
