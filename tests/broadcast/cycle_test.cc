#include "broadcast/cycle.h"

#include <gtest/gtest.h>

namespace airindex::broadcast {
namespace {

Segment MakeSegment(SegmentType type, uint32_t id, size_t bytes,
                    bool is_index = false) {
  Segment s;
  s.type = type;
  s.id = id;
  s.is_index = is_index;
  s.payload.assign(bytes, static_cast<uint8_t>(id));
  return s;
}

TEST(CycleTest, PacketCountRoundsUp) {
  EXPECT_EQ(MakeSegment(SegmentType::kNetworkData, 0, 0).PacketCount(), 1u);
  EXPECT_EQ(MakeSegment(SegmentType::kNetworkData, 0, 1).PacketCount(), 1u);
  EXPECT_EQ(
      MakeSegment(SegmentType::kNetworkData, 0, kPayloadSize).PacketCount(),
      1u);
  EXPECT_EQ(MakeSegment(SegmentType::kNetworkData, 0, kPayloadSize + 1)
                .PacketCount(),
            2u);
}

TEST(CycleTest, EmptyBuilderFails) {
  CycleBuilder b;
  EXPECT_FALSE(std::move(b).Finalize(false).ok());
}

TEST(CycleTest, RequireIndexEnforced) {
  CycleBuilder b;
  b.Add(MakeSegment(SegmentType::kNetworkData, 0, 100));
  EXPECT_FALSE(std::move(b).Finalize(true).ok());
}

BroadcastCycle ThreeSegmentCycle() {
  CycleBuilder b;
  b.Add(MakeSegment(SegmentType::kGlobalIndex, 0, 200, /*is_index=*/true));
  b.Add(MakeSegment(SegmentType::kNetworkData, 1, 500));
  b.Add(MakeSegment(SegmentType::kNetworkData, 2, 50));
  return std::move(b).Finalize().value();
}

TEST(CycleTest, LayoutPositionsAreCumulative) {
  BroadcastCycle c = ThreeSegmentCycle();
  EXPECT_EQ(c.num_segments(), 3u);
  EXPECT_EQ(c.SegmentStart(0), 0u);
  EXPECT_EQ(c.SegmentStart(1), 2u);  // 200 bytes -> 2 packets
  EXPECT_EQ(c.SegmentStart(2), 7u);  // 500 bytes -> 5 packets
  EXPECT_EQ(c.total_packets(), 8u);
}

TEST(CycleTest, SegmentAtCoversEveryPosition) {
  BroadcastCycle c = ThreeSegmentCycle();
  EXPECT_EQ(c.SegmentAt(0), 0u);
  EXPECT_EQ(c.SegmentAt(1), 0u);
  EXPECT_EQ(c.SegmentAt(2), 1u);
  EXPECT_EQ(c.SegmentAt(6), 1u);
  EXPECT_EQ(c.SegmentAt(7), 2u);
}

TEST(CycleTest, PacketViewChunks) {
  BroadcastCycle c = ThreeSegmentCycle();
  PacketView first = c.PacketAt(2);
  EXPECT_EQ(first.segment_index, 1u);
  EXPECT_EQ(first.seq, 0u);
  EXPECT_EQ(first.segment_packets, 5u);
  EXPECT_EQ(first.chunk.size(), kPayloadSize);

  PacketView last = c.PacketAt(6);
  EXPECT_EQ(last.seq, 4u);
  EXPECT_EQ(last.chunk.size(), 500u - 4 * kPayloadSize);
}

TEST(CycleTest, NextIndexWrapsAround) {
  BroadcastCycle c = ThreeSegmentCycle();
  EXPECT_EQ(c.NextIndexStart(0), 0u);  // at the index start
  EXPECT_EQ(c.NextIndexStart(1), 0u);  // inside index -> wraps to next copy
  EXPECT_EQ(c.NextIndexStart(3), 0u);
  // Header offsets are relative and cyclic.
  PacketView view = c.PacketAt(5);
  EXPECT_EQ(view.next_index_offset, 3u);  // 5 -> 8 == 0 (mod 8)
}

TEST(CycleTest, MultipleIndexCopies) {
  CycleBuilder b;
  b.Add(MakeSegment(SegmentType::kGlobalIndex, 0, 100, true));
  b.Add(MakeSegment(SegmentType::kNetworkData, 1, 300));
  b.Add(MakeSegment(SegmentType::kGlobalIndex, 2, 100, true));
  b.Add(MakeSegment(SegmentType::kNetworkData, 3, 300));
  BroadcastCycle c = std::move(b).Finalize().value();
  // Positions: idx@0 (1 pkt), data@1..3, idx@4, data@5..7.
  EXPECT_EQ(c.NextIndexStart(1), 4u);
  EXPECT_EQ(c.NextIndexStart(4), 4u);
  EXPECT_EQ(c.NextIndexStart(5), 0u);
}

TEST(CycleTest, TotalPayloadBytes) {
  BroadcastCycle c = ThreeSegmentCycle();
  EXPECT_EQ(c.TotalPayloadBytes(), 750u);
}

}  // namespace
}  // namespace airindex::broadcast
