#include <gtest/gtest.h>

#include "broadcast/channel.h"
#include "core/repair.h"

namespace airindex::core {
namespace {

using broadcast::BroadcastChannel;
using broadcast::BroadcastCycle;
using broadcast::ClientSession;
using broadcast::CycleBuilder;
using broadcast::ReceivedSegment;
using broadcast::Segment;
using broadcast::SegmentType;

BroadcastCycle MakeCycle(int segments = 6, size_t bytes = 1500) {
  CycleBuilder b;
  for (int i = 0; i < segments; ++i) {
    Segment s;
    s.type = SegmentType::kNetworkData;
    s.id = static_cast<uint32_t>(i);
    s.is_index = i == 0;
    s.payload.assign(bytes, static_cast<uint8_t>(i + 1));
    b.Add(std::move(s));
  }
  return std::move(b).Finalize().value();
}

TEST(CompleteSegmentFromTest, AssemblesFromFirstPacket) {
  BroadcastCycle cycle = MakeCycle();
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, cycle.SegmentStart(2));
  auto first = session.ReceiveNext();
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->seq, 0u);
  ReceivedSegment seg = broadcast::CompleteSegmentFrom(session, *first);
  EXPECT_TRUE(seg.complete);
  EXPECT_EQ(seg.segment_id, 2u);
  for (uint8_t byte : seg.payload) EXPECT_EQ(byte, 3);
}

TEST(CompleteSegmentFromTest, MidSegmentLeavesHeadHoles) {
  BroadcastCycle cycle = MakeCycle();
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, cycle.SegmentStart(2) + 3);
  auto view = session.ReceiveNext();
  ASSERT_TRUE(view.has_value());
  ASSERT_EQ(view->seq, 3u);
  ReceivedSegment seg = broadcast::CompleteSegmentFrom(session, *view);
  EXPECT_FALSE(seg.complete);
  EXPECT_FALSE(seg.packet_ok[0]);
  EXPECT_FALSE(seg.packet_ok[2]);
  EXPECT_TRUE(seg.packet_ok[3]);
  EXPECT_TRUE(seg.packet_ok.back());
}

TEST(RepairAllSegmentsTest, OnePassFixesManySegmentsWithinOneCycle) {
  BroadcastCycle cycle = MakeCycle();
  BroadcastChannel channel(&cycle, 0.25, 99);
  ClientSession session(&channel, 0);

  // Receive every segment once, collecting damage.
  std::vector<ReceivedSegment> segs;
  for (uint32_t i = 0; i < cycle.num_segments(); ++i) {
    segs.push_back(
        broadcast::ReceiveSegmentAt(session, cycle.SegmentStart(i)));
  }
  std::vector<PendingRepair> pending;
  size_t damaged = 0;
  for (uint32_t i = 0; i < segs.size(); ++i) {
    if (!segs[i].complete) {
      pending.push_back({cycle.SegmentStart(i), &segs[i]});
      ++damaged;
    }
  }
  ASSERT_GT(damaged, 1u);  // 25% loss over 78 packets damages many

  const uint64_t before = session.position();
  bool done = RepairAllSegments(session, pending, 32);
  EXPECT_TRUE(done);
  for (const auto& s : segs) EXPECT_TRUE(s.complete);
  // Batched sweeping: repairing all segments should take only a handful of
  // cycles regardless of how many segments were damaged.
  EXPECT_LT(session.position() - before,
            8ull * cycle.total_packets());
}

TEST(RepairAllSegmentsTest, EmptyPendingIsTrue) {
  BroadcastCycle cycle = MakeCycle();
  BroadcastChannel channel(&cycle, 0.0);
  ClientSession session(&channel, 0);
  EXPECT_TRUE(RepairAllSegments(session, {}, 4));
}

TEST(RepairAllSegmentsTest, GivesUpAfterBudget) {
  BroadcastCycle cycle = MakeCycle();
  // Total loss: nothing can ever be repaired.
  BroadcastChannel channel(&cycle, 1.0, 1);
  ClientSession session(&channel, 0);
  ReceivedSegment seg =
      broadcast::ReceiveSegmentAt(session, cycle.SegmentStart(1));
  ASSERT_FALSE(seg.complete);
  std::vector<PendingRepair> pending = {{cycle.SegmentStart(1), &seg}};
  EXPECT_FALSE(RepairAllSegments(session, pending, 3));
}

}  // namespace
}  // namespace airindex::core
