#include "broadcast/serialization.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace airindex::broadcast {
namespace {

using testing_support::SmallNetwork;

TEST(SerializationTest, SingleRecordRoundTrip) {
  graph::Graph g = SmallNetwork(50, 80, 1);
  std::vector<uint8_t> buf;
  EncodeNodeRecord(g, 7, &buf);
  EXPECT_EQ(buf.size(), NodeRecordBytes(g, 7));
  auto records = DecodeNodeRecords(buf);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  const NodeRecord& rec = (*records)[0];
  EXPECT_EQ(rec.id, 7u);
  EXPECT_DOUBLE_EQ(rec.coord.x, g.Coord(7).x);
  EXPECT_DOUBLE_EQ(rec.coord.y, g.Coord(7).y);
  ASSERT_EQ(rec.arcs.size(), g.OutDegree(7));
  for (size_t i = 0; i < rec.arcs.size(); ++i) {
    EXPECT_EQ(rec.arcs[i].to, g.OutArcs(7)[i].to);
    EXPECT_EQ(rec.arcs[i].weight, g.OutArcs(7)[i].weight);
  }
}

TEST(SerializationTest, WholeNetworkRoundTrip) {
  graph::Graph g = SmallNetwork(200, 320, 2);
  std::vector<graph::NodeId> all;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) all.push_back(v);
  std::vector<uint8_t> buf = EncodeNodeRecords(g, all);
  EXPECT_EQ(buf.size(), NetworkDataBytes(g));
  auto records = DecodeNodeRecords(buf);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), g.num_nodes());
  size_t arcs = 0;
  for (const auto& rec : *records) arcs += rec.arcs.size();
  EXPECT_EQ(arcs, g.num_arcs());
}

TEST(SerializationTest, CoordinatesAreBitExact) {
  // Exact doubles are required for client/server kd-region agreement.
  graph::Graph g = SmallNetwork(100, 160, 3);
  std::vector<uint8_t> buf;
  EncodeNodeRecord(g, 42, &buf);
  auto records = DecodeNodeRecords(buf);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(std::bit_cast<uint64_t>((*records)[0].coord.x),
            std::bit_cast<uint64_t>(g.Coord(42).x));
}

TEST(SerializationTest, TruncatedHeaderFails) {
  graph::Graph g = SmallNetwork(50, 80, 4);
  std::vector<uint8_t> buf;
  EncodeNodeRecord(g, 0, &buf);
  buf.resize(10);  // mid-header
  EXPECT_FALSE(DecodeNodeRecords(buf).ok());
}

TEST(SerializationTest, TruncatedAdjacencyFails) {
  graph::Graph g = SmallNetwork(50, 80, 5);
  std::vector<uint8_t> buf;
  EncodeNodeRecord(g, 0, &buf);
  buf.pop_back();
  EXPECT_FALSE(DecodeNodeRecords(buf).ok());
}

TEST(SerializationTest, EmptyBufferDecodesToNothing) {
  auto records = DecodeNodeRecords({});
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

}  // namespace
}  // namespace airindex::broadcast
