// FEC layout arithmetic, CRC-32, and the corrupting channel. The load-
// bearing invariants: the slot mapping is the identity when the code is
// off (byte-identity of every pre-FEC metric), data+parity slots tile the
// physical cycle exactly once, and LogicalAtOrAfterSlot inverts DataSlot.

#include "broadcast/fec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include "broadcast/channel.h"
#include "broadcast/cycle.h"
#include "broadcast/station.h"

namespace airindex::broadcast {
namespace {

TEST(FecSchemeTest, OfRateMapsOverheadToParityCount) {
  EXPECT_FALSE(FecScheme::OfRate(0.0).enabled());
  EXPECT_FALSE(FecScheme::OfRate(-0.5).enabled());
  EXPECT_FALSE(FecScheme::OfRate(std::nan("")).enabled());
  EXPECT_EQ(FecScheme::OfRate(1.0 / 16.0).parity_per_group, 1u);
  EXPECT_EQ(FecScheme::OfRate(0.125).parity_per_group, 2u);
  EXPECT_EQ(FecScheme::OfRate(0.25).parity_per_group, 4u);
  EXPECT_EQ(FecScheme::OfRate(1.0).parity_per_group, 16u);
  // Overheads beyond 1 clamp to one parity symbol per data symbol.
  EXPECT_EQ(FecScheme::OfRate(3.0).parity_per_group, 16u);
  EXPECT_EQ(FecScheme::OfRate(0.25, 8).parity_per_group, 2u);
}

TEST(FecSchemeTest, ValidBounds) {
  EXPECT_TRUE((FecScheme{16, 0}.Valid()));
  EXPECT_TRUE((FecScheme{2, 2}.Valid()));
  EXPECT_TRUE((FecScheme{64, 64}.Valid()));
  EXPECT_FALSE((FecScheme{1, 0}.Valid()));
  EXPECT_FALSE((FecScheme{65, 1}.Valid()));
  EXPECT_FALSE((FecScheme{16, 17}.Valid()));
}

TEST(FecLayoutTest, DisabledLayoutIsTheIdentity) {
  const FecLayout layout(1000, FecScheme::None());
  EXPECT_EQ(layout.phys_cycle_packets(), 1000u);
  for (uint64_t pos : {0ull, 1ull, 999ull, 1000ull, 54321ull}) {
    EXPECT_EQ(layout.DataSlot(pos), pos);
    EXPECT_EQ(layout.LogicalAtOrAfterSlot(pos), pos);
  }
}

TEST(FecLayoutTest, DataAndParitySlotsTileThePhysicalCycle) {
  // L=37, k=16, p=2: groups of 16/16/5 data packets, each followed by its
  // 2 parity packets; P = 37 + 3*2 = 43 slots, every slot hit exactly once.
  const FecLayout layout(37, FecScheme{16, 2});
  EXPECT_EQ(layout.groups_per_cycle(), 3u);
  EXPECT_EQ(layout.phys_cycle_packets(), 43u);
  EXPECT_EQ(layout.GroupDataSize(0), 16u);
  EXPECT_EQ(layout.GroupDataSize(2), 5u);

  for (uint64_t inst = 0; inst < 3; ++inst) {
    std::set<uint64_t> slots;
    for (uint64_t cpos = 0; cpos < 37; ++cpos) {
      slots.insert(layout.DataSlot(inst * 37 + cpos));
    }
    for (uint64_t cpos = 0; cpos < 37; cpos += 16) {  // one member per group
      for (uint32_t j = 0; j < 2; ++j) {
        slots.insert(layout.ParitySlot(inst * 37 + cpos, j));
      }
    }
    ASSERT_EQ(slots.size(), 43u) << "cycle instance " << inst;
    EXPECT_EQ(*slots.begin(), inst * 43);
    EXPECT_EQ(*slots.rbegin(), inst * 43 + 42);
  }
}

TEST(FecLayoutTest, LogicalAtOrAfterSlotInvertsDataSlot) {
  const FecLayout layout(37, FecScheme{16, 2});
  for (uint64_t pos = 0; pos < 3 * 37; ++pos) {
    EXPECT_EQ(layout.LogicalAtOrAfterSlot(layout.DataSlot(pos)), pos) << pos;
  }
  // A parity slot resolves to the next data packet on air.
  const uint64_t parity0 = layout.ParitySlot(0, 0);  // after group 0's data
  EXPECT_EQ(layout.LogicalAtOrAfterSlot(parity0), 16u);
  const uint64_t tail_parity = layout.ParitySlot(36, 1);  // cycle's last slot
  EXPECT_EQ(layout.LogicalAtOrAfterSlot(tail_parity), 37u);  // next cycle
}

TEST(FecLayoutTest, GroupKeySeparatesCycleInstances) {
  const FecLayout layout(37, FecScheme{16, 2});
  // Positions 32..36 (group 2 of instance 0) and 37..52 (group 0 of
  // instance 1) are adjacent on air but belong to different groups.
  EXPECT_NE(layout.GroupKey(36), layout.GroupKey(37));
  EXPECT_EQ(layout.GroupKey(32), layout.GroupKey(36));
  EXPECT_EQ(layout.GroupKey(37), layout.GroupKey(52));
}

TEST(Crc32Test, CheckVectorAndSingleBitSensitivity) {
  // The canonical IEEE 802.3 check value.
  const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(check), 0xCBF43926u);

  uint8_t buf[120];
  for (size_t i = 0; i < sizeof(buf); ++i) {
    buf[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  const uint32_t clean = Crc32(buf);
  for (size_t bit : {0u, 7u, 191u, 700u, 959u}) {
    uint8_t flipped[120];
    std::memcpy(flipped, buf, sizeof(buf));
    flipped[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    EXPECT_NE(Crc32(flipped), clean) << "bit " << bit;
  }
}

BroadcastCycle MakeCycle(std::vector<size_t> segment_bytes) {
  CycleBuilder builder;
  for (size_t i = 0; i < segment_bytes.size(); ++i) {
    Segment seg;
    seg.type = SegmentType::kNetworkData;
    seg.id = static_cast<uint32_t>(i);
    seg.payload.assign(segment_bytes[i], static_cast<uint8_t>(i + 1));
    builder.Add(std::move(seg));
  }
  return std::move(builder).Finalize(/*require_index=*/false).value();
}

TEST(CorruptingChannelTest, CrcDetectionCountsSeparatelyFromLoss) {
  BroadcastCycle cycle = MakeCycle({4000, 2000});
  LossModel loss = LossModel::Of(0.0, 1, /*corrupt_bit=*/1e-4);
  BroadcastChannel channel(&cycle, loss, /*seed=*/99);
  ASSERT_TRUE(channel.corruption_enabled());

  ClientSession session(&channel, 0);
  uint64_t dropped = 0;
  const uint64_t listened = 4 * cycle.total_packets();
  for (uint64_t i = 0; i < listened; ++i) {
    if (!session.ReceiveNext().has_value()) ++dropped;
  }
  // No erasures configured: every discarded packet is a CRC failure.
  EXPECT_GT(session.corrupted_packets(), 0u);
  EXPECT_EQ(session.corrupted_packets(), dropped);
  // ~1e-4 * 1024 bits ~ 9.7% of packets; allow a wide deterministic band.
  EXPECT_LT(session.corrupted_packets(), listened / 2);

  // The corruption stream is salted independently of the loss stream:
  // enabling it must not change which packets are *lost*.
  BroadcastChannel lossy_clean(&cycle, LossModel::Independent(0.05), 7);
  BroadcastChannel lossy_dirty(&cycle, LossModel::Of(0.05, 1, 1e-4), 7);
  for (uint64_t pos = 0; pos < 4096; ++pos) {
    ASSERT_EQ(lossy_clean.IsLost(pos), lossy_dirty.IsLost(pos)) << pos;
  }
}

TEST(CorruptingChannelTest, CleanChannelNeverCorrupts) {
  BroadcastCycle cycle = MakeCycle({4000});
  BroadcastChannel channel(&cycle, LossModel::None(), 5);
  EXPECT_FALSE(channel.corruption_enabled());
  ClientSession session(&channel, 0);
  for (uint64_t i = 0; i < 2 * cycle.total_packets(); ++i) {
    ASSERT_TRUE(session.ReceiveNext().has_value());
  }
  EXPECT_EQ(session.corrupted_packets(), 0u);
}

TEST(FecStationTest, PositionAtInvertsTimeAtMsThroughParity) {
  BroadcastCycle cycle = MakeCycle({4000, 2000, 1000});
  StationOptions so;
  so.fec = FecScheme{16, 2};
  Station station(&cycle, so);
  const FecLayout& layout = station.channel(0).fec();

  // CycleMs stretches by the parity overhead.
  StationOptions plain;
  Station uncoded(&cycle, plain);
  EXPECT_DOUBLE_EQ(
      station.CycleMs() / uncoded.CycleMs(),
      static_cast<double>(layout.phys_cycle_packets()) /
          static_cast<double>(cycle.total_packets()));

  // A client arriving exactly when a data packet starts joins at it.
  for (uint64_t pos : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull}) {
    EXPECT_EQ(station.PositionAt(station.TimeAtMs(pos, 0), 0), pos) << pos;
  }
  // Arriving inside a parity run joins at the next group's first packet.
  const double parity_ms =
      static_cast<double>(layout.ParitySlot(0, 0)) * station.SlotMs();
  EXPECT_EQ(station.PositionAt(parity_ms, 0), 16u);
}

}  // namespace
}  // namespace airindex::broadcast
