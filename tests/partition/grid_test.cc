#include "partition/grid.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace airindex::partition {
namespace {

using testing_support::SmallNetwork;

TEST(GridTest, RejectsZeroDimensions) {
  graph::Graph g = SmallNetwork(50, 80, 1);
  EXPECT_FALSE(GridPartitioner::Build(g, 0, 4).ok());
  EXPECT_FALSE(GridPartitioner::Build(g, 4, 0).ok());
}

TEST(GridTest, RegionCount) {
  graph::Graph g = SmallNetwork(100, 160, 2);
  auto grid = GridPartitioner::Build(g, 4, 8).value();
  EXPECT_EQ(grid.num_regions(), 32u);
}

TEST(GridTest, EveryNodeAssigned) {
  graph::Graph g = SmallNetwork(300, 480, 3);
  auto grid = GridPartitioner::Build(g, 4, 4).value();
  Partitioning part = grid.Partition(g);
  for (graph::RegionId r : part.node_region) EXPECT_LT(r, 16u);
  size_t total = 0;
  for (const auto& nodes : part.region_nodes) total += nodes.size();
  EXPECT_EQ(total, g.num_nodes());
}

TEST(GridTest, RowMajorLayout) {
  graph::GraphBuilder b;
  b.AddNode({0.0, 0.0});
  b.AddNode({100.0, 100.0});
  b.AddBidirectional(0, 1, 1);
  graph::Graph g = std::move(b).Build().value();
  auto grid = GridPartitioner::Build(g, 2, 2).value();
  EXPECT_EQ(grid.RegionOf({1.0, 1.0}), 0u);     // bottom-left
  EXPECT_EQ(grid.RegionOf({99.0, 1.0}), 1u);    // bottom-right
  EXPECT_EQ(grid.RegionOf({1.0, 99.0}), 2u);    // top-left
  EXPECT_EQ(grid.RegionOf({99.0, 99.0}), 3u);   // top-right
}

TEST(GridTest, ClampsOutOfExtentPoints) {
  graph::GraphBuilder b;
  b.AddNode({0.0, 0.0});
  b.AddNode({10.0, 10.0});
  b.AddBidirectional(0, 1, 1);
  graph::Graph g = std::move(b).Build().value();
  auto grid = GridPartitioner::Build(g, 2, 2).value();
  EXPECT_EQ(grid.RegionOf({-5.0, -5.0}), 0u);
  EXPECT_EQ(grid.RegionOf({50.0, 50.0}), 3u);
}

TEST(GridTest, SkewIsWorseThanKdTree) {
  // The paper's §4.1 argument for kd-trees: grid cells can be empty or
  // over-full on clustered data. Our generator is uniform, so just check
  // the grid produces *some* imbalance relative to the perfectly balanced
  // kd leaves (a weak sanity check of the ablation premise).
  graph::Graph g = SmallNetwork(512, 800, 4);
  auto grid = GridPartitioner::Build(g, 4, 4).value();
  Partitioning part = grid.Partition(g);
  size_t min_pop = SIZE_MAX, max_pop = 0;
  for (const auto& nodes : part.region_nodes) {
    min_pop = std::min(min_pop, nodes.size());
    max_pop = std::max(max_pop, nodes.size());
  }
  EXPECT_GT(max_pop, min_pop);
}

}  // namespace
}  // namespace airindex::partition
