#include "partition/kd_tree.h"

#include <gtest/gtest.h>

#include "testing/test_graphs.h"

namespace airindex::partition {
namespace {

using testing_support::SmallNetwork;

TEST(KdTreeTest, RejectsNonPowerOfTwo) {
  graph::Graph g = SmallNetwork(100, 160, 1);
  EXPECT_FALSE(KdTreePartitioner::Build(g, 3).ok());
  EXPECT_FALSE(KdTreePartitioner::Build(g, 0).ok());
  EXPECT_FALSE(KdTreePartitioner::Build(g, 1).ok());
}

TEST(KdTreeTest, RejectsMoreRegionsThanNodes) {
  graph::Graph g = SmallNetwork(16, 20, 1);
  EXPECT_FALSE(KdTreePartitioner::Build(g, 32).ok());
}

TEST(KdTreeTest, SplitCountIsRegionsMinusOne) {
  graph::Graph g = SmallNetwork(200, 320, 2);
  for (uint32_t r : {2u, 4u, 8u, 16u, 32u}) {
    auto kd = KdTreePartitioner::Build(g, r);
    ASSERT_TRUE(kd.ok());
    EXPECT_EQ(kd->splits_bfs().size(), r - 1);
    EXPECT_EQ(kd->num_regions(), r);
  }
}

TEST(KdTreeTest, EveryNodeGetsAValidRegion) {
  graph::Graph g = SmallNetwork(300, 480, 3);
  auto kd = KdTreePartitioner::Build(g, 16).value();
  Partitioning part = kd.Partition(g);
  ASSERT_EQ(part.node_region.size(), g.num_nodes());
  for (graph::RegionId r : part.node_region) EXPECT_LT(r, 16u);
}

TEST(KdTreeTest, MedianSplitBalancesPopulations) {
  graph::Graph g = SmallNetwork(1024, 1600, 4);
  auto kd = KdTreePartitioner::Build(g, 16).value();
  Partitioning part = kd.Partition(g);
  // Median splits keep leaves within a factor ~2 of the average.
  const size_t expected = g.num_nodes() / 16;
  for (graph::RegionId r = 0; r < 16; ++r) {
    EXPECT_GT(part.region_nodes[r].size(), expected / 2) << r;
    EXPECT_LT(part.region_nodes[r].size(), expected * 2) << r;
  }
}

TEST(KdTreeTest, ClientReconstructionMatchesServer) {
  // The crux of the broadcast first component: a client holding only the
  // BFS split sequence maps every node to the same region as the server.
  graph::Graph g = SmallNetwork(500, 800, 5);
  auto server = KdTreePartitioner::Build(g, 32).value();
  auto client = KdTreePartitioner::FromSplits(server.splits_bfs()).value();
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(client.RegionOf(g.Coord(v)), server.RegionOf(g.Coord(v)));
  }
}

TEST(KdTreeTest, FromSplitsRejectsBadLength) {
  EXPECT_FALSE(KdTreePartitioner::FromSplits({}).ok());
  EXPECT_FALSE(KdTreePartitioner::FromSplits({1.0, 2.0}).ok());  // len 2
}

TEST(KdTreeTest, PaperExampleRegionNumbering) {
  // Two-level tree: first split on y, then x. Region ids follow the
  // left-to-right leaf convention: (below, left)=0, (below, right)=1,
  // (above, left)=2, (above, right)=3 -- matching Fig. 2's R1..R4 reading.
  auto kd = KdTreePartitioner::FromSplits({10.0, 9.0, 11.0}).value();
  EXPECT_EQ(kd.RegionOf({5.0, 5.0}), 0u);    // y<10, x<9
  EXPECT_EQ(kd.RegionOf({12.0, 5.0}), 1u);   // y<10, x>=9
  EXPECT_EQ(kd.RegionOf({5.0, 15.0}), 2u);   // y>=10, x<11
  EXPECT_EQ(kd.RegionOf({12.0, 15.0}), 3u);  // y>=10, x>=11
}

TEST(KdTreeTest, FirstSplitIsOnY) {
  // Points separated only on y must land in different level-1 children.
  auto kd = KdTreePartitioner::FromSplits({50.0}).value();
  EXPECT_EQ(kd.RegionOf({0.0, 10.0}), 0u);
  EXPECT_EQ(kd.RegionOf({0.0, 90.0}), 1u);
}

TEST(KdTreeTest, DeterministicAcrossRebuilds) {
  graph::Graph g = SmallNetwork(300, 480, 6);
  auto a = KdTreePartitioner::Build(g, 8).value();
  auto b = KdTreePartitioner::Build(g, 8).value();
  EXPECT_EQ(a.splits_bfs(), b.splits_bfs());
}

}  // namespace
}  // namespace airindex::partition
