#include "partition/partitioning.h"

#include <gtest/gtest.h>

#include "partition/kd_tree.h"
#include "testing/test_graphs.h"

namespace airindex::partition {
namespace {

using testing_support::SmallNetwork;

TEST(PartitioningTest, RegionNodesMatchLabels) {
  graph::Graph g = SmallNetwork(200, 320, 1);
  auto kd = KdTreePartitioner::Build(g, 8).value();
  Partitioning part = kd.Partition(g);
  for (graph::RegionId r = 0; r < 8; ++r) {
    for (graph::NodeId v : part.region_nodes[r]) {
      EXPECT_EQ(part.node_region[v], r);
    }
  }
}

TEST(BorderTest, BorderNodesHaveCrossingArcs) {
  graph::Graph g = SmallNetwork(300, 480, 2);
  auto kd = KdTreePartitioner::Build(g, 8).value();
  Partitioning part = kd.Partition(g);
  BorderInfo info = ComputeBorders(g, part);
  ASSERT_FALSE(info.border_nodes.empty());
  for (graph::NodeId b : info.border_nodes) {
    bool crossing = false;
    for (const auto& arc : g.OutArcs(b)) {
      if (part.node_region[arc.to] != part.node_region[b]) crossing = true;
    }
    // Symmetric networks: an out-crossing arc exists iff an in-crossing
    // one does.
    EXPECT_TRUE(crossing) << b;
  }
}

TEST(BorderTest, NonBorderNodesHaveNoCrossingArcs) {
  graph::Graph g = SmallNetwork(300, 480, 3);
  auto kd = KdTreePartitioner::Build(g, 8).value();
  Partitioning part = kd.Partition(g);
  BorderInfo info = ComputeBorders(g, part);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (info.is_border[v]) continue;
    for (const auto& arc : g.OutArcs(v)) {
      EXPECT_EQ(part.node_region[arc.to], part.node_region[v]);
    }
  }
}

TEST(BorderTest, RegionBorderListsPartitionBorderSet) {
  graph::Graph g = SmallNetwork(400, 640, 4);
  auto kd = KdTreePartitioner::Build(g, 16).value();
  Partitioning part = kd.Partition(g);
  BorderInfo info = ComputeBorders(g, part);
  size_t total = 0;
  for (graph::RegionId r = 0; r < 16; ++r) {
    for (graph::NodeId b : info.region_border[r]) {
      EXPECT_EQ(part.node_region[b], r);
    }
    total += info.region_border[r].size();
  }
  EXPECT_EQ(total, info.border_nodes.size());
}

TEST(BorderTest, MoreRegionsMeansMoreBorders) {
  graph::Graph g = SmallNetwork(600, 960, 5);
  auto kd8 = KdTreePartitioner::Build(g, 8).value();
  auto kd32 = KdTreePartitioner::Build(g, 32).value();
  BorderInfo b8 = ComputeBorders(g, kd8.Partition(g));
  BorderInfo b32 = ComputeBorders(g, kd32.Partition(g));
  EXPECT_LT(b8.border_nodes.size(), b32.border_nodes.size());
}

TEST(BorderTest, SingleRegionHasNoBorders) {
  graph::Graph g = SmallNetwork(100, 160, 6);
  Partitioning part = MakePartitioning(
      std::vector<graph::RegionId>(g.num_nodes(), 0), 1);
  BorderInfo info = ComputeBorders(g, part);
  EXPECT_TRUE(info.border_nodes.empty());
}

}  // namespace
}  // namespace airindex::partition
