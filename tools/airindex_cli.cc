// airindex_cli — operator tool for the airindex library.
//
//   airindex_cli generate <nodes> <edges> <seed> <out.gr> <out.co>
//       Generate a synthetic road network and save it in DIMACS format.
//
//   airindex_cli gen --nodes=N --seed=N --out=PREFIX [--levels=N]
//       [--jitter=F] [--threads=N]
//       Generate a continental-scale grid+highway network (GenSpec
//       pipeline) and save it as PREFIX.gr + PREFIX.co.
//
//   airindex_cli inspect <network> [scale] [method] [regions]
//       Build a catalog network's broadcast cycle and print its layout
//       (method: DJ|NR|EB|LD|AF, default NR; regions default 32).
//
//   airindex_cli query <network> <scale> <method> <source> <target>
//       Run one shortest-path query through the simulated channel and
//       print every cost factor.
//
//   airindex_cli run <network> [flags]
//       Batch-simulate a multi-client workload through the parallel
//       engine and report aggregate metrics (text or JSON).
//
//   airindex_cli scenario --list | --name=<builtin> | --file=<spec.json>
//       Run a declarative scenario: a heterogeneous fleet of client
//       groups (device profiles, loss models, workload mixes) against
//       the systems under test, reported per group and fleet-wide.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "broadcast/channel.h"
#include "broadcast/schedule.h"
#include "core/systems.h"
#include "device/energy.h"
#include "device/profile_catalog.h"
#include "graph/catalog.h"
#include "graph/dimacs.h"
#include "graph/generator.h"
#include "sim/event_engine.h"
#include "sim/report.h"
#include "sim/scenario.h"
#include "sim/scenario_catalog.h"
#include "sim/simulator.h"
#include "workload/workload.h"

using namespace airindex;  // NOLINT: CLI binary

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage:\n"
               "  airindex_cli generate <nodes> <edges> <seed> <out.gr> "
               "<out.co>\n"
               "  airindex_cli gen --nodes=N --seed=N --out=PREFIX "
               "[--levels=N]\n"
               "      [--jitter=F] [--threads=N]\n"
               "      Generate a grid+highway network, written as "
               "PREFIX.gr + PREFIX.co\n"
               "  airindex_cli inspect <network> [scale] [method] "
               "[regions] [encoding]\n"
               "      [schedule] [zipf_s]\n"
               "      (encoding: legacy|compact; default legacy; a "
               "schedule arg —\n"
               "      see --schedule below — previews the broadcast-disk "
               "layout\n"
               "      planned for a zipf[zipf_s] destination demand, "
               "default 0.9;\n"
               "      method \"all\" prints every system's index-segment "
               "byte totals\n"
               "      — the numbers to size run's --cache-bytes from)\n"
               "  airindex_cli query <network> <scale> <method> <source> "
               "<target>\n"
               "  airindex_cli run <network> [--scale=F] [--queries=N] "
               "[--seed=N]\n"
               "      [--loss=F] [--burst=N] [--corrupt=F] [--fec-rate=F]\n"
               "      [--threads=N] [--repeat=N]\n"
               "      [--systems=DJ,NR,...] [--regions=N]\n"
               "      [--landmarks=N] [--json[=FILE]] [--deterministic]\n"
               "      [--engine=batch|event] [--subchannels=N]\n"
               "      [--arrival=uniform|poisson|rush-hour] [--rate=F]\n"
               "      [--schedule=flat|disks[:K[:r1,r2,...]]|"
               "online[:R[,decay]]]\n"
               "      [--zipf=F] [--sessions=N] [--cache-bytes=N]\n"
               "      Simulate a batch of clients through the parallel "
               "engine\n"
               "      (--threads=0 uses all cores; --burst=N groups losses "
               "into\n"
               "      N-packet fade bursts; --corrupt=F flips bits at rate "
               "F\n"
               "      per bit — CRC-detected corrupt packets count "
               "separately\n"
               "      from drops; --fec-rate=F appends "
               "round(F*16) parity\n"
               "      packets per 16-packet group, letting clients "
               "reconstruct\n"
               "      that many losses without waiting a cycle; "
               "--deterministic zeroes the\n"
               "      wall-clock cpu_ms field so the aggregate metrics "
               "are\n"
               "      bit-reproducible; timing fields still vary by "
               "run;\n"
               "      --repeat=N reports min-of-N wall time per "
               "system;\n"
               "      --engine=event runs the fleet on one shared station\n"
               "      timeline — clients arrive per --arrival at --rate\n"
               "      clients/s, and latency splits into wait/listen ms;\n"
               "      --subchannels=N shards the station across N "
               "interleaved\n"
               "      logical sub-channels; --zipf=F draws destinations "
               "from a\n"
               "      zipf[F] distribution; --schedule spins the cycle's "
               "interleave\n"
               "      groups on K broadcast disks — disks plans spin "
               "rates once by\n"
               "      the square-root rule from the analytic demand, "
               "online\n"
               "      re-plans every R cycles from observed demand "
               "(event engine\n"
               "      only; decay weights history); --sessions=N keeps "
               "each client\n"
               "      alive for N consecutive queries and --cache-bytes=N "
               "gives it\n"
               "      an N-byte segment cache (event engine only; size N "
               "from\n"
               "      `inspect <network> <scale> all`).\n"
               "  airindex_cli scenario --list | --name=NAME | "
               "--file=SPEC.json\n"
               "      [--threads=N] [--repeat=N] [--scale=F] [--queries=N] "
               "[--json[=FILE]]\n"
               "      [--deterministic] [--engine=batch|event]\n"
               "      [--schedule=...]\n"
               "      Run a declarative multi-group scenario "
               "(airindex.sim.scenario/v1);\n"
               "      --list shows the built-in catalog, --scale/--queries "
               "override\n"
               "      the spec for quick smoke runs, --engine and "
               "--schedule\n"
               "      override the spec's engine/schedule fields.\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

/// Reports a flag whose value failed strict numeric parsing. `arg` is the
/// whole "--name=value" argument, `prefix` the length of "--name=".
bool BadFlagValue(const char* arg, size_t prefix) {
  std::fprintf(stderr, "invalid value for %.*s: \"%s\"\n",
               static_cast<int>(prefix - 1), arg, arg + prefix);
  return false;
}

/// Strict double parse of a --flag=value argument: the value must consume
/// entirely as a finite number (the atof it replaces read "abc" as 0.0
/// without a word). Prints the offending flag on failure.
bool ParseDoubleFlag(const char* arg, size_t prefix, double* out) {
  const char* value = arg + prefix;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE) {
    return BadFlagValue(arg, prefix);
  }
  *out = v;
  return true;
}

/// Strict unsigned parse of a --flag=value argument. Rejects a leading
/// '-' explicitly: strtoull would happily wrap "-1" to 2^64-1.
bool ParseUintFlag(const char* arg, size_t prefix, uint64_t* out) {
  const char* value = arg + prefix;
  if (*value == '\0' || *value == '-' || *value == '+') {
    return BadFlagValue(arg, prefix);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) {
    return BadFlagValue(arg, prefix);
  }
  *out = v;
  return true;
}

/// Parses a --schedule= value: "flat", "disks[:K[:r1,r2,...]]", or
/// "online[:R[,decay]]" (K = disk count, r_i = spin rates fastest-first,
/// R = re-plan epoch in cycles). Prints the offense and returns false on
/// malformed input.
bool ParseScheduleFlag(const char* value, sim::SchedulePolicy* out) {
  auto fail = [&]() {
    std::fprintf(stderr,
                 "invalid --schedule value \"%s\" (flat | disks[:K[:r1,"
                 "r2,...]] | online[:R[,decay]])\n",
                 value);
    return false;
  };
  *out = sim::SchedulePolicy{};
  const std::string v(value);
  if (v == "flat") return true;
  if (v.rfind("disks", 0) == 0) {
    out->mode = sim::SchedulePolicy::Mode::kStatic;
    const char* rest = value + 5;
    if (*rest == '\0') return true;
    if (*rest != ':') return fail();
    ++rest;
    char* end = nullptr;
    const unsigned long k = std::strtoul(rest, &end, 10);
    if (end == rest || k < 1 || k > 16) return fail();
    out->disks = static_cast<uint32_t>(k);
    if (*end == '\0') return true;
    if (*end != ':') return fail();
    rest = end + 1;
    while (*rest != '\0') {
      const unsigned long r = std::strtoul(rest, &end, 10);
      if (end == rest || r < 1) return fail();
      out->rates.push_back(static_cast<uint32_t>(r));
      rest = end;
      if (*rest == ',') ++rest;
      else if (*rest != '\0') return fail();
    }
    if (out->rates.size() != out->disks) {
      std::fprintf(stderr,
                   "--schedule=disks:%u lists %zu spin rates (need one per "
                   "disk)\n",
                   out->disks, out->rates.size());
      return false;
    }
    return true;
  }
  if (v.rfind("online", 0) == 0) {
    out->mode = sim::SchedulePolicy::Mode::kOnline;
    const char* rest = value + 6;
    if (*rest == '\0') return true;
    if (*rest != ':') return fail();
    ++rest;
    char* end = nullptr;
    const unsigned long r = std::strtoul(rest, &end, 10);
    if (end == rest || r < 1) return fail();
    out->replan_cycles = static_cast<uint32_t>(r);
    if (*end == '\0') return true;
    if (*end != ',') return fail();
    rest = end + 1;
    errno = 0;
    const double decay = std::strtod(rest, &end);
    if (end == rest || *end != '\0' || errno == ERANGE ||
        !(decay >= 0.0) || decay > 1.0) {
      return fail();
    }
    out->decay = decay;
    return true;
  }
  return fail();
}

/// Byte totals of a cycle split into index vs data segments — the numbers
/// a user sizes run's --cache-bytes from (the session cache keeps whole
/// segments, index slot first).
struct CycleBytes {
  size_t index_segments = 0;
  size_t index_bytes = 0;
  size_t data_segments = 0;
  size_t data_bytes = 0;
  size_t max_segment_bytes = 0;
};

CycleBytes CycleBytesOf(const broadcast::BroadcastCycle& cycle) {
  CycleBytes b;
  for (size_t i = 0; i < cycle.num_segments(); ++i) {
    const auto& seg = cycle.segment(i);
    if (seg.is_index) {
      ++b.index_segments;
      b.index_bytes += seg.payload.size();
    } else {
      ++b.data_segments;
      b.data_bytes += seg.payload.size();
    }
    b.max_segment_bytes = std::max(b.max_segment_bytes, seg.payload.size());
  }
  return b;
}

Result<std::unique_ptr<core::AirSystem>> BuildMethod(
    const graph::Graph& g, const std::string& method, uint32_t regions,
    broadcast::CycleEncoding encoding = broadcast::CycleEncoding::kLegacy) {
  core::SystemParams params;
  params.nr_regions = regions;
  params.eb_regions = regions;
  params.arcflag_regions = regions;
  params.hiti_regions = regions;
  params.build.encoding = encoding;
  return core::BuildSystem(g, method, params);
}

int Gen(int argc, char** argv) {
  graph::GenSpec spec;
  spec.num_nodes = 0;
  std::string out_prefix;
  uint64_t u = 0;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--nodes=", 8) == 0) {
      if (!ParseUintFlag(arg, 8, &u)) return 2;
      if (u < 2 || u > 0xFFFFFFFFull) {
        std::fprintf(stderr, "--nodes must be in [2, 2^32)\n");
        return 2;
      }
      spec.num_nodes = static_cast<uint32_t>(u);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      if (!ParseUintFlag(arg, 7, &u)) return 2;
      spec.seed = u;
    } else if (std::strncmp(arg, "--levels=", 9) == 0) {
      if (!ParseUintFlag(arg, 9, &u)) return 2;
      spec.highway_levels = static_cast<uint32_t>(u);
    } else if (std::strncmp(arg, "--jitter=", 9) == 0) {
      if (!ParseDoubleFlag(arg, 9, &spec.weight_jitter)) return 2;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      if (!ParseUintFlag(arg, 10, &u)) return 2;
      spec.threads = static_cast<unsigned>(u);
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      out_prefix = arg + 6;
    } else {
      std::fprintf(stderr, "unknown flag \"%s\"\n", arg);
      return 2;
    }
  }
  if (spec.num_nodes == 0 || out_prefix.empty()) {
    std::fprintf(stderr, "gen requires --nodes= and --out=\n");
    return 2;
  }
  auto g = graph::GenerateRoadNetwork(spec);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  const std::string gr = out_prefix + ".gr";
  const std::string co = out_prefix + ".co";
  Status st = graph::SaveDimacs(*g, gr.c_str(), co.c_str());
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu nodes / %zu arcs to %s + %s\n", g->num_nodes(),
              g->num_arcs(), gr.c_str(), co.c_str());
  return 0;
}

int Generate(int argc, char** argv) {
  if (argc != 7) return Usage();
  graph::GeneratorOptions opts;
  opts.num_nodes = static_cast<uint32_t>(std::atoi(argv[2]));
  opts.num_edges = static_cast<uint32_t>(std::atoi(argv[3]));
  opts.seed = static_cast<uint64_t>(std::atoll(argv[4]));
  auto g = graph::GenerateRoadNetwork(opts);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  Status st = graph::SaveDimacs(*g, argv[5], argv[6]);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu nodes / %zu arcs to %s + %s\n", g->num_nodes(),
              g->num_arcs(), argv[5], argv[6]);
  return 0;
}

int Inspect(int argc, char** argv) {
  if (argc < 3) return Usage();
  const double scale = argc > 3 ? std::atof(argv[3]) : 0.2;
  const std::string method = argc > 4 ? argv[4] : "NR";
  const uint32_t regions =
      argc > 5 ? static_cast<uint32_t>(std::atoi(argv[5])) : 32;
  broadcast::CycleEncoding encoding = broadcast::CycleEncoding::kLegacy;
  if (argc > 6) {
    if (std::strcmp(argv[6], "compact") == 0) {
      encoding = broadcast::CycleEncoding::kCompact;
    } else if (std::strcmp(argv[6], "legacy") != 0) {
      std::fprintf(stderr, "unknown encoding \"%s\" (legacy|compact)\n",
                   argv[6]);
      return 2;
    }
  }
  sim::SchedulePolicy schedule;
  if (argc > 7 && !ParseScheduleFlag(argv[7], &schedule)) return 2;
  const double zipf_s = argc > 8 ? std::atof(argv[8]) : 0.9;

  auto spec = graph::FindNetwork(argv[2]);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto g = graph::MakeNetwork(*spec, scale);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  if (method == "all") {
    // Cache-sizing table: every system's index-segment byte totals, the
    // numbers run's --cache-bytes is sized from (the session cache pins
    // the index slot and then LRUs whole data segments).
    std::printf("index/data bytes per system on %s (scale %.2f): "
                "%zu nodes, %zu arcs\n",
                argv[2], scale, g->num_nodes(), g->num_arcs());
    std::printf("%-5s %9s %12s %9s %12s %12s\n", "sys", "idx segs",
                "idx bytes", "data segs", "data bytes", "max seg");
    for (const char* m :
         {"DJ", "NR", "EB", "LD", "AF", "SPQ", "HiTi"}) {
      auto sys = BuildMethod(*g, m, regions, encoding);
      if (!sys.ok()) {
        std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
        return 1;
      }
      const CycleBytes b = CycleBytesOf((*sys)->cycle());
      std::printf("%-5s %9zu %12zu %9zu %12zu %12zu\n", m,
                  b.index_segments, b.index_bytes, b.data_segments,
                  b.data_bytes, b.max_segment_bytes);
    }
    std::printf("size --cache-bytes to at least one system's max seg (one "
                "warm region) — idx bytes ride in a separate pinned "
                "slot;\ndata bytes caches the whole cycle.\n");
    return 0;
  }
  auto sys = BuildMethod(*g, method, regions, encoding);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
    return 1;
  }
  const broadcast::BroadcastCycle& cycle = (*sys)->cycle();
  std::printf("%s on %s (scale %.2f): %zu nodes, %zu arcs\n", method.c_str(),
              argv[2], scale, g->num_nodes(), g->num_arcs());
  std::printf("cycle: %u packets (%zu segments, %zu payload bytes, "
              "%.1f bytes/node, %s encoding)\n",
              cycle.total_packets(), cycle.num_segments(),
              cycle.TotalPayloadBytes(),
              static_cast<double>(cycle.TotalPayloadBytes()) /
                  static_cast<double>(g->num_nodes()),
              encoding == broadcast::CycleEncoding::kCompact ? "compact"
                                                             : "legacy");
  std::printf("duration: %.3f s at 2 Mbps, %.3f s at 384 Kbps\n",
              device::CycleSeconds(cycle.total_packets(),
                                   device::kBitrateStatic3G),
              device::CycleSeconds(cycle.total_packets(),
                                   device::kBitrateMoving3G));
  // Segment type census.
  size_t counts[4] = {0, 0, 0, 0};
  size_t packets[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < cycle.num_segments(); ++i) {
    const auto& seg = cycle.segment(i);
    const int t = static_cast<int>(seg.type);
    ++counts[t];
    packets[t] += seg.PacketCount();
  }
  const char* names[4] = {"network data", "global index", "local index",
                          "aux data"};
  for (int t = 0; t < 4; ++t) {
    if (counts[t] == 0) continue;
    std::printf("  %-14s %4zu segments, %6zu packets (%.1f%%)\n", names[t],
                counts[t], packets[t],
                100.0 * static_cast<double>(packets[t]) /
                    cycle.total_packets());
  }
  const CycleBytes cb = CycleBytesOf(cycle);
  std::printf("index bytes: %zu segments, %zu bytes (largest segment %zu "
              "bytes — size run's --cache-bytes from these; \"all\" "
              "tabulates every system)\n",
              cb.index_segments, cb.index_bytes, cb.max_segment_bytes);
  if (schedule.mode != sim::SchedulePolicy::Mode::kFlat) {
    // Preview the static square-root plan for the requested disk shape
    // under an analytic zipf destination demand (seed fixed so the layout
    // is reproducible; online runs start from this same plan).
    workload::WorkloadSpec dspec;
    dspec.dest = workload::WorkloadSpec::Dest::kZipf;
    dspec.zipf_s = zipf_s;
    dspec.seed = 20100913;
    const std::vector<double> demand =
        workload::DestinationWeights(g->num_nodes(), dspec);
    broadcast::ScheduleSpec sspec =
        sim::PlanStaticSpec(cycle, demand, schedule, encoding);
    if (sspec.flat()) {
      std::printf("schedule: planner collapsed to the flat cycle "
                  "(demand too even for %u disks)\n",
                  schedule.disks);
    } else {
      auto compiled = broadcast::BroadcastSchedule::Compile(&cycle, sspec);
      if (!compiled.ok()) {
        std::fprintf(stderr, "%s\n",
                     compiled.status().ToString().c_str());
        return 1;
      }
      const broadcast::BroadcastSchedule& bs = *compiled;
      const auto layout = bs.DiskLayout();
      std::printf("schedule: %zu disks over %zu groups (zipf %.2f demand), "
                  "macro cycle %llu minor cycles, %zu packets, "
                  "stretch %.3fx\n",
                  layout.size(),
                  static_cast<size_t>(bs.num_groups()), zipf_s,
                  static_cast<unsigned long long>(bs.minor_cycles()),
                  bs.macro_packets(), bs.Stretch());
      for (size_t d = 0; d < layout.size(); ++d) {
        const auto& disk = layout[d];
        std::printf("  disk %zu: spin %2u, %4zu groups, %6zu packets "
                    "(%.1f%% of cycle)\n",
                    d, disk.spin, static_cast<size_t>(disk.groups),
                    static_cast<size_t>(disk.packets),
                    100.0 * static_cast<double>(disk.packets) /
                        cycle.total_packets());
      }
    }
  }
  std::printf("server pre-computation: %.3f s\n",
              (*sys)->precompute_seconds());
  return 0;
}

int Query(int argc, char** argv) {
  if (argc != 7) return Usage();
  auto spec = graph::FindNetwork(argv[2]);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto g = graph::MakeNetwork(*spec, std::atof(argv[3]));
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  auto sys = BuildMethod(*g, argv[4], 32);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
    return 1;
  }
  workload::Query q;
  q.source = static_cast<graph::NodeId>(std::atoi(argv[5]));
  q.target = static_cast<graph::NodeId>(std::atoi(argv[6]));
  if (q.source >= g->num_nodes() || q.target >= g->num_nodes()) {
    std::fprintf(stderr, "node id out of range (max %zu)\n",
                 g->num_nodes() - 1);
    return 1;
  }
  q.tune_phase = 0.5;
  broadcast::BroadcastChannel channel(&(*sys)->cycle(), 0.0);
  device::QueryMetrics m =
      (*sys)->RunQuery(channel, core::MakeAirQuery(*g, q));
  device::EnergyModel energy(device::DeviceProfile::J2mePhone(),
                             device::kBitrateStatic3G);
  std::printf("%s %u -> %u\n", argv[4], q.source, q.target);
  std::printf("  distance       : %llu\n",
              static_cast<unsigned long long>(m.distance));
  std::printf("  tuning         : %llu packets\n",
              static_cast<unsigned long long>(m.tuning_packets));
  std::printf("  latency        : %llu packets\n",
              static_cast<unsigned long long>(m.latency_packets));
  std::printf("  peak memory    : %.1f KB\n",
              m.peak_memory_bytes / 1024.0);
  std::printf("  client CPU     : %.2f ms\n", m.cpu_ms);
  std::printf("  radio energy   : %.3f J\n", energy.QueryJoules(m));
  return m.ok ? 0 : 1;
}

/// Splits a comma-separated --systems= value.
std::vector<std::string> SplitNames(const char* csv) {
  std::vector<std::string> names;
  std::string current;
  for (const char* p = csv; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!current.empty()) names.push_back(current);
      current.clear();
    } else {
      current += *p;
    }
  }
  if (!current.empty()) names.push_back(current);
  return names;
}

int Run(int argc, char** argv) {
  if (argc < 3) return Usage();
  double scale = 0.2;
  size_t queries = 100;
  uint64_t seed = 20100913;
  double loss = 0.0;
  double corrupt = 0.0;
  double fec_rate = 0.0;
  uint32_t burst = 1;
  unsigned threads = 0;  // all cores: the engine's reason to exist
  uint32_t regions = 32;
  uint32_t landmarks = 4;
  unsigned repeat = 1;
  bool deterministic = false;
  bool emit_json = false;
  std::string json_path;
  std::string engine = "batch";
  std::string arrival = "none";
  double rate = 50.0;
  uint32_t subchannels = 1;
  double zipf = 0.0;
  uint32_t sessions = 1;
  uint64_t cache_bytes = 0;
  sim::SchedulePolicy schedule;
  std::vector<std::string> names = {"DJ", "NR", "EB", "LD", "AF"};

  uint64_t u = 0;  // strict-parse staging for the narrow unsigned knobs

  for (int i = 3; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      if (!ParseDoubleFlag(arg, 8, &scale)) return Usage();
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      if (!ParseUintFlag(arg, 10, &u)) return Usage();
      queries = static_cast<size_t>(u);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      if (!ParseUintFlag(arg, 7, &seed)) return Usage();
    } else if (std::strncmp(arg, "--loss=", 7) == 0) {
      if (!ParseDoubleFlag(arg, 7, &loss)) return Usage();
    } else if (std::strncmp(arg, "--burst=", 8) == 0) {
      if (!ParseUintFlag(arg, 8, &u)) return Usage();
      burst = u > 1 ? static_cast<uint32_t>(u) : 1;
    } else if (std::strncmp(arg, "--corrupt=", 10) == 0) {
      if (!ParseDoubleFlag(arg, 10, &corrupt)) return Usage();
      if (!(corrupt >= 0.0) || corrupt >= 1.0) {
        std::fprintf(stderr, "--corrupt must be in [0, 1)\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--fec-rate=", 11) == 0) {
      if (!ParseDoubleFlag(arg, 11, &fec_rate)) return Usage();
      if (!(fec_rate >= 0.0) || fec_rate > 1.0) {
        std::fprintf(stderr, "--fec-rate must be in [0, 1]\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      if (!ParseUintFlag(arg, 10, &u)) return Usage();
      threads = static_cast<unsigned>(u);
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      if (!ParseUintFlag(arg, 9, &u)) return Usage();
      repeat = u > 1 ? static_cast<unsigned>(u) : 1;
    } else if (std::strncmp(arg, "--regions=", 10) == 0) {
      if (!ParseUintFlag(arg, 10, &u)) return Usage();
      regions = static_cast<uint32_t>(u);
    } else if (std::strncmp(arg, "--landmarks=", 12) == 0) {
      if (!ParseUintFlag(arg, 12, &u)) return Usage();
      landmarks = static_cast<uint32_t>(u);
    } else if (std::strncmp(arg, "--systems=", 10) == 0) {
      names = SplitNames(arg + 10);
    } else if (std::strncmp(arg, "--engine=", 9) == 0) {
      engine = arg + 9;
    } else if (std::strncmp(arg, "--arrival=", 10) == 0) {
      arrival = arg + 10;
    } else if (std::strncmp(arg, "--rate=", 7) == 0) {
      if (!ParseDoubleFlag(arg, 7, &rate)) return Usage();
    } else if (std::strncmp(arg, "--subchannels=", 14) == 0) {
      if (!ParseUintFlag(arg, 14, &u)) return Usage();
      if (u < 1) {
        std::fprintf(stderr, "--subchannels must be >= 1\n");
        return 2;
      }
      subchannels = static_cast<uint32_t>(u);
    } else if (std::strncmp(arg, "--zipf=", 7) == 0) {
      if (!ParseDoubleFlag(arg, 7, &zipf)) return Usage();
      if (!(zipf >= 0.0)) {
        std::fprintf(stderr, "--zipf must be >= 0\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--sessions=", 11) == 0) {
      if (!ParseUintFlag(arg, 11, &u)) return 2;
      if (u < 1) {
        std::fprintf(stderr, "--sessions must be >= 1\n");
        return 2;
      }
      sessions = static_cast<uint32_t>(u);
    } else if (std::strncmp(arg, "--cache-bytes=", 14) == 0) {
      if (!ParseUintFlag(arg, 14, &cache_bytes)) return 2;
    } else if (std::strncmp(arg, "--schedule=", 11) == 0) {
      if (!ParseScheduleFlag(arg + 11, &schedule)) return 2;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      emit_json = true;
      json_path = arg + 7;
    } else if (std::strcmp(arg, "--json") == 0) {
      emit_json = true;
    } else if (std::strcmp(arg, "--deterministic") == 0) {
      deterministic = true;
    } else {
      return Usage();
    }
  }
  if (names.empty()) return Usage();
  if (!sim::IsKnownEngine(engine)) {
    std::fprintf(stderr, "unknown engine \"%s\" (batch|event)\n",
                 engine.c_str());
    return 2;
  }
  if (engine != "event" && (arrival != "none" || subchannels > 1)) {
    // The batch engine replays a private channel per query and would
    // silently ignore arrival timing / station sharding — refuse instead
    // of printing numbers that do not measure what the flags imply.
    std::fprintf(stderr,
                 "--arrival/--rate/--subchannels need --engine=event (the "
                 "batch engine has no shared station timeline)\n");
    return 2;
  }
  if (engine != "event" &&
      schedule.mode == sim::SchedulePolicy::Mode::kOnline) {
    std::fprintf(stderr,
                 "--schedule=online needs --engine=event (re-planning "
                 "observes demand on the shared station timeline)\n");
    return 2;
  }
  if (engine != "event" && (sessions > 1 || cache_bytes > 0)) {
    std::fprintf(stderr,
                 "--sessions/--cache-bytes need --engine=event (the batch "
                 "engine replays every query on a private channel, so "
                 "there is no client to keep warm)\n");
    return 2;
  }
  if ((sessions > 1 || cache_bytes > 0) &&
      schedule.mode == sim::SchedulePolicy::Mode::kOnline) {
    std::fprintf(stderr,
                 "--sessions/--cache-bytes are not supported with "
                 "--schedule=online (the re-planner's demand estimator "
                 "assumes one-shot arrivals)\n");
    return 2;
  }

  auto spec = graph::FindNetwork(argv[2]);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
    return 1;
  }
  auto g = graph::MakeNetwork(*spec, scale);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }

  core::SystemParams params;
  params.nr_regions = regions;
  params.eb_regions = regions;
  params.arcflag_regions = regions;
  params.hiti_regions = regions;
  params.landmarks = landmarks;
  std::vector<std::shared_ptr<const core::AirSystem>> systems;
  std::vector<const core::AirSystem*> system_ptrs;
  for (const std::string& name : names) {
    auto sys = core::SystemRegistry::Global().Get(*g, name, params);
    if (!sys.ok()) {
      std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
      return 1;
    }
    system_ptrs.push_back(sys->get());
    systems.push_back(std::move(sys).value());
  }

  workload::WorkloadSpec wspec;
  wspec.count = queries;
  wspec.seed = seed;
  if (zipf > 0.0) {
    wspec.dest = workload::WorkloadSpec::Dest::kZipf;
    wspec.zipf_s = zipf;
  }
  auto arrival_kind = workload::ParseArrivalKind(arrival);
  if (!arrival_kind.ok()) {
    std::fprintf(stderr, "%s\n", arrival_kind.status().ToString().c_str());
    return 2;
  }
  wspec.arrival.kind = *arrival_kind;
  wspec.arrival.rate_per_second = rate;
  auto w = workload::GenerateWorkload(*g, wspec);
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }

  const broadcast::FecScheme fec = broadcast::FecScheme::OfRate(fec_rate);
  // Static disk planning weights content by the run's analytic destination
  // distribution (uniform demand plans the flat timeline).
  std::vector<double> schedule_demand;
  if (schedule.mode == sim::SchedulePolicy::Mode::kStatic) {
    schedule_demand = workload::DestinationWeights(g->num_nodes(), wspec);
  }
  sim::BatchResult batch;
  if (engine == "event") {
    sim::EventOptions eo;
    eo.threads = threads;
    eo.repeat = repeat;
    eo.loss = broadcast::LossModel::Of(loss, burst, corrupt);
    eo.fec = fec;
    eo.station_seed = seed;
    eo.subchannels = subchannels;
    eo.deterministic = deterministic;
    eo.schedule = schedule;
    eo.schedule_demand = schedule_demand;
    eo.encoding = params.build.encoding;
    eo.session.queries = sessions;
    eo.cache_bytes = static_cast<size_t>(cache_bytes);
    sim::EventEngine event_engine(*g, eo);
    batch = event_engine.Run(system_ptrs, *w);
  } else {
    sim::SimOptions so;
    so.threads = threads;
    so.repeat = repeat;
    so.loss = broadcast::LossModel::Of(loss, burst, corrupt);
    so.fec = fec;
    so.loss_seed = seed;
    so.deterministic = deterministic;
    so.schedule = schedule;
    so.schedule_demand = schedule_demand;
    so.encoding = params.build.encoding;
    sim::Simulator simulator(*g, so);
    batch = simulator.Run(system_ptrs, *w);
  }

  if (emit_json) {
    const std::string json = sim::ToJson(batch);
    if (json_path.empty()) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
  } else {
    std::printf("# %s at scale %.2f: %zu nodes, %zu arcs\n", argv[2], scale,
                g->num_nodes(), g->num_arcs());
    std::fputs(sim::ToText(batch).c_str(), stdout);
  }
  for (const auto& r : batch.systems) {
    if (r.aggregate.failures > 0) return 1;
  }
  return 0;
}

/// Reads a whole file into a string; nullopt (with a message) on failure.
bool ReadFile(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

int ListScenarios() {
  std::printf("%-20s %-10s %7s %7s %7s  %s\n", "name", "network", "scale",
              "queries", "groups", "description");
  for (const sim::Scenario& s : sim::ScenarioCatalog()) {
    std::printf("%-20s %-10s %7.2f %7zu %7zu  %s\n", s.name.c_str(),
                s.network.c_str(), s.scale, s.total_queries,
                s.groups.size(), s.description.c_str());
  }
  std::printf("\ndevice profiles:\n");
  for (const device::ProfileSpec& p : device::ProfileCatalog()) {
    std::printf("  %-12s %s\n", std::string(p.name).c_str(),
                std::string(p.description).c_str());
  }
  return 0;
}

int RunScenario(int argc, char** argv) {
  bool list = false;
  std::string name;
  std::string file;
  unsigned threads = 0;
  unsigned repeat = 1;
  bool deterministic = false;
  bool emit_json = false;
  std::string json_path;
  std::string engine_override;
  double scale_override = 0.0;
  size_t queries_override = 0;
  sim::SchedulePolicy schedule_override;
  bool has_schedule_override = false;

  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      list = true;
    } else if (std::strncmp(arg, "--engine=", 9) == 0) {
      engine_override = arg + 9;
    } else if (std::strncmp(arg, "--schedule=", 11) == 0) {
      if (!ParseScheduleFlag(arg + 11, &schedule_override)) return 2;
      has_schedule_override = true;
    } else if (std::strncmp(arg, "--name=", 7) == 0) {
      name = arg + 7;
    } else if (std::strncmp(arg, "--file=", 7) == 0) {
      file = arg + 7;
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      uint64_t u = 0;
      if (!ParseUintFlag(arg, 10, &u)) return Usage();
      threads = static_cast<unsigned>(u);
    } else if (std::strncmp(arg, "--repeat=", 9) == 0) {
      uint64_t u = 0;
      if (!ParseUintFlag(arg, 9, &u)) return Usage();
      repeat = u > 1 ? static_cast<unsigned>(u) : 1;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      if (!ParseDoubleFlag(arg, 8, &scale_override)) return Usage();
    } else if (std::strncmp(arg, "--queries=", 10) == 0) {
      uint64_t u = 0;
      if (!ParseUintFlag(arg, 10, &u)) return Usage();
      queries_override = static_cast<size_t>(u);
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      emit_json = true;
      json_path = arg + 7;
    } else if (std::strcmp(arg, "--json") == 0) {
      emit_json = true;
    } else if (std::strcmp(arg, "--deterministic") == 0) {
      deterministic = true;
    } else {
      return Usage();
    }
  }
  if (list) return ListScenarios();
  if (name.empty() == file.empty()) return Usage();  // exactly one source

  sim::Scenario scenario;
  if (!name.empty()) {
    auto found = sim::FindScenario(name);
    if (!found.ok()) {
      std::fprintf(stderr, "%s\n", found.status().ToString().c_str());
      return 1;
    }
    scenario = std::move(found).value();
  } else {
    std::string text;
    if (!ReadFile(file.c_str(), &text)) return 1;
    auto parsed = sim::ScenarioFromJson(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    scenario = std::move(parsed).value();
  }
  if (has_schedule_override) scenario.schedule = schedule_override;
  if (scale_override > 0.0) scenario.scale = scale_override;
  if (queries_override > 0) {
    // Rescale the fleet: explicit group counts become weights so the
    // override budget splits in the spec's proportions.
    for (auto& g : scenario.groups) {
      if (g.queries > 0) {
        g.weight = static_cast<double>(g.queries);
        g.queries = 0;
      }
    }
    scenario.total_queries = queries_override;
  }

  sim::ScenarioRunner::RunOptions ro;
  ro.threads = threads;
  ro.repeat = repeat;
  ro.deterministic = deterministic;
  ro.engine = engine_override;
  auto result = sim::ScenarioRunner(ro).Run(scenario);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  if (emit_json) {
    const std::string json = sim::ScenarioReportToJson(*result);
    if (json_path.empty()) {
      std::fputs(json.c_str(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
      }
      std::fputs(json.c_str(), f);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
  } else {
    std::fputs(sim::ScenarioToText(*result).c_str(), stdout);
  }
  // Query failures are scenario data (harsh channels make some methods
  // drop queries — the report records them); only a wholesale breakdown
  // of a system, or a runner error, is an unhealthy exit.
  for (const auto& fleet : result->fleet) {
    if (fleet.aggregate.failures > 0) {
      std::fprintf(stderr, "note: %s failed %zu/%zu queries\n",
                   fleet.system.c_str(), fleet.aggregate.failures,
                   fleet.aggregate.queries);
    }
    if (fleet.aggregate.queries > 0 &&
        fleet.aggregate.failures == fleet.aggregate.queries) {
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0 ||
      std::strcmp(argv[1], "help") == 0) {
    PrintUsage(stdout);
    return 0;
  }
  if (std::strcmp(argv[1], "generate") == 0) return Generate(argc, argv);
  if (std::strcmp(argv[1], "gen") == 0) return Gen(argc, argv);
  if (std::strcmp(argv[1], "inspect") == 0) return Inspect(argc, argv);
  if (std::strcmp(argv[1], "query") == 0) return Query(argc, argv);
  if (std::strcmp(argv[1], "run") == 0) return Run(argc, argv);
  if (std::strcmp(argv[1], "scenario") == 0) return RunScenario(argc, argv);
  return Usage();
}
