#!/usr/bin/env python3
"""Compare a fresh set of BENCH_*.json perf artifacts against a previous run.

Understands two artifact flavours:

  * google-benchmark JSON (BENCH_micro.json): one measurement per benchmark
    entry, compared on real_time (lower is better). Aggregate entries
    ("_mean", "_median", ...) are skipped; with --benchmark_repetitions the
    "_min" aggregate is preferred over the raw repetition entries.
  * airindex.sim.batch/v1 and airindex.sim.scenario/v1 JSON
    (BENCH_sim_*.json, BENCH_scenario_*.json): one measurement per system,
    compared on queries_per_second (higher is better).
  * airindex.bench.build/v1 JSON (BENCH_build*.json): one entry per build
    stage, compared on nodes_per_second (higher is better) and
    bytes_per_node (lower is better).

Usage:
  tools/perf_compare.py --old prev_dir_or_file --new new_dir_or_file \
      [--threshold 0.10] [--fail-on-regression]

Output is a table plus GitHub "::warning::" annotations for every metric
that regressed by more than the threshold. The exit code is 0 unless
--fail-on-regression is given (the CI wiring is warn-only: perf numbers
from shared runners are advisory, the artifacts are the record).
"""

import argparse
import glob
import json
import os
import sys


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"note: skipping unreadable {path}: {e}")
        return None


def google_benchmark_metrics(doc):
    """{name: (real_time, unit, lower_is_better=True)} for a GB JSON doc."""
    out = {}
    entries = doc.get("benchmarks", [])
    has_min = {
        e["run_name"]
        for e in entries
        if e.get("run_type") == "aggregate" and e.get("aggregate_name") == "min"
    }
    for e in entries:
        name = e.get("name", "")
        if e.get("run_type") == "aggregate":
            if e.get("aggregate_name") != "min":
                continue  # min-of-N is the stable statistic
            name = e["run_name"] + "/min"
        elif e.get("run_name", name) in has_min:
            continue  # raw repetition shadowed by its min aggregate
        if "real_time" not in e:
            continue
        out[name] = (float(e["real_time"]), e.get("time_unit", "ns"), True)
    return out


def sim_metrics(doc):
    """{system: (queries_per_second, unit, lower_is_better=False)}."""
    out = {}
    if doc.get("schema") == "airindex.sim.batch/v1":
        for s in doc.get("systems", []):
            qps = s.get("queries_per_second")
            if qps:
                out[s["system"]] = (float(qps), "q/s", False)
    elif doc.get("schema") == "airindex.sim.scenario/v1":
        for s in doc.get("fleet", []):
            qps = s.get("queries_per_second")
            if qps:
                out[s["system"]] = (float(qps), "q/s", False)
    return out


def build_metrics(doc):
    """{stage/metric: (value, unit, lower_is_better)} for a build-throughput
    sweep document."""
    out = {}
    for e in doc.get("entries", []):
        name = e.get("name")
        if not name:
            continue
        nps = e.get("nodes_per_second")
        if nps:
            out[name + "/nodes_per_second"] = (float(nps), "n/s", False)
        bpn = e.get("bytes_per_node")
        if bpn:
            out[name + "/bytes_per_node"] = (float(bpn), "B/n", True)
    return out


def metrics_of(path):
    doc = load_json(path)
    if doc is None:
        return {}
    if "benchmarks" in doc:
        return google_benchmark_metrics(doc)
    if doc.get("schema") == "airindex.bench.build/v1":
        return build_metrics(doc)
    return sim_metrics(doc)


def artifact_files(root, exclude=None):
    """BENCH_*.json under `root`, skipping anything inside `exclude`.

    The CI wiring runs with --new . while the previous run's artifacts sit
    in ./prev-perf, so the fresh scan must not sweep the old tree into the
    "new" set (that would compare old against itself and mask a bench step
    that crashed before writing its fresh artifact).
    """
    if os.path.isfile(root):
        return {os.path.basename(root): root}
    excluded = os.path.abspath(exclude) if exclude else None
    pattern = os.path.join(root, "**", "BENCH_*.json")
    out = {}
    for p in glob.glob(pattern, recursive=True):
        if excluded and os.path.commonpath(
                [os.path.abspath(p), excluded]) == excluded:
            continue
        out[os.path.relpath(p, root).replace(os.sep, "/")] = p
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--old", required=True,
                    help="previous artifact file or directory")
    ap.add_argument("--new", required=True,
                    help="fresh artifact file or directory")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative regression that triggers a warning")
    ap.add_argument("--fail-on-regression", action="store_true")
    args = ap.parse_args()

    old_files = artifact_files(args.old)
    new_files = artifact_files(args.new, exclude=args.old)
    if not old_files:
        # First run of the perf job (or an expired artifact): nothing to
        # diff against is expected, not an error worth a noisy red log.
        print(f"::notice title=perf baseline missing::no previous "
              f"artifacts under {args.old}; skipping comparison "
              f"(expected on the first run)")
        return 0
    if not new_files:
        print(f"::notice title=perf artifacts missing::no fresh artifacts "
              f"under {args.new}; nothing to compare")
        return 0

    # Match by basename so nested artifact layouts still pair up.
    old_by_base = {os.path.basename(k): v for k, v in old_files.items()}

    regressions = []
    compared = 0
    print(f"{'artifact/metric':60s} {'old':>14s} {'new':>14s} {'delta':>8s}")
    for rel, new_path in sorted(new_files.items()):
        old_path = old_by_base.get(os.path.basename(rel))
        if old_path is None:
            print(f"{rel:60s} {'(new)':>14s}")
            continue
        old_m = metrics_of(old_path)
        new_m = metrics_of(new_path)
        if new_m and old_m and not set(new_m) & set(old_m):
            # Same artifact name, disjoint benchmark names: a renamed or
            # rewritten bench, not a regression — say so once instead of
            # silently dropping every row.
            print(f"::notice title=perf names disjoint::"
                  f"{os.path.basename(rel)} shares no benchmark names "
                  f"with the previous run; skipping it")
            continue
        for name in sorted(new_m):
            if name not in old_m:
                continue
            new_val, unit, lower_better = new_m[name]
            old_val, _, _ = old_m[name]
            if old_val <= 0:
                continue
            compared += 1
            change = (new_val - old_val) / old_val
            regressed = change > args.threshold if lower_better \
                else change < -args.threshold
            label = f"{os.path.basename(rel)}:{name}"
            flag = "  << REGRESSION" if regressed else ""
            print(f"{label:60s} {old_val:14.3f} {new_val:14.3f} "
                  f"{change:+7.1%}{flag}")
            if regressed:
                regressions.append((label, unit, old_val, new_val, change))

    if compared == 0:
        print(f"::notice title=perf nothing comparable::previous and "
              f"fresh artifact sets share no metrics (first run of a new "
              f"bench?); nothing compared")
        return 0
    print(f"\ncompared {compared} metrics, "
          f"{len(regressions)} regression(s) beyond "
          f"{args.threshold:.0%}")
    for label, unit, old_val, new_val, change in regressions:
        print(f"::warning title=perf regression::{label} went "
              f"{old_val:.3f} -> {new_val:.3f} {unit} ({change:+.1%})")

    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
