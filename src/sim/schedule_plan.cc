#include "sim/schedule_plan.h"

#include <algorithm>
#include <cmath>

#include "core/region_data.h"

namespace airindex::sim {

namespace {

/// Per-group share of the cycle's index packets (empty when the cycle has
/// none). Every query's wait ends at an index segment — the access
/// protocol tunes to the next index before touching any data — so index
/// packets carry demand from the *whole* query population, not just the
/// queries whose destination data shares their group. The planners blend
/// this in with weight equal to the total destination mass: one index
/// fetch per query, one data fetch per query.
std::vector<double> GroupIndexShare(
    const broadcast::BroadcastCycle& cycle,
    const std::vector<uint32_t>& group_of_segment) {
  const uint32_t groups = broadcast::NumGroups(group_of_segment);
  std::vector<double> share(groups, 0.0);
  double total = 0.0;
  for (uint32_t si = 0; si < cycle.num_segments(); ++si) {
    const broadcast::Segment& seg = cycle.segment(si);
    if (!seg.is_index) continue;
    const auto pkts = static_cast<double>(seg.PacketCount());
    share[group_of_segment[si]] += pkts;
    total += pkts;
  }
  if (total <= 0.0) return {};
  for (double& s : share) s /= total;
  return share;
}

/// `demand` plus the index-fetch mass: index-bearing groups gain the total
/// demand split by index packet share.
std::vector<double> BlendIndexDemand(std::vector<double> demand,
                                     const std::vector<double>& idx_share) {
  if (idx_share.size() != demand.size()) return demand;
  double total = 0.0;
  for (double w : demand) total += w;
  if (total <= 0.0) return demand;
  for (size_t g = 0; g < demand.size(); ++g) {
    demand[g] += total * idx_share[g];
  }
  return demand;
}

/// Coefficient of variation of per-group demand over the cycle's
/// data-bearing groups — the planner's skew statistic. Index and
/// boundary groups are excluded: their (blended or unmapped) mass is
/// demand-independent and would dilute the measurement.
double DataDemandCv(const broadcast::BroadcastCycle& cycle,
                    const std::vector<double>& group_weight) {
  double sum = 0.0;
  size_t n = 0;
  for (uint32_t si = 0;
       si < cycle.num_segments() && si < group_weight.size(); ++si) {
    if (cycle.segment(si).type != broadcast::SegmentType::kNetworkData) {
      continue;
    }
    sum += group_weight[si];
    ++n;
  }
  if (n < 2 || sum <= 0.0) return 0.0;
  const double mean = sum / static_cast<double>(n);
  double var = 0.0;
  for (uint32_t si = 0;
       si < cycle.num_segments() && si < group_weight.size(); ++si) {
    if (cycle.segment(si).type != broadcast::SegmentType::kNetworkData) {
      continue;
    }
    const double d = group_weight[si] - mean;
    var += d * d;
  }
  return std::sqrt(var / static_cast<double>(n)) / mean;
}

/// Plan audit: keep `candidate` only when its compiled timeline's exact
/// doze-to-index wait profile beats the flat cycle's on both mean and p95
/// (strictly on at least one). Cycles whose index replication is already
/// wait-optimal — NR's dense (1,m) layout, where every inter-index gap is
/// one indivisible data segment — quantize any spin plan into gaps no
/// better than flat's; auditing the actual timeline catches this where
/// the square-root rule (which assumes ideally divisible bandwidth)
/// cannot. Cycles without index segments audit trivially flat: full-sweep
/// clients have no initial wait for a schedule to cut, and repetitions
/// would only stretch their sweep.
broadcast::ScheduleSpec AuditSpec(const broadcast::BroadcastCycle& cycle,
                                  broadcast::ScheduleSpec candidate) {
  if (candidate.flat()) return candidate;
  auto compiled =
      broadcast::BroadcastSchedule::Compile(&cycle, candidate);
  if (!compiled.ok()) return broadcast::ScheduleSpec::Flat();
  const broadcast::WaitProfile flat = broadcast::FlatWaitProfile(cycle);
  const broadcast::WaitProfile sched =
      broadcast::ScheduleWaitProfile(*compiled);
  if (flat.mean == 0.0 && flat.p95 == 0.0) {
    return broadcast::ScheduleSpec::Flat();
  }
  return sched.BetterThan(flat) ? candidate
                                : broadcast::ScheduleSpec::Flat();
}

}  // namespace

std::vector<uint32_t> NodeGroups(const broadcast::BroadcastCycle& cycle,
                                 size_t num_nodes,
                                 broadcast::CycleEncoding encoding) {
  std::vector<uint32_t> group_of_node(num_nodes, kUnmappedGroup);
  const std::vector<uint32_t> group_of_segment =
      broadcast::CycleGroups(cycle);
  auto place = [&](graph::NodeId id, uint32_t group) {
    if (id < num_nodes && group_of_node[id] == kUnmappedGroup) {
      group_of_node[id] = group;
    }
  };
  for (uint32_t si = 0; si < cycle.num_segments(); ++si) {
    const broadcast::Segment& seg = cycle.segment(si);
    if (seg.type != broadcast::SegmentType::kNetworkData) continue;
    // Region payloads (EB/NR) carry a border header before the record
    // area; everything else is a bare record blob. Try the region layout
    // first — its fixed-width header makes a false accept of a bare blob
    // effectively impossible, and vice versa the validators reject.
    auto region = core::DecodeRegionData(seg.payload, encoding);
    if (region.ok()) {
      for (const auto& rec : region->records) {
        place(rec.id, group_of_segment[si]);
      }
      continue;
    }
    auto records = broadcast::DecodeNodeRecords(seg.payload, encoding);
    if (!records.ok()) continue;  // opaque payload: contributes no mapping
    for (const auto& rec : *records) place(rec.id, group_of_segment[si]);
  }
  return group_of_node;
}

std::vector<double> GroupDemandWeights(
    const broadcast::BroadcastCycle& cycle,
    const std::vector<uint32_t>& group_of_node,
    std::span<const double> node_weight) {
  const std::vector<uint32_t> group_of_segment =
      broadcast::CycleGroups(cycle);
  const uint32_t groups = broadcast::NumGroups(group_of_segment);
  std::vector<double> w(groups, 0.0);
  if (groups == 0) return w;
  double unmapped = 0.0;
  for (size_t v = 0; v < group_of_node.size(); ++v) {
    const double p = v < node_weight.size()
                         ? node_weight[v]
                         : (node_weight.empty() && !group_of_node.empty()
                                ? 1.0 / static_cast<double>(
                                            group_of_node.size())
                                : 0.0);
    if (group_of_node[v] == kUnmappedGroup) {
      unmapped += p;
    } else {
      w[group_of_node[v]] += p;
    }
  }
  if (unmapped > 0.0) {
    const double share = unmapped / static_cast<double>(groups);
    for (double& x : w) x += share;
  }
  return w;
}

broadcast::ScheduleSpec PlanStaticSpec(const broadcast::BroadcastCycle& cycle,
                                       std::span<const double> node_weight,
                                       const SchedulePolicy& policy,
                                       broadcast::CycleEncoding encoding) {
  const std::vector<uint32_t> group_of_segment =
      broadcast::CycleGroups(cycle);
  const std::vector<uint32_t> group_of_node =
      NodeGroups(cycle, node_weight.size(), encoding);
  std::vector<double> demand =
      GroupDemandWeights(cycle, group_of_node, node_weight);
  if (DataDemandCv(cycle, demand) < policy.min_skew) {
    return broadcast::ScheduleSpec::Flat();
  }
  const std::vector<double> weights = BlendIndexDemand(
      std::move(demand), GroupIndexShare(cycle, group_of_segment));
  return AuditSpec(
      cycle, broadcast::SquareRootSpec(
                 weights,
                 broadcast::GroupPacketCounts(cycle, group_of_segment),
                 policy.disks, policy.rates));
}

OnlineReplanner::OnlineReplanner(const broadcast::BroadcastCycle* cycle,
                                 std::vector<uint32_t> group_of_node,
                                 SchedulePolicy policy)
    : cycle_(cycle),
      group_of_node_(std::move(group_of_node)),
      policy_(std::move(policy)),
      spec_(broadcast::ScheduleSpec::Flat()) {
  const std::vector<uint32_t> group_of_segment =
      broadcast::CycleGroups(*cycle_);
  group_packets_ =
      broadcast::GroupPacketCounts(*cycle_, group_of_segment);
  for (uint32_t p : group_packets_) total_packets_ += p;
  idx_share_ = GroupIndexShare(*cycle_, group_of_segment);
  ewma_.assign(group_packets_.size(), 0.0);
  epoch_.assign(group_packets_.size(), 0.0);
}

void OnlineReplanner::ObserveDestination(graph::NodeId dest) {
  ++observations_;
  if (dest < group_of_node_.size() &&
      group_of_node_[dest] != kUnmappedGroup) {
    epoch_[group_of_node_[dest]] += 1.0;
  }
}

bool OnlineReplanner::Replan() {
  if (ewma_.empty()) return false;
  const double decay = std::clamp(policy_.decay, 0.0, 1.0);
  for (size_t g = 0; g < ewma_.size(); ++g) {
    ewma_[g] = decay * ewma_[g] + epoch_[g];
    epoch_[g] = 0.0;
  }
  // Skew gate on the observed demand, shrunk for sampling noise: counts
  // with per-group mean m carry Poisson dispersion cv^2 ~= 1/m even under
  // uniform demand, so subtract it before comparing against the policy
  // threshold (cv_true^2 ~= cv_obs^2 - 1/m).
  broadcast::ScheduleSpec candidate = broadcast::ScheduleSpec::Flat();
  const double cv_obs = DataDemandCv(*cycle_, ewma_);
  double ewma_sum = 0.0;
  for (double w : ewma_) ewma_sum += w;
  const double group_mean =
      ewma_sum / static_cast<double>(ewma_.size() ? ewma_.size() : 1);
  const double cv = group_mean > 0.0
                        ? std::sqrt(std::max(
                              0.0, cv_obs * cv_obs - 1.0 / group_mean))
                        : 0.0;
  if (cv >= policy_.min_skew) {
    candidate =
        AuditSpec(*cycle_, broadcast::SquareRootSpec(
                               BlendIndexDemand(ewma_, idx_share_),
                               group_packets_, policy_.disks,
                               policy_.rates));
  }
  if (candidate == spec_) return false;
  // Hysteresis: packet mass whose spin the candidate changes, as a
  // fraction of the flat cycle. Spin of a group under the flat spec is 1.
  auto spin_of = [](const broadcast::ScheduleSpec& s, size_t g) {
    return s.flat() ? uint32_t{1} : s.spin[s.disk_of_group[g]];
  };
  uint64_t changed = 0;
  for (size_t g = 0; g < group_packets_.size(); ++g) {
    if (spin_of(candidate, g) != spin_of(spec_, g)) {
      changed += group_packets_[g];
    }
  }
  if (total_packets_ > 0 &&
      static_cast<double>(changed) <
          policy_.hysteresis * static_cast<double>(total_packets_)) {
    return false;
  }
  spec_ = std::move(candidate);
  return true;
}

}  // namespace airindex::sim
