#ifndef AIRINDEX_SIM_AGGREGATE_H_
#define AIRINDEX_SIM_AGGREGATE_H_

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "device/energy.h"
#include "device/metrics.h"

namespace airindex::sim {

/// Distribution summary of one per-query cost factor. The paper reports
/// averages; the engine adds tail percentiles because a broadcast system
/// serving many clients is judged by its slowest tune-ins, not its mean.
struct Stat {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  bool operator==(const Stat&) const = default;
};

/// Nearest-rank percentile of `values` (the input is copied and sorted
/// per call; prefer StatOf for whole summaries). q maps to
/// sorted[ceil(q*n)-1], clamped: q <= 0 (and NaN) yields the minimum,
/// q >= 1 the maximum, an empty input 0.
double Percentile(std::span<const double> values, double q);

/// Nearest-rank summary of `values` (the input is copied and sorted).
/// Percentile q maps to sorted[ceil(q*n)-1]; an empty input yields zeros.
Stat StatOf(std::span<const double> values);

/// Aggregated §3.1 cost factors of one system over one workload: tuning
/// time, access latency, peak memory, client CPU, and the device energy
/// each query cost under the configured EnergyModel.
struct Aggregate {
  std::string system;
  size_t queries = 0;
  size_t failures = 0;
  size_t memory_exceeded = 0;
  Stat tuning_packets;
  Stat latency_packets;
  /// The latency window split on the engine clock: doze before the first
  /// useful packet vs retrieval from there (see QueryMetrics::wait_ms).
  Stat wait_ms;
  Stat listen_ms;
  Stat peak_memory_bytes;
  Stat cpu_ms;
  Stat energy_joules;
  /// Corruption/FEC channel diagnostics (all zero on a clean channel —
  /// serialized only when active, so legacy reports are unchanged).
  Stat corrupted_packets;
  Stat fec_recovered;
  /// Session-cache diagnostics: segments served from client caches, the
  /// number of warm queries (≥1 cache hit), and the tuning distribution of
  /// the warm queries alone. All zero for one-shot fleets — serialized
  /// only when active, so cold reports are unchanged.
  Stat cache_hits;
  size_t warm_queries = 0;
  Stat warm_tuning;

  bool operator==(const Aggregate&) const = default;

  static Aggregate Of(std::string_view system,
                      std::span<const device::QueryMetrics> metrics,
                      const device::EnergyModel& energy);

  /// Variant with pre-priced energy (`joules[i]` belongs to `metrics[i]`).
  /// This is the fleet-merge path: a heterogeneous scenario prices each
  /// group's queries under that group's device/bitrate, then aggregates
  /// the concatenated samples — one EnergyModel could not do that.
  static Aggregate Of(std::string_view system,
                      std::span<const device::QueryMetrics> metrics,
                      std::span<const double> joules);
};

}  // namespace airindex::sim

#endif  // AIRINDEX_SIM_AGGREGATE_H_
