#ifndef AIRINDEX_SIM_JSON_H_
#define AIRINDEX_SIM_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace airindex::sim::jsonutil {

/// Shortest representation that round-trips through a double exactly.
std::string DoubleToString(double v);

/// Streaming writer for the stable-key-order reports the sim layer emits
/// (objects, arrays, strings, numbers — the subset JsonParser reads back).
class JsonWriter {
 public:
  std::string Take() &&;

  void BeginObject();
  void EndObject();
  void BeginArray(std::string_view key);
  /// Array element object/array openers call BeginObject()/BeginArray
  /// directly; bare arrays of scalars are not needed by any report.
  void EndArray();
  void Key(std::string_view key);
  void Field(std::string_view key, double v);
  void Field(std::string_view key, uint64_t v);
  void Field(std::string_view key, std::string_view v);
  void FieldBool(std::string_view key, bool v);
  /// Scalar array elements (between BeginArray/EndArray).
  void Element(uint64_t v);
  void Element(std::string_view v);

 private:
  void Indent();
  void Separate();

  std::string out_;
  int depth_ = 0;
  bool fresh_ = true;
  bool pending_ = false;
};

/// Parsed JSON value covering the subset the writers emit, plus the
/// true/false/null keywords hand-written spec files use.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray } type =
      Type::kNull;
  bool boolean = false;
  double number = 0.0;
  /// For numbers, the raw token — integer fields re-parse it as uint64 so
  /// seeds above 2^53 survive the round-trip exactly.
  std::string string;
  std::map<std::string, JsonValue, std::less<>> object;
  std::vector<JsonValue> array;
};

/// Parses `text` into a JsonValue, rejecting trailing garbage.
Result<JsonValue> ParseJson(std::string_view text);

/// Typed member accessors; InvalidArgument when missing or mistyped.
Result<double> GetNumber(const JsonValue& obj, std::string_view key);
Result<uint64_t> GetUint64(const JsonValue& obj, std::string_view key);
Result<std::string> GetString(const JsonValue& obj, std::string_view key);

/// Optional variants: the default when the key is absent, InvalidArgument
/// only on a type mismatch. Additive schema fields parse through these so
/// older documents keep reading.
Result<double> GetNumberOr(const JsonValue& obj, std::string_view key,
                           double fallback);
Result<uint64_t> GetUint64Or(const JsonValue& obj, std::string_view key,
                             uint64_t fallback);
Result<std::string> GetStringOr(const JsonValue& obj, std::string_view key,
                                std::string_view fallback);
/// Accepts a JSON bool or a 0/1 number.
Result<bool> GetBoolOr(const JsonValue& obj, std::string_view key,
                       bool fallback);

}  // namespace airindex::sim::jsonutil

#endif  // AIRINDEX_SIM_JSON_H_
