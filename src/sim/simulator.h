#ifndef AIRINDEX_SIM_SIMULATOR_H_
#define AIRINDEX_SIM_SIMULATOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "broadcast/channel.h"
#include "core/air_system.h"
#include "device/device_profile.h"
#include "device/metrics.h"
#include "graph/graph.h"
#include "sim/aggregate.h"
#include "sim/schedule_plan.h"
#include "workload/workload.h"

namespace airindex::sim {

/// Configuration of one simulation batch: how many client threads to fan
/// the workload across, the channel loss model, and the device the energy
/// figures are computed for.
struct SimOptions {
  /// Worker threads the clients are spread over (0 = hardware concurrency).
  unsigned threads = 1;
  /// Channel loss model shared by every client (drop rate, fade bursts,
  /// and the per-bit corruption rate all live here).
  broadcast::LossModel loss = broadcast::LossModel::None();
  /// Base seed of the per-query loss streams (see QueryLossSeed).
  uint64_t loss_seed = 0x10552;
  /// Station-side forward error correction applied to every channel.
  broadcast::FecScheme fec = {};
  /// Per-client device configuration.
  core::ClientOptions client;
  /// Device whose radio/CPU power figures price each query.
  device::DeviceProfile profile = device::DeviceProfile::J2mePhone();
  /// Broadcast bitrate used for the energy model.
  double bits_per_second = device::kBitrateStatic3G;
  /// Zeroes the wall-clock-measured cpu_ms field of every query so
  /// aggregates are bit-reproducible across runs and thread counts (the
  /// remaining metrics are deterministic by construction).
  bool deterministic = false;
  /// Runs each system's batch this many times and reports the *minimum*
  /// wall time (and the throughput derived from it). Min-of-N is the
  /// standard way to get scheduler- and cache-noise-resistant numbers out
  /// of CI perf runs. Per-query metrics are identical across repetitions
  /// by construction — except cpu_ms, which is wall-clock-measured and
  /// reported from the last repetition (zeroed under `deterministic`).
  unsigned repeat = 1;
  /// Broadcast-disk scheduling of every station/channel. kFlat (default)
  /// keeps the historical timeline bit-identically; kStatic plans one
  /// square-root-rule spec per system from `schedule_demand`; kOnline is
  /// the event engine's re-planning mode (rejected by the batch engine —
  /// per-query private replays have no shared timeline to observe demand
  /// on).
  SchedulePolicy schedule;
  /// Per-node destination demand the static planner weights groups by
  /// (workload::DestinationWeights of the run's spec; scenario runs merge
  /// their groups' distributions count-weighted). Empty = uniform, which
  /// plans the flat spec.
  std::vector<double> schedule_demand;
  /// Wire encoding of the cycles' payloads (the planner decodes data
  /// segments to map nodes to interleave groups).
  broadcast::CycleEncoding encoding = broadcast::CycleEncoding::kLegacy;
};

/// One system's outcome over a workload.
struct SystemResult {
  std::string system;
  std::vector<device::QueryMetrics> per_query;
  Aggregate aggregate;
  /// Wall time of the batch and resulting simulation throughput.
  double wall_seconds = 0.0;
  double queries_per_second = 0.0;
};

/// Known simulation engine names. The one validator behind the scenario
/// spec parser, the scenario runner, and the CLI's --engine flag.
inline bool IsKnownEngine(std::string_view name) {
  return name == "batch" || name == "event";
}

/// A whole batch: every requested system over the same workload.
struct BatchResult {
  /// Which engine produced the batch: "batch" (per-query private replay,
  /// sim::Simulator) or "event" (shared station timeline,
  /// sim::EventEngine).
  std::string engine = "batch";
  size_t num_queries = 0;
  /// Effective worker count (a SimOptions::threads of 0 is resolved to the
  /// hardware concurrency before being recorded here).
  unsigned threads = 1;
  /// The full channel loss model (not just the rate): bursty runs were
  /// previously reported as if their losses were independent.
  double loss_rate = 0.0;
  uint32_t loss_burst_len = 1;
  /// Per-bit corruption rate of the channel (0 = pristine packets).
  double corrupt_bit = 0.0;
  uint64_t loss_seed = 0;
  /// Logical sub-channels of the event engine's station (1 for the batch
  /// engine's single private channel).
  uint32_t subchannels = 1;
  /// Station FEC code of the run (parity 0 = off).
  broadcast::FecScheme fec = {};
  /// Broadcast-disk scheduling mode of the run ("flat", "static",
  /// "online"). Additive JSON field; legacy readers ignore it.
  std::string schedule_mode = "flat";
  /// Persistent-client sessions of the event engine: queries per session
  /// and the per-client cache budget. 1/0 = the historical one-shot fleet
  /// (both fields are then omitted from the JSON document).
  uint32_t session_queries = 1;
  size_t cache_bytes = 0;
  double wall_seconds = 0.0;
  std::vector<SystemResult> systems;
};

/// Wire name of a SchedulePolicy mode ("flat" / "static" / "online").
inline std::string_view ScheduleModeName(SchedulePolicy::Mode mode) {
  switch (mode) {
    case SchedulePolicy::Mode::kStatic: return "static";
    case SchedulePolicy::Mode::kOnline: return "online";
    case SchedulePolicy::Mode::kFlat: break;
  }
  return "flat";
}

/// The loss-RNG seed of query `index`. Every query gets its own stream,
/// derived by SplitMix64 from the batch seed, so a query's channel replay
/// depends only on (batch seed, query index) — never on which thread ran
/// it or in what order. This is what makes parallel runs bit-identical to
/// serial ones.
uint64_t QueryLossSeed(uint64_t base_seed, size_t index);

/// The parallel simulation engine: fans a workload's clients out across a
/// thread pool against one shared read-only system + cycle. Results are
/// deterministic for every thread count (see QueryLossSeed and the
/// AirSystem thread-safety contract in air_system.h); cpu_ms is the one
/// wall-clock-measured field, zeroed under SimOptions::deterministic.
///
/// Each worker thread owns one core::QueryScratch, reused across the
/// thread's whole query slice — the engine's steady state therefore runs
/// the allocation-free client path. Scratch never affects results (metrics
/// are byte-identical to fresh-scratch runs; pinned by the golden test in
/// tests/sim), so determinism across thread counts is preserved.
class Simulator {
 public:
  /// `g` must outlive the simulator.
  Simulator(const graph::Graph& g, SimOptions options)
      : graph_(&g), options_(options) {}

  const SimOptions& options() const { return options_; }
  device::EnergyModel energy_model() const {
    return device::EnergyModel(options_.profile, options_.bits_per_second);
  }
  /// Worker count actually used (options().threads with 0 resolved to the
  /// hardware concurrency).
  unsigned effective_threads() const;

  /// Runs every workload query through `sys`, one simulated client per
  /// query, across options().threads workers.
  SystemResult RunSystem(const core::AirSystem& sys,
                         const workload::Workload& w) const;

  /// Runs the workload through each system in turn.
  BatchResult Run(std::span<const core::AirSystem* const> systems,
                  const workload::Workload& w) const;

 private:
  const graph::Graph* graph_;
  SimOptions options_;
};

}  // namespace airindex::sim

#endif  // AIRINDEX_SIM_SIMULATOR_H_
