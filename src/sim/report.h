#ifndef AIRINDEX_SIM_REPORT_H_
#define AIRINDEX_SIM_REPORT_H_

#include <span>
#include <string>
#include <string_view>

#include "common/result.h"
#include "sim/json.h"
#include "sim/simulator.h"

namespace airindex::sim {

/// Identifier stamped into every batch JSON report; FromJson rejects others.
inline constexpr std::string_view kReportSchema = "airindex.sim.batch/v1";

/// Human-readable table of a batch (one row per system: mean/p50/p95 of
/// each cost factor, failure counts, throughput).
std::string ToText(const BatchResult& batch);

/// Serializes the batch aggregates as JSON (stable key order; doubles
/// printed shortest-round-trip so FromJson reproduces them exactly).
/// Per-query metric vectors are deliberately not serialized — reports
/// carry the distribution summaries, not megabytes of raw samples.
std::string ToJson(const BatchResult& batch);

/// Parses a ToJson report back into a BatchResult (per_query left empty).
/// Returns InvalidArgument on malformed input or a schema mismatch.
/// Accepts documents without the additive loss_burst_len field (older
/// airindex.sim.batch/v1 writers), defaulting the burst length to 1.
Result<BatchResult> FromJson(std::string_view json);

namespace detail {

/// Appends the per-system text table (header row + one row per system) to
/// `out`. The one formatter behind both the batch report and the scenario
/// report's group/fleet tables, so their columns cannot desynchronize.
void AppendSystemTable(std::string& out,
                       std::span<const SystemResult> systems);

/// Writes one system's aggregate as a JSON object (the element shape of the
/// batch report's "systems" array). Shared with the scenario report writer
/// so group and fleet entries stay field-compatible with batch entries.
void WriteSystemEntry(jsonutil::JsonWriter& w, const SystemResult& r);

/// Parses one system entry written by WriteSystemEntry (per_query empty).
Result<SystemResult> SystemEntryFromJson(const jsonutil::JsonValue& entry);

}  // namespace detail

}  // namespace airindex::sim

#endif  // AIRINDEX_SIM_REPORT_H_
