#ifndef AIRINDEX_SIM_REPORT_H_
#define AIRINDEX_SIM_REPORT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "sim/simulator.h"

namespace airindex::sim {

/// Identifier stamped into every JSON report; FromJson rejects others.
inline constexpr std::string_view kReportSchema = "airindex.sim.batch/v1";

/// Human-readable table of a batch (one row per system: mean/p50/p95 of
/// each cost factor, failure counts, throughput).
std::string ToText(const BatchResult& batch);

/// Serializes the batch aggregates as JSON (stable key order; doubles
/// printed shortest-round-trip so FromJson reproduces them exactly).
/// Per-query metric vectors are deliberately not serialized — reports
/// carry the distribution summaries, not megabytes of raw samples.
std::string ToJson(const BatchResult& batch);

/// Parses a ToJson report back into a BatchResult (per_query left empty).
/// Returns InvalidArgument on malformed input or a schema mismatch.
Result<BatchResult> FromJson(std::string_view json);

}  // namespace airindex::sim

#endif  // AIRINDEX_SIM_REPORT_H_
