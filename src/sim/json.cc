#include "sim/json.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <limits>

namespace airindex::sim::jsonutil {

std::string DoubleToString(double v) {
  // JSON has no NaN/inf literals: to_chars would emit "nan"/"inf", which
  // no reader (including this library's) round-trips. Emit null instead;
  // GetNumber maps it back to NaN.
  if (!std::isfinite(v)) return "null";
  std::array<char, 32> buf;
  auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  return std::string(buf.data(), end);
}

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

std::string JsonWriter::Take() && { return std::move(out_); }

void JsonWriter::BeginObject() {
  Separate();
  out_ += '{';
  fresh_ = true;
  ++depth_;
}

void JsonWriter::EndObject() {
  --depth_;
  out_ += '\n';
  Indent();
  out_ += '}';
  fresh_ = false;
}

void JsonWriter::BeginArray(std::string_view key) {
  Key(key);
  out_ += '[';
  pending_ = false;
  fresh_ = true;
  ++depth_;
}

void JsonWriter::EndArray() {
  --depth_;
  out_ += '\n';
  Indent();
  out_ += ']';
  fresh_ = false;
}

void JsonWriter::Key(std::string_view key) {
  Separate();
  out_ += '"';
  out_ += key;  // keys are known identifiers; no escaping needed
  out_ += "\": ";
  pending_ = true;
}

void JsonWriter::Field(std::string_view key, double v) {
  Key(key);
  out_ += DoubleToString(v);
  pending_ = false;
}

void JsonWriter::Field(std::string_view key, uint64_t v) {
  Key(key);
  out_ += std::to_string(v);
  pending_ = false;
}

void JsonWriter::Field(std::string_view key, std::string_view v) {
  Key(key);
  out_ += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') out_ += '\\';
    out_ += c;
  }
  out_ += '"';
  pending_ = false;
}

void JsonWriter::FieldBool(std::string_view key, bool v) {
  Key(key);
  out_ += v ? "true" : "false";
  pending_ = false;
}

void JsonWriter::Element(uint64_t v) {
  Separate();
  out_ += std::to_string(v);
}

void JsonWriter::Element(std::string_view v) {
  Separate();
  out_ += '"';
  for (char c : v) {
    if (c == '"' || c == '\\') out_ += '\\';
    out_ += c;
  }
  out_ += '"';
}

void JsonWriter::Indent() {
  out_.append(static_cast<size_t>(depth_) * 2, ' ');
}

void JsonWriter::Separate() {
  // A key was just written: the next token is its value, already
  // prefixed with ": " — no comma or newline.
  if (pending_) {
    pending_ = false;
    return;
  }
  if (!fresh_) out_ += ',';
  if (depth_ > 0 || !fresh_) out_ += '\n';
  Indent();
  fresh_ = false;
}

// ---------------------------------------------------------------------------
// Parsing: a minimal JSON reader covering the subset the writers emit
// (objects, arrays, strings, numbers).
// ---------------------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    AIRINDEX_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<char> Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    return text_[pos_];
  }

  Status Expect(char c) {
    AIRINDEX_ASSIGN_OR_RETURN(char got, Peek());
    if (got != c) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' in JSON");
    }
    ++pos_;
    return Status::OK();
  }

  Result<JsonValue> ParseValue() {
    AIRINDEX_ASSIGN_OR_RETURN(char c, Peek());
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      AIRINDEX_ASSIGN_OR_RETURN(v.string, ParseString());
      return v;
    }
    if (c == 't' || c == 'f' || c == 'n') return ParseKeyword();
    return ParseNumber();
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Result<JsonValue> ParseKeyword() {
    JsonValue v;
    if (ConsumeWord("true")) {
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (ConsumeWord("false")) {
      v.type = JsonValue::Type::kBool;
      return v;
    }
    if (ConsumeWord("null")) return v;
    return Status::InvalidArgument("unrecognized JSON keyword");
  }

  Result<std::string> ParseString() {
    AIRINDEX_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out += c;
        continue;
      }
      // Standard JSON escapes: hand-written spec files use them even
      // though this library's writers only ever emit \" and \\.
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("unterminated escape in JSON");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          AIRINDEX_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Status::InvalidArgument(
              std::string("unknown JSON escape \\") + e);
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated JSON string");
    }
    ++pos_;  // closing quote
    return out;
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Status::InvalidArgument("truncated \\u escape in JSON");
    }
    uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') {
        cp |= static_cast<uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        cp |= static_cast<uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        cp |= static_cast<uint32_t>(h - 'A' + 10);
      } else {
        return Status::InvalidArgument("malformed \\u escape in JSON");
      }
    }
    return cp;
  }

  /// UTF-8 encoding of a BMP code point (surrogate pairs are passed
  /// through as their individual units; report fields never need them).
  static void AppendUtf8(std::string& out, uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Result<JsonValue> ParseNumber() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.string = std::string(text_.substr(start, pos_ - start));
    auto [end, ec] = std::from_chars(text_.data() + start,
                                     text_.data() + pos_, v.number);
    if (ec != std::errc() || end != text_.data() + pos_ || start == pos_) {
      return Status::InvalidArgument("malformed JSON number");
    }
    return v;
  }

  Result<JsonValue> ParseObject() {
    AIRINDEX_RETURN_IF_ERROR(Expect('{'));
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    AIRINDEX_ASSIGN_OR_RETURN(char c, Peek());
    if (c == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      AIRINDEX_ASSIGN_OR_RETURN(std::string key, ParseString());
      AIRINDEX_RETURN_IF_ERROR(Expect(':'));
      AIRINDEX_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.object.emplace(std::move(key), std::move(member));
      AIRINDEX_ASSIGN_OR_RETURN(char next, Peek());
      ++pos_;
      if (next == '}') return v;
      if (next != ',') {
        return Status::InvalidArgument("expected ',' or '}' in JSON object");
      }
    }
  }

  Result<JsonValue> ParseArray() {
    AIRINDEX_RETURN_IF_ERROR(Expect('['));
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    AIRINDEX_ASSIGN_OR_RETURN(char c, Peek());
    if (c == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      AIRINDEX_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      v.array.push_back(std::move(element));
      AIRINDEX_ASSIGN_OR_RETURN(char next, Peek());
      ++pos_;
      if (next == ']') return v;
      if (next != ',') {
        return Status::InvalidArgument("expected ',' or ']' in JSON array");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

Result<double> GetNumber(const JsonValue& obj, std::string_view key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end()) {
    return Status::InvalidArgument("missing numeric field " +
                                   std::string(key));
  }
  // The writer serializes non-finite doubles as null (JSON has no NaN
  // literal); map them back so a report with a NaN metric round-trips.
  if (it->second.type == JsonValue::Type::kNull) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (it->second.type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument("missing numeric field " +
                                   std::string(key));
  }
  return it->second.number;
}

Result<uint64_t> GetUint64(const JsonValue& obj, std::string_view key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() ||
      it->second.type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument("missing numeric field " +
                                   std::string(key));
  }
  const std::string& raw = it->second.string;
  uint64_t v = 0;
  auto [end, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), v);
  if (ec != std::errc() || end != raw.data() + raw.size()) {
    return Status::InvalidArgument("field " + std::string(key) +
                                   " is not an unsigned integer");
  }
  return v;
}

Result<std::string> GetString(const JsonValue& obj, std::string_view key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() ||
      it->second.type != JsonValue::Type::kString) {
    return Status::InvalidArgument("missing string field " +
                                   std::string(key));
  }
  return it->second.string;
}

Result<double> GetNumberOr(const JsonValue& obj, std::string_view key,
                           double fallback) {
  if (obj.object.find(key) == obj.object.end()) return fallback;
  return GetNumber(obj, key);
}

Result<uint64_t> GetUint64Or(const JsonValue& obj, std::string_view key,
                             uint64_t fallback) {
  if (obj.object.find(key) == obj.object.end()) return fallback;
  return GetUint64(obj, key);
}

Result<std::string> GetStringOr(const JsonValue& obj, std::string_view key,
                                std::string_view fallback) {
  if (obj.object.find(key) == obj.object.end()) {
    return std::string(fallback);
  }
  return GetString(obj, key);
}

Result<bool> GetBoolOr(const JsonValue& obj, std::string_view key,
                       bool fallback) {
  auto it = obj.object.find(key);
  if (it == obj.object.end()) return fallback;
  if (it->second.type == JsonValue::Type::kBool) return it->second.boolean;
  if (it->second.type == JsonValue::Type::kNumber) {
    return it->second.number != 0.0;
  }
  return Status::InvalidArgument("field " + std::string(key) +
                                 " is not a boolean");
}

}  // namespace airindex::sim::jsonutil
