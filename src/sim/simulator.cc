#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <optional>

#include "common/thread_pool.h"
#include "core/query_scratch.h"

namespace airindex::sim {

unsigned Simulator::effective_threads() const {
  return ResolveThreads(options_.threads);
}

uint64_t QueryLossSeed(uint64_t base_seed, size_t index) {
  // SplitMix64 over the batch seed and the query ordinal.
  uint64_t z = base_seed + 0x9E3779B97f4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

SystemResult Simulator::RunSystem(const core::AirSystem& sys,
                                  const workload::Workload& w) const {
  SystemResult result;
  result.system = std::string(sys.name());
  result.per_query.resize(w.queries.size());

  // One scratch per worker thread, reused across the thread's whole query
  // slice (and across repetitions) — the allocation-free steady state.
  std::vector<core::QueryScratch> scratch(
      ResolveWorkers(w.queries.size(), options_.threads));

  // Static broadcast-disk schedule: planned once per system, shared
  // read-only by every per-query channel replay. Flat mode (and a planner
  // that collapses to the flat spec) keeps the channels schedule-free —
  // the historical construction, bit for bit. Online mode has no meaning
  // here (no shared timeline); callers reject it before reaching the
  // engine, and a policy that slips through degrades to flat.
  std::optional<broadcast::BroadcastSchedule> sched;
  if (options_.schedule.mode == SchedulePolicy::Mode::kStatic) {
    broadcast::ScheduleSpec spec = PlanStaticSpec(
        sys.cycle(), options_.schedule_demand, options_.schedule,
        options_.encoding);
    if (!spec.flat()) {
      auto compiled =
          broadcast::BroadcastSchedule::Compile(&sys.cycle(), std::move(spec));
      if (compiled.ok()) sched = std::move(compiled).value();
    }
  }
  const broadcast::BroadcastSchedule* schedule =
      sched.has_value() ? &*sched : nullptr;

  // Packet duration on this engine's (single, full-rate) channel — prices
  // the wait/listen split of the latency window in milliseconds. With FEC
  // on, the on-air timeline is longer than the logical packet count
  // (parity slots), so the pricing switches to the session's physical-slot
  // window; the historical packet-count formula is kept verbatim otherwise
  // so FEC-off runs stay bit-identical.
  const double pkt_ms =
      device::PacketSeconds(options_.bits_per_second) * 1000.0;
  const bool fec_on = options_.fec.enabled();

  const unsigned repeat = std::max(1u, options_.repeat);
  double best_wall = 0.0;
  for (unsigned rep = 0; rep < repeat; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    ParallelForWorker(
        w.queries.size(),
        [&](unsigned worker, size_t i) {
          broadcast::BroadcastChannel channel(
              &sys.cycle(), options_.loss,
              QueryLossSeed(options_.loss_seed, i), options_.fec, schedule);
          device::QueryMetrics m = sys.RunQuery(
              channel, core::MakeAirQuery(*graph_, w.queries[i]),
              options_.client, &scratch[worker]);
          if (fec_on) {
            m.wait_ms = static_cast<double>(m.wait_slots) * pkt_ms;
            m.listen_ms =
                static_cast<double>(m.latency_slots - m.wait_slots) *
                pkt_ms;
          } else {
            m.wait_ms = static_cast<double>(m.wait_packets) * pkt_ms;
            m.listen_ms =
                static_cast<double>(m.latency_packets - m.wait_packets) *
                pkt_ms;
          }
          if (options_.deterministic) m.cpu_ms = 0.0;
          result.per_query[i] = m;
        },
        options_.threads);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    best_wall = rep == 0 ? wall : std::min(best_wall, wall);
  }
  result.wall_seconds = best_wall;
  result.queries_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(w.queries.size()) / result.wall_seconds
          : 0.0;

  result.aggregate =
      Aggregate::Of(result.system, result.per_query, energy_model());
  return result;
}

BatchResult Simulator::Run(std::span<const core::AirSystem* const> systems,
                           const workload::Workload& w) const {
  BatchResult batch;
  batch.num_queries = w.queries.size();
  batch.threads = effective_threads();
  batch.loss_rate = options_.loss.rate;
  batch.loss_burst_len = options_.loss.burst_len;
  batch.corrupt_bit = options_.loss.corrupt_bit;
  batch.loss_seed = options_.loss_seed;
  batch.fec = options_.fec;
  batch.schedule_mode = std::string(ScheduleModeName(options_.schedule.mode));
  const auto start = std::chrono::steady_clock::now();
  for (const core::AirSystem* sys : systems) {
    batch.systems.push_back(RunSystem(*sys, w));
  }
  batch.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return batch;
}

}  // namespace airindex::sim
