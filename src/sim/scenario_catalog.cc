#include "sim/scenario_catalog.h"

#include <string>
#include <vector>

namespace airindex::sim {

namespace {

ClientGroupSpec Group(std::string name, double weight) {
  ClientGroupSpec g;
  g.name = std::move(name);
  g.weight = weight;
  return g;
}

Scenario PaperBaseline() {
  Scenario s;
  s.name = "paper-baseline";
  s.description =
      "the paper's §7 population: uniform random queries from one J2ME "
      "phone fleet, lossless static-3G channel";
  s.total_queries = 64;
  s.groups.push_back(Group("uniform", 1.0));
  return s;
}

Scenario CommuterRush() {
  Scenario s;
  s.name = "commuter-rush";
  s.description =
      "moving-3G commuters clustered in two districts tuning in at rush "
      "hour, alongside static pedestrians";
  s.total_queries = 60;

  ClientGroupSpec commuters = Group("commuters", 2.0);
  commuters.profile = "smartphone";
  commuters.bits_per_second = device::kBitrateMoving3G;
  commuters.loss = broadcast::LossModel::Independent(0.01);
  commuters.workload.source = workload::WorkloadSpec::Source::kClustered;
  commuters.workload.partition_regions = 16;
  commuters.workload.source_regions = {0, 1};
  commuters.workload.phase = workload::WorkloadSpec::Phase::kRushHour;
  commuters.workload.phase_peak = 0.35;
  commuters.workload.phase_width = 0.08;
  commuters.client.max_repair_cycles = 64;
  s.groups.push_back(std::move(commuters));

  ClientGroupSpec pedestrians = Group("pedestrians", 1.0);
  pedestrians.loss = broadcast::LossModel::Independent(0.005);
  pedestrians.client.max_repair_cycles = 64;
  s.groups.push_back(std::move(pedestrians));
  return s;
}

Scenario HotspotCity() {
  Scenario s;
  s.name = "hotspot-city";
  s.description =
      "Milan with Zipf-skewed destinations: most queries pull toward a "
      "few downtown hotspots, locals more skewed than tourists";
  s.network = "Milan";
  s.scale = 0.15;
  s.total_queries = 60;

  ClientGroupSpec locals = Group("locals", 2.0);
  locals.workload.dest = workload::WorkloadSpec::Dest::kZipf;
  locals.workload.zipf_s = 1.2;
  s.groups.push_back(std::move(locals));

  ClientGroupSpec tourists = Group("tourists", 1.0);
  tourists.profile = "smartphone";
  tourists.bits_per_second = device::kBitrateMoving3G;
  tourists.workload.dest = workload::WorkloadSpec::Dest::kZipf;
  tourists.workload.zipf_s = 0.8;
  s.groups.push_back(std::move(tourists));
  return s;
}

/// HotspotCity moved onto the shared-station event engine with the online
/// broadcast-disk re-planner: Poisson arrivals span several re-plan epochs,
/// so the demand estimator warms up on the flat timeline, observes the
/// zipf hotspots, and adopts a square-root-rule disk schedule mid-run.
Scenario HotspotCityDisks() {
  Scenario s;
  s.name = "hotspot-city-disks";
  s.description =
      "event engine: the hotspot-city zipf skew on a shared station whose "
      "online re-planner adopts a broadcast-disk schedule from observed "
      "demand";
  s.network = "Milan";
  s.scale = 0.15;
  s.engine = "event";
  s.total_queries = 60;
  s.schedule.mode = SchedulePolicy::Mode::kOnline;

  ClientGroupSpec locals = Group("locals", 2.0);
  locals.workload.dest = workload::WorkloadSpec::Dest::kZipf;
  locals.workload.zipf_s = 1.2;
  locals.workload.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
  locals.workload.arrival.rate_per_second = 3.0;
  s.groups.push_back(std::move(locals));

  ClientGroupSpec tourists = Group("tourists", 1.0);
  tourists.profile = "smartphone";
  tourists.bits_per_second = device::kBitrateMoving3G;
  tourists.workload.dest = workload::WorkloadSpec::Dest::kZipf;
  tourists.workload.zipf_s = 0.8;
  tourists.workload.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
  tourists.workload.arrival.rate_per_second = 1.5;
  s.groups.push_back(std::move(tourists));
  return s;
}

Scenario IotFleet() {
  Scenario s;
  s.name = "iot-fleet";
  s.description =
      "battery sensor nodes (1 MB heap, memory-bound processing) on a "
      "bursty fading channel at moving-3G bitrate";
  s.total_queries = 48;

  ClientGroupSpec sensors = Group("sensors", 1.0);
  sensors.profile = "iot-sensor";
  sensors.bits_per_second = device::kBitrateMoving3G;
  sensors.loss = broadcast::LossModel::Bursty(0.02, 8);
  sensors.client.memory_bound = true;
  sensors.client.max_repair_cycles = 64;
  s.groups.push_back(std::move(sensors));
  return s;
}

Scenario LossyTunnel() {
  Scenario s;
  s.name = "lossy-tunnel";
  s.description =
      "twin J2ME groups differing only in loss model: independent 2% "
      "losses vs the same rate grouped into 8-packet fade bursts";
  s.total_queries = 48;

  ClientGroupSpec clear = Group("independent-loss", 1.0);
  clear.loss = broadcast::LossModel::Independent(0.02);
  clear.client.max_repair_cycles = 64;
  // Pin both groups to one workload/loss stream so they are true twins:
  // the only difference between the groups is how losses are grouped.
  clear.workload.seed = 20100913;
  clear.loss_seed = 20100913;
  s.groups.push_back(std::move(clear));

  ClientGroupSpec tunnel = Group("bursty-loss", 1.0);
  tunnel.loss = broadcast::LossModel::Bursty(0.02, 8);
  tunnel.client.max_repair_cycles = 64;
  tunnel.workload.seed = 20100913;
  tunnel.loss_seed = 20100913;
  s.groups.push_back(std::move(tunnel));
  return s;
}

Scenario MixedFleet() {
  Scenario s;
  s.name = "mixed-fleet";
  s.description =
      "the whole zoo at once: rush-hour smartphone commuters, memory-bound "
      "sensors on a bursty link, and uniform feature phones";
  s.total_queries = 72;

  ClientGroupSpec commuters = Group("commuters", 1.0);
  commuters.profile = "smartphone";
  commuters.bits_per_second = device::kBitrateMoving3G;
  commuters.loss = broadcast::LossModel::Independent(0.01);
  commuters.workload.dest = workload::WorkloadSpec::Dest::kZipf;
  commuters.workload.zipf_s = 1.1;
  commuters.workload.phase = workload::WorkloadSpec::Phase::kRushHour;
  commuters.client.max_repair_cycles = 64;
  s.groups.push_back(std::move(commuters));

  ClientGroupSpec sensors = Group("sensors", 1.0);
  sensors.profile = "iot-sensor";
  sensors.loss = broadcast::LossModel::Bursty(0.015, 4);
  sensors.client.memory_bound = true;
  sensors.client.max_repair_cycles = 64;
  s.groups.push_back(std::move(sensors));

  ClientGroupSpec phones = Group("feature-phones", 1.0);
  phones.loss = broadcast::LossModel::Independent(0.002);
  phones.client.max_repair_cycles = 64;
  s.groups.push_back(std::move(phones));
  return s;
}

/// fig13's memory-bound comparison as a scenario: EB and NR with and
/// without §6.1 client-side pre-computation, identical workloads.
Scenario MemboundPrecompute() {
  Scenario s;
  s.name = "membound-precompute";
  s.description =
      "fig13's §6.1 ablation: clients with vs without super-edge "
      "pre-computation (affects EB/NR), identical uniform workloads";
  s.total_queries = 60;

  ClientGroupSpec with = Group("with-precomp", 1.0);
  with.client.memory_bound = true;
  // Identical workload and channel replay in both groups: fix the seeds
  // instead of deriving per-group streams, so the ablation compares like
  // against like.
  with.workload.seed = 20100913;
  with.loss_seed = 20100913;
  s.groups.push_back(std::move(with));

  ClientGroupSpec without = Group("without-precomp", 1.0);
  without.client.memory_bound = false;
  without.workload.seed = 20100913;
  without.loss_seed = 20100913;
  s.groups.push_back(std::move(without));
  return s;
}

/// LossyTunnel's twin design aimed at FEC: both groups ride the identical
/// 2% independent-loss realization, but one listens to an FEC-coded cycle
/// (16 data + 2 parity per group) and the other repairs losses next cycle.
/// The delta between the groups is exactly what the parity slots buy.
Scenario LossyTunnelFec() {
  Scenario s;
  s.name = "lossy-tunnel-fec";
  s.description =
      "twin J2ME groups on the same 2% lossy stream: FEC-coded cycle "
      "(16+2 parity per group) vs plain next-cycle repair";
  s.total_queries = 48;

  ClientGroupSpec coded = Group("fec-16p2", 1.0);
  coded.loss = broadcast::LossModel::Independent(0.02);
  coded.fec = broadcast::FecScheme{16, 2};
  coded.client.max_repair_cycles = 64;
  // Same twin-pinning trick as lossy-tunnel: identical workload and loss
  // streams, so the only difference between the groups is the code.
  coded.workload.seed = 20100913;
  coded.loss_seed = 20100913;
  s.groups.push_back(std::move(coded));

  ClientGroupSpec plain = Group("repair-only", 1.0);
  plain.loss = broadcast::LossModel::Independent(0.02);
  plain.client.max_repair_cycles = 64;
  plain.workload.seed = 20100913;
  plain.loss_seed = 20100913;
  s.groups.push_back(std::move(plain));
  return s;
}

/// Shared-channel flash crowd on the event engine: a steady Poisson
/// trickle of background clients, then a rush-hour burst piling onto the
/// same station timeline — the pileup (everyone waiting for the same
/// index/cycle packets) shows up as the wait_ms tail.
Scenario FlashCrowd() {
  Scenario s;
  s.name = "flash-crowd";
  s.description =
      "event engine: steady Poisson arrivals plus a rush-hour burst piling "
      "onto one shared broadcast station (wait/listen latency split)";
  s.engine = "event";
  s.total_queries = 60;

  ClientGroupSpec steady = Group("steady", 1.0);
  steady.loss = broadcast::LossModel::Independent(0.005);
  steady.client.max_repair_cycles = 64;
  steady.workload.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
  steady.workload.arrival.rate_per_second = 4.0;
  s.groups.push_back(std::move(steady));

  ClientGroupSpec crowd = Group("flash-crowd", 2.0);
  crowd.profile = "smartphone";
  crowd.loss = broadcast::LossModel::Independent(0.005);
  crowd.client.max_repair_cycles = 64;
  crowd.workload.dest = workload::WorkloadSpec::Dest::kZipf;
  crowd.workload.zipf_s = 1.2;
  crowd.workload.arrival.kind = workload::ArrivalSpec::Kind::kRushHour;
  crowd.workload.arrival.rate_per_second = 2.0;
  crowd.workload.arrival.peak_seconds = 6.0;
  crowd.workload.arrival.width_seconds = 3.0;
  crowd.workload.arrival.peak_multiplier = 10.0;
  s.groups.push_back(std::move(crowd));
  return s;
}

/// FlashCrowd on a dirtier radio: the same station pileup, but the channel
/// both drops and corrupts packets, and the station codes the cycle. CRC
/// failures surface as corrupted_packets; group recoveries as
/// fec_recovered.
Scenario FlashCrowdFec() {
  Scenario s;
  s.name = "flash-crowd-fec";
  s.description =
      "event engine under a corrupting channel: the flash-crowd pileup "
      "with bit errors (CRC-detected) and an FEC-coded station cycle";
  s.engine = "event";
  s.total_queries = 60;

  ClientGroupSpec steady = Group("steady", 1.0);
  steady.loss = broadcast::LossModel::Of(0.01, 1, 2e-5);
  steady.fec = broadcast::FecScheme{16, 2};
  steady.client.max_repair_cycles = 64;
  steady.workload.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
  steady.workload.arrival.rate_per_second = 4.0;
  s.groups.push_back(std::move(steady));

  ClientGroupSpec crowd = Group("flash-crowd", 2.0);
  crowd.profile = "smartphone";
  crowd.loss = broadcast::LossModel::Of(0.01, 1, 2e-5);
  crowd.fec = broadcast::FecScheme{16, 2};
  crowd.client.max_repair_cycles = 64;
  crowd.workload.dest = workload::WorkloadSpec::Dest::kZipf;
  crowd.workload.zipf_s = 1.2;
  crowd.workload.arrival.kind = workload::ArrivalSpec::Kind::kRushHour;
  crowd.workload.arrival.rate_per_second = 2.0;
  crowd.workload.arrival.peak_seconds = 6.0;
  crowd.workload.arrival.width_seconds = 3.0;
  crowd.workload.arrival.peak_multiplier = 10.0;
  s.groups.push_back(std::move(crowd));
  return s;
}

/// Persistent commuters on the event engine: every client poses a whole
/// journey of queries (8 per session) against its warm session cache, so
/// only the first query of a session pays the index tune-in. Clustered
/// home districts and zipf destinations keep the cached region chains hot
/// — a commuter re-queries from the same area, so NR's hop prefix and
/// EB's entry region repeat across the session.
Scenario CommuterSessions() {
  Scenario s;
  s.name = "commuter-sessions";
  s.description =
      "event engine: persistent rush-hour commuters posing 8-query "
      "sessions from a warm per-client cache (clustered homes, zipf "
      "destinations)";
  s.engine = "event";
  s.total_queries = 64;
  s.cache_bytes = 4u << 20;

  ClientGroupSpec commuters = Group("commuters", 2.0);
  commuters.profile = "smartphone";
  commuters.bits_per_second = device::kBitrateMoving3G;
  commuters.loss = broadcast::LossModel::Independent(0.01);
  commuters.client.max_repair_cycles = 64;
  commuters.workload.source = workload::WorkloadSpec::Source::kClustered;
  commuters.workload.partition_regions = 16;
  commuters.workload.source_regions = {0, 1};
  commuters.workload.dest = workload::WorkloadSpec::Dest::kZipf;
  commuters.workload.zipf_s = 1.1;
  commuters.workload.arrival.kind = workload::ArrivalSpec::Kind::kRushHour;
  commuters.workload.arrival.rate_per_second = 2.0;
  commuters.workload.arrival.peak_seconds = 6.0;
  commuters.workload.arrival.width_seconds = 3.0;
  commuters.workload.arrival.peak_multiplier = 8.0;
  commuters.workload.session.queries = 8;
  commuters.workload.session.think_ms = 250.0;
  s.groups.push_back(std::move(commuters));

  ClientGroupSpec pedestrians = Group("pedestrians", 1.0);
  pedestrians.loss = broadcast::LossModel::Independent(0.005);
  pedestrians.client.max_repair_cycles = 64;
  pedestrians.workload.arrival.kind = workload::ArrivalSpec::Kind::kPoisson;
  pedestrians.workload.arrival.rate_per_second = 3.0;
  pedestrians.workload.session.queries = 4;
  pedestrians.workload.session.think_ms = 500.0;
  s.groups.push_back(std::move(pedestrians));
  return s;
}

const std::vector<Scenario>& Catalog() {
  static const std::vector<Scenario>* catalog = new std::vector<Scenario>{
      PaperBaseline(),    CommuterRush(),  CommuterSessions(),
      HotspotCity(),      HotspotCityDisks(), IotFleet(),
      LossyTunnel(),      LossyTunnelFec(), MixedFleet(),
      MemboundPrecompute(), FlashCrowd(),  FlashCrowdFec()};
  return *catalog;
}

}  // namespace

std::span<const Scenario> ScenarioCatalog() { return Catalog(); }

Result<Scenario> FindScenario(std::string_view name) {
  for (const Scenario& s : Catalog()) {
    if (s.name == name) return s;
  }
  std::string known;
  for (const Scenario& s : Catalog()) {
    if (!known.empty()) known += ", ";
    known += s.name;
  }
  return Status::InvalidArgument("unknown scenario \"" + std::string(name) +
                                 "\" (known: " + known + ")");
}

}  // namespace airindex::sim
