#include "sim/scenario.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "device/energy.h"
#include "device/profile_catalog.h"
#include "graph/catalog.h"
#include "sim/event_engine.h"
#include "sim/report.h"

namespace airindex::sim {

namespace {

using jsonutil::GetBoolOr;
using jsonutil::GetNumber;
using jsonutil::GetNumberOr;
using jsonutil::GetString;
using jsonutil::GetStringOr;
using jsonutil::GetUint64;
using jsonutil::GetUint64Or;
using jsonutil::JsonValue;
using jsonutil::JsonWriter;

constexpr uint64_t kWorkloadSalt = 0x5EEDB07ull;
constexpr uint64_t kLossSalt = 0x10552AAull;

/// Derived per-group seed: a SplitMix64 mix of (scenario seed, salt, group
/// index) via the engine's QueryLossSeed, so every group samples an
/// independent stream regardless of thread count or run order.
uint64_t DeriveSeed(uint64_t scenario_seed, uint64_t salt,
                    size_t group_index) {
  return QueryLossSeed(scenario_seed ^ salt, group_index);
}

const std::vector<std::string>& AllSystems() {
  static const std::vector<std::string> kAll = {"DJ", "NR", "EB",  "LD",
                                                "AF", "SPQ", "HiTi"};
  return kAll;
}

}  // namespace

std::vector<std::string> Scenario::EffectiveSystems() const {
  return systems.empty() ? AllSystems() : systems;
}

Result<std::vector<size_t>> ResolveGroupCounts(const Scenario& s) {
  if (s.groups.empty()) {
    return Status::InvalidArgument("scenario has no client groups");
  }
  std::vector<size_t> counts(s.groups.size(), 0);
  size_t explicit_total = 0;
  double weight_total = 0.0;
  for (size_t i = 0; i < s.groups.size(); ++i) {
    const ClientGroupSpec& g = s.groups[i];
    if (g.queries > 0) {
      counts[i] = g.queries;
      explicit_total += g.queries;
    } else {
      // NaN compares false against everything, so `weight <= 0.0` alone
      // would wave a NaN weight through into the largest-remainder math
      // (where it poisons every share). Reject non-finite and <= 0 alike.
      if (!(g.weight > 0.0) || !std::isfinite(g.weight)) {
        return Status::InvalidArgument(
            "group \"" + g.name +
            "\" needs queries > 0 or a finite weight > 0");
      }
      weight_total += g.weight;
    }
  }
  if (weight_total == 0.0) return counts;  // all explicit
  const size_t budget =
      s.total_queries > explicit_total ? s.total_queries - explicit_total : 0;
  if (budget == 0) {
    return Status::InvalidArgument(
        "total_queries leaves no budget for weighted groups");
  }
  // Largest-remainder allocation, stable order on ties.
  size_t assigned = 0;
  std::vector<std::pair<double, size_t>> remainders;
  for (size_t i = 0; i < s.groups.size(); ++i) {
    if (counts[i] > 0) continue;
    const double share = static_cast<double>(budget) *
                         (s.groups[i].weight / weight_total);
    counts[i] = static_cast<size_t>(share);
    assigned += counts[i];
    remainders.emplace_back(share - static_cast<double>(counts[i]), i);
  }
  std::stable_sort(remainders.begin(), remainders.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  for (size_t r = 0; assigned < budget; r = (r + 1) % remainders.size()) {
    ++counts[remainders[r].second];
    ++assigned;
  }
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      return Status::InvalidArgument("group \"" + s.groups[i].name +
                                     "\" resolved to zero queries; raise "
                                     "total_queries");
    }
  }
  return counts;
}

Result<SystemResult> MergeGroupResults(std::span<const GroupResult> groups,
                                       size_t sys_index) {
  if (groups.empty()) return Status::InvalidArgument("no groups to merge");
  SystemResult fleet;
  std::vector<device::QueryMetrics> metrics;
  std::vector<double> joules;
  for (const GroupResult& gr : groups) {
    if (sys_index >= gr.systems.size()) {
      return Status::InvalidArgument("group \"" + gr.spec.name +
                                     "\" is missing a system result");
    }
    const SystemResult& r = gr.systems[sys_index];
    if (fleet.system.empty()) {
      fleet.system = r.system;
    } else if (fleet.system != r.system) {
      return Status::InvalidArgument("group system order mismatch: " +
                                     fleet.system + " vs " + r.system);
    }
    AIRINDEX_ASSIGN_OR_RETURN(device::DeviceProfile profile,
                              device::FindProfile(gr.spec.profile));
    const device::EnergyModel energy(profile, gr.spec.bits_per_second);
    for (const device::QueryMetrics& m : r.per_query) {
      metrics.push_back(m);
      joules.push_back(energy.QueryJoules(m));
    }
    fleet.wall_seconds += r.wall_seconds;
  }
  fleet.aggregate = Aggregate::Of(fleet.system, metrics, joules);
  fleet.queries_per_second =
      fleet.wall_seconds > 0.0
          ? static_cast<double>(metrics.size()) / fleet.wall_seconds
          : 0.0;
  return fleet;
}

Result<ScenarioResult> ScenarioRunner::Run(const Scenario& s) const {
  AIRINDEX_ASSIGN_OR_RETURN(graph::NetworkSpec spec,
                            graph::FindNetwork(s.network));
  AIRINDEX_ASSIGN_OR_RETURN(graph::Graph g,
                            graph::MakeNetwork(spec, s.scale));
  auto result = Run(s, g);
  // The graph dies with this frame; its registry entries must not outlive
  // it (cache keys are graph-address-based).
  core::SystemRegistry::Global().Evict(g);
  return result;
}

Result<ScenarioResult> ScenarioRunner::Run(const Scenario& s,
                                           const graph::Graph& g) const {
  AIRINDEX_ASSIGN_OR_RETURN(std::vector<size_t> counts,
                            ResolveGroupCounts(s));
  const std::vector<std::string> systems = s.EffectiveSystems();
  if (systems.empty()) {
    return Status::InvalidArgument("scenario lists no systems");
  }
  const std::string engine =
      !options_.engine.empty() ? options_.engine : s.engine;
  if (!IsKnownEngine(engine)) {
    return Status::InvalidArgument("unknown engine \"" + engine +
                                   "\" (batch|event)");
  }
  if (s.schedule.mode == SchedulePolicy::Mode::kOnline &&
      engine != "event") {
    return Status::InvalidArgument(
        "online schedule re-planning needs --engine=event (the batch "
        "engine's private per-query replays have no shared timeline to "
        "observe demand on)");
  }
  bool has_sessions = s.cache_bytes > 0;
  for (const ClientGroupSpec& g : s.groups) {
    has_sessions = has_sessions || g.workload.session.queries > 1;
  }
  if (has_sessions && engine != "event") {
    return Status::InvalidArgument(
        "persistent-client sessions (workload session / cache bytes) need "
        "--engine=event (the batch engine replays every query on a private "
        "channel, so there is no client to keep warm)");
  }
  if (has_sessions && s.schedule.mode == SchedulePolicy::Mode::kOnline) {
    return Status::InvalidArgument(
        "persistent-client sessions are not supported with the online "
        "schedule re-planner (its demand estimator assumes one-shot "
        "arrivals)");
  }

  // Static broadcast-disk planning weights groups by the fleet's merged
  // destination distribution: each group's analytic per-node demand,
  // count-weighted. Resolved here (not per group) because every group
  // listens to the *same* station timeline.
  std::vector<double> schedule_demand;
  if (s.schedule.mode == SchedulePolicy::Mode::kStatic) {
    schedule_demand.assign(g.num_nodes(), 0.0);
    size_t total_count = 0;
    for (size_t gi = 0; gi < s.groups.size(); ++gi) {
      workload::WorkloadSpec wspec = s.groups[gi].workload;
      if (wspec.seed == 0) wspec.seed = DeriveSeed(s.seed, kWorkloadSalt, gi);
      const std::vector<double> dw =
          workload::DestinationWeights(g.num_nodes(), wspec);
      for (size_t v = 0; v < dw.size(); ++v) {
        schedule_demand[v] += static_cast<double>(counts[gi]) * dw[v];
      }
      total_count += counts[gi];
    }
    if (total_count > 0) {
      for (double& d : schedule_demand) {
        d /= static_cast<double>(total_count);
      }
    }
  }

  // One build per (method, knob) across all groups, via the registry.
  core::SharedSystems shared;
  for (const std::string& name : systems) {
    AIRINDEX_ASSIGN_OR_RETURN(
        auto sys, core::SystemRegistry::Global().Get(g, name, s.params));
    shared.push_back(std::move(sys));
  }

  ScenarioResult result;
  result.scenario = s.name;
  result.network = s.network;
  result.engine = engine;
  result.subchannels = engine == "event" ? std::max(1u, s.subchannels) : 1;
  result.schedule_mode = std::string(ScheduleModeName(s.schedule.mode));
  result.scale = s.scale;

  const auto start = std::chrono::steady_clock::now();
  for (size_t gi = 0; gi < s.groups.size(); ++gi) {
    GroupResult gr;
    gr.spec = s.groups[gi];
    gr.spec.queries = counts[gi];

    AIRINDEX_ASSIGN_OR_RETURN(device::DeviceProfile profile,
                              device::FindProfile(gr.spec.profile));
    if (gr.spec.client.heap_bytes == 0) {
      gr.spec.client.heap_bytes = profile.heap_bytes;
    }

    workload::WorkloadSpec wspec = gr.spec.workload;
    wspec.count = counts[gi];
    if (wspec.seed == 0) wspec.seed = DeriveSeed(s.seed, kWorkloadSalt, gi);
    gr.workload_seed = wspec.seed;
    AIRINDEX_ASSIGN_OR_RETURN(workload::Workload w,
                              workload::GenerateWorkload(g, wspec));

    // Channel seed: the event engine derives one seed for the *whole
    // scenario* (shared-station model — groups with the same loss model
    // and bitrate literally share a channel realization, so the
    // flash-crowd pileup is every group fading together; a group with a
    // different loss model or bitrate still models its own radio
    // environment on the same clock). The batch engine keeps its
    // historical per-group streams.
    const uint64_t channel_seed =
        gr.spec.loss_seed != 0
            ? gr.spec.loss_seed
            : DeriveSeed(s.seed, kLossSalt, engine == "event" ? 0 : gi);
    gr.loss_seed = channel_seed;
    if (engine == "event") {
      EventOptions eo;
      eo.threads = options_.threads;
      eo.repeat = options_.repeat;
      eo.loss = gr.spec.loss;
      eo.fec = gr.spec.fec;
      eo.station_seed = channel_seed;
      eo.subchannels = result.subchannels;
      eo.client = gr.spec.client;
      eo.profile = profile;
      eo.bits_per_second = gr.spec.bits_per_second;
      eo.deterministic = options_.deterministic;
      eo.schedule = s.schedule;
      eo.schedule_demand = schedule_demand;
      eo.encoding = s.params.build.encoding;
      eo.session = wspec.session;
      eo.cache_bytes = s.cache_bytes;
      EventEngine event_engine(g, eo);
      result.threads = event_engine.effective_threads();
      for (const auto& sys : shared) {
        gr.systems.push_back(event_engine.RunSystem(*sys, w));
      }
    } else {
      SimOptions so;
      so.threads = options_.threads;
      so.repeat = options_.repeat;
      so.loss = gr.spec.loss;
      so.fec = gr.spec.fec;
      so.loss_seed = channel_seed;
      so.client = gr.spec.client;
      so.profile = profile;
      so.bits_per_second = gr.spec.bits_per_second;
      so.deterministic = options_.deterministic;
      so.schedule = s.schedule;
      so.schedule_demand = schedule_demand;
      so.encoding = s.params.build.encoding;
      Simulator simulator(g, so);
      result.threads = simulator.effective_threads();
      for (const auto& sys : shared) {
        gr.systems.push_back(simulator.RunSystem(*sys, w));
      }
    }
    result.num_queries += counts[gi];
    result.groups.push_back(std::move(gr));
  }

  for (size_t si = 0; si < systems.size(); ++si) {
    AIRINDEX_ASSIGN_OR_RETURN(SystemResult fleet,
                              MergeGroupResults(result.groups, si));
    result.fleet.push_back(std::move(fleet));
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

// ---------------------------------------------------------------------------
// Spec JSON
// ---------------------------------------------------------------------------

namespace {

Result<workload::WorkloadSpec> WorkloadSpecFromJson(const JsonValue& obj) {
  workload::WorkloadSpec w = ClientGroupSpec::DefaultWorkload();
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t seed, GetUint64Or(obj, "seed", w.seed));
  w.seed = seed;

  AIRINDEX_ASSIGN_OR_RETURN(std::string dest,
                            GetStringOr(obj, "destinations", "uniform"));
  if (dest == "zipf") {
    w.dest = workload::WorkloadSpec::Dest::kZipf;
  } else if (dest != "uniform") {
    return Status::InvalidArgument("unknown destination distribution \"" +
                                   dest + "\" (uniform|zipf)");
  }
  AIRINDEX_ASSIGN_OR_RETURN(w.zipf_s, GetNumberOr(obj, "zipf_s", w.zipf_s));

  AIRINDEX_ASSIGN_OR_RETURN(std::string source,
                            GetStringOr(obj, "sources", "uniform"));
  if (source == "clustered") {
    w.source = workload::WorkloadSpec::Source::kClustered;
  } else if (source != "uniform") {
    return Status::InvalidArgument("unknown source distribution \"" +
                                   source + "\" (uniform|clustered)");
  }
  AIRINDEX_ASSIGN_OR_RETURN(
      uint64_t cells,
      GetUint64Or(obj, "partition_regions", w.partition_regions));
  w.partition_regions = static_cast<uint32_t>(cells);
  if (auto it = obj.object.find("source_regions"); it != obj.object.end()) {
    if (it->second.type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("source_regions must be an array");
    }
    for (const JsonValue& v : it->second.array) {
      if (v.type != JsonValue::Type::kNumber) {
        return Status::InvalidArgument("source_regions must hold numbers");
      }
      w.source_regions.push_back(static_cast<uint32_t>(v.number));
    }
  }

  AIRINDEX_ASSIGN_OR_RETURN(std::string phase,
                            GetStringOr(obj, "phases", "uniform"));
  if (phase == "rush-hour") {
    w.phase = workload::WorkloadSpec::Phase::kRushHour;
  } else if (phase != "uniform") {
    return Status::InvalidArgument("unknown phase distribution \"" + phase +
                                   "\" (uniform|rush-hour)");
  }
  AIRINDEX_ASSIGN_OR_RETURN(w.phase_peak,
                            GetNumberOr(obj, "phase_peak", w.phase_peak));
  AIRINDEX_ASSIGN_OR_RETURN(w.phase_width,
                            GetNumberOr(obj, "phase_width", w.phase_width));

  // Additive airindex.sim.scenario/v1 fields: the event engine's arrival
  // process. Older specs without them keep the phase-derived fallback.
  AIRINDEX_ASSIGN_OR_RETURN(std::string arrivals,
                            GetStringOr(obj, "arrivals", "none"));
  AIRINDEX_ASSIGN_OR_RETURN(w.arrival.kind,
                            workload::ParseArrivalKind(arrivals));
  AIRINDEX_ASSIGN_OR_RETURN(
      w.arrival.rate_per_second,
      GetNumberOr(obj, "arrival_rate", w.arrival.rate_per_second));
  AIRINDEX_ASSIGN_OR_RETURN(
      w.arrival.peak_seconds,
      GetNumberOr(obj, "arrival_peak_s", w.arrival.peak_seconds));
  AIRINDEX_ASSIGN_OR_RETURN(
      w.arrival.width_seconds,
      GetNumberOr(obj, "arrival_width_s", w.arrival.width_seconds));
  AIRINDEX_ASSIGN_OR_RETURN(
      w.arrival.peak_multiplier,
      GetNumberOr(obj, "arrival_peak_multiplier",
                  w.arrival.peak_multiplier));
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t arrival_seed,
                            GetUint64Or(obj, "arrival_seed", 0));
  w.arrival.seed = arrival_seed;

  // Additive airindex.sim.scenario/v1 field: persistent-client sessions.
  // Absent = one-shot clients (the historical model).
  if (auto it = obj.object.find("session"); it != obj.object.end()) {
    if (it->second.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("session must be an object");
    }
    AIRINDEX_ASSIGN_OR_RETURN(
        uint64_t per_session,
        GetUint64Or(it->second, "queries", w.session.queries));
    if (per_session == 0) {
      return Status::InvalidArgument("session queries must be >= 1");
    }
    w.session.queries = static_cast<uint32_t>(per_session);
    AIRINDEX_ASSIGN_OR_RETURN(
        w.session.think_ms,
        GetNumberOr(it->second, "think_ms", w.session.think_ms));
    if (!(w.session.think_ms >= 0.0)) {
      return Status::InvalidArgument("session think_ms must be >= 0");
    }
  }
  return w;
}

Result<ClientGroupSpec> GroupFromJson(const JsonValue& obj) {
  ClientGroupSpec g;
  AIRINDEX_ASSIGN_OR_RETURN(g.name, GetString(obj, "name"));
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t queries,
                            GetUint64Or(obj, "queries", 0));
  g.queries = static_cast<size_t>(queries);
  AIRINDEX_ASSIGN_OR_RETURN(g.weight, GetNumberOr(obj, "weight", g.weight));
  // Reject bad weights here, where the offending group is still a named
  // JSON entry, instead of letting ResolveGroupCounts trip over them (or,
  // pre-fix, letting a NaN slide into the share math).
  if (!std::isfinite(g.weight)) {
    return Status::InvalidArgument("group \"" + g.name +
                                   "\" has a non-finite weight");
  }
  if (g.queries == 0 && !(g.weight > 0.0)) {
    return Status::InvalidArgument("group \"" + g.name +
                                   "\" needs queries > 0 or weight > 0");
  }
  AIRINDEX_ASSIGN_OR_RETURN(g.profile,
                            GetStringOr(obj, "profile", g.profile));
  AIRINDEX_ASSIGN_OR_RETURN(
      g.bits_per_second,
      GetNumberOr(obj, "bits_per_second", g.bits_per_second));
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t loss_seed,
                            GetUint64Or(obj, "loss_seed", 0));
  g.loss_seed = loss_seed;

  if (auto it = obj.object.find("loss"); it != obj.object.end()) {
    if (it->second.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("loss must be an object");
    }
    AIRINDEX_ASSIGN_OR_RETURN(g.loss.rate,
                              GetNumberOr(it->second, "rate", 0.0));
    AIRINDEX_ASSIGN_OR_RETURN(uint64_t burst,
                              GetUint64Or(it->second, "burst_len", 1));
    g.loss.burst_len = static_cast<uint32_t>(burst);
    if (g.loss.burst_len == 0) {
      return Status::InvalidArgument("loss burst_len must be >= 1");
    }
    // Additive airindex.sim.scenario/v1 field: per-bit corruption rate of
    // packets that survive erasure (see LossModel::corrupt_bit).
    AIRINDEX_ASSIGN_OR_RETURN(g.loss.corrupt_bit,
                              GetNumberOr(it->second, "corrupt_bit", 0.0));
    if (!(g.loss.corrupt_bit >= 0.0) || g.loss.corrupt_bit >= 1.0) {
      return Status::InvalidArgument(
          "loss corrupt_bit must be in [0, 1)");
    }
  }

  // Additive airindex.sim.scenario/v1 field: station-side FEC for this
  // group's channel. Absent = no parity (plain next-cycle repair).
  if (auto it = obj.object.find("fec"); it != obj.object.end()) {
    if (it->second.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("fec must be an object");
    }
    AIRINDEX_ASSIGN_OR_RETURN(
        uint64_t data,
        GetUint64Or(it->second, "data_per_group", g.fec.data_per_group));
    AIRINDEX_ASSIGN_OR_RETURN(
        uint64_t parity,
        GetUint64Or(it->second, "parity_per_group", g.fec.parity_per_group));
    g.fec.data_per_group = static_cast<uint32_t>(data);
    g.fec.parity_per_group = static_cast<uint32_t>(parity);
    if (!g.fec.Valid()) {
      return Status::InvalidArgument(
          "fec needs 2 <= data_per_group <= 64 and parity_per_group <= "
          "data_per_group");
    }
  }

  if (auto it = obj.object.find("client"); it != obj.object.end()) {
    if (it->second.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("client must be an object");
    }
    const JsonValue& c = it->second;
    AIRINDEX_ASSIGN_OR_RETURN(uint64_t heap,
                              GetUint64Or(c, "heap_bytes", 0));
    g.client.heap_bytes = static_cast<size_t>(heap);
    AIRINDEX_ASSIGN_OR_RETURN(
        g.client.memory_bound,
        GetBoolOr(c, "memory_bound", g.client.memory_bound));
    AIRINDEX_ASSIGN_OR_RETURN(
        g.client.cross_border_opt,
        GetBoolOr(c, "cross_border_opt", g.client.cross_border_opt));
    AIRINDEX_ASSIGN_OR_RETURN(
        uint64_t repair,
        GetUint64Or(c, "max_repair_cycles",
                    static_cast<uint64_t>(g.client.max_repair_cycles)));
    g.client.max_repair_cycles = static_cast<int>(repair);
    AIRINDEX_ASSIGN_OR_RETURN(
        g.client.repair_header,
        GetBoolOr(c, "repair_header", g.client.repair_header));
  }

  if (auto it = obj.object.find("workload"); it != obj.object.end()) {
    if (it->second.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("workload must be an object");
    }
    AIRINDEX_ASSIGN_OR_RETURN(g.workload,
                              WorkloadSpecFromJson(it->second));
  }
  return g;
}

Result<SchedulePolicy> ScheduleFromJson(const JsonValue& obj) {
  SchedulePolicy p;
  AIRINDEX_ASSIGN_OR_RETURN(std::string mode, GetStringOr(obj, "mode", "flat"));
  if (mode == "flat") {
    p.mode = SchedulePolicy::Mode::kFlat;
  } else if (mode == "disks" || mode == "static") {
    p.mode = SchedulePolicy::Mode::kStatic;
  } else if (mode == "online") {
    p.mode = SchedulePolicy::Mode::kOnline;
  } else {
    return Status::InvalidArgument("unknown schedule mode \"" + mode +
                                   "\" (flat|disks|online)");
  }
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t disks,
                            GetUint64Or(obj, "disks", p.disks));
  if (disks == 0 || disks > 16) {
    return Status::InvalidArgument("schedule disks must be in [1, 16]");
  }
  p.disks = static_cast<uint32_t>(disks);
  if (auto it = obj.object.find("rates"); it != obj.object.end()) {
    if (it->second.type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("schedule rates must be an array");
    }
    for (const JsonValue& v : it->second.array) {
      if (v.type != JsonValue::Type::kNumber || !(v.number >= 1.0)) {
        return Status::InvalidArgument(
            "schedule rates must hold numbers >= 1");
      }
      p.rates.push_back(static_cast<uint32_t>(v.number));
    }
    if (p.rates.size() != p.disks) {
      return Status::InvalidArgument(
          "schedule rates must list one spin per disk");
    }
  }
  AIRINDEX_ASSIGN_OR_RETURN(
      uint64_t replan, GetUint64Or(obj, "replan_cycles", p.replan_cycles));
  if (replan == 0) {
    return Status::InvalidArgument("schedule replan_cycles must be >= 1");
  }
  p.replan_cycles = static_cast<uint32_t>(replan);
  AIRINDEX_ASSIGN_OR_RETURN(p.decay, GetNumberOr(obj, "decay", p.decay));
  if (!(p.decay >= 0.0) || p.decay > 1.0) {
    return Status::InvalidArgument("schedule decay must be in [0, 1]");
  }
  AIRINDEX_ASSIGN_OR_RETURN(p.hysteresis,
                            GetNumberOr(obj, "hysteresis", p.hysteresis));
  if (!(p.hysteresis >= 0.0) || p.hysteresis >= 1.0) {
    return Status::InvalidArgument("schedule hysteresis must be in [0, 1)");
  }
  AIRINDEX_ASSIGN_OR_RETURN(p.min_skew,
                            GetNumberOr(obj, "min_skew", p.min_skew));
  if (!(p.min_skew >= 0.0)) {
    return Status::InvalidArgument("schedule min_skew must be >= 0");
  }
  return p;
}

Result<core::SystemParams> ParamsFromJson(const JsonValue& obj) {
  core::SystemParams p;
  AIRINDEX_ASSIGN_OR_RETURN(
      uint64_t v, GetUint64Or(obj, "arcflag_regions", p.arcflag_regions));
  p.arcflag_regions = static_cast<uint32_t>(v);
  AIRINDEX_ASSIGN_OR_RETURN(v, GetUint64Or(obj, "eb_regions", p.eb_regions));
  p.eb_regions = static_cast<uint32_t>(v);
  AIRINDEX_ASSIGN_OR_RETURN(v, GetUint64Or(obj, "nr_regions", p.nr_regions));
  p.nr_regions = static_cast<uint32_t>(v);
  AIRINDEX_ASSIGN_OR_RETURN(v, GetUint64Or(obj, "landmarks", p.landmarks));
  p.landmarks = static_cast<uint32_t>(v);
  AIRINDEX_ASSIGN_OR_RETURN(v,
                            GetUint64Or(obj, "hiti_regions", p.hiti_regions));
  p.hiti_regions = static_cast<uint32_t>(v);
  return p;
}

}  // namespace

Result<Scenario> ScenarioFromJson(std::string_view json) {
  AIRINDEX_ASSIGN_OR_RETURN(JsonValue root, jsonutil::ParseJson(json));
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("scenario root must be a JSON object");
  }
  AIRINDEX_ASSIGN_OR_RETURN(std::string schema, GetString(root, "schema"));
  if (schema != kScenarioSchema) {
    return Status::InvalidArgument("unsupported scenario schema " + schema);
  }

  Scenario s;
  AIRINDEX_ASSIGN_OR_RETURN(s.name, GetString(root, "name"));
  AIRINDEX_ASSIGN_OR_RETURN(s.description,
                            GetStringOr(root, "description", ""));
  AIRINDEX_ASSIGN_OR_RETURN(s.network,
                            GetStringOr(root, "network", s.network));
  AIRINDEX_ASSIGN_OR_RETURN(s.scale, GetNumberOr(root, "scale", s.scale));
  AIRINDEX_ASSIGN_OR_RETURN(s.seed, GetUint64Or(root, "seed", s.seed));
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t total,
                            GetUint64Or(root, "total_queries",
                                        s.total_queries));
  s.total_queries = static_cast<size_t>(total);
  // Additive in-schema fields: engine selection and sub-channel sharding.
  AIRINDEX_ASSIGN_OR_RETURN(s.engine, GetStringOr(root, "engine", s.engine));
  if (!IsKnownEngine(s.engine)) {
    return Status::InvalidArgument("unknown engine \"" + s.engine +
                                   "\" (batch|event)");
  }
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t subs,
                            GetUint64Or(root, "subchannels", s.subchannels));
  if (subs == 0) {
    return Status::InvalidArgument("subchannels must be >= 1");
  }
  s.subchannels = static_cast<uint32_t>(subs);

  // Additive airindex.sim.scenario/v1 field: broadcast-disk scheduling.
  // Absent = flat (the historical timeline).
  if (auto it = root.object.find("schedule"); it != root.object.end()) {
    if (it->second.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("schedule must be an object");
    }
    AIRINDEX_ASSIGN_OR_RETURN(s.schedule, ScheduleFromJson(it->second));
  }

  // Additive airindex.sim.scenario/v1 field: per-client session-cache
  // budget. Absent = no cache (the historical stateless client).
  if (auto it = root.object.find("cache"); it != root.object.end()) {
    if (it->second.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("cache must be an object");
    }
    AIRINDEX_ASSIGN_OR_RETURN(uint64_t bytes,
                              GetUint64Or(it->second, "bytes", 0));
    s.cache_bytes = static_cast<size_t>(bytes);
  }

  if (auto it = root.object.find("systems"); it != root.object.end()) {
    if (it->second.type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("systems must be an array");
    }
    for (const JsonValue& v : it->second.array) {
      if (v.type != JsonValue::Type::kString) {
        return Status::InvalidArgument("systems must hold strings");
      }
      s.systems.push_back(v.string);
    }
  }
  if (auto it = root.object.find("params"); it != root.object.end()) {
    if (it->second.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("params must be an object");
    }
    AIRINDEX_ASSIGN_OR_RETURN(s.params, ParamsFromJson(it->second));
  }

  auto it = root.object.find("groups");
  if (it == root.object.end() ||
      it->second.type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing groups array");
  }
  for (const JsonValue& entry : it->second.array) {
    if (entry.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("group entry must be an object");
    }
    AIRINDEX_ASSIGN_OR_RETURN(ClientGroupSpec g, GroupFromJson(entry));
    s.groups.push_back(std::move(g));
  }
  if (s.groups.empty()) {
    return Status::InvalidArgument("scenario has no client groups");
  }
  return s;
}

namespace {

void WriteWorkloadSpec(JsonWriter& w, const workload::WorkloadSpec& spec) {
  w.Key("workload");
  w.BeginObject();
  w.Field("destinations",
          spec.dest == workload::WorkloadSpec::Dest::kZipf ? "zipf"
                                                           : "uniform");
  if (spec.dest == workload::WorkloadSpec::Dest::kZipf) {
    w.Field("zipf_s", spec.zipf_s);
  }
  w.Field("sources",
          spec.source == workload::WorkloadSpec::Source::kClustered
              ? "clustered"
              : "uniform");
  if (spec.source == workload::WorkloadSpec::Source::kClustered) {
    w.Field("partition_regions",
            static_cast<uint64_t>(spec.partition_regions));
    w.BeginArray("source_regions");
    for (uint32_t cell : spec.source_regions) {
      w.Element(static_cast<uint64_t>(cell));
    }
    w.EndArray();
  }
  w.Field("phases",
          spec.phase == workload::WorkloadSpec::Phase::kRushHour
              ? "rush-hour"
              : "uniform");
  if (spec.phase == workload::WorkloadSpec::Phase::kRushHour) {
    w.Field("phase_peak", spec.phase_peak);
    w.Field("phase_width", spec.phase_width);
  }
  if (spec.arrival.kind != workload::ArrivalSpec::Kind::kNone) {
    w.Field("arrivals", workload::ArrivalKindName(spec.arrival.kind));
    w.Field("arrival_rate", spec.arrival.rate_per_second);
    if (spec.arrival.kind == workload::ArrivalSpec::Kind::kRushHour) {
      w.Field("arrival_peak_s", spec.arrival.peak_seconds);
      w.Field("arrival_width_s", spec.arrival.width_seconds);
      w.Field("arrival_peak_multiplier", spec.arrival.peak_multiplier);
    }
    if (spec.arrival.seed != 0) {
      w.Field("arrival_seed", static_cast<uint64_t>(spec.arrival.seed));
    }
  }
  if (spec.session.queries > 1 || spec.session.think_ms > 0.0) {
    w.Key("session");
    w.BeginObject();
    w.Field("queries", static_cast<uint64_t>(spec.session.queries));
    if (spec.session.think_ms > 0.0) {
      w.Field("think_ms", spec.session.think_ms);
    }
    w.EndObject();
  }
  if (spec.seed != 0) w.Field("seed", static_cast<uint64_t>(spec.seed));
  w.EndObject();
}

}  // namespace

std::string ScenarioToJson(const Scenario& s) {
  JsonWriter w;
  w.BeginObject();
  w.Field("schema", kScenarioSchema);
  w.Field("name", s.name);
  w.Field("description", s.description);
  w.Field("network", s.network);
  w.Field("scale", s.scale);
  w.Field("seed", static_cast<uint64_t>(s.seed));
  w.Field("total_queries", static_cast<uint64_t>(s.total_queries));
  w.Field("engine", s.engine);
  w.Field("subchannels", static_cast<uint64_t>(s.subchannels));
  if (!s.schedule.flat()) {
    w.Key("schedule");
    w.BeginObject();
    w.Field("mode", s.schedule.mode == SchedulePolicy::Mode::kOnline
                        ? "online"
                        : "disks");
    w.Field("disks", static_cast<uint64_t>(s.schedule.disks));
    if (!s.schedule.rates.empty()) {
      w.BeginArray("rates");
      for (uint32_t r : s.schedule.rates) {
        w.Element(static_cast<uint64_t>(r));
      }
      w.EndArray();
    }
    if (s.schedule.mode == SchedulePolicy::Mode::kOnline) {
      w.Field("replan_cycles",
              static_cast<uint64_t>(s.schedule.replan_cycles));
      w.Field("decay", s.schedule.decay);
      w.Field("hysteresis", s.schedule.hysteresis);
    }
    if (s.schedule.min_skew != SchedulePolicy{}.min_skew) {
      w.Field("min_skew", s.schedule.min_skew);
    }
    w.EndObject();
  }
  if (s.cache_bytes > 0) {
    w.Key("cache");
    w.BeginObject();
    w.Field("bytes", static_cast<uint64_t>(s.cache_bytes));
    w.EndObject();
  }
  w.BeginArray("systems");
  for (const std::string& name : s.EffectiveSystems()) w.Element(name);
  w.EndArray();
  w.Key("params");
  w.BeginObject();
  w.Field("arcflag_regions", static_cast<uint64_t>(s.params.arcflag_regions));
  w.Field("eb_regions", static_cast<uint64_t>(s.params.eb_regions));
  w.Field("nr_regions", static_cast<uint64_t>(s.params.nr_regions));
  w.Field("landmarks", static_cast<uint64_t>(s.params.landmarks));
  w.Field("hiti_regions", static_cast<uint64_t>(s.params.hiti_regions));
  w.EndObject();
  w.BeginArray("groups");
  for (const ClientGroupSpec& g : s.groups) {
    w.BeginObject();
    w.Field("name", g.name);
    if (g.queries > 0) {
      w.Field("queries", static_cast<uint64_t>(g.queries));
    } else {
      w.Field("weight", g.weight);
    }
    w.Field("profile", g.profile);
    w.Field("bits_per_second", g.bits_per_second);
    w.Key("loss");
    w.BeginObject();
    w.Field("rate", g.loss.rate);
    w.Field("burst_len", static_cast<uint64_t>(g.loss.burst_len));
    if (g.loss.corrupt_bit > 0.0) {
      w.Field("corrupt_bit", g.loss.corrupt_bit);
    }
    w.EndObject();
    if (g.fec.enabled()) {
      w.Key("fec");
      w.BeginObject();
      w.Field("data_per_group", static_cast<uint64_t>(g.fec.data_per_group));
      w.Field("parity_per_group",
              static_cast<uint64_t>(g.fec.parity_per_group));
      w.EndObject();
    }
    w.Key("client");
    w.BeginObject();
    w.Field("heap_bytes", static_cast<uint64_t>(g.client.heap_bytes));
    w.FieldBool("memory_bound", g.client.memory_bound);
    w.FieldBool("cross_border_opt", g.client.cross_border_opt);
    w.Field("max_repair_cycles",
            static_cast<uint64_t>(g.client.max_repair_cycles));
    w.FieldBool("repair_header", g.client.repair_header);
    w.EndObject();
    WriteWorkloadSpec(w, g.workload);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::string out = std::move(w).Take();
  out += '\n';
  return out;
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

std::string ScenarioToText(const ScenarioResult& r) {
  std::string out;
  char line[320];
  std::snprintf(line, sizeof(line),
                "# scenario %s on %s (scale %.2f): %zu queries, %zu "
                "group(s), %u thread(s)\n",
                r.scenario.c_str(), r.network.c_str(), r.scale,
                r.num_queries, r.groups.size(), r.threads);
  out += line;
  if (r.engine != "batch") {
    if (r.subchannels > 1) {
      std::snprintf(line, sizeof(line),
                    "# engine %s (%u sub-channels)\n", r.engine.c_str(),
                    r.subchannels);
    } else {
      std::snprintf(line, sizeof(line), "# engine %s\n", r.engine.c_str());
    }
    out += line;
  }
  if (r.schedule_mode != "flat") {
    std::snprintf(line, sizeof(line), "# schedule %s\n",
                  r.schedule_mode.c_str());
    out += line;
  }
  for (const GroupResult& gr : r.groups) {
    if (gr.spec.loss.burst_len > 1) {
      std::snprintf(line, sizeof(line),
                    "\n## group %s: %zu queries, profile=%s, %.0f kbps, "
                    "loss=%.2f%% (bursts of %u)\n",
                    gr.spec.name.c_str(), gr.spec.queries,
                    gr.spec.profile.c_str(),
                    gr.spec.bits_per_second / 1000.0,
                    gr.spec.loss.rate * 100.0, gr.spec.loss.burst_len);
    } else {
      std::snprintf(line, sizeof(line),
                    "\n## group %s: %zu queries, profile=%s, %.0f kbps, "
                    "loss=%.2f%%\n",
                    gr.spec.name.c_str(), gr.spec.queries,
                    gr.spec.profile.c_str(),
                    gr.spec.bits_per_second / 1000.0,
                    gr.spec.loss.rate * 100.0);
    }
    out += line;
    if (gr.spec.fec.enabled()) {
      std::snprintf(line, sizeof(line),
                    "##   fec: %u data + %u parity per group\n",
                    gr.spec.fec.data_per_group, gr.spec.fec.parity_per_group);
      out += line;
    }
    if (gr.spec.loss.corrupt_bit > 0.0) {
      std::snprintf(line, sizeof(line), "##   corrupt_bit: %.2e\n",
                    gr.spec.loss.corrupt_bit);
      out += line;
    }
    detail::AppendSystemTable(out, gr.systems);
  }
  std::snprintf(line, sizeof(line), "\n## fleet (%zu queries)\n",
                r.num_queries);
  out += line;
  detail::AppendSystemTable(out, r.fleet);
  std::snprintf(line, sizeof(line), "# wall %.3f s total\n",
                r.wall_seconds);
  out += line;
  return out;
}

std::string ScenarioReportToJson(const ScenarioResult& r) {
  JsonWriter w;
  w.BeginObject();
  w.Field("schema", kScenarioSchema);
  w.Field("scenario", r.scenario);
  w.Field("network", r.network);
  w.Field("engine", r.engine);
  w.Field("subchannels", static_cast<uint64_t>(r.subchannels));
  // Additive field, written only for scheduled runs — flat reports stay
  // byte-identical to pre-scheduler builds.
  if (r.schedule_mode != "flat") w.Field("schedule", r.schedule_mode);
  w.Field("scale", r.scale);
  w.Field("num_queries", static_cast<uint64_t>(r.num_queries));
  w.Field("threads", static_cast<uint64_t>(r.threads));
  w.Field("wall_seconds", r.wall_seconds);
  w.BeginArray("groups");
  for (const GroupResult& gr : r.groups) {
    w.BeginObject();
    w.Field("group", gr.spec.name);
    w.Field("queries", static_cast<uint64_t>(gr.spec.queries));
    w.Field("profile", gr.spec.profile);
    w.Field("bits_per_second", gr.spec.bits_per_second);
    w.Field("loss_rate", gr.spec.loss.rate);
    w.Field("loss_burst_len", static_cast<uint64_t>(gr.spec.loss.burst_len));
    // Additive airindex.sim.scenario/v1 fields, written only when the
    // channel actually corrupts or codes — clean-channel reports stay
    // byte-identical to pre-FEC builds.
    if (gr.spec.loss.corrupt_bit > 0.0) {
      w.Field("corrupt_bit", gr.spec.loss.corrupt_bit);
    }
    if (gr.spec.fec.enabled()) {
      w.Field("fec_data", static_cast<uint64_t>(gr.spec.fec.data_per_group));
      w.Field("fec_parity",
              static_cast<uint64_t>(gr.spec.fec.parity_per_group));
    }
    w.Field("loss_seed", static_cast<uint64_t>(gr.loss_seed));
    w.Field("workload_seed", static_cast<uint64_t>(gr.workload_seed));
    w.BeginArray("systems");
    for (const SystemResult& sr : gr.systems) {
      detail::WriteSystemEntry(w, sr);
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.BeginArray("fleet");
  for (const SystemResult& sr : r.fleet) detail::WriteSystemEntry(w, sr);
  w.EndArray();
  w.EndObject();
  std::string out = std::move(w).Take();
  out += '\n';
  return out;
}

Result<ScenarioResult> ScenarioReportFromJson(std::string_view json) {
  AIRINDEX_ASSIGN_OR_RETURN(JsonValue root, jsonutil::ParseJson(json));
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("report root must be a JSON object");
  }
  AIRINDEX_ASSIGN_OR_RETURN(std::string schema, GetString(root, "schema"));
  if (schema != kScenarioSchema) {
    return Status::InvalidArgument("unsupported scenario schema " + schema);
  }
  auto fleet_it = root.object.find("fleet");
  if (fleet_it == root.object.end() ||
      fleet_it->second.type != JsonValue::Type::kArray) {
    return Status::InvalidArgument(
        "missing fleet array (is this a spec, not a report?)");
  }

  ScenarioResult r;
  AIRINDEX_ASSIGN_OR_RETURN(r.scenario, GetString(root, "scenario"));
  AIRINDEX_ASSIGN_OR_RETURN(r.network, GetString(root, "network"));
  // Additive in-schema fields: older v1 reports are batch-engine runs.
  AIRINDEX_ASSIGN_OR_RETURN(r.engine, GetStringOr(root, "engine", "batch"));
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t subs,
                            GetUint64Or(root, "subchannels", 1));
  r.subchannels = static_cast<uint32_t>(subs);
  AIRINDEX_ASSIGN_OR_RETURN(r.schedule_mode,
                            GetStringOr(root, "schedule", "flat"));
  AIRINDEX_ASSIGN_OR_RETURN(r.scale, GetNumber(root, "scale"));
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t nq, GetUint64(root, "num_queries"));
  r.num_queries = static_cast<size_t>(nq);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t threads, GetUint64(root, "threads"));
  r.threads = static_cast<unsigned>(threads);
  AIRINDEX_ASSIGN_OR_RETURN(r.wall_seconds,
                            GetNumber(root, "wall_seconds"));

  auto groups_it = root.object.find("groups");
  if (groups_it == root.object.end() ||
      groups_it->second.type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing groups array");
  }
  for (const JsonValue& entry : groups_it->second.array) {
    if (entry.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("group entry must be an object");
    }
    GroupResult gr;
    AIRINDEX_ASSIGN_OR_RETURN(gr.spec.name, GetString(entry, "group"));
    AIRINDEX_ASSIGN_OR_RETURN(uint64_t queries,
                              GetUint64(entry, "queries"));
    gr.spec.queries = static_cast<size_t>(queries);
    AIRINDEX_ASSIGN_OR_RETURN(gr.spec.profile, GetString(entry, "profile"));
    AIRINDEX_ASSIGN_OR_RETURN(gr.spec.bits_per_second,
                              GetNumber(entry, "bits_per_second"));
    AIRINDEX_ASSIGN_OR_RETURN(gr.spec.loss.rate,
                              GetNumber(entry, "loss_rate"));
    AIRINDEX_ASSIGN_OR_RETURN(uint64_t burst,
                              GetUint64(entry, "loss_burst_len"));
    gr.spec.loss.burst_len = static_cast<uint32_t>(burst);
    AIRINDEX_ASSIGN_OR_RETURN(
        gr.spec.loss.corrupt_bit, GetNumberOr(entry, "corrupt_bit", 0.0));
    AIRINDEX_ASSIGN_OR_RETURN(
        uint64_t fec_data,
        GetUint64Or(entry, "fec_data", gr.spec.fec.data_per_group));
    AIRINDEX_ASSIGN_OR_RETURN(uint64_t fec_parity,
                              GetUint64Or(entry, "fec_parity", 0));
    gr.spec.fec.data_per_group = static_cast<uint32_t>(fec_data);
    gr.spec.fec.parity_per_group = static_cast<uint32_t>(fec_parity);
    AIRINDEX_ASSIGN_OR_RETURN(gr.loss_seed, GetUint64(entry, "loss_seed"));
    AIRINDEX_ASSIGN_OR_RETURN(gr.workload_seed,
                              GetUint64(entry, "workload_seed"));
    auto sys_it = entry.object.find("systems");
    if (sys_it == entry.object.end() ||
        sys_it->second.type != JsonValue::Type::kArray) {
      return Status::InvalidArgument("group entry missing systems array");
    }
    for (const JsonValue& sys_entry : sys_it->second.array) {
      AIRINDEX_ASSIGN_OR_RETURN(SystemResult sr,
                                detail::SystemEntryFromJson(sys_entry));
      gr.systems.push_back(std::move(sr));
    }
    r.groups.push_back(std::move(gr));
  }
  for (const JsonValue& sys_entry : fleet_it->second.array) {
    AIRINDEX_ASSIGN_OR_RETURN(SystemResult sr,
                              detail::SystemEntryFromJson(sys_entry));
    r.fleet.push_back(std::move(sr));
  }
  return r;
}

}  // namespace airindex::sim
