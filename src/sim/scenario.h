#ifndef AIRINDEX_SIM_SCENARIO_H_
#define AIRINDEX_SIM_SCENARIO_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "broadcast/channel.h"
#include "common/result.h"
#include "core/systems.h"
#include "device/device_profile.h"
#include "graph/graph.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace airindex::sim {

/// Identifier stamped into scenario spec files and scenario reports.
/// Both forms carry the same schema tag; a spec has a "groups" array of
/// client-group specs, a report additionally has a "fleet" array of
/// aggregate entries.
inline constexpr std::string_view kScenarioSchema =
    "airindex.sim.scenario/v1";

/// One homogeneous slice of the client fleet: how many clients, what they
/// ask (workload distribution), on what device, over what channel.
struct ClientGroupSpec {
  std::string name;
  /// Explicit query count; 0 allocates a share of Scenario::total_queries
  /// proportional to `weight`.
  size_t queries = 0;
  double weight = 1.0;
  /// Query distribution. `workload.count` and, when left 0, `workload.seed`
  /// are resolved at compile time (count from queries/weight, seed derived
  /// from the scenario seed and group index).
  workload::WorkloadSpec workload = DefaultWorkload();
  /// Named device profile (see device::ProfileCatalog()).
  std::string profile = "j2me";
  /// Broadcast bitrate this group's clients listen at.
  double bits_per_second = device::kBitrateStatic3G;
  /// Channel loss model: independent (burst_len 1) or bursty, plus the
  /// optional corrupting-bit rate (loss.corrupt_bit).
  broadcast::LossModel loss = broadcast::LossModel::None();
  /// Loss stream seed; 0 derives one from the scenario seed + group index.
  uint64_t loss_seed = 0;
  /// Station-side forward error correction this group listens under
  /// (parity 0 = plain next-cycle repair). Additive schema field.
  broadcast::FecScheme fec = {};
  /// Client algorithm options. A heap_bytes of 0 means "the device
  /// profile's heap" — the common case for named-profile groups.
  core::ClientOptions client = DefaultClient();

  static workload::WorkloadSpec DefaultWorkload() {
    workload::WorkloadSpec w;
    w.seed = 0;  // derive from the scenario seed
    return w;
  }
  static core::ClientOptions DefaultClient() {
    core::ClientOptions c;
    c.heap_bytes = 0;  // the device profile's heap
    return c;
  }
};

/// A declarative experiment: one network, the systems under test, and a
/// heterogeneous fleet of client groups. Parseable from JSON
/// (ScenarioFromJson) and shipped built-in via scenario_catalog.h.
struct Scenario {
  std::string name;
  std::string description;
  /// Catalog network (graph::FindNetwork) and generator scale.
  std::string network = "Germany";
  double scale = 0.1;
  /// Base seed: per-group workload and loss seeds derive from it.
  uint64_t seed = 20100913;
  /// Fleet-wide query budget split over groups without explicit counts.
  size_t total_queries = 64;
  /// Simulation engine: "batch" (per-query private replay) or "event"
  /// (shared station timeline with arrival processes). Additive schema
  /// field; the CLI can override it per run.
  std::string engine = "batch";
  /// Logical sub-channels of the event engine's station (ignored by the
  /// batch engine).
  uint32_t subchannels = 1;
  /// Broadcast-disk scheduling of every station (additive schema field:
  /// `schedule` object with mode "flat" | "disks" | "online"). Static
  /// demand is derived from the fleet's merged destination distribution;
  /// online mode requires the event engine.
  SchedulePolicy schedule;
  /// Per-client session-cache budget in bytes (additive schema field:
  /// `cache` object with a `bytes` member). 0 = no cache. Event engine
  /// only; pairs with the groups' workload `session` blocks.
  size_t cache_bytes = 0;
  /// Systems under test, paper names. Empty = all seven.
  std::vector<std::string> systems;
  core::SystemParams params;
  std::vector<ClientGroupSpec> groups;

  /// The systems list with the all-seven default applied.
  std::vector<std::string> EffectiveSystems() const;
};

/// One group's outcome: the resolved spec (queries filled in), the derived
/// seeds, and per-system results carrying per-query metrics + aggregates.
struct GroupResult {
  ClientGroupSpec spec;
  uint64_t workload_seed = 0;
  uint64_t loss_seed = 0;
  std::vector<SystemResult> systems;
};

/// A whole scenario run: per-group results plus the fleet-wide merge
/// (per-query samples concatenated across groups, energy priced per
/// group's device/bitrate — see MergeGroupResults).
struct ScenarioResult {
  std::string scenario;
  std::string network;
  /// Engine the run used ("batch" or "event") and, for event runs, the
  /// station's sub-channel count.
  std::string engine = "batch";
  uint32_t subchannels = 1;
  /// Broadcast-disk scheduling mode of the run ("flat"/"static"/"online").
  std::string schedule_mode = "flat";
  double scale = 0.0;
  size_t num_queries = 0;
  unsigned threads = 1;
  double wall_seconds = 0.0;
  std::vector<GroupResult> groups;
  std::vector<SystemResult> fleet;
};

/// Resolves every group's query count: explicit counts are kept, the rest
/// of `total_queries` is split by weight (largest remainder, stable order;
/// every weighted group gets at least one query when any budget remains).
Result<std::vector<size_t>> ResolveGroupCounts(const Scenario& s);

/// Fleet-wide merge of per-group results for system index `sys_index` of
/// every group: concatenates the per-query metrics, prices each group's
/// queries under that group's device/bitrate, and aggregates the combined
/// samples. This is the runner's fleet path, exposed so tests can verify
/// fleet == merge(groups) independently.
Result<SystemResult> MergeGroupResults(std::span<const GroupResult> groups,
                                       size_t sys_index);

/// Executes scenarios: compiles groups into workloads, builds each system
/// once across all groups via core::SystemRegistry, fans every group
/// through sim::Simulator, and merges the fleet view.
class ScenarioRunner {
 public:
  struct RunOptions {
    /// Worker threads (0 = hardware concurrency). Aggregates are
    /// bit-identical for every thread count.
    unsigned threads = 1;
    /// Zero the wall-clock cpu_ms field for bit-reproducible aggregates.
    bool deterministic = false;
    /// Run each group's batch N times, reporting min-of-N wall time (see
    /// SimOptions::repeat).
    unsigned repeat = 1;
    /// Engine override: "batch" or "event"; empty uses the scenario's own
    /// engine field.
    std::string engine;
  };

  ScenarioRunner() = default;
  explicit ScenarioRunner(RunOptions options) : options_(options) {}

  /// Loads the scenario's catalog network, runs, and evicts the network's
  /// registry entries afterwards (the graph dies with this call).
  Result<ScenarioResult> Run(const Scenario& s) const;

  /// Runs against a caller-owned graph (registry entries are kept).
  Result<ScenarioResult> Run(const Scenario& s, const graph::Graph& g) const;

 private:
  RunOptions options_;
};

/// Parses a scenario spec (schema airindex.sim.scenario/v1). Unknown
/// fields are ignored; missing optional fields keep their defaults.
Result<Scenario> ScenarioFromJson(std::string_view json);

/// Serializes a scenario spec (round-trips through ScenarioFromJson).
std::string ScenarioToJson(const Scenario& s);

/// Human-readable report: one table per group plus the fleet table.
std::string ScenarioToText(const ScenarioResult& r);

/// Scenario report JSON (schema airindex.sim.scenario/v1): per-group and
/// fleet aggregate entries, field-compatible with batch system entries.
std::string ScenarioReportToJson(const ScenarioResult& r);

/// Parses a scenario report back (per-query vectors left empty).
Result<ScenarioResult> ScenarioReportFromJson(std::string_view json);

}  // namespace airindex::sim

#endif  // AIRINDEX_SIM_SCENARIO_H_
