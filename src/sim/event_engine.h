#ifndef AIRINDEX_SIM_EVENT_ENGINE_H_
#define AIRINDEX_SIM_EVENT_ENGINE_H_

#include <cstdint>
#include <span>

#include "broadcast/channel.h"
#include "broadcast/station.h"
#include "core/air_system.h"
#include "device/device_profile.h"
#include "graph/graph.h"
#include "sim/simulator.h"
#include "workload/workload.h"

namespace airindex::sim {

/// Configuration of one event-engine run: the shared station (bitrate,
/// loss, seed, sub-channel count) plus the client/device knobs shared with
/// the batch engine.
struct EventOptions {
  /// Worker threads (0 = hardware concurrency). Results are bit-identical
  /// for every thread count.
  unsigned threads = 1;
  /// Physical-channel loss model of the station.
  broadcast::LossModel loss = broadcast::LossModel::None();
  /// One seed for the whole station: unlike the batch engine's per-query
  /// streams, every client shares this loss realization.
  uint64_t station_seed = 0x10552;
  /// Logical sub-channels the station time-multiplexes (clients assigned
  /// round-robin by arrival ordinal — their interleave group).
  uint32_t subchannels = 1;
  /// Station-side forward error correction (parity 0 = off).
  broadcast::FecScheme fec = {};
  core::ClientOptions client;
  device::DeviceProfile profile = device::DeviceProfile::J2mePhone();
  double bits_per_second = device::kBitrateStatic3G;
  /// Zeroes the wall-clock-measured cpu_ms field (see SimOptions).
  bool deterministic = false;
  /// Min-of-N wall-time repetitions (see SimOptions::repeat).
  unsigned repeat = 1;
  /// Broadcast-disk scheduling of the station (see SchedulePolicy). kStatic
  /// plans one spec per system from `schedule_demand`; kOnline re-plans
  /// every `replan_cycles` cycles from the destinations of the queries that
  /// have arrived so far — the adopted spec sequence is a pure function of
  /// the arrival order, so runs stay bit-identical across thread counts.
  SchedulePolicy schedule;
  /// Per-node destination demand for the static planner (empty = uniform).
  std::vector<double> schedule_demand;
  /// Wire encoding of the cycles' payloads (node-to-group decoding).
  broadcast::CycleEncoding encoding = broadcast::CycleEncoding::kLegacy;
  /// Client sessions: consecutive runs of `session.queries` workload
  /// queries are posed by one persistent client whose SessionCache
  /// (budgeted by `cache_bytes`) carries decoded segments across them.
  /// queries = 1 with cache_bytes = 0 is the historical one-shot fleet —
  /// that path is byte-identical to pre-session builds. Ignored by the
  /// kOnline scheduling path (callers validate; see scenario.cc).
  workload::WorkloadSpec::SessionSpec session;
  /// Per-client session cache budget in payload bytes (0 = caching off).
  size_t cache_bytes = 0;
};

/// The discrete-event shared-channel engine. Where sim::Simulator replays a
/// private channel per query (every client pretends the cycle started for
/// it), EventEngine stands up one broadcast::Station per system — a single
/// timeline started at t=0 and looping forever — and lets the fleet arrive
/// over time: each query's workload::Query::arrival_ms is mapped to the
/// absolute packet position airing at that instant, and the client state
/// machine (the same RunQuery code, via AirQuery::arrival_pos) wakes on the
/// packets it needs from there. Two clients listening to the same packet
/// observe the same loss, so contention effects — wait-for-cycle-boundary,
/// staggered arrivals, rush-hour pileups — emerge from the shared timeline
/// instead of being invented per query.
///
/// Per-query access latency splits into wait_ms (doze before the first
/// useful packet) and listen_ms (retrieval from there), on the station
/// clock. Workloads without an arrival process fall back to phase-derived
/// arrivals: tune_phase * cycle duration, one cycle's worth of arrivals.
///
/// Determinism: a query's outcome is a pure function of (query, station),
/// never of scheduling — broadcast is one-way, so clients cannot perturb
/// each other's observations even when their listening windows overlap.
/// That is what lets the engine fan the event timeline across threads with
/// results byte-identical to the serial replay (same guarantee, and same
/// per-worker scratch reuse, as sim::Simulator).
class EventEngine {
 public:
  /// `g` must outlive the engine.
  EventEngine(const graph::Graph& g, EventOptions options)
      : graph_(&g), options_(options) {
    if (options_.subchannels == 0) options_.subchannels = 1;
  }

  const EventOptions& options() const { return options_; }
  device::EnergyModel energy_model() const {
    return device::EnergyModel(options_.profile, options_.bits_per_second);
  }
  unsigned effective_threads() const;

  /// The *flat* station this engine would stand up for `sys` (exposed for
  /// tests and for callers that want the clock mapping). Scheduled
  /// stations are built internally — their timeline (and therefore the
  /// clock mapping) depends on the planned spec, whose compiled form must
  /// outlive the station.
  broadcast::Station MakeStation(const core::AirSystem& sys) const;

  /// Runs every workload query as one client arriving on the shared
  /// station timeline of `sys`.
  SystemResult RunSystem(const core::AirSystem& sys,
                         const workload::Workload& w) const;

  /// Runs the workload through each system in turn (one station each; the
  /// timelines share the seed, so co-broadcast systems fade together).
  BatchResult Run(std::span<const core::AirSystem* const> systems,
                  const workload::Workload& w) const;

 private:
  /// The kOnline path: epoch-partitions the fleet by arrival instant,
  /// re-planning the station timeline at each epoch boundary from the
  /// demand observed so far.
  SystemResult RunSystemOnline(const core::AirSystem& sys,
                               const workload::Workload& w) const;

  const graph::Graph* graph_;
  EventOptions options_;
};

}  // namespace airindex::sim

#endif  // AIRINDEX_SIM_EVENT_ENGINE_H_
