#include "sim/aggregate.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace airindex::sim {

namespace {

double NearestRank(const std::vector<double>& sorted, double q) {
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<size_t>(std::ceil(q * n));
  const size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

Stat StatOf(std::span<const double> values) {
  Stat s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  s.p50 = NearestRank(sorted, 0.50);
  s.p95 = NearestRank(sorted, 0.95);
  s.max = sorted.back();
  return s;
}

Aggregate Aggregate::Of(std::string_view system,
                        std::span<const device::QueryMetrics> metrics,
                        const device::EnergyModel& energy) {
  std::vector<double> joules;
  joules.reserve(metrics.size());
  for (const auto& m : metrics) joules.push_back(energy.QueryJoules(m));
  return Of(system, metrics, joules);
}

Aggregate Aggregate::Of(std::string_view system,
                        std::span<const device::QueryMetrics> metrics,
                        std::span<const double> joules) {
  Aggregate agg;
  agg.system = std::string(system);
  agg.queries = metrics.size();

  std::vector<double> tuning, latency, wait, listen, memory, cpu;
  tuning.reserve(metrics.size());
  latency.reserve(metrics.size());
  wait.reserve(metrics.size());
  listen.reserve(metrics.size());
  memory.reserve(metrics.size());
  cpu.reserve(metrics.size());
  for (const auto& m : metrics) {
    tuning.push_back(static_cast<double>(m.tuning_packets));
    latency.push_back(static_cast<double>(m.latency_packets));
    wait.push_back(m.wait_ms);
    listen.push_back(m.listen_ms);
    memory.push_back(static_cast<double>(m.peak_memory_bytes));
    cpu.push_back(m.cpu_ms);
    if (!m.ok) ++agg.failures;
    if (m.memory_exceeded) ++agg.memory_exceeded;
  }
  agg.tuning_packets = StatOf(tuning);
  agg.latency_packets = StatOf(latency);
  agg.wait_ms = StatOf(wait);
  agg.listen_ms = StatOf(listen);
  agg.peak_memory_bytes = StatOf(memory);
  agg.cpu_ms = StatOf(cpu);
  agg.energy_joules = StatOf(joules);
  return agg;
}

}  // namespace airindex::sim
