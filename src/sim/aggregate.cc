#include "sim/aggregate.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace airindex::sim {

namespace {

double NearestRank(const std::vector<double>& sorted, double q) {
  // q <= 0 (and NaN) would send ceil(q*n) negative — casting a negative
  // double to size_t is UB, so clamp to the minimum explicitly; q >= 1
  // clamps to the maximum via the index bound below.
  if (!(q > 0.0)) return sorted.front();
  const auto n = static_cast<double>(sorted.size());
  const auto rank = static_cast<size_t>(std::ceil(q * n));
  const size_t index = rank == 0 ? 0 : rank - 1;
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

double Percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return NearestRank(sorted, q);
}

Stat StatOf(std::span<const double> values) {
  Stat s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  s.p50 = NearestRank(sorted, 0.50);
  s.p95 = NearestRank(sorted, 0.95);
  s.p99 = NearestRank(sorted, 0.99);
  s.max = sorted.back();
  return s;
}

Aggregate Aggregate::Of(std::string_view system,
                        std::span<const device::QueryMetrics> metrics,
                        const device::EnergyModel& energy) {
  std::vector<double> joules;
  joules.reserve(metrics.size());
  for (const auto& m : metrics) joules.push_back(energy.QueryJoules(m));
  return Of(system, metrics, joules);
}

Aggregate Aggregate::Of(std::string_view system,
                        std::span<const device::QueryMetrics> metrics,
                        std::span<const double> joules) {
  Aggregate agg;
  agg.system = std::string(system);
  agg.queries = metrics.size();

  std::vector<double> tuning, latency, wait, listen, memory, cpu;
  std::vector<double> corrupted, recovered;
  std::vector<double> hits, warm_tuning;
  tuning.reserve(metrics.size());
  latency.reserve(metrics.size());
  wait.reserve(metrics.size());
  listen.reserve(metrics.size());
  memory.reserve(metrics.size());
  cpu.reserve(metrics.size());
  corrupted.reserve(metrics.size());
  recovered.reserve(metrics.size());
  for (const auto& m : metrics) {
    tuning.push_back(static_cast<double>(m.tuning_packets));
    latency.push_back(static_cast<double>(m.latency_packets));
    wait.push_back(m.wait_ms);
    listen.push_back(m.listen_ms);
    memory.push_back(static_cast<double>(m.peak_memory_bytes));
    cpu.push_back(m.cpu_ms);
    corrupted.push_back(static_cast<double>(m.corrupted_packets));
    recovered.push_back(static_cast<double>(m.fec_recovered));
    hits.push_back(static_cast<double>(m.cache_hits));
    if (m.warm) {
      ++agg.warm_queries;
      warm_tuning.push_back(static_cast<double>(m.tuning_packets));
    }
    if (!m.ok) ++agg.failures;
    if (m.memory_exceeded) ++agg.memory_exceeded;
  }
  agg.tuning_packets = StatOf(tuning);
  agg.latency_packets = StatOf(latency);
  agg.wait_ms = StatOf(wait);
  agg.listen_ms = StatOf(listen);
  agg.peak_memory_bytes = StatOf(memory);
  agg.cpu_ms = StatOf(cpu);
  agg.energy_joules = StatOf(joules);
  agg.corrupted_packets = StatOf(corrupted);
  agg.fec_recovered = StatOf(recovered);
  agg.cache_hits = StatOf(hits);
  agg.warm_tuning = StatOf(warm_tuning);
  return agg;
}

}  // namespace airindex::sim
