#ifndef AIRINDEX_SIM_SCENARIO_CATALOG_H_
#define AIRINDEX_SIM_SCENARIO_CATALOG_H_

#include <span>
#include <string_view>

#include "common/result.h"
#include "sim/scenario.h"

namespace airindex::sim {

/// The built-in scenario tour (`airindex_cli scenario --list`):
///   paper-baseline      — the paper's §7 population: one uniform J2ME group
///   commuter-rush       — moving-3G commuters (clustered sources, rush-hour
///                         tune-ins) alongside static pedestrians
///   hotspot-city        — Zipf-skewed destinations on Milan (downtown pull)
///   iot-fleet           — memory-bound sensor nodes on a bursty channel
///   lossy-tunnel        — twin groups differing only in loss model
///                         (independent vs bursty at the same rate)
///   mixed-fleet         — smartphones, sensors, and feature phones at once
/// Every entry runs all seven systems at smoke-test scale; benches and the
/// CLI override scale/queries for bigger runs.
std::span<const Scenario> ScenarioCatalog();

/// Looks a built-in scenario up by name; InvalidArgument lists the known
/// names on miss.
Result<Scenario> FindScenario(std::string_view name);

}  // namespace airindex::sim

#endif  // AIRINDEX_SIM_SCENARIO_CATALOG_H_
