#include "sim/report.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

namespace airindex::sim {

namespace {

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Shortest representation that round-trips through a double exactly.
std::string DoubleToString(double v) {
  std::array<char, 32> buf;
  auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  return std::string(buf.data(), end);
}

class JsonWriter {
 public:
  std::string Take() && { return std::move(out_); }

  void BeginObject() {
    Separate();
    out_ += '{';
    fresh_ = true;
    ++depth_;
  }
  void EndObject() {
    --depth_;
    out_ += '\n';
    Indent();
    out_ += '}';
    fresh_ = false;
  }
  void BeginArray(std::string_view key) {
    Key(key);
    out_ += '[';
    pending_ = false;
    fresh_ = true;
    ++depth_;
  }
  void EndArray() {
    --depth_;
    out_ += '\n';
    Indent();
    out_ += ']';
    fresh_ = false;
  }
  void Key(std::string_view key) {
    Separate();
    out_ += '"';
    out_ += key;  // keys are known identifiers; no escaping needed
    out_ += "\": ";
    pending_ = true;
  }
  void Field(std::string_view key, double v) {
    Key(key);
    out_ += DoubleToString(v);
    pending_ = false;
  }
  void Field(std::string_view key, uint64_t v) {
    Key(key);
    out_ += std::to_string(v);
    pending_ = false;
  }
  void Field(std::string_view key, std::string_view v) {
    Key(key);
    out_ += '"';
    for (char c : v) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
    out_ += '"';
    pending_ = false;
  }

 private:
  void Indent() { out_.append(static_cast<size_t>(depth_) * 2, ' '); }
  void Separate() {
    // A key was just written: the next token is its value, already
    // prefixed with ": " — no comma or newline.
    if (pending_) {
      pending_ = false;
      return;
    }
    if (!fresh_) out_ += ',';
    if (depth_ > 0 || !fresh_) out_ += '\n';
    Indent();
    fresh_ = false;
  }

  std::string out_;
  int depth_ = 0;
  bool fresh_ = true;
  bool pending_ = false;
};

void WriteStat(JsonWriter& w, std::string_view key, const Stat& s) {
  w.Key(key);
  w.BeginObject();
  w.Field("mean", s.mean);
  w.Field("p50", s.p50);
  w.Field("p95", s.p95);
  w.Field("max", s.max);
  w.EndObject();
}

// ---------------------------------------------------------------------------
// Parsing: a minimal JSON reader covering the subset ToJson emits
// (objects, arrays, strings, numbers).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kNumber, kString, kObject, kArray } type =
      Type::kNull;
  double number = 0.0;
  /// For numbers, the raw token — integer fields re-parse it as uint64 so
  /// seeds above 2^53 survive the round-trip exactly.
  std::string string;
  std::map<std::string, JsonValue, std::less<>> object;
  std::vector<JsonValue> array;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    AIRINDEX_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters after JSON value");
    }
    return v;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<char> Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    return text_[pos_];
  }

  Status Expect(char c) {
    AIRINDEX_ASSIGN_OR_RETURN(char got, Peek());
    if (got != c) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' in JSON");
    }
    ++pos_;
    return Status::OK();
  }

  Result<JsonValue> ParseValue() {
    AIRINDEX_ASSIGN_OR_RETURN(char c, Peek());
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      AIRINDEX_ASSIGN_OR_RETURN(v.string, ParseString());
      return v;
    }
    return ParseNumber();
  }

  Result<std::string> ParseString() {
    AIRINDEX_RETURN_IF_ERROR(Expect('"'));
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::InvalidArgument("unterminated escape in JSON");
        }
        c = text_[pos_++];
      }
      out += c;
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated JSON string");
    }
    ++pos_;  // closing quote
    return out;
  }

  Result<JsonValue> ParseNumber() {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.string = std::string(text_.substr(start, pos_ - start));
    auto [end, ec] = std::from_chars(text_.data() + start,
                                     text_.data() + pos_, v.number);
    if (ec != std::errc() || end != text_.data() + pos_ || start == pos_) {
      return Status::InvalidArgument("malformed JSON number");
    }
    return v;
  }

  Result<JsonValue> ParseObject() {
    AIRINDEX_RETURN_IF_ERROR(Expect('{'));
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    AIRINDEX_ASSIGN_OR_RETURN(char c, Peek());
    if (c == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      AIRINDEX_ASSIGN_OR_RETURN(std::string key, ParseString());
      AIRINDEX_RETURN_IF_ERROR(Expect(':'));
      AIRINDEX_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.object.emplace(std::move(key), std::move(member));
      AIRINDEX_ASSIGN_OR_RETURN(char next, Peek());
      ++pos_;
      if (next == '}') return v;
      if (next != ',') {
        return Status::InvalidArgument("expected ',' or '}' in JSON object");
      }
    }
  }

  Result<JsonValue> ParseArray() {
    AIRINDEX_RETURN_IF_ERROR(Expect('['));
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    AIRINDEX_ASSIGN_OR_RETURN(char c, Peek());
    if (c == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      AIRINDEX_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      v.array.push_back(std::move(element));
      AIRINDEX_ASSIGN_OR_RETURN(char next, Peek());
      ++pos_;
      if (next == ']') return v;
      if (next != ',') {
        return Status::InvalidArgument("expected ',' or ']' in JSON array");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<double> GetNumber(const JsonValue& obj, std::string_view key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() ||
      it->second.type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument("missing numeric field " +
                                   std::string(key));
  }
  return it->second.number;
}

Result<uint64_t> GetUint64(const JsonValue& obj, std::string_view key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() ||
      it->second.type != JsonValue::Type::kNumber) {
    return Status::InvalidArgument("missing numeric field " +
                                   std::string(key));
  }
  const std::string& raw = it->second.string;
  uint64_t v = 0;
  auto [end, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), v);
  if (ec != std::errc() || end != raw.data() + raw.size()) {
    return Status::InvalidArgument("field " + std::string(key) +
                                   " is not an unsigned integer");
  }
  return v;
}

Result<std::string> GetString(const JsonValue& obj, std::string_view key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() ||
      it->second.type != JsonValue::Type::kString) {
    return Status::InvalidArgument("missing string field " +
                                   std::string(key));
  }
  return it->second.string;
}

Result<Stat> StatFromJson(const JsonValue& obj, std::string_view key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() ||
      it->second.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("missing stat field " + std::string(key));
  }
  Stat s;
  AIRINDEX_ASSIGN_OR_RETURN(s.mean, GetNumber(it->second, "mean"));
  AIRINDEX_ASSIGN_OR_RETURN(s.p50, GetNumber(it->second, "p50"));
  AIRINDEX_ASSIGN_OR_RETURN(s.p95, GetNumber(it->second, "p95"));
  AIRINDEX_ASSIGN_OR_RETURN(s.max, GetNumber(it->second, "max"));
  return s;
}

}  // namespace

std::string ToText(const BatchResult& batch) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "# %zu queries, %u thread(s), loss=%.4f\n", batch.num_queries,
                batch.threads, batch.loss_rate);
  out += line;
  std::snprintf(line, sizeof(line),
                "%-6s %12s %12s %12s %10s %10s %8s %10s %6s\n", "method",
                "tuning[pkt]", "p95[pkt]", "latency[pkt]", "mem[MB]",
                "energy[J]", "cpu[ms]", "qps", "fail");
  out += line;
  for (const auto& r : batch.systems) {
    const Aggregate& a = r.aggregate;
    std::snprintf(line, sizeof(line),
                  "%-6s %12.0f %12.0f %12.0f %10.2f %10.3f %8.2f %10.0f "
                  "%6zu\n",
                  a.system.c_str(), a.tuning_packets.mean,
                  a.tuning_packets.p95, a.latency_packets.mean,
                  a.peak_memory_bytes.mean / (1024.0 * 1024.0),
                  a.energy_joules.mean, a.cpu_ms.mean, r.queries_per_second,
                  a.failures);
    out += line;
  }
  std::snprintf(line, sizeof(line), "# wall %.3f s total\n",
                batch.wall_seconds);
  out += line;
  return out;
}

std::string ToJson(const BatchResult& batch) {
  JsonWriter w;
  w.BeginObject();
  w.Field("schema", kReportSchema);
  w.Field("num_queries", static_cast<uint64_t>(batch.num_queries));
  w.Field("threads", static_cast<uint64_t>(batch.threads));
  w.Field("loss_rate", batch.loss_rate);
  w.Field("loss_seed", static_cast<uint64_t>(batch.loss_seed));
  w.Field("wall_seconds", batch.wall_seconds);
  w.BeginArray("systems");
  for (const auto& r : batch.systems) {
    const Aggregate& a = r.aggregate;
    w.BeginObject();
    w.Field("system", a.system);
    w.Field("queries", static_cast<uint64_t>(a.queries));
    w.Field("failures", static_cast<uint64_t>(a.failures));
    w.Field("memory_exceeded", static_cast<uint64_t>(a.memory_exceeded));
    w.Field("wall_seconds", r.wall_seconds);
    w.Field("queries_per_second", r.queries_per_second);
    WriteStat(w, "tuning_packets", a.tuning_packets);
    WriteStat(w, "latency_packets", a.latency_packets);
    WriteStat(w, "peak_memory_bytes", a.peak_memory_bytes);
    WriteStat(w, "cpu_ms", a.cpu_ms);
    WriteStat(w, "energy_joules", a.energy_joules);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  std::string out = std::move(w).Take();
  out += '\n';
  return out;
}

Result<BatchResult> FromJson(std::string_view json) {
  AIRINDEX_ASSIGN_OR_RETURN(JsonValue root, JsonParser(json).Parse());
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("report root must be a JSON object");
  }
  AIRINDEX_ASSIGN_OR_RETURN(std::string schema, GetString(root, "schema"));
  if (schema != kReportSchema) {
    return Status::InvalidArgument("unsupported report schema " + schema);
  }

  BatchResult batch;
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t nq, GetUint64(root, "num_queries"));
  batch.num_queries = static_cast<size_t>(nq);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t threads, GetUint64(root, "threads"));
  batch.threads = static_cast<unsigned>(threads);
  AIRINDEX_ASSIGN_OR_RETURN(batch.loss_rate, GetNumber(root, "loss_rate"));
  AIRINDEX_ASSIGN_OR_RETURN(batch.loss_seed, GetUint64(root, "loss_seed"));
  AIRINDEX_ASSIGN_OR_RETURN(batch.wall_seconds,
                            GetNumber(root, "wall_seconds"));

  auto it = root.object.find("systems");
  if (it == root.object.end() ||
      it->second.type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing systems array");
  }
  for (const JsonValue& entry : it->second.array) {
    if (entry.type != JsonValue::Type::kObject) {
      return Status::InvalidArgument("system entry must be an object");
    }
    SystemResult r;
    Aggregate& a = r.aggregate;
    AIRINDEX_ASSIGN_OR_RETURN(a.system, GetString(entry, "system"));
    r.system = a.system;
    AIRINDEX_ASSIGN_OR_RETURN(uint64_t queries,
                              GetUint64(entry, "queries"));
    a.queries = static_cast<size_t>(queries);
    AIRINDEX_ASSIGN_OR_RETURN(uint64_t failures,
                              GetUint64(entry, "failures"));
    a.failures = static_cast<size_t>(failures);
    AIRINDEX_ASSIGN_OR_RETURN(uint64_t exceeded,
                              GetUint64(entry, "memory_exceeded"));
    a.memory_exceeded = static_cast<size_t>(exceeded);
    AIRINDEX_ASSIGN_OR_RETURN(r.wall_seconds,
                              GetNumber(entry, "wall_seconds"));
    AIRINDEX_ASSIGN_OR_RETURN(r.queries_per_second,
                              GetNumber(entry, "queries_per_second"));
    AIRINDEX_ASSIGN_OR_RETURN(a.tuning_packets,
                              StatFromJson(entry, "tuning_packets"));
    AIRINDEX_ASSIGN_OR_RETURN(a.latency_packets,
                              StatFromJson(entry, "latency_packets"));
    AIRINDEX_ASSIGN_OR_RETURN(a.peak_memory_bytes,
                              StatFromJson(entry, "peak_memory_bytes"));
    AIRINDEX_ASSIGN_OR_RETURN(a.cpu_ms, StatFromJson(entry, "cpu_ms"));
    AIRINDEX_ASSIGN_OR_RETURN(a.energy_joules,
                              StatFromJson(entry, "energy_joules"));
    batch.systems.push_back(std::move(r));
  }
  return batch;
}

}  // namespace airindex::sim
