#include "sim/report.h"

#include <cstdio>

namespace airindex::sim {

namespace {

using jsonutil::GetNumber;
using jsonutil::GetString;
using jsonutil::GetUint64;
using jsonutil::GetUint64Or;
using jsonutil::JsonValue;
using jsonutil::JsonWriter;

void WriteStat(JsonWriter& w, std::string_view key, const Stat& s) {
  w.Key(key);
  w.BeginObject();
  w.Field("mean", s.mean);
  w.Field("p50", s.p50);
  w.Field("p95", s.p95);
  w.Field("max", s.max);
  w.EndObject();
}

Result<Stat> StatFromJson(const JsonValue& obj, std::string_view key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() ||
      it->second.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("missing stat field " + std::string(key));
  }
  Stat s;
  AIRINDEX_ASSIGN_OR_RETURN(s.mean, GetNumber(it->second, "mean"));
  AIRINDEX_ASSIGN_OR_RETURN(s.p50, GetNumber(it->second, "p50"));
  AIRINDEX_ASSIGN_OR_RETURN(s.p95, GetNumber(it->second, "p95"));
  AIRINDEX_ASSIGN_OR_RETURN(s.max, GetNumber(it->second, "max"));
  return s;
}

}  // namespace

namespace detail {

void WriteSystemEntry(JsonWriter& w, const SystemResult& r) {
  const Aggregate& a = r.aggregate;
  w.BeginObject();
  w.Field("system", a.system);
  w.Field("queries", static_cast<uint64_t>(a.queries));
  w.Field("failures", static_cast<uint64_t>(a.failures));
  w.Field("memory_exceeded", static_cast<uint64_t>(a.memory_exceeded));
  w.Field("wall_seconds", r.wall_seconds);
  w.Field("queries_per_second", r.queries_per_second);
  WriteStat(w, "tuning_packets", a.tuning_packets);
  WriteStat(w, "latency_packets", a.latency_packets);
  WriteStat(w, "peak_memory_bytes", a.peak_memory_bytes);
  WriteStat(w, "cpu_ms", a.cpu_ms);
  WriteStat(w, "energy_joules", a.energy_joules);
  w.EndObject();
}

Result<SystemResult> SystemEntryFromJson(const JsonValue& entry) {
  if (entry.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("system entry must be an object");
  }
  SystemResult r;
  Aggregate& a = r.aggregate;
  AIRINDEX_ASSIGN_OR_RETURN(a.system, GetString(entry, "system"));
  r.system = a.system;
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t queries, GetUint64(entry, "queries"));
  a.queries = static_cast<size_t>(queries);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t failures, GetUint64(entry, "failures"));
  a.failures = static_cast<size_t>(failures);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t exceeded,
                            GetUint64(entry, "memory_exceeded"));
  a.memory_exceeded = static_cast<size_t>(exceeded);
  AIRINDEX_ASSIGN_OR_RETURN(r.wall_seconds,
                            GetNumber(entry, "wall_seconds"));
  AIRINDEX_ASSIGN_OR_RETURN(r.queries_per_second,
                            GetNumber(entry, "queries_per_second"));
  AIRINDEX_ASSIGN_OR_RETURN(a.tuning_packets,
                            StatFromJson(entry, "tuning_packets"));
  AIRINDEX_ASSIGN_OR_RETURN(a.latency_packets,
                            StatFromJson(entry, "latency_packets"));
  AIRINDEX_ASSIGN_OR_RETURN(a.peak_memory_bytes,
                            StatFromJson(entry, "peak_memory_bytes"));
  AIRINDEX_ASSIGN_OR_RETURN(a.cpu_ms, StatFromJson(entry, "cpu_ms"));
  AIRINDEX_ASSIGN_OR_RETURN(a.energy_joules,
                            StatFromJson(entry, "energy_joules"));
  return r;
}

}  // namespace detail

std::string ToText(const BatchResult& batch) {
  std::string out;
  char line[256];
  if (batch.loss_burst_len > 1) {
    std::snprintf(line, sizeof(line),
                  "# %zu queries, %u thread(s), loss=%.4f (bursts of %u)\n",
                  batch.num_queries, batch.threads, batch.loss_rate,
                  batch.loss_burst_len);
  } else {
    std::snprintf(line, sizeof(line),
                  "# %zu queries, %u thread(s), loss=%.4f\n",
                  batch.num_queries, batch.threads, batch.loss_rate);
  }
  out += line;
  std::snprintf(line, sizeof(line),
                "%-6s %12s %12s %12s %10s %10s %8s %10s %6s\n", "method",
                "tuning[pkt]", "p95[pkt]", "latency[pkt]", "mem[MB]",
                "energy[J]", "cpu[ms]", "qps", "fail");
  out += line;
  for (const auto& r : batch.systems) {
    const Aggregate& a = r.aggregate;
    std::snprintf(line, sizeof(line),
                  "%-6s %12.0f %12.0f %12.0f %10.2f %10.3f %8.2f %10.0f "
                  "%6zu\n",
                  a.system.c_str(), a.tuning_packets.mean,
                  a.tuning_packets.p95, a.latency_packets.mean,
                  a.peak_memory_bytes.mean / (1024.0 * 1024.0),
                  a.energy_joules.mean, a.cpu_ms.mean, r.queries_per_second,
                  a.failures);
    out += line;
  }
  std::snprintf(line, sizeof(line), "# wall %.3f s total\n",
                batch.wall_seconds);
  out += line;
  return out;
}

std::string ToJson(const BatchResult& batch) {
  JsonWriter w;
  w.BeginObject();
  w.Field("schema", kReportSchema);
  w.Field("num_queries", static_cast<uint64_t>(batch.num_queries));
  w.Field("threads", static_cast<uint64_t>(batch.threads));
  w.Field("loss_rate", batch.loss_rate);
  w.Field("loss_burst_len", static_cast<uint64_t>(batch.loss_burst_len));
  w.Field("loss_seed", static_cast<uint64_t>(batch.loss_seed));
  w.Field("wall_seconds", batch.wall_seconds);
  w.BeginArray("systems");
  for (const auto& r : batch.systems) detail::WriteSystemEntry(w, r);
  w.EndArray();
  w.EndObject();
  std::string out = std::move(w).Take();
  out += '\n';
  return out;
}

Result<BatchResult> FromJson(std::string_view json) {
  AIRINDEX_ASSIGN_OR_RETURN(JsonValue root, jsonutil::ParseJson(json));
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("report root must be a JSON object");
  }
  AIRINDEX_ASSIGN_OR_RETURN(std::string schema, GetString(root, "schema"));
  if (schema != kReportSchema) {
    return Status::InvalidArgument("unsupported report schema " + schema);
  }

  BatchResult batch;
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t nq, GetUint64(root, "num_queries"));
  batch.num_queries = static_cast<size_t>(nq);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t threads, GetUint64(root, "threads"));
  batch.threads = static_cast<unsigned>(threads);
  AIRINDEX_ASSIGN_OR_RETURN(batch.loss_rate, GetNumber(root, "loss_rate"));
  // Additive in-schema field: absent in reports from older v1 writers.
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t burst,
                            GetUint64Or(root, "loss_burst_len", 1));
  batch.loss_burst_len = static_cast<uint32_t>(burst);
  AIRINDEX_ASSIGN_OR_RETURN(batch.loss_seed, GetUint64(root, "loss_seed"));
  AIRINDEX_ASSIGN_OR_RETURN(batch.wall_seconds,
                            GetNumber(root, "wall_seconds"));

  auto it = root.object.find("systems");
  if (it == root.object.end() ||
      it->second.type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing systems array");
  }
  for (const JsonValue& entry : it->second.array) {
    AIRINDEX_ASSIGN_OR_RETURN(SystemResult r,
                              detail::SystemEntryFromJson(entry));
    batch.systems.push_back(std::move(r));
  }
  return batch;
}

}  // namespace airindex::sim
