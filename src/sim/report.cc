#include "sim/report.h"

#include <cstdio>

namespace airindex::sim {

namespace {

using jsonutil::GetNumber;
using jsonutil::GetNumberOr;
using jsonutil::GetString;
using jsonutil::GetStringOr;
using jsonutil::GetUint64;
using jsonutil::GetUint64Or;
using jsonutil::JsonValue;
using jsonutil::JsonWriter;

void WriteStat(JsonWriter& w, std::string_view key, const Stat& s) {
  w.Key(key);
  w.BeginObject();
  w.Field("mean", s.mean);
  w.Field("p50", s.p50);
  w.Field("p95", s.p95);
  w.Field("p99", s.p99);
  w.Field("max", s.max);
  w.EndObject();
}

Result<Stat> StatFromJson(const JsonValue& obj, std::string_view key) {
  auto it = obj.object.find(key);
  if (it == obj.object.end() ||
      it->second.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("missing stat field " + std::string(key));
  }
  Stat s;
  AIRINDEX_ASSIGN_OR_RETURN(s.mean, GetNumber(it->second, "mean"));
  AIRINDEX_ASSIGN_OR_RETURN(s.p50, GetNumber(it->second, "p50"));
  AIRINDEX_ASSIGN_OR_RETURN(s.p95, GetNumber(it->second, "p95"));
  // Additive in-schema field: older v1 writers stop at p95; their tails
  // read back as 0 rather than failing the document.
  AIRINDEX_ASSIGN_OR_RETURN(s.p99, GetNumberOr(it->second, "p99", 0.0));
  AIRINDEX_ASSIGN_OR_RETURN(s.max, GetNumber(it->second, "max"));
  return s;
}

/// Additive-field variant: zeros when the stat is absent (documents from
/// writers predating the wait/listen split).
Result<Stat> StatFromJsonOr(const JsonValue& obj, std::string_view key) {
  if (obj.object.find(key) == obj.object.end()) return Stat{};
  return StatFromJson(obj, key);
}

}  // namespace

namespace detail {

void AppendSystemTable(std::string& out,
                       std::span<const SystemResult> systems) {
  char line[320];
  std::snprintf(line, sizeof(line),
                "%-6s %12s %12s %12s %10s %10s %10s %10s %10s %8s %10s "
                "%6s\n",
                "method", "tuning[pkt]", "p95[pkt]", "latency[pkt]",
                "wait[ms]", "w99[ms]", "listen[ms]", "mem[MB]", "energy[J]",
                "cpu[ms]", "qps", "fail");
  out += line;
  for (const SystemResult& r : systems) {
    const Aggregate& a = r.aggregate;
    std::snprintf(line, sizeof(line),
                  "%-6s %12.0f %12.0f %12.0f %10.1f %10.1f %10.1f %10.2f "
                  "%10.3f %8.2f %10.0f %6zu\n",
                  a.system.c_str(), a.tuning_packets.mean,
                  a.tuning_packets.p95, a.latency_packets.mean,
                  a.wait_ms.mean, a.wait_ms.p99, a.listen_ms.mean,
                  a.peak_memory_bytes.mean / (1024.0 * 1024.0),
                  a.energy_joules.mean, a.cpu_ms.mean, r.queries_per_second,
                  a.failures);
    out += line;
  }
}

void WriteSystemEntry(JsonWriter& w, const SystemResult& r) {
  const Aggregate& a = r.aggregate;
  w.BeginObject();
  w.Field("system", a.system);
  w.Field("queries", static_cast<uint64_t>(a.queries));
  w.Field("failures", static_cast<uint64_t>(a.failures));
  w.Field("memory_exceeded", static_cast<uint64_t>(a.memory_exceeded));
  w.Field("wall_seconds", r.wall_seconds);
  w.Field("queries_per_second", r.queries_per_second);
  WriteStat(w, "tuning_packets", a.tuning_packets);
  WriteStat(w, "latency_packets", a.latency_packets);
  WriteStat(w, "wait_ms", a.wait_ms);
  WriteStat(w, "listen_ms", a.listen_ms);
  WriteStat(w, "peak_memory_bytes", a.peak_memory_bytes);
  WriteStat(w, "cpu_ms", a.cpu_ms);
  WriteStat(w, "energy_joules", a.energy_joules);
  // Additive corruption/FEC diagnostics: emitted only when the channel
  // produced any, so clean-channel reports stay byte-identical to older
  // writers.
  if (a.corrupted_packets.max > 0.0) {
    WriteStat(w, "corrupted_packets", a.corrupted_packets);
  }
  if (a.fec_recovered.max > 0.0) {
    WriteStat(w, "fec_recovered", a.fec_recovered);
  }
  // Additive session-cache diagnostics: emitted only when some query ran
  // warm, so one-shot (cold) fleets keep the historical document.
  if (a.warm_queries > 0 || a.cache_hits.max > 0.0) {
    WriteStat(w, "cache_hits", a.cache_hits);
    w.Field("warm_queries", static_cast<uint64_t>(a.warm_queries));
    WriteStat(w, "warm_tuning", a.warm_tuning);
  }
  w.EndObject();
}

Result<SystemResult> SystemEntryFromJson(const JsonValue& entry) {
  if (entry.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("system entry must be an object");
  }
  SystemResult r;
  Aggregate& a = r.aggregate;
  AIRINDEX_ASSIGN_OR_RETURN(a.system, GetString(entry, "system"));
  r.system = a.system;
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t queries, GetUint64(entry, "queries"));
  a.queries = static_cast<size_t>(queries);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t failures, GetUint64(entry, "failures"));
  a.failures = static_cast<size_t>(failures);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t exceeded,
                            GetUint64(entry, "memory_exceeded"));
  a.memory_exceeded = static_cast<size_t>(exceeded);
  AIRINDEX_ASSIGN_OR_RETURN(r.wall_seconds,
                            GetNumber(entry, "wall_seconds"));
  AIRINDEX_ASSIGN_OR_RETURN(r.queries_per_second,
                            GetNumber(entry, "queries_per_second"));
  AIRINDEX_ASSIGN_OR_RETURN(a.tuning_packets,
                            StatFromJson(entry, "tuning_packets"));
  AIRINDEX_ASSIGN_OR_RETURN(a.latency_packets,
                            StatFromJson(entry, "latency_packets"));
  // Additive in-schema stats: absent in reports from older v1 writers.
  AIRINDEX_ASSIGN_OR_RETURN(a.wait_ms, StatFromJsonOr(entry, "wait_ms"));
  AIRINDEX_ASSIGN_OR_RETURN(a.listen_ms, StatFromJsonOr(entry, "listen_ms"));
  AIRINDEX_ASSIGN_OR_RETURN(a.peak_memory_bytes,
                            StatFromJson(entry, "peak_memory_bytes"));
  AIRINDEX_ASSIGN_OR_RETURN(a.cpu_ms, StatFromJson(entry, "cpu_ms"));
  AIRINDEX_ASSIGN_OR_RETURN(a.energy_joules,
                            StatFromJson(entry, "energy_joules"));
  AIRINDEX_ASSIGN_OR_RETURN(a.corrupted_packets,
                            StatFromJsonOr(entry, "corrupted_packets"));
  AIRINDEX_ASSIGN_OR_RETURN(a.fec_recovered,
                            StatFromJsonOr(entry, "fec_recovered"));
  AIRINDEX_ASSIGN_OR_RETURN(a.cache_hits,
                            StatFromJsonOr(entry, "cache_hits"));
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t warm,
                            GetUint64Or(entry, "warm_queries", 0));
  a.warm_queries = static_cast<size_t>(warm);
  AIRINDEX_ASSIGN_OR_RETURN(a.warm_tuning,
                            StatFromJsonOr(entry, "warm_tuning"));
  return r;
}

}  // namespace detail

std::string ToText(const BatchResult& batch) {
  std::string out;
  char line[320];
  std::string header = "# " + std::to_string(batch.num_queries) +
                       " queries, " + std::to_string(batch.threads) +
                       " thread(s)";
  if (batch.engine != "batch") {
    header += ", engine=" + batch.engine;
    if (batch.subchannels > 1) {
      header += " (" + std::to_string(batch.subchannels) + " sub-channels)";
    }
  }
  std::snprintf(line, sizeof(line), ", loss=%.4f", batch.loss_rate);
  header += line;
  if (batch.loss_burst_len > 1) {
    std::snprintf(line, sizeof(line), " (bursts of %u)",
                  batch.loss_burst_len);
    header += line;
  }
  if (batch.corrupt_bit > 0.0) {
    std::snprintf(line, sizeof(line), ", corrupt_bit=%.2e",
                  batch.corrupt_bit);
    header += line;
  }
  if (batch.fec.enabled()) {
    std::snprintf(line, sizeof(line), ", fec=%u+%u",
                  batch.fec.data_per_group, batch.fec.parity_per_group);
    header += line;
  }
  out += header;
  out += '\n';
  detail::AppendSystemTable(out, batch.systems);
  std::snprintf(line, sizeof(line), "# wall %.3f s total\n",
                batch.wall_seconds);
  out += line;
  return out;
}

std::string ToJson(const BatchResult& batch) {
  JsonWriter w;
  w.BeginObject();
  w.Field("schema", kReportSchema);
  w.Field("engine", batch.engine);
  // Additive in-schema field: emitted only for scheduled runs, so flat
  // documents keep the historical key set.
  if (batch.schedule_mode != "flat") {
    w.Field("schedule", batch.schedule_mode);
  }
  w.Field("num_queries", static_cast<uint64_t>(batch.num_queries));
  w.Field("threads", static_cast<uint64_t>(batch.threads));
  w.Field("loss_rate", batch.loss_rate);
  w.Field("loss_burst_len", static_cast<uint64_t>(batch.loss_burst_len));
  // Additive channel-impairment fields, emitted only when active so runs
  // on a clean channel reproduce the historical document byte for byte.
  if (batch.corrupt_bit > 0.0) w.Field("corrupt_bit", batch.corrupt_bit);
  w.Field("loss_seed", static_cast<uint64_t>(batch.loss_seed));
  w.Field("subchannels", static_cast<uint64_t>(batch.subchannels));
  if (batch.fec.enabled()) {
    w.Field("fec_data", static_cast<uint64_t>(batch.fec.data_per_group));
    w.Field("fec_parity",
            static_cast<uint64_t>(batch.fec.parity_per_group));
  }
  // Additive session fields, emitted only when sessions/caching are on so
  // one-shot runs reproduce the historical document byte for byte.
  if (batch.session_queries > 1) {
    w.Field("session_queries",
            static_cast<uint64_t>(batch.session_queries));
  }
  if (batch.cache_bytes > 0) {
    w.Field("cache_bytes", static_cast<uint64_t>(batch.cache_bytes));
  }
  w.Field("wall_seconds", batch.wall_seconds);
  w.BeginArray("systems");
  for (const auto& r : batch.systems) detail::WriteSystemEntry(w, r);
  w.EndArray();
  w.EndObject();
  std::string out = std::move(w).Take();
  out += '\n';
  return out;
}

Result<BatchResult> FromJson(std::string_view json) {
  AIRINDEX_ASSIGN_OR_RETURN(JsonValue root, jsonutil::ParseJson(json));
  if (root.type != JsonValue::Type::kObject) {
    return Status::InvalidArgument("report root must be a JSON object");
  }
  AIRINDEX_ASSIGN_OR_RETURN(std::string schema, GetString(root, "schema"));
  if (schema != kReportSchema) {
    return Status::InvalidArgument("unsupported report schema " + schema);
  }

  BatchResult batch;
  // Additive in-schema field: older v1 writers only knew the batch engine.
  AIRINDEX_ASSIGN_OR_RETURN(batch.engine,
                            GetStringOr(root, "engine", "batch"));
  AIRINDEX_ASSIGN_OR_RETURN(batch.schedule_mode,
                            GetStringOr(root, "schedule", "flat"));
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t nq, GetUint64(root, "num_queries"));
  batch.num_queries = static_cast<size_t>(nq);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t threads, GetUint64(root, "threads"));
  batch.threads = static_cast<unsigned>(threads);
  AIRINDEX_ASSIGN_OR_RETURN(batch.loss_rate, GetNumber(root, "loss_rate"));
  // Additive in-schema field: absent in reports from older v1 writers.
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t burst,
                            GetUint64Or(root, "loss_burst_len", 1));
  batch.loss_burst_len = static_cast<uint32_t>(burst);
  AIRINDEX_ASSIGN_OR_RETURN(batch.corrupt_bit,
                            GetNumberOr(root, "corrupt_bit", 0.0));
  AIRINDEX_ASSIGN_OR_RETURN(batch.loss_seed, GetUint64(root, "loss_seed"));
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t subs,
                            GetUint64Or(root, "subchannels", 1));
  batch.subchannels = static_cast<uint32_t>(subs);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t fec_data,
                            GetUint64Or(root, "fec_data", 16));
  batch.fec.data_per_group = static_cast<uint32_t>(fec_data);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t fec_parity,
                            GetUint64Or(root, "fec_parity", 0));
  batch.fec.parity_per_group = static_cast<uint32_t>(fec_parity);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t session_queries,
                            GetUint64Or(root, "session_queries", 1));
  batch.session_queries = static_cast<uint32_t>(session_queries);
  AIRINDEX_ASSIGN_OR_RETURN(uint64_t cache_bytes,
                            GetUint64Or(root, "cache_bytes", 0));
  batch.cache_bytes = static_cast<size_t>(cache_bytes);
  AIRINDEX_ASSIGN_OR_RETURN(batch.wall_seconds,
                            GetNumber(root, "wall_seconds"));

  auto it = root.object.find("systems");
  if (it == root.object.end() ||
      it->second.type != JsonValue::Type::kArray) {
    return Status::InvalidArgument("missing systems array");
  }
  for (const JsonValue& entry : it->second.array) {
    AIRINDEX_ASSIGN_OR_RETURN(SystemResult r,
                              detail::SystemEntryFromJson(entry));
    batch.systems.push_back(std::move(r));
  }
  return batch;
}

}  // namespace airindex::sim
