#ifndef AIRINDEX_SIM_SCHEDULE_PLAN_H_
#define AIRINDEX_SIM_SCHEDULE_PLAN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "broadcast/cycle.h"
#include "broadcast/schedule.h"
#include "broadcast/serialization.h"
#include "graph/types.h"

namespace airindex::sim {

/// How a simulation run schedules its broadcast cycles across disks.
///   * kFlat: the historical single-disk timeline (the default — every
///     pre-existing run is bit-identical).
///   * kStatic: one spec planned up front from an analytic demand profile
///     (the square-root rule over the workload's destination distribution).
///   * kOnline: the station re-plans every `replan_cycles` cycles from the
///     demand it has observed so far (EWMA-decayed, hysteresis-gated) —
///     event engine only; the batch engine has no shared timeline to
///     re-plan on.
struct SchedulePolicy {
  enum class Mode { kFlat, kStatic, kOnline } mode = Mode::kFlat;
  /// Number of broadcast disks of the planned specs (>= 1).
  uint32_t disks = 3;
  /// Explicit spin-rate ladder; empty selects powers of two
  /// {2^(disks-1), ..., 1}.
  std::vector<uint32_t> rates;
  /// Online: epoch length, in broadcast cycles of the currently adopted
  /// spec, between re-plans.
  uint32_t replan_cycles = 4;
  /// Online: per-epoch EWMA decay of the demand estimate in (0, 1]; the
  /// estimate entering a re-plan is decay * previous + this epoch's counts.
  double decay = 0.5;
  /// Online: adopt a candidate spec only when the packet mass whose spin
  /// it changes exceeds this fraction of the cycle (damps plan flapping).
  double hysteresis = 0.1;
  /// Minimum demand skew — coefficient of variation of per-group
  /// destination demand over the cycle's data groups — before a non-flat
  /// plan is considered. Broadcast disks pay for repetition with cycle
  /// stretch; near-uniform demand cannot recoup it, so the planner keeps
  /// the built cycle (the flat broadcast) below this threshold. The
  /// online estimator shrinks its observed CV for sampling noise before
  /// comparing.
  double min_skew = 0.5;

  bool flat() const { return mode == Mode::kFlat; }
  bool operator==(const SchedulePolicy&) const = default;
};

/// Group ordinal assigned to nodes that appear in no decodable data
/// segment of the cycle (their demand is spread uniformly).
inline constexpr uint32_t kUnmappedGroup = ~uint32_t{0};

/// Maps every node to the interleave group (broadcast::CycleGroups) whose
/// data segments carry its record, by decoding each kNetworkData payload
/// (region layout first, bare record blob as fallback). Nodes found in
/// several groups keep the first; nodes found nowhere (or in undecodable
/// segments) map to kUnmappedGroup.
std::vector<uint32_t> NodeGroups(const broadcast::BroadcastCycle& cycle,
                                 size_t num_nodes,
                                 broadcast::CycleEncoding encoding);

/// Folds per-node demand weights into per-group weights: a group's weight
/// is the summed weight of the nodes its segments carry, plus an even
/// share of the unmapped mass (so index-only groups keep a positive floor
/// from the planner's epsilon instead of starving). `node_weight` may be
/// empty (uniform demand).
std::vector<double> GroupDemandWeights(
    const broadcast::BroadcastCycle& cycle,
    const std::vector<uint32_t>& group_of_node,
    std::span<const double> node_weight);

/// The static planner: square-root-rule spec for `cycle` under the given
/// per-node demand profile. An empty/uniform profile yields the flat spec.
broadcast::ScheduleSpec PlanStaticSpec(const broadcast::BroadcastCycle& cycle,
                                       std::span<const double> node_weight,
                                       const SchedulePolicy& policy,
                                       broadcast::CycleEncoding encoding);

/// The online demand estimator: counts destination demand per interleave
/// group as queries arrive, and re-plans the spec at epoch boundaries from
/// the EWMA-decayed counts. Deterministic: the adopted spec sequence is a
/// pure function of the observation sequence (no clocks, no randomness),
/// so an event-engine run replays identically for any thread count.
class OnlineReplanner {
 public:
  /// `cycle` must outlive the replanner. `group_of_node` as from
  /// NodeGroups. Starts with the flat spec adopted.
  OnlineReplanner(const broadcast::BroadcastCycle* cycle,
                  std::vector<uint32_t> group_of_node, SchedulePolicy policy);

  /// Records one arriving query's destination (station-side demand signal).
  void ObserveDestination(graph::NodeId dest);

  /// Epoch boundary: folds the epoch's counts into the EWMA, plans a
  /// candidate via the square-root rule, and adopts it when the changed
  /// packet mass clears the hysteresis gate. Returns true when the adopted
  /// spec changed.
  bool Replan();

  /// The currently adopted spec (flat until a re-plan adopts otherwise).
  const broadcast::ScheduleSpec& spec() const { return spec_; }
  uint64_t observations() const { return observations_; }

 private:
  const broadcast::BroadcastCycle* cycle_;
  std::vector<uint32_t> group_of_node_;
  SchedulePolicy policy_;
  std::vector<uint32_t> group_packets_;
  uint64_t total_packets_ = 0;
  /// Per-group index packet share (see GroupIndexShare in the .cc).
  std::vector<double> idx_share_;
  /// EWMA demand estimate and the current epoch's raw counts, per group.
  std::vector<double> ewma_;
  std::vector<double> epoch_;
  uint64_t observations_ = 0;
  broadcast::ScheduleSpec spec_;
};

}  // namespace airindex::sim

#endif  // AIRINDEX_SIM_SCHEDULE_PLAN_H_
