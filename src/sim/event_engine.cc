#include "sim/event_engine.h"

#include <algorithm>
#include <chrono>

#include "common/thread_pool.h"
#include "core/query_scratch.h"

namespace airindex::sim {

unsigned EventEngine::effective_threads() const {
  return ResolveThreads(options_.threads);
}

broadcast::Station EventEngine::MakeStation(
    const core::AirSystem& sys) const {
  broadcast::StationOptions so;
  so.bits_per_second = options_.bits_per_second;
  so.loss = options_.loss;
  so.seed = options_.station_seed;
  so.subchannels = options_.subchannels;
  so.fec = options_.fec;
  return broadcast::Station(&sys.cycle(), so);
}

SystemResult EventEngine::RunSystem(const core::AirSystem& sys,
                                    const workload::Workload& w) const {
  SystemResult result;
  result.system = std::string(sys.name());
  result.per_query.resize(w.queries.size());

  const broadcast::Station station = MakeStation(sys);
  const double pkt_ms = station.PacketMs();
  const double slot_ms = station.SlotMs();
  const double cycle_ms = station.CycleMs();
  const bool fec_on = options_.fec.enabled();

  std::vector<core::QueryScratch> scratch(
      ResolveWorkers(w.queries.size(), options_.threads));

  const unsigned repeat = std::max(1u, options_.repeat);
  double best_wall = 0.0;
  for (unsigned rep = 0; rep < repeat; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    ParallelForWorker(
        w.queries.size(),
        [&](unsigned worker, size_t i) {
          const workload::Query& wq = w.queries[i];
          // Arrival instant on the station clock: the process timestamp
          // when present, else the phase-derived fallback (one cycle's
          // worth of arrivals).
          const double arrival_ms = wq.arrival_ms >= 0.0
                                        ? wq.arrival_ms
                                        : wq.tune_phase * cycle_ms;
          const uint32_t sub = station.SubchannelOf(i);
          core::AirQuery q = core::MakeAirQuery(*graph_, wq);
          q.arrival_pos = station.PositionAt(arrival_ms, sub);
          device::QueryMetrics m = sys.RunQuery(
              station.channel(sub), q, options_.client, &scratch[worker]);
          // Wait starts at the arrival *instant*, not at the packet
          // boundary the client joins: the sub-packet remainder until the
          // joined packet starts transmitting is dozing too.
          const double boundary_ms =
              station.TimeAtMs(q.arrival_pos, sub) - arrival_ms;
          if (fec_on) {
            // Parity slots stretch the on-air timeline past the logical
            // packet count, so price the session's physical-slot window
            // (the FEC-off branch keeps the historical formula verbatim —
            // bit-identical when the code is off).
            m.wait_ms = (boundary_ms > 0.0 ? boundary_ms : 0.0) +
                        static_cast<double>(m.wait_slots) * slot_ms;
            m.listen_ms = static_cast<double>(m.latency_slots -
                                              m.wait_slots) *
                          slot_ms;
          } else {
            m.wait_ms = (boundary_ms > 0.0 ? boundary_ms : 0.0) +
                        static_cast<double>(m.wait_packets) * pkt_ms;
            m.listen_ms = static_cast<double>(m.latency_packets -
                                              m.wait_packets) *
                          pkt_ms;
          }
          if (options_.deterministic) m.cpu_ms = 0.0;
          result.per_query[i] = m;
        },
        options_.threads);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    best_wall = rep == 0 ? wall : std::min(best_wall, wall);
  }
  result.wall_seconds = best_wall;
  result.queries_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(w.queries.size()) / result.wall_seconds
          : 0.0;

  result.aggregate =
      Aggregate::Of(result.system, result.per_query, energy_model());
  return result;
}

BatchResult EventEngine::Run(
    std::span<const core::AirSystem* const> systems,
    const workload::Workload& w) const {
  BatchResult batch;
  batch.engine = "event";
  batch.num_queries = w.queries.size();
  batch.threads = effective_threads();
  batch.loss_rate = options_.loss.rate;
  batch.loss_burst_len = options_.loss.burst_len;
  batch.corrupt_bit = options_.loss.corrupt_bit;
  batch.loss_seed = options_.station_seed;
  batch.subchannels = options_.subchannels;
  batch.fec = options_.fec;
  const auto start = std::chrono::steady_clock::now();
  for (const core::AirSystem* sys : systems) {
    batch.systems.push_back(RunSystem(*sys, w));
  }
  batch.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return batch;
}

}  // namespace airindex::sim
