#include "sim/event_engine.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <numeric>
#include <optional>

#include "common/thread_pool.h"
#include "core/query_scratch.h"

namespace airindex::sim {

namespace {

/// Wait/listen pricing shared by every event-engine path. With FEC on, the
/// on-air timeline is longer than the logical packet count (parity slots),
/// so the session's physical-slot window is priced; the FEC-off branch
/// keeps the historical packet-count formula verbatim — bit-identical when
/// the code is off.
void PriceLatency(device::QueryMetrics& m, double boundary_ms, double pkt_ms,
                  double slot_ms, bool fec_on) {
  if (fec_on) {
    m.wait_ms = (boundary_ms > 0.0 ? boundary_ms : 0.0) +
                static_cast<double>(m.wait_slots) * slot_ms;
    m.listen_ms =
        static_cast<double>(m.latency_slots - m.wait_slots) * slot_ms;
  } else {
    m.wait_ms = (boundary_ms > 0.0 ? boundary_ms : 0.0) +
                static_cast<double>(m.wait_packets) * pkt_ms;
    m.listen_ms =
        static_cast<double>(m.latency_packets - m.wait_packets) * pkt_ms;
  }
}

}  // namespace

unsigned EventEngine::effective_threads() const {
  return ResolveThreads(options_.threads);
}

broadcast::Station EventEngine::MakeStation(
    const core::AirSystem& sys) const {
  broadcast::StationOptions so;
  so.bits_per_second = options_.bits_per_second;
  so.loss = options_.loss;
  so.seed = options_.station_seed;
  so.subchannels = options_.subchannels;
  so.fec = options_.fec;
  return broadcast::Station(&sys.cycle(), so);
}

SystemResult EventEngine::RunSystem(const core::AirSystem& sys,
                                    const workload::Workload& w) const {
  if (options_.schedule.mode == SchedulePolicy::Mode::kOnline) {
    return RunSystemOnline(sys, w);
  }

  SystemResult result;
  result.system = std::string(sys.name());
  result.per_query.resize(w.queries.size());

  // Static broadcast-disk schedule: planned once from the analytic demand
  // profile and transmitted for the whole run. A flat policy (or a planner
  // that collapses to the flat spec) leaves the station schedule-free —
  // the historical timeline, bit for bit.
  std::optional<broadcast::BroadcastSchedule> sched;
  broadcast::StationOptions so;
  so.bits_per_second = options_.bits_per_second;
  so.loss = options_.loss;
  so.seed = options_.station_seed;
  so.subchannels = options_.subchannels;
  so.fec = options_.fec;
  if (options_.schedule.mode == SchedulePolicy::Mode::kStatic) {
    broadcast::ScheduleSpec spec =
        PlanStaticSpec(sys.cycle(), options_.schedule_demand,
                       options_.schedule, options_.encoding);
    if (!spec.flat()) {
      auto compiled =
          broadcast::BroadcastSchedule::Compile(&sys.cycle(), std::move(spec));
      if (compiled.ok()) {
        sched = std::move(compiled).value();
        so.schedule = &*sched;
      }
    }
  }
  const broadcast::Station station(&sys.cycle(), so);
  const double pkt_ms = station.PacketMs();
  const double slot_ms = station.SlotMs();
  const double cycle_ms = station.CycleMs();
  const bool fec_on = options_.fec.enabled();

  // Persistent-client sessions: a run of session.queries consecutive
  // workload queries becomes one client that stays tuned to the station
  // across them, carrying its SessionCache (cold-start path below stays
  // byte-identical to pre-session builds). Each session is one worker's
  // sequential chain — the arrival of query j+1 is the completion instant
  // of query j plus think time — and sessions are mutually independent, so
  // the fleet fans across threads bit-identically. The per-station decode
  // memo is shared by every co-listening client; it only affects cpu_ms
  // (already outside the determinism contract).
  const uint32_t per_session =
      std::max<uint32_t>(1u, options_.session.queries);
  if (per_session > 1 || options_.cache_bytes > 0) {
    const size_t n = w.queries.size();
    const size_t num_sessions = (n + per_session - 1) / per_session;
    core::DecodedSlotCache decode_cache(
        station.channel(0).cycle_version());
    std::vector<core::QueryScratch> scratch(
        ResolveWorkers(num_sessions, options_.threads));

    const unsigned repeat = std::max(1u, options_.repeat);
    double best_wall = 0.0;
    for (unsigned rep = 0; rep < repeat; ++rep) {
      const auto start = std::chrono::steady_clock::now();
      ParallelForWorker(
          num_sessions,
          [&](unsigned worker, size_t sidx) {
            core::QueryScratch& sc = scratch[worker];
            sc.session.BeginSession(options_.cache_bytes);
            sc.decode_cache =
                options_.cache_bytes > 0 ? &decode_cache : nullptr;
            const size_t first = sidx * per_session;
            const size_t last = std::min(n, first + per_session);
            const uint32_t sub = station.SubchannelOf(sidx);
            double arrival_ms = 0.0;
            for (size_t i = first; i < last; ++i) {
              const workload::Query& wq = w.queries[i];
              if (i == first) {
                arrival_ms = wq.arrival_ms >= 0.0
                                 ? wq.arrival_ms
                                 : wq.tune_phase * cycle_ms;
              }
              core::AirQuery q = core::MakeAirQuery(*graph_, wq);
              q.arrival_pos = station.PositionAt(arrival_ms, sub);
              device::QueryMetrics m = sys.RunQuery(
                  station.channel(sub), q, options_.client, &sc);
              // A fully-warm query answers from the cache without the
              // radio ever waking: no packet-boundary doze either.
              const bool silent =
                  m.tuning_packets == 0 && m.latency_packets == 0;
              const double boundary_ms =
                  silent ? 0.0
                         : station.TimeAtMs(q.arrival_pos, sub) - arrival_ms;
              PriceLatency(m, boundary_ms, pkt_ms, slot_ms, fec_on);
              if (options_.deterministic) m.cpu_ms = 0.0;
              result.per_query[i] = m;
              // Next query of the session arrives once this answer landed
              // and the client thought about it.
              arrival_ms += m.wait_ms + m.listen_ms +
                            options_.session.think_ms;
            }
          },
          options_.threads);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      best_wall = rep == 0 ? wall : std::min(best_wall, wall);
    }
    result.wall_seconds = best_wall;
    result.queries_per_second =
        result.wall_seconds > 0.0
            ? static_cast<double>(n) / result.wall_seconds
            : 0.0;
    result.aggregate =
        Aggregate::Of(result.system, result.per_query, energy_model());
    return result;
  }

  std::vector<core::QueryScratch> scratch(
      ResolveWorkers(w.queries.size(), options_.threads));

  const unsigned repeat = std::max(1u, options_.repeat);
  double best_wall = 0.0;
  for (unsigned rep = 0; rep < repeat; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    ParallelForWorker(
        w.queries.size(),
        [&](unsigned worker, size_t i) {
          const workload::Query& wq = w.queries[i];
          // Arrival instant on the station clock: the process timestamp
          // when present, else the phase-derived fallback (one cycle's
          // worth of arrivals).
          const double arrival_ms = wq.arrival_ms >= 0.0
                                        ? wq.arrival_ms
                                        : wq.tune_phase * cycle_ms;
          const uint32_t sub = station.SubchannelOf(i);
          core::AirQuery q = core::MakeAirQuery(*graph_, wq);
          q.arrival_pos = station.PositionAt(arrival_ms, sub);
          device::QueryMetrics m = sys.RunQuery(
              station.channel(sub), q, options_.client, &scratch[worker]);
          // Wait starts at the arrival *instant*, not at the packet
          // boundary the client joins: the sub-packet remainder until the
          // joined packet starts transmitting is dozing too.
          const double boundary_ms =
              station.TimeAtMs(q.arrival_pos, sub) - arrival_ms;
          PriceLatency(m, boundary_ms, pkt_ms, slot_ms, fec_on);
          if (options_.deterministic) m.cpu_ms = 0.0;
          result.per_query[i] = m;
        },
        options_.threads);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    best_wall = rep == 0 ? wall : std::min(best_wall, wall);
  }
  result.wall_seconds = best_wall;
  result.queries_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(w.queries.size()) / result.wall_seconds
          : 0.0;

  result.aggregate =
      Aggregate::Of(result.system, result.per_query, energy_model());
  return result;
}

SystemResult EventEngine::RunSystemOnline(const core::AirSystem& sys,
                                          const workload::Workload& w) const {
  SystemResult result;
  result.system = std::string(sys.name());
  result.per_query.resize(w.queries.size());

  const broadcast::BroadcastCycle& cycle = sys.cycle();
  const size_t n = w.queries.size();
  const bool fec_on = options_.fec.enabled();

  // Epoch plan (serial, deterministic): walk arrivals in time order; at
  // each epoch boundary the re-planner may adopt a new spec, which stands
  // up a new station whose clock restarts at the boundary. Every query is
  // assigned the station of its arrival epoch with an epoch-relative
  // arrival instant, so the parallel phase below is a pure per-query map —
  // byte-identical for any thread count.
  OnlineReplanner planner(
      &cycle, NodeGroups(cycle, graph_->num_nodes(), options_.encoding),
      options_.schedule);
  std::deque<broadcast::BroadcastSchedule> schedules;
  std::deque<broadcast::Station> stations;
  auto push_station = [&](const broadcast::ScheduleSpec& spec) {
    broadcast::StationOptions so;
    so.bits_per_second = options_.bits_per_second;
    so.loss = options_.loss;
    so.seed = options_.station_seed;
    so.subchannels = options_.subchannels;
    so.fec = options_.fec;
    if (!spec.flat()) {
      auto compiled = broadcast::BroadcastSchedule::Compile(&cycle, spec);
      if (compiled.ok()) {
        schedules.push_back(std::move(compiled).value());
        so.schedule = &schedules.back();
      }
    }
    stations.emplace_back(&cycle, so);
    return &stations.back();
  };
  const broadcast::Station* station = push_station(planner.spec());
  const double flat_cycle_ms = station->CycleMs();

  std::vector<double> arrival(n);
  for (size_t i = 0; i < n; ++i) {
    const workload::Query& wq = w.queries[i];
    arrival[i] =
        wq.arrival_ms >= 0.0 ? wq.arrival_ms : wq.tune_phase * flat_cycle_ms;
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return arrival[a] < arrival[b];
  });

  std::vector<const broadcast::Station*> station_of(n, station);
  std::vector<double> epoch_start_of(n, 0.0);
  const auto replan_cycles =
      static_cast<double>(std::max(1u, options_.schedule.replan_cycles));
  double epoch_start = 0.0;
  size_t k = 0;
  while (k < n) {
    const double epoch_ms = replan_cycles * station->CycleMs();
    if (!(epoch_ms > 0.0)) {
      for (; k < n; ++k) {
        station_of[order[k]] = station;
        epoch_start_of[order[k]] = epoch_start;
      }
      break;
    }
    const double epoch_end = epoch_start + epoch_ms;
    while (k < n && arrival[order[k]] < epoch_end) {
      const size_t i = order[k];
      station_of[i] = station;
      epoch_start_of[i] = epoch_start;
      planner.ObserveDestination(w.queries[i].target);
      ++k;
    }
    if (k == n) break;
    if (planner.Replan()) station = push_station(planner.spec());
    epoch_start = epoch_end;
  }

  std::vector<core::QueryScratch> scratch(
      ResolveWorkers(n, options_.threads));

  const unsigned repeat = std::max(1u, options_.repeat);
  double best_wall = 0.0;
  for (unsigned rep = 0; rep < repeat; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    ParallelForWorker(
        n,
        [&](unsigned worker, size_t i) {
          const broadcast::Station& st = *station_of[i];
          const double local_ms = arrival[i] - epoch_start_of[i];
          const uint32_t sub = st.SubchannelOf(i);
          core::AirQuery q = core::MakeAirQuery(*graph_, w.queries[i]);
          q.arrival_pos = st.PositionAt(local_ms, sub);
          device::QueryMetrics m = sys.RunQuery(
              st.channel(sub), q, options_.client, &scratch[worker]);
          const double boundary_ms =
              st.TimeAtMs(q.arrival_pos, sub) - local_ms;
          PriceLatency(m, boundary_ms, st.PacketMs(), st.SlotMs(), fec_on);
          if (options_.deterministic) m.cpu_ms = 0.0;
          result.per_query[i] = m;
        },
        options_.threads);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    best_wall = rep == 0 ? wall : std::min(best_wall, wall);
  }
  result.wall_seconds = best_wall;
  result.queries_per_second =
      result.wall_seconds > 0.0
          ? static_cast<double>(n) / result.wall_seconds
          : 0.0;

  result.aggregate =
      Aggregate::Of(result.system, result.per_query, energy_model());
  return result;
}

BatchResult EventEngine::Run(
    std::span<const core::AirSystem* const> systems,
    const workload::Workload& w) const {
  BatchResult batch;
  batch.engine = "event";
  batch.num_queries = w.queries.size();
  batch.threads = effective_threads();
  batch.loss_rate = options_.loss.rate;
  batch.loss_burst_len = options_.loss.burst_len;
  batch.corrupt_bit = options_.loss.corrupt_bit;
  batch.loss_seed = options_.station_seed;
  batch.subchannels = options_.subchannels;
  batch.fec = options_.fec;
  batch.schedule_mode = std::string(ScheduleModeName(options_.schedule.mode));
  batch.session_queries = std::max(1u, options_.session.queries);
  batch.cache_bytes = options_.cache_bytes;
  const auto start = std::chrono::steady_clock::now();
  for (const core::AirSystem* sys : systems) {
    batch.systems.push_back(RunSystem(*sys, w));
  }
  batch.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return batch;
}

}  // namespace airindex::sim
