#ifndef AIRINDEX_DEVICE_PROFILE_CATALOG_H_
#define AIRINDEX_DEVICE_PROFILE_CATALOG_H_

#include <span>
#include <string_view>

#include "common/result.h"
#include "device/device_profile.h"

namespace airindex::device {

/// One named device in the catalog. Named profiles replace ad-hoc
/// DeviceProfile{} literals so scenarios, benches, and reports all refer to
/// the same device by one string.
struct ProfileSpec {
  std::string_view name;
  std::string_view description;
  DeviceProfile profile;
};

/// The built-in device catalog:
///   j2me        — the paper's GPS clamshell phone (8 MB heap, WaveLAN radio)
///   smartphone  — a modern handset (64 MB app heap, efficient radio,
///                 power-hungry application CPU)
///   iot-sensor  — a battery sensor node (1 MB heap, low-power radio/MCU)
std::span<const ProfileSpec> ProfileCatalog();

/// Looks a profile up by (case-sensitive) name; InvalidArgument lists the
/// known names on miss.
Result<DeviceProfile> FindProfile(std::string_view name);

}  // namespace airindex::device

#endif  // AIRINDEX_DEVICE_PROFILE_CATALOG_H_
