#include "device/profile_catalog.h"

#include <array>
#include <string>

namespace airindex::device {

namespace {

constexpr DeviceProfile Smartphone() {
  DeviceProfile p;
  p.heap_bytes = 64u * 1024 * 1024;
  p.receive_watts = 0.9;
  p.transmit_watts = 1.1;
  p.sleep_watts = 0.02;
  p.cpu_watts = 1.2;
  return p;
}

constexpr DeviceProfile IotSensor() {
  DeviceProfile p;
  p.heap_bytes = 1u * 1024 * 1024;
  p.receive_watts = 0.08;
  p.transmit_watts = 0.1;
  p.sleep_watts = 0.002;
  p.cpu_watts = 0.02;
  return p;
}

const std::array<ProfileSpec, 3> kCatalog = {{
    {"j2me", "paper's J2ME clamshell phone (8 MB heap, WaveLAN radio)",
     DeviceProfile::J2mePhone()},
    {"smartphone", "modern handset (64 MB heap, efficient radio, fast CPU)",
     Smartphone()},
    {"iot-sensor", "battery sensor node (1 MB heap, low-power radio/MCU)",
     IotSensor()},
}};

}  // namespace

std::span<const ProfileSpec> ProfileCatalog() { return kCatalog; }

Result<DeviceProfile> FindProfile(std::string_view name) {
  for (const ProfileSpec& spec : kCatalog) {
    if (spec.name == name) return spec.profile;
  }
  std::string known;
  for (const ProfileSpec& spec : kCatalog) {
    if (!known.empty()) known += ", ";
    known += spec.name;
  }
  return Status::InvalidArgument("unknown device profile \"" +
                                 std::string(name) + "\" (known: " + known +
                                 ")");
}

}  // namespace airindex::device
