#ifndef AIRINDEX_DEVICE_DEVICE_PROFILE_H_
#define AIRINDEX_DEVICE_DEVICE_PROFILE_H_

#include <cstddef>

#include "broadcast/packet.h"

namespace airindex::device {

/// Channel bitrates the paper uses to express cycle durations (Table 1):
/// typical 3G rates for static and moving devices.
inline constexpr double kBitrateStatic3G = 2'000'000.0;  // 2 Mbps
inline constexpr double kBitrateMoving3G = 384'000.0;    // 384 Kbps

/// The simulated client device (§3.1, §7). The paper's evaluation device is
/// a generic GPS-enabled J2ME clamshell phone whose application heap is
/// 8 MB; radio power figures are the 802.11 WaveLAN card's.
struct DeviceProfile {
  /// Application heap available for query processing.
  size_t heap_bytes = 8u * 1024 * 1024;
  /// Radio power draw (watts) per state.
  double receive_watts = 1.4;
  double transmit_watts = 1.65;  // unused on a broadcast channel
  double sleep_watts = 0.045;
  /// Peak CPU power of the ARM processor (watts).
  double cpu_watts = 0.2;

  /// The paper's default device.
  static DeviceProfile J2mePhone() { return DeviceProfile{}; }
};

/// Seconds it takes to broadcast one packet at `bits_per_second`.
inline double PacketSeconds(double bits_per_second) {
  return static_cast<double>(broadcast::kPacketSize) * 8.0 / bits_per_second;
}

/// Seconds it takes to broadcast `packets` packets (Table 1 columns).
inline double CycleSeconds(uint64_t packets, double bits_per_second) {
  return static_cast<double>(packets) * PacketSeconds(bits_per_second);
}

}  // namespace airindex::device

#endif  // AIRINDEX_DEVICE_DEVICE_PROFILE_H_
