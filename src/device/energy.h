#ifndef AIRINDEX_DEVICE_ENERGY_H_
#define AIRINDEX_DEVICE_ENERGY_H_

#include "device/device_profile.h"
#include "device/metrics.h"

namespace airindex::device {

/// Energy model of §3.1: power consumption is dominated by the radio —
/// 1.4 W while receiving, 0.045 W while sleeping — with the ARM CPU's
/// 0.2 W contributing only during computation. Tuning time therefore
/// essentially determines the battery cost of a query.
class EnergyModel {
 public:
  EnergyModel(DeviceProfile profile, double bits_per_second)
      : profile_(profile), bits_per_second_(bits_per_second) {}

  /// Joules spent on a query: receive power for every tuned packet, sleep
  /// power for the rest of the latency window, CPU power for the measured
  /// computation time.
  double QueryJoules(const QueryMetrics& m) const {
    const double pkt_s = PacketSeconds(bits_per_second_);
    const double rx_s = static_cast<double>(m.tuning_packets) * pkt_s;
    const double total_s = static_cast<double>(m.latency_packets) * pkt_s;
    const double sleep_s = total_s > rx_s ? total_s - rx_s : 0.0;
    return rx_s * profile_.receive_watts + sleep_s * profile_.sleep_watts +
           (m.cpu_ms / 1000.0) * profile_.cpu_watts;
  }

  const DeviceProfile& profile() const { return profile_; }
  double bits_per_second() const { return bits_per_second_; }

 private:
  DeviceProfile profile_;
  double bits_per_second_;
};

}  // namespace airindex::device

#endif  // AIRINDEX_DEVICE_ENERGY_H_
