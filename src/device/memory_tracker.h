#ifndef AIRINDEX_DEVICE_MEMORY_TRACKER_H_
#define AIRINDEX_DEVICE_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace airindex::device {

/// Accounts the client-side working memory of a query (§3.1's "memory"
/// factor). Clients charge every structure they retain (raw segment
/// buffers, decoded adjacency, index tables) and release what they drop;
/// `peak()` is the reported metric and `exceeded()` flags a method as
/// inapplicable on the device (Table 2) without aborting the simulation.
class MemoryTracker {
 public:
  explicit MemoryTracker(size_t budget_bytes = SIZE_MAX)
      : budget_(budget_bytes) {}

  void Charge(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
    if (current_ > budget_) exceeded_ = true;
  }

  void Release(size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  size_t current() const { return current_; }
  size_t peak() const { return peak_; }
  size_t budget() const { return budget_; }
  /// True if the working set ever exceeded the device heap.
  bool exceeded() const { return exceeded_; }

 private:
  size_t budget_;
  size_t current_ = 0;
  size_t peak_ = 0;
  bool exceeded_ = false;
};

}  // namespace airindex::device

#endif  // AIRINDEX_DEVICE_MEMORY_TRACKER_H_
