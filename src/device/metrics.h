#ifndef AIRINDEX_DEVICE_METRICS_H_
#define AIRINDEX_DEVICE_METRICS_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>

#include "graph/types.h"

namespace airindex::device {

/// Per-query measurements of the paper's §3.1 performance factors.
struct QueryMetrics {
  /// Packets the radio was awake for (tuning time; energy proxy).
  uint64_t tuning_packets = 0;
  /// Packets from query arrival to the last packet listened to.
  uint64_t latency_packets = 0;
  /// Wait prefix of the latency window: packets from arrival to the start
  /// of the first segment the client actually demanded (header probes and
  /// dozing toward the next index copy). latency - wait is the listen
  /// remainder. See ClientSession::wait_packets.
  uint64_t wait_packets = 0;
  /// The same split on the engine's clock, milliseconds: wait_ms = doze
  /// before the first useful packet, listen_ms = retrieval from there to
  /// the last packet needed. Filled by the simulation engines (packet
  /// durations depend on bitrate and sub-channel count, which RunQuery
  /// does not know); zero when a query ran outside an engine.
  double wait_ms = 0.0;
  double listen_ms = 0.0;
  /// Packets that arrived but failed the per-packet CRC-32 check (the
  /// corruption channel model) — discarded like losses, counted apart.
  uint64_t corrupted_packets = 0;
  /// Data packets reconstructed from FEC parity within the current cycle
  /// pass (each one avoided a next-cycle repair rebroadcast).
  uint64_t fec_recovered = 0;
  /// The latency/wait window measured in physical transmission slots: the
  /// on-air timeline that FEC parity and sub-channel striding stretch.
  /// Equal to the packet counts on a stride-1 channel without FEC. The
  /// engines price wait_ms/listen_ms from these when FEC is on.
  uint64_t wait_slots = 0;
  uint64_t latency_slots = 0;
  /// Peak client working memory.
  size_t peak_memory_bytes = 0;
  /// Client-side computation time (decode + search), milliseconds.
  double cpu_ms = 0.0;
  /// Computed shortest-path distance (kInfDist if the query failed).
  graph::Dist distance = graph::kInfDist;
  /// Number of region data segments received (EB/NR diagnostics).
  uint32_t regions_received = 0;
  /// Segments served from the client's cross-query session cache instead
  /// of the air (0 for cold clients — the historical behaviour).
  uint64_t cache_hits = 0;
  /// True iff at least one segment came from the session cache (the query
  /// ran warm). Cold queries report false, keeping equality with
  /// cache-less builds.
  bool warm = false;
  /// True iff a result was produced.
  bool ok = false;
  /// True iff peak memory exceeded the device heap (method inapplicable).
  bool memory_exceeded = false;

  bool operator==(const QueryMetrics&) const = default;
};

/// Aggregate of many queries (the paper reports per-bucket averages).
struct MetricsSummary {
  double avg_tuning_packets = 0;
  double avg_latency_packets = 0;
  double avg_peak_memory_bytes = 0;
  double avg_cpu_ms = 0;
  double max_peak_memory_bytes = 0;
  size_t count = 0;
  size_t failures = 0;
  bool any_memory_exceeded = false;

  static MetricsSummary Of(std::span<const QueryMetrics> metrics) {
    MetricsSummary s;
    for (const auto& m : metrics) {
      s.avg_tuning_packets += static_cast<double>(m.tuning_packets);
      s.avg_latency_packets += static_cast<double>(m.latency_packets);
      s.avg_peak_memory_bytes += static_cast<double>(m.peak_memory_bytes);
      s.avg_cpu_ms += m.cpu_ms;
      s.max_peak_memory_bytes =
          std::max(s.max_peak_memory_bytes,
                   static_cast<double>(m.peak_memory_bytes));
      s.any_memory_exceeded |= m.memory_exceeded;
      if (!m.ok) ++s.failures;
      ++s.count;
    }
    if (s.count > 0) {
      const auto n = static_cast<double>(s.count);
      s.avg_tuning_packets /= n;
      s.avg_latency_packets /= n;
      s.avg_peak_memory_bytes /= n;
      s.avg_cpu_ms /= n;
    }
    return s;
  }
};

/// Wall-clock stopwatch for the cpu_ms metric.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace airindex::device

#endif  // AIRINDEX_DEVICE_METRICS_H_
