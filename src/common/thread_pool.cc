#include "common/thread_pool.h"

#include <algorithm>

namespace airindex {

void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 unsigned num_threads) {
  if (count == 0) return;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  unsigned threads = num_threads == 0 ? hw : num_threads;
  threads = static_cast<unsigned>(
      std::min<size_t>(threads, count));

  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&]() {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace airindex
