#include "common/thread_pool.h"

#include <algorithm>

namespace airindex {

unsigned ResolveThreads(unsigned num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned ResolveWorkers(size_t count, unsigned num_threads) {
  if (count == 0) return 1;
  return static_cast<unsigned>(std::max<size_t>(
      1, std::min<size_t>(ResolveThreads(num_threads), count)));
}

void ParallelForWorker(
    size_t count, const std::function<void(unsigned, size_t)>& fn,
    unsigned num_threads) {
  if (count == 0) return;
  const unsigned threads = ResolveWorkers(count, num_threads);

  if (threads <= 1) {
    for (size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }

  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      for (;;) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(t, i);
      }
    });
  }
  for (auto& w : workers) w.join();
}

void ParallelForChunked(
    size_t count, size_t chunk,
    const std::function<void(unsigned, size_t, size_t)>& fn,
    unsigned num_threads) {
  if (count == 0) return;
  if (chunk == 0) chunk = 1;
  const unsigned threads = ResolveWorkers(count, num_threads);

  if (threads <= 1) {
    for (size_t i = 0; i < count; i += chunk) {
      fn(0, i, std::min(i + chunk, count));
    }
    return;
  }

  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t]() {
      for (;;) {
        size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= count) return;
        fn(t, begin, std::min(begin + chunk, count));
      }
    });
  }
  for (auto& w : workers) w.join();
}

void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 unsigned num_threads) {
  ParallelForWorker(
      count, [&fn](unsigned, size_t i) { fn(i); }, num_threads);
}

}  // namespace airindex
