#ifndef AIRINDEX_COMMON_STATUS_H_
#define AIRINDEX_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace airindex {

/// Error codes used across the library. Kept deliberately small: the library
/// is a simulator + index builder, so most failures are precondition or
/// input-format problems.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,  // e.g. client heap budget exceeded
  kDataLoss,           // e.g. unrecoverable packet corruption
  kIOError,
  kUnimplemented,
  kInternal,
};

/// Returns a stable, human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, movable status object (RocksDB/Arrow idiom). Functions that can
/// fail for reasons other than programmer error return `Status` or
/// `Result<T>` instead of throwing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning Status.
#define AIRINDEX_RETURN_IF_ERROR(expr)          \
  do {                                          \
    ::airindex::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace airindex

#endif  // AIRINDEX_COMMON_STATUS_H_
