#ifndef AIRINDEX_COMMON_THREAD_POOL_H_
#define AIRINDEX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace airindex {

/// The "0 = hardware concurrency" thread-count policy on its own (at least
/// 1, no per-call clamp): what the simulation engines report as their
/// effective worker count.
unsigned ResolveThreads(unsigned num_threads);

/// Worker count ParallelFor/ParallelForWorker will actually use for `count`
/// iterations and a requested `num_threads` (0 = hardware concurrency,
/// clamped to `count`, at least 1). Callers that keep per-worker state
/// (e.g. one core::QueryScratch per worker) size it with this.
unsigned ResolveWorkers(size_t count, unsigned num_threads);

/// Runs `fn(i)` for every i in [0, count) across up to `num_threads` worker
/// threads (0 = hardware concurrency). Blocks until all iterations finish.
/// Used by the server-side pre-computation (one Dijkstra per border node /
/// landmark / source), which is embarrassingly parallel.
void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 unsigned num_threads = 0);

/// Like ParallelFor but also hands `fn` the worker index in
/// [0, ResolveWorkers(count, num_threads)). The worker index is stable for
/// the duration of the call, so `fn` may index per-worker scratch with it;
/// which iterations land on which worker is scheduling-dependent, so
/// results must not depend on the partition (see the AirSystem scratch
/// contract).
void ParallelForWorker(
    size_t count, const std::function<void(unsigned, size_t)>& fn,
    unsigned num_threads = 0);

/// Chunked work-stealing loop: workers repeatedly claim ranges of up to
/// `chunk` consecutive iterations from a shared atomic cursor and run
/// `fn(worker, begin, end)` for each claimed range. Compared to the
/// per-iteration ParallelForWorker this amortises the cursor contention
/// over `chunk` iterations while still letting fast workers steal work from
/// slow ones — the right shape when per-iteration cost is skewed (e.g. one
/// Dijkstra per border node, where dense regions cost far more than sparse
/// ones). A `chunk` of 0 is treated as 1. Like ParallelForWorker, which
/// ranges land on which worker is scheduling-dependent; results must not
/// depend on the partition.
void ParallelForChunked(
    size_t count, size_t chunk,
    const std::function<void(unsigned, size_t, size_t)>& fn,
    unsigned num_threads = 0);

}  // namespace airindex

#endif  // AIRINDEX_COMMON_THREAD_POOL_H_
