#ifndef AIRINDEX_COMMON_THREAD_POOL_H_
#define AIRINDEX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace airindex {

/// Runs `fn(i)` for every i in [0, count) across up to `num_threads` worker
/// threads (0 = hardware concurrency). Blocks until all iterations finish.
/// Used by the server-side pre-computation (one Dijkstra per border node /
/// landmark / source), which is embarrassingly parallel.
void ParallelFor(size_t count, const std::function<void(size_t)>& fn,
                 unsigned num_threads = 0);

}  // namespace airindex

#endif  // AIRINDEX_COMMON_THREAD_POOL_H_
