#ifndef AIRINDEX_COMMON_BYTE_IO_H_
#define AIRINDEX_COMMON_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace airindex {

/// Little-endian fixed-width encode/decode helpers used by the broadcast
/// serialization layer. All broadcast records are little-endian regardless of
/// host order; these helpers are byte-order-safe.

inline void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

inline void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

inline void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

/// LEB128 varint: 7 value bits per byte, high bit = continuation. Small
/// values (gap-coded neighbour ids, jittered weights) take 1-2 bytes
/// instead of 4; the compact cycle encoding is built on these.
inline void PutVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Encoded size of PutVarint(v) without writing it.
inline size_t VarintBytes(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// ZigZag maps signed to unsigned so small-magnitude negatives stay short:
/// 0,-1,1,-2,2... => 0,1,2,3,4...
inline uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

inline uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

inline uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

/// Sequential reader over a byte span with a cursor; mirrors the Put*
/// helpers. Bounds are the caller's responsibility (checked via remaining()).
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const std::vector<uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  void Skip(size_t n) { pos_ += n; }

  uint16_t ReadU16() {
    uint16_t v = GetU16(data_ + pos_);
    pos_ += 2;
    return v;
  }
  uint32_t ReadU32() {
    uint32_t v = GetU32(data_ + pos_);
    pos_ += 4;
    return v;
  }
  uint64_t ReadU64() {
    uint64_t v = GetU64(data_ + pos_);
    pos_ += 8;
    return v;
  }

  /// Reads a varint into `*v`. Unlike the fixed-width readers this is
  /// bounds-checked (a varint's length is data-dependent, so the caller
  /// cannot pre-check remaining()): returns false on truncation or on a
  /// continuation running past 64 bits, leaving the cursor mid-varint.
  bool ReadVarint(uint64_t* v) {
    uint64_t result = 0;
    for (int shift = 0; shift < 64 && pos_ < size_; shift += 7) {
      const uint8_t b = data_[pos_++];
      result |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        *v = result;
        return true;
      }
    }
    return false;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace airindex

#endif  // AIRINDEX_COMMON_BYTE_IO_H_
