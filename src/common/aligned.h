#ifndef AIRINDEX_COMMON_ALIGNED_H_
#define AIRINDEX_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace airindex {

/// Minimal aligned allocator for cache-line-conscious containers. The CSR
/// arrays of `graph::Graph` are the main consumers: starting each SoA array
/// on its own 64-byte line keeps a sequential arc scan from sharing lines
/// with unrelated allocations and makes the layout friendly to future
/// SIMD/prefetch work.
template <typename T, size_t Alignment = 64>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr size_t alignment =
      Alignment > alignof(T) ? Alignment : alignof(T);

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{alignment}));
  }

  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t{alignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// std::vector whose storage starts on a 64-byte (cache-line) boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace airindex

#endif  // AIRINDEX_COMMON_ALIGNED_H_
