#ifndef AIRINDEX_COMMON_RNG_H_
#define AIRINDEX_COMMON_RNG_H_

#include <cstdint>

namespace airindex {

/// Deterministic 64-bit PRNG (SplitMix64 seeding a xoshiro256**-style core).
/// Every randomized component in the library (network generator, workload,
/// packet loss, client tune-in instant) takes an explicit seed and owns one
/// of these, so all experiments replay bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection method would be overkill here; the
    // modulo bias is negligible for the bounds used (< 2^32).
    return Next() % bound;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace airindex

#endif  // AIRINDEX_COMMON_RNG_H_
