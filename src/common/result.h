#ifndef AIRINDEX_COMMON_RESULT_H_
#define AIRINDEX_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace airindex {

/// Value-or-Status return type (a minimal StatusOr). A `Result<T>` holds
/// either a `T` or a non-OK `Status`. Accessing the value of an errored
/// result is a programmer error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "Result constructed from an OK status carries no value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns OK when a value is held, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Evaluates `rexpr` (a Result<T>), propagating the error, else assigning
/// the value to `lhs`. Usable in functions returning Status or Result<U>.
#define AIRINDEX_ASSIGN_OR_RETURN(lhs, rexpr)       \
  AIRINDEX_ASSIGN_OR_RETURN_IMPL_(                  \
      AIRINDEX_CONCAT_(_res_, __LINE__), lhs, rexpr)

#define AIRINDEX_CONCAT_INNER_(a, b) a##b
#define AIRINDEX_CONCAT_(a, b) AIRINDEX_CONCAT_INNER_(a, b)
#define AIRINDEX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

}  // namespace airindex

#endif  // AIRINDEX_COMMON_RESULT_H_
