#include "partition/partitioning.h"

namespace airindex::partition {

Partitioning MakePartitioning(std::vector<graph::RegionId> node_region,
                              uint32_t num_regions) {
  Partitioning part;
  part.num_regions = num_regions;
  part.node_region = std::move(node_region);
  part.region_nodes.resize(num_regions);
  for (graph::NodeId v = 0; v < part.node_region.size(); ++v) {
    part.region_nodes[part.node_region[v]].push_back(v);
  }
  return part;
}

BorderInfo ComputeBorders(const graph::Graph& g, const Partitioning& part) {
  BorderInfo info;
  info.is_border.assign(g.num_nodes(), 0);
  // One pass over all arcs marks both endpoints of every crossing arc; this
  // covers incoming and outgoing adjacency without building the transpose.
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& arc : g.OutArcs(v)) {
      if (part.node_region[v] != part.node_region[arc.to]) {
        info.is_border[v] = 1;
        info.is_border[arc.to] = 1;
      }
    }
  }
  info.region_border.resize(part.num_regions);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (info.is_border[v]) {
      info.border_nodes.push_back(v);
      info.region_border[part.node_region[v]].push_back(v);
    }
  }
  return info;
}

}  // namespace airindex::partition
