#include "partition/grid.h"

#include <algorithm>
#include <limits>

namespace airindex::partition {

Result<GridPartitioner> GridPartitioner::Build(const graph::Graph& g,
                                               uint32_t cols, uint32_t rows) {
  if (cols == 0 || rows == 0) {
    return Status::InvalidArgument("grid dimensions must be positive");
  }
  if (g.num_nodes() == 0) return Status::InvalidArgument("empty graph");

  double min_x = std::numeric_limits<double>::max(), max_x = -min_x;
  double min_y = min_x, max_y = -min_x;
  for (const auto& p : g.coords()) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }

  GridPartitioner grid;
  grid.cols_ = cols;
  grid.rows_ = rows;
  grid.min_x_ = min_x;
  grid.min_y_ = min_y;
  grid.cell_w_ = std::max((max_x - min_x) / cols, 1e-12);
  grid.cell_h_ = std::max((max_y - min_y) / rows, 1e-12);
  return grid;
}

graph::RegionId GridPartitioner::RegionOf(graph::Point p) const {
  auto clamp = [](double v, uint32_t n) {
    if (v < 0) return 0u;
    auto c = static_cast<uint32_t>(v);
    return c >= n ? n - 1 : c;
  };
  const uint32_t col = clamp((p.x - min_x_) / cell_w_, cols_);
  const uint32_t row = clamp((p.y - min_y_) / cell_h_, rows_);
  return row * cols_ + col;
}

Partitioning GridPartitioner::Partition(const graph::Graph& g) const {
  std::vector<graph::RegionId> labels(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    labels[v] = RegionOf(g.Coord(v));
  }
  return MakePartitioning(std::move(labels), num_regions());
}

}  // namespace airindex::partition
