#ifndef AIRINDEX_PARTITION_PARTITIONING_H_
#define AIRINDEX_PARTITION_PARTITIONING_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::partition {

/// A concrete assignment of network nodes to regions (paper's R1..Rn,
/// 0-based here). Produced by a partitioner, consumed by ArcFlag, HiTi, EB
/// and NR.
struct Partitioning {
  uint32_t num_regions = 0;
  /// Region of every node.
  std::vector<graph::RegionId> node_region;
  /// Nodes of every region (ascending node id).
  std::vector<std::vector<graph::NodeId>> region_nodes;
};

/// Builds the per-region node lists from a label vector.
Partitioning MakePartitioning(std::vector<graph::RegionId> node_region,
                              uint32_t num_regions);

/// Border-node classification (§2.1): a node is a *border node* iff it is an
/// endpoint of an arc whose endpoints lie in different regions.
struct BorderInfo {
  /// All border nodes, ascending.
  std::vector<graph::NodeId> border_nodes;
  /// is_border[v] != 0 iff v is a border node.
  std::vector<uint8_t> is_border;
  /// Border nodes per region, ascending.
  std::vector<std::vector<graph::NodeId>> region_border;
};

BorderInfo ComputeBorders(const graph::Graph& g, const Partitioning& part);

}  // namespace airindex::partition

#endif  // AIRINDEX_PARTITION_PARTITIONING_H_
