#include "partition/kd_tree.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace airindex::partition {

namespace {

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Axis of a heap level: the paper's example splits on y first.
bool SplitsOnY(uint32_t level) { return level % 2 == 0; }

double CoordOnAxis(const graph::Point& p, bool on_y) {
  return on_y ? p.y : p.x;
}

}  // namespace

Result<KdTreePartitioner> KdTreePartitioner::Build(const graph::Graph& g,
                                                   uint32_t num_regions) {
  if (!IsPowerOfTwo(num_regions) || num_regions < 2) {
    return Status::InvalidArgument(
        "num_regions must be a power of two >= 2");
  }
  if (g.num_nodes() < num_regions) {
    return Status::InvalidArgument(
        "graph has fewer nodes than requested regions");
  }

  KdTreePartitioner kd;
  kd.num_regions_ = num_regions;
  kd.depth_ = static_cast<uint32_t>(std::countr_zero(num_regions));
  kd.splits_.assign(num_regions - 1, 0.0);

  // Work queue of (heap index, node subset); split each internal node at the
  // median of its subset on the level's axis. Subsets are materialized index
  // vectors — at most O(n log regions) total work.
  std::vector<std::vector<graph::NodeId>> subsets(2 * num_regions);
  subsets[1].resize(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) subsets[1][v] = v;

  for (uint32_t heap = 1; heap < num_regions; ++heap) {
    const uint32_t level =
        static_cast<uint32_t>(std::bit_width(heap)) - 1;
    const bool on_y = SplitsOnY(level);
    auto& subset = subsets[heap];
    const size_t mid = subset.size() / 2;
    std::nth_element(subset.begin(), subset.begin() + mid, subset.end(),
                     [&](graph::NodeId a, graph::NodeId b) {
                       return CoordOnAxis(g.Coord(a), on_y) <
                              CoordOnAxis(g.Coord(b), on_y);
                     });
    const double split = CoordOnAxis(g.Coord(subset[mid]), on_y);
    kd.splits_[heap - 1] = split;

    auto& lo = subsets[2 * heap];
    auto& hi = subsets[2 * heap + 1];
    for (graph::NodeId v : subset) {
      if (CoordOnAxis(g.Coord(v), on_y) < split) {
        lo.push_back(v);
      } else {
        hi.push_back(v);
      }
    }
    subset.clear();
    subset.shrink_to_fit();
  }
  return kd;
}

Result<KdTreePartitioner> KdTreePartitioner::FromSplits(
    std::vector<double> splits_bfs) {
  const size_t count = splits_bfs.size();
  if (!IsPowerOfTwo(static_cast<uint32_t>(count + 1)) || count == 0) {
    return Status::InvalidArgument(
        "split sequence length must be 2^d - 1 for d >= 1");
  }
  KdTreePartitioner kd;
  kd.splits_ = std::move(splits_bfs);
  kd.num_regions_ = static_cast<uint32_t>(count + 1);
  kd.depth_ = static_cast<uint32_t>(std::countr_zero(kd.num_regions_));
  return kd;
}

graph::RegionId KdTreePartitioner::RegionOf(graph::Point p) const {
  uint32_t heap = 1;
  graph::RegionId region = 0;
  for (uint32_t level = 0; level < depth_; ++level) {
    const bool on_y = SplitsOnY(level);
    const bool above = CoordOnAxis(p, on_y) >= splits_[heap - 1];
    region = (region << 1) | static_cast<graph::RegionId>(above);
    heap = 2 * heap + (above ? 1 : 0);
  }
  return region;
}

Partitioning KdTreePartitioner::Partition(const graph::Graph& g) const {
  std::vector<graph::RegionId> labels(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    labels[v] = RegionOf(g.Coord(v));
  }
  return MakePartitioning(std::move(labels), num_regions_);
}

}  // namespace airindex::partition
