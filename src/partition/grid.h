#ifndef AIRINDEX_PARTITION_GRID_H_
#define AIRINDEX_PARTITION_GRID_H_

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"
#include "partition/partitioning.h"

namespace airindex::partition {

/// Regular-grid partitioning (§4.1's "straightforward approach"): a k x m
/// grid of equi-sized cells over the network extent. The paper dismisses it
/// because cell populations are highly skewed; we keep it as the ablation
/// baseline (bench_ablation_partitioning).
class GridPartitioner {
 public:
  /// Builds a cols x rows grid covering the bounding box of `g`'s nodes.
  static Result<GridPartitioner> Build(const graph::Graph& g, uint32_t cols,
                                       uint32_t rows);

  uint32_t num_regions() const { return cols_ * rows_; }
  uint32_t cols() const { return cols_; }
  uint32_t rows() const { return rows_; }

  /// Cell containing `p` (clamped to the grid). Region id is
  /// row-major: row * cols + col.
  graph::RegionId RegionOf(graph::Point p) const;

  Partitioning Partition(const graph::Graph& g) const;

 private:
  GridPartitioner() = default;

  uint32_t cols_ = 0, rows_ = 0;
  double min_x_ = 0, min_y_ = 0, cell_w_ = 1, cell_h_ = 1;
};

}  // namespace airindex::partition

#endif  // AIRINDEX_PARTITION_GRID_H_
