#ifndef AIRINDEX_PARTITION_KD_TREE_H_
#define AIRINDEX_PARTITION_KD_TREE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "partition/partitioning.h"

namespace airindex::partition {

/// Kd-tree partitioning (§4.1, Fig. 2): the network is split recursively by
/// axis-parallel lines through the median coordinate of the contained nodes,
/// alternating axes. The paper's example starts with a horizontal line
/// (split on y), so depth-even levels split on y and depth-odd levels on x.
///
/// The tree is *implicit*: the index's first component is just the n-1 split
/// values in breadth-first order, from which a client rebuilds the whole
/// partitioning (this class is constructible from that sequence alone).
/// Region numbering follows the paper's convention — leaves left-to-right,
/// where the below/left child precedes the above/right child — which makes
/// region ids the top-down concatenation of split decisions.
class KdTreePartitioner {
 public:
  /// Builds a partitioner with `num_regions` (a power of two >= 2) leaves by
  /// recursive median splits of the node coordinates.
  static Result<KdTreePartitioner> Build(const graph::Graph& g,
                                         uint32_t num_regions);

  /// Rebuilds a partitioner from the broadcast split sequence (num_regions-1
  /// values in BFS order). This is the client-side path.
  static Result<KdTreePartitioner> FromSplits(std::vector<double> splits_bfs);

  uint32_t num_regions() const { return num_regions_; }
  uint32_t depth() const { return depth_; }

  /// Split values in breadth-first order; exactly num_regions()-1 values.
  /// This is what goes on air as the index's first component.
  const std::vector<double>& splits_bfs() const { return splits_; }

  /// Region containing an arbitrary Euclidean location. The paper's clients
  /// call this to locate R_s and R_t from the query coordinates.
  graph::RegionId RegionOf(graph::Point p) const;

  /// Labels every node of `g` (RegionOf applied to each coordinate).
  Partitioning Partition(const graph::Graph& g) const;

 private:
  KdTreePartitioner() = default;

  // splits_ is a 1-based implicit complete binary tree flattened in BFS
  // order: entry i (0-based) is heap node i+1 with children 2(i+1) and
  // 2(i+1)+1. Axis of heap level L (root = level 0): y when L is even.
  std::vector<double> splits_;
  uint32_t num_regions_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace airindex::partition

#endif  // AIRINDEX_PARTITION_KD_TREE_H_
