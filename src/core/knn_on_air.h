#ifndef AIRINDEX_CORE_KNN_ON_AIR_H_
#define AIRINDEX_CORE_KNN_ON_AIR_H_

#include <utility>
#include <vector>

#include "core/air_system.h"
#include "core/eb.h"
#include "graph/types.h"

namespace airindex::core {

/// §8 extension, second half ("... e.g., range and *nearest neighbor*
/// retrieval"): k-nearest-neighbor search over a set of points of interest,
/// answered on the air.
///
/// The client knows which nodes are POIs (e.g., a category file shipped
/// with the application — the broadcast carries the *network*, which is
/// what changes); what it must learn from the air is the road network
/// around it. The EB index drives an incremental expansion: regions are
/// received in ascending mindist(Rs, R) order, and the search stops once
/// the next region's minimum distance exceeds the current k-th best POI
/// distance — at which point every region a better path could traverse has
/// been received, so the answer is exact.
struct KnnQuery {
  graph::NodeId source = graph::kInvalidNode;
  graph::Point source_coord;
  uint32_t k = 1;
  double tune_phase = 0.0;
};

struct KnnResult {
  /// Up to k (poi, distance) pairs, ascending distance. Fewer than k when
  /// the network holds fewer reachable POIs.
  std::vector<std::pair<graph::NodeId, graph::Dist>> neighbors;
  device::QueryMetrics metrics;
};

/// Runs a kNN query against an EB broadcast. `poi_nodes` is the client-side
/// POI category (node ids). Loss handling as in the shortest-path client.
KnnResult RunKnnQuery(const EbSystem& system,
                      const broadcast::BroadcastChannel& channel,
                      const KnnQuery& query,
                      const std::vector<graph::NodeId>& poi_nodes,
                      const ClientOptions& options = {});

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_KNN_ON_AIR_H_
