#ifndef AIRINDEX_CORE_HITI_ON_AIR_H_
#define AIRINDEX_CORE_HITI_ON_AIR_H_

#include <memory>

#include "algo/hiti.h"
#include "common/result.h"
#include "core/air_system.h"
#include "core/cycle_common.h"
#include "graph/graph.h"

namespace airindex::core {

/// Broadcast adaptation of HiTi (§3.2): the cycle carries the network data
/// plus every hierarchy level's border super-edge tables. HiTi is the one
/// classic index that could tune selectively, but the client must receive
/// the *entire* index first — and the tables are several times larger than
/// the network (Table 1), which is what disqualifies it on real devices
/// (its working set exceeds the 8 MB heap even on the smallest evaluation
/// network, so the paper only reports its cycle length).
class HiTiOnAir : public AirSystem {
 public:
  static Result<std::unique_ptr<HiTiOnAir>> Build(
      const graph::Graph& g, uint32_t num_regions,
      const BuildConfig& config = {});

  std::string_view name() const override { return "HiTi"; }
  const broadcast::BroadcastCycle& cycle() const override { return cycle_; }
  device::QueryMetrics RunQuery(const broadcast::BroadcastChannel& channel,
                                const AirQuery& query,
                                const ClientOptions& options = {},
                                QueryScratch* scratch =
                                    nullptr) const override;
  double precompute_seconds() const override { return precompute_seconds_; }

  const algo::HiTiIndex& index() const { return index_; }

 private:
  HiTiOnAir() = default;

  broadcast::BroadcastCycle cycle_;
  algo::HiTiIndex index_;
  std::vector<double> splits_;
  broadcast::CycleEncoding encoding_ = broadcast::CycleEncoding::kLegacy;
  uint32_t num_regions_ = 0;
  double precompute_seconds_ = 0.0;
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_HITI_ON_AIR_H_
