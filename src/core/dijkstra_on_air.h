#ifndef AIRINDEX_CORE_DIJKSTRA_ON_AIR_H_
#define AIRINDEX_CORE_DIJKSTRA_ON_AIR_H_

#include <memory>

#include "common/result.h"
#include "core/air_system.h"
#include "core/cycle_common.h"
#include "graph/graph.h"

namespace airindex::core {

/// The broadcast adaptation of Dijkstra's algorithm (§3.2): the cycle
/// carries only the network data (shortest possible cycle) and the client,
/// having no way to tune selectively, listens to the entire cycle, rebuilds
/// the whole network in memory, and searches locally. Lost adjacency
/// packets are re-listened to on later cycles (§6.2).
class DijkstraOnAir : public AirSystem {
 public:
  static Result<std::unique_ptr<DijkstraOnAir>> Build(
      const graph::Graph& g, const BuildConfig& config = {});

  std::string_view name() const override { return "DJ"; }
  const broadcast::BroadcastCycle& cycle() const override { return cycle_; }
  device::QueryMetrics RunQuery(const broadcast::BroadcastChannel& channel,
                                const AirQuery& query,
                                const ClientOptions& options = {},
                                QueryScratch* scratch =
                                    nullptr) const override;

 private:
  DijkstraOnAir() = default;

  broadcast::BroadcastCycle cycle_;
  broadcast::CycleEncoding encoding_ = broadcast::CycleEncoding::kLegacy;
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_DIJKSTRA_ON_AIR_H_
