#ifndef AIRINDEX_CORE_RANGE_ON_AIR_H_
#define AIRINDEX_CORE_RANGE_ON_AIR_H_

#include <utility>
#include <vector>

#include "core/air_system.h"
#include "core/eb.h"
#include "graph/types.h"

namespace airindex::core {

/// §8 extension ("a promising direction for future work is to consider
/// on-air processing of spatial queries in road networks, e.g., range
/// retrieval"): a network *range query* answered on the air.
///
/// Given the client's location and a network-distance radius, return every
/// node within that graph distance. The EB index answers it with the same
/// machinery as shortest paths: a region R can contain an in-range node
/// only if mindist(Rs, R) <= radius, and every region a qualifying path
/// traverses satisfies the same test, so receiving exactly those regions
/// (full data — results may be local nodes) and running a radius-bounded
/// Dijkstra is exact.
struct RangeQuery {
  graph::NodeId source = graph::kInvalidNode;
  graph::Point source_coord;
  graph::Dist radius = 0;
  double tune_phase = 0.0;
};

struct RangeResult {
  /// (node, distance) pairs with distance <= radius, ascending distance.
  std::vector<std::pair<graph::NodeId, graph::Dist>> nodes;
  device::QueryMetrics metrics;
};

/// Runs a range query against an EB broadcast. Lost packets are handled
/// exactly as in the shortest-path client (§6.2).
RangeResult RunRangeQuery(const EbSystem& system,
                          const broadcast::BroadcastChannel& channel,
                          const RangeQuery& query,
                          const ClientOptions& options = {});

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_RANGE_ON_AIR_H_
