#include "core/cycle_common.h"

namespace airindex::core {

uint32_t AppendNetworkSegments(const graph::Graph& g,
                               broadcast::CycleBuilder* builder,
                               uint32_t chunk_nodes,
                               broadcast::CycleEncoding encoding) {
  uint32_t segments = 0;
  std::vector<graph::NodeId> chunk;
  chunk.reserve(chunk_nodes);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    chunk.push_back(v);
    if (chunk.size() == chunk_nodes || v + 1 == g.num_nodes()) {
      broadcast::Segment seg;
      seg.type = broadcast::SegmentType::kNetworkData;
      seg.id = segments;
      seg.payload = broadcast::EncodeNodeRecords(g, chunk, encoding);
      builder->Add(std::move(seg));
      ++segments;
      chunk.clear();
    }
  }
  return segments;
}

}  // namespace airindex::core
