#include "core/super_edge.h"

#include <algorithm>
#include <queue>

namespace airindex::core {

void SuperEdgeProcessor::AddOverlayArc(graph::NodeId from, graph::NodeId to,
                                       graph::Dist d) {
  overlay_[from].emplace_back(to, d);
  ++overlay_arc_count_;
}

void SuperEdgeProcessor::AddRegion(const RegionData& data) {
  // Local dense ids over this region's received records.
  std::unordered_map<graph::NodeId, uint32_t> local;
  local.reserve(data.records.size());
  for (uint32_t i = 0; i < data.records.size(); ++i) {
    local.emplace(data.records[i].id, i);
  }

  // Anchors: the region's border nodes (from the segment header) plus the
  // query endpoints if they live here.
  std::vector<graph::NodeId> anchors;
  for (graph::NodeId b : data.border) {
    if (local.count(b)) anchors.push_back(b);
  }
  for (graph::NodeId endpoint : {source_, target_}) {
    if (local.count(endpoint) &&
        std::find(anchors.begin(), anchors.end(), endpoint) ==
            anchors.end()) {
      anchors.push_back(endpoint);
    }
  }

  const uint32_t n = static_cast<uint32_t>(data.records.size());
  std::vector<uint8_t> is_anchor(n, 0);
  for (graph::NodeId a : anchors) is_anchor[local.at(a)] = 1;

  // Local adjacency restricted to received nodes of this region. Arcs that
  // leave the set become border edges of G' — but only from anchors:
  // non-anchor nodes are unreachable in G' (they have no incoming
  // super-edge), so their out-of-set arcs could never be used. This is the
  // paper's "ignore border nodes adjacent only to irrelevant regions"
  // pruning (dashed arrows in Fig. 8).
  std::vector<std::vector<std::pair<uint32_t, graph::Dist>>> adj(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (const auto& arc : data.records[i].arcs) {
      auto it = local.find(arc.to);
      if (it != local.end()) {
        adj[i].emplace_back(it->second, arc.weight);
      } else if (is_anchor[i]) {
        AddOverlayArc(data.records[i].id, arc.to, arc.weight);
      }
    }
  }
  for (graph::NodeId a : anchors) {
    std::vector<graph::Dist> dist(n, graph::kInfDist);
    using Item = std::pair<graph::Dist, uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
    const uint32_t src = local.at(a);
    dist[src] = 0;
    heap.emplace(0, src);
    while (!heap.empty()) {
      auto [d, v] = heap.top();
      heap.pop();
      if (d != dist[v]) continue;
      for (auto [to, w] : adj[v]) {
        if (d + w < dist[to]) {
          dist[to] = d + w;
          heap.emplace(d + w, to);
        }
      }
    }
    for (uint32_t i = 0; i < n; ++i) {
      if (!is_anchor[i] || i == src || dist[i] == graph::kInfDist) continue;
      AddOverlayArc(a, data.records[i].id, dist[i]);
    }
  }
}

graph::Dist SuperEdgeProcessor::Solve() const {
  std::unordered_map<graph::NodeId, graph::Dist> dist;
  using Item = std::pair<graph::Dist, graph::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source_] = 0;
  heap.emplace(0, source_);
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    auto it = dist.find(v);
    if (it == dist.end() || it->second != d) continue;
    if (v == target_) return d;
    auto adj_it = overlay_.find(v);
    if (adj_it == overlay_.end()) continue;
    for (auto [to, w] : adj_it->second) {
      auto [dit, inserted] = dist.try_emplace(to, d + w);
      if (!inserted && dit->second <= d + w) continue;
      dit->second = d + w;
      heap.emplace(d + w, to);
    }
  }
  return graph::kInfDist;
}

}  // namespace airindex::core
