#ifndef AIRINDEX_CORE_NR_INDEX_H_
#define AIRINDEX_CORE_NR_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/types.h"

namespace airindex::core {

/// One local index A^m of the Next Region method (§5.1), broadcast
/// immediately before region R_m's data:
///
///   NrIndexPayload :=
///     num_regions:u16  num_nodes:u32  region_id:u16     -- header
///     { split:f64 }^(R-1)                               -- first component
///     { next_region:u8 }^(R*R)                          -- A^m, row-major:
///         entry [rs][rt] = the next region in the broadcast cycle (at or
///         after R_m, cyclically) needed for a shortest path rs -> rt
///     { cross_start:u32 cross_packets:u16               -- region data
///       local_packets:u16 }^R                              geometry
///
/// Region data follows EB's cross-border/local split (§4.1): each region is
/// broadcast as a cross-border segment at `cross_start` followed by a local
/// segment (`local_packets` may be 0), followed by the next local index.
/// The client receives only the cross segment of intermediate regions.
/// Region ids fit u8, so NR supports up to 256 regions (the paper tunes at
/// most 128).
class NrIndex {
 public:
  struct RegionGeometry {
    uint32_t cross_start = 0;
    uint16_t cross_packets = 0;
    uint16_t local_packets = 0;
  };

  uint32_t num_regions = 0;
  uint32_t num_nodes = 0;
  uint32_t region_id = 0;
  std::vector<double> splits;
  /// Row-major R x R next-region table.
  std::vector<uint8_t> next_region;
  std::vector<RegionGeometry> geometry;

  uint8_t Next(graph::RegionId rs, graph::RegionId rt) const {
    return next_region[static_cast<size_t>(rs) * num_regions + rt];
  }

  std::vector<uint8_t> Encode() const;
  static Result<NrIndex> Decode(const std::vector<uint8_t>& payload);
  /// Decode into an existing index, reusing its vector capacity (the
  /// allocation-free client path). `*out` is unspecified on failure.
  static Status Decode(const std::vector<uint8_t>& payload, NrIndex* out);

  static size_t EncodedBytes(uint32_t num_regions);

  /// Byte range of the header + splits (needed to locate Rs/Rt).
  static std::pair<size_t, size_t> SplitsRange(uint32_t num_regions);
  /// Byte range of the single table cell [rs][rt] (§6.2: NR needs one value
  /// per local index, so a lost packet rarely matters).
  static std::pair<size_t, size_t> CellRange(uint32_t num_regions,
                                             graph::RegionId rs,
                                             graph::RegionId rt);
  /// Byte range of the geometry entry of region `r`.
  static std::pair<size_t, size_t> PositionRange(uint32_t num_regions,
                                                 graph::RegionId r);

 private:
  static size_t HeaderBytes(uint32_t num_regions) {
    return 8 + (static_cast<size_t>(num_regions) - 1) * 8;
  }
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_NR_INDEX_H_
