#ifndef AIRINDEX_CORE_PARTIAL_GRAPH_H_
#define AIRINDEX_CORE_PARTIAL_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "broadcast/serialization.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::core {

/// The client-side picture of the network: adjacency lists of only the
/// nodes received so far, addressed by global node id. Adjacency entries may
/// point at nodes the client never received; searches skip those via
/// KnownEdgeFilter (such nodes cannot lie on the answer path by the pruning
/// arguments of §4/§5).
///
/// Storage is built for reuse across queries (core::QueryScratch): arcs
/// live in a chunked pool (fixed-size chunks that never reallocate, so
/// OutArcs spans stay valid while the pool grows) instead of one heap
/// vector per received node, and Reset() clears the graph by bumping a
/// generation stamp — O(1), keeping every allocation. A reused PartialGraph
/// therefore allocates nothing in steady state.
///
/// Satisfies the graph concept of algo::DijkstraSearch.
class PartialGraph {
 public:
  /// Modeled client memory charge per received node record: the §2.1
  /// <id, x, y> tuple plus an adjacency-list header. Matches the historical
  /// hand-written constant (24 bytes) — the *modeled* charge is a property
  /// of the paper's client, deliberately independent of how this process
  /// actually pools the storage.
  static constexpr size_t kModeledNodeBytes =
      sizeof(graph::Point) + sizeof(graph::NodeId) + sizeof(uint32_t);
  /// Modeled charge per adjacency entry: one <to, weight> pair.
  static constexpr size_t kModeledArcBytes = sizeof(graph::Graph::Arc);
  static_assert(kModeledNodeBytes == 24 && kModeledArcBytes == 8,
                "modeled client memory charges must not drift (the paper's "
                "figures and the golden metrics depend on them)");

  PartialGraph() = default;

  /// Forgets every received record in O(1), keeping all storage for reuse.
  void Reset();

  /// Ingests one decoded adjacency record. Duplicate receipt (e.g. a region
  /// received again during loss repair) is a no-op.
  void AddRecord(const broadcast::NodeRecord& rec);

  bool Has(graph::NodeId v) const {
    return v < node_gen_.size() && node_gen_[v] == generation_;
  }

  /// One past the largest node id the storage can address. High-water
  /// across reuses; per-query state is tracked by the generation stamps,
  /// so ids in [known ids, num_nodes()) simply read as not-received.
  size_t num_nodes() const { return entries_.size(); }
  size_t known_count() const { return known_count_; }
  size_t arc_count() const { return arc_count_; }

  std::span<const graph::Graph::Arc> OutArcs(graph::NodeId v) const {
    if (!Has(v)) return {};
    const NodeEntry& e = entries_[v];
    if (e.count == 0) return {};  // zero-arc record: no chunk backs it
    return {chunks_[e.chunk].data() + e.offset, e.count};
  }

  const graph::Point& Coord(graph::NodeId v) const { return coords_[v]; }

  /// Client memory estimate: node table + adjacency entries. Matches the
  /// MemoryTracker charges the clients make.
  size_t MemoryBytes() const {
    return known_count_ * kModeledNodeBytes + arc_count_ * kModeledArcBytes;
  }

 private:
  /// Arcs per pool chunk; a record with a larger degree gets its own
  /// exactly-sized chunk so its span stays contiguous.
  static constexpr size_t kArcChunk = 4096;

  struct NodeEntry {
    uint32_t chunk = 0;
    uint32_t offset = 0;
    uint32_t count = 0;
  };

  /// The chunk the next record's arcs go into, guaranteed to have room for
  /// `need` more arcs. Chunks are reserved once and never reallocated, so
  /// previously returned OutArcs spans stay valid.
  std::vector<graph::Graph::Arc>& ChunkWithRoom(size_t need);

  std::vector<std::vector<graph::Graph::Arc>> chunks_;
  size_t active_chunk_ = 0;
  std::vector<NodeEntry> entries_;
  std::vector<graph::Point> coords_;
  std::vector<uint32_t> node_gen_;
  uint32_t generation_ = 1;
  size_t known_count_ = 0;
  size_t arc_count_ = 0;
};

/// Edge filter: follow an arc only if its head was received.
struct KnownEdgeFilter {
  const PartialGraph* g;
  bool operator()(graph::NodeId, const graph::Graph::Arc& arc) const {
    return g->Has(arc.to);
  }
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_PARTIAL_GRAPH_H_
