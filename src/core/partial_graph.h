#ifndef AIRINDEX_CORE_PARTIAL_GRAPH_H_
#define AIRINDEX_CORE_PARTIAL_GRAPH_H_

#include <span>
#include <vector>

#include "broadcast/serialization.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::core {

/// The client-side picture of the network: adjacency lists of only the
/// nodes received so far, addressed by global node id. Adjacency entries may
/// point at nodes the client never received; searches skip those via
/// KnownEdgeFilter (such nodes cannot lie on the answer path by the pruning
/// arguments of §4/§5).
///
/// Satisfies the graph concept of algo::DijkstraSearch.
class PartialGraph {
 public:
  PartialGraph() = default;

  /// Ingests one decoded adjacency record. Duplicate receipt (e.g. a region
  /// received again during loss repair) is a no-op.
  void AddRecord(const broadcast::NodeRecord& rec);

  bool Has(graph::NodeId v) const {
    return v < known_.size() && known_[v] != 0;
  }

  size_t num_nodes() const { return adj_.size(); }
  size_t known_count() const { return known_count_; }
  size_t arc_count() const { return arc_count_; }

  std::span<const graph::Graph::Arc> OutArcs(graph::NodeId v) const {
    if (v >= adj_.size()) return {};
    return {adj_[v].data(), adj_[v].size()};
  }

  const graph::Point& Coord(graph::NodeId v) const { return coords_[v]; }

  /// Client memory estimate: node table + adjacency entries. Matches the
  /// MemoryTracker charges the clients make.
  size_t MemoryBytes() const {
    return known_count_ * 24 + arc_count_ * 8;
  }

 private:
  std::vector<std::vector<graph::Graph::Arc>> adj_;
  std::vector<graph::Point> coords_;
  std::vector<uint8_t> known_;
  size_t known_count_ = 0;
  size_t arc_count_ = 0;
};

/// Edge filter: follow an arc only if its head was received.
struct KnownEdgeFilter {
  const PartialGraph* g;
  bool operator()(graph::NodeId, const graph::Graph::Arc& arc) const {
    return g->Has(arc.to);
  }
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_PARTIAL_GRAPH_H_
