#include "core/systems.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "core/arcflag_on_air.h"
#include "core/dijkstra_on_air.h"
#include "core/eb.h"
#include "core/hiti_on_air.h"
#include "core/landmark_on_air.h"
#include "core/nr.h"
#include "core/spq_on_air.h"

namespace airindex::core {

namespace {

/// The one parameter that distinguishes two builds of the same method
/// (region count or landmark count; 0 for the parameterless methods).
uint32_t MethodKnob(std::string_view method, const SystemParams& params) {
  if (method == "NR") return params.nr_regions;
  if (method == "EB") return params.eb_regions;
  if (method == "AF") return params.arcflag_regions;
  if (method == "LD") return params.landmarks;
  if (method == "HiTi") return params.hiti_regions;
  return 0;  // DJ, SPQ
}

}  // namespace

std::vector<std::string_view> SystemNames(const SystemParams& params) {
  std::vector<std::string_view> names = {"DJ", "NR", "EB", "LD", "AF"};
  if (params.include_spq) names.push_back("SPQ");
  if (params.include_hiti) names.push_back("HiTi");
  return names;
}

Result<std::unique_ptr<AirSystem>> BuildSystem(const graph::Graph& g,
                                               std::string_view method,
                                               const SystemParams& params) {
  if (method == "DJ") {
    AIRINDEX_ASSIGN_OR_RETURN(auto sys, DijkstraOnAir::Build(g, params.build));
    return std::unique_ptr<AirSystem>(std::move(sys));
  }
  if (method == "NR") {
    AIRINDEX_ASSIGN_OR_RETURN(
        auto sys, NrSystem::Build(g, params.nr_regions, params.build));
    return std::unique_ptr<AirSystem>(std::move(sys));
  }
  if (method == "EB") {
    AIRINDEX_ASSIGN_OR_RETURN(
        auto sys, EbSystem::Build(g, params.eb_regions, params.build));
    return std::unique_ptr<AirSystem>(std::move(sys));
  }
  if (method == "LD") {
    AIRINDEX_ASSIGN_OR_RETURN(
        auto sys, LandmarkOnAir::Build(g, params.landmarks, /*seed=*/17,
                                       params.build));
    return std::unique_ptr<AirSystem>(std::move(sys));
  }
  if (method == "AF") {
    AIRINDEX_ASSIGN_OR_RETURN(
        auto sys,
        ArcFlagOnAir::Build(g, params.arcflag_regions, params.build));
    return std::unique_ptr<AirSystem>(std::move(sys));
  }
  if (method == "SPQ") {
    AIRINDEX_ASSIGN_OR_RETURN(auto sys, SpqOnAir::Build(g, params.build));
    return std::unique_ptr<AirSystem>(std::move(sys));
  }
  if (method == "HiTi") {
    AIRINDEX_ASSIGN_OR_RETURN(
        auto sys, HiTiOnAir::Build(g, params.hiti_regions, params.build));
    return std::unique_ptr<AirSystem>(std::move(sys));
  }
  return Status::InvalidArgument("unknown method " + std::string(method));
}

Result<std::vector<std::unique_ptr<AirSystem>>> BuildSystems(
    const graph::Graph& g, const SystemParams& params) {
  std::vector<std::unique_ptr<AirSystem>> systems;
  for (std::string_view name : SystemNames(params)) {
    AIRINDEX_ASSIGN_OR_RETURN(auto sys, BuildSystem(g, name, params));
    systems.push_back(std::move(sys));
  }
  return systems;
}

size_t SystemRegistry::KeyHash::operator()(const Key& k) const {
  // Boost-style hash combining over the key fields.
  size_t h = std::hash<const void*>{}(k.graph);
  auto mix = [&h](size_t v) {
    h ^= v + 0x9E3779B97f4A7C15ULL + (h << 6) + (h >> 2);
  };
  mix(std::hash<size_t>{}(k.nodes));
  mix(std::hash<size_t>{}(k.arcs));
  mix(std::hash<std::string>{}(k.method));
  mix(std::hash<uint32_t>{}(k.knob));
  mix(std::hash<uint8_t>{}(static_cast<uint8_t>(k.encoding)));
  return h;
}

SystemRegistry& SystemRegistry::Global() {
  static SystemRegistry* registry = new SystemRegistry();
  return *registry;
}

Result<std::shared_ptr<const AirSystem>> SystemRegistry::Get(
    const graph::Graph& g, std::string_view method,
    const SystemParams& params) {
  Key key{&g, g.num_nodes(), g.num_arcs(), std::string(method),
          MethodKnob(method, params), params.build.encoding};
  {
    // Fast path: a shared lock suffices for a hit while the cache is under
    // capacity — recency stamps only matter once an eviction is possible,
    // so skipping the tick write keeps concurrent workers from serializing
    // on the write lock for every lookup.
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end() && cache_.size() < capacity_) {
      return it->second.system;
    }
  }
  {
    // At/over capacity (or a miss racing a concurrent insert): re-find
    // under the exclusive lock and refresh the recency stamp.
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      it->second.tick = ++use_tick_;
      return it->second.system;
    }
  }
  // Build outside the lock: pre-computation can take seconds and other
  // methods' lookups shouldn't serialize behind it. A racing builder of the
  // same key loses to whichever insert lands first.
  AIRINDEX_ASSIGN_OR_RETURN(auto built, BuildSystem(g, method, params));
  std::shared_ptr<const AirSystem> sys(std::move(built));
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] =
      cache_.emplace(std::move(key), Entry{std::move(sys), ++use_tick_});
  if (!inserted) it->second.tick = use_tick_;
  std::shared_ptr<const AirSystem> result = it->second.system;
  EvictOverCapacityLocked();
  return result;
}

Result<SharedSystems> SystemRegistry::GetAll(const graph::Graph& g,
                                             const SystemParams& params) {
  SharedSystems systems;
  for (std::string_view name : SystemNames(params)) {
    AIRINDEX_ASSIGN_OR_RETURN(auto sys, Get(g, name, params));
    systems.push_back(std::move(sys));
  }
  return systems;
}

size_t SystemRegistry::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return cache_.size();
}

size_t SystemRegistry::capacity() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return capacity_;
}

void SystemRegistry::set_capacity(size_t capacity) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // A zero cap would make every Get rebuild; keep at least one slot.
  capacity_ = std::max<size_t>(1, capacity);
  EvictOverCapacityLocked();
}

void SystemRegistry::EvictOverCapacityLocked() {
  while (cache_.size() > capacity_) {
    auto lru = cache_.begin();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.tick < lru->second.tick) lru = it;
    }
    cache_.erase(lru);
  }
}

void SystemRegistry::Clear() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  cache_.clear();
}

void SystemRegistry::Evict(const graph::Graph& g) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->first.graph == &g) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace airindex::core
