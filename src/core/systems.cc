#include "core/systems.h"

#include "core/arcflag_on_air.h"
#include "core/dijkstra_on_air.h"
#include "core/eb.h"
#include "core/hiti_on_air.h"
#include "core/landmark_on_air.h"
#include "core/nr.h"
#include "core/spq_on_air.h"

namespace airindex::core {

Result<std::vector<std::unique_ptr<AirSystem>>> BuildSystems(
    const graph::Graph& g, const SystemParams& params) {
  std::vector<std::unique_ptr<AirSystem>> systems;

  AIRINDEX_ASSIGN_OR_RETURN(auto dj, DijkstraOnAir::Build(g));
  systems.push_back(std::move(dj));

  AIRINDEX_ASSIGN_OR_RETURN(auto nr, NrSystem::Build(g, params.nr_regions));
  systems.push_back(std::move(nr));

  AIRINDEX_ASSIGN_OR_RETURN(auto eb, EbSystem::Build(g, params.eb_regions));
  systems.push_back(std::move(eb));

  AIRINDEX_ASSIGN_OR_RETURN(auto ld,
                            LandmarkOnAir::Build(g, params.landmarks));
  systems.push_back(std::move(ld));

  AIRINDEX_ASSIGN_OR_RETURN(
      auto af, ArcFlagOnAir::Build(g, params.arcflag_regions));
  systems.push_back(std::move(af));

  if (params.include_spq) {
    AIRINDEX_ASSIGN_OR_RETURN(auto spq, SpqOnAir::Build(g));
    systems.push_back(std::move(spq));
  }
  if (params.include_hiti) {
    AIRINDEX_ASSIGN_OR_RETURN(auto hiti,
                              HiTiOnAir::Build(g, params.hiti_regions));
    systems.push_back(std::move(hiti));
  }
  return systems;
}

}  // namespace airindex::core
