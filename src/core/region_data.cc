#include "core/region_data.h"

#include "common/byte_io.h"

namespace airindex::core {

std::vector<uint8_t> EncodeRegionData(
    const graph::Graph& g, const std::vector<graph::NodeId>& border,
    const std::vector<graph::NodeId>& nodes) {
  std::vector<uint8_t> out;
  size_t bytes = 2 + border.size() * 4;
  for (graph::NodeId v : nodes) bytes += broadcast::NodeRecordBytes(g, v);
  out.reserve(bytes);
  PutU16(&out, static_cast<uint16_t>(border.size()));
  for (graph::NodeId v : border) PutU32(&out, v);
  for (graph::NodeId v : nodes) broadcast::EncodeNodeRecord(g, v, &out);
  return out;
}

Result<RegionData> DecodeRegionData(const std::vector<uint8_t>& payload) {
  if (payload.size() < 2) return Status::DataLoss("truncated region header");
  ByteReader reader(payload);
  RegionData data;
  const uint16_t border_count = reader.ReadU16();
  if (reader.remaining() < static_cast<size_t>(border_count) * 4) {
    return Status::DataLoss("truncated border list");
  }
  data.border.reserve(border_count);
  for (uint16_t i = 0; i < border_count; ++i) {
    data.border.push_back(reader.ReadU32());
  }
  std::vector<uint8_t> rest(payload.begin() + reader.position(),
                            payload.end());
  AIRINDEX_ASSIGN_OR_RETURN(data.records,
                            broadcast::DecodeNodeRecords(rest));
  return data;
}

}  // namespace airindex::core
