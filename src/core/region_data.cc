#include "core/region_data.h"

#include "common/byte_io.h"

namespace airindex::core {

std::vector<uint8_t> EncodeRegionData(
    const graph::Graph& g, const std::vector<graph::NodeId>& border,
    const std::vector<graph::NodeId>& nodes,
    broadcast::CycleEncoding encoding) {
  std::vector<uint8_t> out;
  size_t bytes = 2 + border.size() * 4 +
                 (encoding == broadcast::CycleEncoding::kCompact ? 1 : 0);
  for (graph::NodeId v : nodes) {
    bytes += broadcast::NodeRecordBytes(g, v, encoding);
  }
  out.reserve(bytes);
  PutU16(&out, static_cast<uint16_t>(border.size()));
  for (graph::NodeId v : border) PutU32(&out, v);
  if (encoding == broadcast::CycleEncoding::kCompact) {
    out.push_back(broadcast::kCompactBlobVersion);
  }
  for (graph::NodeId v : nodes) {
    broadcast::EncodeNodeRecord(g, v, &out, encoding);
  }
  return out;
}

Result<RegionData> DecodeRegionData(const std::vector<uint8_t>& payload,
                                    broadcast::CycleEncoding encoding) {
  if (payload.size() < 2) return Status::DataLoss("truncated region header");
  ByteReader reader(payload);
  RegionData data;
  const uint16_t border_count = reader.ReadU16();
  if (reader.remaining() < static_cast<size_t>(border_count) * 4) {
    return Status::DataLoss("truncated border list");
  }
  data.border.reserve(border_count);
  for (uint16_t i = 0; i < border_count; ++i) {
    data.border.push_back(reader.ReadU32());
  }
  broadcast::NodeRecordCursor cursor(payload.data() + reader.position(),
                                     payload.size() - reader.position(),
                                     encoding);
  broadcast::NodeRecord rec;
  while (cursor.Next(&rec)) data.records.push_back(rec);
  if (!cursor.status().ok()) return cursor.status();
  return data;
}

Status ValidateRegionData(const std::vector<uint8_t>& payload,
                          broadcast::CycleEncoding encoding) {
  if (payload.size() < 2) return Status::DataLoss("truncated region header");
  const size_t border_count = GetU16(payload.data());
  if (payload.size() - 2 < border_count * 4) {
    return Status::DataLoss("truncated border list");
  }
  const size_t records_at = 2 + border_count * 4;
  return broadcast::ValidateNodeRecords(payload.data() + records_at,
                                        payload.size() - records_at,
                                        encoding);
}

RegionDataView::RegionDataView(const std::vector<uint8_t>& payload,
                               broadcast::CycleEncoding encoding)
    : data_(payload.data()),
      size_(payload.size()),
      encoding_(encoding),
      border_count_(payload.size() >= 2 ? GetU16(payload.data()) : 0) {}

graph::NodeId RegionDataView::BorderAt(size_t i) const {
  return GetU32(data_ + 2 + i * 4);
}

broadcast::NodeRecordCursor RegionDataView::records() const {
  const size_t records_at = 2 + border_count_ * 4;
  return broadcast::NodeRecordCursor(data_ + records_at, size_ - records_at,
                                     encoding_);
}


}  // namespace airindex::core
