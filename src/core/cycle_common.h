#ifndef AIRINDEX_CORE_CYCLE_COMMON_H_
#define AIRINDEX_CORE_CYCLE_COMMON_H_

#include <cstdint>
#include <vector>

#include "broadcast/cycle.h"
#include "broadcast/serialization.h"
#include "graph/graph.h"

namespace airindex::core {

/// Number of adjacency records grouped into one kNetworkData segment by the
/// full-cycle methods. Chunking exists so clients can decode-and-release
/// segment by segment instead of buffering the whole cycle twice; one
/// trailing padding packet per segment is the only overhead.
inline constexpr uint32_t kNetworkChunkNodes = 512;

/// Appends the whole network as chunked kNetworkData segments (node-id
/// order). Returns the number of segments added.
uint32_t AppendNetworkSegments(const graph::Graph& g,
                               broadcast::CycleBuilder* builder,
                               uint32_t chunk_nodes = kNetworkChunkNodes);

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_CYCLE_COMMON_H_
