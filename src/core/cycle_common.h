#ifndef AIRINDEX_CORE_CYCLE_COMMON_H_
#define AIRINDEX_CORE_CYCLE_COMMON_H_

#include <cstdint>
#include <vector>

#include "broadcast/cycle.h"
#include "broadcast/serialization.h"
#include "graph/graph.h"

namespace airindex::core {

/// Number of adjacency records grouped into one kNetworkData segment by the
/// full-cycle methods. Chunking exists so clients can decode-and-release
/// segment by segment instead of buffering the whole cycle twice; one
/// trailing padding packet per segment is the only overhead.
inline constexpr uint32_t kNetworkChunkNodes = 512;

/// Build-time configuration shared by every air system's Build().
///
/// `encoding` selects the cycle payload wire format; kLegacy is the format
/// every reproduction number was measured with and stays the default —
/// kCompact is the continental-scale option (see broadcast/serialization.h).
/// The encoding is baked into the built cycle, remembered by the system,
/// and applied to all its client-side decoding; it is part of the
/// SystemRegistry cache key.
///
/// `precompute_threads` caps the server-side pre-computation workers
/// (0 = hardware concurrency). It never affects the built bytes — the
/// precompute merge is commutative, pinned by test — so it is deliberately
/// NOT part of the registry key.
struct BuildConfig {
  broadcast::CycleEncoding encoding = broadcast::CycleEncoding::kLegacy;
  unsigned precompute_threads = 0;

  bool operator==(const BuildConfig&) const = default;
};

/// Appends the whole network as chunked kNetworkData segments (node-id
/// order), each chunk encoded with `encoding`. Returns the number of
/// segments added.
uint32_t AppendNetworkSegments(
    const graph::Graph& g, broadcast::CycleBuilder* builder,
    uint32_t chunk_nodes = kNetworkChunkNodes,
    broadcast::CycleEncoding encoding = broadcast::CycleEncoding::kLegacy);

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_CYCLE_COMMON_H_
