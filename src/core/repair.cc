#include "core/repair.h"

#include <algorithm>
#include <cstring>

namespace airindex::core {

namespace {

struct MissingPacket {
  uint32_t cycle_pos;
  broadcast::ReceivedSegment* seg;
  uint32_t seq;
};

}  // namespace

bool RepairAllSegments(broadcast::ClientSession& session,
                       const std::vector<PendingRepair>& pending,
                       int max_cycles) {
  const uint32_t total = session.cycle().total_packets();
  for (int pass = 0; pass < max_cycles; ++pass) {
    std::vector<MissingPacket> missing;
    for (const PendingRepair& p : pending) {
      for (uint32_t seq = 0; seq < p.seg->packet_ok.size(); ++seq) {
        if (!p.seg->packet_ok[seq]) {
          missing.push_back({(p.segment_start + seq) % total, p.seg, seq});
        }
      }
    }
    if (missing.empty()) return true;

    // Visit in broadcast order from the current position so the whole pass
    // costs at most ~one cycle.
    const uint32_t cur = session.cycle_pos();
    std::sort(missing.begin(), missing.end(),
              [&](const MissingPacket& a, const MissingPacket& b) {
                const uint32_t da =
                    a.cycle_pos >= cur ? a.cycle_pos - cur
                                       : a.cycle_pos + total - cur;
                const uint32_t db =
                    b.cycle_pos >= cur ? b.cycle_pos - cur
                                       : b.cycle_pos + total - cur;
                return da < db;
              });
    for (const MissingPacket& m : missing) {
      session.SleepUntilCyclePos(m.cycle_pos);
      auto view = session.ReceiveNext();
      if (!view.has_value()) continue;
      m.seg->packet_ok[m.seq] = true;
      std::memcpy(m.seg->payload.data() +
                      static_cast<size_t>(m.seq) * broadcast::kPayloadSize,
                  view->chunk.data(), view->chunk.size());
    }
    for (const PendingRepair& p : pending) {
      p.seg->complete =
          std::all_of(p.seg->packet_ok.begin(), p.seg->packet_ok.end(),
                      [](bool b) { return b; });
    }
  }
  return std::all_of(pending.begin(), pending.end(),
                     [](const PendingRepair& p) { return p.seg->complete; });
}

}  // namespace airindex::core
