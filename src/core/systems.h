#ifndef AIRINDEX_CORE_SYSTEMS_H_
#define AIRINDEX_CORE_SYSTEMS_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "core/air_system.h"
#include "graph/graph.h"

namespace airindex::core {

/// Tuning knobs of the evaluated methods (paper §7 defaults for the Germany
/// network: ArcFlag 16 regions, EB 32, NR 32, Landmark 4 anchors).
struct SystemParams {
  uint32_t arcflag_regions = 16;
  uint32_t eb_regions = 32;
  uint32_t nr_regions = 32;
  uint32_t landmarks = 4;
  uint32_t hiti_regions = 32;
  /// SPQ/HiTi pre-computation is all-pairs-ish; skip them for large inputs
  /// unless the experiment needs their cycle sizes (Table 1).
  bool include_spq = false;
  bool include_hiti = false;
};

/// Builds the evaluated systems in the paper's Table 1 order
/// (DJ, NR, EB, LD, AF, then optionally SPQ and HiTi).
Result<std::vector<std::unique_ptr<AirSystem>>> BuildSystems(
    const graph::Graph& g, const SystemParams& params);

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_SYSTEMS_H_
