#ifndef AIRINDEX_CORE_SYSTEMS_H_
#define AIRINDEX_CORE_SYSTEMS_H_

#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "core/air_system.h"
#include "core/cycle_common.h"
#include "graph/graph.h"

namespace airindex::core {

/// Tuning knobs of the evaluated methods (paper §7 defaults for the Germany
/// network: ArcFlag 16 regions, EB 32, NR 32, Landmark 4 anchors).
struct SystemParams {
  uint32_t arcflag_regions = 16;
  uint32_t eb_regions = 32;
  uint32_t nr_regions = 32;
  uint32_t landmarks = 4;
  uint32_t hiti_regions = 32;
  /// SPQ/HiTi pre-computation is all-pairs-ish; skip them for large inputs
  /// unless the experiment needs their cycle sizes (Table 1).
  bool include_spq = false;
  bool include_hiti = false;

  /// Cycle encoding and build-time parallelism knobs shared by every
  /// method (see BuildConfig). `build.encoding` changes the broadcast
  /// cycle and therefore joins the registry cache key;
  /// `build.precompute_threads` does not (precompute output is
  /// byte-identical for any thread count).
  BuildConfig build;

  bool operator==(const SystemParams&) const = default;
};

/// Method names in the paper's Table 1 order, honouring the params'
/// include_spq/include_hiti flags: DJ, NR, EB, LD, AF (, SPQ, HiTi).
std::vector<std::string_view> SystemNames(const SystemParams& params);

/// Builds one method by its paper name ("DJ", "NR", "EB", "LD", "AF",
/// "SPQ", "HiTi"), taking its knob from `params`.
Result<std::unique_ptr<AirSystem>> BuildSystem(const graph::Graph& g,
                                               std::string_view method,
                                               const SystemParams& params);

/// Builds the evaluated systems in the paper's Table 1 order
/// (DJ, NR, EB, LD, AF, then optionally SPQ and HiTi).
Result<std::vector<std::unique_ptr<AirSystem>>> BuildSystems(
    const graph::Graph& g, const SystemParams& params);

/// A list of ready broadcast systems, shared with the registry cache.
using SharedSystems = std::vector<std::shared_ptr<const AirSystem>>;

/// Process-wide cache of built systems keyed by (graph identity, method,
/// relevant parameter). Building a method's broadcast cycle dominates
/// experiment start-up (border-pair Dijkstras, kd-tree splits, cycle
/// layout); the registry pays that cost once per (graph, config) and hands
/// every caller the same immutable instance. Thread-safe; the returned
/// systems are safe for concurrent RunQuery calls (see air_system.h).
///
/// The cache key includes the graph's address plus its node/arc counts, so
/// entries are only valid while the caller keeps the graph alive; call
/// Clear() when discarding graphs wholesale (e.g. between networks of a
/// memory-tight sweep).
class SystemRegistry {
 public:
  /// The process-wide instance used by benches and the CLI.
  static SystemRegistry& Global();

  /// Returns the cached system for `method` on `g`, building it on miss.
  Result<std::shared_ptr<const AirSystem>> Get(const graph::Graph& g,
                                               std::string_view method,
                                               const SystemParams& params = {});

  /// Table-1-ordered systems per `params` (cache-backed, one Get each).
  Result<SharedSystems> GetAll(const graph::Graph& g,
                               const SystemParams& params = {});

  /// Number of cached systems.
  size_t size() const;

  /// Most cached systems kept at once (default kDefaultCapacity). When an
  /// insert pushes the cache past the cap, the least-recently-used entries
  /// are dropped — parameter sweeps that vary knobs/encodings/schedules
  /// across many graphs stop accumulating dead pre-computations. Shrinking
  /// the cap evicts immediately. Outstanding shared_ptrs keep evicted
  /// systems alive; a later Get simply rebuilds.
  size_t capacity() const;
  void set_capacity(size_t capacity);

  /// Generous default: a full seven-system fleet on a handful of graphs
  /// and knob settings fits without any eviction.
  static constexpr size_t kDefaultCapacity = 256;

  /// Drops every cached system.
  void Clear();

  /// Drops the cached systems of one graph (all methods/knobs). Callers
  /// that own a graph with a narrower lifetime than the process — the
  /// scenario runner, per-network bench loops — evict on teardown instead
  /// of clearing other graphs' caches wholesale.
  void Evict(const graph::Graph& g);

 private:
  struct Key {
    const graph::Graph* graph = nullptr;
    size_t nodes = 0;
    size_t arcs = 0;
    std::string method;
    uint32_t knob = 0;
    broadcast::CycleEncoding encoding = broadcast::CycleEncoding::kLegacy;

    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  struct Entry {
    std::shared_ptr<const AirSystem> system;
    /// Last-touch stamp from use_tick_ (monotonic, under mu_).
    uint64_t tick = 0;
  };

  /// Drops least-recently-used entries until size() <= capacity_.
  /// Caller holds mu_ exclusively.
  void EvictOverCapacityLocked();

  /// Reader-writer lock: Get hits take only the shared side while the
  /// cache is under capacity (recency stamps don't matter until an
  /// eviction is possible), so concurrent simulation workers stop
  /// serializing on every registry lookup. Misses, inserts, and all
  /// mutations take the exclusive side.
  mutable std::shared_mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> cache_;
  size_t capacity_ = kDefaultCapacity;
  uint64_t use_tick_ = 0;
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_SYSTEMS_H_
