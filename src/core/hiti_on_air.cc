#include "core/hiti_on_air.h"

#include <bit>
#include <chrono>
#include <optional>

#include "common/byte_io.h"
#include "core/cycle_common.h"
#include "core/full_cycle.h"
#include "core/query_scratch.h"
#include "device/memory_tracker.h"
#include "partition/kd_tree.h"

namespace airindex::core {
namespace {

constexpr uint32_t kHeaderSegment = 0;
constexpr uint32_t kInfU32 = 0xFFFFFFFFu;

uint32_t SaturateDist(graph::Dist d) {
  if (d == graph::kInfDist) return kInfU32;
  return d >= kInfU32 ? kInfU32 - 1 : static_cast<uint32_t>(d);
}

}  // namespace

Result<std::unique_ptr<HiTiOnAir>> HiTiOnAir::Build(const graph::Graph& g,
                                                    uint32_t num_regions,
                                                    const BuildConfig& config) {
  auto sys = std::unique_ptr<HiTiOnAir>(new HiTiOnAir());
  sys->encoding_ = config.encoding;
  sys->num_regions_ = num_regions;

  AIRINDEX_ASSIGN_OR_RETURN(
      auto kd, partition::KdTreePartitioner::Build(g, num_regions));
  sys->splits_ = kd.splits_bfs();

  const auto start = std::chrono::steady_clock::now();
  AIRINDEX_ASSIGN_OR_RETURN(sys->index_, algo::HiTiIndex::Build(g, kd));
  sys->precompute_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  broadcast::CycleBuilder builder;
  AppendNetworkSegments(g, &builder, kNetworkChunkNodes, config.encoding);

  // Header: region count + node count + kd splits.
  {
    broadcast::Segment seg;
    seg.type = broadcast::SegmentType::kAuxData;
    seg.id = kHeaderSegment;
    PutU16(&seg.payload, static_cast<uint16_t>(num_regions));
    PutU32(&seg.payload, static_cast<uint32_t>(g.num_nodes()));
    for (double s : sys->splits_) {
      PutU64(&seg.payload, std::bit_cast<uint64_t>(s));
    }
    builder.Add(std::move(seg));
  }
  // One aux segment per hierarchy sub-graph: border list + distance matrix
  // + first-hop matrix (HiTi stores path views, not just distances).
  for (uint32_t h = 1; h < 2 * num_regions; ++h) {
    const auto& sub = sys->index_.Info(h);
    broadcast::Segment seg;
    seg.type = broadcast::SegmentType::kAuxData;
    seg.id = h;
    PutU32(&seg.payload, static_cast<uint32_t>(sub.border.size()));
    for (graph::NodeId b : sub.border) PutU32(&seg.payload, b);
    for (graph::Dist d : sub.dmat) PutU32(&seg.payload, SaturateDist(d));
    for (graph::NodeId hop : sub.next_hop) PutU32(&seg.payload, hop);
    builder.Add(std::move(seg));
  }
  AIRINDEX_ASSIGN_OR_RETURN(sys->cycle_, std::move(builder).Finalize(
                                             /*require_index=*/false));
  return sys;
}

device::QueryMetrics HiTiOnAir::RunQuery(
    const broadcast::BroadcastChannel& channel, const AirQuery& query,
    const ClientOptions& options, QueryScratch* scratch) const {
  device::QueryMetrics metrics;
  device::MemoryTracker memory(options.heap_bytes);
  broadcast::ClientSession session(&channel, StartPosition(channel, query));

  std::optional<QueryScratch> local_scratch;
  QueryScratch& s =
      scratch != nullptr ? *scratch : local_scratch.emplace();
  s.BeginQuery();

  // coords/subs are moved into the rebuilt Graph / HiTiIndex below, so
  // they cannot be pooled; the edge list can.
  std::vector<graph::Point> coords;
  std::vector<graph::EdgeTriplet>& edges = s.edges;
  std::vector<double> splits;
  std::vector<algo::HiTiIndex::SubgraphInfo> subs(2 * num_regions_);
  bool header_ok = false;
  double cpu_ms = 0.0;
  s.session.BeginQueryStats();

  Status receive_status = ReceiveFullCycleCached(
      session, memory, &s.session,
      [](const broadcast::ReceivedSegment&) {
        return true;  // the index must be complete to be usable
      },
      [&](broadcast::ReceivedSegment& seg) {
        device::Stopwatch sw;
        if (seg.type == broadcast::SegmentType::kNetworkData) {
          const bool valid = MemoValidate(s.decode_cache, seg, [&] {
            return broadcast::ValidateNodeRecords(seg.payload, encoding_)
                .ok();
          });
          if (valid) {
            size_t added = 0;
            size_t record_count = 0;
            broadcast::NodeRecordCursor cursor(seg.payload, encoding_);
            while (cursor.Next(&s.record)) {
              ++record_count;
              if (s.record.id >= coords.size()) {
                coords.resize(s.record.id + 1);
              }
              coords[s.record.id] = s.record.coord;
              for (const auto& arc : s.record.arcs) {
                edges.push_back({s.record.id, arc.to, arc.weight});
                ++added;
              }
            }
            memory.Charge(added * 12 + record_count * 20);
          }
        } else if (seg.segment_id == kHeaderSegment) {
          if (seg.complete && seg.payload.size() >= 6) {
            ByteReader reader(seg.payload);
            const uint16_t regions = reader.ReadU16();
            reader.ReadU32();
            for (uint16_t i = 0; i + 1 < regions; ++i) {
              splits.push_back(std::bit_cast<double>(reader.ReadU64()));
            }
            header_ok = true;
            memory.Charge(splits.size() * 8);
          }
        } else if (seg.segment_id < subs.size()) {
          ByteReader reader(seg.payload);
          if (seg.payload.size() >= 4) {
            const uint32_t nb = reader.ReadU32();
            auto& sub = subs[seg.segment_id];
            sub.border.reserve(nb);
            for (uint32_t i = 0; i < nb; ++i) {
              sub.border.push_back(reader.ReadU32());
            }
            sub.dmat.reserve(static_cast<size_t>(nb) * nb);
            for (size_t i = 0; i < static_cast<size_t>(nb) * nb; ++i) {
              const uint32_t v = reader.ReadU32();
              sub.dmat.push_back(v == kInfU32 ? graph::kInfDist : v);
            }
            sub.next_hop.reserve(static_cast<size_t>(nb) * nb);
            for (size_t i = 0; i < static_cast<size_t>(nb) * nb; ++i) {
              sub.next_hop.push_back(reader.ReadU32());
            }
            memory.Charge(nb * 4 + static_cast<size_t>(nb) * nb * 12);
          }
        }
        memory.Release(seg.payload.size());
        cpu_ms += sw.ElapsedMs();
      },
      options.max_repair_cycles, &s.full_cycle);

  device::Stopwatch sw;
  graph::Dist dist = graph::kInfDist;
  auto built = graph::Graph::Build(std::move(coords), edges);
  if (built.ok() && header_ok) {
    graph::Graph gr = std::move(built).value();
    memory.Charge(gr.MemoryBytes());
    auto kd = partition::KdTreePartitioner::FromSplits(splits);
    if (kd.ok()) {
      algo::HiTiIndex idx = algo::HiTiIndex::FromTables(
          num_regions_, kd->Partition(gr), std::move(subs));
      size_t settled = 0;
      dist = idx.QueryDistance(gr, query.source, query.target, &settled);
    }
  }
  cpu_ms += sw.ElapsedMs();

  metrics.tuning_packets = session.tuned_packets();
  metrics.latency_packets = session.latency_packets();
  metrics.wait_packets = session.wait_packets();
  metrics.corrupted_packets = session.corrupted_packets();
  metrics.fec_recovered = session.fec_recovered();
  metrics.wait_slots = session.wait_slots();
  metrics.latency_slots = session.latency_slots();
  metrics.peak_memory_bytes = memory.peak();
  metrics.memory_exceeded = memory.exceeded();
  metrics.cpu_ms = cpu_ms;
  metrics.cache_hits = s.session.query_hits();
  metrics.warm = metrics.cache_hits > 0;
  metrics.distance = dist;
  metrics.ok = receive_status.ok() && dist != graph::kInfDist;
  return metrics;
}

}  // namespace airindex::core
