#ifndef AIRINDEX_CORE_QUERY_SCRATCH_H_
#define AIRINDEX_CORE_QUERY_SCRATCH_H_

#include <cstddef>
#include <deque>
#include <vector>

#include "algo/search_workspace.h"
#include "broadcast/channel.h"
#include "broadcast/serialization.h"
#include "core/decoded_slot_cache.h"
#include "core/eb_index.h"
#include "core/full_cycle.h"
#include "core/nr_index.h"
#include "core/partial_graph.h"
#include "core/session_cache.h"
#include "graph/types.h"

namespace airindex::core {

/// Pool of ReceivedSegment buffers for clients that hold several segments
/// at once (EB/NR: the current index copy, per-region cross/local segments,
/// the §6.2 repair stash). Acquire() hands out slots with stable addresses
/// (deque-backed — stash entries keep pointers across later Acquires);
/// Recycle() returns a slot for reuse within the same query, Reset() frees
/// every slot logically while keeping all payload/mask allocations, so a
/// reused arena stops allocating once it has seen the query shape.
class SegmentArena {
 public:
  broadcast::ReceivedSegment* Acquire() {
    if (free_.empty()) {
      slots_.emplace_back();
      return &slots_.back();
    }
    broadcast::ReceivedSegment* seg = free_.back();
    free_.pop_back();
    return seg;
  }

  void Recycle(broadcast::ReceivedSegment* seg) { free_.push_back(seg); }

  void Reset() {
    free_.clear();
    free_.reserve(slots_.size());
    for (auto& slot : slots_) free_.push_back(&slot);
  }

  size_t slot_count() const { return slots_.size(); }

 private:
  std::deque<broadcast::ReceivedSegment> slots_;
  std::vector<broadcast::ReceivedSegment*> free_;
};

/// Caller-owned scratch memory for AirSystem::RunQuery: everything a client
/// allocates per query — the search workspace, the partial graph it
/// rebuilds from the air, segment reassembly buffers, decode scratch —
/// lives here so a reused scratch makes the steady-state query path
/// allocation-free. Reported QueryMetrics are byte-identical with or
/// without a scratch (and regardless of what ran in it before): scratch
/// only changes *where* the client's working memory comes from, never what
/// the client computes (the golden test in tests/sim pins this).
///
/// Ownership contract: a QueryScratch is single-threaded — one scratch per
/// worker thread, never shared concurrently (sim::Simulator keeps one per
/// worker and reuses it across the thread's whole query slice). RunQuery
/// resets it on entry, so callers never clean up between queries; contents
/// are meaningless between calls. Passing nullptr makes RunQuery use a
/// throwaway local — the historical allocate-per-query behaviour.
struct QueryScratch {
  /// Dijkstra / A* state (dist, parent, frontier heaps).
  algo::SearchWorkspace search;
  /// The client-side network picture (pooled arc storage).
  PartialGraph partial_graph;
  /// Segment buffers of the selective-tuning clients (EB/NR).
  SegmentArena segments;
  /// Segment buffers of the full-cycle clients (DJ/LD/AF/SPQ/HiTi).
  FullCycleScratch full_cycle;
  /// Streaming-decode record (arc storage reused across records).
  broadcast::NodeRecord record;
  /// Decoded index scratch of the EB / NR clients.
  EbIndex eb_index;
  NrIndex nr_index;
  /// EB's pruned needed-region list.
  std::vector<graph::RegionId> needed_regions;
  /// NR's received-region flags.
  std::vector<uint8_t> region_flags;
  /// LD's landmark distance vectors (k * n entries each).
  std::vector<graph::Dist> ld_to;
  std::vector<graph::Dist> ld_from;
  /// Edge accumulator of the clients that rebuild a full graph::Graph
  /// (AF/SPQ/HiTi).
  std::vector<graph::EdgeTriplet> edges;
  /// Cross-query session cache (disabled unless the owner arms it via
  /// BeginSession — the event engine's warm-session path does). NOT reset
  /// by BeginQuery: its whole point is surviving to the next query.
  SessionCache session;
  /// Station-wide decode memoization, set by the event engine when shared
  /// caching is on (null = validate locally, the historical behaviour).
  DecodedSlotCache* decode_cache = nullptr;

  /// Readies the scratch for a fresh query: O(1) generation bumps and
  /// cursor resets; every allocation is kept.
  void BeginQuery() {
    partial_graph.Reset();
    segments.Reset();
    needed_regions.clear();
    edges.clear();
    // search workspaces reset per search (BeginSearch); ld_to/ld_from are
    // assign()ed by the LD client; full_cycle re-primes per call. The
    // session cache deliberately survives (it is per-session state).
  }
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_QUERY_SCRATCH_H_
