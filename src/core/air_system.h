#ifndef AIRINDEX_CORE_AIR_SYSTEM_H_
#define AIRINDEX_CORE_AIR_SYSTEM_H_

#include <cstddef>
#include <string_view>

#include "broadcast/channel.h"
#include "broadcast/cycle.h"
#include "device/device_profile.h"
#include "device/metrics.h"
#include "graph/types.h"
#include "workload/workload.h"

namespace airindex::core {

/// A query as the client sees it: it knows where it is and where it wants to
/// go (node ids double as record keys; coordinates drive the kd-tree region
/// mapping), and the instant it tunes in, expressed as a cycle fraction.
struct AirQuery {
  graph::NodeId source = graph::kInvalidNode;
  graph::NodeId target = graph::kInvalidNode;
  graph::Point source_coord;
  graph::Point target_coord;
  double tune_phase = 0.0;
};

/// Converts a workload query (coordinates looked up in the graph).
AirQuery MakeAirQuery(const graph::Graph& g, const workload::Query& q);

/// Per-query client configuration.
struct ClientOptions {
  /// Device heap budget (Table 2's applicability criterion).
  size_t heap_bytes = device::DeviceProfile{}.heap_bytes;
  /// §6.1 memory-bound processing: collapse received regions into
  /// super-edges instead of keeping their full data (EB/NR only).
  bool memory_bound = false;
  /// §4.1 optimization: intermediate regions contribute only their
  /// cross-border segment (EB only; ablation toggle).
  bool cross_border_opt = true;
  /// How many extra cycles a client may spend re-listening to lost packets
  /// before giving up.
  int max_repair_cycles = 8;
};

/// One broadcast method: a server-built cycle plus the matching client
/// algorithm. Implementations: DijkstraOnAir, LandmarkOnAir, ArcFlagOnAir,
/// HiTiOnAir, SpqOnAir, EbSystem, NrSystem.
class AirSystem {
 public:
  virtual ~AirSystem() = default;

  /// Short method name as used in the paper's tables ("DJ", "NR", "EB",
  /// "LD", "AF", "SPQ", "HiTi").
  virtual std::string_view name() const = 0;

  /// The broadcast cycle this method's server transmits.
  virtual const broadcast::BroadcastCycle& cycle() const = 0;

  /// Executes one client query against a channel carrying this system's
  /// cycle. Never throws; failures surface as !metrics.ok.
  virtual device::QueryMetrics RunQuery(
      const broadcast::BroadcastChannel& channel, const AirQuery& query,
      const ClientOptions& options = {}) const = 0;

  /// Server-side pre-computation wall time in seconds (Table 3).
  virtual double precompute_seconds() const { return 0.0; }
};

/// Absolute tune-in position for a query phase on this system's cycle.
inline uint64_t TuneInPosition(const broadcast::BroadcastCycle& cycle,
                               double phase) {
  return static_cast<uint64_t>(phase * cycle.total_packets());
}

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_AIR_SYSTEM_H_
