#ifndef AIRINDEX_CORE_AIR_SYSTEM_H_
#define AIRINDEX_CORE_AIR_SYSTEM_H_

#include <cstddef>
#include <string_view>

#include "broadcast/channel.h"
#include "broadcast/cycle.h"
#include "device/device_profile.h"
#include "device/metrics.h"
#include "graph/types.h"
#include "workload/workload.h"

namespace airindex::core {

/// "This query has no absolute arrival": the client tunes in at a private,
/// cycle-relative phase (the batch engine's replay model).
inline constexpr uint64_t kNoArrivalPos = ~uint64_t{0};

/// A query as the client sees it: it knows where it is and where it wants to
/// go (node ids double as record keys; coordinates drive the kd-tree region
/// mapping), and the instant it tunes in. Two tune-in models coexist:
///   * phase-relative (`tune_phase`, the historical model): each query
///     privately replays its own cycle from a fractional offset;
///   * absolute (`arrival_pos` != kNoArrivalPos, the event engine's model):
///     the client joins a shared station timeline at that absolute packet
///     position, mid-cycle, wherever the transmitter happens to be.
struct AirQuery {
  graph::NodeId source = graph::kInvalidNode;
  graph::NodeId target = graph::kInvalidNode;
  graph::Point source_coord;
  graph::Point target_coord;
  double tune_phase = 0.0;
  /// Absolute tune-in position on a shared station timeline; overrides
  /// tune_phase when set (see StartPosition).
  uint64_t arrival_pos = kNoArrivalPos;
};

/// Converts a workload query (coordinates looked up in the graph).
AirQuery MakeAirQuery(const graph::Graph& g, const workload::Query& q);

/// Per-query client configuration.
struct ClientOptions {
  /// Device heap budget (Table 2's applicability criterion).
  size_t heap_bytes = device::DeviceProfile{}.heap_bytes;
  /// §6.1 memory-bound processing: collapse received regions into
  /// super-edges instead of keeping their full data (EB/NR only).
  bool memory_bound = false;
  /// §4.1 optimization: intermediate regions contribute only their
  /// cross-border segment (EB only; ablation toggle).
  bool cross_border_opt = true;
  /// How many extra cycles a client may spend re-listening to lost packets
  /// before giving up.
  int max_repair_cycles = 8;
  /// Opt-in fix for the AF header gap (ROADMAP): also repair the
  /// header/global-index segment of methods whose query cannot run without
  /// it (ArcFlag's kd-split header). Off by default — the §6.2
  /// reproduction numbers assume only adjacency data is repaired, and a
  /// lost header then fails the query (~2-5% at 2% loss).
  bool repair_header = false;
};

/// Caller-owned reusable scratch for RunQuery (core/query_scratch.h).
struct QueryScratch;

/// One broadcast method: a server-built cycle plus the matching client
/// algorithm. Implementations: DijkstraOnAir, LandmarkOnAir, ArcFlagOnAir,
/// HiTiOnAir, SpqOnAir, EbSystem, NrSystem.
///
/// Thread-safety contract: after Build() returns, an AirSystem is
/// immutable — RunQuery and every accessor are const and touch no hidden
/// mutable state (no caches, no scratch members, no const_cast, no
/// function-local statics). Any number of threads may therefore call
/// RunQuery concurrently on one instance against a shared
/// broadcast::BroadcastChannel (itself a pure function of (seed,
/// position) — see channel.h). Each call keeps all client state — the
/// ClientSession, partial graph, decode buffers — on its own stack *or* in
/// the caller-owned QueryScratch passed in: scratch is explicit, never
/// hidden in the system, so the immutability guarantee is unchanged. A
/// scratch instance itself is single-threaded — callers that fan out give
/// each worker thread its own (sim::Simulator keeps one per worker and
/// reuses it across the thread's whole query slice), and results are
/// byte-identical whether scratch is shared across queries, fresh, or
/// absent. Implementers of new methods must preserve both guarantees.
class AirSystem {
 public:
  virtual ~AirSystem() = default;

  /// Short method name as used in the paper's tables ("DJ", "NR", "EB",
  /// "LD", "AF", "SPQ", "HiTi").
  virtual std::string_view name() const = 0;

  /// The broadcast cycle this method's server transmits.
  virtual const broadcast::BroadcastCycle& cycle() const = 0;

  /// Executes one client query against a channel carrying this system's
  /// cycle. Never throws; failures surface as !metrics.ok. `scratch`, when
  /// non-null, supplies every reusable client buffer (reset on entry), so
  /// a caller that keeps one scratch per thread runs the steady-state
  /// query path without allocating; null falls back to throwaway locals.
  virtual device::QueryMetrics RunQuery(
      const broadcast::BroadcastChannel& channel, const AirQuery& query,
      const ClientOptions& options = {},
      QueryScratch* scratch = nullptr) const = 0;

  /// Server-side pre-computation wall time in seconds (Table 3).
  virtual double precompute_seconds() const { return 0.0; }
};

/// Absolute tune-in position for a query phase on this system's cycle.
/// Phases are nominally in [0, 1); an inclusive 1.0 (or floating-point
/// round-up) is clamped to the last packet instead of indexing one past
/// the cycle end.
inline uint64_t TuneInPosition(const broadcast::BroadcastCycle& cycle,
                               double phase) {
  const uint64_t total = cycle.total_packets();
  if (total == 0) return 0;
  const auto pos = static_cast<uint64_t>(phase * static_cast<double>(total));
  return pos >= total ? total - 1 : pos;
}

/// Where a query's client session starts on this system's timeline: the
/// absolute arrival position when the query carries one (shared-station
/// model), else the phase-relative tune-in (private-replay model). Every
/// RunQuery implementation opens its session here, so both engines drive
/// the same client code.
inline uint64_t StartPosition(const broadcast::BroadcastCycle& cycle,
                              const AirQuery& query) {
  return query.arrival_pos != kNoArrivalPos
             ? query.arrival_pos
             : TuneInPosition(cycle, query.tune_phase);
}

/// Channel-aware StartPosition: phase-relative tune-ins map onto the
/// channel's *session* timeline — the macro cycle when a broadcast-disk
/// schedule is on, the flat cycle otherwise (where it reduces to the cycle
/// overload exactly). RunQuery implementations use this form so a private
/// replay spreads its phases over the whole transmitted pattern.
inline uint64_t StartPosition(const broadcast::BroadcastChannel& channel,
                              const AirQuery& query) {
  if (query.arrival_pos != kNoArrivalPos) return query.arrival_pos;
  const uint64_t total = channel.session_cycle_packets();
  if (total == 0) return 0;
  const auto pos =
      static_cast<uint64_t>(query.tune_phase * static_cast<double>(total));
  return pos >= total ? total - 1 : pos;
}

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_AIR_SYSTEM_H_
