#include "core/spq_on_air.h"

#include <bit>
#include <chrono>
#include <optional>

#include "common/byte_io.h"
#include "core/cycle_common.h"
#include "core/full_cycle.h"
#include "core/query_scratch.h"
#include "device/memory_tracker.h"

namespace airindex::core {
namespace {

constexpr uint32_t kHeaderSegment = 0;
constexpr uint32_t kTreesPerChunk = 64;
constexpr uint16_t kNoColorU16 = 0xFFFF;

/// Pre-order, self-delimiting cell encoding: tag 0 = leaf (color:u16
/// follows), tag 1 = internal (the 4 child subtrees follow).
void EncodeCell(const algo::SpqIndex::Tree& tree, int32_t cell,
                std::vector<uint8_t>* out) {
  const auto& node = tree.nodes[cell];
  if (node.is_leaf()) {
    out->push_back(0);
    const uint16_t color = node.color == algo::SpqIndex::QtNode::kNoColor
                               ? kNoColorU16
                               : static_cast<uint16_t>(node.color);
    PutU16(out, color);
    return;
  }
  out->push_back(1);
  for (int q = 0; q < 4; ++q) EncodeCell(tree, node.child[q], out);
}

void EncodeTree(const algo::SpqIndex::Tree& tree, std::vector<uint8_t>* out) {
  EncodeCell(tree, 0, out);
}

/// Recursive decoder; returns the new cell's index or -1 on truncation.
int32_t DecodeCellImpl(const std::vector<uint8_t>& buf, size_t* pos,
                       algo::SpqIndex::Tree* tree) {
  if (*pos >= buf.size()) return -1;
  const uint8_t tag = buf[(*pos)++];
  const auto idx = static_cast<int32_t>(tree->nodes.size());
  tree->nodes.emplace_back();
  if (tag == 0) {
    if (*pos + 2 > buf.size()) return -1;
    const uint16_t color = GetU16(buf.data() + *pos);
    *pos += 2;
    tree->nodes[idx].color = color == kNoColorU16
                                 ? algo::SpqIndex::QtNode::kNoColor
                                 : color;
    return idx;
  }
  for (int q = 0; q < 4; ++q) {
    const int32_t child = DecodeCellImpl(buf, pos, tree);
    if (child < 0) return -1;
    tree->nodes[idx].child[q] = child;
  }
  return idx;
}

}  // namespace

Result<std::unique_ptr<SpqOnAir>> SpqOnAir::Build(const graph::Graph& g,
                                                  const BuildConfig& config) {
  auto sys = std::unique_ptr<SpqOnAir>(new SpqOnAir());
  sys->encoding_ = config.encoding;
  sys->num_nodes_ = static_cast<uint32_t>(g.num_nodes());

  const auto start = std::chrono::steady_clock::now();
  AIRINDEX_ASSIGN_OR_RETURN(auto idx, algo::SpqIndex::Build(g));
  sys->index_ = std::make_unique<algo::SpqIndex>(std::move(idx));
  sys->precompute_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  broadcast::CycleBuilder builder;
  AppendNetworkSegments(g, &builder, kNetworkChunkNodes, config.encoding);

  {
    broadcast::Segment seg;
    seg.type = broadcast::SegmentType::kAuxData;
    seg.id = kHeaderSegment;
    PutU64(&seg.payload, std::bit_cast<uint64_t>(sys->index_->root_min_x()));
    PutU64(&seg.payload, std::bit_cast<uint64_t>(sys->index_->root_min_y()));
    PutU64(&seg.payload, std::bit_cast<uint64_t>(sys->index_->root_size()));
    PutU32(&seg.payload, sys->num_nodes_);
    PutU32(&seg.payload, kTreesPerChunk);
    builder.Add(std::move(seg));
  }
  for (uint32_t first = 0; first < g.num_nodes(); first += kTreesPerChunk) {
    broadcast::Segment seg;
    seg.type = broadcast::SegmentType::kAuxData;
    seg.id = 1 + first / kTreesPerChunk;
    const uint32_t last =
        std::min<uint32_t>(first + kTreesPerChunk, sys->num_nodes_);
    for (uint32_t v = first; v < last; ++v) {
      EncodeTree(sys->index_->TreeOf(v), &seg.payload);
    }
    builder.Add(std::move(seg));
  }
  AIRINDEX_ASSIGN_OR_RETURN(sys->cycle_, std::move(builder).Finalize(
                                             /*require_index=*/false));
  return sys;
}

device::QueryMetrics SpqOnAir::RunQuery(
    const broadcast::BroadcastChannel& channel, const AirQuery& query,
    const ClientOptions& options, QueryScratch* scratch) const {
  device::QueryMetrics metrics;
  device::MemoryTracker memory(options.heap_bytes);
  broadcast::ClientSession session(&channel, StartPosition(channel, query));

  std::optional<QueryScratch> local_scratch;
  QueryScratch& s =
      scratch != nullptr ? *scratch : local_scratch.emplace();
  s.BeginQuery();

  // coords/trees are moved into the rebuilt Graph / SpqIndex below, so
  // they cannot be pooled; the edge list can.
  std::vector<graph::Point> coords(num_nodes_);
  std::vector<graph::EdgeTriplet>& edges = s.edges;
  std::vector<algo::SpqIndex::Tree> trees(num_nodes_);
  double root[3] = {0, 0, 1};
  bool header_ok = false;
  double cpu_ms = 0.0;
  s.session.BeginQueryStats();

  Status receive_status = ReceiveFullCycleCached(
      session, memory, &s.session,
      [](const broadcast::ReceivedSegment&) { return true; },
      [&](broadcast::ReceivedSegment& seg) {
        device::Stopwatch sw;
        if (seg.type == broadcast::SegmentType::kNetworkData) {
          const bool valid = MemoValidate(s.decode_cache, seg, [&] {
            return broadcast::ValidateNodeRecords(seg.payload, encoding_)
                .ok();
          });
          if (valid) {
            size_t added = 0;
            size_t record_count = 0;
            broadcast::NodeRecordCursor cursor(seg.payload, encoding_);
            while (cursor.Next(&s.record)) {
              ++record_count;
              coords[s.record.id] = s.record.coord;
              for (const auto& arc : s.record.arcs) {
                edges.push_back({s.record.id, arc.to, arc.weight});
                ++added;
              }
            }
            memory.Charge(added * 12 + record_count * 20);
          }
        } else if (seg.segment_id == kHeaderSegment) {
          if (seg.complete && seg.payload.size() >= 32) {
            root[0] = std::bit_cast<double>(GetU64(seg.payload.data()));
            root[1] = std::bit_cast<double>(GetU64(seg.payload.data() + 8));
            root[2] = std::bit_cast<double>(GetU64(seg.payload.data() + 16));
            header_ok = true;
          }
        } else {
          const uint32_t first = (seg.segment_id - 1) * kTreesPerChunk;
          size_t pos = 0;
          for (uint32_t v = first; v < num_nodes_ && pos < seg.payload.size();
               ++v) {
            algo::SpqIndex::Tree tree;
            if (DecodeCellImpl(seg.payload, &pos, &tree) < 0) break;
            memory.Charge(tree.nodes.size() *
                          sizeof(algo::SpqIndex::QtNode));
            trees[v] = std::move(tree);
          }
        }
        memory.Release(seg.payload.size());
        cpu_ms += sw.ElapsedMs();
      },
      options.max_repair_cycles, &s.full_cycle);

  device::Stopwatch sw;
  graph::Dist dist = graph::kInfDist;
  auto built = graph::Graph::Build(std::move(coords), edges);
  if (built.ok() && header_ok) {
    graph::Graph gr = std::move(built).value();
    memory.Charge(gr.MemoryBytes());
    algo::SpqIndex idx = algo::SpqIndex::FromParts(root[0], root[1], root[2],
                                                   std::move(trees));
    graph::Path path = idx.Query(gr, query.source, query.target);
    dist = path.dist;
  }
  cpu_ms += sw.ElapsedMs();

  metrics.tuning_packets = session.tuned_packets();
  metrics.latency_packets = session.latency_packets();
  metrics.wait_packets = session.wait_packets();
  metrics.corrupted_packets = session.corrupted_packets();
  metrics.fec_recovered = session.fec_recovered();
  metrics.wait_slots = session.wait_slots();
  metrics.latency_slots = session.latency_slots();
  metrics.peak_memory_bytes = memory.peak();
  metrics.memory_exceeded = memory.exceeded();
  metrics.cpu_ms = cpu_ms;
  metrics.cache_hits = s.session.query_hits();
  metrics.warm = metrics.cache_hits > 0;
  metrics.distance = dist;
  metrics.ok = receive_status.ok() && dist != graph::kInfDist;
  return metrics;
}

}  // namespace airindex::core
