#ifndef AIRINDEX_CORE_SPQ_ON_AIR_H_
#define AIRINDEX_CORE_SPQ_ON_AIR_H_

#include <memory>

#include "algo/spq.h"
#include "common/result.h"
#include "core/air_system.h"
#include "core/cycle_common.h"
#include "graph/graph.h"

namespace airindex::core {

/// Broadcast adaptation of the shortest-path quadtree (§3.2): the cycle
/// carries the network data plus every node's coloured quadtree, serialized
/// pre-order. Like HiTi, SPQ's extra information dwarfs the network itself
/// (Table 1), ruling it out on memory-limited devices; the paper reports
/// only its cycle length. The client here is a faithful full-cycle
/// implementation used at test scales.
class SpqOnAir : public AirSystem {
 public:
  static Result<std::unique_ptr<SpqOnAir>> Build(
      const graph::Graph& g, const BuildConfig& config = {});

  std::string_view name() const override { return "SPQ"; }
  const broadcast::BroadcastCycle& cycle() const override { return cycle_; }
  device::QueryMetrics RunQuery(const broadcast::BroadcastChannel& channel,
                                const AirQuery& query,
                                const ClientOptions& options = {},
                                QueryScratch* scratch =
                                    nullptr) const override;
  double precompute_seconds() const override { return precompute_seconds_; }

  const algo::SpqIndex& index() const { return *index_; }

 private:
  SpqOnAir() = default;

  broadcast::BroadcastCycle cycle_;
  std::unique_ptr<algo::SpqIndex> index_;
  broadcast::CycleEncoding encoding_ = broadcast::CycleEncoding::kLegacy;
  uint32_t num_nodes_ = 0;
  double precompute_seconds_ = 0.0;
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_SPQ_ON_AIR_H_
