#include "core/partial_graph.h"

#include <algorithm>

namespace airindex::core {

void PartialGraph::Reset() {
  ++generation_;
  if (generation_ == 0) {  // stamp wrap: hard-reset once
    std::fill(node_gen_.begin(), node_gen_.end(), 0);
    generation_ = 1;
  }
  for (auto& chunk : chunks_) chunk.clear();  // keeps each reservation
  active_chunk_ = 0;
  known_count_ = 0;
  arc_count_ = 0;
}

std::vector<graph::Graph::Arc>& PartialGraph::ChunkWithRoom(size_t need) {
  while (active_chunk_ < chunks_.size()) {
    auto& chunk = chunks_[active_chunk_];
    if (chunk.capacity() - chunk.size() >= need) return chunk;
    ++active_chunk_;
  }
  chunks_.emplace_back().reserve(std::max(kArcChunk, need));
  return chunks_.back();
}

void PartialGraph::AddRecord(const broadcast::NodeRecord& rec) {
  if (rec.id >= entries_.size()) {
    entries_.resize(rec.id + 1);
    coords_.resize(rec.id + 1);
    node_gen_.resize(rec.id + 1, 0);
  }
  if (node_gen_[rec.id] == generation_) return;
  node_gen_[rec.id] = generation_;
  ++known_count_;
  coords_[rec.id] = rec.coord;

  NodeEntry& e = entries_[rec.id];
  if (rec.arcs.empty()) {
    e = NodeEntry{};
  } else {
    auto& chunk = ChunkWithRoom(rec.arcs.size());
    e.chunk = static_cast<uint32_t>(active_chunk_);
    e.offset = static_cast<uint32_t>(chunk.size());
    e.count = static_cast<uint32_t>(rec.arcs.size());
    chunk.insert(chunk.end(), rec.arcs.begin(), rec.arcs.end());
  }
  arc_count_ += rec.arcs.size();
}

}  // namespace airindex::core
