#include "core/partial_graph.h"

namespace airindex::core {

void PartialGraph::AddRecord(const broadcast::NodeRecord& rec) {
  if (rec.id >= adj_.size()) {
    adj_.resize(rec.id + 1);
    coords_.resize(rec.id + 1);
    known_.resize(rec.id + 1, 0);
  }
  if (known_[rec.id]) return;
  known_[rec.id] = 1;
  ++known_count_;
  coords_[rec.id] = rec.coord;
  adj_[rec.id] = rec.arcs;
  arc_count_ += rec.arcs.size();
}

}  // namespace airindex::core
