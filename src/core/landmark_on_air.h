#ifndef AIRINDEX_CORE_LANDMARK_ON_AIR_H_
#define AIRINDEX_CORE_LANDMARK_ON_AIR_H_

#include <memory>

#include "algo/landmark.h"
#include "common/result.h"
#include "core/air_system.h"
#include "core/cycle_common.h"
#include "graph/graph.h"

namespace airindex::core {

/// Broadcast adaptation of the Landmark (ALT) method (§3.2): the cycle
/// carries the network data plus every node's distance vector (to/from each
/// landmark). The client has to listen to the whole cycle and then runs A*
/// guided by the ALT bounds.
///
/// Packet-loss fallback (§6.2): adjacency data is repaired on later cycles,
/// but lost distance-vector packets are *not* — the affected nodes simply
/// contribute a zero lower bound, degrading A* toward Dijkstra while
/// remaining correct.
class LandmarkOnAir : public AirSystem {
 public:
  static Result<std::unique_ptr<LandmarkOnAir>> Build(
      const graph::Graph& g, uint32_t num_landmarks, uint64_t seed = 17,
      const BuildConfig& config = {});

  std::string_view name() const override { return "LD"; }
  const broadcast::BroadcastCycle& cycle() const override { return cycle_; }
  device::QueryMetrics RunQuery(const broadcast::BroadcastChannel& channel,
                                const AirQuery& query,
                                const ClientOptions& options = {},
                                QueryScratch* scratch =
                                    nullptr) const override;
  double precompute_seconds() const override { return precompute_seconds_; }

  const algo::LandmarkIndex& index() const { return index_; }

 private:
  LandmarkOnAir() : index_(algo::LandmarkIndex::FromVectors({}, {}, {})) {}

  broadcast::BroadcastCycle cycle_;
  algo::LandmarkIndex index_;
  broadcast::CycleEncoding encoding_ = broadcast::CycleEncoding::kLegacy;
  uint32_t num_nodes_ = 0;
  double precompute_seconds_ = 0.0;
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_LANDMARK_ON_AIR_H_
