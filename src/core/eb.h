#ifndef AIRINDEX_CORE_EB_H_
#define AIRINDEX_CORE_EB_H_

#include <memory>

#include "common/result.h"
#include "core/air_system.h"
#include "core/border_precompute.h"
#include "core/cycle_common.h"
#include "core/eb_index.h"
#include "graph/graph.h"

namespace airindex::core {

/// The Elliptic Boundary method (§4), the paper's first contribution.
///
/// Server: kd-tree partitioning, border-pair pre-computation, a concise
/// global index (kd splits + per-region-pair min/max border distances +
/// region data offsets) replicated m times per the (1,m) scheme with copies
/// forced onto region boundaries, and per-region data split into a
/// cross-border and a local segment (§4.1).
///
/// Client (§4.2, Algorithm 1): reads the next index copy, derives the upper
/// bound UB = A[Rs][Rt].max, receives exactly the regions R with
/// mindist(Rs,R) + mindist(R,Rt) <= UB (cross-border segments only, except
/// for Rs and Rt), and runs Dijkstra on their union. Optionally collapses
/// regions into super-edges as they arrive (§6.1, ClientOptions::
/// memory_bound). Lost index packets are re-fetched from the next copy,
/// lost region packets from the next cycle (§6.2).
class EbSystem : public AirSystem {
 public:
  /// `num_regions` must be a power of two (paper default for Germany: 32).
  static Result<std::unique_ptr<EbSystem>> Build(const graph::Graph& g,
                                                 uint32_t num_regions,
                                                 const BuildConfig& config = {});

  /// Builds from an existing pre-computation (lets NR/EB share one, as the
  /// paper notes their pre-computation is identical).
  static Result<std::unique_ptr<EbSystem>> BuildFromPrecompute(
      const graph::Graph& g, const BorderPrecompute& pre,
      const BuildConfig& config = {});

  std::string_view name() const override { return "EB"; }
  const broadcast::BroadcastCycle& cycle() const override { return cycle_; }
  device::QueryMetrics RunQuery(const broadcast::BroadcastChannel& channel,
                                const AirQuery& query,
                                const ClientOptions& options = {},
                                QueryScratch* scratch =
                                    nullptr) const override;
  double precompute_seconds() const override { return precompute_seconds_; }

  /// The replication factor chosen by the (1,m) analysis.
  uint32_t interleaving_m() const { return interleaving_m_; }
  const EbIndex& index() const { return index_; }

 private:
  EbSystem() = default;

  broadcast::BroadcastCycle cycle_;
  EbIndex index_;
  broadcast::CycleEncoding encoding_ = broadcast::CycleEncoding::kLegacy;
  uint32_t interleaving_m_ = 1;
  double precompute_seconds_ = 0.0;
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_EB_H_
