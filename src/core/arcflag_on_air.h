#ifndef AIRINDEX_CORE_ARCFLAG_ON_AIR_H_
#define AIRINDEX_CORE_ARCFLAG_ON_AIR_H_

#include <memory>

#include "algo/arc_flags.h"
#include "common/result.h"
#include "core/air_system.h"
#include "core/cycle_common.h"
#include "graph/graph.h"
#include "partition/kd_tree.h"

namespace airindex::core {

/// Broadcast adaptation of ArcFlag (§3.2): the cycle carries the network
/// data plus one flag vector per arc (a bit per kd-tree region), kept in
/// separate segments from the adjacency so a single lost packet cannot take
/// out both (§6.2). The client listens to the whole cycle and then runs the
/// flag-restricted Dijkstra.
///
/// Packet-loss fallback (§6.2): lost flag packets make the affected arcs'
/// vectors all-ones (never pruned — correct, just slower); lost adjacency is
/// repaired on later cycles.
class ArcFlagOnAir : public AirSystem {
 public:
  static Result<std::unique_ptr<ArcFlagOnAir>> Build(
      const graph::Graph& g, uint32_t num_regions,
      const BuildConfig& config = {});

  std::string_view name() const override { return "AF"; }
  const broadcast::BroadcastCycle& cycle() const override { return cycle_; }
  device::QueryMetrics RunQuery(const broadcast::BroadcastChannel& channel,
                                const AirQuery& query,
                                const ClientOptions& options = {},
                                QueryScratch* scratch =
                                    nullptr) const override;
  double precompute_seconds() const override { return precompute_seconds_; }

  const algo::ArcFlagIndex& index() const { return index_; }

 private:
  ArcFlagOnAir()
      : index_(algo::ArcFlagIndex::MakeEmpty(0, 1, {})) {}

  broadcast::BroadcastCycle cycle_;
  algo::ArcFlagIndex index_;
  std::vector<double> splits_;
  broadcast::CycleEncoding encoding_ = broadcast::CycleEncoding::kLegacy;
  uint32_t num_regions_ = 0;
  uint32_t num_nodes_ = 0;
  uint32_t num_arcs_ = 0;
  double precompute_seconds_ = 0.0;
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_ARCFLAG_ON_AIR_H_
