#include "core/full_cycle.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace airindex::core {

using broadcast::ReceivedSegment;
using broadcast::SegmentType;

Status ReceiveFullCycle(
    broadcast::ClientSession& session, device::MemoryTracker& memory,
    const std::function<bool(SegmentType)>& must_repair,
    const std::function<void(ReceivedSegment&&)>& on_segment,
    int max_repair_cycles) {
  const broadcast::BroadcastCycle& cycle = session.cycle();
  const size_t num_segments = cycle.num_segments();

  std::vector<ReceivedSegment> partial(num_segments);
  std::vector<uint32_t> received_packets(num_segments, 0);
  std::vector<uint8_t> delivered(num_segments, 0);

  auto ensure_buffer = [&](uint32_t si) {
    ReceivedSegment& seg = partial[si];
    if (!seg.payload.empty() || !seg.packet_ok.empty()) return;
    const broadcast::Segment& src = cycle.segment(si);
    seg.segment_index = si;
    seg.type = src.type;
    seg.segment_id = src.id;
    seg.payload.assign(src.payload.size(), 0);
    seg.packet_ok.assign(src.PacketCount(), false);
  };

  auto ingest = [&](const broadcast::PacketView& view) {
    const uint32_t si = view.segment_index;
    ensure_buffer(si);
    ReceivedSegment& seg = partial[si];
    if (seg.packet_ok[view.seq]) return;
    seg.packet_ok[view.seq] = true;
    ++received_packets[si];
    memory.Charge(view.chunk.size());
    std::memcpy(seg.payload.data() +
                    static_cast<size_t>(view.seq) * broadcast::kPayloadSize,
                view.chunk.data(), view.chunk.size());
  };

  auto try_deliver = [&](uint32_t si, bool force) {
    if (delivered[si]) return;
    ensure_buffer(si);
    ReceivedSegment& seg = partial[si];
    seg.complete = received_packets[si] == seg.packet_ok.size();
    if (!seg.complete && !force) return;
    delivered[si] = 1;
    on_segment(std::move(seg));
    seg = ReceivedSegment{};
  };

  // One pass over the whole cycle.
  const uint32_t total = cycle.total_packets();
  for (uint32_t i = 0; i < total; ++i) {
    auto view = session.ReceiveNext();
    if (!view.has_value()) continue;
    ingest(*view);
    try_deliver(view->segment_index, /*force=*/false);
  }

  // Repair passes for segments that must be complete.
  for (int pass = 0; pass < max_repair_cycles; ++pass) {
    bool anything_missing = false;
    for (uint32_t si = 0; si < num_segments; ++si) {
      if (delivered[si]) continue;
      ensure_buffer(si);
      if (!must_repair(partial[si].type)) continue;
      anything_missing = true;
      for (uint32_t p = 0; p < partial[si].packet_ok.size(); ++p) {
        if (partial[si].packet_ok[p]) continue;
        session.SleepUntilCyclePos((cycle.SegmentStart(si) + p) % total);
        auto view = session.ReceiveNext();
        if (view.has_value()) ingest(*view);
      }
      try_deliver(si, /*force=*/false);
    }
    if (!anything_missing) break;
  }

  // Deliver what remains (incomplete non-repairable segments, or repairable
  // ones that exhausted the repair budget).
  Status status = Status::OK();
  for (uint32_t si = 0; si < num_segments; ++si) {
    if (delivered[si]) continue;
    ensure_buffer(si);
    if (must_repair(partial[si].type) && !partial[si].complete &&
        received_packets[si] != partial[si].packet_ok.size()) {
      status = Status::DataLoss(
          "segment still incomplete after repair budget");
    }
    try_deliver(si, /*force=*/true);
  }
  return status;
}

}  // namespace airindex::core
