#include "core/session_cache.h"

namespace airindex::core {

void SessionCache::BeginSession(size_t budget_bytes) {
  budget_bytes_ = budget_bytes;
  bound_ = false;
  ClearContent();
  query_hits_ = 0;
}

bool SessionCache::Ready(const broadcast::BroadcastChannel& channel) {
  if (budget_bytes_ == 0) return false;
  const broadcast::BroadcastCycle* cycle = &channel.cycle();
  const uint64_t version = channel.cycle_version();
  if (!bound_ || cycle != cycle_ || version != cycle_version_) {
    // A different cycle object or a bumped cycle_version means the world
    // this cache describes is gone — drop everything rather than serve a
    // stale segment.
    ClearContent();
    cycle_ = cycle;
    cycle_version_ = version;
    bound_ = true;
  }
  return true;
}

void SessionCache::ClearContent() {
  lru_.clear();
  map_.clear();
  used_bytes_ = 0;
  has_index_ = false;
  index_start_ = 0;
}

const broadcast::ReceivedSegment* SessionCache::Find(uint32_t segment_start) {
  auto it = map_.find(segment_start);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return &it->second->seg;
}

bool SessionCache::Load(uint32_t segment_start,
                        broadcast::ReceivedSegment* out) {
  const broadcast::ReceivedSegment* seg = Find(segment_start);
  if (seg == nullptr) return false;
  *out = *seg;
  return true;
}

void SessionCache::EvictToFit(size_t incoming_bytes) {
  while (used_bytes_ + incoming_bytes > budget_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_bytes_ -= victim.seg.payload.size();
    map_.erase(victim.start);
    lru_.pop_back();
  }
}

void SessionCache::Store(uint32_t segment_start,
                         const broadcast::ReceivedSegment& seg) {
  if (!seg.complete) return;
  const size_t bytes = seg.payload.size();
  if (bytes > budget_bytes_) return;  // would evict the whole session
  auto it = map_.find(segment_start);
  if (it != map_.end()) {
    used_bytes_ -= it->second->seg.payload.size();
    EvictToFit(bytes);
    it->second->seg = seg;
    used_bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  EvictToFit(bytes);
  lru_.push_front(Entry{segment_start, seg});
  map_.emplace(segment_start, lru_.begin());
  used_bytes_ += bytes;
}

void SessionCache::StoreIndex(uint32_t segment_start,
                              const broadcast::ReceivedSegment& seg) {
  index_seg_ = seg;
  index_start_ = segment_start;
  has_index_ = true;
}

bool SessionCache::LoadIndex(broadcast::ReceivedSegment* out) const {
  if (!has_index_) return false;
  *out = index_seg_;
  return true;
}

}  // namespace airindex::core
