#ifndef AIRINDEX_CORE_REGION_DATA_H_
#define AIRINDEX_CORE_REGION_DATA_H_

#include <cstdint>
#include <vector>

#include "broadcast/serialization.h"
#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"

namespace airindex::core {

/// Wire format of one region's data segment (EB cross-border / local
/// segments, NR region segments):
///
///   RegionPayload := border_count:u16 { border_id:u32 }^border_count
///                    NodeRecord*
///
/// The border list lets clients identify the region's border nodes exactly
/// (needed by the §6.1 super-edge processing) without guessing from
/// adjacency; local segments carry border_count = 0.
struct RegionData {
  std::vector<graph::NodeId> border;
  std::vector<broadcast::NodeRecord> records;
};

/// Encodes `nodes`' records (ascending as given) preceded by the border
/// list. The border header is always fixed-width; `encoding` selects the
/// record-area format (a kCompact record area carries its version byte).
std::vector<uint8_t> EncodeRegionData(
    const graph::Graph& g, const std::vector<graph::NodeId>& border,
    const std::vector<graph::NodeId>& nodes,
    broadcast::CycleEncoding encoding = broadcast::CycleEncoding::kLegacy);

/// Decodes a region payload. Fails on truncation.
Result<RegionData> DecodeRegionData(
    const std::vector<uint8_t>& payload,
    broadcast::CycleEncoding encoding = broadcast::CycleEncoding::kLegacy);

/// Checks a region payload is well-formed (the exact checks
/// DecodeRegionData applies) without materializing it.
Status ValidateRegionData(
    const std::vector<uint8_t>& payload,
    broadcast::CycleEncoding encoding = broadcast::CycleEncoding::kLegacy);

/// Zero-copy view over a *validated* region payload: the border list read
/// in place and a streaming cursor over the node records. The allocation-
/// free ingest path of the EB/NR clients validates first, then streams
/// records straight into the pooled PartialGraph.
class RegionDataView {
 public:
  /// `payload` must outlive the view and have passed ValidateRegionData
  /// with the same `encoding`.
  explicit RegionDataView(
      const std::vector<uint8_t>& payload,
      broadcast::CycleEncoding encoding = broadcast::CycleEncoding::kLegacy);

  size_t border_count() const { return border_count_; }
  graph::NodeId BorderAt(size_t i) const;

  /// Cursor over the record area (fresh cursor per call).
  broadcast::NodeRecordCursor records() const;

 private:
  const uint8_t* data_;
  size_t size_;
  broadcast::CycleEncoding encoding_;
  size_t border_count_;
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_REGION_DATA_H_
