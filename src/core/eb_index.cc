#include "core/eb_index.h"

#include <bit>

#include "common/byte_io.h"

namespace airindex::core {
namespace {

uint32_t SaturateDist(graph::Dist d) {
  if (d == graph::kInfDist) return EbIndex::kInfU32;
  return d >= EbIndex::kInfU32 ? EbIndex::kInfU32 - 1
                               : static_cast<uint32_t>(d);
}

graph::Dist Unsaturate(uint32_t v) {
  return v == EbIndex::kInfU32 ? graph::kInfDist : v;
}

/// Number of blocks per side of the matrix block grid.
uint32_t BlocksPerSide(uint32_t regions) {
  return (regions + EbIndex::kBlockW - 1) / EbIndex::kBlockW;
}

uint32_t BlockExtent(uint32_t regions, uint32_t block) {
  const uint32_t begin = block * EbIndex::kBlockW;
  const uint32_t end =
      std::min(begin + EbIndex::kBlockW, regions);
  return end - begin;
}

}  // namespace

size_t EbIndex::CellByteOffset(uint32_t num_regions, graph::RegionId i,
                               graph::RegionId j) {
  const uint32_t nb = BlocksPerSide(num_regions);
  const uint32_t bi = i / kBlockW;
  const uint32_t bj = j / kBlockW;

  // Cells in the blocks preceding (bi, bj) in row-major block order.
  size_t cells_before = 0;
  // Full block rows above bi.
  for (uint32_t r = 0; r < bi; ++r) {
    cells_before +=
        static_cast<size_t>(BlockExtent(num_regions, r)) * num_regions;
  }
  // Blocks to the left within block row bi.
  for (uint32_t c = 0; c < bj; ++c) {
    cells_before += static_cast<size_t>(BlockExtent(num_regions, bi)) *
                    BlockExtent(num_regions, c);
  }
  (void)nb;
  // Within the block, row-major.
  const uint32_t li = i % kBlockW;
  const uint32_t lj = j % kBlockW;
  cells_before +=
      static_cast<size_t>(li) * BlockExtent(num_regions, bj) + lj;
  return HeaderBytes(num_regions) + cells_before * 8;
}

size_t EbIndex::EncodedBytes(uint32_t num_regions, uint32_t num_copies) {
  return HeaderBytes(num_regions) + MatrixBytes(num_regions) +
         static_cast<size_t>(num_regions) * 16 + 2 +
         static_cast<size_t>(num_copies) * 4;
}

std::vector<uint8_t> EbIndex::Encode() const {
  std::vector<uint8_t> out;
  out.reserve(EncodedBytes(num_regions,
                           static_cast<uint32_t>(copy_starts.size())));
  PutU16(&out, static_cast<uint16_t>(num_regions));
  PutU32(&out, num_nodes);
  for (double s : splits) PutU64(&out, std::bit_cast<uint64_t>(s));

  // Matrix in block order: emit placeholder then poke cells by offset, which
  // keeps one layout definition (CellByteOffset) authoritative.
  const size_t matrix_begin = out.size();
  out.resize(matrix_begin + MatrixBytes(num_regions), 0);
  for (graph::RegionId i = 0; i < num_regions; ++i) {
    for (graph::RegionId j = 0; j < num_regions; ++j) {
      const size_t off = CellByteOffset(num_regions, i, j);
      const uint32_t mn =
          SaturateDist(min_rr[static_cast<size_t>(i) * num_regions + j]);
      const uint32_t mx =
          SaturateDist(max_rr[static_cast<size_t>(i) * num_regions + j]);
      for (int b = 0; b < 4; ++b) {
        out[off + b] = static_cast<uint8_t>(mn >> (8 * b));
        out[off + 4 + b] = static_cast<uint8_t>(mx >> (8 * b));
      }
    }
  }

  for (const RegionDir& d : dir) {
    PutU32(&out, d.cross_start);
    PutU32(&out, d.cross_packets);
    PutU32(&out, d.local_start);
    PutU32(&out, d.local_packets);
  }
  PutU16(&out, static_cast<uint16_t>(copy_starts.size()));
  for (uint32_t c : copy_starts) PutU32(&out, c);
  return out;
}

Status EbIndex::Decode(const std::vector<uint8_t>& payload, EbIndex* out) {
  if (payload.size() < 6) return Status::DataLoss("truncated EB index");
  out->num_regions = GetU16(payload.data());
  out->num_nodes = GetU32(payload.data() + 2);
  if (out->num_regions < 2 ||
      payload.size() < EncodedBytes(out->num_regions, 0)) {
    return Status::DataLoss("EB index payload size mismatch");
  }
  ByteReader reader(payload);
  reader.Skip(6);
  out->splits.clear();
  out->splits.reserve(out->num_regions - 1);
  for (uint32_t i = 0; i + 1 < out->num_regions; ++i) {
    out->splits.push_back(std::bit_cast<double>(reader.ReadU64()));
  }

  const uint32_t R = out->num_regions;
  out->min_rr.resize(static_cast<size_t>(R) * R);
  out->max_rr.resize(static_cast<size_t>(R) * R);
  for (graph::RegionId i = 0; i < R; ++i) {
    for (graph::RegionId j = 0; j < R; ++j) {
      const size_t off = CellByteOffset(R, i, j);
      out->min_rr[static_cast<size_t>(i) * R + j] =
          Unsaturate(GetU32(payload.data() + off));
      out->max_rr[static_cast<size_t>(i) * R + j] =
          Unsaturate(GetU32(payload.data() + off + 4));
    }
  }

  ByteReader dir_reader(
      payload.data() + HeaderBytes(R) + MatrixBytes(R),
      payload.size() - HeaderBytes(R) - MatrixBytes(R));
  out->dir.resize(R);
  for (auto& d : out->dir) {
    d.cross_start = dir_reader.ReadU32();
    d.cross_packets = dir_reader.ReadU32();
    d.local_start = dir_reader.ReadU32();
    d.local_packets = dir_reader.ReadU32();
  }
  out->copy_starts.clear();
  if (dir_reader.remaining() >= 2) {
    const uint16_t copies = dir_reader.ReadU16();
    if (dir_reader.remaining() >= static_cast<size_t>(copies) * 4) {
      out->copy_starts.reserve(copies);
      for (uint16_t i = 0; i < copies; ++i) {
        out->copy_starts.push_back(dir_reader.ReadU32());
      }
    }
  }
  return Status::OK();
}

Result<EbIndex> EbIndex::Decode(const std::vector<uint8_t>& payload) {
  EbIndex idx;
  AIRINDEX_RETURN_IF_ERROR(Decode(payload, &idx));
  return idx;
}

std::vector<std::pair<size_t, size_t>> EbIndex::NeededByteRanges(
    uint32_t num_regions, graph::RegionId rs, graph::RegionId rt) {
  std::vector<std::pair<size_t, size_t>> ranges;
  // Header + splits.
  ranges.emplace_back(0, HeaderBytes(num_regions));
  // Row rs and column rt of the matrix.
  for (graph::RegionId j = 0; j < num_regions; ++j) {
    const size_t off = CellByteOffset(num_regions, rs, j);
    ranges.emplace_back(off, off + 8);
  }
  for (graph::RegionId i = 0; i < num_regions; ++i) {
    const size_t off = CellByteOffset(num_regions, i, rt);
    ranges.emplace_back(off, off + 8);
  }
  // The whole directory and copy-start tail (the payload size is known to
  // the client from the segment length, so "to the end" is well-defined).
  const size_t dir_begin = HeaderBytes(num_regions) +
                           MatrixBytes(num_regions);
  ranges.emplace_back(dir_begin, SIZE_MAX);
  return ranges;
}

}  // namespace airindex::core
