#ifndef AIRINDEX_CORE_BORDER_PRECOMPUTE_H_
#define AIRINDEX_CORE_BORDER_PRECOMPUTE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "partition/partitioning.h"

namespace airindex::core {

/// The server-side pre-computation shared by EB and NR (§4.1, §5.1): one
/// Dijkstra per border node, restricted to border-node targets, yields
///  * min/max border-to-border distances per ordered region pair
///    (EB's array A),
///  * the set of regions traversed by any recorded border-pair shortest
///    path, per ordered region pair (NR's needed-region sets),
///  * the cross-border / local node classification (EB's §4.1 tuning-time
///    optimization).
///
/// The paper precomputes paths between border nodes of *different* regions;
/// we additionally include same-region border pairs, which defines the
/// diagonal of A and keeps both methods exact when source and destination
/// fall into the same region (see DESIGN.md).
struct BorderPrecompute {
  partition::Partitioning part;
  partition::BorderInfo borders;
  uint32_t num_regions = 0;

  /// Row-major R x R: min/max distance from any border node of R_i to any
  /// border node of R_j (kInfDist / 0 when either region has no border).
  std::vector<graph::Dist> min_rr;
  std::vector<graph::Dist> max_rr;

  /// Region-traversal bitsets: words_per_pair() little-endian 64-bit words
  /// per ordered region pair, bit k set iff some recorded shortest path
  /// between border(R_i) and border(R_j) passes through region k.
  std::vector<uint64_t> traversed;

  /// Per node: appears on at least one recorded border-pair shortest path
  /// (the rest are "local" nodes).
  std::vector<uint8_t> cross_border;

  /// Wall time of the pre-computation (Table 3).
  double seconds = 0.0;

  size_t words_per_pair() const { return (num_regions + 63) / 64; }

  graph::Dist MinDist(graph::RegionId i, graph::RegionId j) const {
    return min_rr[static_cast<size_t>(i) * num_regions + j];
  }
  graph::Dist MaxDist(graph::RegionId i, graph::RegionId j) const {
    return max_rr[static_cast<size_t>(i) * num_regions + j];
  }

  bool TraversesRegion(graph::RegionId i, graph::RegionId j,
                       graph::RegionId k) const {
    const size_t base =
        (static_cast<size_t>(i) * num_regions + j) * words_per_pair();
    return (traversed[base + k / 64] >> (k % 64)) & 1;
  }

  /// NR's needed-region set for the ordered pair (i, j): the traversal set
  /// plus both endpoint regions, ascending.
  std::vector<graph::RegionId> NeededRegions(graph::RegionId i,
                                             graph::RegionId j) const;

  /// Allocation-free variant: clears `*out` and fills it with the needed
  /// regions for (i, j), reusing the vector's capacity. Cycle construction
  /// calls this once per ordered region pair (R^2 times), so the fresh
  /// vector the value-returning overload allocates is measurable there.
  void NeededRegionsInto(graph::RegionId i, graph::RegionId j,
                         std::vector<graph::RegionId>* out) const;

  /// Bitset variant: writes words_per_pair() little-endian words into
  /// `words` — the traversal mask with bits i and j forced on. `words`
  /// must hold at least words_per_pair() entries.
  void NeededRegionsMask(graph::RegionId i, graph::RegionId j,
                         uint64_t* words) const;
};

/// Runs the pre-computation, work-stealing chunks of border-node sources
/// across up to `num_threads` workers (0 = hardware concurrency). All merge
/// steps are commutative (min/max/bitwise-or), so the result is
/// byte-identical for every thread count, including serial.
Result<BorderPrecompute> ComputeBorderPrecompute(
    const graph::Graph& g, partition::Partitioning part,
    unsigned num_threads = 0);

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_BORDER_PRECOMPUTE_H_
