#ifndef AIRINDEX_CORE_SUPER_EDGE_H_
#define AIRINDEX_CORE_SUPER_EDGE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/region_data.h"
#include "graph/types.h"

namespace airindex::core {

/// Memory-bound client processing (§6.1): instead of retaining every
/// received region, the client immediately collapses a region into
/// *super-edges* — shortest-path distances between the region's border
/// nodes, computed inside the region's received data — and keeps only those
/// plus the original arcs that cross region boundaries ("border edges").
/// The final search runs Dijkstra on the resulting overlay graph G'
/// (Fig. 8), whose size is a small fraction of the raw regions.
///
/// For the source/target regions the query endpoints are added to the
/// border-node set, exactly as the paper prescribes.
class SuperEdgeProcessor {
 public:
  SuperEdgeProcessor(graph::NodeId source, graph::NodeId target)
      : source_(source), target_(target) {}

  /// Ingests one region's received data; the caller may free the data
  /// afterwards. Runs |anchors| local Dijkstras within the region.
  void AddRegion(const RegionData& data);

  /// Shortest-path distance source -> target over G'. Exact (equals the
  /// full-graph distance) when the ingested regions cover the true path,
  /// which EB/NR pruning guarantees.
  graph::Dist Solve() const;

  /// Client memory held by the overlay (the paper's ~35% peak reduction
  /// comes from this replacing the raw region data).
  size_t MemoryBytes() const {
    return overlay_arc_count_ * 16 + overlay_.size() * 16;
  }

  size_t overlay_nodes() const { return overlay_.size(); }
  size_t overlay_arcs() const { return overlay_arc_count_; }

 private:
  void AddOverlayArc(graph::NodeId from, graph::NodeId to, graph::Dist d);

  graph::NodeId source_;
  graph::NodeId target_;
  /// G' adjacency: anchors (border nodes + endpoints) and crossing-arc
  /// heads, keyed by global node id.
  std::unordered_map<graph::NodeId,
                     std::vector<std::pair<graph::NodeId, graph::Dist>>>
      overlay_;
  size_t overlay_arc_count_ = 0;
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_SUPER_EDGE_H_
