#ifndef AIRINDEX_CORE_DECODED_SLOT_CACHE_H_
#define AIRINDEX_CORE_DECODED_SLOT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "broadcast/channel.h"

namespace airindex::core {

/// Station-wide memoization of segment *decode verdicts*: when N clients
/// co-listen to one shared station, every one of them CRC-validates and
/// structurally checks the identical bytes of the same cycle segment. The
/// bytes of a *complete* segment are a pure function of (station cycle,
/// cycle_version, segment index) — losses and corruption only ever produce
/// incomplete segments — so the validation verdict can be computed once
/// and shared. Listening and energy accounting stay per-client and
/// byte-identical; only the redundant CPU is shared (cpu_ms is the one
/// wall-clock metric, already excluded from determinism contracts).
///
/// One instance per (station, cycle_version); the event engine creates it
/// per RunSystem and hands every worker's QueryScratch a pointer.
/// Generation eviction: the engine constructs a fresh cache when the
/// station's cycle_version bumps, so stale verdicts die at the cycle
/// boundary rather than being invalidated entry by entry.
///
/// Thread-safe: lookups take a shared lock; a first-sight verdict is
/// computed outside any lock (validation is read-only over the caller's
/// buffers) and inserted under an exclusive lock. Racing inserters of the
/// same segment compute the same pure verdict, so last-write-wins is
/// harmless.
class DecodedSlotCache {
 public:
  explicit DecodedSlotCache(uint64_t cycle_version = 0)
      : cycle_version_(cycle_version) {}

  uint64_t cycle_version() const { return cycle_version_; }

  /// The memoized verdict for the complete segment at `segment_index`,
  /// computing it via `fn()` on first sight. Callers must only consult
  /// this for *complete* segments (per-client masks make incomplete ones
  /// client-specific).
  template <typename Fn>
  bool Validate(uint32_t segment_index, Fn&& fn) {
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      auto it = verdicts_.find(segment_index);
      if (it != verdicts_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    const bool verdict = fn();
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      verdicts_.emplace(segment_index, verdict);
    }
    return verdict;
  }

  /// Decodes shared so far (for engine-level reporting).
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  const uint64_t cycle_version_;
  std::shared_mutex mu_;
  std::unordered_map<uint32_t, bool> verdicts_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

/// Memoized validation of a received segment: complete segments route
/// through the shared cache (their bytes are cycle content, so the verdict
/// is shared); incomplete ones — and any client without a cache — validate
/// locally, the historical behaviour. The verdict is identical either way;
/// only the redundant CPU is saved.
template <typename Fn>
bool MemoValidate(DecodedSlotCache* cache,
                  const broadcast::ReceivedSegment& seg, Fn&& fn) {
  if (cache != nullptr && seg.complete) {
    return cache->Validate(seg.segment_index, fn);
  }
  return fn();
}

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_DECODED_SLOT_CACHE_H_
