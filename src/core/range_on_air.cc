#include "core/range_on_air.h"

#include <algorithm>
#include <deque>

#include "algo/dijkstra.h"
#include "common/byte_io.h"
#include "core/partial_graph.h"
#include "core/region_data.h"
#include "core/repair.h"
#include "device/memory_tracker.h"
#include "partition/kd_tree.h"

namespace airindex::core {

RangeResult RunRangeQuery(const EbSystem& system,
                          const broadcast::BroadcastChannel& channel,
                          const RangeQuery& query,
                          const ClientOptions& options) {
  RangeResult result;
  device::MemoryTracker memory(options.heap_bytes);
  const broadcast::BroadcastCycle& cycle = system.cycle();
  broadcast::ClientSession session(&channel,
                                   TuneInPosition(cycle, query.tune_phase));
  const uint32_t total = cycle.total_packets();
  double cpu_ms = 0.0;

  // Receive the next index copy (same protocol as the shortest-path
  // client; simple whole-copy repair is enough here).
  uint32_t index_start = 0;
  broadcast::ReceivedSegment index_seg;
  {
    bool found = false;
    for (int attempts = 0; attempts < 64 && !found; ++attempts) {
      auto view = session.ReceiveNext();
      if (!view.has_value()) continue;
      found = true;
      if (view->next_index_offset == 0 && view->seq == 0) {
        index_start = view->cycle_pos;
        index_seg = broadcast::CompleteSegmentFrom(session, *view);
      } else {
        index_start = broadcast::NextIndexTarget(session, *view);
        index_seg = ReceiveSegmentAt(session, index_start);
      }
    }
    if (!found) return result;
  }
  if (!index_seg.complete &&
      !RepairSegment(session, index_start, &index_seg,
                     options.max_repair_cycles)) {
    return result;
  }
  memory.Charge(index_seg.payload.size());

  device::Stopwatch sw_prune;
  auto index_or = EbIndex::Decode(index_seg.payload);
  if (!index_or.ok()) return result;
  const EbIndex index = std::move(index_or).value();
  auto kd = partition::KdTreePartitioner::FromSplits(index.splits);
  if (!kd.ok()) return result;
  const graph::RegionId rs = kd->RegionOf(query.source_coord);
  const uint32_t R = index.num_regions;

  // Pruning: regions whose minimum border distance from Rs exceeds the
  // radius can neither contain results nor carry a qualifying path.
  std::vector<graph::RegionId> needed;
  for (graph::RegionId r = 0; r < R; ++r) {
    if (r == rs || index.MinDist(rs, r) <= query.radius) needed.push_back(r);
  }
  cpu_ms += sw_prune.ElapsedMs();

  // Receive the needed regions (cross + local: results may be any node)
  // in broadcast order; batch-repair losses.
  std::sort(needed.begin(), needed.end(),
            [&](graph::RegionId a, graph::RegionId b) {
              const uint32_t cur = session.cycle_pos();
              auto ahead = [&](graph::RegionId r) {
                const uint32_t s = index.dir[r].cross_start;
                return s >= cur ? s - cur : s + total - cur;
              };
              return ahead(a) < ahead(b);
            });

  PartialGraph pg;
  std::deque<broadcast::ReceivedSegment> stash;
  std::vector<PendingRepair> pending;
  auto ingest = [&](broadcast::ReceivedSegment&& seg) {
    device::Stopwatch sw;
    auto data = DecodeRegionData(seg.payload);
    if (data.ok()) {
      const size_t before = pg.MemoryBytes();
      for (const auto& rec : data->records) pg.AddRecord(rec);
      memory.Charge(pg.MemoryBytes() - before);
      ++result.metrics.regions_received;
    }
    memory.Release(seg.payload.size());
    cpu_ms += sw.ElapsedMs();
  };

  for (graph::RegionId r : needed) {
    const EbIndex::RegionDir& d = index.dir[r];
    for (int part = 0; part < (d.local_packets > 0 ? 2 : 1); ++part) {
      const uint32_t start = part == 0 ? d.cross_start : d.local_start;
      broadcast::ReceivedSegment seg = ReceiveSegmentAt(session, start);
      memory.Charge(seg.payload.size());
      if (seg.complete) {
        ingest(std::move(seg));
      } else {
        stash.push_back(std::move(seg));
        pending.push_back({start, &stash.back()});
      }
    }
  }
  if (!pending.empty()) {
    RepairAllSegments(session, pending, options.max_repair_cycles);
    for (auto& seg : stash) ingest(std::move(seg));
  }

  // Dijkstra over the received union; nodes beyond the radius are filtered
  // out afterwards (the search could early-terminate at the radius, but
  // the received subgraph is already radius-pruned by region).
  device::Stopwatch sw_search;
  algo::SearchTree full = algo::DijkstraSearch(
      pg, query.source, graph::kInvalidNode, KnownEdgeFilter{&pg});
  for (graph::NodeId v = 0; v < full.dist.size(); ++v) {
    if (full.dist[v] <= query.radius) {
      result.nodes.emplace_back(v, full.dist[v]);
    }
  }
  std::sort(result.nodes.begin(), result.nodes.end(),
            [](const auto& a, const auto& b) {
              return a.second < b.second ||
                     (a.second == b.second && a.first < b.first);
            });
  cpu_ms += sw_search.ElapsedMs();

  result.metrics.tuning_packets = session.tuned_packets();
  result.metrics.latency_packets = session.latency_packets();
  result.metrics.wait_packets = session.wait_packets();
  result.metrics.corrupted_packets = session.corrupted_packets();
  result.metrics.fec_recovered = session.fec_recovered();
  result.metrics.wait_slots = session.wait_slots();
  result.metrics.latency_slots = session.latency_slots();
  result.metrics.peak_memory_bytes = memory.peak();
  result.metrics.memory_exceeded = memory.exceeded();
  result.metrics.cpu_ms = cpu_ms;
  result.metrics.ok = true;
  return result;
}

}  // namespace airindex::core
