#include "core/nr.h"

#include <algorithm>
#include <optional>

#include "algo/dijkstra.h"
#include "common/byte_io.h"
#include "core/partial_graph.h"
#include "core/query_scratch.h"
#include "core/region_data.h"
#include "core/repair.h"
#include "core/super_edge.h"
#include "device/memory_tracker.h"
#include "partition/kd_tree.h"

namespace airindex::core {
namespace {

using broadcast::kPayloadSize;
using broadcast::ReceivedSegment;

uint32_t PayloadPackets(size_t bytes) {
  return bytes == 0 ? 1
                    : static_cast<uint32_t>((bytes + kPayloadSize - 1) /
                                            kPayloadSize);
}

bool RangeOkClamped(const ReceivedSegment& seg, size_t begin, size_t end) {
  return seg.RangeOk(begin, std::min(end, seg.payload.size()));
}

bool RangeOkClamped(const ReceivedSegment& seg,
                    std::pair<size_t, size_t> range) {
  return RangeOkClamped(seg, range.first, range.second);
}

/// Reads a geometry entry straight out of a (possibly holey) index payload.
NrIndex::RegionGeometry ReadGeometry(const ReceivedSegment& seg, uint32_t R,
                                     graph::RegionId r) {
  const size_t off = NrIndex::PositionRange(R, r).first;
  NrIndex::RegionGeometry g;
  g.cross_start = GetU32(seg.payload.data() + off);
  g.cross_packets = GetU16(seg.payload.data() + off + 4);
  g.local_packets = GetU16(seg.payload.data() + off + 6);
  return g;
}

}  // namespace

Result<std::unique_ptr<NrSystem>> NrSystem::Build(const graph::Graph& g,
                                                  uint32_t num_regions,
                                                  const BuildConfig& config) {
  if (num_regions > 256) {
    return Status::InvalidArgument("NR supports at most 256 regions");
  }
  AIRINDEX_ASSIGN_OR_RETURN(
      auto kd, partition::KdTreePartitioner::Build(g, num_regions));
  AIRINDEX_ASSIGN_OR_RETURN(
      auto pre, ComputeBorderPrecompute(g, kd.Partition(g),
                                        config.precompute_threads));
  return BuildFromPrecompute(g, pre, config);
}

Result<std::unique_ptr<NrSystem>> NrSystem::BuildFromPrecompute(
    const graph::Graph& g, const BorderPrecompute& pre,
    const BuildConfig& config) {
  const uint32_t R = pre.num_regions;
  if (R > 256) {
    return Status::InvalidArgument("NR supports at most 256 regions");
  }
  auto sys = std::unique_ptr<NrSystem>(new NrSystem());
  sys->encoding_ = config.encoding;
  sys->precompute_seconds_ = pre.seconds;
  AIRINDEX_ASSIGN_OR_RETURN(auto kd,
                            partition::KdTreePartitioner::Build(g, R));

  // Region payloads with the §4.1 cross-border/local split (NR clients
  // receive only the cross segment of intermediate regions, which is what
  // makes NR's tuning time a subset of EB's).
  struct RegionPayloads {
    std::vector<uint8_t> cross;
    std::vector<uint8_t> local;
  };
  std::vector<RegionPayloads> payloads(R);
  for (graph::RegionId r = 0; r < R; ++r) {
    std::vector<graph::NodeId> cross_nodes, local_nodes;
    for (graph::NodeId v : pre.part.region_nodes[r]) {
      (pre.cross_border[v] ? cross_nodes : local_nodes).push_back(v);
    }
    payloads[r].cross = EncodeRegionData(g, pre.borders.region_border[r],
                                         cross_nodes, config.encoding);
    if (!local_nodes.empty()) {
      payloads[r].local = EncodeRegionData(g, {}, local_nodes,
                                           config.encoding);
    }
  }

  // Layout: [A^0][cross_0][local_0?][A^1][cross_1]... with fixed-size local
  // indexes.
  const uint32_t index_packets = PayloadPackets(NrIndex::EncodedBytes(R));
  std::vector<NrIndex::RegionGeometry> geometry(R);
  {
    uint32_t pos = 0;
    for (graph::RegionId m = 0; m < R; ++m) {
      pos += index_packets;
      geometry[m].cross_start = pos;
      geometry[m].cross_packets =
          static_cast<uint16_t>(PayloadPackets(payloads[m].cross.size()));
      pos += geometry[m].cross_packets;
      geometry[m].local_packets =
          payloads[m].local.empty()
              ? 0
              : static_cast<uint16_t>(
                    PayloadPackets(payloads[m].local.size()));
      pos += geometry[m].local_packets;
    }
  }

  // Next-region tables: for each ordered pair, the needed-region set from
  // the pre-computation; A^m[i][j] = first needed region at or after m.
  // next_at is computed by a backward sweep over two concatenated periods
  // (resolving the wrap-around).
  sys->indexes_.assign(R, NrIndex{});
  for (graph::RegionId m = 0; m < R; ++m) {
    auto& idx = sys->indexes_[m];
    idx.num_regions = R;
    idx.num_nodes = static_cast<uint32_t>(g.num_nodes());
    idx.region_id = m;
    idx.splits = kd.splits_bfs();
    idx.geometry = geometry;
    idx.next_region.assign(static_cast<size_t>(R) * R, 0);
  }
  std::vector<uint8_t> next_at(2 * R);
  // One reused bitset per pair instead of a fresh NeededRegions vector:
  // this loop runs R^2 times and sits on the cycle-construction hot path.
  std::vector<uint64_t> needed(pre.words_per_pair());
  for (graph::RegionId i = 0; i < R; ++i) {
    for (graph::RegionId j = 0; j < R; ++j) {
      pre.NeededRegionsMask(i, j, needed.data());
      auto is_needed = [&](graph::RegionId k) {
        return (needed[k / 64] >> (k % 64)) & 1;
      };
      uint8_t next = 0;
      for (uint32_t step = 0; step < 2 * R; ++step) {
        const uint32_t m = 2 * R - 1 - step;
        const graph::RegionId r = m % R;
        if (is_needed(r)) next = static_cast<uint8_t>(r);
        next_at[m] = next;
      }
      for (graph::RegionId m = 0; m < R; ++m) {
        sys->indexes_[m].next_region[static_cast<size_t>(i) * R + j] =
            next_at[m];
      }
    }
  }

  // Assemble.
  broadcast::CycleBuilder builder;
  for (graph::RegionId m = 0; m < R; ++m) {
    broadcast::Segment idx_seg;
    idx_seg.type = broadcast::SegmentType::kLocalIndex;
    idx_seg.id = m;
    idx_seg.is_index = true;
    idx_seg.payload = sys->indexes_[m].Encode();
    builder.Add(std::move(idx_seg));
    broadcast::Segment cross_seg;
    cross_seg.type = broadcast::SegmentType::kNetworkData;
    cross_seg.id = m;
    cross_seg.payload = std::move(payloads[m].cross);
    builder.Add(std::move(cross_seg));
    if (!payloads[m].local.empty()) {
      broadcast::Segment local_seg;
      local_seg.type = broadcast::SegmentType::kNetworkData;
      local_seg.id = m;
      local_seg.payload = std::move(payloads[m].local);
      builder.Add(std::move(local_seg));
    }
  }
  AIRINDEX_ASSIGN_OR_RETURN(sys->cycle_, std::move(builder).Finalize());
  return sys;
}

device::QueryMetrics NrSystem::RunQuery(
    const broadcast::BroadcastChannel& channel, const AirQuery& query,
    const ClientOptions& options, QueryScratch* scratch) const {
  device::QueryMetrics metrics;
  device::MemoryTracker memory(options.heap_bytes);
  broadcast::ClientSession session(&channel, StartPosition(channel, query));
  const uint32_t total = cycle_.total_packets();
  double cpu_ms = 0.0;

  std::optional<QueryScratch> local_scratch;
  QueryScratch& s =
      scratch != nullptr ? *scratch : local_scratch.emplace();
  s.BeginQuery();
  s.session.BeginQueryStats();
  const bool cache_on = s.session.Ready(channel);

  // Serves a segment from the session cache when possible; otherwise
  // listens for it and caches the result. Cached copies are complete by
  // construction, so downstream completeness checks behave as on a
  // lossless channel.
  auto fetch_segment = [&](uint32_t start, ReceivedSegment* out) {
    if (cache_on && s.session.Load(start, out)) {
      s.session.CountHit();
      return;
    }
    broadcast::ReceiveSegmentAt(session, start, out);
    if (cache_on) s.session.Store(start, *out);
  };

  // --- 1. Find and receive the next local index (every header points at
  // one; tuning in right at an index start uses that very copy) ----------
  uint32_t idx_start = 0;
  auto receive_some_index = [&](ReceivedSegment* out, bool* ok) {
    for (int attempts = 0; attempts < 256; ++attempts) {
      auto view = session.ReceiveNext();
      if (!view.has_value()) continue;
      *ok = true;
      if (view->next_index_offset == 0 && view->seq == 0) {
        idx_start = view->cycle_pos;
        broadcast::CompleteSegmentFrom(session, *view, out);
        return;
      }
      idx_start = broadcast::NextIndexTarget(session, *view);
      broadcast::ReceiveSegmentAt(session, idx_start, out);
      return;
    }
    *ok = false;
  };

  bool found = false;

  PartialGraph& pg = s.partial_graph;
  SuperEdgeProcessor super(query.source, query.target);
  size_t super_mem = 0;
  std::vector<uint8_t>& received = s.region_flags;
  received.clear();
  bool mapped = false;
  graph::RegionId rs = 0, rt = 0;
  uint32_t R = 0;
  int first_index_id = -1;
  int expected_id = -1;  // id of the index currently in *idx_seg
  bool index_charged = false;
  bool progressed = false;

  auto ingest_region = [&](ReceivedSegment& cross, ReceivedSegment* local,
                           bool has_local) {
    device::Stopwatch sw;
    if (options.memory_bound) {
      // §6.1 path: the region is materialized, collapsed into super-edges,
      // and dropped; decode allocations are part of the modeled charge.
      auto cross_or = DecodeRegionData(cross.payload, encoding_);
      if (cross_or.ok()) {
        RegionData region = std::move(cross_or).value();
        if (has_local) {
          auto local_or = DecodeRegionData(local->payload, encoding_);
          if (local_or.ok()) {
            for (auto& rec : local_or->records) {
              region.records.push_back(std::move(rec));
            }
          }
        }
        const size_t decoded =
            region.records.size() * 24 + region.border.size() * 4;
        memory.Charge(decoded);
        super.AddRegion(region);
        memory.Release(decoded);
        memory.Release(super_mem);
        super_mem = super.MemoryBytes();
        memory.Charge(super_mem);
        ++metrics.regions_received;
      }
    } else {
      // Allocation-free path: validate (all-or-nothing, like the old
      // wholesale decode) and stream records straight into the pool.
      const bool cross_valid = MemoValidate(s.decode_cache, cross, [&] {
        return ValidateRegionData(cross.payload, encoding_).ok();
      });
      if (cross_valid) {
        const size_t before = pg.MemoryBytes();
        RegionDataView view(cross.payload, encoding_);
        auto cursor = view.records();
        while (cursor.Next(&s.record)) pg.AddRecord(s.record);
        const bool local_valid =
            has_local && MemoValidate(s.decode_cache, *local, [&] {
              return ValidateRegionData(local->payload, encoding_).ok();
            });
        if (local_valid) {
          RegionDataView local_view(local->payload, encoding_);
          auto local_cursor = local_view.records();
          while (local_cursor.Next(&s.record)) pg.AddRecord(s.record);
        }
        memory.Charge(pg.MemoryBytes() - before);
        ++metrics.regions_received;
      }
    }
    memory.Release(cross.payload.size());
    if (has_local) memory.Release(local->payload.size());
    cpu_ms += sw.ElapsedMs();
  };

  // --- 2. Chain through local indexes (Algorithm 2 + §6.2) --------------
  struct StashedRegion {
    ReceivedSegment* cross = nullptr;
    ReceivedSegment* local = nullptr;
    bool want_local = false;
    uint32_t cross_start = 0;
    uint32_t local_start = 0;
  };
  std::vector<StashedRegion> stash;  // loss path only; empty => no alloc

  ReceivedSegment* idx_seg = s.segments.Acquire();
  // A warm session replays the remembered entry index instead of probing
  // the air for one — the chain then starts without the radio waking up.
  const bool entry_cached = cache_on && s.session.has_index();
  if (entry_cached) {
    idx_start = s.session.index_start();
    s.session.LoadIndex(idx_seg);
    s.session.CountHit();
    found = true;
  } else {
    receive_some_index(idx_seg, &found);
  }
  if (!found) return metrics;
  if (!index_charged) {
    memory.Charge(idx_seg->payload.size());
    index_charged = true;
  }

  const uint32_t kMaxSteps = 2 * 256 + 32;
  for (uint32_t step = 0; step < kMaxSteps; ++step) {
    if (!mapped) {
      // The first usable index must provide the header + splits so the
      // client can locate Rs and Rt (§6.2: if the first component is lost,
      // wait for the next index).
      const uint32_t reg_count =
          idx_seg->payload.size() >= 2 && idx_seg->packet_ok[0]
              ? GetU16(idx_seg->payload.data())
              : 0;
      const bool header_ok =
          reg_count >= 2 && reg_count <= 256 &&
          RangeOkClamped(*idx_seg, NrIndex::SplitsRange(reg_count));
      if (!header_ok) {
        bool ok = false;
        receive_some_index(idx_seg, &ok);
        if (!ok) return metrics;
        continue;
      }
      device::Stopwatch sw_map;
      if (!NrIndex::Decode(idx_seg->payload, &s.nr_index).ok()) {
        return metrics;
      }
      auto kd = partition::KdTreePartitioner::FromSplits(s.nr_index.splits);
      if (!kd.ok()) return metrics;
      rs = kd->RegionOf(query.source_coord);
      rt = kd->RegionOf(query.target_coord);
      R = reg_count;
      received.assign(R, 0);
      mapped = true;
      if (cache_on && !entry_cached) {
        s.session.StoreIndex(idx_start, *idx_seg);
      }
      first_index_id = static_cast<int>(s.nr_index.region_id);
      expected_id = first_index_id;
      cpu_ms += sw_map.ElapsedMs();
    } else if (expected_id == first_index_id && progressed) {
      break;  // wrapped around the whole cycle (Algorithm 2 guard)
    }

    // Decide the next region from the current index. Only the single cell
    // [rs][rt] plus one geometry entry are needed (§5.1's point: per local
    // index the client reads one value).
    const bool cell_ok =
        RangeOkClamped(*idx_seg, NrIndex::CellRange(R, rs, rt));
    graph::RegionId region_id = 0;
    NrIndex::RegionGeometry geom;
    bool have_geom = false;

    if (cell_ok) {
      const graph::RegionId next_r =
          idx_seg->payload[NrIndex::CellRange(R, rs, rt).first];
      if (next_r >= R) return metrics;
      if (received[next_r]) break;  // client already possesses R_nxt
      if (RangeOkClamped(*idx_seg, NrIndex::PositionRange(R, next_r))) {
        region_id = next_r;
        geom = ReadGeometry(*idx_seg, R, next_r);
        have_geom = true;
      }
    }
    if (!have_geom) {
      // §6.2 fallback: the needed cell (or the position of its region) was
      // lost. Receive the region adjacent to this index anyway; its
      // geometry entry is in the same index.
      region_id = static_cast<graph::RegionId>(expected_id);
      if (RangeOkClamped(*idx_seg,
                         NrIndex::PositionRange(R, region_id))) {
        geom = ReadGeometry(*idx_seg, R, region_id);
        have_geom = true;
      } else {
        // Even the adjacent geometry is gone: re-listen to the missing
        // packets of this very index next cycle and try again.
        RepairSegment(session, idx_start, idx_seg, 1);
        continue;
      }
      if (received[region_id]) {
        // Nothing new adjacent; hop to the next index.
        idx_start =
            (geom.cross_start + geom.cross_packets + geom.local_packets) %
            total;
        fetch_segment(idx_start, idx_seg);
        expected_id = (expected_id + 1) % static_cast<int>(R);
        progressed = true;
        continue;
      }
    }

    // Receive the region's cross segment, optionally its local segment
    // (endpoint regions only), then the adjacent next index. Damaged
    // regions are stashed and repaired together after the chain finishes
    // (§6.2 — one repair sweep per cycle fixes everything that was lost).
    ReceivedSegment* cross = s.segments.Acquire();
    fetch_segment(geom.cross_start, cross);
    memory.Charge(cross->payload.size());
    const bool want_local =
        geom.local_packets > 0 && (region_id == rs || region_id == rt);
    ReceivedSegment* local = nullptr;
    if (want_local) {
      local = s.segments.Acquire();
      fetch_segment((geom.cross_start + geom.cross_packets) % total, local);
      memory.Charge(local->payload.size());
    }
    const uint32_t next_idx_start =
        (geom.cross_start + geom.cross_packets + geom.local_packets) % total;
    ReceivedSegment* next_idx = s.segments.Acquire();
    fetch_segment(next_idx_start, next_idx);

    if (cross->complete && (!want_local || local->complete)) {
      ingest_region(*cross, local, want_local);
      s.segments.Recycle(cross);
      if (local != nullptr) s.segments.Recycle(local);
    } else {
      stash.push_back({cross, local, want_local, geom.cross_start,
                       (geom.cross_start + geom.cross_packets) % total});
    }
    received[region_id] = 1;
    progressed = true;
    s.segments.Recycle(idx_seg);
    idx_seg = next_idx;
    idx_start = next_idx_start;
    expected_id = static_cast<int>((region_id + 1) % R);
  }

  // Repair sweep over everything the chain could not complete, then ingest.
  if (!stash.empty()) {
    std::vector<PendingRepair> pending;
    for (auto& st : stash) {
      if (!st.cross->complete) {
        pending.push_back({st.cross_start, st.cross});
      }
      if (st.want_local && !st.local->complete) {
        pending.push_back({st.local_start, st.local});
      }
    }
    RepairAllSegments(session, pending, options.max_repair_cycles);
    for (auto& st : stash) {
      if (cache_on) {
        // Store() keeps only segments the repairs completed.
        s.session.Store(st.cross_start, *st.cross);
        if (st.want_local) s.session.Store(st.local_start, *st.local);
      }
      ingest_region(*st.cross, st.local, st.want_local);
    }
  }

  // --- 3. Local search ----------------------------------------------------
  device::Stopwatch sw_search;
  graph::Dist dist = graph::kInfDist;
  if (mapped) {
    if (options.memory_bound) {
      dist = super.Solve();
    } else {
      algo::DijkstraSearch(pg, query.source, query.target,
                           KnownEdgeFilter{&pg}, s.search);
      dist = s.search.DistTo(query.target);
    }
  }
  cpu_ms += sw_search.ElapsedMs();

  metrics.tuning_packets = session.tuned_packets();
  metrics.latency_packets = session.latency_packets();
  metrics.wait_packets = session.wait_packets();
  metrics.corrupted_packets = session.corrupted_packets();
  metrics.fec_recovered = session.fec_recovered();
  metrics.wait_slots = session.wait_slots();
  metrics.latency_slots = session.latency_slots();
  metrics.peak_memory_bytes = memory.peak();
  metrics.memory_exceeded = memory.exceeded();
  metrics.cpu_ms = cpu_ms;
  metrics.cache_hits = s.session.query_hits();
  metrics.warm = metrics.cache_hits > 0;
  metrics.distance = dist;
  metrics.ok = dist != graph::kInfDist;
  return metrics;
}

}  // namespace airindex::core
