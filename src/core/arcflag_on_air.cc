#include "core/arcflag_on_air.h"

#include <bit>
#include <chrono>
#include <optional>

#include "common/byte_io.h"
#include "core/cycle_common.h"
#include "core/full_cycle.h"
#include "core/query_scratch.h"
#include "device/memory_tracker.h"

namespace airindex::core {
namespace {

constexpr uint32_t kHeaderSegment = 0;
constexpr uint32_t kFlagChunkArcs = 4096;

}  // namespace

Result<std::unique_ptr<ArcFlagOnAir>> ArcFlagOnAir::Build(
    const graph::Graph& g, uint32_t num_regions, const BuildConfig& config) {
  auto sys = std::unique_ptr<ArcFlagOnAir>(new ArcFlagOnAir());
  sys->encoding_ = config.encoding;
  sys->num_regions_ = num_regions;
  sys->num_nodes_ = static_cast<uint32_t>(g.num_nodes());
  sys->num_arcs_ = static_cast<uint32_t>(g.num_arcs());

  AIRINDEX_ASSIGN_OR_RETURN(
      auto kd, partition::KdTreePartitioner::Build(g, num_regions));
  sys->splits_ = kd.splits_bfs();
  partition::Partitioning part = kd.Partition(g);

  const auto start = std::chrono::steady_clock::now();
  AIRINDEX_ASSIGN_OR_RETURN(
      sys->index_,
      algo::ArcFlagIndex::Build(g, part.node_region, num_regions));
  sys->precompute_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  broadcast::CycleBuilder builder;
  AppendNetworkSegments(g, &builder, kNetworkChunkNodes, config.encoding);

  // Header: region count + node/arc counts + kd split values (the client
  // re-derives every node's region from these plus the coordinates).
  {
    broadcast::Segment seg;
    seg.type = broadcast::SegmentType::kAuxData;
    seg.id = kHeaderSegment;
    PutU16(&seg.payload, static_cast<uint16_t>(num_regions));
    PutU32(&seg.payload, sys->num_nodes_);
    PutU32(&seg.payload, sys->num_arcs_);
    for (double s : sys->splits_) {
      PutU64(&seg.payload, std::bit_cast<uint64_t>(s));
    }
    builder.Add(std::move(seg));
  }

  // Flag vectors in CSR arc order, one u16 per region (see
  // ArcFlagIndex::BytesPerArc for the sizing rationale).
  const size_t bytes_per_arc = sys->index_.BytesPerArc();
  for (uint32_t first = 0; first < g.num_arcs(); first += kFlagChunkArcs) {
    broadcast::Segment seg;
    seg.type = broadcast::SegmentType::kAuxData;
    seg.id = 1 + first / kFlagChunkArcs;
    const uint32_t last =
        std::min<uint32_t>(first + kFlagChunkArcs, sys->num_arcs_);
    seg.payload.reserve(static_cast<size_t>(last - first) * bytes_per_arc);
    for (uint32_t a = first; a < last; ++a) {
      for (uint32_t r = 0; r < num_regions; ++r) {
        PutU16(&seg.payload, sys->index_.ArcAllowed(a, r) ? 1 : 0);
      }
    }
    builder.Add(std::move(seg));
  }
  AIRINDEX_ASSIGN_OR_RETURN(sys->cycle_, std::move(builder).Finalize(
                                             /*require_index=*/false));
  return sys;
}

device::QueryMetrics ArcFlagOnAir::RunQuery(
    const broadcast::BroadcastChannel& channel, const AirQuery& query,
    const ClientOptions& options, QueryScratch* scratch) const {
  device::QueryMetrics metrics;
  device::MemoryTracker memory(options.heap_bytes);
  broadcast::ClientSession session(&channel, StartPosition(channel, query));

  std::optional<QueryScratch> local_scratch;
  QueryScratch& s =
      scratch != nullptr ? *scratch : local_scratch.emplace();
  s.BeginQuery();
  s.session.BeginQueryStats();

  // Collected network data (node-id addressed) and raw flag chunks. The
  // coordinates are moved into the rebuilt Graph below, so they cannot be
  // pooled; the edge list can.
  std::vector<graph::Point> coords(num_nodes_);
  std::vector<graph::EdgeTriplet>& edges = s.edges;
  edges.reserve(num_arcs_);
  std::vector<double> splits;
  struct FlagChunk {
    uint32_t first_arc;
    std::vector<uint8_t> bytes;
    std::vector<bool> packet_ok;
  };
  std::vector<FlagChunk> flag_chunks;
  bool header_ok = false;
  double cpu_ms = 0.0;

  Status receive_status = ReceiveFullCycleCached(
      session, memory, &s.session,
      [&options](const broadcast::ReceivedSegment& seg) {
        if (seg.type == broadcast::SegmentType::kNetworkData) return true;
        // A lost flag chunk degrades to all-ones (§6.2), but a lost header
        // kills the query — the kd splits cannot be reconstructed. The
        // opt-in repair closes that gap; off by default to preserve the
        // paper's reproduction numbers.
        return options.repair_header &&
               seg.type == broadcast::SegmentType::kAuxData &&
               seg.segment_id == kHeaderSegment;
      },
      [&](broadcast::ReceivedSegment& seg) {
        device::Stopwatch sw;
        if (seg.type == broadcast::SegmentType::kNetworkData) {
          const bool valid = MemoValidate(s.decode_cache, seg, [&] {
            return broadcast::ValidateNodeRecords(seg.payload, encoding_)
                .ok();
          });
          if (valid) {
            size_t added = 0;
            size_t record_count = 0;
            broadcast::NodeRecordCursor cursor(seg.payload, encoding_);
            while (cursor.Next(&s.record)) {
              ++record_count;
              coords[s.record.id] = s.record.coord;
              for (const auto& arc : s.record.arcs) {
                edges.push_back({s.record.id, arc.to, arc.weight});
                ++added;
              }
            }
            memory.Charge(added * 12 + record_count * 20);
          }
          memory.Release(seg.payload.size());
        } else if (seg.segment_id == kHeaderSegment) {
          if (seg.complete) {
            ByteReader reader(seg.payload);
            const uint16_t regions = reader.ReadU16();
            reader.ReadU32();  // node count (known)
            reader.ReadU32();  // arc count (known)
            splits.reserve(regions - 1);
            for (uint16_t i = 0; i + 1 < regions; ++i) {
              splits.push_back(std::bit_cast<double>(reader.ReadU64()));
            }
            header_ok = true;
          }
          memory.Charge(splits.size() * 8);
          memory.Release(seg.payload.size());
        } else {
          FlagChunk chunk;
          chunk.first_arc = (seg.segment_id - 1) * kFlagChunkArcs;
          chunk.bytes = std::move(seg.payload);
          chunk.packet_ok = std::move(seg.packet_ok);
          flag_chunks.push_back(std::move(chunk));
          // Raw flag bytes are retained until query time; keep the charge.
          // (Moving them out of the scratch costs those segments a fresh
          // buffer next query — AF is not on the allocation-free target
          // path since it rebuilds a full Graph per query anyway.)
        }
        cpu_ms += sw.ElapsedMs();
      },
      options.max_repair_cycles, &s.full_cycle);

  device::Stopwatch sw;
  // Rebuild the graph; CSR layout matches the server's (same edges, same
  // per-node sort order).
  auto built = graph::Graph::Build(std::move(coords), edges);
  if (!built.ok() || !header_ok) {
    // Without splits there is no region mapping; ArcFlag cannot run.
    metrics.tuning_packets = session.tuned_packets();
    metrics.latency_packets = session.latency_packets();
    metrics.wait_packets = session.wait_packets();
  metrics.corrupted_packets = session.corrupted_packets();
  metrics.fec_recovered = session.fec_recovered();
  metrics.wait_slots = session.wait_slots();
  metrics.latency_slots = session.latency_slots();
    metrics.peak_memory_bytes = memory.peak();
    metrics.memory_exceeded = memory.exceeded();
    metrics.cpu_ms = cpu_ms + sw.ElapsedMs();
    metrics.cache_hits = s.session.query_hits();
    metrics.warm = metrics.cache_hits > 0;
    metrics.ok = false;
    return metrics;
  }
  graph::Graph gr = std::move(built).value();
  memory.Charge(gr.MemoryBytes());

  auto kd = partition::KdTreePartitioner::FromSplits(splits);
  std::vector<graph::RegionId> node_region(gr.num_nodes());
  for (graph::NodeId v = 0; v < gr.num_nodes(); ++v) {
    node_region[v] = kd->RegionOf(gr.Coord(v));
  }

  algo::ArcFlagIndex idx = algo::ArcFlagIndex::MakeEmpty(
      gr.num_arcs(), num_regions_, std::move(node_region));
  memory.Charge(idx.MemoryBytes());
  const size_t bytes_per_arc = 2 * static_cast<size_t>(num_regions_);
  for (const auto& chunk : flag_chunks) {
    const size_t arcs_in_chunk = chunk.bytes.size() / bytes_per_arc;
    for (size_t i = 0; i < arcs_in_chunk; ++i) {
      const size_t arc = chunk.first_arc + i;
      const size_t off = i * bytes_per_arc;
      broadcast::ReceivedSegment probe;  // reuse RangeOk logic
      probe.packet_ok = chunk.packet_ok;
      if (!probe.RangeOk(off, off + bytes_per_arc)) {
        // §6.2: a lost flag vector is assumed all-ones.
        idx.SetAllFlags(arc);
        continue;
      }
      for (uint32_t r = 0; r < num_regions_; ++r) {
        if (GetU16(chunk.bytes.data() + off + 2 * r) != 0) {
          idx.SetArcFlag(arc, r);
        }
      }
    }
  }

  size_t settled = 0;
  graph::Path path = idx.Query(gr, query.source, query.target, &settled);
  cpu_ms += sw.ElapsedMs();

  metrics.tuning_packets = session.tuned_packets();
  metrics.latency_packets = session.latency_packets();
  metrics.wait_packets = session.wait_packets();
  metrics.corrupted_packets = session.corrupted_packets();
  metrics.fec_recovered = session.fec_recovered();
  metrics.wait_slots = session.wait_slots();
  metrics.latency_slots = session.latency_slots();
  metrics.peak_memory_bytes = memory.peak();
  metrics.memory_exceeded = memory.exceeded();
  metrics.cpu_ms = cpu_ms;
  metrics.cache_hits = s.session.query_hits();
  metrics.warm = metrics.cache_hits > 0;
  metrics.distance = path.dist;
  metrics.ok = receive_status.ok() && path.found();
  return metrics;
}

}  // namespace airindex::core
