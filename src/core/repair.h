#ifndef AIRINDEX_CORE_REPAIR_H_
#define AIRINDEX_CORE_REPAIR_H_

#include <vector>

#include "broadcast/channel.h"

namespace airindex::core {

/// A segment awaiting loss repair: where it starts in the cycle and the
/// partially received buffer to fill.
struct PendingRepair {
  uint32_t segment_start = 0;
  broadcast::ReceivedSegment* seg = nullptr;
};

/// Re-listens to every still-missing packet across all pending segments,
/// visiting them in broadcast order so one pass costs at most about one
/// cycle of latency regardless of how many segments are damaged (§6.2:
/// lost region data is received "in the next cycle" — all of it, not one
/// region per cycle). Runs up to `max_cycles` passes; returns true when
/// everything is complete.
bool RepairAllSegments(broadcast::ClientSession& session,
                       const std::vector<PendingRepair>& pending,
                       int max_cycles);

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_REPAIR_H_
