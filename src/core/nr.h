#ifndef AIRINDEX_CORE_NR_H_
#define AIRINDEX_CORE_NR_H_

#include <memory>

#include "common/result.h"
#include "core/air_system.h"
#include "core/border_precompute.h"
#include "core/cycle_common.h"
#include "core/nr_index.h"
#include "graph/graph.h"

namespace airindex::core {

/// The Next Region method (§5), the paper's second contribution.
///
/// Server: the same border-pair pre-computation as EB, but instead of a
/// global min/max matrix it derives, per ordered region pair, the set of
/// regions any recorded border-pair shortest path traverses. That set is
/// never shipped whole: each region R_m is preceded by a small local index
/// A^m whose cell [rs][rt] names only the *next* needed region at or after
/// R_m in the cycle. No (1,m) replication is needed — the local indexes are
/// the paper's "fundamentally different" alternative to a replicated global
/// index.
///
/// Client (§5.2, Algorithm 2): reads the next local index, hops from needed
/// region to needed region (receiving each region's data plus the adjacent
/// next index), and stops when an index points at a region it already has.
/// Lost region packets are repaired next cycle; a lost index cell means the
/// adjacent region is received anyway (§6.2).
class NrSystem : public AirSystem {
 public:
  /// `num_regions`: power of two, at most 256 (paper default 32).
  static Result<std::unique_ptr<NrSystem>> Build(const graph::Graph& g,
                                                 uint32_t num_regions,
                                                 const BuildConfig& config = {});

  static Result<std::unique_ptr<NrSystem>> BuildFromPrecompute(
      const graph::Graph& g, const BorderPrecompute& pre,
      const BuildConfig& config = {});

  std::string_view name() const override { return "NR"; }
  const broadcast::BroadcastCycle& cycle() const override { return cycle_; }
  device::QueryMetrics RunQuery(const broadcast::BroadcastChannel& channel,
                                const AirQuery& query,
                                const ClientOptions& options = {},
                                QueryScratch* scratch =
                                    nullptr) const override;
  double precompute_seconds() const override { return precompute_seconds_; }

  /// The local index preceding region m (server-side introspection).
  const NrIndex& local_index(graph::RegionId m) const { return indexes_[m]; }

 private:
  NrSystem() = default;

  broadcast::BroadcastCycle cycle_;
  std::vector<NrIndex> indexes_;
  broadcast::CycleEncoding encoding_ = broadcast::CycleEncoding::kLegacy;
  double precompute_seconds_ = 0.0;
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_NR_H_
