#ifndef AIRINDEX_CORE_FULL_CYCLE_H_
#define AIRINDEX_CORE_FULL_CYCLE_H_

#include <functional>

#include "broadcast/channel.h"
#include "common/status.h"
#include "device/memory_tracker.h"

namespace airindex::core {

/// Shared client loop of the full-cycle methods (§3.2: Dijkstra, ArcFlag,
/// Landmark, and the SPQ/HiTi adaptations all "listen to the entire
/// broadcast cycle"). Listens to every packet of one cycle starting at the
/// session position, delivering each segment to `on_segment` as soon as it
/// completes; raw chunk bytes are charged to `memory` as they arrive and it
/// is the callback's job to release `payload.size()` once it has consumed
/// (decoded) the segment.
///
/// Segments with lost packets are re-listened to on subsequent cycles when
/// `must_repair(type)` is true (adjacency data must be complete, §6.2);
/// otherwise they are delivered incomplete (packet_ok flags show the holes)
/// so the method-specific fallback can apply.
Status ReceiveFullCycle(
    broadcast::ClientSession& session, device::MemoryTracker& memory,
    const std::function<bool(broadcast::SegmentType)>& must_repair,
    const std::function<void(broadcast::ReceivedSegment&&)>& on_segment,
    int max_repair_cycles);

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_FULL_CYCLE_H_
