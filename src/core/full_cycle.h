#ifndef AIRINDEX_CORE_FULL_CYCLE_H_
#define AIRINDEX_CORE_FULL_CYCLE_H_

#include <cstring>
#include <vector>

#include "broadcast/channel.h"
#include "common/status.h"
#include "core/session_cache.h"
#include "device/memory_tracker.h"

namespace airindex::core {

/// Reusable buffers of ReceiveFullCycle: the per-segment reassembly state.
/// A scratch that lives across queries (core::QueryScratch) keeps each
/// segment's payload/mask allocation, so a steady-state full-cycle client
/// reassembles without touching the allocator. Callbacks that retain a
/// delivered segment's buffers (by moving them out) simply cost that
/// segment a fresh allocation next query.
struct FullCycleScratch {
  std::vector<broadcast::ReceivedSegment> partial;
  std::vector<uint32_t> received_packets;
  std::vector<uint8_t> delivered;
  /// Whether `partial[si]` was (re-)initialized for the current call.
  std::vector<uint8_t> primed;
};

/// Shared client loop of the full-cycle methods (§3.2: Dijkstra, ArcFlag,
/// Landmark, and the SPQ/HiTi adaptations all "listen to the entire
/// broadcast cycle"). Listens to every packet of one cycle starting at the
/// session position, delivering each segment to `on_segment` as soon as it
/// completes; raw chunk bytes are charged to `memory` as they arrive and it
/// is the callback's job to release `payload.size()` once it has consumed
/// (decoded) the segment.
///
/// `on_segment` receives the segment as an lvalue reference into the
/// scratch; it may read it in place (the allocation-free path) or move
/// buffers out to retain them. Segments with lost packets are re-listened
/// to on subsequent cycles when `must_repair(seg)` is true (adjacency data
/// must be complete, §6.2; the predicate sees the whole ReceivedSegment so
/// a method can single out e.g. its header segment); otherwise they are
/// delivered incomplete (packet_ok flags show the holes) so the
/// method-specific fallback can apply.
///
/// `scratch` may be null (a throwaway local is used — the historical
/// behaviour); generic callables avoid the std::function type-erasure
/// allocation the old interface paid per call.
template <typename MustRepair, typename OnSegment>
Status ReceiveFullCycle(broadcast::ClientSession& session,
                        device::MemoryTracker& memory,
                        MustRepair&& must_repair, OnSegment&& on_segment,
                        int max_repair_cycles,
                        FullCycleScratch* scratch = nullptr) {
  using broadcast::ReceivedSegment;

  FullCycleScratch local;
  FullCycleScratch& s = scratch != nullptr ? *scratch : local;

  const broadcast::BroadcastCycle& cycle = session.cycle();
  const size_t num_segments = cycle.num_segments();

  s.partial.resize(num_segments);
  s.received_packets.assign(num_segments, 0);
  s.delivered.assign(num_segments, 0);
  s.primed.assign(num_segments, 0);

  auto ensure_buffer = [&](uint32_t si) {
    if (s.primed[si]) return;
    s.primed[si] = 1;
    ReceivedSegment& seg = s.partial[si];
    const broadcast::Segment& src = cycle.segment(si);
    seg.segment_index = si;
    seg.type = src.type;
    seg.segment_id = src.id;
    seg.complete = false;
    seg.payload.assign(src.payload.size(), 0);
    seg.packet_ok.assign(src.PacketCount(), false);
  };

  auto ingest = [&](const broadcast::PacketView& view) {
    const uint32_t si = view.segment_index;
    ensure_buffer(si);
    ReceivedSegment& seg = s.partial[si];
    if (seg.packet_ok[view.seq]) return;
    seg.packet_ok[view.seq] = true;
    ++s.received_packets[si];
    memory.Charge(view.chunk.size());
    std::memcpy(seg.payload.data() +
                    static_cast<size_t>(view.seq) * broadcast::kPayloadSize,
                view.chunk.data(), view.chunk.size());
  };

  size_t delivered_count = 0;
  auto try_deliver = [&](uint32_t si, bool force) {
    if (s.delivered[si]) return;
    ensure_buffer(si);
    ReceivedSegment& seg = s.partial[si];
    seg.complete = s.received_packets[si] == seg.packet_ok.size();
    if (!seg.complete && !force) return;
    s.delivered[si] = 1;
    ++delivered_count;
    on_segment(seg);
  };

  // One pass over the whole cycle. A full-cycle client consumes every
  // packet, so content starts the instant it tunes in (wait is zero).
  // With FEC on, each parity group is settled as the sweep crosses its
  // boundary: a lost packet whose group decodes is reconstructed here, in
  // the same pass, and never reaches the repair cycles below. The decoder
  // state is fixed-size (stack-resident POD) and the reconstructed bytes
  // land in the scratch's segment buffers — no allocation either way.
  session.MarkContentStart();
  const uint32_t total = cycle.total_packets();
  // On a scheduled channel one pass over "the whole cycle" means one macro
  // cycle — hot groups repeat, so distinct content is spread over more
  // slots — but the sweep stops the moment every segment has been heard
  // (the flat sweep keeps its historical fixed length: with no duplicates,
  // the last packet of the pass is the last packet of content anyway).
  const bool scheduled = session.channel().scheduled();
  const uint64_t sweep = session.channel().session_cycle_packets();
  const bool fec_on = session.channel().fec().enabled();
  broadcast::FecGroupRun fec_run;
  auto fec_fill = [&](uint64_t abs) {
    const broadcast::PacketView v =
        cycle.PacketAt(session.channel().CyclePos(abs));
    ingest(v);
    try_deliver(v.segment_index, /*force=*/false);
  };
  for (uint64_t i = 0; i < sweep; ++i) {
    if (scheduled && delivered_count == num_segments) break;
    const uint64_t abs = session.position();
    auto view = session.ReceiveNext();
    if (fec_on) fec_run.Observe(session, abs, view.has_value(), fec_fill);
    if (!view.has_value()) continue;
    ingest(*view);
    try_deliver(view->segment_index, /*force=*/false);
  }
  if (fec_on) fec_run.Flush(session, fec_fill);

  // Repair passes for segments that must be complete.
  for (int pass = 0; pass < max_repair_cycles; ++pass) {
    bool anything_missing = false;
    for (uint32_t si = 0; si < num_segments; ++si) {
      if (s.delivered[si]) continue;
      ensure_buffer(si);
      if (!must_repair(s.partial[si])) continue;
      anything_missing = true;
      for (uint32_t p = 0; p < s.partial[si].packet_ok.size(); ++p) {
        if (s.partial[si].packet_ok[p]) continue;
        session.SleepUntilCyclePos((cycle.SegmentStart(si) + p) % total);
        auto view = session.ReceiveNext();
        if (view.has_value()) ingest(*view);
      }
      try_deliver(si, /*force=*/false);
    }
    if (!anything_missing) break;
  }

  // Deliver what remains (incomplete non-repairable segments, or repairable
  // ones that exhausted the repair budget).
  Status status = Status::OK();
  for (uint32_t si = 0; si < num_segments; ++si) {
    if (s.delivered[si]) continue;
    ensure_buffer(si);
    if (must_repair(s.partial[si]) && !s.partial[si].complete &&
        s.received_packets[si] != s.partial[si].packet_ok.size()) {
      status = Status::DataLoss(
          "segment still incomplete after repair budget");
    }
    try_deliver(si, /*force=*/true);
  }
  return status;
}

/// Session-cache-aware wrapper around ReceiveFullCycle — the warm path of
/// the full-cycle methods. When `cache` is armed (see core::SessionCache)
/// and holds a complete copy of *every* cycle segment, the client replays
/// the cached copies without listening at all: zero tuning, zero latency,
/// the radio never wakes. Replay is in segment-index order (= broadcast
/// order, so callbacks with ordering expectations — e.g. Landmark's
/// header-before-vectors — see the same sequence as a lossless cold pass)
/// and hands each callback a *copy* (callbacks are free to mutate or move
/// buffers out; ArcFlag does). Payload bytes are charged to `memory` as if
/// they had streamed in; callbacks release them as usual.
///
/// Anything short of a full cache — cold session, evictions, a cycle
/// segment that never completed — runs the historical cold loop, storing
/// each segment that completes into the cache *before* delivery.
template <typename MustRepair, typename OnSegment>
Status ReceiveFullCycleCached(broadcast::ClientSession& session,
                              device::MemoryTracker& memory,
                              SessionCache* cache, MustRepair&& must_repair,
                              OnSegment&& on_segment, int max_repair_cycles,
                              FullCycleScratch* scratch = nullptr) {
  const bool cache_on =
      cache != nullptr && cache->Ready(session.channel());
  if (!cache_on) {
    return ReceiveFullCycle(session, memory, must_repair, on_segment,
                            max_repair_cycles, scratch);
  }
  const broadcast::BroadcastCycle& cycle = session.cycle();
  const uint32_t num_segments =
      static_cast<uint32_t>(cycle.num_segments());
  bool all_cached = num_segments > 0;
  for (uint32_t si = 0; si < num_segments; ++si) {
    if (!cache->Has(cycle.SegmentStart(si))) {
      all_cached = false;
      break;
    }
  }
  if (all_cached) {
    broadcast::ReceivedSegment replay;
    for (uint32_t si = 0; si < num_segments; ++si) {
      cache->Load(cycle.SegmentStart(si), &replay);
      memory.Charge(replay.payload.size());
      on_segment(replay);
    }
    cache->CountHit(num_segments);
    return Status::OK();
  }
  auto storing = [&](broadcast::ReceivedSegment& seg) {
    if (seg.complete) {
      cache->Store(cycle.SegmentStart(seg.segment_index), seg);
    }
    on_segment(seg);
  };
  return ReceiveFullCycle(session, memory, must_repair, storing,
                          max_repair_cycles, scratch);
}

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_FULL_CYCLE_H_
