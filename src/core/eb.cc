#include "core/eb.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "algo/dijkstra.h"
#include "broadcast/interleave.h"
#include "common/byte_io.h"
#include "core/partial_graph.h"
#include "core/query_scratch.h"
#include "core/region_data.h"
#include "core/repair.h"
#include "core/super_edge.h"
#include "device/memory_tracker.h"
#include "partition/kd_tree.h"

namespace airindex::core {
namespace {

using broadcast::kPayloadSize;
using broadcast::ReceivedSegment;

uint32_t PayloadPackets(size_t bytes) {
  return bytes == 0 ? 1
                    : static_cast<uint32_t>((bytes + kPayloadSize - 1) /
                                            kPayloadSize);
}

/// Re-listens to the given still-missing packets of an index segment at
/// another copy located at `copy_start` (copies are byte-identical).
void RepairIndexPackets(broadcast::ClientSession& session,
                        uint32_t copy_start,
                        const std::vector<uint32_t>& seqs,
                        ReceivedSegment* seg) {
  const uint32_t total = session.cycle().total_packets();
  for (uint32_t seq : seqs) {
    if (seg->packet_ok[seq]) continue;
    session.SleepUntilCyclePos((copy_start + seq) % total);
    auto view = session.ReceiveNext();
    if (!view.has_value()) continue;
    seg->packet_ok[seq] = true;
    std::memcpy(seg->payload.data() +
                    static_cast<size_t>(seq) * kPayloadSize,
                view->chunk.data(), view->chunk.size());
  }
  seg->complete = std::all_of(seg->packet_ok.begin(), seg->packet_ok.end(),
                              [](bool b) { return b; });
}

/// Packets covering the needed byte ranges that are still missing.
std::vector<uint32_t> MissingNeededPackets(
    const ReceivedSegment& seg,
    const std::vector<std::pair<size_t, size_t>>& ranges) {
  std::vector<uint32_t> missing;
  for (auto [begin, end] : ranges) {
    end = std::min(end, seg.payload.size());
    if (begin >= end) continue;
    const uint32_t first = static_cast<uint32_t>(begin / kPayloadSize);
    const uint32_t last = static_cast<uint32_t>((end - 1) / kPayloadSize);
    for (uint32_t p = first; p <= last && p < seg.packet_ok.size(); ++p) {
      if (!seg.packet_ok[p]) missing.push_back(p);
    }
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  return missing;
}

}  // namespace

Result<std::unique_ptr<EbSystem>> EbSystem::Build(const graph::Graph& g,
                                                  uint32_t num_regions,
                                                  const BuildConfig& config) {
  AIRINDEX_ASSIGN_OR_RETURN(
      auto kd, partition::KdTreePartitioner::Build(g, num_regions));
  AIRINDEX_ASSIGN_OR_RETURN(
      auto pre, ComputeBorderPrecompute(g, kd.Partition(g),
                                        config.precompute_threads));
  return BuildFromPrecompute(g, pre, config);
}

Result<std::unique_ptr<EbSystem>> EbSystem::BuildFromPrecompute(
    const graph::Graph& g, const BorderPrecompute& pre,
    const BuildConfig& config) {
  const uint32_t R = pre.num_regions;
  auto sys = std::unique_ptr<EbSystem>(new EbSystem());
  sys->encoding_ = config.encoding;
  sys->precompute_seconds_ = pre.seconds;

  // Recover the split sequence from the partitioning's kd tree: the
  // partitioner is rebuilt here so EB stays decoupled from how `pre` was
  // produced. (Partition() of the rebuilt tree equals pre.part by
  // construction.)
  AIRINDEX_ASSIGN_OR_RETURN(auto kd,
                            partition::KdTreePartitioner::Build(g, R));

  // --- Region data segments -------------------------------------------
  struct RegionPayloads {
    std::vector<uint8_t> cross;
    std::vector<uint8_t> local;
  };
  std::vector<RegionPayloads> payloads(R);
  for (graph::RegionId r = 0; r < R; ++r) {
    std::vector<graph::NodeId> cross_nodes, local_nodes;
    for (graph::NodeId v : pre.part.region_nodes[r]) {
      (pre.cross_border[v] ? cross_nodes : local_nodes).push_back(v);
    }
    payloads[r].cross = EncodeRegionData(g, pre.borders.region_border[r],
                                         cross_nodes, config.encoding);
    if (!local_nodes.empty()) {
      payloads[r].local = EncodeRegionData(g, {}, local_nodes,
                                           config.encoding);
    }
  }

  uint32_t data_packets = 0;
  for (const auto& p : payloads) {
    data_packets += PayloadPackets(p.cross.size());
    if (!p.local.empty()) data_packets += PayloadPackets(p.local.size());
  }

  // --- (1,m) interleaving ----------------------------------------------
  // Index size depends (weakly, via the copy list) on m; one fixed-point
  // round suffices.
  uint32_t m = 1;
  uint32_t index_packets = PayloadPackets(EbIndex::EncodedBytes(R, 1));
  for (int iter = 0; iter < 3; ++iter) {
    m = broadcast::OptimalInterleaving(data_packets, index_packets);
    index_packets = PayloadPackets(EbIndex::EncodedBytes(R, m));
  }
  sys->interleaving_m_ = m;

  // --- Layout: index copies forced between regions ----------------------
  // Greedy: place a copy before region r whenever ~data_packets/m data
  // packets have passed since the last copy.
  std::vector<uint8_t> copy_before(R, 0);
  copy_before[0] = 1;
  {
    const double spacing =
        static_cast<double>(data_packets) / static_cast<double>(m);
    double acc = 0;
    uint32_t copies = 1;
    for (graph::RegionId r = 0; r < R; ++r) {
      if (r != 0 && acc >= spacing && copies < m) {
        copy_before[r] = 1;
        ++copies;
        acc = 0;
      }
      acc += PayloadPackets(payloads[r].cross.size());
      if (!payloads[r].local.empty()) {
        acc += PayloadPackets(payloads[r].local.size());
      }
    }
    m = copies;  // actual number of copies laid out
  }

  // --- Compute final positions ------------------------------------------
  EbIndex index;
  index.num_regions = R;
  index.num_nodes = static_cast<uint32_t>(g.num_nodes());
  index.splits = kd.splits_bfs();
  index.min_rr = pre.min_rr;
  index.max_rr = pre.max_rr;
  index.dir.resize(R);
  index_packets = PayloadPackets(EbIndex::EncodedBytes(R, m));

  uint32_t pos = 0;
  for (graph::RegionId r = 0; r < R; ++r) {
    if (copy_before[r]) {
      index.copy_starts.push_back(pos);
      pos += index_packets;
    }
    index.dir[r].cross_start = pos;
    index.dir[r].cross_packets = PayloadPackets(payloads[r].cross.size());
    pos += index.dir[r].cross_packets;
    if (!payloads[r].local.empty()) {
      index.dir[r].local_start = pos;
      index.dir[r].local_packets = PayloadPackets(payloads[r].local.size());
      pos += index.dir[r].local_packets;
    } else {
      index.dir[r].local_start = 0;
      index.dir[r].local_packets = 0;
    }
  }

  // --- Assemble ----------------------------------------------------------
  std::vector<uint8_t> index_payload = index.Encode();
  if (PayloadPackets(index_payload.size()) != index_packets) {
    return Status::Internal("EB index size drifted during layout");
  }
  broadcast::CycleBuilder builder;
  uint32_t copy_id = 0;
  for (graph::RegionId r = 0; r < R; ++r) {
    if (copy_before[r]) {
      broadcast::Segment seg;
      seg.type = broadcast::SegmentType::kGlobalIndex;
      seg.id = copy_id++;
      seg.is_index = true;
      seg.payload = index_payload;
      builder.Add(std::move(seg));
    }
    broadcast::Segment cross;
    cross.type = broadcast::SegmentType::kNetworkData;
    cross.id = r;
    cross.payload = std::move(payloads[r].cross);
    builder.Add(std::move(cross));
    if (!payloads[r].local.empty()) {
      broadcast::Segment local;
      local.type = broadcast::SegmentType::kNetworkData;
      local.id = r;
      local.payload = std::move(payloads[r].local);
      builder.Add(std::move(local));
    }
  }
  sys->index_ = std::move(index);
  AIRINDEX_ASSIGN_OR_RETURN(sys->cycle_, std::move(builder).Finalize());
  return sys;
}

device::QueryMetrics EbSystem::RunQuery(
    const broadcast::BroadcastChannel& channel, const AirQuery& query,
    const ClientOptions& options, QueryScratch* scratch) const {
  device::QueryMetrics metrics;
  device::MemoryTracker memory(options.heap_bytes);
  broadcast::ClientSession session(&channel, StartPosition(channel, query));
  const uint32_t total = cycle_.total_packets();
  double cpu_ms = 0.0;

  std::optional<QueryScratch> local_scratch;
  QueryScratch& s =
      scratch != nullptr ? *scratch : local_scratch.emplace();
  s.BeginQuery();
  s.session.BeginQueryStats();
  const bool cache_on = s.session.Ready(channel);

  // --- 1. Find and receive the next index copy (tuning in right at an
  // index start uses that very copy). A warm session skips the probe
  // entirely: the cached index copy stands in for tuning in, so the radio
  // stays asleep until a region the session has not cached. ---------------
  uint32_t index_start = 0;
  ReceivedSegment* index_seg = s.segments.Acquire();
  if (cache_on && s.session.has_index()) {
    index_start = s.session.index_start();
    s.session.LoadIndex(index_seg);
    s.session.CountHit();
  } else {
    bool found = false;
    for (int attempts = 0; attempts < 64 && !found; ++attempts) {
      auto view = session.ReceiveNext();
      if (!view.has_value()) continue;
      found = true;
      if (view->next_index_offset == 0 && view->seq == 0) {
        index_start = view->cycle_pos;
        broadcast::CompleteSegmentFrom(session, *view, index_seg);
      } else {
        index_start = broadcast::NextIndexTarget(session, *view);
        broadcast::ReceiveSegmentAt(session, index_start, index_seg);
      }
    }
    if (!found) return metrics;  // channel effectively dead
    if (cache_on) s.session.StoreIndex(index_start, *index_seg);
  }
  memory.Charge(index_seg->payload.size());

  // --- 2. Make sure the needed index bytes arrived (§6.2) ---------------
  // Region mapping first: header + splits live at the payload front; the
  // needed matrix row/column depends on Rs/Rt which need the splits.
  auto ensure_ranges =
      [&](const std::vector<std::pair<size_t, size_t>>& ranges) -> bool {
    for (int attempt = 0; attempt <= options.max_repair_cycles; ++attempt) {
      std::vector<uint32_t> missing =
          MissingNeededPackets(*index_seg, ranges);
      if (missing.empty()) return true;
      // Prefer the next copy if we already know the copy list; fall back to
      // this copy next cycle.
      uint32_t repair_start = index_start;
      auto decoded = EbIndex::Decode(index_seg->payload);
      if (decoded.ok() && !decoded->copy_starts.empty()) {
        const auto& copies = decoded->copy_starts;
        const uint32_t cur = session.cycle_pos();
        uint32_t best = copies.front();
        uint32_t best_ahead = UINT32_MAX;
        for (uint32_t c : copies) {
          const uint32_t first_missing = (c + missing.front()) % total;
          const uint32_t ahead = first_missing >= cur
                                     ? first_missing - cur
                                     : first_missing + total - cur;
          if (ahead < best_ahead) {
            best_ahead = ahead;
            best = c;
          }
        }
        repair_start = best;
      }
      RepairIndexPackets(session, repair_start, missing, index_seg);
    }
    return MissingNeededPackets(*index_seg, ranges).empty();
  };

  if (!ensure_ranges({{0, index_seg->payload.size() < 6
                              ? index_seg->payload.size()
                              : 6}})) {
    return metrics;
  }
  const uint32_t R =
      index_seg->payload.size() >= 2 ? GetU16(index_seg->payload.data()) : 0;
  if (R < 2) return metrics;
  // Header + splits.
  if (!ensure_ranges({{0, 6 + (static_cast<size_t>(R) - 1) * 8}})) {
    return metrics;
  }

  device::Stopwatch sw_map;
  if (!EbIndex::Decode(index_seg->payload, &s.eb_index).ok()) {
    return metrics;
  }
  auto kd = partition::KdTreePartitioner::FromSplits(s.eb_index.splits);
  if (!kd.ok()) return metrics;
  const graph::RegionId rs = kd->RegionOf(query.source_coord);
  const graph::RegionId rt = kd->RegionOf(query.target_coord);
  cpu_ms += sw_map.ElapsedMs();

  if (!ensure_ranges(EbIndex::NeededByteRanges(R, rs, rt))) return metrics;

  device::Stopwatch sw_prune;
  // Re-decode: ensure_ranges may have repaired matrix bytes since the
  // header decode above. The scratch index's storage is reused.
  if (!EbIndex::Decode(index_seg->payload, &s.eb_index).ok()) {
    return metrics;
  }
  // Persist any bytes the repair passes filled in, so the next query of
  // the session starts from the most complete copy seen so far.
  if (cache_on) s.session.UpdateIndex(*index_seg);
  const EbIndex& index = s.eb_index;

  // --- 3. Elliptic pruning (§4.2) ---------------------------------------
  const graph::Dist ub = index.MaxDist(rs, rt);
  std::vector<graph::RegionId>& needed = s.needed_regions;
  needed.clear();
  for (graph::RegionId r = 0; r < R; ++r) {
    if (r == rs || r == rt) {
      needed.push_back(r);
      continue;
    }
    const graph::Dist a = index.MinDist(rs, r);
    const graph::Dist b = index.MinDist(r, rt);
    if (a != graph::kInfDist && b != graph::kInfDist && ub != graph::kInfDist &&
        a + b <= ub) {
      needed.push_back(r);
    }
  }
  cpu_ms += sw_prune.ElapsedMs();

  // --- 4. Receive needed regions in broadcast order ---------------------
  std::sort(needed.begin(), needed.end(),
            [&](graph::RegionId a, graph::RegionId b) {
              const uint32_t cur = session.cycle_pos();
              auto ahead = [&](graph::RegionId r) {
                const uint32_t st = index.dir[r].cross_start;
                return st >= cur ? st - cur : st + total - cur;
              };
              return ahead(a) < ahead(b);
            });

  PartialGraph& pg = s.partial_graph;
  SuperEdgeProcessor super(query.source, query.target);
  size_t super_mem = 0;

  auto ingest_region = [&](ReceivedSegment& cross, ReceivedSegment* local,
                           bool has_local) {
    device::Stopwatch sw;
    if (options.memory_bound) {
      // §6.1: collapse into super-edges, drop the region data.
      auto cross_data = DecodeRegionData(cross.payload, encoding_);
      if (!cross_data.ok()) return;
      RegionData region = std::move(cross_data).value();
      if (has_local) {
        auto local_data = DecodeRegionData(local->payload, encoding_);
        if (local_data.ok()) {
          for (auto& rec : local_data->records) {
            region.records.push_back(std::move(rec));
          }
        }
      }
      const size_t decoded =
          region.records.size() * 24 + region.border.size() * 4;
      memory.Charge(decoded);
      super.AddRegion(region);
      memory.Release(decoded);
      memory.Release(super_mem);
      super_mem = super.MemoryBytes();
      memory.Charge(super_mem);
    } else {
      // Allocation-free path: validate (all-or-nothing, like the old
      // wholesale decode) and stream records straight into the pool.
      const bool cross_valid = MemoValidate(s.decode_cache, cross, [&] {
        return ValidateRegionData(cross.payload, encoding_).ok();
      });
      if (!cross_valid) return;
      const size_t before = pg.MemoryBytes();
      RegionDataView view(cross.payload, encoding_);
      auto cursor = view.records();
      while (cursor.Next(&s.record)) pg.AddRecord(s.record);
      const bool local_valid =
          has_local && MemoValidate(s.decode_cache, *local, [&] {
            return ValidateRegionData(local->payload, encoding_).ok();
          });
      if (local_valid) {
        RegionDataView local_view(local->payload, encoding_);
        auto local_cursor = local_view.records();
        while (local_cursor.Next(&s.record)) pg.AddRecord(s.record);
      }
      memory.Charge(pg.MemoryBytes() - before);
    }
    memory.Release(cross.payload.size());
    if (has_local) memory.Release(local->payload.size());
    ++metrics.regions_received;
    cpu_ms += sw.ElapsedMs();
  };

  // One pass over the cycle collects every needed region; segments with
  // lost packets are stashed and repaired together in per-cycle sweeps
  // (§6.2 — one extra cycle fixes all damaged regions, not one region per
  // cycle).
  struct StashedRegion {
    ReceivedSegment* cross = nullptr;
    ReceivedSegment* local = nullptr;
    bool want_local = false;
    uint32_t cross_start = 0;
    uint32_t local_start = 0;
  };
  std::vector<StashedRegion> stash;  // loss path only; empty => no alloc
  for (graph::RegionId r : needed) {
    const EbIndex::RegionDir& d = index.dir[r];
    ReceivedSegment* cross = s.segments.Acquire();
    const bool cross_cached =
        cache_on && s.session.Load(d.cross_start, cross);
    if (cross_cached) {
      s.session.CountHit();
    } else {
      broadcast::ReceiveSegmentAt(session, d.cross_start, cross);
    }
    memory.Charge(cross->payload.size());
    const bool want_local =
        d.local_packets > 0 &&
        (r == rs || r == rt || !options.cross_border_opt);
    ReceivedSegment* local = nullptr;
    bool local_cached = false;
    if (want_local) {
      local = s.segments.Acquire();
      local_cached = cache_on && s.session.Load(d.local_start, local);
      if (local_cached) {
        s.session.CountHit();
      } else {
        broadcast::ReceiveSegmentAt(session, d.local_start, local);
      }
      memory.Charge(local->payload.size());
    }
    if (cross->complete && (!want_local || local->complete)) {
      if (cache_on && !cross_cached) s.session.Store(d.cross_start, *cross);
      if (cache_on && want_local && !local_cached) {
        s.session.Store(d.local_start, *local);
      }
      ingest_region(*cross, local, want_local);
      s.segments.Recycle(cross);
      if (local != nullptr) s.segments.Recycle(local);
    } else {
      stash.push_back({cross, local, want_local, d.cross_start,
                       d.local_start});
    }
  }
  if (!stash.empty()) {
    std::vector<PendingRepair> pending;
    for (auto& st : stash) {
      if (!st.cross->complete) {
        pending.push_back({st.cross_start, st.cross});
      }
      if (st.want_local && !st.local->complete) {
        pending.push_back({st.local_start, st.local});
      }
    }
    RepairAllSegments(session, pending, options.max_repair_cycles);
    for (auto& st : stash) {
      if (cache_on) {
        // Store() keeps only segments the repairs completed.
        s.session.Store(st.cross_start, *st.cross);
        if (st.want_local) s.session.Store(st.local_start, *st.local);
      }
      ingest_region(*st.cross, st.local, st.want_local);
    }
  }

  // --- 5. Local search ----------------------------------------------------
  device::Stopwatch sw_search;
  graph::Dist dist = graph::kInfDist;
  if (options.memory_bound) {
    dist = super.Solve();
  } else {
    algo::DijkstraSearch(pg, query.source, query.target,
                         KnownEdgeFilter{&pg}, s.search);
    dist = s.search.DistTo(query.target);
  }
  cpu_ms += sw_search.ElapsedMs();

  metrics.tuning_packets = session.tuned_packets();
  metrics.latency_packets = session.latency_packets();
  metrics.wait_packets = session.wait_packets();
  metrics.corrupted_packets = session.corrupted_packets();
  metrics.fec_recovered = session.fec_recovered();
  metrics.wait_slots = session.wait_slots();
  metrics.latency_slots = session.latency_slots();
  metrics.peak_memory_bytes = memory.peak();
  metrics.memory_exceeded = memory.exceeded();
  metrics.cpu_ms = cpu_ms;
  metrics.cache_hits = s.session.query_hits();
  metrics.warm = metrics.cache_hits > 0;
  metrics.distance = dist;
  metrics.ok = dist != graph::kInfDist;
  return metrics;
}

}  // namespace airindex::core
