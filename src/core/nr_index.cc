#include "core/nr_index.h"

#include <bit>

#include "common/byte_io.h"

namespace airindex::core {

size_t NrIndex::EncodedBytes(uint32_t num_regions) {
  return HeaderBytes(num_regions) +
         static_cast<size_t>(num_regions) * num_regions +
         static_cast<size_t>(num_regions) * 8;
}

std::vector<uint8_t> NrIndex::Encode() const {
  std::vector<uint8_t> out;
  out.reserve(EncodedBytes(num_regions));
  PutU16(&out, static_cast<uint16_t>(num_regions));
  PutU32(&out, num_nodes);
  PutU16(&out, static_cast<uint16_t>(region_id));
  for (double s : splits) PutU64(&out, std::bit_cast<uint64_t>(s));
  out.insert(out.end(), next_region.begin(), next_region.end());
  for (const RegionGeometry& g : geometry) {
    PutU32(&out, g.cross_start);
    PutU16(&out, g.cross_packets);
    PutU16(&out, g.local_packets);
  }
  return out;
}

Status NrIndex::Decode(const std::vector<uint8_t>& payload, NrIndex* out) {
  if (payload.size() < 8) return Status::DataLoss("truncated NR index");
  out->num_regions = GetU16(payload.data());
  out->num_nodes = GetU32(payload.data() + 2);
  out->region_id = GetU16(payload.data() + 6);
  if (out->num_regions < 2 || out->num_regions > 256 ||
      payload.size() < EncodedBytes(out->num_regions)) {
    return Status::DataLoss("NR index payload size mismatch");
  }
  ByteReader reader(payload);
  reader.Skip(8);
  out->splits.clear();
  out->splits.reserve(out->num_regions - 1);
  for (uint32_t i = 0; i + 1 < out->num_regions; ++i) {
    out->splits.push_back(std::bit_cast<double>(reader.ReadU64()));
  }
  const size_t cells = static_cast<size_t>(out->num_regions) *
                       out->num_regions;
  out->next_region.assign(payload.begin() + reader.position(),
                          payload.begin() + reader.position() + cells);
  reader.Skip(cells);
  out->geometry.resize(out->num_regions);
  for (auto& g : out->geometry) {
    g.cross_start = reader.ReadU32();
    g.cross_packets = reader.ReadU16();
    g.local_packets = reader.ReadU16();
  }
  return Status::OK();
}

Result<NrIndex> NrIndex::Decode(const std::vector<uint8_t>& payload) {
  NrIndex idx;
  AIRINDEX_RETURN_IF_ERROR(Decode(payload, &idx));
  return idx;
}

std::pair<size_t, size_t> NrIndex::SplitsRange(uint32_t num_regions) {
  return {0, HeaderBytes(num_regions)};
}

std::pair<size_t, size_t> NrIndex::CellRange(uint32_t num_regions,
                                             graph::RegionId rs,
                                             graph::RegionId rt) {
  const size_t off = HeaderBytes(num_regions) +
                     static_cast<size_t>(rs) * num_regions + rt;
  return {off, off + 1};
}

std::pair<size_t, size_t> NrIndex::PositionRange(uint32_t num_regions,
                                                 graph::RegionId r) {
  const size_t off = HeaderBytes(num_regions) +
                     static_cast<size_t>(num_regions) * num_regions +
                     static_cast<size_t>(r) * 8;
  return {off, off + 8};
}

}  // namespace airindex::core
