#ifndef AIRINDEX_CORE_SESSION_CACHE_H_
#define AIRINDEX_CORE_SESSION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "broadcast/channel.h"

namespace airindex::core {

/// Per-client cache of broadcast content that survives across the queries
/// of one session. A persistent client that already heard the index and a
/// handful of region segments should not doze for them again on its next
/// query — the cache keeps
///   * a bounded LRU of fully received segments, keyed by the segment's
///     flat-cycle start packet (the stable identity of a segment within
///     one cycle version), and
///   * a dedicated slot for the client's entry index segment (EB/NR),
///     which may be *incomplete* — the per-packet mask travels with it, so
///     a later query's repair pass can fill the holes on air instead of
///     re-listening from scratch.
///
/// The cache is disabled by default (budget 0): every RunQuery path checks
/// Ready() and falls through to the historical cold behaviour, so clients
/// without sessions are byte-identical to a cache-less build (pinned by
/// the golden test in tests/sim).
///
/// Invalidation: entries are only valid for one (cycle, cycle_version)
/// pair. Ready() rebinds the cache to the channel it is consulted against
/// and clears all content when either the cycle object or the channel's
/// cycle_version changed — a stale entry is never served, which is the
/// hook the live-graph-update path needs (bump the station's version and
/// every session cache drops its world view on next use).
///
/// Single-threaded by design, like the QueryScratch that owns it.
class SessionCache {
 public:
  /// Arms (budget > 0) or disarms (budget == 0) the cache for a new client
  /// session, dropping any previous session's content.
  void BeginSession(size_t budget_bytes);

  bool enabled() const { return budget_bytes_ > 0; }

  /// Binds the cache to `channel`'s cycle + cycle_version, clearing stale
  /// content on any change. Returns enabled() — callers gate every consult
  /// and store on this one check.
  bool Ready(const broadcast::BroadcastChannel& channel);

  // -- segment LRU -------------------------------------------------------

  /// Whether a complete copy of the segment starting at flat-cycle packet
  /// `segment_start` is cached (no recency bump).
  bool Has(uint32_t segment_start) const {
    return map_.find(segment_start) != map_.end();
  }

  /// Cached segment or nullptr; a hit refreshes LRU recency. The pointer
  /// is valid until the next Store/BeginSession/Ready-invalidation.
  const broadcast::ReceivedSegment* Find(uint32_t segment_start);

  /// Copies the cached segment into `*out` (reusing its buffers).
  /// Returns false on miss.
  bool Load(uint32_t segment_start, broadcast::ReceivedSegment* out);

  /// Copies a *complete* segment into the LRU, evicting least-recently
  /// used entries until the payload budget holds it. Incomplete segments
  /// and segments larger than the whole budget are ignored.
  void Store(uint32_t segment_start, const broadcast::ReceivedSegment& seg);

  size_t entry_count() const { return map_.size(); }
  size_t used_bytes() const { return used_bytes_; }

  // -- entry-index slot (EB/NR) -----------------------------------------

  /// Remembers the session's entry index segment (may be incomplete; the
  /// mask is kept so repairs can complete it later). Overwrites.
  void StoreIndex(uint32_t segment_start,
                  const broadcast::ReceivedSegment& seg);

  bool has_index() const { return has_index_; }
  uint32_t index_start() const { return index_start_; }

  /// Copies the remembered index segment into `*out`; false if absent.
  bool LoadIndex(broadcast::ReceivedSegment* out) const;

  /// Re-stores the (possibly repaired) index state after a query.
  void UpdateIndex(const broadcast::ReceivedSegment& seg) {
    if (has_index_) StoreIndex(index_start_, seg);
  }

  // -- per-query stats ---------------------------------------------------

  /// Resets the per-query hit counter (call at RunQuery entry).
  void BeginQueryStats() { query_hits_ = 0; }
  void CountHit(uint64_t n = 1) { query_hits_ += n; }
  /// Segments served from cache during the current query.
  uint64_t query_hits() const { return query_hits_; }

 private:
  struct Entry {
    uint32_t start = 0;
    broadcast::ReceivedSegment seg;
  };

  void ClearContent();
  void EvictToFit(size_t incoming_bytes);

  size_t budget_bytes_ = 0;
  const broadcast::BroadcastCycle* cycle_ = nullptr;
  uint64_t cycle_version_ = 0;
  bool bound_ = false;

  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<uint32_t, std::list<Entry>::iterator> map_;
  size_t used_bytes_ = 0;

  broadcast::ReceivedSegment index_seg_;
  uint32_t index_start_ = 0;
  bool has_index_ = false;

  uint64_t query_hits_ = 0;
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_SESSION_CACHE_H_
