#include "core/dijkstra_on_air.h"

#include <optional>

#include "algo/dijkstra.h"
#include "core/cycle_common.h"
#include "core/full_cycle.h"
#include "core/partial_graph.h"
#include "core/query_scratch.h"
#include "device/memory_tracker.h"

namespace airindex::core {

Result<std::unique_ptr<DijkstraOnAir>> DijkstraOnAir::Build(
    const graph::Graph& g, const BuildConfig& config) {
  auto sys = std::unique_ptr<DijkstraOnAir>(new DijkstraOnAir());
  sys->encoding_ = config.encoding;
  broadcast::CycleBuilder builder;
  AppendNetworkSegments(g, &builder, kNetworkChunkNodes, config.encoding);
  AIRINDEX_ASSIGN_OR_RETURN(sys->cycle_, std::move(builder).Finalize(
                                             /*require_index=*/false));
  return sys;
}

device::QueryMetrics DijkstraOnAir::RunQuery(
    const broadcast::BroadcastChannel& channel, const AirQuery& query,
    const ClientOptions& options, QueryScratch* scratch) const {
  device::QueryMetrics metrics;
  device::MemoryTracker memory(options.heap_bytes);
  broadcast::ClientSession session(&channel, StartPosition(channel, query));

  std::optional<QueryScratch> local;
  QueryScratch& s = scratch != nullptr ? *scratch : local.emplace();
  s.BeginQuery();

  PartialGraph& pg = s.partial_graph;
  s.session.BeginQueryStats();
  double cpu_ms = 0.0;
  Status receive_status = ReceiveFullCycleCached(
      session, memory, &s.session,
      [](const broadcast::ReceivedSegment&) {
        return true;  // all data is adjacency
      },
      [&](broadcast::ReceivedSegment& seg) {
        device::Stopwatch sw;
        const size_t before = pg.MemoryBytes();
        const bool valid = MemoValidate(s.decode_cache, seg, [&] {
          return broadcast::ValidateNodeRecords(seg.payload, encoding_).ok();
        });
        if (valid) {
          broadcast::NodeRecordCursor cursor(seg.payload, encoding_);
          while (cursor.Next(&s.record)) pg.AddRecord(s.record);
        }
        memory.Charge(pg.MemoryBytes() - before);
        memory.Release(seg.payload.size());
        cpu_ms += sw.ElapsedMs();
      },
      options.max_repair_cycles, &s.full_cycle);

  device::Stopwatch sw;
  algo::DijkstraSearch(pg, query.source, query.target, KnownEdgeFilter{&pg},
                       s.search);
  const graph::Dist dist = s.search.DistTo(query.target);
  cpu_ms += sw.ElapsedMs();

  metrics.tuning_packets = session.tuned_packets();
  metrics.latency_packets = session.latency_packets();
  metrics.wait_packets = session.wait_packets();
  metrics.corrupted_packets = session.corrupted_packets();
  metrics.fec_recovered = session.fec_recovered();
  metrics.wait_slots = session.wait_slots();
  metrics.latency_slots = session.latency_slots();
  metrics.peak_memory_bytes = memory.peak();
  metrics.memory_exceeded = memory.exceeded();
  metrics.cpu_ms = cpu_ms;
  metrics.cache_hits = s.session.query_hits();
  metrics.warm = metrics.cache_hits > 0;
  metrics.distance = dist;
  metrics.ok = receive_status.ok() && dist != graph::kInfDist;
  return metrics;
}

}  // namespace airindex::core
