#include "core/dijkstra_on_air.h"

#include "algo/dijkstra.h"
#include "core/cycle_common.h"
#include "core/full_cycle.h"
#include "core/partial_graph.h"
#include "device/memory_tracker.h"

namespace airindex::core {

Result<std::unique_ptr<DijkstraOnAir>> DijkstraOnAir::Build(
    const graph::Graph& g) {
  auto sys = std::unique_ptr<DijkstraOnAir>(new DijkstraOnAir());
  broadcast::CycleBuilder builder;
  AppendNetworkSegments(g, &builder);
  AIRINDEX_ASSIGN_OR_RETURN(sys->cycle_, std::move(builder).Finalize(
                                             /*require_index=*/false));
  return sys;
}

device::QueryMetrics DijkstraOnAir::RunQuery(
    const broadcast::BroadcastChannel& channel, const AirQuery& query,
    const ClientOptions& options) const {
  device::QueryMetrics metrics;
  device::MemoryTracker memory(options.heap_bytes);
  broadcast::ClientSession session(&channel,
                                   TuneInPosition(cycle_, query.tune_phase));

  PartialGraph pg;
  double cpu_ms = 0.0;
  Status receive_status = ReceiveFullCycle(
      session, memory,
      [](broadcast::SegmentType) { return true; },  // all data is adjacency
      [&](broadcast::ReceivedSegment&& seg) {
        device::Stopwatch sw;
        const size_t before = pg.MemoryBytes();
        auto records = broadcast::DecodeNodeRecords(seg.payload);
        if (records.ok()) {
          for (const auto& rec : records.value()) pg.AddRecord(rec);
        }
        memory.Charge(pg.MemoryBytes() - before);
        memory.Release(seg.payload.size());
        cpu_ms += sw.ElapsedMs();
      },
      options.max_repair_cycles);

  device::Stopwatch sw;
  algo::SearchTree tree = algo::DijkstraSearch(
      pg, query.source, query.target, KnownEdgeFilter{&pg});
  graph::Path path = algo::ExtractPath(tree, query.source, query.target);
  cpu_ms += sw.ElapsedMs();

  metrics.tuning_packets = session.tuned_packets();
  metrics.latency_packets = session.latency_packets();
  metrics.peak_memory_bytes = memory.peak();
  metrics.memory_exceeded = memory.exceeded();
  metrics.cpu_ms = cpu_ms;
  metrics.distance = path.dist;
  metrics.ok = receive_status.ok() && path.found();
  return metrics;
}

}  // namespace airindex::core
