#ifndef AIRINDEX_CORE_EB_INDEX_H_
#define AIRINDEX_CORE_EB_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/types.h"

namespace airindex::core {

/// The global index of the Elliptic Boundary method (§4.1), serialized into
/// every index copy of the EB cycle:
///
///   EbIndexPayload :=
///     num_regions:u16  num_nodes:u32                     -- header
///     { split:f64 }^(R-1)                                -- component 1
///     A matrix, (min:u32 max:u32) per ordered pair,      -- component 2
///       packed in kBlockW x kBlockW squares (§6.2: a square intersects the
///       fewest rows/columns among equal-area rectangles, minimizing the
///       chance a lost packet hits the needed row/column)
///     { cross_start:u32 cross_packets:u32                -- component 3
///       local_start:u32 local_packets:u32 }^R               (the paper's
///       appended "offset column", extended with the cross/local split)
///     copy_count:u16 { copy_start:u32 }^copy_count       -- (1,m) copies
///
/// The copy-start list is how a client that lost index packets re-listens
/// to just those packets at the *next* copy instead of waiting a whole
/// cycle (§6.2). u32 distances saturate at 0xFFFFFFFE; 0xFFFFFFFF encodes
/// "no border pair" (kInfDist).
class EbIndex {
 public:
  /// Side of the square cell blocks A is packed into.
  static constexpr uint32_t kBlockW = 3;
  static constexpr uint32_t kInfU32 = 0xFFFFFFFFu;

  struct RegionDir {
    uint32_t cross_start = 0;
    uint32_t cross_packets = 0;
    uint32_t local_start = 0;
    uint32_t local_packets = 0;
  };

  uint32_t num_regions = 0;
  uint32_t num_nodes = 0;
  std::vector<double> splits;
  /// Row-major decoded matrices (kInfDist where absent).
  std::vector<graph::Dist> min_rr;
  std::vector<graph::Dist> max_rr;
  std::vector<RegionDir> dir;
  /// Cycle positions of every index copy, ascending.
  std::vector<uint32_t> copy_starts;

  graph::Dist MinDist(graph::RegionId i, graph::RegionId j) const {
    return min_rr[static_cast<size_t>(i) * num_regions + j];
  }
  graph::Dist MaxDist(graph::RegionId i, graph::RegionId j) const {
    return max_rr[static_cast<size_t>(i) * num_regions + j];
  }

  std::vector<uint8_t> Encode() const;
  static Result<EbIndex> Decode(const std::vector<uint8_t>& payload);
  /// Decode into an existing index, reusing its vector capacity (the
  /// allocation-free client path). `*out` is unspecified on failure.
  static Status Decode(const std::vector<uint8_t>& payload, EbIndex* out);

  /// Serialized size for a given region and copy count (fixed-width
  /// layout).
  static size_t EncodedBytes(uint32_t num_regions, uint32_t num_copies);

  /// Byte offset of cell (i, j) inside the serialized matrix area,
  /// relative to the payload start.
  static size_t CellByteOffset(uint32_t num_regions, graph::RegionId i,
                               graph::RegionId j);

  /// Byte ranges of the payload a client with source region `rs` and
  /// destination region `rt` must have intact: header + splits, the
  /// directory, row `rs` and column `rt` of the matrix (§6.2).
  static std::vector<std::pair<size_t, size_t>> NeededByteRanges(
      uint32_t num_regions, graph::RegionId rs, graph::RegionId rt);

 private:
  static size_t HeaderBytes(uint32_t num_regions) {
    return 6 + (static_cast<size_t>(num_regions) - 1) * 8;
  }
  static size_t MatrixBytes(uint32_t num_regions) {
    return static_cast<size_t>(num_regions) * num_regions * 8;
  }
};

}  // namespace airindex::core

#endif  // AIRINDEX_CORE_EB_INDEX_H_
