#include "core/air_system.h"

namespace airindex::core {

AirQuery MakeAirQuery(const graph::Graph& g, const workload::Query& q) {
  AirQuery aq;
  aq.source = q.source;
  aq.target = q.target;
  aq.source_coord = g.Coord(q.source);
  aq.target_coord = g.Coord(q.target);
  aq.tune_phase = q.tune_phase;
  return aq;
}

}  // namespace airindex::core
