#include "core/border_precompute.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <mutex>

#include "algo/dijkstra.h"
#include "algo/search_workspace.h"
#include "common/thread_pool.h"

namespace airindex::core {

std::vector<graph::RegionId> BorderPrecompute::NeededRegions(
    graph::RegionId i, graph::RegionId j) const {
  std::vector<graph::RegionId> out;
  NeededRegionsInto(i, j, &out);
  return out;
}

void BorderPrecompute::NeededRegionsInto(
    graph::RegionId i, graph::RegionId j,
    std::vector<graph::RegionId>* out) const {
  out->clear();
  const size_t words = words_per_pair();
  const uint64_t* mask =
      traversed.data() + (static_cast<size_t>(i) * num_regions + j) * words;
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = mask[w];
    // Endpoint regions are always needed, whether or not a recorded path
    // touches them.
    if (i / 64 == w) bits |= uint64_t{1} << (i % 64);
    if (j / 64 == w) bits |= uint64_t{1} << (j % 64);
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      out->push_back(static_cast<graph::RegionId>(w * 64 + bit));
      bits &= bits - 1;
    }
  }
}

void BorderPrecompute::NeededRegionsMask(graph::RegionId i, graph::RegionId j,
                                         uint64_t* words) const {
  const size_t n = words_per_pair();
  const uint64_t* mask =
      traversed.data() + (static_cast<size_t>(i) * num_regions + j) * n;
  std::copy(mask, mask + n, words);
  words[i / 64] |= uint64_t{1} << (i % 64);
  words[j / 64] |= uint64_t{1} << (j % 64);
}

Result<BorderPrecompute> ComputeBorderPrecompute(
    const graph::Graph& g, partition::Partitioning part,
    unsigned num_threads) {
  if (part.node_region.size() != g.num_nodes()) {
    return Status::InvalidArgument("partitioning does not match graph");
  }
  const auto start = std::chrono::steady_clock::now();

  BorderPrecompute pre;
  pre.num_regions = part.num_regions;
  pre.part = std::move(part);
  pre.borders = partition::ComputeBorders(g, pre.part);

  const uint32_t R = pre.num_regions;
  const size_t words = pre.words_per_pair();
  pre.min_rr.assign(static_cast<size_t>(R) * R, graph::kInfDist);
  pre.max_rr.assign(static_cast<size_t>(R) * R, 0);
  pre.traversed.assign(static_cast<size_t>(R) * R * words, 0);
  pre.cross_border.assign(g.num_nodes(), 0);

  const std::vector<graph::NodeId>& B = pre.borders.border_nodes;
  std::mutex merge_mu;

  // One search workspace + one set of row accumulators per worker thread,
  // reused across every source the worker claims: the border-pair stage
  // runs |B| single-source searches, so the per-search O(n) allocate/
  // zero-fill it used to pay dominated server pre-computation. Sources are
  // claimed as chunks of kSourceChunk from a shared atomic cursor (work
  // stealing) rather than a static per-worker slice: per-source cost is
  // heavily skewed (dense downtown regions cost far more than rural ones),
  // and under a static split the unlucky worker serialized the tail of the
  // build. Merging is commutative (min/max/or), so results are
  // byte-identical regardless of which worker ran which source — pinned by
  // core.precompute_parallel_test.
  constexpr size_t kSourceChunk = 64;
  struct WorkerState {
    algo::SearchWorkspace ws;
    std::vector<graph::Dist> row_min;
    std::vector<graph::Dist> row_max;
    std::vector<uint64_t> row_masks;
    std::vector<graph::NodeId> marked;
  };
  std::vector<WorkerState> workers(ResolveWorkers(B.size(), num_threads));

  ParallelForChunked(
      B.size(), kSourceChunk,
      [&](unsigned worker, size_t begin, size_t end) {
        WorkerState& state = workers[worker];
        for (size_t bi = begin; bi < end; ++bi) {
          const graph::NodeId b = B[bi];
          const graph::RegionId rb = pre.part.node_region[b];
          algo::DijkstraToTargets(g, b, B, state.ws);

          // Per-source accumulators for row rb.
          std::vector<graph::Dist>& row_min = state.row_min;
          std::vector<graph::Dist>& row_max = state.row_max;
          std::vector<uint64_t>& row_masks = state.row_masks;
          std::vector<graph::NodeId>& marked = state.marked;
          row_min.assign(R, graph::kInfDist);
          row_max.assign(R, 0);
          row_masks.assign(static_cast<size_t>(R) * words, 0);
          marked.clear();

          for (graph::NodeId b2 : B) {
            const graph::Dist d = state.ws.DistTo(b2);
            if (d == graph::kInfDist) continue;
            const graph::RegionId r2 = pre.part.node_region[b2];
            row_min[r2] = std::min(row_min[r2], d);
            row_max[r2] = std::max(row_max[r2], d);
            // Walk the recorded path b -> b2, collecting traversed regions
            // and (for inter-region pairs per the paper; we include all
            // pairs, a safe superset) marking nodes as cross-border.
            uint64_t* mask =
                row_masks.data() + static_cast<size_t>(r2) * words;
            for (graph::NodeId v = b2; v != graph::kInvalidNode;
                 v = state.ws.ParentOf(v)) {
              const graph::RegionId rv = pre.part.node_region[v];
              mask[rv / 64] |= uint64_t{1} << (rv % 64);
              marked.push_back(v);
              if (v == b) break;
            }
          }

          std::lock_guard<std::mutex> lock(merge_mu);
          for (graph::RegionId r2 = 0; r2 < R; ++r2) {
            const size_t cell = static_cast<size_t>(rb) * R + r2;
            pre.min_rr[cell] = std::min(pre.min_rr[cell], row_min[r2]);
            pre.max_rr[cell] = std::max(pre.max_rr[cell], row_max[r2]);
            const size_t base = cell * words;
            for (size_t w = 0; w < words; ++w) {
              pre.traversed[base + w] |=
                  row_masks[static_cast<size_t>(r2) * words + w];
            }
          }
          for (graph::NodeId v : marked) pre.cross_border[v] = 1;
        }
      },
      num_threads);

  pre.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return pre;
}

}  // namespace airindex::core
