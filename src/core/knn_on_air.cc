#include "core/knn_on_air.h"

#include <algorithm>
#include <deque>

#include "algo/dijkstra.h"
#include "core/partial_graph.h"
#include "core/region_data.h"
#include "core/repair.h"
#include "device/memory_tracker.h"
#include "partition/kd_tree.h"

namespace airindex::core {

KnnResult RunKnnQuery(const EbSystem& system,
                      const broadcast::BroadcastChannel& channel,
                      const KnnQuery& query,
                      const std::vector<graph::NodeId>& poi_nodes,
                      const ClientOptions& options) {
  KnnResult result;
  if (query.k == 0) {
    result.metrics.ok = true;
    return result;
  }
  device::MemoryTracker memory(options.heap_bytes);
  const broadcast::BroadcastCycle& cycle = system.cycle();
  broadcast::ClientSession session(&channel,
                                   TuneInPosition(cycle, query.tune_phase));
  double cpu_ms = 0.0;

  // Receive the next index copy.
  uint32_t index_start = 0;
  broadcast::ReceivedSegment index_seg;
  {
    bool found = false;
    for (int attempts = 0; attempts < 64 && !found; ++attempts) {
      auto view = session.ReceiveNext();
      if (!view.has_value()) continue;
      found = true;
      if (view->next_index_offset == 0 && view->seq == 0) {
        index_start = view->cycle_pos;
        index_seg = broadcast::CompleteSegmentFrom(session, *view);
      } else {
        index_start = broadcast::NextIndexTarget(session, *view);
        index_seg = ReceiveSegmentAt(session, index_start);
      }
    }
    if (!found) return result;
  }
  if (!index_seg.complete &&
      !RepairSegment(session, index_start, &index_seg,
                     options.max_repair_cycles)) {
    return result;
  }
  memory.Charge(index_seg.payload.size());

  device::Stopwatch sw_setup;
  auto index_or = EbIndex::Decode(index_seg.payload);
  if (!index_or.ok()) return result;
  const EbIndex index = std::move(index_or).value();
  auto kd = partition::KdTreePartitioner::FromSplits(index.splits);
  if (!kd.ok()) return result;
  const graph::RegionId rs = kd->RegionOf(query.source_coord);
  const uint32_t R = index.num_regions;

  // Regions by ascending minimum network distance from Rs (Rs itself
  // first, at distance 0).
  std::vector<std::pair<graph::Dist, graph::RegionId>> frontier;
  for (graph::RegionId r = 0; r < R; ++r) {
    const graph::Dist d = r == rs ? 0 : index.MinDist(rs, r);
    if (d != graph::kInfDist) frontier.emplace_back(d, r);
  }
  std::sort(frontier.begin(), frontier.end());

  std::vector<uint8_t> is_poi;
  for (graph::NodeId p : poi_nodes) {
    if (p >= is_poi.size()) is_poi.resize(p + 1, 0);
    is_poi[p] = 1;
  }
  cpu_ms += sw_setup.ElapsedMs();

  PartialGraph pg;
  auto receive_region = [&](graph::RegionId r) {
    const EbIndex::RegionDir& d = index.dir[r];
    std::deque<broadcast::ReceivedSegment> segs;
    std::vector<PendingRepair> pending;
    for (int part = 0; part < (d.local_packets > 0 ? 2 : 1); ++part) {
      const uint32_t start = part == 0 ? d.cross_start : d.local_start;
      segs.push_back(ReceiveSegmentAt(session, start));
      memory.Charge(segs.back().payload.size());
      if (!segs.back().complete) pending.push_back({start, &segs.back()});
    }
    if (!pending.empty()) {
      RepairAllSegments(session, pending, options.max_repair_cycles);
    }
    device::Stopwatch sw;
    for (auto& seg : segs) {
      auto data = DecodeRegionData(seg.payload);
      if (data.ok()) {
        const size_t before = pg.MemoryBytes();
        for (const auto& rec : data->records) pg.AddRecord(rec);
        memory.Charge(pg.MemoryBytes() - before);
      }
      memory.Release(seg.payload.size());
    }
    ++result.metrics.regions_received;
    cpu_ms += sw.ElapsedMs();
  };

  // Incremental expansion: receive the next-closest region, re-evaluate
  // the k-th best POI distance over the received union, stop once the next
  // region cannot possibly improve it.
  auto kth_best = [&]() -> graph::Dist {
    device::Stopwatch sw;
    algo::SearchTree tree = algo::DijkstraSearch(
        pg, query.source, graph::kInvalidNode, KnownEdgeFilter{&pg});
    std::vector<std::pair<graph::Dist, graph::NodeId>> found;
    for (graph::NodeId v = 0;
         v < std::min<size_t>(tree.dist.size(), is_poi.size()); ++v) {
      if (is_poi[v] && tree.dist[v] != graph::kInfDist) {
        found.emplace_back(tree.dist[v], v);
      }
    }
    std::sort(found.begin(), found.end());
    if (found.size() > query.k) found.resize(query.k);
    result.neighbors.clear();
    for (auto [d, v] : found) result.neighbors.emplace_back(v, d);
    cpu_ms += sw.ElapsedMs();
    return found.size() == query.k ? found.back().first : graph::kInfDist;
  };

  graph::Dist bound = graph::kInfDist;
  for (size_t i = 0; i < frontier.size(); ++i) {
    if (frontier[i].first > bound) break;  // no region can improve the kNN
    receive_region(frontier[i].second);
    bound = kth_best();
  }

  result.metrics.tuning_packets = session.tuned_packets();
  result.metrics.latency_packets = session.latency_packets();
  result.metrics.wait_packets = session.wait_packets();
  result.metrics.corrupted_packets = session.corrupted_packets();
  result.metrics.fec_recovered = session.fec_recovered();
  result.metrics.wait_slots = session.wait_slots();
  result.metrics.latency_slots = session.latency_slots();
  result.metrics.peak_memory_bytes = memory.peak();
  result.metrics.memory_exceeded = memory.exceeded();
  result.metrics.cpu_ms = cpu_ms;
  result.metrics.ok = true;
  return result;
}

}  // namespace airindex::core
