#include "core/landmark_on_air.h"

#include <chrono>
#include <optional>

#include "algo/astar.h"
#include "broadcast/packet.h"
#include "common/byte_io.h"
#include "core/cycle_common.h"
#include "core/full_cycle.h"
#include "core/partial_graph.h"
#include "core/query_scratch.h"
#include "device/memory_tracker.h"

namespace airindex::core {
namespace {

/// Aux segment ids: 0 = header (landmark ids), 1+i = i-th distance-vector
/// chunk.
constexpr uint32_t kHeaderSegment = 0;
constexpr uint32_t kVecChunkNodes = 512;
constexpr uint32_t kInfU32 = 0xFFFFFFFFu;

uint32_t SaturateDist(graph::Dist d) {
  return d >= kInfU32 ? kInfU32 : static_cast<uint32_t>(d);
}

graph::Dist Unsaturate(uint32_t v) {
  return v == kInfU32 ? graph::kInfDist : v;
}

}  // namespace

Result<std::unique_ptr<LandmarkOnAir>> LandmarkOnAir::Build(
    const graph::Graph& g, uint32_t num_landmarks, uint64_t seed,
    const BuildConfig& config) {
  auto sys = std::unique_ptr<LandmarkOnAir>(new LandmarkOnAir());
  sys->encoding_ = config.encoding;
  sys->num_nodes_ = static_cast<uint32_t>(g.num_nodes());

  const auto start = std::chrono::steady_clock::now();
  AIRINDEX_ASSIGN_OR_RETURN(
      sys->index_, algo::LandmarkIndex::Build(g, num_landmarks, seed));
  sys->precompute_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const algo::LandmarkIndex& idx = sys->index_;
  const uint32_t k = idx.num_landmarks();
  broadcast::CycleBuilder builder;
  AppendNetworkSegments(g, &builder, kNetworkChunkNodes, config.encoding);

  // Header: landmark count + node count + landmark ids.
  {
    broadcast::Segment seg;
    seg.type = broadcast::SegmentType::kAuxData;
    seg.id = kHeaderSegment;
    PutU16(&seg.payload, static_cast<uint16_t>(k));
    PutU32(&seg.payload, sys->num_nodes_);
    for (graph::NodeId l : idx.landmarks()) PutU32(&seg.payload, l);
    builder.Add(std::move(seg));
  }
  // Distance vectors: per node, k "to" then k "from" u32 values, chunked.
  for (uint32_t first = 0; first < g.num_nodes(); first += kVecChunkNodes) {
    broadcast::Segment seg;
    seg.type = broadcast::SegmentType::kAuxData;
    seg.id = 1 + first / kVecChunkNodes;
    const uint32_t last = std::min<uint32_t>(first + kVecChunkNodes,
                                             static_cast<uint32_t>(
                                                 g.num_nodes()));
    seg.payload.reserve(static_cast<size_t>(last - first) * k * 8);
    for (uint32_t v = first; v < last; ++v) {
      for (uint32_t l = 0; l < k; ++l) {
        PutU32(&seg.payload, SaturateDist(idx.ToLandmark(l, v)));
      }
      for (uint32_t l = 0; l < k; ++l) {
        PutU32(&seg.payload, SaturateDist(idx.FromLandmark(l, v)));
      }
    }
    builder.Add(std::move(seg));
  }
  AIRINDEX_ASSIGN_OR_RETURN(sys->cycle_, std::move(builder).Finalize(
                                             /*require_index=*/false));
  return sys;
}

device::QueryMetrics LandmarkOnAir::RunQuery(
    const broadcast::BroadcastChannel& channel, const AirQuery& query,
    const ClientOptions& options, QueryScratch* scratch) const {
  device::QueryMetrics metrics;
  device::MemoryTracker memory(options.heap_bytes);
  broadcast::ClientSession session(&channel, StartPosition(channel, query));

  std::optional<QueryScratch> local_scratch;
  QueryScratch& s =
      scratch != nullptr ? *scratch : local_scratch.emplace();
  s.BeginQuery();

  PartialGraph& pg = s.partial_graph;
  s.session.BeginQueryStats();
  uint32_t k = 0;
  std::vector<graph::NodeId> landmarks;
  // to_vec[l * n + v] = d(v, L_l); from_vec likewise d(L_l, v).
  std::vector<graph::Dist>& to_vec = s.ld_to;
  std::vector<graph::Dist>& from_vec = s.ld_from;
  to_vec.clear();
  from_vec.clear();
  double cpu_ms = 0.0;

  auto handle_aux = [&](const broadcast::ReceivedSegment& seg) {
    if (seg.segment_id == kHeaderSegment) {
      if (!seg.complete) return;  // no landmarks -> zero bounds
      ByteReader reader(seg.payload);
      k = reader.ReadU16();
      const uint32_t n = reader.ReadU32();
      landmarks.reserve(k);
      for (uint32_t l = 0; l < k; ++l) landmarks.push_back(reader.ReadU32());
      to_vec.assign(static_cast<size_t>(k) * n, graph::kInfDist);
      from_vec.assign(static_cast<size_t>(k) * n, graph::kInfDist);
      memory.Charge(to_vec.size() * 4 * 2);  // client stores u32 vectors
      return;
    }
    if (k == 0) return;  // header lost: vectors unusable (§6.2 fallback)
    const uint32_t first = (seg.segment_id - 1) * kVecChunkNodes;
    const size_t stride = static_cast<size_t>(k) * 8;
    const uint32_t count =
        static_cast<uint32_t>(seg.payload.size() / stride);
    for (uint32_t i = 0; i < count; ++i) {
      const size_t off = i * stride;
      // Skip vectors touched by a lost packet (lower bound falls back to 0).
      if (!seg.RangeOk(off, off + stride)) continue;
      const graph::NodeId v = first + i;
      for (uint32_t l = 0; l < k; ++l) {
        to_vec[static_cast<size_t>(l) * num_nodes_ + v] =
            Unsaturate(GetU32(seg.payload.data() + off + 4 * l));
        from_vec[static_cast<size_t>(l) * num_nodes_ + v] =
            Unsaturate(GetU32(seg.payload.data() + off + 4 * (k + l)));
      }
    }
  };

  Status receive_status = ReceiveFullCycleCached(
      session, memory, &s.session,
      [](const broadcast::ReceivedSegment& seg) {
        // Only adjacency must be complete; lost vectors degrade the bound.
        return seg.type == broadcast::SegmentType::kNetworkData;
      },
      [&](broadcast::ReceivedSegment& seg) {
        device::Stopwatch sw;
        if (seg.type == broadcast::SegmentType::kNetworkData) {
          const size_t before = pg.MemoryBytes();
          const bool valid = MemoValidate(s.decode_cache, seg, [&] {
            return broadcast::ValidateNodeRecords(seg.payload, encoding_)
                .ok();
          });
          if (valid) {
            broadcast::NodeRecordCursor cursor(seg.payload, encoding_);
            while (cursor.Next(&s.record)) pg.AddRecord(s.record);
          }
          memory.Charge(pg.MemoryBytes() - before);
        } else {
          handle_aux(seg);
        }
        memory.Release(seg.payload.size());
        cpu_ms += sw.ElapsedMs();
      },
      options.max_repair_cycles, &s.full_cycle);

  device::Stopwatch sw;
  const graph::NodeId t = query.target;
  auto lower_bound = [&](graph::NodeId v) -> graph::Dist {
    graph::Dist best = 0;
    for (uint32_t l = 0; l < k; ++l) {
      const size_t base = static_cast<size_t>(l) * num_nodes_;
      const graph::Dist v_to = to_vec[base + v];
      const graph::Dist t_to = to_vec[base + t];
      const graph::Dist v_from = from_vec[base + v];
      const graph::Dist t_from = from_vec[base + t];
      if (v_to != graph::kInfDist && t_to != graph::kInfDist && v_to > t_to) {
        best = std::max(best, v_to - t_to);
      }
      if (v_from != graph::kInfDist && t_from != graph::kInfDist &&
          t_from > v_from) {
        best = std::max(best, t_from - v_from);
      }
    }
    return best;
  };
  algo::AStarSearch(pg, query.source, query.target, lower_bound, s.search);
  const graph::Dist dist = s.search.DistTo(query.target);
  cpu_ms += sw.ElapsedMs();

  metrics.tuning_packets = session.tuned_packets();
  metrics.latency_packets = session.latency_packets();
  metrics.wait_packets = session.wait_packets();
  metrics.corrupted_packets = session.corrupted_packets();
  metrics.fec_recovered = session.fec_recovered();
  metrics.wait_slots = session.wait_slots();
  metrics.latency_slots = session.latency_slots();
  metrics.peak_memory_bytes = memory.peak();
  metrics.memory_exceeded = memory.exceeded();
  metrics.cpu_ms = cpu_ms;
  metrics.cache_hits = s.session.query_hits();
  metrics.warm = metrics.cache_hits > 0;
  metrics.distance = dist;
  metrics.ok = receive_status.ok() && dist != graph::kInfDist;
  return metrics;
}

}  // namespace airindex::core
