#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace airindex::graph {
namespace {

double Sq(double v) { return v * v; }

double EuclidDist(const Point& a, const Point& b) {
  return std::sqrt(Sq(a.x - b.x) + Sq(a.y - b.y));
}

Weight ToWeight(double d) {
  auto w = static_cast<Weight>(std::llround(d));
  return w == 0 ? 1 : w;
}

/// Union-find over node ids.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
};

/// Spatial hash grid used to find nearest-neighbour candidates in roughly
/// O(1) per query on uniform points.
class PointGrid {
 public:
  PointGrid(const std::vector<Point>& pts, double extent)
      : pts_(pts),
        cells_per_side_(std::max<uint32_t>(
            1, static_cast<uint32_t>(std::sqrt(
                   static_cast<double>(pts.size()) / 2.0)))),
        cell_size_(extent / cells_per_side_) {
    buckets_.resize(static_cast<size_t>(cells_per_side_) * cells_per_side_);
    for (uint32_t i = 0; i < pts.size(); ++i) {
      buckets_[CellOf(pts[i])].push_back(i);
    }
  }

  /// Returns the `k` nearest points to pts_[v] (excluding v itself),
  /// expanding ring-by-ring until enough candidates are found.
  std::vector<uint32_t> KNearest(uint32_t v, uint32_t k) const {
    std::vector<std::pair<double, uint32_t>> found;
    const Point& p = pts_[v];
    const int cx = CellX(p);
    const int cy = CellY(p);
    const int max_ring = static_cast<int>(cells_per_side_);
    for (int ring = 0; ring <= max_ring; ++ring) {
      CollectRing(cx, cy, ring, v, &found);
      // A candidate in ring r is guaranteed closer than anything in ring
      // r+2, so once we have k candidates after scanning one extra ring the
      // k nearest are exact.
      if (found.size() >= k && ring >= 1) break;
    }
    std::sort(found.begin(), found.end());
    if (found.size() > k) found.resize(k);
    std::vector<uint32_t> ids;
    ids.reserve(found.size());
    for (auto& [d, id] : found) ids.push_back(id);
    return ids;
  }

 private:
  size_t CellOf(const Point& p) const {
    return static_cast<size_t>(CellY(p)) * cells_per_side_ + CellX(p);
  }
  int CellX(const Point& p) const {
    return std::min<int>(cells_per_side_ - 1,
                         std::max(0, static_cast<int>(p.x / cell_size_)));
  }
  int CellY(const Point& p) const {
    return std::min<int>(cells_per_side_ - 1,
                         std::max(0, static_cast<int>(p.y / cell_size_)));
  }

  void CollectRing(int cx, int cy, int ring, uint32_t self,
                   std::vector<std::pair<double, uint32_t>>* out) const {
    const int lo_x = cx - ring, hi_x = cx + ring;
    const int lo_y = cy - ring, hi_y = cy + ring;
    for (int y = lo_y; y <= hi_y; ++y) {
      if (y < 0 || y >= static_cast<int>(cells_per_side_)) continue;
      for (int x = lo_x; x <= hi_x; ++x) {
        if (x < 0 || x >= static_cast<int>(cells_per_side_)) continue;
        // Only the border of the ring (interior was collected earlier).
        if (ring > 0 && x != lo_x && x != hi_x && y != lo_y && y != hi_y) {
          continue;
        }
        for (uint32_t id :
             buckets_[static_cast<size_t>(y) * cells_per_side_ + x]) {
          if (id == self) continue;
          out->emplace_back(EuclidDist(pts_[self], pts_[id]), id);
        }
      }
    }
  }

  const std::vector<Point>& pts_;
  uint32_t cells_per_side_;
  double cell_size_;
  std::vector<std::vector<uint32_t>> buckets_;
};

uint64_t UndirectedKey(uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

/// SplitMix64 finalizer: the stateless hash behind the GenSpec generator.
/// Every random quantity is HashMix of a (seed, id) key, so any subset of
/// the graph can be generated independently, in any order, on any thread.
uint64_t HashMix(uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from a hash value.
double HashUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Stream tags keeping node-coordinate and edge-weight hash streams
// disjoint even for overlapping keys.
constexpr uint64_t kCoordStream = 0x636F6F7264ULL;   // "coord"
constexpr uint64_t kWeightStream = 0x7765696768ULL;  // "weigh"

/// Per-edge jittered weight: Euclidean length times `scale`, times a
/// seeded factor in [1 - jitter, 1 + jitter], floored at 1.
Weight JitteredWeight(const Point& a, const Point& b, double scale,
                      double jitter, uint64_t stream_seed, uint64_t key) {
  const double u = HashUnit(HashMix(stream_seed ^ key));
  const double factor = 1.0 + jitter * (2.0 * u - 1.0);
  return ToWeight(EuclidDist(a, b) * scale * factor);
}

}  // namespace

Result<Graph> GenerateRoadNetwork(const GeneratorOptions& options) {
  const uint32_t n = options.num_nodes;
  const uint32_t m = options.num_edges;
  if (n < 2) return Status::InvalidArgument("num_nodes must be > 1");
  if (m < n - 1) {
    return Status::InvalidArgument(
        "num_edges must be >= num_nodes - 1 for a connected network");
  }

  Rng rng(options.seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    p.x = rng.NextDouble() * options.extent;
    p.y = rng.NextDouble() * options.extent;
  }

  PointGrid grid(pts, options.extent);

  // Candidate undirected edges: k nearest neighbours of every node, deduped.
  struct Cand {
    double len;
    uint32_t a, b;
  };
  std::vector<Cand> cands;
  cands.reserve(static_cast<size_t>(n) * options.knn / 2);
  {
    std::unordered_set<uint64_t> seen;
    seen.reserve(static_cast<size_t>(n) * options.knn);
    for (uint32_t v = 0; v < n; ++v) {
      for (uint32_t u : grid.KNearest(v, options.knn)) {
        if (seen.insert(UndirectedKey(v, u)).second) {
          cands.push_back({EuclidDist(pts[v], pts[u]), v, u});
        }
      }
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& x, const Cand& y) { return x.len < y.len; });

  // Kruskal over candidates: short edges first => road-like local links.
  DisjointSets dsu(n);
  std::vector<uint8_t> used(cands.size(), 0);
  std::vector<EdgeTriplet> arcs;
  arcs.reserve(static_cast<size_t>(m) * 2);
  uint32_t picked = 0;
  auto add_edge = [&](uint32_t a, uint32_t b, double len) {
    Weight w = ToWeight(len);
    arcs.push_back({a, b, w});
    arcs.push_back({b, a, w});
    ++picked;
  };

  uint32_t components = n;
  for (size_t i = 0; i < cands.size() && components > 1; ++i) {
    if (dsu.Union(cands[i].a, cands[i].b)) {
      used[i] = 1;
      add_edge(cands[i].a, cands[i].b, cands[i].len);
      --components;
    }
  }

  // kNN graphs on uniform points are almost always connected, but bridge any
  // leftover components explicitly: link each remaining component's first
  // node to its nearest node in the giant component.
  if (components > 1) {
    std::unordered_set<uint64_t> have;
    for (const auto& c : cands) have.insert(UndirectedKey(c.a, c.b));
    uint32_t root0 = dsu.Find(0);
    for (uint32_t v = 0; v < n && components > 1; ++v) {
      if (dsu.Find(v) == root0) continue;
      // Brute-force nearest node of the root component.
      double best = std::numeric_limits<double>::max();
      uint32_t best_u = kInvalidNode;
      for (uint32_t u = 0; u < n; ++u) {
        if (dsu.Find(u) != root0) continue;
        double d = EuclidDist(pts[v], pts[u]);
        if (d < best) {
          best = d;
          best_u = u;
        }
      }
      dsu.Union(v, best_u);
      if (have.insert(UndirectedKey(v, best_u)).second) {
        add_edge(v, best_u, best);
        --components;
      }
    }
  }

  // Fill the remaining budget with the shortest unused candidates.
  for (size_t i = 0; i < cands.size() && picked < m; ++i) {
    if (used[i]) continue;
    used[i] = 1;
    add_edge(cands[i].a, cands[i].b, cands[i].len);
  }
  if (picked < m) {
    return Status::FailedPrecondition(
        "candidate pool exhausted; raise GeneratorOptions::knn for this "
        "edge density");
  }

  return Graph::Build(std::move(pts), arcs);
}

Result<Graph> GenerateRoadNetwork(const GenSpec& spec) {
  const uint32_t n = spec.num_nodes;
  if (n < 2) return Status::InvalidArgument("num_nodes must be > 1");
  if (!(spec.weight_jitter >= 0.0) || spec.weight_jitter >= 1.0) {
    return Status::InvalidArgument("weight_jitter must be in [0, 1)");
  }
  if (!(spec.extent > 0.0)) {
    return Status::InvalidArgument("extent must be positive");
  }
  // Strides are 4^level; cap so the stride fits in 32 bits with room.
  if (spec.highway_levels > 12) {
    return Status::InvalidArgument("highway_levels must be <= 12");
  }

  const uint32_t cols = static_cast<uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const uint32_t rows = (n + cols - 1) / cols;
  const double cell = spec.extent / cols;
  const uint64_t coord_seed = HashMix(spec.seed ^ kCoordStream);
  const uint64_t weight_seed = HashMix(spec.seed ^ kWeightStream);

  // Coordinates: cell centres plus seeded jitter of up to ±0.3 cells, so
  // the layout stays planar-ish (no two nodes swap cells) but weights and
  // kd-tree splits are not degenerate. Pure per-node hash => any thread
  // count yields the same bytes.
  std::vector<Point> pts(n);
  ParallelFor(
      rows,
      [&](size_t r) {
        for (uint32_t c = 0; c < cols; ++c) {
          const uint64_t v = r * cols + c;
          if (v >= n) break;
          const uint64_t h1 = HashMix(coord_seed ^ v);
          const uint64_t h2 = HashMix(h1);
          pts[v] = {(c + 0.5 + 0.6 * (HashUnit(h1) - 0.5)) * cell,
                    (r + 0.5 + 0.6 * (HashUnit(h2) - 0.5)) * cell};
        }
      },
      spec.threads);

  // Edges are generated into per-row buckets (each row's edges are a pure
  // function of the spec) and concatenated in row order, so the arc list —
  // and hence the built CSR — is independent of the thread count.
  std::vector<std::vector<EdgeTriplet>> row_edges(rows);
  ParallelFor(
      rows,
      [&](size_t r) {
        auto& out = row_edges[r];
        auto add_undirected = [&](uint32_t a, uint32_t b, double scale) {
          const Weight w = JitteredWeight(pts[a], pts[b], scale,
                                          spec.weight_jitter, weight_seed,
                                          UndirectedKey(a, b));
          out.push_back({a, b, w});
          out.push_back({b, a, w});
        };
        // Grid base layer: right + down neighbours. The partial last row
        // stays connected through its up-links (row above is full).
        for (uint32_t c = 0; c < cols; ++c) {
          const uint64_t v64 = r * cols + c;
          if (v64 >= n) break;
          const auto v = static_cast<uint32_t>(v64);
          if (c + 1 < cols && v64 + 1 < n) add_undirected(v, v + 1, 1.0);
          if (v64 + cols < n) add_undirected(v, v + cols, 1.0);
        }
        // Highway overlays: level l links every stride-th grid point along
        // rows and columns at stride 4^l, at 0.6x surface weight. Strides
        // differ per level and are always >= 4, so no overlay duplicates a
        // base edge or another overlay.
        for (uint32_t level = 1; level <= spec.highway_levels; ++level) {
          const uint64_t stride = 1ULL << (2 * level);
          if (r % stride != 0) continue;
          for (uint64_t c = 0; c < cols; c += stride) {
            const uint64_t v64 = r * cols + c;
            if (v64 >= n) break;
            const auto v = static_cast<uint32_t>(v64);
            if (c + stride < cols && v64 + stride < n) {
              add_undirected(v, static_cast<uint32_t>(v64 + stride), 0.6);
            }
            const uint64_t down = v64 + stride * cols;
            if (r + stride < rows && down < n) {
              add_undirected(v, static_cast<uint32_t>(down), 0.6);
            }
          }
        }
      },
      spec.threads);

  size_t total = 0;
  for (const auto& re : row_edges) total += re.size();
  std::vector<EdgeTriplet> arcs;
  arcs.reserve(total);
  for (const auto& re : row_edges) {
    arcs.insert(arcs.end(), re.begin(), re.end());
  }
  return Graph::Build(std::move(pts), arcs);
}

}  // namespace airindex::graph
