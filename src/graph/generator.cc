#include "graph/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "common/rng.h"

namespace airindex::graph {
namespace {

double Sq(double v) { return v * v; }

double EuclidDist(const Point& a, const Point& b) {
  return std::sqrt(Sq(a.x - b.x) + Sq(a.y - b.y));
}

Weight ToWeight(double d) {
  auto w = static_cast<Weight>(std::llround(d));
  return w == 0 ? 1 : w;
}

/// Union-find over node ids.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  bool Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    return true;
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
};

/// Spatial hash grid used to find nearest-neighbour candidates in roughly
/// O(1) per query on uniform points.
class PointGrid {
 public:
  PointGrid(const std::vector<Point>& pts, double extent)
      : pts_(pts),
        cells_per_side_(std::max<uint32_t>(
            1, static_cast<uint32_t>(std::sqrt(
                   static_cast<double>(pts.size()) / 2.0)))),
        cell_size_(extent / cells_per_side_) {
    buckets_.resize(static_cast<size_t>(cells_per_side_) * cells_per_side_);
    for (uint32_t i = 0; i < pts.size(); ++i) {
      buckets_[CellOf(pts[i])].push_back(i);
    }
  }

  /// Returns the `k` nearest points to pts_[v] (excluding v itself),
  /// expanding ring-by-ring until enough candidates are found.
  std::vector<uint32_t> KNearest(uint32_t v, uint32_t k) const {
    std::vector<std::pair<double, uint32_t>> found;
    const Point& p = pts_[v];
    const int cx = CellX(p);
    const int cy = CellY(p);
    const int max_ring = static_cast<int>(cells_per_side_);
    for (int ring = 0; ring <= max_ring; ++ring) {
      CollectRing(cx, cy, ring, v, &found);
      // A candidate in ring r is guaranteed closer than anything in ring
      // r+2, so once we have k candidates after scanning one extra ring the
      // k nearest are exact.
      if (found.size() >= k && ring >= 1) break;
    }
    std::sort(found.begin(), found.end());
    if (found.size() > k) found.resize(k);
    std::vector<uint32_t> ids;
    ids.reserve(found.size());
    for (auto& [d, id] : found) ids.push_back(id);
    return ids;
  }

 private:
  size_t CellOf(const Point& p) const {
    return static_cast<size_t>(CellY(p)) * cells_per_side_ + CellX(p);
  }
  int CellX(const Point& p) const {
    return std::min<int>(cells_per_side_ - 1,
                         std::max(0, static_cast<int>(p.x / cell_size_)));
  }
  int CellY(const Point& p) const {
    return std::min<int>(cells_per_side_ - 1,
                         std::max(0, static_cast<int>(p.y / cell_size_)));
  }

  void CollectRing(int cx, int cy, int ring, uint32_t self,
                   std::vector<std::pair<double, uint32_t>>* out) const {
    const int lo_x = cx - ring, hi_x = cx + ring;
    const int lo_y = cy - ring, hi_y = cy + ring;
    for (int y = lo_y; y <= hi_y; ++y) {
      if (y < 0 || y >= static_cast<int>(cells_per_side_)) continue;
      for (int x = lo_x; x <= hi_x; ++x) {
        if (x < 0 || x >= static_cast<int>(cells_per_side_)) continue;
        // Only the border of the ring (interior was collected earlier).
        if (ring > 0 && x != lo_x && x != hi_x && y != lo_y && y != hi_y) {
          continue;
        }
        for (uint32_t id :
             buckets_[static_cast<size_t>(y) * cells_per_side_ + x]) {
          if (id == self) continue;
          out->emplace_back(EuclidDist(pts_[self], pts_[id]), id);
        }
      }
    }
  }

  const std::vector<Point>& pts_;
  uint32_t cells_per_side_;
  double cell_size_;
  std::vector<std::vector<uint32_t>> buckets_;
};

uint64_t UndirectedKey(uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

Result<Graph> GenerateRoadNetwork(const GeneratorOptions& options) {
  const uint32_t n = options.num_nodes;
  const uint32_t m = options.num_edges;
  if (n < 2) return Status::InvalidArgument("num_nodes must be > 1");
  if (m < n - 1) {
    return Status::InvalidArgument(
        "num_edges must be >= num_nodes - 1 for a connected network");
  }

  Rng rng(options.seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    p.x = rng.NextDouble() * options.extent;
    p.y = rng.NextDouble() * options.extent;
  }

  PointGrid grid(pts, options.extent);

  // Candidate undirected edges: k nearest neighbours of every node, deduped.
  struct Cand {
    double len;
    uint32_t a, b;
  };
  std::vector<Cand> cands;
  cands.reserve(static_cast<size_t>(n) * options.knn / 2);
  {
    std::unordered_set<uint64_t> seen;
    seen.reserve(static_cast<size_t>(n) * options.knn);
    for (uint32_t v = 0; v < n; ++v) {
      for (uint32_t u : grid.KNearest(v, options.knn)) {
        if (seen.insert(UndirectedKey(v, u)).second) {
          cands.push_back({EuclidDist(pts[v], pts[u]), v, u});
        }
      }
    }
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& x, const Cand& y) { return x.len < y.len; });

  // Kruskal over candidates: short edges first => road-like local links.
  DisjointSets dsu(n);
  std::vector<uint8_t> used(cands.size(), 0);
  std::vector<EdgeTriplet> arcs;
  arcs.reserve(static_cast<size_t>(m) * 2);
  uint32_t picked = 0;
  auto add_edge = [&](uint32_t a, uint32_t b, double len) {
    Weight w = ToWeight(len);
    arcs.push_back({a, b, w});
    arcs.push_back({b, a, w});
    ++picked;
  };

  uint32_t components = n;
  for (size_t i = 0; i < cands.size() && components > 1; ++i) {
    if (dsu.Union(cands[i].a, cands[i].b)) {
      used[i] = 1;
      add_edge(cands[i].a, cands[i].b, cands[i].len);
      --components;
    }
  }

  // kNN graphs on uniform points are almost always connected, but bridge any
  // leftover components explicitly: link each remaining component's first
  // node to its nearest node in the giant component.
  if (components > 1) {
    std::unordered_set<uint64_t> have;
    for (const auto& c : cands) have.insert(UndirectedKey(c.a, c.b));
    uint32_t root0 = dsu.Find(0);
    for (uint32_t v = 0; v < n && components > 1; ++v) {
      if (dsu.Find(v) == root0) continue;
      // Brute-force nearest node of the root component.
      double best = std::numeric_limits<double>::max();
      uint32_t best_u = kInvalidNode;
      for (uint32_t u = 0; u < n; ++u) {
        if (dsu.Find(u) != root0) continue;
        double d = EuclidDist(pts[v], pts[u]);
        if (d < best) {
          best = d;
          best_u = u;
        }
      }
      dsu.Union(v, best_u);
      if (have.insert(UndirectedKey(v, best_u)).second) {
        add_edge(v, best_u, best);
        --components;
      }
    }
  }

  // Fill the remaining budget with the shortest unused candidates.
  for (size_t i = 0; i < cands.size() && picked < m; ++i) {
    if (used[i]) continue;
    used[i] = 1;
    add_edge(cands[i].a, cands[i].b, cands[i].len);
  }
  if (picked < m) {
    return Status::FailedPrecondition(
        "candidate pool exhausted; raise GeneratorOptions::knn for this "
        "edge density");
  }

  return Graph::Build(std::move(pts), arcs);
}

}  // namespace airindex::graph
