#ifndef AIRINDEX_GRAPH_GENERATOR_H_
#define AIRINDEX_GRAPH_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"

namespace airindex::graph {

/// Parameters for the synthetic road-network generator.
///
/// The paper evaluates on five real road networks that are not
/// redistributable here. The generator produces *planar-style* synthetic
/// replicas with a chosen node count and exact undirected edge count: nodes
/// are uniform random points, a Euclidean minimum-spanning-tree-style
/// backbone guarantees strong connectivity, and the remaining edge budget is
/// filled with the shortest unused nearest-neighbour links. Edge weights are
/// rounded Euclidean lengths, so the triangle-inequality locality that makes
/// road-network pruning work (short detours, metric-ish distances) is
/// preserved. See DESIGN.md §4 (Substitutions).
struct GeneratorOptions {
  /// Number of nodes (> 1).
  uint32_t num_nodes = 1000;
  /// Number of undirected edges; each becomes two directed arcs.
  /// Must satisfy num_edges >= num_nodes - 1.
  uint32_t num_edges = 1200;
  /// PRNG seed; identical options => identical graph.
  uint64_t seed = 1;
  /// Side length of the square the points are drawn from.
  double extent = 100000.0;
  /// Nearest-neighbour candidates considered per node. Larger values allow
  /// denser networks; the default supports m/n ratios up to ~5.
  uint32_t knn = 12;
};

/// Generates a synthetic road network. Guarantees:
///  * exactly options.num_nodes nodes and 2*options.num_edges directed arcs,
///  * strong connectivity,
///  * no self-loops or duplicate undirected edges,
///  * every weight >= 1.
Result<Graph> GenerateRoadNetwork(const GeneratorOptions& options);

/// Parameters for the continental-scale generator (the million-node path).
///
/// Unlike GeneratorOptions (kNN candidates + Kruskal, with hashing and
/// sorting constants that bite at 1e6 nodes), this builds a road-like
/// network directly: a rectangular grid base layer (surface streets) plus
/// `highway_levels` shortcut overlays (level l adds row/column shortcuts of
/// stride 4^l at ~0.6x Euclidean weight — long-haul edges that Dijkstra
/// prefers, like motorways over surface streets). Node coordinates are cell
/// centres with seeded jitter; edge weights are Euclidean lengths scaled by
/// a seeded per-edge factor in [1 - weight_jitter, 1 + weight_jitter].
///
/// Every coordinate and weight is a pure hash of (seed, node/edge id) —
/// never a sequential PRNG draw — so generation parallelises over rows and
/// the result is byte-identical for any thread count.
struct GenSpec {
  /// Number of nodes (> 1). The grid is ceil(sqrt(n)) columns wide; a
  /// partial last row keeps the node count exact.
  uint32_t num_nodes = 1000000;
  /// Hash seed; identical (spec, seed) => byte-identical graph.
  uint64_t seed = 1;
  /// Highway shortcut levels stacked on the grid (0 = pure grid).
  uint32_t highway_levels = 2;
  /// Multiplicative weight jitter amplitude in [0, 1).
  double weight_jitter = 0.25;
  /// Side length of the square covered by the grid.
  double extent = 100000.0;
  /// Generator worker threads (0 = hardware concurrency). Output does not
  /// depend on this.
  unsigned threads = 0;
};

/// Generates a deterministic grid + highway-hierarchy road network.
/// Guarantees the same structural invariants as the GeneratorOptions
/// overload (exact node count, strong connectivity, no self-loops or
/// duplicate undirected edges, weights >= 1) and additionally that the
/// built graph is byte-identical across `threads` values.
Result<Graph> GenerateRoadNetwork(const GenSpec& spec);

}  // namespace airindex::graph

#endif  // AIRINDEX_GRAPH_GENERATOR_H_
