#ifndef AIRINDEX_GRAPH_GENERATOR_H_
#define AIRINDEX_GRAPH_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "graph/graph.h"

namespace airindex::graph {

/// Parameters for the synthetic road-network generator.
///
/// The paper evaluates on five real road networks that are not
/// redistributable here. The generator produces *planar-style* synthetic
/// replicas with a chosen node count and exact undirected edge count: nodes
/// are uniform random points, a Euclidean minimum-spanning-tree-style
/// backbone guarantees strong connectivity, and the remaining edge budget is
/// filled with the shortest unused nearest-neighbour links. Edge weights are
/// rounded Euclidean lengths, so the triangle-inequality locality that makes
/// road-network pruning work (short detours, metric-ish distances) is
/// preserved. See DESIGN.md §4 (Substitutions).
struct GeneratorOptions {
  /// Number of nodes (> 1).
  uint32_t num_nodes = 1000;
  /// Number of undirected edges; each becomes two directed arcs.
  /// Must satisfy num_edges >= num_nodes - 1.
  uint32_t num_edges = 1200;
  /// PRNG seed; identical options => identical graph.
  uint64_t seed = 1;
  /// Side length of the square the points are drawn from.
  double extent = 100000.0;
  /// Nearest-neighbour candidates considered per node. Larger values allow
  /// denser networks; the default supports m/n ratios up to ~5.
  uint32_t knn = 12;
};

/// Generates a synthetic road network. Guarantees:
///  * exactly options.num_nodes nodes and 2*options.num_edges directed arcs,
///  * strong connectivity,
///  * no self-loops or duplicate undirected edges,
///  * every weight >= 1.
Result<Graph> GenerateRoadNetwork(const GeneratorOptions& options);

}  // namespace airindex::graph

#endif  // AIRINDEX_GRAPH_GENERATOR_H_
