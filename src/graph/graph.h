#ifndef AIRINDEX_GRAPH_GRAPH_H_
#define AIRINDEX_GRAPH_GRAPH_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/result.h"
#include "common/status.h"
#include "graph/types.h"

namespace airindex::graph {

/// A directed weighted road network stored in CSR (compressed sparse row)
/// form: contiguous adjacency, O(1) out-edge span per node. Immutable after
/// construction; build via `Graph::Build` or `GraphBuilder`.
///
/// Terminology follows §2.1 of the paper: nodes carry Euclidean coordinates,
/// edges carry a non-negative weight. Road networks in the paper are
/// symmetric (every road usable in both directions), which the generator
/// guarantees, but the class itself supports arbitrary directed graphs.
class Graph {
 public:
  /// One outgoing edge in an adjacency span.
  struct Arc {
    NodeId to;
    Weight weight;
  };

  Graph() = default;
  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// Builds a graph from node coordinates and directed edge triplets.
  /// Rejects out-of-range endpoints and self-loops.
  static Result<Graph> Build(std::vector<Point> coords,
                             const std::vector<EdgeTriplet>& edges);

  size_t num_nodes() const { return coords_.size(); }
  size_t num_arcs() const { return arcs_.size(); }

  /// Outgoing arcs of `v` as a contiguous span.
  std::span<const Arc> OutArcs(NodeId v) const {
    return {arcs_.data() + offsets_[v],
            arcs_.data() + offsets_[v + 1]};
  }

  size_t OutDegree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }

  const Point& Coord(NodeId v) const { return coords_[v]; }
  const std::vector<Point>& coords() const { return coords_; }

  /// The transpose graph (all arcs reversed). Needed by backward searches
  /// (ArcFlag flag computation, Landmark "from" distances).
  Graph Reversed() const;

  /// In-memory footprint in bytes (CSR arrays + coordinates); used by the
  /// device memory model.
  size_t MemoryBytes() const;

  /// True if every node can reach every other node (the catalog generator
  /// guarantees this; loaders verify it before index construction).
  bool IsStronglyConnected() const;

 private:
  // CSR arrays are 64-byte aligned (SoA, one cache line per array start) so
  // sequential arc scans at million-node scale never straddle lines shared
  // with other allocations. Coordinates stay a plain vector: Build moves the
  // caller's vector in without a copy, and coords() exposes it as-is.
  AlignedVector<uint32_t> offsets_;  // size num_nodes()+1
  AlignedVector<Arc> arcs_;
  std::vector<Point> coords_;
};

/// Incremental edge-list builder (convenience wrapper over Graph::Build).
class GraphBuilder {
 public:
  /// Adds a node at the given coordinates, returning its id.
  NodeId AddNode(Point p) {
    coords_.push_back(p);
    return static_cast<NodeId>(coords_.size() - 1);
  }

  /// Adds a directed arc.
  void AddArc(NodeId from, NodeId to, Weight w) {
    edges_.push_back({from, to, w});
  }

  /// Adds both directions (road networks are symmetric in the paper).
  void AddBidirectional(NodeId a, NodeId b, Weight w) {
    AddArc(a, b, w);
    AddArc(b, a, w);
  }

  size_t num_nodes() const { return coords_.size(); }
  size_t num_edges() const { return edges_.size(); }

  Result<Graph> Build() && {
    return Graph::Build(std::move(coords_), edges_);
  }

 private:
  std::vector<Point> coords_;
  std::vector<EdgeTriplet> edges_;
};

}  // namespace airindex::graph

#endif  // AIRINDEX_GRAPH_GRAPH_H_
