#ifndef AIRINDEX_GRAPH_CATALOG_H_
#define AIRINDEX_GRAPH_CATALOG_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace airindex::graph {

/// One entry of the evaluation-network catalog (paper Table 2).
struct NetworkSpec {
  std::string name;
  uint32_t num_nodes;
  /// Undirected edge count as reported by the paper.
  uint32_t num_edges;
  /// Fixed generator seed so every experiment sees the same replica.
  uint64_t seed;
};

/// The five road networks of the paper's evaluation, in Table 2 order:
/// Milan (14021/26849), Germany (28867/30429, the default network),
/// Argentina (85287/88357), India (149566/155483),
/// San Francisco (174956/223001).
const std::vector<NetworkSpec>& PaperNetworks();

/// The paper's default network ("Germany").
const NetworkSpec& DefaultNetwork();

/// Looks a catalog entry up by (case-sensitive) name.
Result<NetworkSpec> FindNetwork(std::string_view name);

/// Generates the synthetic replica of `spec`, optionally scaled down.
/// `scale` multiplies both node and edge counts (edge count floored at
/// nodes-1 so the network stays connected); scale=1.0 reproduces the paper's
/// exact sizes. See DESIGN.md §4 for why synthetic replicas preserve the
/// paper's observable behaviour.
Result<Graph> MakeNetwork(const NetworkSpec& spec, double scale = 1.0);

}  // namespace airindex::graph

#endif  // AIRINDEX_GRAPH_CATALOG_H_
