#include "graph/dimacs.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace airindex::graph {
namespace {

Status ParseError(const std::string& path, size_t line,
                  const std::string& what) {
  std::ostringstream os;
  os << path << ":" << line << ": " << what;
  return Status::IOError(os.str());
}

}  // namespace

Result<Graph> LoadDimacs(const std::string& gr_path,
                         const std::string& co_path) {
  std::ifstream gr(gr_path);
  if (!gr) return Status::IOError("cannot open " + gr_path);
  std::ifstream co(co_path);
  if (!co) return Status::IOError("cannot open " + co_path);

  size_t n = 0, m = 0;
  std::vector<EdgeTriplet> edges;
  std::string line;
  size_t lineno = 0;
  while (std::getline(gr, line)) {
    ++lineno;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream is(line);
    char tag;
    is >> tag;
    if (tag == 'p') {
      std::string sp;
      is >> sp >> n >> m;
      if (!is || sp != "sp") return ParseError(gr_path, lineno, "bad p line");
      edges.reserve(m);
    } else if (tag == 'a') {
      uint64_t from, to, w;
      is >> from >> to >> w;
      if (!is) return ParseError(gr_path, lineno, "bad a line");
      if (from == 0 || to == 0 || from > n || to > n) {
        return ParseError(gr_path, lineno, "node id out of range");
      }
      edges.push_back({static_cast<NodeId>(from - 1),
                       static_cast<NodeId>(to - 1),
                       static_cast<Weight>(w)});
    } else {
      return ParseError(gr_path, lineno, "unknown line tag");
    }
  }
  if (edges.size() != m) {
    return Status::IOError(gr_path + ": arc count does not match header");
  }

  std::vector<Point> coords(n);
  std::vector<uint8_t> have(n, 0);
  lineno = 0;
  while (std::getline(co, line)) {
    ++lineno;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream is(line);
    char tag;
    is >> tag;
    if (tag == 'p') continue;  // "p aux sp co <n>"
    if (tag != 'v') return ParseError(co_path, lineno, "unknown line tag");
    uint64_t id;
    double x, y;
    is >> id >> x >> y;
    if (!is) return ParseError(co_path, lineno, "bad v line");
    if (id == 0 || id > n) {
      return ParseError(co_path, lineno, "node id out of range");
    }
    coords[id - 1] = {x, y};
    have[id - 1] = 1;
  }
  for (size_t v = 0; v < n; ++v) {
    if (!have[v]) {
      return Status::IOError(co_path + ": missing coordinates for node " +
                             std::to_string(v + 1));
    }
  }
  return Graph::Build(std::move(coords), edges);
}

Status SaveDimacs(const Graph& g, const std::string& gr_path,
                  const std::string& co_path) {
  std::ofstream gr(gr_path);
  if (!gr) return Status::IOError("cannot open " + gr_path);
  gr << "c airindex export\n";
  gr << "p sp " << g.num_nodes() << " " << g.num_arcs() << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const auto& a : g.OutArcs(v)) {
      gr << "a " << (v + 1) << " " << (a.to + 1) << " " << a.weight << "\n";
    }
  }
  if (!gr.flush()) return Status::IOError("write failed: " + gr_path);

  std::ofstream co(co_path);
  if (!co) return Status::IOError("cannot open " + co_path);
  co << "c airindex export\n";
  co << "p aux sp co " << g.num_nodes() << "\n";
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Point& p = g.Coord(v);
    co << "v " << (v + 1) << " " << p.x << " " << p.y << "\n";
  }
  if (!co.flush()) return Status::IOError("write failed: " + co_path);
  return Status::OK();
}

}  // namespace airindex::graph
