#include "graph/catalog.h"

#include <algorithm>
#include <cmath>

#include "graph/generator.h"

namespace airindex::graph {

const std::vector<NetworkSpec>& PaperNetworks() {
  static const std::vector<NetworkSpec>& networks =
      *new std::vector<NetworkSpec>{
          {"Milan", 14021, 26849, 0xA11A001},
          {"Germany", 28867, 30429, 0xA11A002},
          {"Argentina", 85287, 88357, 0xA11A003},
          {"India", 149566, 155483, 0xA11A004},
          {"SanFrancisco", 174956, 223001, 0xA11A005},
      };
  return networks;
}

const NetworkSpec& DefaultNetwork() { return PaperNetworks()[1]; }

Result<NetworkSpec> FindNetwork(std::string_view name) {
  for (const auto& spec : PaperNetworks()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("no catalog network named '" + std::string(name) +
                          "'");
}

Result<Graph> MakeNetwork(const NetworkSpec& spec, double scale) {
  if (scale <= 0.0 || scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  GeneratorOptions opts;
  opts.num_nodes = std::max<uint32_t>(
      16, static_cast<uint32_t>(std::llround(spec.num_nodes * scale)));
  opts.num_edges = std::max<uint32_t>(
      opts.num_nodes - 1,
      static_cast<uint32_t>(std::llround(spec.num_edges * scale)));
  opts.seed = spec.seed;
  // Dense networks (Milan, San Francisco have m/n ~ 1.9) need a larger
  // candidate pool.
  opts.knn = 12;
  return GenerateRoadNetwork(opts);
}

}  // namespace airindex::graph
