#ifndef AIRINDEX_GRAPH_TYPES_H_
#define AIRINDEX_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace airindex::graph {

/// Node identifier: dense 0-based index into the graph.
using NodeId = uint32_t;
/// Region identifier assigned by a partitioner (paper's R1..Rn, 0-based).
using RegionId = uint32_t;
/// Weight of a single edge (length / travel time / toll; §2.1).
using Weight = uint32_t;
/// Accumulated shortest-path distance. 64-bit so sums can never overflow.
using Dist = uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr RegionId kInvalidRegion =
    std::numeric_limits<RegionId>::max();
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max();

/// Euclidean coordinates of a network node (paper's <id, x, y>).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// A directed edge as supplied to the graph builder (paper's <id_i, id_j,
/// w_ij> triplet).
struct EdgeTriplet {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Weight weight = 0;
};

/// A shortest path: node sequence from source to target (inclusive) plus its
/// total graph distance. An empty `nodes` with `dist == kInfDist` means
/// "unreachable".
struct Path {
  std::vector<NodeId> nodes;
  Dist dist = kInfDist;

  bool found() const { return dist != kInfDist; }
};

}  // namespace airindex::graph

#endif  // AIRINDEX_GRAPH_TYPES_H_
