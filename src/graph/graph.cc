#include "graph/graph.h"

#include <algorithm>
#include <numeric>

namespace airindex::graph {

Result<Graph> Graph::Build(std::vector<Point> coords,
                           const std::vector<EdgeTriplet>& edges) {
  const size_t n = coords.size();
  for (const auto& e : edges) {
    if (e.from >= n || e.to >= n) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    if (e.from == e.to) {
      return Status::InvalidArgument("self-loops are not allowed");
    }
  }

  Graph g;
  g.coords_ = std::move(coords);
  const size_t m = edges.size();

  // Adjacency spans must end up sorted by target id (deterministic
  // iteration, binary-searchable adjacency). Instead of placing arcs per
  // source and sorting each span (O(m log d)), run a two-pass stable
  // counting sort over the whole arc list — first by `to`, then by `from` —
  // which is O(n + m) and leaves every span sorted by `to`, with parallel
  // arcs in input order (equivalent to a per-span stable sort by `to`).
  std::vector<EdgeTriplet> by_to(m);
  {
    std::vector<uint32_t> cursor(n + 1, 0);
    for (const auto& e : edges) cursor[e.to + 1]++;
    std::partial_sum(cursor.begin(), cursor.end(), cursor.begin());
    for (const auto& e : edges) by_to[cursor[e.to]++] = e;
  }

  g.offsets_.assign(n + 1, 0);
  for (const auto& e : edges) g.offsets_[e.from + 1]++;
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  g.arcs_.resize(m);
  std::vector<uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : by_to) {
    g.arcs_[cursor[e.from]++] = {e.to, e.weight};
  }
  return g;
}

Graph Graph::Reversed() const {
  std::vector<EdgeTriplet> rev;
  rev.reserve(arcs_.size());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (const Arc& a : OutArcs(v)) {
      rev.push_back({a.to, v, a.weight});
    }
  }
  auto res = Build(coords_, rev);
  // Reversing a valid graph cannot fail.
  return std::move(res).value();
}

size_t Graph::MemoryBytes() const {
  return offsets_.size() * sizeof(uint32_t) + arcs_.size() * sizeof(Arc) +
         coords_.size() * sizeof(Point);
}

bool Graph::IsStronglyConnected() const {
  const size_t n = num_nodes();
  if (n == 0) return true;

  // BFS reachability from node 0 in G and in G^T.
  auto reaches_all = [n](const Graph& g) {
    std::vector<uint8_t> seen(n, 0);
    std::vector<NodeId> stack = {0};
    seen[0] = 1;
    size_t count = 1;
    while (!stack.empty()) {
      NodeId v = stack.back();
      stack.pop_back();
      for (const Arc& a : g.OutArcs(v)) {
        if (!seen[a.to]) {
          seen[a.to] = 1;
          ++count;
          stack.push_back(a.to);
        }
      }
    }
    return count == n;
  };

  if (!reaches_all(*this)) return false;
  return reaches_all(Reversed());
}

}  // namespace airindex::graph
