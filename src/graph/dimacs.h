#ifndef AIRINDEX_GRAPH_DIMACS_H_
#define AIRINDEX_GRAPH_DIMACS_H_

#include <string>

#include "common/result.h"
#include "graph/graph.h"

namespace airindex::graph {

/// Loader/saver for the 9th DIMACS Implementation Challenge road-network
/// format, the standard distribution format for real road networks (the
/// paper's networks circulate in it). Allows swapping the synthetic replicas
/// for real data without touching any other module.
///
/// `.gr` file: `p sp <n> <m>` header, then `a <from> <to> <weight>` lines
/// (1-based node ids).
/// `.co` file: `p aux sp co <n>` header, then `v <id> <x> <y>` lines.
/// Comment lines start with 'c'.

/// Loads a graph from a distance (.gr) and a coordinate (.co) file.
Result<Graph> LoadDimacs(const std::string& gr_path,
                         const std::string& co_path);

/// Writes `g` in DIMACS format (inverse of LoadDimacs).
Status SaveDimacs(const Graph& g, const std::string& gr_path,
                  const std::string& co_path);

}  // namespace airindex::graph

#endif  // AIRINDEX_GRAPH_DIMACS_H_
