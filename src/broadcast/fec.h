#ifndef AIRINDEX_BROADCAST_FEC_H_
#define AIRINDEX_BROADCAST_FEC_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace airindex::broadcast {

/// Forward-error-correction code applied by the station on top of the
/// broadcast cycle: the cycle's packets are cut into *parity groups* of
/// `data_per_group` consecutive cycle positions, and the station appends
/// `parity_per_group` parity packets right after each group's data (a
/// systematic MDS erasure code — XOR for one parity packet, Reed-Solomon
/// style beyond). A client that heard at least `group size` of the
/// `group size + parity` symbols of a group can reconstruct every missing
/// data packet *within the current cycle pass*, instead of waiting for the
/// next cycle's repair rebroadcast (§6.2). `parity_per_group == 0` turns
/// the code off — the physical slot stream is then exactly the historical
/// one, bit for bit.
struct FecScheme {
  uint32_t data_per_group = 16;
  uint32_t parity_per_group = 0;

  bool enabled() const { return parity_per_group > 0; }

  /// Schemes the decoder supports: group size in [2, 64] (the run decoder
  /// keeps its missing-list in fixed storage) and at most one parity
  /// symbol per data symbol (code rate >= 1/2).
  bool Valid() const {
    return data_per_group >= 2 && data_per_group <= 64 &&
           parity_per_group <= data_per_group;
  }

  static FecScheme None() { return {16, 0}; }
  /// `rate` is the parity overhead as a fraction of the group: parity =
  /// round(rate * data_per_group). rate 0 disables the code.
  static FecScheme OfRate(double rate, uint32_t data_per_group = 16);
};

/// Slot arithmetic of a FEC-coded cycle. Logical positions (what every
/// client state machine reasons in) are unchanged; the layout maps them to
/// *fec slots* — the on-air packet stream with parity interleaved — and
/// back. With L data packets per cycle, G = ceil(L / k) groups, the
/// physical cycle is P = L + G*p slots long: group g occupies the
/// contiguous slot run [g*(k+p), g*(k+p) + size(g) + p), data first, its p
/// parity packets immediately after (the last group may hold fewer than k
/// data packets but still carries p parity). With the code disabled the
/// mapping is the identity.
class FecLayout {
 public:
  FecLayout() : FecLayout(0, FecScheme::None()) {}
  FecLayout(uint64_t cycle_packets, FecScheme scheme);

  const FecScheme& scheme() const { return scheme_; }
  bool enabled() const { return scheme_.enabled(); }
  uint32_t parity_per_group() const { return scheme_.parity_per_group; }
  uint64_t groups_per_cycle() const { return groups_; }
  /// Data packets per cycle the layout was built over (the macro cycle on
  /// a scheduled channel).
  uint64_t cycle_packets() const { return cycle_packets_; }
  /// On-air packets per cycle (data + parity).
  uint64_t phys_cycle_packets() const { return phys_cycle_; }

  /// Parity group (within its cycle) of cycle position `cpos`.
  uint32_t GroupOf(uint64_t cpos) const {
    return static_cast<uint32_t>(cpos / scheme_.data_per_group);
  }
  /// Number of data packets in group `g` (the tail group may be short).
  uint32_t GroupDataSize(uint32_t g) const {
    const uint64_t start = uint64_t{g} * scheme_.data_per_group;
    const uint64_t left = cycle_packets_ - start;
    return static_cast<uint32_t>(
        left < scheme_.data_per_group ? left : scheme_.data_per_group);
  }
  /// Group identity of an absolute logical position, unique across cycle
  /// repetitions (the wrap-seam halves of one cycle-group are distinct).
  uint64_t GroupKey(uint64_t abs_pos) const {
    return (abs_pos / cycle_packets_) * groups_ +
           GroupOf(abs_pos % cycle_packets_);
  }

  /// Fec slot carrying the data packet at absolute logical position `pos`.
  uint64_t DataSlot(uint64_t pos) const {
    if (!scheme_.enabled()) return pos;
    const uint64_t inst = pos / cycle_packets_;
    const uint64_t cpos = pos % cycle_packets_;
    return inst * phys_cycle_ + cpos +
           uint64_t{GroupOf(cpos)} * scheme_.parity_per_group;
  }

  /// Fec slot of parity packet `j` of the group containing absolute
  /// logical position `member_pos`.
  uint64_t ParitySlot(uint64_t member_pos, uint32_t j) const {
    const uint64_t inst = member_pos / cycle_packets_;
    const uint32_t g = GroupOf(member_pos % cycle_packets_);
    const uint64_t stride =
        scheme_.data_per_group + scheme_.parity_per_group;
    return inst * phys_cycle_ + uint64_t{g} * stride + GroupDataSize(g) + j;
  }

  /// First logical position whose data slot is at or after fec slot `fs`
  /// (a parity slot resolves to the next group's first data packet). The
  /// inverse of DataSlot for station tune-in arithmetic.
  uint64_t LogicalAtOrAfterSlot(uint64_t fs) const;

 private:
  FecScheme scheme_;
  uint64_t cycle_packets_;
  uint64_t groups_;
  uint64_t phys_cycle_;
};

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over `bytes`. The
/// station stamps every packet's payload chunk with it; a client compares
/// against its own recomputation to detect in-flight bit corruption —
/// CRC-32 catches every single-bit error, so a corrupted packet is
/// discarded (an erasure) rather than silently decoded.
uint32_t Crc32(std::span<const uint8_t> bytes);

}  // namespace airindex::broadcast

#endif  // AIRINDEX_BROADCAST_FEC_H_
