#ifndef AIRINDEX_BROADCAST_INTERLEAVE_H_
#define AIRINDEX_BROADCAST_INTERLEAVE_H_

#include <cmath>
#include <cstdint>

namespace airindex::broadcast {

/// Optimal replication factor of the (1,m) interleaving scheme (§2.2,
/// Imielinski et al.): m* = sqrt(data_packets / index_packets) balances the
/// wait-for-index against the wait-for-data. Clamped to [1, data_packets].
inline uint32_t OptimalInterleaving(uint32_t data_packets,
                                    uint32_t index_packets) {
  if (index_packets == 0 || data_packets == 0) return 1;
  const double m = std::sqrt(static_cast<double>(data_packets) /
                             static_cast<double>(index_packets));
  auto rounded = static_cast<uint32_t>(std::llround(m));
  if (rounded < 1) rounded = 1;
  if (rounded > data_packets) rounded = data_packets;
  return rounded;
}

}  // namespace airindex::broadcast

#endif  // AIRINDEX_BROADCAST_INTERLEAVE_H_
