#include "broadcast/channel.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace airindex::broadcast {

double LossModel::PacketCorruptProbability() const {
  if (!(corrupt_bit > 0.0)) return 0.0;  // incl. NaN: never corrupted
  if (corrupt_bit >= 1.0) return 1.0;
  constexpr double kBits = kPacketSize * 8;
  // 1 - (1 - p)^bits, computed in log space so tiny bit-error rates
  // don't round to zero.
  return -std::expm1(kBits * std::log1p(-corrupt_bit));
}

std::optional<PacketView> ClientSession::ReceiveCorrupted(uint64_t pos,
                                                          uint64_t slot) {
  const PacketView view = cycle().PacketAt(channel_->CyclePos(pos));
  const size_t n = view.chunk.size();
  if (n == 0) {  // nothing to checksum: drop the mangled packet
    ++corrupted_;
    return std::nullopt;
  }
  const uint32_t stamped = Crc32(view.chunk);
  uint8_t mangled[kPacketSize];
  std::memcpy(mangled, view.chunk.data(), n);
  const uint64_t bit = channel_->CorruptBitIndex(slot, n * 8);
  mangled[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  if (Crc32({mangled, n}) != stamped) {
    ++corrupted_;
    return std::nullopt;
  }
  // CRC-32 detects every single-bit error, so this is unreachable for the
  // one-flip model — but an undetected corruption would be delivered,
  // which is the honest failure mode of a checksum.
  return view;
}

uint32_t ClientSession::ListenGroupParity(uint64_t group_member_pos) {
  const FecLayout& fec = channel_->fec();
  const uint32_t parity = fec.parity_per_group();
  uint32_t heard = 0;
  for (uint32_t j = 0; j < parity; ++j) {
    const uint64_t slot =
        channel_->PhysicalOfFecSlot(fec.ParitySlot(group_member_pos, j));
    ++tuned_;
    if (slot > last_slot_listened_) last_slot_listened_ = slot;
    if (channel_->SlotLost(slot)) continue;
    if (channel_->corruption_enabled() && channel_->SlotCorrupted(slot)) {
      ++corrupted_;
      continue;
    }
    ++heard;
  }
  return heard;
}

bool ReceivedSegment::RangeOk(size_t begin, size_t end) const {
  if (begin >= end) return true;
  const size_t first = begin / kPayloadSize;
  const size_t last = (end - 1) / kPayloadSize;
  for (size_t p = first; p <= last && p < packet_ok.size(); ++p) {
    if (!packet_ok[p]) return false;
  }
  return last < packet_ok.size();
}

namespace {

/// Writes the true on-air bytes of the packet at absolute position
/// `abs_pos` into `out` — the FEC fill callback: a decoded parity group
/// hands back exactly what the station transmitted.
void FillRecovered(const ClientSession& session, uint64_t abs_pos,
                   ReceivedSegment* out) {
  const PacketView view =
      session.cycle().PacketAt(session.channel().CyclePos(abs_pos));
  out->packet_ok[view.seq] = true;
  std::memcpy(out->payload.data() +
                  static_cast<size_t>(view.seq) * kPayloadSize,
              view.chunk.data(), view.chunk.size());
}

}  // namespace

void ReceiveSegmentAt(ClientSession& session, uint32_t segment_start,
                      ReceivedSegment* out) {
  session.SleepUntilCyclePos(segment_start);
  // Everything before this packet was wait (probing headers, dozing to the
  // segment); the demanded segment starts here.
  session.MarkContentStart();

  const BroadcastCycle& cycle = session.cycle();
  const uint32_t si = cycle.SegmentAt(segment_start);
  const Segment& seg = cycle.segment(si);
  out->segment_index = si;
  out->type = seg.type;
  out->segment_id = seg.id;
  out->payload.assign(seg.payload.size(), 0);
  const uint32_t packets = seg.PacketCount();
  out->packet_ok.assign(packets, false);

  const bool fec_on = session.channel().fec().enabled();
  FecGroupRun fec_run;
  auto fill = [&](uint64_t abs) { FillRecovered(session, abs, out); };

  out->complete = true;
  for (uint32_t p = 0; p < packets; ++p) {
    const uint64_t abs = session.position();
    auto view = session.ReceiveNext();
    if (fec_on) fec_run.Observe(session, abs, view.has_value(), fill);
    if (!view.has_value()) {
      out->complete = false;
      continue;
    }
    out->packet_ok[view->seq] = true;
    std::memcpy(out->payload.data() +
                    static_cast<size_t>(view->seq) * kPayloadSize,
                view->chunk.data(), view->chunk.size());
  }
  if (fec_on) {
    fec_run.Flush(session, fill);
    if (!out->complete) {
      out->complete = std::all_of(out->packet_ok.begin(),
                                  out->packet_ok.end(),
                                  [](bool b) { return b; });
    }
  }
}

ReceivedSegment ReceiveSegmentAt(ClientSession& session,
                                 uint32_t segment_start) {
  ReceivedSegment out;
  ReceiveSegmentAt(session, segment_start, &out);
  return out;
}

void CompleteSegmentFrom(ClientSession& session, const PacketView& first,
                         ReceivedSegment* out) {
  // `first` was already received by the caller — it is the content start
  // (one behind the session cursor).
  session.MarkContentStart(session.position() - 1);
  const BroadcastCycle& cycle = session.cycle();
  const Segment& seg = cycle.segment(first.segment_index);
  out->segment_index = first.segment_index;
  out->type = seg.type;
  out->segment_id = seg.id;
  out->payload.assign(seg.payload.size(), 0);
  const uint32_t packets = seg.PacketCount();
  out->packet_ok.assign(packets, false);

  const bool fec_on = session.channel().fec().enabled();
  FecGroupRun fec_run;
  auto fill = [&](uint64_t abs) { FillRecovered(session, abs, out); };

  out->packet_ok[first.seq] = true;
  std::memcpy(out->payload.data() +
                  static_cast<size_t>(first.seq) * kPayloadSize,
              first.chunk.data(), first.chunk.size());
  if (fec_on) {
    fec_run.Observe(session, session.position() - 1, true, fill);
  }
  for (uint32_t p = first.seq + 1; p < packets; ++p) {
    const uint64_t abs = session.position();
    auto view = session.ReceiveNext();
    if (fec_on) fec_run.Observe(session, abs, view.has_value(), fill);
    if (!view.has_value()) continue;
    out->packet_ok[view->seq] = true;
    std::memcpy(out->payload.data() +
                    static_cast<size_t>(view->seq) * kPayloadSize,
                view->chunk.data(), view->chunk.size());
  }
  if (fec_on) fec_run.Flush(session, fill);
  out->complete = std::all_of(out->packet_ok.begin(), out->packet_ok.end(),
                              [](bool b) { return b; });
}

ReceivedSegment CompleteSegmentFrom(ClientSession& session,
                                    const PacketView& first) {
  ReceivedSegment out;
  CompleteSegmentFrom(session, first, &out);
  return out;
}

bool RepairSegment(ClientSession& session, uint32_t segment_start,
                   ReceivedSegment* seg, int max_extra_cycles) {
  if (seg->complete) return true;
  const BroadcastCycle& cycle = session.cycle();
  for (int attempt = 0; attempt < max_extra_cycles; ++attempt) {
    // Visit the missing packets of the segment in broadcast order.
    for (uint32_t p = 0; p < seg->packet_ok.size(); ++p) {
      if (seg->packet_ok[p]) continue;
      session.SleepUntilCyclePos(
          (segment_start + p) % cycle.total_packets());
      auto view = session.ReceiveNext();
      if (!view.has_value()) continue;
      seg->packet_ok[view->seq] = true;
      std::memcpy(seg->payload.data() +
                      static_cast<size_t>(view->seq) * kPayloadSize,
                  view->chunk.data(), view->chunk.size());
    }
    seg->complete = std::all_of(seg->packet_ok.begin(), seg->packet_ok.end(),
                                [](bool b) { return b; });
    if (seg->complete) return true;
  }
  return false;
}

}  // namespace airindex::broadcast
