#include "broadcast/channel.h"

#include <algorithm>
#include <cstring>

namespace airindex::broadcast {

bool ReceivedSegment::RangeOk(size_t begin, size_t end) const {
  if (begin >= end) return true;
  const size_t first = begin / kPayloadSize;
  const size_t last = (end - 1) / kPayloadSize;
  for (size_t p = first; p <= last && p < packet_ok.size(); ++p) {
    if (!packet_ok[p]) return false;
  }
  return last < packet_ok.size();
}

void ReceiveSegmentAt(ClientSession& session, uint32_t segment_start,
                      ReceivedSegment* out) {
  session.SleepUntilCyclePos(segment_start);
  // Everything before this packet was wait (probing headers, dozing to the
  // segment); the demanded segment starts here.
  session.MarkContentStart();

  const BroadcastCycle& cycle = session.cycle();
  const uint32_t si = cycle.SegmentAt(segment_start);
  const Segment& seg = cycle.segment(si);
  out->segment_index = si;
  out->type = seg.type;
  out->segment_id = seg.id;
  out->payload.assign(seg.payload.size(), 0);
  const uint32_t packets = seg.PacketCount();
  out->packet_ok.assign(packets, false);

  out->complete = true;
  for (uint32_t p = 0; p < packets; ++p) {
    auto view = session.ReceiveNext();
    if (!view.has_value()) {
      out->complete = false;
      continue;
    }
    out->packet_ok[view->seq] = true;
    std::memcpy(out->payload.data() +
                    static_cast<size_t>(view->seq) * kPayloadSize,
                view->chunk.data(), view->chunk.size());
  }
}

ReceivedSegment ReceiveSegmentAt(ClientSession& session,
                                 uint32_t segment_start) {
  ReceivedSegment out;
  ReceiveSegmentAt(session, segment_start, &out);
  return out;
}

void CompleteSegmentFrom(ClientSession& session, const PacketView& first,
                         ReceivedSegment* out) {
  // `first` was already received by the caller — it is the content start
  // (one behind the session cursor).
  session.MarkContentStart(session.position() - 1);
  const BroadcastCycle& cycle = session.cycle();
  const Segment& seg = cycle.segment(first.segment_index);
  out->segment_index = first.segment_index;
  out->type = seg.type;
  out->segment_id = seg.id;
  out->payload.assign(seg.payload.size(), 0);
  const uint32_t packets = seg.PacketCount();
  out->packet_ok.assign(packets, false);

  out->packet_ok[first.seq] = true;
  std::memcpy(out->payload.data() +
                  static_cast<size_t>(first.seq) * kPayloadSize,
              first.chunk.data(), first.chunk.size());
  for (uint32_t p = first.seq + 1; p < packets; ++p) {
    auto view = session.ReceiveNext();
    if (!view.has_value()) continue;
    out->packet_ok[view->seq] = true;
    std::memcpy(out->payload.data() +
                    static_cast<size_t>(view->seq) * kPayloadSize,
                view->chunk.data(), view->chunk.size());
  }
  out->complete = std::all_of(out->packet_ok.begin(), out->packet_ok.end(),
                              [](bool b) { return b; });
}

ReceivedSegment CompleteSegmentFrom(ClientSession& session,
                                    const PacketView& first) {
  ReceivedSegment out;
  CompleteSegmentFrom(session, first, &out);
  return out;
}

bool RepairSegment(ClientSession& session, uint32_t segment_start,
                   ReceivedSegment* seg, int max_extra_cycles) {
  if (seg->complete) return true;
  const BroadcastCycle& cycle = session.cycle();
  for (int attempt = 0; attempt < max_extra_cycles; ++attempt) {
    // Visit the missing packets of the segment in broadcast order.
    for (uint32_t p = 0; p < seg->packet_ok.size(); ++p) {
      if (seg->packet_ok[p]) continue;
      session.SleepUntilCyclePos(
          (segment_start + p) % cycle.total_packets());
      auto view = session.ReceiveNext();
      if (!view.has_value()) continue;
      seg->packet_ok[view->seq] = true;
      std::memcpy(seg->payload.data() +
                      static_cast<size_t>(view->seq) * kPayloadSize,
                  view->chunk.data(), view->chunk.size());
    }
    seg->complete = std::all_of(seg->packet_ok.begin(), seg->packet_ok.end(),
                                [](bool b) { return b; });
    if (seg->complete) return true;
  }
  return false;
}

}  // namespace airindex::broadcast
