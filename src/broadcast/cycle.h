#ifndef AIRINDEX_BROADCAST_CYCLE_H_
#define AIRINDEX_BROADCAST_CYCLE_H_

#include <cstdint>
#include <vector>

#include "broadcast/packet.h"
#include "common/result.h"

namespace airindex::broadcast {

/// One contiguous block of the broadcast cycle with a single payload,
/// occupying ceil(payload / kPayloadSize) packets.
struct Segment {
  SegmentType type = SegmentType::kNetworkData;
  uint32_t id = 0;
  /// Index segments are what packet headers point to ("next index").
  bool is_index = false;
  std::vector<uint8_t> payload;

  uint32_t PacketCount() const {
    return payload.empty()
               ? 1
               : static_cast<uint32_t>(
                     (payload.size() + kPayloadSize - 1) / kPayloadSize);
  }
};

/// An immutable, fully laid-out broadcast cycle: the server's program that
/// repeats forever on the channel (Fig. 1). Built once by a method's server
/// via CycleBuilder; the channel serves PacketView's out of it.
class BroadcastCycle {
 public:
  uint32_t total_packets() const { return total_packets_; }
  size_t num_segments() const { return segments_.size(); }

  const Segment& segment(size_t i) const { return segments_[i]; }

  /// First packet position of segment `i`.
  uint32_t SegmentStart(size_t i) const { return starts_[i]; }

  /// Segment ordinal covering cycle position `pos`.
  uint32_t SegmentAt(uint32_t pos) const;

  /// Materializes the packet at `pos` (no copying; chunk points into the
  /// segment payload).
  PacketView PacketAt(uint32_t pos) const;

  /// Position of the first packet of the next index segment at or after
  /// `pos` (cyclic). Returns `pos` itself if an index segment starts there.
  uint32_t NextIndexStart(uint32_t pos) const;

  /// Total serialized bytes (for reporting).
  size_t TotalPayloadBytes() const;

 private:
  friend class CycleBuilder;

  std::vector<Segment> segments_;
  std::vector<uint32_t> starts_;  // per segment, plus sentinel
  uint32_t total_packets_ = 0;
};

/// Accumulates segments and lays the cycle out.
class CycleBuilder {
 public:
  /// Appends a segment; returns its ordinal.
  uint32_t Add(Segment segment);

  /// Number of packets the segments added so far will occupy.
  uint32_t PacketsSoFar() const { return packets_; }
  size_t num_segments() const { return segments_.size(); }

  /// Lays out the cycle. Fails if empty or if no index segment exists while
  /// `require_index` (headers could not be populated).
  Result<BroadcastCycle> Finalize(bool require_index = true) &&;

 private:
  std::vector<Segment> segments_;
  uint32_t packets_ = 0;
};

}  // namespace airindex::broadcast

#endif  // AIRINDEX_BROADCAST_CYCLE_H_
