#ifndef AIRINDEX_BROADCAST_CHANNEL_H_
#define AIRINDEX_BROADCAST_CHANNEL_H_

#include <cstdint>
#include <optional>

#include "broadcast/cycle.h"
#include "broadcast/fec.h"
#include "broadcast/packet.h"
#include "broadcast/schedule.h"

namespace airindex::broadcast {

/// Packet-loss behaviour of a channel. `rate` is the long-run per-packet
/// loss probability. With `burst_len == 1` losses are independent (the
/// §6.2 model); larger values group losses into fade bursts of that many
/// consecutive packets (wireless losses are bursty in practice — the
/// paper's [15] reference), keeping the same long-run rate.
///
/// `corrupt_bit` is an orthogonal impairment: the probability that any one
/// bit of a packet that *was* received flips in flight. A flipped bit
/// fails the per-packet CRC-32 check, so the packet is discarded like a
/// loss but counted separately (QueryMetrics::corrupted_packets).
struct LossModel {
  double rate = 0.0;
  uint32_t burst_len = 1;
  double corrupt_bit = 0.0;

  static LossModel None() { return {0.0, 1}; }
  static LossModel Independent(double rate) { return {rate, 1}; }
  static LossModel Bursty(double rate, uint32_t burst_len) {
    return {rate, burst_len};
  }
  /// Rate + burst length in one step: burst_len <= 1 means independent.
  static LossModel Of(double rate, uint32_t burst_len) {
    return {rate, burst_len > 1 ? burst_len : 1};
  }
  static LossModel Of(double rate, uint32_t burst_len, double corrupt_bit) {
    return {rate, burst_len > 1 ? burst_len : 1, corrupt_bit};
  }

  /// Probability that a kPacketSize packet takes at least one bit flip:
  /// 1 - (1 - corrupt_bit)^bits.
  double PacketCorruptProbability() const;
};

/// The wireless channel: endlessly replays a broadcast cycle and drops
/// transmitted packets per a LossModel (§6.2). Loss is a deterministic
/// function of (seed, absolute position), so a given channel replays
/// identically for every client and every rerun.
///
/// Thread-safety: a channel is immutable after construction (IsLost is a
/// pure function; there is no per-call state), so any number of client
/// sessions — including sessions on different threads — may share one
/// instance. Per-client progress lives entirely in ClientSession, which is
/// single-threaded by design.
class BroadcastChannel {
 public:
  /// `cycle` must outlive the channel.
  BroadcastChannel(const BroadcastCycle* cycle, double loss_rate = 0.0,
                   uint64_t seed = 0x10552)
      : BroadcastChannel(cycle, LossModel::Independent(loss_rate), seed) {}

  BroadcastChannel(const BroadcastCycle* cycle, LossModel loss,
                   uint64_t seed, FecScheme fec = {},
                   const BroadcastSchedule* schedule = nullptr)
      : BroadcastChannel(cycle, loss, seed, /*slot_stride=*/1,
                         /*slot_offset=*/0, fec, schedule) {}

  /// Sub-channel view of a time-multiplexed station (broadcast::Station):
  /// the client's logical position `p` occupies physical transmission slot
  /// `p * slot_stride + slot_offset`, and loss is decided on physical
  /// slots. All sub-channels of one station share a seed, so a fade burst
  /// on the physical channel interleaves across them — each logical stream
  /// sees shorter holes. A stride of 1 with offset 0 is the plain
  /// single-channel model and makes identical decisions to the historical
  /// constructor for every position. An enabled FecScheme interposes the
  /// FecLayout between logical positions and slots (parity packets occupy
  /// slots of their own), before the stride/offset multiplexing.
  /// `schedule`, when non-null, interposes a compiled broadcast-disk
  /// timeline between positions and cycle content: position `p` carries
  /// the flat cycle packet `schedule->CyclePosAt(p)`, the on-air cycle is
  /// the macro cycle (FEC groups are laid over macro slots), and
  /// occurrence-aware sleeps catch a hot group's next repetition. Null is
  /// the flat broadcast — every decision identical to the historical
  /// channel, bit for bit. The schedule must be compiled against `cycle`
  /// and outlive the channel.
  BroadcastChannel(const BroadcastCycle* cycle, LossModel loss,
                   uint64_t seed, uint64_t slot_stride, uint64_t slot_offset,
                   FecScheme fec = {},
                   const BroadcastSchedule* schedule = nullptr,
                   uint64_t cycle_version = 0)
      : cycle_(cycle),
        loss_(loss),
        seed_(seed),
        loss_threshold_(LossThreshold(loss.rate)),
        corrupt_threshold_(LossThreshold(loss.PacketCorruptProbability())),
        slot_stride_(slot_stride == 0 ? 1 : slot_stride),
        slot_offset_(slot_offset),
        schedule_(schedule),
        cycle_version_(cycle_version),
        fec_(schedule != nullptr ? schedule->macro_packets()
                                 : cycle->total_packets(),
             fec) {}

  const BroadcastCycle& cycle() const { return *cycle_; }
  /// Version stamp of the cycle content this channel is replaying. The
  /// station bumps it when the underlying data changes (live graph
  /// updates); client-side caches key their entries on it so nothing
  /// decoded under an old version is ever served against a new one.
  uint64_t cycle_version() const { return cycle_version_; }
  double loss_rate() const { return loss_.rate; }
  const LossModel& loss_model() const { return loss_; }
  uint64_t slot_stride() const { return slot_stride_; }
  uint64_t slot_offset() const { return slot_offset_; }
  const FecLayout& fec() const { return fec_; }
  bool corruption_enabled() const { return corrupt_threshold_ != 0; }
  bool scheduled() const { return schedule_ != nullptr; }
  const BroadcastSchedule* schedule() const { return schedule_; }

  /// Length of the session timeline's repeating unit: the macro cycle on a
  /// scheduled channel, the flat cycle otherwise. The denominator of every
  /// phase -> position mapping.
  uint64_t session_cycle_packets() const {
    return schedule_ != nullptr ? schedule_->macro_packets()
                                : cycle_->total_packets();
  }

  /// Physical transmission slot of logical position `pos` on this channel.
  uint64_t PhysicalSlot(uint64_t pos) const {
    const uint64_t fs = fec_.enabled() ? fec_.DataSlot(pos) : pos;
    return fs * slot_stride_ + slot_offset_;
  }
  /// Physical slot of a fec slot (parity slots included).
  uint64_t PhysicalOfFecSlot(uint64_t fec_slot) const {
    return fec_slot * slot_stride_ + slot_offset_;
  }

  /// The 53-bit integer threshold equivalent to "uniform [0,1) draw <
  /// rate". The historical formula converted the 53-bit draw to double
  /// (`x * 2^-53 < rate`); both the scaling and the comparison are exact in
  /// IEEE-754, so `x < ceil(rate * 2^53)` makes the identical decision for
  /// every draw — precomputed once here instead of a int->double convert
  /// per packet (see channel_test.cc for the bit-identity proof).
  static uint64_t LossThreshold(double rate) {
    constexpr double kTwo53 = 9007199254740992.0;  // 2^53
    if (!(rate > 0.0)) return 0;                   // incl. NaN: never lost
    if (rate >= 1.0) return 1ULL << 53;            // every draw below
    const double scaled = rate * kTwo53;           // exact: binary scaling
    auto threshold = static_cast<uint64_t>(scaled);
    return threshold == scaled ? threshold : threshold + 1;  // ceil
  }

  /// Whether the packet broadcast at absolute position `abs_pos` is lost.
  /// Bursty mode decides per burst-length block, so losses arrive in runs
  /// of `burst_len` packets while the long-run rate stays `rate`.
  bool IsLost(uint64_t abs_pos) const { return SlotLost(PhysicalSlot(abs_pos)); }

  /// Loss decision for a physical slot (parity slots fade like any other).
  bool SlotLost(uint64_t slot) const {
    if (loss_threshold_ == 0) return false;
    const uint64_t unit = loss_.burst_len > 1 ? slot / loss_.burst_len : slot;
    return Draw53(seed_, unit) < loss_threshold_;
  }

  /// Whether the packet in physical slot `slot`, having survived the loss
  /// draw, takes a bit flip in flight. A separate salted stream so
  /// enabling corruption never perturbs the loss realization.
  bool SlotCorrupted(uint64_t slot) const {
    if (corrupt_threshold_ == 0) return false;
    return Draw53(seed_ ^ kCorruptStreamSalt, slot) < corrupt_threshold_;
  }

  /// Deterministic choice of which bit flips in a corrupted packet.
  uint64_t CorruptBitIndex(uint64_t slot, uint64_t bits) const {
    return Draw53(seed_ ^ kCorruptStreamSalt, ~slot) % bits;
  }

  uint32_t CyclePos(uint64_t abs_pos) const {
    if (schedule_ != nullptr) return schedule_->CyclePosAt(abs_pos);
    return static_cast<uint32_t>(abs_pos % cycle_->total_packets());
  }

 private:
  static constexpr uint64_t kCorruptStreamSalt = 0x6B8E9C4D2F5A3E1DULL;

  /// SplitMix64 of (seed, unit) -> uniform 53-bit draw.
  static uint64_t Draw53(uint64_t seed, uint64_t unit) {
    uint64_t z = seed ^ (unit + 0x9E3779B97f4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return z >> 11;
  }

  const BroadcastCycle* cycle_;
  LossModel loss_;
  uint64_t seed_;
  uint64_t loss_threshold_;
  uint64_t corrupt_threshold_;
  uint64_t slot_stride_ = 1;
  uint64_t slot_offset_ = 0;
  const BroadcastSchedule* schedule_ = nullptr;
  uint64_t cycle_version_ = 0;
  FecLayout fec_;
};

/// One client's view of the channel during one query. Tracks the paper's
/// §3.1 cost factors at packet granularity:
///   * tuning time  = packets the radio was awake for (received or lost),
///   * access latency = packets elapsed from tune-in to the last packet the
///     client needed.
/// Sleeping (skipping forward without listening) is free apart from wall
/// clock. Positions are absolute (monotonic across cycle wrap-arounds).
///
/// The access latency additionally splits into a *wait* prefix and a
/// *listen* remainder at the content-start mark (MarkContentStart): the
/// packets between tune-in and the first packet of the first segment the
/// client actually demands are pure wait — header probes and dozing toward
/// the next index copy — while everything after is retrieval. The segment
/// helpers below (ReceiveSegmentAt / CompleteSegmentFrom) and the
/// full-cycle loop place the mark, so every client method reports the
/// split without bespoke bookkeeping.
class ClientSession {
 public:
  ClientSession(const BroadcastChannel* channel, uint64_t start_pos)
      : channel_(channel), start_pos_(start_pos), pos_(start_pos) {}

  /// Absolute position of the next packet to be transmitted.
  uint64_t position() const { return pos_; }
  uint32_t cycle_pos() const { return channel_->CyclePos(pos_); }
  const BroadcastChannel& channel() const { return *channel_; }
  const BroadcastCycle& cycle() const { return channel_->cycle(); }

  /// Listens to the packet at the current position. Counts one packet of
  /// tuning time either way; returns nullopt if the packet was lost on air
  /// or received corrupted (CRC-32 mismatch — counted separately).
  std::optional<PacketView> ReceiveNext() {
    const uint64_t p = pos_++;
    ++tuned_;
    last_listened_ = p;
    const uint64_t slot = channel_->PhysicalSlot(p);
    if (slot > last_slot_listened_) last_slot_listened_ = slot;
    if (channel_->SlotLost(slot)) return std::nullopt;
    if (channel_->corruption_enabled() && channel_->SlotCorrupted(slot)) {
      return ReceiveCorrupted(p, slot);
    }
    return cycle().PacketAt(channel_->CyclePos(p));
  }

  /// Listens to every parity packet of the group containing logical
  /// position `group_member_pos` (an atomic side-channel read at the group
  /// boundary: the cursor does not move, tuning time is charged per parity
  /// packet, and parity fades/corrupts like any other packet). Returns how
  /// many parity packets arrived intact.
  uint32_t ListenGroupParity(uint64_t group_member_pos);

  /// Sleeps until cycle position `cpos` is about to be transmitted (the
  /// next occurrence at or after the current position). On a scheduled
  /// channel this is the occurrence index's soonest repetition — a hot
  /// group's packet may be minutes of flat-cycle time away yet one chunk
  /// ahead on the disks.
  void SleepUntilCyclePos(uint32_t cpos) {
    if (channel_->scheduled()) {
      pos_ = channel_->schedule()->NextSlotOf(pos_, cpos);
      return;
    }
    const uint32_t total = cycle().total_packets();
    const uint32_t cur = cycle_pos();
    const uint32_t ahead = cpos >= cur ? cpos - cur : cpos + total - cur;
    pos_ += ahead;
  }

  /// Sleeps for exactly `n` packets.
  void SleepPackets(uint64_t n) { pos_ += n; }

  /// Paper metric: number of packets received (energy proxy).
  uint64_t tuned_packets() const { return tuned_; }

  /// Packets that arrived but failed the CRC-32 check (corruption model).
  uint64_t corrupted_packets() const { return corrupted_; }
  /// Data packets reconstructed from FEC parity instead of rebroadcast.
  uint64_t fec_recovered() const { return fec_recovered_; }
  void AddFecRecovered(uint64_t n) { fec_recovered_ += n; }

  /// Paper metric: packets between posing the query and the end of the last
  /// packet listened to.
  uint64_t latency_packets() const {
    return last_listened_ == 0 && tuned_ == 0
               ? 0
               : last_listened_ - start_pos_ + 1;
  }

  /// latency_packets / wait_packets measured in *physical slots* — the
  /// on-air timeline that FEC parity and sub-channel striding stretch.
  /// On a stride-1 channel without FEC these equal the packet counts.
  uint64_t latency_slots() const {
    return tuned_ == 0 ? 0
                       : last_slot_listened_ -
                             channel_->PhysicalSlot(start_pos_) + 1;
  }
  uint64_t wait_slots() const {
    if (content_marked_) {
      return channel_->PhysicalSlot(content_start_) -
             channel_->PhysicalSlot(start_pos_);
    }
    return latency_slots();
  }

  /// Marks absolute position `abs_pos` as the start of real content: the
  /// first packet of the first segment this client demands. First call
  /// wins; later marks (chained index hops, repairs) are ignored.
  void MarkContentStart(uint64_t abs_pos) {
    if (content_marked_) return;
    content_marked_ = true;
    content_start_ = abs_pos;
  }
  /// Marks the packet about to be transmitted as the content start.
  void MarkContentStart() { MarkContentStart(pos_); }

  /// Packets dozed (or probed) between tune-in and the content-start mark.
  /// A session that never marked — or never listened — waited its whole
  /// latency window for content that never came.
  uint64_t wait_packets() const {
    if (content_marked_) return content_start_ - start_pos_;
    return latency_packets();
  }

 private:
  /// Cold path of ReceiveNext: the slot's corruption draw fired. Flips a
  /// deterministic bit in a local copy of the on-air bytes and runs the
  /// CRC-32 check against the station's stamp; a mismatch discards the
  /// packet as an erasure.
  std::optional<PacketView> ReceiveCorrupted(uint64_t pos, uint64_t slot);

  const BroadcastChannel* channel_;
  uint64_t start_pos_;
  uint64_t pos_;
  uint64_t tuned_ = 0;
  uint64_t last_listened_ = 0;
  uint64_t last_slot_listened_ = 0;
  uint64_t content_start_ = 0;
  uint64_t corrupted_ = 0;
  uint64_t fec_recovered_ = 0;
  bool content_marked_ = false;
};

/// Streaming FEC decoder over one client's listening run: feed it every
/// logical position the client listened to (in order, heard or not) and it
/// settles each parity group as the run crosses the group boundary. A
/// group with no holes costs nothing — its parity is slept over. A group
/// with holes listens to all of the group's parity packets and, when the
/// MDS condition holds (heard data + intact parity >= group data size),
/// reconstructs every missing packet via `fill(abs_pos)`. Fixed-size
/// state — no allocation on the query hot path.
class FecGroupRun {
 public:
  bool active() const { return active_; }

  template <typename Fill>
  void Observe(ClientSession& session, uint64_t abs_pos, bool heard,
               Fill&& fill) {
    const FecLayout& fec = session.channel().fec();
    if (!fec.enabled()) return;
    if (active_ && fec.GroupKey(abs_pos) != key_) Flush(session, fill);
    if (!active_) {
      active_ = true;
      key_ = fec.GroupKey(abs_pos);
      member_ = abs_pos;
      heard_ = 0;
      missing_count_ = 0;
    }
    if (heard) {
      ++heard_;
    } else if (missing_count_ < kMaxGroup) {
      missing_[missing_count_++] = abs_pos;
    }
  }

  /// Settles the open group (call once after the run's last Observe).
  template <typename Fill>
  void Flush(ClientSession& session, Fill&& fill) {
    if (!active_) return;
    active_ = false;
    if (missing_count_ == 0) return;  // intact: parity slept over, free
    const FecLayout& fec = session.channel().fec();
    const uint32_t parity_heard = session.ListenGroupParity(member_);
    // The layout's own cycle length, not the flat cycle's: a scheduled
    // channel lays FEC groups over macro slots.
    const uint32_t group_size =
        fec.GroupDataSize(fec.GroupOf(member_ % fec.cycle_packets()));
    // MDS erasure condition: any `group_size` intact symbols of the
    // group's `group_size + parity` reconstruct the rest. `heard_` only
    // counts this run's packets, so a run that entered the group mid-way
    // (wrap seam, partial segment) simply fails the condition and falls
    // back to next-cycle repair.
    if (heard_ + parity_heard < group_size) return;
    for (uint32_t i = 0; i < missing_count_; ++i) fill(missing_[i]);
    session.AddFecRecovered(missing_count_);
  }

 private:
  static constexpr uint32_t kMaxGroup = 64;  // FecScheme::Valid()'s cap

  bool active_ = false;
  uint64_t key_ = 0;
  uint64_t member_ = 0;
  uint32_t heard_ = 0;
  uint32_t missing_count_ = 0;
  uint64_t missing_[kMaxGroup];
};

/// A segment reassembled from the air: the payload plus a per-packet
/// completeness mask (false where the packet was lost).
struct ReceivedSegment {
  uint32_t segment_index = 0;
  SegmentType type = SegmentType::kNetworkData;
  uint32_t segment_id = 0;
  std::vector<uint8_t> payload;
  std::vector<bool> packet_ok;
  bool complete = false;

  /// True iff the payload byte range [begin, end) was carried by packets
  /// that all arrived.
  bool RangeOk(size_t begin, size_t end) const;
};

/// Sleeps to `segment_start` (a cycle position) and listens to every packet
/// of the segment that starts there. Lost packets leave zeroed payload
/// bytes and a false mask entry; retry policy is the caller's.
///
/// The out-parameter form overwrites `*out`, reusing its payload/mask
/// buffers — the allocation-free path when `out` lives in a
/// core::QueryScratch segment arena.
void ReceiveSegmentAt(ClientSession& session, uint32_t segment_start,
                      ReceivedSegment* out);
ReceivedSegment ReceiveSegmentAt(ClientSession& session,
                                 uint32_t segment_start);

/// Completes the segment a just-received packet belongs to: ingests `first`
/// and listens to the rest of its segment. Packets before `first.seq` are
/// left as holes (equivalent to losses). Lets a client that tuned in right
/// at (or inside) an index segment use it instead of waiting a whole cycle
/// for the next one.
void CompleteSegmentFrom(ClientSession& session, const PacketView& first,
                         ReceivedSegment* out);
ReceivedSegment CompleteSegmentFrom(ClientSession& session,
                                    const PacketView& first);

/// Re-listens (next cycle) to the still-missing packets of `seg` in
/// broadcast order, up to `max_extra_cycles` additional cycles. Returns true
/// once complete.
bool RepairSegment(ClientSession& session, uint32_t segment_start,
                   ReceivedSegment* seg, int max_extra_cycles = 8);

/// Cycle position of the first index-segment start the session should doze
/// to after probing `view` (the (1,m) "next index" hop). On a flat channel
/// this is the packet header's arithmetic verbatim — `(cycle_pos +
/// next_index_offset) % total`, bit-identical to the historical clients.
/// On a scheduled channel the header's flat-cycle offset undersells the
/// disks (a hot group's index copy may repeat sooner), so the slot map
/// answers instead: the soonest index start airing at or after the cursor.
inline uint32_t NextIndexTarget(const ClientSession& session,
                                const PacketView& view) {
  if (session.channel().scheduled()) {
    return session.channel().schedule()->NextIndexCyclePos(
        session.position());
  }
  return (view.cycle_pos + view.next_index_offset) %
         session.cycle().total_packets();
}

}  // namespace airindex::broadcast

#endif  // AIRINDEX_BROADCAST_CHANNEL_H_
