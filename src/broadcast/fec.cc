#include "broadcast/fec.h"

#include <array>
#include <cmath>

namespace airindex::broadcast {

FecScheme FecScheme::OfRate(double rate, uint32_t data_per_group) {
  FecScheme s;
  s.data_per_group = data_per_group;
  if (rate > 0.0) {  // NaN and negatives disable
    const double parity = std::round(rate * data_per_group);
    s.parity_per_group = parity >= data_per_group
                             ? data_per_group
                             : static_cast<uint32_t>(parity);
  }
  return s;
}

FecLayout::FecLayout(uint64_t cycle_packets, FecScheme scheme)
    : scheme_(scheme),
      // A one-packet floor keeps the / and % in the slot maps well-defined
      // for an empty cycle (nothing is ever transmitted on one anyway).
      cycle_packets_(cycle_packets == 0 ? 1 : cycle_packets),
      groups_((cycle_packets_ + scheme.data_per_group - 1) /
              scheme.data_per_group),
      phys_cycle_(scheme.enabled()
                      ? cycle_packets_ + groups_ * scheme.parity_per_group
                      : cycle_packets_) {}

uint64_t FecLayout::LogicalAtOrAfterSlot(uint64_t fs) const {
  if (!scheme_.enabled()) return fs;
  const uint64_t inst = fs / phys_cycle_;
  const uint64_t r = fs % phys_cycle_;
  const uint64_t stride = scheme_.data_per_group + scheme_.parity_per_group;
  const uint32_t g = static_cast<uint32_t>(r / stride);
  const uint64_t within = r - uint64_t{g} * stride;
  const uint64_t base = inst * cycle_packets_;
  if (within < GroupDataSize(g)) {
    return base + uint64_t{g} * scheme_.data_per_group + within;
  }
  // Inside the group's parity run: the next data packet opens the next
  // group (or the next cycle repetition, for the tail group).
  const uint64_t next_group_start =
      (uint64_t{g} + 1) * scheme_.data_per_group;
  return next_group_start < cycle_packets_ ? base + next_group_start
                                           : base + cycle_packets_;
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t b : bytes) {
    crc = kTable[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace airindex::broadcast
