#ifndef AIRINDEX_BROADCAST_STATION_H_
#define AIRINDEX_BROADCAST_STATION_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "broadcast/channel.h"
#include "broadcast/cycle.h"

namespace airindex::broadcast {

/// Configuration of one broadcast station (see Station).
struct StationOptions {
  /// Physical channel bitrate; together with the packet size this fixes the
  /// station clock (one physical slot = kPacketSize * 8 / bits_per_second).
  double bits_per_second = 2'000'000.0;
  /// Loss model of the physical channel. Losses are decided per physical
  /// slot, so a fade burst spans sub-channels.
  LossModel loss = LossModel::None();
  /// One seed for the whole station: every client (and every sub-channel)
  /// shares the same loss realization — the defining property of a shared
  /// channel.
  uint64_t seed = 0x57A710;
  /// Number of logical sub-channels the physical channel is
  /// time-multiplexed across (>= 1). Sub-channel `c` transmits its logical
  /// position `p` in physical slot `p * subchannels + c`.
  uint32_t subchannels = 1;
  /// Forward-error-correction code the station applies to the cycle:
  /// parity packets interleave with the data (lengthening the on-air
  /// cycle) and clients reconstruct lost packets within the current pass.
  FecScheme fec = {};
  /// Broadcast-disk timeline the station transmits instead of the flat
  /// cycle (null = flat). Must be compiled against the station's cycle and
  /// outlive it; shared by every sub-channel.
  const BroadcastSchedule* schedule = nullptr;
  /// Version stamp of the cycle content (bumped when the underlying data
  /// changes — live graph updates). Client session caches key on it, so a
  /// bump invalidates every cached segment fleet-wide on next use.
  uint64_t cycle_version = 0;
};

/// The broadcast station: one transmitter that starts its cycle at time
/// zero and repeats it forever, owning the shared clock every client's
/// wait and listen times are measured against. Unlike the per-query replay
/// model — where each simulated client invents a private channel — all
/// clients of a station observe the same packet at the same instant and
/// agree on whether it was lost, so fleet effects (wait-for-cycle-boundary,
/// staggered arrivals, rush-hour pileups) emerge from one timeline.
///
/// Optionally the physical channel is time-multiplexed across K logical
/// sub-channels, each carrying the full cycle at 1/K of the bitrate.
/// Clients are assigned round-robin by arrival ordinal (their interleave
/// group). Sharding trades per-client bandwidth for fade diversity: a
/// burst of B physical slots punches only ~B/K consecutive holes into each
/// logical stream (classic interleaving on a burst-error channel).
///
/// Thread-safety: immutable after construction, like the channels it owns.
class Station {
 public:
  /// `cycle` must outlive the station.
  Station(const BroadcastCycle* cycle, const StationOptions& options)
      : cycle_(cycle), options_(options) {
    if (options_.subchannels == 0) options_.subchannels = 1;
    channels_.reserve(options_.subchannels);
    for (uint32_t c = 0; c < options_.subchannels; ++c) {
      channels_.emplace_back(cycle, options_.loss, options_.seed,
                             /*slot_stride=*/options_.subchannels,
                             /*slot_offset=*/c, options_.fec,
                             options_.schedule, options_.cycle_version);
    }
  }

  const BroadcastCycle& cycle() const { return *cycle_; }
  const StationOptions& options() const { return options_; }
  uint32_t subchannels() const { return options_.subchannels; }

  /// The channel view of sub-channel `c` (shared by all its clients).
  const BroadcastChannel& channel(uint32_t c) const { return channels_[c]; }

  /// Sub-channel of the client with arrival ordinal `k` (its interleave
  /// group): round-robin assignment.
  uint32_t SubchannelOf(uint64_t client_ordinal) const {
    return static_cast<uint32_t>(client_ordinal % options_.subchannels);
  }

  /// Duration of one physical transmission slot, milliseconds.
  double SlotMs() const {
    return static_cast<double>(broadcast::kPacketSize) * 8.0 * 1000.0 /
           options_.bits_per_second;
  }

  /// Duration of one *logical* packet as a sub-channel client experiences
  /// it: K physical slots pass between its consecutive packets.
  double PacketMs() const {
    return SlotMs() * static_cast<double>(options_.subchannels);
  }

  /// Duration of one full cycle on a sub-channel, milliseconds. FEC parity
  /// lengthens the on-air cycle beyond the data packet count.
  double CycleMs() const {
    return PacketMs() *
           static_cast<double>(channels_[0].fec().phys_cycle_packets());
  }

  /// First logical position on sub-channel `c` whose transmission starts at
  /// or after `time_ms` on the station clock — where a client arriving at
  /// that instant tunes in. Clients join at packet boundaries; the
  /// sub-packet remainder is part of their wait. With FEC on, an arrival
  /// inside a parity run joins at the next group's first data packet.
  uint64_t PositionAt(double time_ms, uint32_t c) const {
    const double slot = time_ms / SlotMs();  // fractional physical slot
    const double fec_slot = (slot - static_cast<double>(c)) /
                            static_cast<double>(options_.subchannels);
    if (!(fec_slot > 0.0)) return 0;  // incl. NaN guard: clamp to the start
    return channels_[0].fec().LogicalAtOrAfterSlot(
        static_cast<uint64_t>(std::ceil(fec_slot)));
  }

  /// Station-clock instant (ms) at which logical position `pos` of
  /// sub-channel `c` starts transmitting. Inverse of PositionAt.
  double TimeAtMs(uint64_t pos, uint32_t c) const {
    return static_cast<double>(channels_[c].PhysicalSlot(pos)) * SlotMs();
  }

 private:
  const BroadcastCycle* cycle_;
  StationOptions options_;
  std::vector<BroadcastChannel> channels_;
};

}  // namespace airindex::broadcast

#endif  // AIRINDEX_BROADCAST_STATION_H_
