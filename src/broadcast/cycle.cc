#include "broadcast/cycle.h"

#include <algorithm>

namespace airindex::broadcast {

uint32_t BroadcastCycle::SegmentAt(uint32_t pos) const {
  // starts_ is ascending with a sentinel at the end; find the covering
  // segment by binary search.
  auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  return static_cast<uint32_t>(it - starts_.begin()) - 1;
}

PacketView BroadcastCycle::PacketAt(uint32_t pos) const {
  const uint32_t si = SegmentAt(pos);
  const Segment& seg = segments_[si];
  PacketView view;
  view.cycle_pos = pos;
  view.type = seg.type;
  view.segment_id = seg.id;
  view.segment_index = si;
  view.seq = pos - starts_[si];
  view.segment_packets = seg.PacketCount();
  const size_t chunk_begin = static_cast<size_t>(view.seq) * kPayloadSize;
  const size_t chunk_end =
      std::min(chunk_begin + kPayloadSize, seg.payload.size());
  if (chunk_begin < seg.payload.size()) {
    view.chunk = {seg.payload.data() + chunk_begin, chunk_end - chunk_begin};
  }
  const uint32_t next = NextIndexStart(pos);
  view.next_index_offset =
      next >= pos ? next - pos : next + total_packets_ - pos;
  return view;
}

uint32_t BroadcastCycle::NextIndexStart(uint32_t pos) const {
  // Scan segments starting at the one covering pos (cyclically). An index
  // segment "starts at or after pos" unless pos is inside it past its first
  // packet.
  const size_t n = segments_.size();
  size_t si = SegmentAt(pos);
  if (segments_[si].is_index && starts_[si] == pos) return pos;
  for (size_t step = 1; step <= n; ++step) {
    const size_t i = (si + step) % n;
    if (segments_[i].is_index) return starts_[i];
  }
  return pos;  // no index segment in the cycle
}

size_t BroadcastCycle::TotalPayloadBytes() const {
  size_t bytes = 0;
  for (const auto& s : segments_) bytes += s.payload.size();
  return bytes;
}

uint32_t CycleBuilder::Add(Segment segment) {
  packets_ += segment.PacketCount();
  segments_.push_back(std::move(segment));
  return static_cast<uint32_t>(segments_.size() - 1);
}

Result<BroadcastCycle> CycleBuilder::Finalize(bool require_index) && {
  if (segments_.empty()) {
    return Status::FailedPrecondition("cannot finalize an empty cycle");
  }
  if (require_index) {
    const bool has_index =
        std::any_of(segments_.begin(), segments_.end(),
                    [](const Segment& s) { return s.is_index; });
    if (!has_index) {
      return Status::FailedPrecondition(
          "cycle has no index segment; packet headers cannot point "
          "anywhere");
    }
  }
  BroadcastCycle cycle;
  cycle.segments_ = std::move(segments_);
  cycle.starts_.reserve(cycle.segments_.size() + 1);
  uint32_t pos = 0;
  for (const auto& s : cycle.segments_) {
    cycle.starts_.push_back(pos);
    pos += s.PacketCount();
  }
  cycle.starts_.push_back(pos);
  cycle.total_packets_ = pos;
  return cycle;
}

}  // namespace airindex::broadcast
