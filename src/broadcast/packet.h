#ifndef AIRINDEX_BROADCAST_PACKET_H_
#define AIRINDEX_BROADCAST_PACKET_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace airindex::broadcast {

/// Fixed packet size used throughout the paper's evaluation (§7).
inline constexpr size_t kPacketSize = 128;
/// Every packet carries an 8-byte header: a 4-byte pointer (offset in
/// packets) to the next index segment in the cycle — the paper requires
/// "every packet, regardless of its contents, includes a pointer to the next
/// copy of the index" — plus type and intra-segment sequence fields.
inline constexpr size_t kHeaderSize = 8;
inline constexpr size_t kPayloadSize = kPacketSize - kHeaderSize;

/// What a packet's payload belongs to. The broadcast cycle is a sequence of
/// *segments*, each packetized separately (a packet never mixes segments —
/// this is also how the paper separates adjacency data from pre-computed
/// data for loss resilience, §6.2).
enum class SegmentType : uint8_t {
  /// Adjacency records (network data). `segment_id` = region id for
  /// region-ordered cycles, 0 for monolithic ones.
  kNetworkData = 0,
  /// A global index copy (EB; also the kd splits of the first component).
  kGlobalIndex = 1,
  /// A per-region local index A^m (NR). `segment_id` = region id m.
  kLocalIndex = 2,
  /// Pre-computed per-node/per-arc payload of a baseline (LD vectors, AF
  /// flags, SPQ quadtrees, HiTi tables).
  kAuxData = 3,
};

/// A received packet as seen by the client: which segment it belongs to,
/// which chunk of that segment's payload it carries, and the header fields.
struct PacketView {
  /// Absolute position within the cycle, [0, cycle packets).
  uint32_t cycle_pos = 0;
  SegmentType type = SegmentType::kNetworkData;
  /// Meaning depends on type (region id, index copy ordinal, ...).
  uint32_t segment_id = 0;
  /// Ordinal of this segment in the cycle's segment list.
  uint32_t segment_index = 0;
  /// This packet is the `seq`-th of `segment_packets` packets of the
  /// segment.
  uint32_t seq = 0;
  uint32_t segment_packets = 0;
  /// Payload chunk carried by this packet.
  std::span<const uint8_t> chunk;
  /// Header pointer: packets from this one to the start of the next index
  /// segment (cyclic; 0 = this packet starts an index segment).
  uint32_t next_index_offset = 0;
};

}  // namespace airindex::broadcast

#endif  // AIRINDEX_BROADCAST_PACKET_H_
