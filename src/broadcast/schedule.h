#ifndef AIRINDEX_BROADCAST_SCHEDULE_H_
#define AIRINDEX_BROADCAST_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "broadcast/cycle.h"
#include "common/result.h"

namespace airindex::broadcast {

/// Assignment of a cycle's interleave groups to broadcast disks (Acharya et
/// al.'s multi-disk model): disk `d` spins at integer rate `spin[d]`, so its
/// groups repeat `spin[d]` times per macro cycle. An empty spec means the
/// flat (single-disk, spin-1) broadcast — the historical timeline.
struct ScheduleSpec {
  /// Disk ordinal of each interleave group (size = number of groups).
  std::vector<uint32_t> disk_of_group;
  /// Spin rate of each disk (>= 1). Disk 0 is conventionally the fastest.
  std::vector<uint32_t> spin;

  bool flat() const { return spin.empty(); }
  static ScheduleSpec Flat() { return {}; }

  bool operator==(const ScheduleSpec&) const = default;
};

/// Interleave groups of a cycle: the schedulable units. Every segment is
/// its own group — the finest partition that keeps segment reassembly
/// away from repetition seams (chunks are built from whole groups), which
/// both lets the compiler interleave disks tightly and lets the planner
/// spin index copies (which terminate every client's initial wait)
/// independently of the data runs whose popularity they serve. Returns
/// the group ordinal of every segment (non-decreasing).
std::vector<uint32_t> CycleGroups(const BroadcastCycle& cycle);

/// Number of groups in a CycleGroups result (last ordinal + 1; 0 if empty).
uint32_t NumGroups(const std::vector<uint32_t>& group_of_segment);

/// Packet count of each group.
std::vector<uint32_t> GroupPacketCounts(
    const BroadcastCycle& cycle, const std::vector<uint32_t>& group_of_segment);

/// A compiled broadcast-disk timeline: the deterministic slot program the
/// station transmits instead of the flat cycle. The macro cycle holds
/// spin[disk(g)] repetitions of every group g; each repetition is placed
/// at an ideal macro slot (an exact rational, computed in a
/// stretched-coordinate system that preserves the flat cycle's relative
/// layout, with index-group repetitions snapped to one even lattice so
/// their copies interleave instead of clustering) and the timeline is the
/// stable sort of those ideals with whole groups emitted at each
/// occurrence. Consequences the rest of the stack relies on:
///   * every group appears exactly spin[disk] times per macro cycle;
///   * each repetition airs the group's packets contiguously and in cycle
///     order, so segment reassembly (consecutive ReceiveNext calls after a
///     segment start) never straddles a repetition seam;
///   * the timeline is a pure function of (cycle, spec) — byte-identical
///     for any thread count.
/// Compile-time cost is O(macro packets); the per-position occurrence index
/// makes next-occurrence lookups O(log spin).
class BroadcastSchedule {
 public:
  /// Compiles `spec` against `cycle`. Fails on malformed specs (group/disk
  /// vector size mismatch, zero spins, LCM beyond kMaxMacroMinorCycles).
  /// `cycle` must outlive the schedule. A flat spec compiles to the
  /// identity timeline (macro == cycle, slot i carries position i).
  static Result<BroadcastSchedule> Compile(const BroadcastCycle* cycle,
                                           ScheduleSpec spec);

  /// Upper bound on LCM(spins): keeps degenerate specs (coprime spins)
  /// from exploding the macro cycle.
  static constexpr uint64_t kMaxMacroMinorCycles = 4096;

  const BroadcastCycle& cycle() const { return *cycle_; }
  const ScheduleSpec& spec() const { return spec_; }
  const std::vector<uint32_t>& group_of_segment() const {
    return group_of_segment_;
  }
  uint32_t num_groups() const { return num_groups_; }
  uint32_t num_disks() const {
    return static_cast<uint32_t>(spec_.spin.size());
  }
  uint64_t minor_cycles() const { return minor_cycles_; }

  /// Slots per macro cycle = sum over disks of spin * disk packets.
  uint64_t macro_packets() const { return timeline_.size(); }

  /// Physical cycle stretch: macro slots per flat-cycle packet (1.0 for the
  /// identity timeline; hot-group repetition pushes it above 1).
  double Stretch() const {
    return cycle_->total_packets() == 0
               ? 1.0
               : static_cast<double>(timeline_.size()) /
                     static_cast<double>(cycle_->total_packets());
  }

  /// Flat cycle position carried by absolute timeline slot `abs`.
  uint32_t CyclePosAt(uint64_t abs) const {
    return timeline_[abs % timeline_.size()];
  }

  /// First absolute slot at or after `abs` carrying flat cycle position
  /// `cpos` — the occurrence-aware generalization of modular sleep: a
  /// repair hit on a hot group catches the group's *next repetition*, not
  /// the next macro cycle.
  uint64_t NextSlotOf(uint64_t abs, uint32_t cpos) const;

  /// Flat cycle position of the soonest index-segment start airing at or
  /// after `abs` (the slot-map replacement for the packet header's
  /// flat-cycle next_index_offset arithmetic). Falls back to the flat
  /// next-index scan if the cycle has no index segments.
  uint32_t NextIndexCyclePos(uint64_t abs) const;

  /// Per-disk layout report (airindex_cli inspect).
  struct DiskInfo {
    uint32_t spin = 0;
    uint32_t groups = 0;
    uint64_t packets = 0;  // flat packets on the disk (one repetition)
  };
  std::vector<DiskInfo> DiskLayout() const;

 private:
  BroadcastSchedule() = default;

  const BroadcastCycle* cycle_ = nullptr;
  ScheduleSpec spec_;
  std::vector<uint32_t> group_of_segment_;
  uint32_t num_groups_ = 0;
  uint64_t minor_cycles_ = 1;
  /// Flat cycle position per macro slot.
  std::vector<uint32_t> timeline_;
  /// CSR occurrence index: macro slots carrying flat position p are
  /// occ_[occ_start_[p] .. occ_start_[p + 1]), ascending.
  std::vector<uint32_t> occ_start_;
  std::vector<uint32_t> occ_;
  /// Macro slots where an index segment's first packet airs, ascending.
  std::vector<uint32_t> index_slots_;
};

/// Arrival-weighted initial-wait profile of a timeline: a client tuning in
/// at a uniform random slot probes one packet, then dozes to the next
/// index-segment start. Exact over the whole timeline (every arrival slot
/// weighted equally), in slots. All-zero when the cycle has no index
/// segments (full-sweep clients never doze to an index).
struct WaitProfile {
  double mean = 0.0;
  double p95 = 0.0;

  /// True when this profile strictly improves on `base` without regressing
  /// either statistic — the planner's adopt-or-collapse gate.
  bool BetterThan(const WaitProfile& base) const {
    return p95 <= base.p95 && mean <= base.mean &&
           (p95 < base.p95 || mean < base.mean);
  }
};

/// Profile of the flat cycle (identity timeline).
WaitProfile FlatWaitProfile(const BroadcastCycle& cycle);

/// Profile of a compiled broadcast-disk timeline.
WaitProfile ScheduleWaitProfile(const BroadcastSchedule& schedule);

/// Square-root-rule spec planner (Acharya et al.): a group demanded with
/// probability p and occupying l packets wants broadcast frequency
/// ∝ sqrt(p / l). Spins are the per-group frequencies normalized to the
/// least-demanded group and quantized to the nearest spin rate in
/// `rates` (log-space nearest). Empty `rates` selects the power-of-two
/// ladder {2^(disks-1), ..., 2, 1}. Disk d spins at the d-th fastest rate;
/// a uniform demand profile collapses every group onto the spin-1 disk —
/// the identity timeline.
ScheduleSpec SquareRootSpec(const std::vector<double>& group_weight,
                            const std::vector<uint32_t>& group_packets,
                            uint32_t disks,
                            std::vector<uint32_t> rates = {});

}  // namespace airindex::broadcast

#endif  // AIRINDEX_BROADCAST_SCHEDULE_H_
