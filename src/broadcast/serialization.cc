#include "broadcast/serialization.h"

#include <bit>

#include "common/byte_io.h"

namespace airindex::broadcast {

size_t NodeRecordBytes(const graph::Graph& g, graph::NodeId v) {
  return 4 + 8 + 8 + 2 + 8 * g.OutDegree(v);
}

void EncodeNodeRecord(const graph::Graph& g, graph::NodeId v,
                      std::vector<uint8_t>* out) {
  PutU32(out, v);
  PutU64(out, std::bit_cast<uint64_t>(g.Coord(v).x));
  PutU64(out, std::bit_cast<uint64_t>(g.Coord(v).y));
  PutU16(out, static_cast<uint16_t>(g.OutDegree(v)));
  for (const auto& arc : g.OutArcs(v)) {
    PutU32(out, arc.to);
    PutU32(out, arc.weight);
  }
}

std::vector<uint8_t> EncodeNodeRecords(
    const graph::Graph& g, const std::vector<graph::NodeId>& nodes) {
  std::vector<uint8_t> out;
  size_t bytes = 0;
  for (graph::NodeId v : nodes) bytes += NodeRecordBytes(g, v);
  out.reserve(bytes);
  for (graph::NodeId v : nodes) EncodeNodeRecord(g, v, &out);
  return out;
}

Status ValidateNodeRecords(const uint8_t* data, size_t size) {
  ByteReader reader(data, size);
  while (reader.remaining() > 0) {
    if (reader.remaining() < 22) {
      return Status::DataLoss("truncated node record header");
    }
    reader.Skip(20);  // id + coordinates
    const uint16_t deg = reader.ReadU16();
    if (reader.remaining() < static_cast<size_t>(deg) * 8) {
      return Status::DataLoss("truncated adjacency list");
    }
    reader.Skip(static_cast<size_t>(deg) * 8);
  }
  return Status::OK();
}

bool NodeRecordCursor::Next(NodeRecord* rec) {
  if (!status_.ok() || pos_ >= size_) return false;
  ByteReader reader(data_ + pos_, size_ - pos_);
  if (reader.remaining() < 22) {
    status_ = Status::DataLoss("truncated node record header");
    return false;
  }
  rec->id = reader.ReadU32();
  rec->coord.x = std::bit_cast<double>(reader.ReadU64());
  rec->coord.y = std::bit_cast<double>(reader.ReadU64());
  const uint16_t deg = reader.ReadU16();
  if (reader.remaining() < static_cast<size_t>(deg) * 8) {
    status_ = Status::DataLoss("truncated adjacency list");
    return false;
  }
  rec->arcs.clear();
  rec->arcs.reserve(deg);
  for (uint16_t i = 0; i < deg; ++i) {
    graph::Graph::Arc arc;
    arc.to = reader.ReadU32();
    arc.weight = reader.ReadU32();
    rec->arcs.push_back(arc);
  }
  pos_ += reader.position();
  return true;
}

Result<std::vector<NodeRecord>> DecodeNodeRecords(
    const std::vector<uint8_t>& buf) {
  std::vector<NodeRecord> records;
  NodeRecordCursor cursor(buf);
  NodeRecord rec;
  while (cursor.Next(&rec)) records.push_back(rec);
  if (!cursor.status().ok()) return cursor.status();
  return records;
}

size_t NetworkDataBytes(const graph::Graph& g) {
  size_t bytes = 0;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    bytes += NodeRecordBytes(g, v);
  }
  return bytes;
}

}  // namespace airindex::broadcast
